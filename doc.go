// Package fedml is a Go reproduction of "Real-Time Edge Intelligence in the
// Making: A Collaborative Learning Framework via Federated Meta-Learning"
// (Lin, Yang, Zhang — ICDCS 2020).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory) and is exercised through:
//
//   - cmd/fedml — train a federated meta-model in-process or across real
//     TCP processes, then fast-adapt it at held-out target nodes;
//   - cmd/fedml-bench — regenerate every table and figure of the paper's
//     evaluation section;
//   - examples/ — runnable walkthroughs of the library;
//   - bench_test.go — testing.B entry points, one per table/figure plus
//     ablations of the design choices called out in DESIGN.md §5.
package fedml

// Version identifies the reproduction release.
const Version = "1.0.0"
