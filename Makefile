# Development entry points. Everything is stdlib-only Go; no external
# dependencies are ever downloaded.

GO ?= go

.PHONY: all build vet test test-race test-short bench bench-paper fuzz examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# One testing.B per paper table/figure plus ablations (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at the paper's scale.
bench-paper:
	$(GO) run ./cmd/fedml-bench -exp all -paper

# Short fuzzing pass over the parsers.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/checkpoint

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/edgeiot
	$(GO) run ./examples/sentiment
	$(GO) run ./examples/robustness
	$(GO) run ./examples/operations

clean:
	$(GO) clean ./...
	rm -f fedml fedml-bench test_output.txt bench_output.txt
