# Development entry points. Everything is stdlib-only Go; no external
# dependencies are ever downloaded.

GO ?= go

.PHONY: all build vet test test-race test-short check chaos-smoke obs-smoke codec-smoke shard-smoke async-smoke energy-smoke workloads-smoke profile bench bench-json bench-check bench-paper bench-par bench-scale bench-async bench-energy bench-workloads fuzz fuzz-smoke examples clean

# Scratch directory for generated artifacts (metrics sinks, bench output,
# profiles); removed by `make clean`, never committed.
BUILD_DIR := build

all: build vet test

# Pre-commit gate: formatting, static analysis, and the race-enabled short
# test suite (includes the zero-allocation regression tests).
check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race -short ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# End-to-end fault-tolerance smoke: a federation survives a scripted node
# crash + rejoin and a corrupted update (rejected by the sanitation guard).
chaos-smoke:
	$(GO) run ./cmd/fedml train -dataset synthetic -nodes 6 -k 3 -t 30 -t0 5 \
		-seed 7 -round-timeout 500ms -guard 25 \
		-chaos "1:kill@2,1:revive@4,2:corrupt@3" -chaos-seed 11

# Observability smoke: a chaos run writes per-round metrics JSONL, then
# cmd/obscheck verifies the schema, monotonicity, and that the per-round
# traffic deltas reconstruct the final totals exactly. Artifacts land in
# $(BUILD_DIR), never the repo root.
obs-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) run ./cmd/fedml train -dataset synthetic -nodes 6 -k 3 -t 30 -t0 5 \
		-seed 7 -round-timeout 500ms -guard 25 \
		-chaos "1:kill@2,1:revive@4,2:corrupt@3" -chaos-seed 11 \
		-metrics-out $(BUILD_DIR)/obs_smoke.jsonl
	$(GO) run ./cmd/obscheck $(BUILD_DIR)/obs_smoke.jsonl

# Compressed-transport smoke: the same chaos scenario with topk+delta update
# compression. obscheck proves the metrics stream still folds to the final
# totals exactly when the billed bytes are the compressed ones and the delta
# chain is broken and resynced mid-run.
codec-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) run ./cmd/fedml train -dataset synthetic -nodes 6 -k 3 -t 30 -t0 5 \
		-seed 7 -codec topk -round-timeout 500ms -guard 25 \
		-chaos "1:kill@2,1:revive@4,2:corrupt@3" -chaos-seed 11 \
		-metrics-out $(BUILD_DIR)/codec_smoke.jsonl
	$(GO) run ./cmd/obscheck $(BUILD_DIR)/codec_smoke.jsonl

# Two-tier topology smoke: the same chaos scenario through two leaf shard
# aggregators and a director, with q8 update compression. The director and
# each shard write their own metrics stream, and obscheck validates all three
# independently — per-shard traffic accounting must reconstruct exactly even
# when the faults land inside the shards.
shard-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) run ./cmd/fedml train -dataset synthetic -nodes 6 -k 3 -t 30 -t0 5 \
		-seed 7 -shards 2 -codec q8 -round-timeout 500ms -guard 25 \
		-chaos "1:kill@2,1:revive@4,4:corrupt@3" -chaos-seed 11 \
		-metrics-out $(BUILD_DIR)/shard_smoke.jsonl
	$(GO) run ./cmd/obscheck $(BUILD_DIR)/shard_smoke.jsonl \
		$(BUILD_DIR)/shard_smoke.shard0.jsonl $(BUILD_DIR)/shard_smoke.shard1.jsonl

# Buffered-async smoke: async aggregation with one scripted straggler (slow
# link from round 2, healed at round 8) plus a kill/revive window. The
# staleness machinery — decayed applies, drop bound, suspect/rejoin as the
# common path — must keep the metrics stream consistent: obscheck validates
# schema, monotonicity, and exact reconstruction including the stale
# counters.
async-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) run ./cmd/fedml train -dataset synthetic -nodes 6 -k 3 -t 30 -t0 5 \
		-seed 7 -async -staleness-decay 0.6 -max-staleness 1 -async-quorum 0.8 \
		-round-timeout 500ms -guard 25 \
		-chaos "1:slow=40ms@2,1:slow=0s@8,2:kill@3,2:revive@5" -chaos-seed 11 \
		-metrics-out $(BUILD_DIR)/async_smoke.jsonl
	$(GO) run ./cmd/obscheck $(BUILD_DIR)/async_smoke.jsonl

# Partial-sync + budget smoke, in two legs. Leg 1: head-only sync after two
# warmup rounds through the usual kill/revive + corrupt chaos — the masked
# resync of a rejoining node and the corrupted-payload handling run under the
# mask. Leg 2: a 1 J lora-like budget no node can afford — every round falls
# back to the best-progress-per-joule backfill and the new budget_filtered
# counter fills. obscheck proves both metrics streams (schema 3) reconstruct
# the final totals exactly.
energy-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) run ./cmd/fedml train -dataset synthetic -nodes 6 -k 3 -t 30 -t0 5 \
		-seed 7 -sync-mask head:2 -round-timeout 500ms -guard 25 \
		-chaos "1:kill@2,1:revive@4,2:corrupt@3" -chaos-seed 11 \
		-metrics-out $(BUILD_DIR)/mask_smoke.jsonl
	$(GO) run ./cmd/obscheck $(BUILD_DIR)/mask_smoke.jsonl
	$(GO) run ./cmd/fedml train -dataset synthetic -nodes 6 -k 3 -t 30 -t0 5 \
		-seed 7 -sync-mask head:2 -energy-profile lora-like -energy-budget 1 \
		-metrics-out $(BUILD_DIR)/energy_smoke.jsonl
	$(GO) run ./cmd/obscheck $(BUILD_DIR)/energy_smoke.jsonl

# New-workloads smoke, in two legs. Leg 1: the federated recommendation
# scenario (per-user rating tasks) trained through q8 update compression.
# Leg 2: the TinyML fault-classification scenario (per-device class skew)
# under a head-only sync mask. Both write per-round metrics JSONL and
# obscheck proves the streams reconstruct the final totals exactly — the
# new generators compose with the platform knobs like any other workload.
workloads-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) run ./cmd/fedml train -dataset rec -nodes 8 -k 3 -t 20 -t0 5 \
		-seed 7 -codec q8 \
		-metrics-out $(BUILD_DIR)/workloads_rec_smoke.jsonl
	$(GO) run ./cmd/obscheck $(BUILD_DIR)/workloads_rec_smoke.jsonl
	$(GO) run ./cmd/fedml train -dataset fault -nodes 8 -k 3 -t 20 -t0 5 \
		-seed 7 -sync-mask head:2 \
		-metrics-out $(BUILD_DIR)/workloads_fault_smoke.jsonl
	$(GO) run ./cmd/obscheck $(BUILD_DIR)/workloads_fault_smoke.jsonl

# CPU + heap profiles of the hot end-to-end benchmark (fig2a). Inspect with
# `go tool pprof cpu.pprof`; live runs expose the same data via -pprof.
profile:
	$(GO) test -run '^$$' -bench 'Fig2aNodeSimilarity' -benchmem \
		-cpuprofile cpu.pprof -memprofile mem.pprof .

# One testing.B per paper table/figure plus ablations (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable performance snapshot: the key end-to-end and kernel
# benchmarks rendered to BENCH_fedml.json (name -> ns/op, B/op, allocs/op)
# by cmd/benchjson, so performance regressions show up as diffs.
bench-json:
	@mkdir -p $(BUILD_DIR)
	$(GO) test -run '^$$' \
		-bench 'Fig2aNodeSimilarity|MetaStep|FastAdaptation|GradInto|GradStepInto' \
		-benchmem . | tee $(BUILD_DIR)/bench_output.txt | $(GO) run ./cmd/benchjson -out BENCH_fedml.json

# CI regression gate: re-measure the bench-json suite into $(BUILD_DIR) and
# fail when allocs/op or B/op grew more than 10% over the committed
# BENCH_fedml.json (ns/op is reported, not gated — CI wall time is noise).
# Also checks the committed experiment snapshot still carries the workload
# personalization matrices (presence + schema; values are gated by the bench
# that wrote them).
bench-check:
	@mkdir -p $(BUILD_DIR)
	$(GO) test -run '^$$' \
		-bench 'Fig2aNodeSimilarity|MetaStep|FastAdaptation|GradInto|GradStepInto' \
		-benchmem . | tee $(BUILD_DIR)/bench_output.txt | $(GO) run ./cmd/benchjson -out $(BUILD_DIR)/bench_current.json
	$(GO) run ./cmd/benchjson compare BENCH_fedml.json $(BUILD_DIR)/bench_current.json
	$(GO) run ./cmd/benchjson expcheck BENCH_experiments.json ext_rec ext_fault

# Regenerate every table and figure at the paper's scale.
bench-paper:
	$(GO) run ./cmd/fedml-bench -exp all -paper

# Parallel-speedup snapshot: time the fig2a grid at workers=1 vs all cores,
# verify the outputs are byte-identical (the determinism contract), and
# merge the measurement into BENCH_experiments.json under "par_bench".
bench-par:
	$(GO) run ./cmd/fedml-bench -par-bench -out BENCH_experiments.json

# Fleet-scale throughput snapshot: run ext-scale (10⁵+ simulated nodes per
# round through the sharded two-tier topology) at paper scale and merge
# rounds/sec into BENCH_experiments.json under "ext_scale".
bench-scale:
	$(GO) run ./cmd/fedml-bench -scale-bench -paper -out BENCH_experiments.json

# Async-vs-sync throughput snapshot: run ext-async (one node at 10× latency)
# and merge round throughput + objective gap into BENCH_experiments.json
# under "async_skew". Fails if async is under 2× sync or the objective gap
# exceeds 5%.
bench-async:
	$(GO) run ./cmd/fedml-bench -async-bench -out BENCH_experiments.json

# Energy snapshot: run ext-energy (full vs head-only sync priced in joules on
# the lora-like radio) and merge the per-arm bills into BENCH_experiments.json
# under "ext_energy". Fails if head-only sync lands more than 2 accuracy
# points below full sync or saves less than 3× the joules.
bench-energy:
	$(GO) run ./cmd/fedml-bench -energy-bench -out BENCH_experiments.json

# Workload snapshot: run ext-rec and ext-fault (federated recommendation and
# TinyML fault classification with the FedML/FedAvg/FedProx/RepShare
# personalization matrix) and merge the results into BENCH_experiments.json
# under "ext_rec" and "ext_fault". Fails if FedML's adapted accuracy falls
# below the FedAvg or FedProx global baseline on either workload.
bench-workloads:
	$(GO) run ./cmd/fedml-bench -workloads-bench -out BENCH_experiments.json

# Short fuzzing pass over the parsers and the update codecs.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/checkpoint
	$(GO) test -fuzz FuzzCodecRoundTrip -fuzztime 30s ./internal/codec

# Seconds-long fuzz smoke for CI: enough to replay the corpus and catch
# shallow regressions without holding up the pipeline.
fuzz-smoke:
	$(GO) test -fuzz FuzzRead -fuzztime 5s ./internal/checkpoint
	$(GO) test -fuzz FuzzCodecRoundTrip -fuzztime 5s ./internal/codec

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/edgeiot
	$(GO) run ./examples/sentiment
	$(GO) run ./examples/robustness
	$(GO) run ./examples/operations

clean:
	$(GO) clean ./...
	rm -f fedml fedml-bench test_output.txt bench_output.txt obs_smoke.jsonl *.pprof
	rm -rf $(BUILD_DIR)
