package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/edgeai/fedml/internal/tensor"
)

// RunStateVersion identifies the mid-training snapshot schema.
const RunStateVersion = 1

// RunState is a platform-side mid-training snapshot: everything
// core.RunPlatform needs to resume a crashed run at the next round. Unlike
// Checkpoint (a finished, adaptation-ready model), RunState is training
// plumbing: it carries the loop counters and communication accounting
// alongside θ.
type RunState struct {
	Version int `json:"version"`
	// Round is the last completed (aggregated) global round.
	Round int `json:"round"`
	// Iter is the cumulative local-iteration count after Round.
	Iter int `json:"iter"`
	// T0 is the per-round local step count in effect (the adaptive-T0
	// controller's latest choice).
	T0 int `json:"t0"`
	// Dispersion is the last measured update dispersion, fed back to the
	// T0 controller on resume.
	Dispersion float64 `json:"dispersion"`
	// Theta is the aggregated global parameter vector after Round.
	Theta []float64 `json:"theta"`

	// Communication accounting carried across the crash. The stale counters
	// were added for async mode; snapshots written before then decode with
	// zero values, so no version bump is needed.
	Rounds        int   `json:"rounds"`
	Messages      int   `json:"messages"`
	Bytes         int64 `json:"bytes"`
	Dropped       int   `json:"dropped"`
	Rejoined      int   `json:"rejoined"`
	Rejected      int   `json:"rejected"`
	SkippedRounds int   `json:"skipped_rounds"`
	StaleApplied  int   `json:"stale_applied,omitempty"`
	StaleDropped  int   `json:"stale_dropped,omitempty"`
	// BudgetFiltered was added with energy-budgeted scheduling; like the
	// stale counters, older snapshots decode with zero and need no version
	// bump.
	BudgetFiltered int `json:"budget_filtered,omitempty"`
}

// Validate checks internal consistency.
func (s *RunState) Validate() error {
	switch {
	case s.Version != RunStateVersion:
		return fmt.Errorf("checkpoint: unsupported run-state version %d (want %d)", s.Version, RunStateVersion)
	case s.Round < 1 || s.Iter < 1 || s.T0 < 1:
		return fmt.Errorf("checkpoint: run state has non-positive counters (round=%d iter=%d t0=%d)", s.Round, s.Iter, s.T0)
	case len(s.Theta) == 0:
		return fmt.Errorf("checkpoint: run state has empty parameters")
	case !tensor.Vec(s.Theta).IsFinite():
		return fmt.Errorf("checkpoint: run state parameters contain NaN or Inf")
	}
	return nil
}

// SaveRunState atomically writes s to path: the snapshot is marshaled to a
// temporary file in the same directory, synced, and renamed over path, so a
// crash (even kill -9) mid-write can never destroy the previous snapshot.
func SaveRunState(path string, s *RunState) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("checkpoint: encode run state: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: run state temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("checkpoint: write run state: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("checkpoint: sync run state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close run state: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: commit run state: %w", err)
	}
	return nil
}

// LoadRunState reads and validates a snapshot. A missing file surfaces as an
// error satisfying errors.Is(err, os.ErrNotExist), which resuming callers
// treat as "start fresh".
func LoadRunState(path string) (*RunState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read run state: %w", err)
	}
	var s RunState
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode run state %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
