package checkpoint

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validRunState() *RunState {
	return &RunState{
		Version: RunStateVersion,
		Round:   3, Iter: 15, T0: 5,
		Dispersion: 0.25,
		Theta:      []float64{0.1, -0.2, 0.3},
		Rounds:     3, Messages: 18, Bytes: 432, Dropped: 1, Rejoined: 1, Rejected: 2,
	}
}

func TestRunStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.state")
	want := validRunState()
	if err := SaveRunState(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRunState(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != want.Round || got.Iter != want.Iter || got.T0 != want.T0 ||
		got.Dispersion != want.Dispersion || got.Dropped != want.Dropped ||
		got.Rejoined != want.Rejoined || got.Rejected != want.Rejected ||
		got.Messages != want.Messages || got.Bytes != want.Bytes {
		t.Errorf("round trip mismatch: got %+v want %+v", got, want)
	}
	for i, v := range want.Theta {
		if got.Theta[i] != v {
			t.Errorf("theta[%d] = %v, want %v", i, got.Theta[i], v)
		}
	}
}

func TestRunStateOverwriteKeepsLatest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.state")
	s := validRunState()
	if err := SaveRunState(path, s); err != nil {
		t.Fatal(err)
	}
	s.Round, s.Iter, s.Rounds = 4, 20, 4
	if err := SaveRunState(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRunState(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 4 {
		t.Errorf("round = %d, want 4 (latest snapshot)", got.Round)
	}
	// The atomic write must not leave temp files behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stale temp file left behind: %s", e.Name())
		}
	}
}

func TestRunStateMissingFileIsNotExist(t *testing.T) {
	_, err := LoadRunState(filepath.Join(t.TempDir(), "nope.state"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

func TestRunStateValidation(t *testing.T) {
	bad := []*RunState{
		func() *RunState { s := validRunState(); s.Version = 99; return s }(),
		func() *RunState { s := validRunState(); s.Round = 0; return s }(),
		func() *RunState { s := validRunState(); s.Iter = 0; return s }(),
		func() *RunState { s := validRunState(); s.T0 = 0; return s }(),
		func() *RunState { s := validRunState(); s.Theta = nil; return s }(),
		func() *RunState { s := validRunState(); s.Theta[1] = math.NaN(); return s }(),
	}
	path := filepath.Join(t.TempDir(), "run.state")
	for i, s := range bad {
		if err := SaveRunState(path, s); err == nil {
			t.Errorf("bad run state %d saved", i)
		}
	}
}

func TestRunStateRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.state")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRunState(path); err == nil {
		t.Fatal("garbage run state loaded")
	}
}
