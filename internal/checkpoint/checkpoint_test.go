package checkpoint

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func TestRoundTripSoftmax(t *testing.T) {
	m := &nn.SoftmaxRegression{In: 6, Classes: 3, L2: 0.01}
	params := m.InitParams(rng.New(1))
	c, err := FromModel(m, params, 0.05, "test model")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Alpha != 0.05 || got.Description != "test model" {
		t.Errorf("metadata lost: %+v", got)
	}
	m2, err := got.Model()
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := m2.(*nn.SoftmaxRegression)
	if !ok || sm.In != 6 || sm.Classes != 3 || sm.L2 != 0.01 {
		t.Fatalf("reconstructed model wrong: %#v", m2)
	}
	if tensor.Vec(got.Params).Dist(params) != 0 {
		t.Error("parameters changed in round trip")
	}
}

func TestRoundTripMLP(t *testing.T) {
	m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{4, 8, 2}, BatchNorm: true, L2: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	params := m.InitParams(rng.New(2))
	c, err := FromModel(m, params, 0.01, "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := got.Model()
	if err != nil {
		t.Fatal(err)
	}
	mlp, ok := m2.(*nn.MLP)
	if !ok {
		t.Fatalf("reconstructed %T", m2)
	}
	dims := mlp.Dims()
	if len(dims) != 3 || dims[1] != 8 || !mlp.BatchNorm() || mlp.L2() != 0.1 {
		t.Errorf("MLP architecture lost: dims=%v bn=%v l2=%v", dims, mlp.BatchNorm(), mlp.L2())
	}
	// The restored model must produce identical predictions.
	batch := []data.Sample{{X: tensor.Vec{1, -0.5, 0.25, 2}, Y: 0}}
	p1 := m.PredictBatch(params, batch)
	p2 := mlp.PredictBatch(got.Params, batch)
	if p1[0] != p2[0] {
		t.Error("restored model predicts differently")
	}
}

func TestFromModelRejections(t *testing.T) {
	m := &nn.SoftmaxRegression{In: 2, Classes: 2}
	if _, err := FromModel(m, tensor.NewVec(1), 0.1, ""); err == nil {
		t.Error("wrong param count accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	m := &nn.SoftmaxRegression{In: 2, Classes: 2}
	params := m.InitParams(rng.New(1))
	mk := func(mutate func(*Checkpoint)) *Checkpoint {
		c, err := FromModel(m, params, 0.1, "")
		if err != nil {
			t.Fatal(err)
		}
		mutate(c)
		return c
	}
	cases := map[string]*Checkpoint{
		"bad version":  mk(func(c *Checkpoint) { c.Version = 99 }),
		"bad alpha":    mk(func(c *Checkpoint) { c.Alpha = 0 }),
		"bad kind":     mk(func(c *Checkpoint) { c.ModelKind = "quantum" }),
		"short params": mk(func(c *Checkpoint) { c.Params = c.Params[:2] }),
		"nan params":   mk(func(c *Checkpoint) { c.Params[0] = math.NaN() }),
		"bad shape":    mk(func(c *Checkpoint) { c.SoftmaxClasses = 0 }),
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Checkpoint{Version: 99}); err == nil {
		t.Error("invalid checkpoint written")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":1,"model_kind":"softmax-regression"}`)); err == nil {
		t.Error("incomplete checkpoint accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")

	m := &nn.SoftmaxRegression{In: 3, Classes: 2}
	c, err := FromModel(m, m.InitParams(rng.New(3)), 0.05, "file test")
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != "file test" {
		t.Error("file round trip lost metadata")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
