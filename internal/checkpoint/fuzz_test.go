package checkpoint

import (
	"bytes"
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
)

// FuzzRead ensures arbitrary input never panics the checkpoint parser and
// that every accepted checkpoint re-validates and round-trips.
func FuzzRead(f *testing.F) {
	// Seed with a valid checkpoint and a few near-misses.
	m := &nn.SoftmaxRegression{In: 3, Classes: 2}
	c, err := FromModel(m, m.InitParams(rng.New(1)), 0.05, "seed")
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"model_kind":"softmax-regression","softmax_in":2,"softmax_classes":2,"alpha":0.1,"params":[0,0,0,0,0,0]}`)
	f.Add(`not json at all`)
	f.Add(`{"version":1,"model_kind":"mlp","mlp_dims":[2,-3,2],"alpha":0.1,"params":[]}`)

	f.Fuzz(func(t *testing.T, input string) {
		ck, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Anything accepted must be internally consistent.
		if err := ck.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid checkpoint: %v", err)
		}
		model, err := ck.Model()
		if err != nil {
			t.Fatalf("accepted checkpoint has no model: %v", err)
		}
		if model.NumParams() != len(ck.Params) {
			t.Fatal("accepted checkpoint param-count mismatch")
		}
		// Round trip.
		var out bytes.Buffer
		if err := Write(&out, ck); err != nil {
			t.Fatalf("accepted checkpoint failed to re-encode: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
		if again.ModelKind != ck.ModelKind || len(again.Params) != len(ck.Params) {
			t.Fatal("round trip changed the checkpoint")
		}
	})
}
