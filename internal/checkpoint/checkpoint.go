// Package checkpoint persists trained meta-models so the platform can hand
// an initialization to target edge nodes out-of-band (a file, an object
// store) instead of a live connection — the "transfer via the platform"
// step of the paper's architecture, made durable.
//
// The format is JSON with an explicit version and the model architecture
// embedded, so a target device can reconstruct the model family and run
// fast adaptation with nothing but the checkpoint.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

// FormatVersion identifies the checkpoint schema.
const FormatVersion = 1

// Model kinds.
const (
	KindSoftmax = "softmax-regression"
	KindMLP     = "mlp"
)

// Checkpoint is a serialized meta-trained initialization plus everything a
// target node needs to adapt it.
type Checkpoint struct {
	Version     int    `json:"version"`
	Description string `json:"description,omitempty"`
	// ModelKind selects the architecture block below.
	ModelKind string `json:"model_kind"`

	// Softmax-regression architecture (ModelKind == KindSoftmax).
	SoftmaxIn      int     `json:"softmax_in,omitempty"`
	SoftmaxClasses int     `json:"softmax_classes,omitempty"`
	SoftmaxL2      float64 `json:"softmax_l2,omitempty"`

	// MLP architecture (ModelKind == KindMLP).
	MLPDims      []int   `json:"mlp_dims,omitempty"`
	MLPBatchNorm bool    `json:"mlp_batch_norm,omitempty"`
	MLPL2        float64 `json:"mlp_l2,omitempty"`

	// Alpha is the adaptation learning rate the initialization was
	// meta-trained for (the target should adapt with the same α).
	Alpha float64 `json:"alpha"`
	// Params is the flat parameter vector θ.
	Params []float64 `json:"params"`
}

// FromModel builds a checkpoint for a trained model.
func FromModel(m nn.Model, params tensor.Vec, alpha float64, description string) (*Checkpoint, error) {
	if len(params) != m.NumParams() {
		return nil, fmt.Errorf("checkpoint: %d params for a %d-param model", len(params), m.NumParams())
	}
	c := &Checkpoint{
		Version:     FormatVersion,
		Description: description,
		Alpha:       alpha,
		Params:      append([]float64(nil), params...),
	}
	switch mt := m.(type) {
	case *nn.SoftmaxRegression:
		c.ModelKind = KindSoftmax
		c.SoftmaxIn = mt.In
		c.SoftmaxClasses = mt.Classes
		c.SoftmaxL2 = mt.L2
	case *nn.MLP:
		c.ModelKind = KindMLP
		c.MLPDims = mt.Dims()
		c.MLPBatchNorm = mt.BatchNorm()
		c.MLPL2 = mt.L2()
	default:
		return nil, fmt.Errorf("checkpoint: unsupported model type %T", m)
	}
	return c, nil
}

// Model reconstructs the model family described by the checkpoint.
func (c *Checkpoint) Model() (nn.Model, error) {
	switch c.ModelKind {
	case KindSoftmax:
		m := &nn.SoftmaxRegression{In: c.SoftmaxIn, Classes: c.SoftmaxClasses, L2: c.SoftmaxL2}
		if m.In <= 0 || m.Classes < 2 {
			return nil, fmt.Errorf("checkpoint: invalid softmax shape %dx%d", m.In, m.Classes)
		}
		return m, nil
	case KindMLP:
		return nn.NewMLP(nn.MLPConfig{Dims: c.MLPDims, BatchNorm: c.MLPBatchNorm, L2: c.MLPL2})
	default:
		return nil, fmt.Errorf("checkpoint: unknown model kind %q", c.ModelKind)
	}
}

// Validate checks internal consistency, including that the parameter count
// matches the declared architecture.
func (c *Checkpoint) Validate() error {
	if c.Version != FormatVersion {
		return fmt.Errorf("checkpoint: unsupported version %d (want %d)", c.Version, FormatVersion)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("checkpoint: adaptation rate α=%v must be positive", c.Alpha)
	}
	m, err := c.Model()
	if err != nil {
		return err
	}
	if len(c.Params) != m.NumParams() {
		return fmt.Errorf("checkpoint: %d params, architecture needs %d", len(c.Params), m.NumParams())
	}
	if !tensor.Vec(c.Params).IsFinite() {
		return errors.New("checkpoint: parameters contain NaN or Inf")
	}
	return nil
}

// Write serializes the checkpoint as JSON.
func Write(w io.Writer, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Read deserializes and validates a checkpoint.
func Read(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// SaveFile writes the checkpoint to path (0644).
func SaveFile(path string, c *Checkpoint) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", path, err)
	}
	if err := Write(f, c); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", path, err)
	}
	return nil
}

// LoadFile reads and validates a checkpoint from path.
func LoadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
