package meta

import (
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/opt"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func centralizedFixture(t *testing.T) (*nn.SoftmaxRegression, []*data.NodeDataset, []float64, tensor.Vec) {
	t.Helper()
	cfg := data.DefaultSyntheticConfig(0, 0)
	cfg.Nodes = 6
	cfg.Dim = 8
	cfg.Classes = 3
	cfg.MeanSamples = 20
	cfg.Seed = 3
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}
	return m, fed.Sources, fed.Weights(), m.InitParams(rng.New(1))
}

func objective(m nn.Model, tasks []*data.NodeDataset, weights []float64, theta tensor.Vec, alpha float64) float64 {
	var total float64
	for i, task := range tasks {
		total += weights[i] * Objective(m, theta, task.Train, task.Test, alpha)
	}
	return total
}

func TestTrainCentralizedReducesObjective(t *testing.T) {
	m, tasks, weights, theta0 := centralizedFixture(t)
	const alpha = 0.05
	before := objective(m, tasks, weights, theta0, alpha)
	theta, err := TrainCentralized(m, tasks, weights, theta0, alpha, &opt.SGD{LR: 0.05}, 100, SecondOrder, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := objective(m, tasks, weights, theta, alpha)
	if after >= before {
		t.Errorf("centralized training failed: %v -> %v", before, after)
	}
	// θ0 untouched.
	if theta0.Dist(m.InitParams(rng.New(1))) != 0 {
		t.Error("θ0 was modified")
	}
}

func TestTrainCentralizedMatchesManualSGD(t *testing.T) {
	// With opt.SGD the trajectory must equal the hand-rolled loop.
	m, tasks, weights, theta0 := centralizedFixture(t)
	const alpha, beta = 0.05, 0.02
	got, err := TrainCentralized(m, tasks, weights, theta0, alpha, &opt.SGD{LR: beta}, 10, SecondOrder, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := theta0.Clone()
	for t := 0; t < 10; t++ {
		g := tensor.NewVec(len(want))
		for i, task := range tasks {
			gi, _ := Grad(m, want, task.Train, task.Test, alpha, SecondOrder)
			g.Axpy(weights[i], gi)
		}
		want.Axpy(-beta, g)
	}
	if got.Dist(want) != 0 {
		t.Errorf("centralized SGD trajectory differs by %v", got.Dist(want))
	}
}

func TestTrainCentralizedWithAdam(t *testing.T) {
	m, tasks, weights, theta0 := centralizedFixture(t)
	const alpha = 0.05
	before := objective(m, tasks, weights, theta0, alpha)
	theta, err := TrainCentralized(m, tasks, weights, theta0, alpha, &opt.Adam{LR: 0.05}, 100, SecondOrder, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := objective(m, tasks, weights, theta, alpha)
	if after >= before {
		t.Errorf("Adam-outer training failed: %v -> %v", before, after)
	}
}

func TestTrainCentralizedOnIterCallback(t *testing.T) {
	m, tasks, weights, theta0 := centralizedFixture(t)
	var iters []int
	_, err := TrainCentralized(m, tasks, weights, theta0, 0.05, &opt.SGD{LR: 0.01}, 3, SecondOrder, 1,
		func(iter int, theta tensor.Vec) { iters = append(iters, iter) })
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 || iters[2] != 3 {
		t.Errorf("callback iters = %v", iters)
	}
}

func TestTrainCentralizedValidation(t *testing.T) {
	m, tasks, weights, theta0 := centralizedFixture(t)
	sgd := &opt.SGD{LR: 0.01}
	if _, err := TrainCentralized(nil, tasks, weights, theta0, 0.05, sgd, 1, SecondOrder, 1, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := TrainCentralized(m, nil, nil, theta0, 0.05, sgd, 1, SecondOrder, 1, nil); err == nil {
		t.Error("no tasks accepted")
	}
	if _, err := TrainCentralized(m, tasks, weights[:1], theta0, 0.05, sgd, 1, SecondOrder, 1, nil); err == nil {
		t.Error("weight mismatch accepted")
	}
	if _, err := TrainCentralized(m, tasks, weights, theta0, 0.05, nil, 1, SecondOrder, 1, nil); err == nil {
		t.Error("nil optimizer accepted")
	}
	if _, err := TrainCentralized(m, tasks, weights, theta0, 0, sgd, 1, SecondOrder, 1, nil); err == nil {
		t.Error("zero α accepted")
	}
	if _, err := TrainCentralized(m, tasks, weights, theta0, 0.05, sgd, 0, SecondOrder, 1, nil); err == nil {
		t.Error("zero iters accepted")
	}
	if _, err := TrainCentralized(m, tasks, weights, tensor.NewVec(1), 0.05, sgd, 1, SecondOrder, 1, nil); err == nil {
		t.Error("bad θ0 accepted")
	}
}

func TestTrainCentralizedDivergenceDetected(t *testing.T) {
	m, tasks, weights, theta0 := centralizedFixture(t)
	if _, err := TrainCentralized(m, tasks, weights, theta0, 0.05, &opt.SGD{LR: 1e200}, 5, SecondOrder, 1, nil); err == nil {
		t.Error("divergence not detected")
	}
}

// TrainCentralized must produce a bit-identical trajectory for every worker
// count: per-task gradients land in index slots and are reduced in index
// order regardless of the schedule.
func TestTrainCentralizedWorkerCountInvariance(t *testing.T) {
	m, tasks, weights, theta0 := centralizedFixture(t)
	const alpha = 0.05
	for _, mode := range []GradMode{SecondOrder, FirstOrder} {
		ref, err := TrainCentralized(m, tasks, weights, theta0, alpha, &opt.SGD{LR: 0.02}, 25, mode, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := TrainCentralized(m, tasks, weights, theta0, alpha, &opt.SGD{LR: 0.02}, 25, mode, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("mode=%v workers=%d: theta[%d] = %v, want %v (bit-identical)", mode, workers, i, got[i], ref[i])
				}
			}
		}
	}
}
