package meta

import (
	"testing"

	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// The meta workspace must make the full steady-state meta-gradient
// (inner gradient → inner step → outer gradient → HVP correction) run
// without touching the heap. AllocsPerRun's untimed warmup call sizes the
// grow-only buffers, so a hard 0 is the contract.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f()
	if allocs := testing.AllocsPerRun(20, f); allocs != 0 {
		t.Errorf("%s: %v allocs per call, want 0", name, allocs)
	}
}

func TestWorkspaceGradIntoZeroAllocs(t *testing.T) {
	m := &nn.SoftmaxRegression{In: 5, Classes: 3, L2: 0.01}
	r := rng.New(1)
	train := randBatch(r, 8, 5, 3)
	test := randBatch(r, 8, 5, 3)
	extra := randBatch(r, 4, 5, 3)
	theta := m.InitParams(r)
	ws := NewWorkspace(m)
	grad := tensor.NewVec(m.NumParams())
	phi := tensor.NewVec(m.NumParams())

	assertZeroAllocs(t, "Workspace.GradInto(second-order)", func() {
		ws.GradInto(theta, train, test, 0.05, SecondOrder, grad)
	})
	assertZeroAllocs(t, "Workspace.GradInto(first-order)", func() {
		ws.GradInto(theta, train, test, 0.05, FirstOrder, grad)
	})
	assertZeroAllocs(t, "Workspace.GradWithExtraInto", func() {
		ws.GradWithExtraInto(theta, train, test, extra, 0.05, SecondOrder, grad)
	})
	assertZeroAllocs(t, "Workspace.Objective", func() {
		ws.Objective(theta, train, test, 0.05)
	})
	assertZeroAllocs(t, "Workspace.AdaptInto", func() {
		ws.AdaptInto(theta, train, 0.05, 3, phi)
	})
}

// The workspace methods must agree exactly with the allocating package
// functions — they share the same float operation order, so the comparison
// is for strict equality, not tolerance.

func TestWorkspaceMatchesAllocatingAPI(t *testing.T) {
	for _, m := range []nn.Model{
		&nn.SoftmaxRegression{In: 4, Classes: 3, L2: 0.01},
		mustMLP(t, nn.MLPConfig{Dims: []int{4, 5, 3}, BatchNorm: true}),
	} {
		r := rng.New(2)
		train := randBatch(r, 6, 4, 3)
		test := randBatch(r, 7, 4, 3)
		extra := randBatch(r, 3, 4, 3)
		theta := m.InitParams(r)
		ws := NewWorkspace(m)
		grad := tensor.NewVec(m.NumParams())
		phi := tensor.NewVec(m.NumParams())

		for _, mode := range []GradMode{SecondOrder, FirstOrder} {
			gotPhi := ws.GradInto(theta, train, test, 0.05, mode, grad)
			wantGrad, wantPhi := Grad(m, theta, train, test, 0.05, mode)
			if d := grad.Dist(wantGrad); d != 0 {
				t.Errorf("%T mode %v: GradInto differs from Grad by %g", m, mode, d)
			}
			if d := gotPhi.Dist(wantPhi); d != 0 {
				t.Errorf("%T mode %v: GradInto φ differs by %g", m, mode, d)
			}
		}

		ws.GradWithExtraInto(theta, train, test, extra, 0.05, SecondOrder, grad)
		wantGrad, _ := GradWithExtra(m, theta, train, test, extra, 0.05, SecondOrder)
		if d := grad.Dist(wantGrad); d != 0 {
			t.Errorf("%T: GradWithExtraInto differs by %g", m, d)
		}

		if got, want := ws.Objective(theta, train, test, 0.05), Objective(m, theta, train, test, 0.05); got != want {
			t.Errorf("%T: Objective = %g, want %g", m, got, want)
		}

		ws.AdaptInto(theta, train, 0.05, 4, phi)
		if d := phi.Dist(Adapt(m, theta, train, 0.05, 4)); d != 0 {
			t.Errorf("%T: AdaptInto differs by %g", m, d)
		}

		if d := ws.InnerStepInto(theta, train, 0.05).Dist(InnerStep(m, theta, train, 0.05)); d != 0 {
			t.Errorf("%T: InnerStepInto differs by %g", m, d)
		}
	}
}

func mustMLP(t *testing.T, cfg nn.MLPConfig) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
