package meta

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func randBatch(r *rng.Rand, n, dim, classes int) []data.Sample {
	batch := make([]data.Sample, n)
	for i := range batch {
		x := tensor.NewVec(dim)
		for j := range x {
			x[j] = r.Norm()
		}
		batch[i] = data.Sample{X: x, Y: r.IntN(classes)}
	}
	return batch
}

func relErr(a, b tensor.Vec) float64 {
	d := a.Sub(b).Norm()
	den := math.Max(a.Norm(), b.Norm())
	if den == 0 {
		return d
	}
	return d / den
}

func TestInnerStepMatchesDefinition(t *testing.T) {
	r := rng.New(1)
	m := &nn.SoftmaxRegression{In: 4, Classes: 3}
	theta := m.InitParams(r)
	train := randBatch(r, 5, 4, 3)
	const alpha = 0.1
	phi := InnerStep(m, theta, train, alpha)
	want := theta.Clone()
	want.Axpy(-alpha, m.Grad(theta, train))
	if relErr(phi, want) != 0 {
		t.Error("InnerStep does not match θ − α∇L")
	}
	// θ must be untouched.
	theta2 := m.InitParams(rng.New(1))
	if relErr(theta, theta2) != 0 {
		t.Error("InnerStep modified θ")
	}
}

func TestGradMatchesNumericalMetaObjective(t *testing.T) {
	// The exact (second-order) meta-gradient must match a finite-difference
	// gradient of the composed objective G(θ) = L(θ − α∇L(θ,train), test).
	r := rng.New(2)
	m := &nn.SoftmaxRegression{In: 4, Classes: 3, L2: 0.05}
	theta := m.InitParams(r)
	for i := range theta {
		theta[i] = 0.3 * r.Norm()
	}
	train := randBatch(r, 6, 4, 3)
	test := randBatch(r, 8, 4, 3)
	const alpha = 0.08

	got, _ := Grad(m, theta, train, test, alpha, SecondOrder)

	const eps = 1e-6
	want := tensor.NewVec(len(theta))
	p := theta.Clone()
	for i := range p {
		orig := p[i]
		p[i] = orig + eps
		lp := Objective(m, p, train, test, alpha)
		p[i] = orig - eps
		lm := Objective(m, p, train, test, alpha)
		p[i] = orig
		want[i] = (lp - lm) / (2 * eps)
	}
	if e := relErr(got, want); e > 1e-5 {
		t.Errorf("meta-gradient vs numerical relErr = %v", e)
	}
}

func TestFirstOrderDropsCurvature(t *testing.T) {
	r := rng.New(3)
	m := &nn.SoftmaxRegression{In: 4, Classes: 3}
	theta := m.InitParams(r)
	train := randBatch(r, 6, 4, 3)
	test := randBatch(r, 6, 4, 3)
	const alpha = 0.1

	so, phiSO := Grad(m, theta, train, test, alpha, SecondOrder)
	fo, phiFO := Grad(m, theta, train, test, alpha, FirstOrder)
	if relErr(phiSO, phiFO) != 0 {
		t.Error("φ differs between grad modes")
	}
	// FO must equal ∇L(φ, test) exactly.
	want := m.Grad(phiSO, test)
	if relErr(fo, want) != 0 {
		t.Error("first-order gradient is not ∇L(φ, test)")
	}
	// And differ from the exact gradient (curvature is non-trivial here).
	if relErr(so, fo) < 1e-8 {
		t.Error("second-order and first-order gradients are identical; curvature term lost")
	}
}

func TestGradAlphaZeroReducesToPlainGradient(t *testing.T) {
	r := rng.New(4)
	m := &nn.SoftmaxRegression{In: 3, Classes: 2}
	theta := m.InitParams(r)
	train := randBatch(r, 4, 3, 2)
	test := randBatch(r, 4, 3, 2)
	g, phi := Grad(m, theta, train, test, 0, SecondOrder)
	if relErr(phi, theta) != 0 {
		t.Error("α=0 should leave φ = θ")
	}
	if relErr(g, m.Grad(theta, test)) != 0 {
		t.Error("α=0 meta-gradient should be the plain test gradient")
	}
}

func TestGradWithExtraCombinesOuterLosses(t *testing.T) {
	r := rng.New(5)
	m := &nn.SoftmaxRegression{In: 4, Classes: 3}
	theta := m.InitParams(r)
	train := randBatch(r, 5, 4, 3)
	test := randBatch(r, 5, 4, 3)
	extra := randBatch(r, 5, 4, 3)
	const alpha = 0.07

	got, _ := GradWithExtra(m, theta, train, test, extra, alpha, SecondOrder)

	// Must equal the sum of the two individual meta-gradients.
	g1, _ := Grad(m, theta, train, test, alpha, SecondOrder)
	g2, _ := Grad(m, theta, train, extra, alpha, SecondOrder)
	want := g1.Add(g2)
	if e := relErr(got, want); e > 1e-10 {
		t.Errorf("GradWithExtra relErr = %v", e)
	}

	// Empty extra falls back to the plain meta-gradient.
	got2, _ := GradWithExtra(m, theta, train, test, nil, alpha, SecondOrder)
	if relErr(got2, g1) != 0 {
		t.Error("empty extra changed the meta-gradient")
	}
}

func TestStepMovesAgainstMetaGradient(t *testing.T) {
	r := rng.New(6)
	m := &nn.SoftmaxRegression{In: 4, Classes: 3}
	theta := m.InitParams(r)
	train := randBatch(r, 6, 4, 3)
	test := randBatch(r, 6, 4, 3)
	const alpha, beta = 0.05, 0.1
	next := Step(m, theta, train, test, alpha, beta, SecondOrder)
	g, _ := Grad(m, theta, train, test, alpha, SecondOrder)
	want := theta.Clone()
	want.Axpy(-beta, g)
	if relErr(next, want) != 0 {
		t.Error("Step does not equal θ − β∇G")
	}
}

func TestMetaTrainingImprovesMetaObjective(t *testing.T) {
	// Repeated meta-steps on one task must decrease G(θ).
	r := rng.New(7)
	m := &nn.SoftmaxRegression{In: 5, Classes: 3}
	theta := m.InitParams(r)
	train := randBatch(r, 10, 5, 3)
	test := randBatch(r, 10, 5, 3)
	const alpha, beta = 0.05, 0.2
	before := Objective(m, theta, train, test, alpha)
	for i := 0; i < 60; i++ {
		theta = Step(m, theta, train, test, alpha, beta, SecondOrder)
	}
	after := Objective(m, theta, train, test, alpha)
	if after >= before {
		t.Errorf("meta-training failed to reduce objective: %v -> %v", before, after)
	}
}

func TestAdaptMultiStepReducesLoss(t *testing.T) {
	r := rng.New(8)
	m := &nn.SoftmaxRegression{In: 5, Classes: 3}
	theta := m.InitParams(r)
	adaptSet := randBatch(r, 20, 5, 3)
	phi1 := Adapt(m, theta, adaptSet, 0.3, 1)
	phi10 := Adapt(m, theta, adaptSet, 0.3, 10)
	l0 := m.Loss(theta, adaptSet)
	l1 := m.Loss(phi1, adaptSet)
	l10 := m.Loss(phi10, adaptSet)
	if !(l10 < l1 && l1 < l0) {
		t.Errorf("adaptation losses not decreasing: %v, %v, %v", l0, l1, l10)
	}
	// Zero steps = unchanged.
	if relErr(Adapt(m, theta, adaptSet, 0.3, 0), theta) != 0 {
		t.Error("Adapt with 0 steps changed θ")
	}
}

func TestGradModeString(t *testing.T) {
	if SecondOrder.String() != "second-order" || FirstOrder.String() != "first-order" {
		t.Error("GradMode String broken")
	}
	if GradMode(0).String() != "GradMode(0)" {
		t.Error("unknown GradMode String broken")
	}
}

func TestGradWorksForMLPViaFiniteDiffHVP(t *testing.T) {
	// The MLP has no analytic HVP; the meta-gradient must still match the
	// numerical gradient of the composed objective.
	r := rng.New(9)
	m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{4, 6, 3}})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.InitParams(r)
	train := randBatch(r, 8, 4, 3)
	test := randBatch(r, 8, 4, 3)
	const alpha = 0.05

	got, _ := Grad(m, theta, train, test, alpha, SecondOrder)

	const eps = 1e-5
	want := tensor.NewVec(len(theta))
	p := theta.Clone()
	for i := range p {
		orig := p[i]
		p[i] = orig + eps
		lp := Objective(m, p, train, test, alpha)
		p[i] = orig - eps
		lm := Objective(m, p, train, test, alpha)
		p[i] = orig
		want[i] = (lp - lm) / (2 * eps)
	}
	if e := relErr(got, want); e > 5e-3 {
		t.Errorf("MLP meta-gradient vs numerical relErr = %v", e)
	}
}
