package meta

import (
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

// Workspace owns every buffer one meta-learning loop needs — the inner-
// adapted parameters φ, the inner/outer gradients and the HVP correction —
// plus the model's own nn.Workspace, so the steady-state meta-step
// (gradient → inner step → outer gradient → HVP) allocates nothing.
//
// A workspace is bound to one model and belongs to one goroutine. Vectors
// returned by its methods (φ in particular) alias workspace memory and are
// valid only until the next call on the same workspace; callers that need
// to retain them must Clone. The allocating package functions (Grad, Step,
// Adapt, ...) remain the convenient API for cold paths.
type Workspace struct {
	m   nn.Model
	nws nn.Workspace

	phi    tensor.Vec // inner-adapted parameters
	gInner tensor.Vec // inner gradient ∇L(θ, train)
	gExtra tensor.Vec // second outer gradient of GradWithExtra
	hvp    tensor.Vec // Hessian-vector product scratch
}

// NewWorkspace returns a workspace sized for m.
func NewWorkspace(m nn.Model) *Workspace {
	n := m.NumParams()
	return &Workspace{
		m:      m,
		nws:    nn.NewWorkspace(m),
		phi:    tensor.NewVec(n),
		gInner: tensor.NewVec(n),
		gExtra: tensor.NewVec(n),
		hvp:    tensor.NewVec(n),
	}
}

// Model returns the model the workspace was built for.
func (ws *Workspace) Model() nn.Model { return ws.m }

// InnerStepInto computes φ = θ − α∇L(θ, train) (Eq. 3) into the workspace
// and returns it, via the fused gradient+step kernel (one pass over the
// parameter vector instead of gradient-write, copy, axpy). The result is
// valid until the next call on ws.
func (ws *Workspace) InnerStepInto(theta tensor.Vec, train []data.Sample, alpha float64) tensor.Vec {
	nn.GradStepInto(ws.m, ws.nws, theta, train, alpha, ws.gInner, ws.phi)
	return ws.phi
}

// Objective evaluates the per-node meta-objective G_i(θ) = L(φ_i(θ), test)
// reusing the workspace for the inner step.
func (ws *Workspace) Objective(theta tensor.Vec, train, test []data.Sample, alpha float64) float64 {
	return nn.LossWith(ws.m, ws.nws, ws.InnerStepInto(theta, train, alpha), test)
}

// GradInto computes the meta-gradient ∇_θ L(φ(θ), test) into grad and
// returns φ. grad must alias neither θ nor workspace memory; φ aliases the
// workspace and is valid until the next call on ws.
func (ws *Workspace) GradInto(theta tensor.Vec, train, test []data.Sample, alpha float64, mode GradMode, grad tensor.Vec) (phi tensor.Vec) {
	phi = ws.InnerStepInto(theta, train, alpha)
	nn.GradInto(ws.m, ws.nws, phi, test, grad)
	ws.correctInto(theta, train, alpha, mode, grad)
	return phi
}

// GradWithExtraInto is the buffered counterpart of GradWithExtra: the
// meta-gradient of the combined outer loss L(φ, test) + L(φ, extra)
// (Eq. 14) written into grad. φ aliases the workspace.
func (ws *Workspace) GradWithExtraInto(theta tensor.Vec, train, test, extra []data.Sample, alpha float64, mode GradMode, grad tensor.Vec) (phi tensor.Vec) {
	phi = ws.InnerStepInto(theta, train, alpha)
	nn.GradInto(ws.m, ws.nws, phi, test, grad)
	if len(extra) > 0 {
		nn.GradInto(ws.m, ws.nws, phi, extra, ws.gExtra)
		grad.AddInPlace(ws.gExtra)
	}
	ws.correctInto(theta, train, alpha, mode, grad)
	return phi
}

// correctInto applies the inner-step Jacobian in place:
// g ← (I − α∇²L(θ, train))·g.
func (ws *Workspace) correctInto(theta tensor.Vec, train []data.Sample, alpha float64, mode GradMode, g tensor.Vec) {
	if mode == FirstOrder || alpha == 0 {
		return
	}
	nn.HVPInto(ws.m, ws.nws, theta, train, g, ws.hvp)
	g.Axpy(-alpha, ws.hvp)
}

// AdaptInto performs `steps` full-batch gradient-descent updates from theta
// on the adaptation set (Eq. 6), writing the adapted parameters into phi.
// phi must not alias theta.
func (ws *Workspace) AdaptInto(theta tensor.Vec, adaptSet []data.Sample, alpha float64, steps int, phi tensor.Vec) {
	phi.CopyFrom(theta)
	for s := 0; s < steps; s++ {
		nn.GradStepInto(ws.m, ws.nws, phi, adaptSet, alpha, ws.gInner, phi)
	}
}
