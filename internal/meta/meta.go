// Package meta implements the MAML-style meta-learning machinery at the
// heart of the paper: the one-step inner update φ_i(θ) = θ − α∇L(θ, D_train)
// (Eq. 3), the meta-gradient of the per-node objective
// G_i(θ) = L(φ_i(θ), D_test), and the fast-adaptation procedure used at the
// target edge node (Eq. 6).
//
// The exact meta-gradient is
//
//	∇G_i(θ) = (I − α∇²L(θ, D_train)) ∇L(φ_i, D_test),
//
// which needs one gradient at φ and one Hessian-vector product at θ. The
// first-order approximation (FOMAML/Reptile-style) drops the curvature term;
// it is provided as an ablation.
package meta

import (
	"fmt"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

// GradMode selects how the meta-gradient treats the inner-step curvature.
type GradMode int

const (
	// SecondOrder computes the exact MAML meta-gradient, including the
	// (I − α∇²L) correction. This is what the paper's Algorithm 1 uses.
	SecondOrder GradMode = iota + 1
	// FirstOrder drops the Hessian term (the FOMAML approximation).
	FirstOrder
)

// String implements fmt.Stringer.
func (g GradMode) String() string {
	switch g {
	case SecondOrder:
		return "second-order"
	case FirstOrder:
		return "first-order"
	default:
		return fmt.Sprintf("GradMode(%d)", int(g))
	}
}

// InnerStep returns φ = θ − α ∇L(θ, train) without modifying θ (Eq. 3).
func InnerStep(m nn.Model, theta tensor.Vec, train []data.Sample, alpha float64) tensor.Vec {
	phi := theta.Clone()
	phi.Axpy(-alpha, m.Grad(theta, train))
	return phi
}

// Objective evaluates the per-node meta-objective G_i(θ) = L(φ_i(θ), test).
func Objective(m nn.Model, theta tensor.Vec, train, test []data.Sample, alpha float64) float64 {
	return m.Loss(InnerStep(m, theta, train, alpha), test)
}

// Grad computes the meta-gradient ∇_θ L(φ(θ), test) and returns it together
// with the inner-adapted parameters φ.
func Grad(m nn.Model, theta tensor.Vec, train, test []data.Sample, alpha float64, mode GradMode) (grad, phi tensor.Vec) {
	phi = InnerStep(m, theta, train, alpha)
	gTest := m.Grad(phi, test)
	return correct(m, theta, train, gTest, alpha, mode), phi
}

// GradWithExtra computes the meta-gradient of the combined outer loss
// L(φ, test) + L(φ, extra) used by Robust FedML (Eq. 14), where extra is the
// adversarial dataset. Because the inner-step Jacobian is linear, the outer
// gradients are summed before the single Hessian-vector product.
func GradWithExtra(m nn.Model, theta tensor.Vec, train, test, extra []data.Sample, alpha float64, mode GradMode) (grad, phi tensor.Vec) {
	phi = InnerStep(m, theta, train, alpha)
	gOuter := m.Grad(phi, test)
	if len(extra) > 0 {
		gOuter.AddInPlace(m.Grad(phi, extra))
	}
	return correct(m, theta, train, gOuter, alpha, mode), phi
}

// correct applies the inner-step Jacobian: (I − α∇²L(θ, train))·g.
func correct(m nn.Model, theta tensor.Vec, train []data.Sample, g tensor.Vec, alpha float64, mode GradMode) tensor.Vec {
	if mode == FirstOrder || alpha == 0 {
		return g
	}
	out := g.Clone()
	out.Axpy(-alpha, nn.HVP(m, theta, train, g))
	return out
}

// Step performs one meta-update θ' = θ − β ∇G_i(θ) and returns the new
// parameters (Eq. 4). θ is not modified.
func Step(m nn.Model, theta tensor.Vec, train, test []data.Sample, alpha, beta float64, mode GradMode) tensor.Vec {
	g, _ := Grad(m, theta, train, test, alpha, mode)
	out := theta.Clone()
	out.Axpy(-beta, g)
	return out
}

// Adapt performs `steps` full-batch gradient-descent updates from theta on
// the adaptation set — the target node's fast adaptation (Eq. 6 with
// steps=1). θ is not modified.
func Adapt(m nn.Model, theta tensor.Vec, adaptSet []data.Sample, alpha float64, steps int) tensor.Vec {
	phi := theta.Clone()
	for s := 0; s < steps; s++ {
		phi.Axpy(-alpha, m.Grad(phi, adaptSet))
	}
	return phi
}
