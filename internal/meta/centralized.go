package meta

import (
	"errors"
	"fmt"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/opt"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/tensor"
)

// TrainCentralized runs exact meta-gradient descent on the weighted
// objective G(θ) = Σ_i w_i L(φ_i(θ), test_i): the T0 = 1 reference
// dynamics with perfect aggregation every step. The experiments use it to
// estimate G(θ*) for convergence-error curves and to ablate the outer
// update rule (any opt.Optimizer can drive the meta step; the paper's
// algorithm corresponds to opt.SGD with LR = β).
//
// The per-task gradient pass fans out over `workers` workers (0 =
// GOMAXPROCS, 1 = serial) with one Workspace per worker; per-task
// gradients land in index slots and are reduced in fixed index order, so θ
// is bit-identical for every worker count. The slot buffers cost
// len(tasks) parameter vectors, which is fine at the node counts this
// reference run is used for.
//
// onIter, when non-nil, observes θ after every update. θ0 is not modified.
func TrainCentralized(
	m nn.Model,
	tasks []*data.NodeDataset,
	weights []float64,
	theta0 tensor.Vec,
	alpha float64,
	optimizer opt.Optimizer,
	iters int,
	mode GradMode,
	workers int,
	onIter func(iter int, theta tensor.Vec),
) (tensor.Vec, error) {
	switch {
	case m == nil:
		return nil, errors.New("meta: nil model")
	case len(tasks) == 0:
		return nil, errors.New("meta: no tasks")
	case len(tasks) != len(weights):
		return nil, fmt.Errorf("meta: %d tasks but %d weights", len(tasks), len(weights))
	case optimizer == nil:
		return nil, errors.New("meta: nil optimizer")
	case alpha <= 0:
		return nil, fmt.Errorf("meta: inner rate α must be positive, got %v", alpha)
	case iters <= 0:
		return nil, fmt.Errorf("meta: iteration count must be positive, got %d", iters)
	case len(theta0) != m.NumParams():
		return nil, fmt.Errorf("meta: θ0 has %d params, model needs %d", len(theta0), m.NumParams())
	}
	if mode == 0 {
		mode = SecondOrder
	}

	wss := make([]*Workspace, par.Span(workers, len(tasks)))
	for w := range wss {
		wss[w] = NewWorkspace(m)
	}
	theta := theta0.Clone()
	grad := tensor.NewVec(len(theta))
	slots := make([]tensor.Vec, len(tasks))
	for i := range slots {
		slots[i] = tensor.NewVec(len(theta))
	}
	for t := 1; t <= iters; t++ {
		// θ is read-only during the fan-out; each task's meta-gradient
		// lands in its own slot.
		par.ForEachWorker(workers, len(tasks), func(w, i int) {
			wss[w].GradInto(theta, tasks[i].Train, tasks[i].Test, alpha, mode, slots[i])
		})
		grad.Zero()
		for i := range tasks {
			grad.Axpy(weights[i], slots[i])
		}
		if err := optimizer.Step(theta, grad); err != nil {
			return nil, fmt.Errorf("meta: optimizer step %d: %w", t, err)
		}
		if !theta.IsFinite() {
			return nil, fmt.Errorf("meta: centralized training diverged at iteration %d", t)
		}
		if onIter != nil {
			onIter(t, theta)
		}
	}
	return theta, nil
}
