package eval

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

// ConfusionMatrix counts (true class, predicted class) pairs.
type ConfusionMatrix struct {
	// Classes is the label-space size; Counts is row-major [true][pred].
	Classes int
	Counts  []int
}

// NewConfusionMatrix returns an empty matrix over `classes` labels.
func NewConfusionMatrix(classes int) (*ConfusionMatrix, error) {
	if classes < 2 {
		return nil, fmt.Errorf("eval: confusion matrix needs >= 2 classes, got %d", classes)
	}
	return &ConfusionMatrix{Classes: classes, Counts: make([]int, classes*classes)}, nil
}

// Observe records one (true, predicted) pair.
func (c *ConfusionMatrix) Observe(trueClass, predicted int) error {
	if trueClass < 0 || trueClass >= c.Classes || predicted < 0 || predicted >= c.Classes {
		return fmt.Errorf("eval: observation (%d, %d) outside %d classes", trueClass, predicted, c.Classes)
	}
	c.Counts[trueClass*c.Classes+predicted]++
	return nil
}

// At returns the count of samples with the given true class predicted as
// the given class.
func (c *ConfusionMatrix) At(trueClass, predicted int) int {
	return c.Counts[trueClass*c.Classes+predicted]
}

// Total returns the number of observations.
func (c *ConfusionMatrix) Total() int {
	var t int
	for _, v := range c.Counts {
		t += v
	}
	return t
}

// Accuracy returns the trace fraction, or 0 with no observations.
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for k := 0; k < c.Classes; k++ {
		correct += c.At(k, k)
	}
	return float64(correct) / float64(total)
}

// Recall returns per-class recall (diagonal over row sum); classes never
// observed get NaN-free 0.
func (c *ConfusionMatrix) Recall() []float64 {
	out := make([]float64, c.Classes)
	for k := 0; k < c.Classes; k++ {
		var row int
		for j := 0; j < c.Classes; j++ {
			row += c.At(k, j)
		}
		if row > 0 {
			out[k] = float64(c.At(k, k)) / float64(row)
		}
	}
	return out
}

// Precision returns per-class precision (diagonal over column sum).
func (c *ConfusionMatrix) Precision() []float64 {
	out := make([]float64, c.Classes)
	for k := 0; k < c.Classes; k++ {
		var col int
		for j := 0; j < c.Classes; j++ {
			col += c.At(j, k)
		}
		if col > 0 {
			out[k] = float64(c.At(k, k)) / float64(col)
		}
	}
	return out
}

// MacroF1 returns the unweighted mean F1 over classes that appear in the
// data (either as truth or prediction).
func (c *ConfusionMatrix) MacroF1() float64 {
	prec := c.Precision()
	rec := c.Recall()
	var sum float64
	active := 0
	for k := 0; k < c.Classes; k++ {
		var seen int
		for j := 0; j < c.Classes; j++ {
			seen += c.At(k, j) + c.At(j, k)
		}
		if seen == 0 {
			continue
		}
		active++
		if prec[k]+rec[k] > 0 {
			sum += 2 * prec[k] * rec[k] / (prec[k] + rec[k])
		}
	}
	if active == 0 {
		return 0
	}
	return sum / float64(active)
}

// String renders the matrix with row/column headers.
func (c *ConfusionMatrix) String() string {
	var b strings.Builder
	b.WriteString("true\\pred")
	for j := 0; j < c.Classes; j++ {
		fmt.Fprintf(&b, "%6d", j)
	}
	b.WriteByte('\n')
	for k := 0; k < c.Classes; k++ {
		fmt.Fprintf(&b, "%9d", k)
		for j := 0; j < c.Classes; j++ {
			fmt.Fprintf(&b, "%6d", c.At(k, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Confusion evaluates the model on batch and returns the confusion matrix.
func Confusion(m nn.Model, params tensor.Vec, batch []data.Sample, classes int) (*ConfusionMatrix, error) {
	cm, err := NewConfusionMatrix(classes)
	if err != nil {
		return nil, err
	}
	if len(batch) == 0 {
		return cm, nil
	}
	preds := m.PredictBatch(params, batch)
	for i, s := range batch {
		if err := cm.Observe(s.Y, preds[i]); err != nil {
			return nil, fmt.Errorf("eval: sample %d: %w", i, err)
		}
	}
	return cm, nil
}
