// Package eval provides the measurement side of the reproduction: the global
// meta-learning objective G(θ) tracked by the convergence experiments, and
// the fast-adaptation curves (loss/accuracy at the target nodes as a
// function of adaptation gradient steps) reported in Figures 3 and 4.
package eval

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/dro"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/tensor"
)

// The measurement loops in this package fan out over nodes/targets on the
// shared par pool. Every parallel function follows the par contract
// (per-index result slots, one workspace per worker, index-ordered
// reduction on the calling goroutine), so results are bit-identical for
// every worker count — the `...N` variants take an explicit worker count
// (0 = GOMAXPROCS, 1 = serial) and the suffix-free wrappers use 0.

// GlobalMetaObjective evaluates G(θ) = Σ_i ω_i L(φ_i(θ), D_i^test) over the
// federation's source nodes — the quantity whose convergence Theorem 2
// bounds — using all cores.
func GlobalMetaObjective(m nn.Model, fed *data.Federation, alpha float64, theta tensor.Vec) float64 {
	return GlobalMetaObjectiveN(m, fed, alpha, theta, 0)
}

// GlobalMetaObjectiveN is GlobalMetaObjective on `workers` workers. The
// per-node terms land in index slots and are summed in index order, so the
// value is bit-identical for every worker count.
func GlobalMetaObjectiveN(m nn.Model, fed *data.Federation, alpha float64, theta tensor.Vec, workers int) float64 {
	weights := fed.Weights()
	n := len(fed.Sources)
	// One workspace serves every node a worker processes.
	wss := make([]*meta.Workspace, par.Span(workers, n))
	terms := make([]float64, n)
	par.ForEachWorker(workers, n, func(w, i int) {
		if wss[w] == nil {
			wss[w] = meta.NewWorkspace(m)
		}
		nd := fed.Sources[i]
		terms[i] = weights[i] * wss[w].Objective(theta, nd.Train, nd.Test, alpha)
	})
	var total float64
	for _, term := range terms {
		total += term
	}
	return total
}

// Point is one tracked measurement.
type Point struct {
	// Iter is the global iteration count at measurement time.
	Iter int
	// Value is the measured quantity (loss, accuracy, ...).
	Value float64
}

// Series is a named sequence of measurements, ordered by insertion.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a measurement.
func (s *Series) Add(iter int, value float64) {
	s.Points = append(s.Points, Point{Iter: iter, Value: value})
}

// Last returns the most recent point; ok is false if the series is empty.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// Min returns the smallest value in the series (+Inf-free: zero for empty).
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Value
	for _, p := range s.Points[1:] {
		if p.Value < m {
			m = p.Value
		}
	}
	return m
}

// TSV renders the series as two tab-separated columns, one point per line.
func (s *Series) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%d\t%.6g\n", p.Iter, p.Value)
	}
	return b.String()
}

// AdaptPoint is the target-node performance after a number of fast-
// adaptation gradient steps.
type AdaptPoint struct {
	Step     int
	Loss     float64
	Accuracy float64
}

// AdaptationCurve adapts theta on the node's K-sample training set for up to
// maxSteps gradient steps at rate alpha, recording the test-set loss and
// accuracy after every step. Entry 0 is the un-adapted model.
func AdaptationCurve(m nn.Model, theta tensor.Vec, node *data.NodeDataset, alpha float64, maxSteps int) []AdaptPoint {
	curve := make([]AdaptPoint, 0, maxSteps+1)
	// One workspace serves the whole curve: each adaptation step is the
	// fused gradient+step kernel and each loss evaluation reuses the same
	// scratch, instead of allocating per step. Numbers are unchanged — the
	// buffered kernels are bit-identical to the allocating ones.
	ws := nn.NewWorkspace(m)
	g := tensor.NewVec(m.NumParams())
	phi := theta.Clone()
	for step := 0; step <= maxSteps; step++ {
		if step > 0 {
			nn.GradStepInto(m, ws, phi, node.Train, alpha, g, phi)
		}
		curve = append(curve, AdaptPoint{
			Step:     step,
			Loss:     nn.LossWith(m, ws, phi, node.Test),
			Accuracy: nn.Accuracy(m, phi, node.Test),
		})
	}
	return curve
}

// AverageAdaptationCurve averages AdaptationCurve over all target nodes —
// the quantity plotted in Figures 3(c)–3(e) — using all cores.
func AverageAdaptationCurve(m nn.Model, theta tensor.Vec, targets []*data.NodeDataset, alpha float64, maxSteps int) []AdaptPoint {
	return AverageAdaptationCurveN(m, theta, targets, alpha, maxSteps, 0)
}

// AverageAdaptationCurveN is AverageAdaptationCurve on `workers` workers.
// Per-target curves are computed into index slots and averaged in index
// order, so the curve is bit-identical for every worker count.
func AverageAdaptationCurveN(m nn.Model, theta tensor.Vec, targets []*data.NodeDataset, alpha float64, maxSteps, workers int) []AdaptPoint {
	if len(targets) == 0 {
		return nil
	}
	curves := make([][]AdaptPoint, len(targets))
	par.ForEach(workers, len(targets), func(t int) {
		curves[t] = AdaptationCurve(m, theta, targets[t], alpha, maxSteps)
	})
	return averageCurves(curves, maxSteps)
}

// averageCurves reduces per-target curves in index order.
func averageCurves(curves [][]AdaptPoint, maxSteps int) []AdaptPoint {
	avg := make([]AdaptPoint, maxSteps+1)
	for _, curve := range curves {
		for i, p := range curve {
			avg[i].Step = p.Step
			avg[i].Loss += p.Loss
			avg[i].Accuracy += p.Accuracy
		}
	}
	inv := 1 / float64(len(curves))
	for i := range avg {
		avg[i].Loss *= inv
		avg[i].Accuracy *= inv
	}
	return avg
}

// AdversarialAdaptationCurve adapts on the node's CLEAN training data and,
// after every step, evaluates on an FGSM-attacked copy of the node's test
// set (attack budget xi, white-box against the currently adapted
// parameters) — the Figure 4 protocol. Entry 0 is the un-adapted model.
func AdversarialAdaptationCurve(m nn.Model, theta tensor.Vec, node *data.NodeDataset, alpha float64, maxSteps int, xi, clampMin, clampMax float64) ([]AdaptPoint, error) {
	curve := make([]AdaptPoint, 0, maxSteps+1)
	ws := nn.NewWorkspace(m)
	g := tensor.NewVec(m.NumParams())
	phi := theta.Clone()
	for step := 0; step <= maxSteps; step++ {
		if step > 0 {
			nn.GradStepInto(m, ws, phi, node.Train, alpha, g, phi)
		}
		advTest, err := dro.FGSMBatch(m, phi, node.Test, xi, clampMin, clampMax)
		if err != nil {
			return nil, fmt.Errorf("eval: FGSM at step %d: %w", step, err)
		}
		curve = append(curve, AdaptPoint{
			Step:     step,
			Loss:     nn.LossWith(m, ws, phi, advTest),
			Accuracy: nn.Accuracy(m, phi, advTest),
		})
	}
	return curve, nil
}

// AverageAdversarialAdaptationCurve averages AdversarialAdaptationCurve over
// the target nodes, using all cores.
func AverageAdversarialAdaptationCurve(m nn.Model, theta tensor.Vec, targets []*data.NodeDataset, alpha float64, maxSteps int, xi, clampMin, clampMax float64) ([]AdaptPoint, error) {
	return AverageAdversarialAdaptationCurveN(m, theta, targets, alpha, maxSteps, xi, clampMin, clampMax, 0)
}

// AverageAdversarialAdaptationCurveN is AverageAdversarialAdaptationCurve on
// `workers` workers, bit-identical for every worker count. On failure the
// reported error is the one of the lowest-indexed failing target, matching
// the sequential loop.
func AverageAdversarialAdaptationCurveN(m nn.Model, theta tensor.Vec, targets []*data.NodeDataset, alpha float64, maxSteps int, xi, clampMin, clampMax float64, workers int) ([]AdaptPoint, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	curves := make([][]AdaptPoint, len(targets))
	err := par.ForEachErr(workers, len(targets), func(t int) error {
		curve, err := AdversarialAdaptationCurve(m, theta, targets[t], alpha, maxSteps, xi, clampMin, clampMax)
		if err != nil {
			return fmt.Errorf("eval: target %d: %w", t, err)
		}
		curves[t] = curve
		return nil
	})
	if err != nil {
		return nil, err
	}
	return averageCurves(curves, maxSteps), nil
}
