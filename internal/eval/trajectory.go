package eval

import "github.com/edgeai/fedml/internal/obs"

// MetaLossTrajectory rebuilds a per-round meta-objective Series from the
// round records an obs.Recorder (or a parsed metrics JSONL) captured during
// training. Rounds that never got a loss measurement (the tracker samples
// every few rounds) and skipped rounds are left out, so the series contains
// exactly the measured points, keyed by cumulative local iteration — the
// x-axis the paper's convergence figures use.
func MetaLossTrajectory(name string, rounds []obs.RoundRecord) *Series {
	s := &Series{Name: name}
	for _, r := range rounds {
		if r.Skipped || r.Loss == nil {
			continue
		}
		s.Add(r.Iter, *r.Loss)
	}
	return s
}

// TrafficTrajectory extracts the cumulative wire bytes after each round as
// a Series over cumulative local iterations — the joining key for
// accuracy-vs-bytes comparisons of update codecs. Skipped rounds still
// carried traffic (their broadcasts and probes were billed) and are kept.
func TrafficTrajectory(name string, rounds []obs.RoundRecord) *Series {
	s := &Series{Name: name}
	for _, r := range rounds {
		s.Add(r.Iter, float64(r.Cum.Bytes))
	}
	return s
}

// DispersionTrajectory extracts the per-round update dispersion (the task
// similarity proxy the adaptive-T0 controller consumes) as a Series over
// cumulative local iterations. Skipped rounds carry no aggregation and are
// left out.
func DispersionTrajectory(name string, rounds []obs.RoundRecord) *Series {
	s := &Series{Name: name}
	for _, r := range rounds {
		if r.Skipped {
			continue
		}
		s.Add(r.Iter, r.Dispersion)
	}
	return s
}
