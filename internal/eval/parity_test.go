package eval

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/rng"
)

// The percentile index must be the classical order statistic ceil(q·n)−1,
// clamped into range. The previous truncating implementation read one slot
// too high whenever q·n was integral — exactly the common case of 95%
// confidence with a round resample count.
func TestQuantileIndexKnownOrderStatistics(t *testing.T) {
	cases := []struct {
		q    float64
		n    int
		want int
	}{
		{0.025, 2000, 49},   // lower bound at 95%/2000: ceil(50)−1
		{0.975, 2000, 1949}, // upper bound at 95%/2000 — the old code gave 1950
		{0.05, 1000, 49},
		{0.95, 1000, 949},
		{0.5, 10, 4},
		{0.5, 11, 5}, // ceil(5.5)−1
		{0.005, 100, 0},
		{0.995, 100, 99}, // ceil(99.5)−1
		{0, 5, 0},        // clamp low
		{1, 5, 4},
	}
	for _, c := range cases {
		if got := quantileIndex(c.q, c.n); got != c.want {
			t.Errorf("quantileIndex(%v, %d) = %d, want %d", c.q, c.n, got, c.want)
		}
	}
}

// quantileIndex must return the MINIMAL index i with i+1 ≥ q·n: large enough
// to cover the q-mass, and not one slot beyond it.
func TestQuantileIndexIsMinimalCoveringIndex(t *testing.T) {
	for _, n := range []int{10, 37, 100, 2000} {
		for q := 0.01; q < 1; q += 0.0137 {
			i := quantileIndex(q, n)
			if i < 0 || i >= n {
				t.Fatalf("quantileIndex(%v, %d) = %d out of range", q, n, i)
			}
			if float64(i+1) < q*float64(n)-1e-9 {
				t.Errorf("quantileIndex(%v, %d) = %d does not cover q·n = %v", q, n, i, q*float64(n))
			}
			if i > 0 && float64(i) >= q*float64(n)+1e-9 {
				t.Errorf("quantileIndex(%v, %d) = %d is not minimal (i = %d already covers)", q, n, i, i-1)
			}
		}
	}
}

// Every parallel eval entry point must be bit-identical across worker
// counts — the determinism contract of the par pool.
func TestEvalWorkerCountInvariance(t *testing.T) {
	fed, m := tinyFederation(t)
	theta := m.InitParams(rng.New(7))

	refObj := GlobalMetaObjectiveN(m, fed, 0.05, theta, 1)
	refCurve := AverageAdaptationCurveN(m, theta, fed.Targets, 0.05, 4, 1)
	refAcc := FinalAccuraciesN(m, theta, fed.Targets, 0.05, 3, 1)
	refAdv, err := AverageAdversarialAdaptationCurveN(m, theta, fed.Targets, 0.05, 2, 0.01, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		if got := GlobalMetaObjectiveN(m, fed, 0.05, theta, workers); got != refObj {
			t.Errorf("workers=%d: GlobalMetaObjectiveN = %v, want %v (bit-identical)", workers, got, refObj)
		}
		curve := AverageAdaptationCurveN(m, theta, fed.Targets, 0.05, 4, workers)
		for i := range curve {
			if curve[i] != refCurve[i] {
				t.Errorf("workers=%d: adaptation curve step %d = %+v, want %+v", workers, i, curve[i], refCurve[i])
			}
		}
		acc := FinalAccuraciesN(m, theta, fed.Targets, 0.05, 3, workers)
		for i := range acc {
			if acc[i] != refAcc[i] {
				t.Errorf("workers=%d: final accuracy %d = %v, want %v", workers, i, acc[i], refAcc[i])
			}
		}
		adv, err := AverageAdversarialAdaptationCurveN(m, theta, fed.Targets, 0.05, 2, 0.01, 0, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range adv {
			if adv[i] != refAdv[i] {
				t.Errorf("workers=%d: adversarial curve step %d = %+v, want %+v", workers, i, adv[i], refAdv[i])
			}
		}
	}
}

// The bootstrap shards resamples across workers with per-resample RNG
// streams; the interval must be bit-identical for every worker count, and
// the parent stream must never be advanced by the call.
func TestPairedBootstrapWorkerCountInvariance(t *testing.T) {
	r := rng.New(42)
	a := make([]float64, 25)
	b := make([]float64, 25)
	for i := range a {
		a[i] = 0.5 + 0.1*math.Sin(float64(i))
		b[i] = 0.45 + 0.1*math.Cos(float64(3*i))
	}
	ref, err := PairedBootstrapN(rng.New(42), a, b, 500, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := PairedBootstrapN(rng.New(42), a, b, 500, 0.95, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("workers=%d: bootstrap = %+v, want %+v (bit-identical)", workers, got, ref)
		}
	}
	// The parent stream is only Split, never drawn from: a draw after the
	// call must match a draw from a fresh stream with the same seed.
	if _, err := PairedBootstrapN(r, a, b, 100, 0.9, 4); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Float64(), rng.New(42).Float64(); got != want {
		t.Errorf("parent stream advanced by bootstrap: next draw %v, want %v", got, want)
	}
}
