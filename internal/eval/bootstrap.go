package eval

import (
	"fmt"
	"sort"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// BootstrapResult summarizes a paired-bootstrap comparison.
type BootstrapResult struct {
	// MeanDiff is the observed mean of a[i] − b[i].
	MeanDiff float64
	// Lo, Hi bound the percentile confidence interval of the mean
	// difference.
	Lo, Hi float64
	// Significant reports whether the interval excludes zero.
	Significant bool
}

// PairedBootstrap estimates a percentile confidence interval for the mean
// difference between two paired per-target metric vectors (e.g. the adapted
// accuracies of two algorithms on the same target nodes) by resampling
// target indices with replacement. The randomness is fully deterministic
// given r.
func PairedBootstrap(r *rng.Rand, a, b []float64, resamples int, confidence float64) (BootstrapResult, error) {
	switch {
	case len(a) == 0 || len(a) != len(b):
		return BootstrapResult{}, fmt.Errorf("eval: paired bootstrap needs equal non-empty vectors, got %d and %d", len(a), len(b))
	case resamples < 10:
		return BootstrapResult{}, fmt.Errorf("eval: need at least 10 resamples, got %d", resamples)
	case confidence <= 0 || confidence >= 1:
		return BootstrapResult{}, fmt.Errorf("eval: confidence must be in (0,1), got %v", confidence)
	case r == nil:
		return BootstrapResult{}, fmt.Errorf("eval: nil rng")
	}

	n := len(a)
	diffs := make([]float64, n)
	var mean float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		mean += diffs[i] / float64(n)
	}

	means := make([]float64, resamples)
	for k := 0; k < resamples; k++ {
		var m float64
		for j := 0; j < n; j++ {
			m += diffs[r.IntN(n)]
		}
		means[k] = m / float64(n)
	}
	sort.Float64s(means)
	tail := (1 - confidence) / 2
	lo := means[clampIndex(int(tail*float64(resamples)), resamples)]
	hi := means[clampIndex(int((1-tail)*float64(resamples)), resamples)]

	return BootstrapResult{
		MeanDiff:    mean,
		Lo:          lo,
		Hi:          hi,
		Significant: lo > 0 || hi < 0,
	}, nil
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// FinalAccuracies returns each target node's test accuracy after `steps`
// fast-adaptation gradient steps — the per-target vector the paired
// bootstrap compares across algorithms.
func FinalAccuracies(m nn.Model, theta tensor.Vec, targets []*data.NodeDataset, alpha float64, steps int) []float64 {
	out := make([]float64, len(targets))
	for i, node := range targets {
		curve := AdaptationCurve(m, theta, node, alpha, steps)
		out[i] = curve[len(curve)-1].Accuracy
	}
	return out
}

// CompareAlgorithms runs the paired bootstrap on the final adapted
// accuracies of two initializations over the same target nodes.
func CompareAlgorithms(r *rng.Rand, m nn.Model, thetaA, thetaB tensor.Vec, targets []*data.NodeDataset, alpha float64, steps, resamples int, confidence float64) (BootstrapResult, error) {
	if len(targets) == 0 {
		return BootstrapResult{}, fmt.Errorf("eval: no target nodes to compare on")
	}
	a := FinalAccuracies(m, thetaA, targets, alpha, steps)
	b := FinalAccuracies(m, thetaB, targets, alpha, steps)
	return PairedBootstrap(r, a, b, resamples, confidence)
}
