package eval

import (
	"fmt"
	"math"
	"sort"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// BootstrapResult summarizes a paired-bootstrap comparison.
type BootstrapResult struct {
	// MeanDiff is the observed mean of a[i] − b[i].
	MeanDiff float64
	// Lo, Hi bound the percentile confidence interval of the mean
	// difference.
	Lo, Hi float64
	// Significant reports whether the interval excludes zero.
	Significant bool
}

// PairedBootstrap estimates a percentile confidence interval for the mean
// difference between two paired per-target metric vectors (e.g. the adapted
// accuracies of two algorithms on the same target nodes) by resampling
// target indices with replacement, using all cores. The randomness is fully
// deterministic given r.
func PairedBootstrap(r *rng.Rand, a, b []float64, resamples int, confidence float64) (BootstrapResult, error) {
	return PairedBootstrapN(r, a, b, resamples, confidence, 0)
}

// PairedBootstrapN is PairedBootstrap on `workers` workers. Each resample
// draws from its own RNG stream split off r by resample index, so the
// resampled means — and hence the interval — are bit-identical for every
// worker count. r itself is never advanced.
func PairedBootstrapN(r *rng.Rand, a, b []float64, resamples int, confidence float64, workers int) (BootstrapResult, error) {
	switch {
	case len(a) == 0 || len(a) != len(b):
		return BootstrapResult{}, fmt.Errorf("eval: paired bootstrap needs equal non-empty vectors, got %d and %d", len(a), len(b))
	case resamples < 10:
		return BootstrapResult{}, fmt.Errorf("eval: need at least 10 resamples, got %d", resamples)
	case confidence <= 0 || confidence >= 1:
		return BootstrapResult{}, fmt.Errorf("eval: confidence must be in (0,1), got %v", confidence)
	case r == nil:
		return BootstrapResult{}, fmt.Errorf("eval: nil rng")
	}

	n := len(a)
	diffs := make([]float64, n)
	var mean float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		mean += diffs[i] / float64(n)
	}

	means := make([]float64, resamples)
	par.ForEach(workers, resamples, func(k int) {
		// Split reads r without advancing it, so concurrent splits are
		// safe and the stream for resample k is worker-independent.
		rk := r.Split(uint64(k))
		var m float64
		for j := 0; j < n; j++ {
			m += diffs[rk.IntN(n)]
		}
		means[k] = m / float64(n)
	})
	sort.Float64s(means)
	tail := (1 - confidence) / 2
	lo := means[quantileIndex(tail, resamples)]
	hi := means[quantileIndex(1-tail, resamples)]

	return BootstrapResult{
		MeanDiff:    mean,
		Lo:          lo,
		Hi:          hi,
		Significant: lo > 0 || hi < 0,
	}, nil
}

// quantileIndex returns the 0-based index of the q-th order statistic of n
// sorted samples: the smallest index i such that i+1 ≥ q·n, i.e.
// ceil(q·n) − 1, clamped to [0, n−1]. Truncating q·n instead (the previous
// implementation) selected one slot too high whenever q·n was integral —
// at 95% confidence with 2000 resamples the upper bound read means[1950]
// rather than the 97.5th-percentile order statistic means[1949].
func quantileIndex(q float64, n int) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// FinalAccuracies returns each target node's test accuracy after `steps`
// fast-adaptation gradient steps — the per-target vector the paired
// bootstrap compares across algorithms — using all cores.
func FinalAccuracies(m nn.Model, theta tensor.Vec, targets []*data.NodeDataset, alpha float64, steps int) []float64 {
	return FinalAccuraciesN(m, theta, targets, alpha, steps, 0)
}

// FinalAccuraciesN is FinalAccuracies on `workers` workers; per-target
// slots make it bit-identical for every worker count.
func FinalAccuraciesN(m nn.Model, theta tensor.Vec, targets []*data.NodeDataset, alpha float64, steps, workers int) []float64 {
	out := make([]float64, len(targets))
	par.ForEach(workers, len(targets), func(i int) {
		curve := AdaptationCurve(m, theta, targets[i], alpha, steps)
		out[i] = curve[len(curve)-1].Accuracy
	})
	return out
}

// CompareAlgorithms runs the paired bootstrap on the final adapted
// accuracies of two initializations over the same target nodes, using all
// cores.
func CompareAlgorithms(r *rng.Rand, m nn.Model, thetaA, thetaB tensor.Vec, targets []*data.NodeDataset, alpha float64, steps, resamples int, confidence float64) (BootstrapResult, error) {
	return CompareAlgorithmsN(r, m, thetaA, thetaB, targets, alpha, steps, resamples, confidence, 0)
}

// CompareAlgorithmsN is CompareAlgorithms on `workers` workers.
func CompareAlgorithmsN(r *rng.Rand, m nn.Model, thetaA, thetaB tensor.Vec, targets []*data.NodeDataset, alpha float64, steps, resamples int, confidence float64, workers int) (BootstrapResult, error) {
	if len(targets) == 0 {
		return BootstrapResult{}, fmt.Errorf("eval: no target nodes to compare on")
	}
	a := FinalAccuraciesN(m, thetaA, targets, alpha, steps, workers)
	b := FinalAccuraciesN(m, thetaB, targets, alpha, steps, workers)
	return PairedBootstrapN(r, a, b, resamples, confidence, workers)
}
