package eval

import (
	"testing"

	"github.com/edgeai/fedml/internal/rng"
)

func TestPairedBootstrapValidation(t *testing.T) {
	r := rng.New(1)
	a := []float64{1, 2, 3}
	if _, err := PairedBootstrap(r, nil, nil, 100, 0.95); err == nil {
		t.Error("empty vectors accepted")
	}
	if _, err := PairedBootstrap(r, a, a[:2], 100, 0.95); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedBootstrap(r, a, a, 5, 0.95); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := PairedBootstrap(r, a, a, 100, 1.5); err == nil {
		t.Error("bad confidence accepted")
	}
	if _, err := PairedBootstrap(nil, a, a, 100, 0.95); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestPairedBootstrapIdenticalVectors(t *testing.T) {
	r := rng.New(2)
	a := []float64{0.5, 0.6, 0.7, 0.8}
	res, err := PairedBootstrap(r, a, a, 500, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDiff != 0 || res.Lo != 0 || res.Hi != 0 {
		t.Errorf("identical vectors gave %+v", res)
	}
	if res.Significant {
		t.Error("zero difference reported significant")
	}
}

func TestPairedBootstrapClearDifference(t *testing.T) {
	r := rng.New(3)
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i] = 0.8 + 0.01*float64(i%3)
		b[i] = 0.5 + 0.01*float64(i%3)
	}
	res, err := PairedBootstrap(r, a, b, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("0.3 mean gap not significant: %+v", res)
	}
	if res.MeanDiff < 0.29 || res.MeanDiff > 0.31 {
		t.Errorf("mean diff = %v", res.MeanDiff)
	}
	const eps = 1e-9 // summation-order slack; all pairwise diffs are ~0.3
	if res.Lo > res.MeanDiff+eps || res.Hi < res.MeanDiff-eps {
		t.Errorf("interval [%v, %v] does not cover the mean %v", res.Lo, res.Hi, res.MeanDiff)
	}
}

func TestPairedBootstrapNoisyNoDifference(t *testing.T) {
	// Paired noise with no systematic difference: the CI should straddle 0.
	r := rng.New(4)
	gen := rng.New(5)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		base := gen.Float64()
		a[i] = base + 0.05*gen.Norm()
		b[i] = base + 0.05*gen.Norm()
	}
	res, err := PairedBootstrap(r, a, b, 2000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Errorf("pure noise reported significant: %+v", res)
	}
}

func TestPairedBootstrapDeterministic(t *testing.T) {
	a := []float64{0.1, 0.9, 0.4, 0.6, 0.3}
	b := []float64{0.2, 0.7, 0.5, 0.4, 0.5}
	r1, r2 := rng.New(7), rng.New(7)
	res1, err := PairedBootstrap(r1, a, b, 500, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := PairedBootstrap(r2, a, b, 500, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Errorf("bootstrap not deterministic: %+v vs %+v", res1, res2)
	}
}

func TestCompareAlgorithmsEndToEnd(t *testing.T) {
	fed, m := tinyFederation(t)
	r := rng.New(9)
	thetaGood := m.InitParams(rng.New(1))
	// Train one initialization briefly so the two differ meaningfully.
	var all []float64
	_ = all
	for i := 0; i < 50; i++ {
		for _, nd := range fed.Sources {
			thetaGood.Axpy(-0.02, m.Grad(thetaGood, nd.Train))
		}
	}
	thetaBad := m.InitParams(rng.New(2))

	res, err := CompareAlgorithms(r, m, thetaGood, thetaBad, fed.Targets, 0.05, 3, 500, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDiff < -1 || res.MeanDiff > 1 {
		t.Errorf("nonsense mean diff %v", res.MeanDiff)
	}
	if _, err := CompareAlgorithms(r, m, thetaGood, thetaBad, nil, 0.05, 3, 500, 0.9); err == nil {
		t.Error("empty target list accepted")
	}
}
