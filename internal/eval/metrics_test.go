package eval

import (
	"math"
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
)

func TestNewConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix(1); err == nil {
		t.Error("1-class matrix accepted")
	}
	cm, err := NewConfusionMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 0 || cm.Accuracy() != 0 {
		t.Error("fresh matrix not empty")
	}
}

func TestConfusionObserveAndMetrics(t *testing.T) {
	cm, _ := NewConfusionMatrix(2)
	// truth 0: 3 correct, 1 wrong; truth 1: 2 correct, 0 wrong.
	obs := [][2]int{{0, 0}, {0, 0}, {0, 0}, {0, 1}, {1, 1}, {1, 1}}
	for _, o := range obs {
		if err := cm.Observe(o[0], o[1]); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Total() != 6 {
		t.Errorf("total = %d", cm.Total())
	}
	if got := cm.Accuracy(); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
	rec := cm.Recall()
	if math.Abs(rec[0]-0.75) > 1e-12 || rec[1] != 1 {
		t.Errorf("recall = %v", rec)
	}
	prec := cm.Precision()
	if prec[0] != 1 || math.Abs(prec[1]-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", prec)
	}
	// F1_0 = 2*1*0.75/1.75 = 6/7; F1_1 = 2*(2/3)*1/(5/3) = 0.8.
	wantF1 := (6.0/7 + 0.8) / 2
	if got := cm.MacroF1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("macro F1 = %v, want %v", got, wantF1)
	}
}

func TestConfusionObserveRejectsOutOfRange(t *testing.T) {
	cm, _ := NewConfusionMatrix(2)
	for _, o := range [][2]int{{-1, 0}, {0, 2}, {2, 0}, {0, -1}} {
		if err := cm.Observe(o[0], o[1]); err == nil {
			t.Errorf("observation %v accepted", o)
		}
	}
}

func TestConfusionMacroF1SkipsUnseenClasses(t *testing.T) {
	cm, _ := NewConfusionMatrix(4)
	_ = cm.Observe(0, 0)
	_ = cm.Observe(1, 1)
	// Classes 2, 3 never appear: macro F1 over active classes only.
	if got := cm.MacroF1(); got != 1 {
		t.Errorf("macro F1 = %v, want 1", got)
	}
	empty, _ := NewConfusionMatrix(2)
	if empty.MacroF1() != 0 {
		t.Error("empty macro F1 should be 0")
	}
}

func TestConfusionString(t *testing.T) {
	cm, _ := NewConfusionMatrix(2)
	_ = cm.Observe(0, 1)
	s := cm.String()
	if !strings.Contains(s, "true\\pred") || !strings.Contains(s, "1") {
		t.Errorf("render: %q", s)
	}
}

func TestConfusionFromModel(t *testing.T) {
	fed, m := tinyFederation(t)
	theta := m.InitParams(rng.New(1))
	var all []data.Sample
	for _, n := range fed.Sources {
		all = append(all, n.Test...)
	}
	cm, err := Confusion(m, theta, all, fed.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != len(all) {
		t.Errorf("observed %d of %d", cm.Total(), len(all))
	}
	// Matrix accuracy must agree with nn.Accuracy.
	preds := m.PredictBatch(theta, all)
	correct := 0
	for i, s := range all {
		if preds[i] == s.Y {
			correct++
		}
	}
	if math.Abs(cm.Accuracy()-float64(correct)/float64(len(all))) > 1e-12 {
		t.Error("confusion accuracy disagrees with direct count")
	}

	empty, err := Confusion(m, theta, nil, fed.NumClasses)
	if err != nil || empty.Total() != 0 {
		t.Error("empty batch confusion broken")
	}
	if _, err := Confusion(m, theta, all, 1); err == nil {
		t.Error("bad class count accepted")
	}
}
