package eval

import (
	"fmt"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

// Personalization is the personalized-vs-global evaluation split on a set of
// held-out target nodes: how well one shared model θ does as-is, versus
// after each node fine-tunes it on its own K-shot training split. The gap
// between the two numbers is what the new-workloads comparison matrices
// report per algorithm (Fed-Meta-Align style).
type Personalization struct {
	// Global is the mean test accuracy of θ applied unchanged.
	Global float64
	// Adapted is the mean test accuracy after Steps local gradient steps
	// at rate alpha on each node's training split.
	Adapted float64
	// Steps is the adaptation budget Adapted was measured at.
	Steps int
}

// Gap returns Adapted − Global: positive when per-node structure exists
// that local adaptation recovers.
func (p Personalization) Gap() float64 { return p.Adapted - p.Global }

// String renders the split compactly for reports.
func (p Personalization) String() string {
	return fmt.Sprintf("global %.3f → adapted(%d) %.3f (gap %+.3f)", p.Global, p.Steps, p.Adapted, p.Gap())
}

// PersonalizationN measures the personalized-vs-global split of theta over
// the target nodes with `workers` parallelism. Both numbers come from one
// adaptation sweep: the curve's entry 0 is the un-adapted (global) accuracy
// and its final entry the adapted accuracy after `steps` steps.
func PersonalizationN(m nn.Model, theta tensor.Vec, targets []*data.NodeDataset, alpha float64, steps, workers int) Personalization {
	curve := AverageAdaptationCurveN(m, theta, targets, alpha, steps, workers)
	if len(curve) == 0 {
		return Personalization{Steps: steps}
	}
	return Personalization{
		Global:  curve[0].Accuracy,
		Adapted: curve[len(curve)-1].Accuracy,
		Steps:   curve[len(curve)-1].Step,
	}
}
