package eval

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
)

func TestPersonalizationNMatchesAdaptationCurve(t *testing.T) {
	cfg := data.DefaultSyntheticConfig(0.5, 0.5)
	cfg.Nodes = 10
	cfg.Dim = 8
	cfg.Classes = 3
	cfg.MeanSamples = 20
	cfg.Seed = 4
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	theta := m.InitParams(rng.New(1))
	const alpha, steps = 0.05, 3
	p := PersonalizationN(m, theta, fed.Targets, alpha, steps, 2)
	curve := AverageAdaptationCurveN(m, theta, fed.Targets, alpha, steps, 1)
	if math.Abs(p.Global-curve[0].Accuracy) > 1e-12 {
		t.Errorf("Global = %v, curve[0] = %v", p.Global, curve[0].Accuracy)
	}
	if math.Abs(p.Adapted-curve[len(curve)-1].Accuracy) > 1e-12 {
		t.Errorf("Adapted = %v, curve end = %v", p.Adapted, curve[len(curve)-1].Accuracy)
	}
	if p.Steps != curve[len(curve)-1].Step {
		t.Errorf("Steps = %d, want %d", p.Steps, curve[len(curve)-1].Step)
	}
	if got := p.Gap(); math.Abs(got-(p.Adapted-p.Global)) > 1e-15 {
		t.Errorf("Gap() = %v", got)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestPersonalizationNEmptyTargets(t *testing.T) {
	m := &nn.SoftmaxRegression{In: 4, Classes: 2}
	p := PersonalizationN(m, m.InitParams(rng.New(1)), nil, 0.1, 2, 1)
	if p.Global != 0 || p.Adapted != 0 || p.Steps != 2 {
		t.Errorf("empty targets gave %+v", p)
	}
}
