package eval

import (
	"math"
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
)

func tinyFederation(t *testing.T) (*data.Federation, *nn.SoftmaxRegression) {
	t.Helper()
	cfg := data.DefaultSyntheticConfig(0, 0)
	cfg.Nodes = 8
	cfg.Dim = 8
	cfg.Classes = 3
	cfg.MeanSamples = 20
	cfg.Seed = 4
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed, &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
}

func TestGlobalMetaObjectiveIsWeightedAverage(t *testing.T) {
	fed, m := tinyFederation(t)
	theta := m.InitParams(rng.New(1))
	const alpha = 0.05
	got := GlobalMetaObjective(m, fed, alpha, theta)
	w := fed.Weights()
	var want float64
	for i, nd := range fed.Sources {
		want += w[i] * meta.Objective(m, theta, nd.Train, nd.Test, alpha)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("G(θ) = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Errorf("G(θ) = %v, expected positive cross-entropy", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "loss"
	if _, ok := s.Last(); ok {
		t.Error("empty series reported a last point")
	}
	if s.Min() != 0 {
		t.Error("empty Min should be 0")
	}
	s.Add(10, 2.5)
	s.Add(20, 1.5)
	s.Add(30, 1.8)
	last, ok := s.Last()
	if !ok || last.Iter != 30 || last.Value != 1.8 {
		t.Errorf("Last = %+v", last)
	}
	if s.Min() != 1.5 {
		t.Errorf("Min = %v", s.Min())
	}
	tsv := s.TSV()
	if !strings.HasPrefix(tsv, "# loss\n") || !strings.Contains(tsv, "20\t1.5\n") {
		t.Errorf("TSV = %q", tsv)
	}
}

func TestAdaptationCurveShapeAndBaseline(t *testing.T) {
	fed, m := tinyFederation(t)
	theta := m.InitParams(rng.New(2))
	node := fed.Targets[0]
	curve := AdaptationCurve(m, theta, node, 0.1, 5)
	if len(curve) != 6 {
		t.Fatalf("curve length = %d, want 6", len(curve))
	}
	if curve[0].Step != 0 || curve[5].Step != 5 {
		t.Errorf("steps = %d..%d", curve[0].Step, curve[5].Step)
	}
	// Step 0 must be the un-adapted model.
	if math.Abs(curve[0].Loss-m.Loss(theta, node.Test)) > 1e-12 {
		t.Error("step-0 loss is not the un-adapted loss")
	}
	for _, p := range curve {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("accuracy %v out of range", p.Accuracy)
		}
	}
}

func TestAverageAdaptationCurve(t *testing.T) {
	fed, m := tinyFederation(t)
	theta := m.InitParams(rng.New(2))
	avg := AverageAdaptationCurve(m, theta, fed.Targets, 0.1, 3)
	if len(avg) != 4 {
		t.Fatalf("length %d", len(avg))
	}
	// Cross-check against a manual average at step 0.
	var want float64
	for _, node := range fed.Targets {
		want += m.Loss(theta, node.Test)
	}
	want /= float64(len(fed.Targets))
	if math.Abs(avg[0].Loss-want) > 1e-12 {
		t.Errorf("avg step-0 loss = %v, want %v", avg[0].Loss, want)
	}
	if AverageAdaptationCurve(m, theta, nil, 0.1, 3) != nil {
		t.Error("empty target list should give nil")
	}
}

func TestAdversarialAdaptationCurve(t *testing.T) {
	fed, m := tinyFederation(t)
	theta := m.InitParams(rng.New(2))
	node := fed.Targets[0]
	clean := AdaptationCurve(m, theta, node, 0.1, 3)
	adv, err := AdversarialAdaptationCurve(m, theta, node, 0.1, 3, 0.3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv) != len(clean) {
		t.Fatalf("length mismatch %d vs %d", len(adv), len(clean))
	}
	// The attacked evaluation can never beat the clean one in loss.
	for i := range adv {
		if adv[i].Loss < clean[i].Loss-1e-9 {
			t.Errorf("step %d: adversarial loss %v below clean %v", i, adv[i].Loss, clean[i].Loss)
		}
	}
}

func TestAverageAdversarialAdaptationCurve(t *testing.T) {
	fed, m := tinyFederation(t)
	theta := m.InitParams(rng.New(2))
	avg, err := AverageAdversarialAdaptationCurve(m, theta, fed.Targets, 0.1, 2, 0.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg) != 3 {
		t.Fatalf("length %d", len(avg))
	}
	empty, err := AverageAdversarialAdaptationCurve(m, theta, nil, 0.1, 2, 0.2, 0, 0)
	if err != nil || empty != nil {
		t.Error("empty target list should give nil, nil")
	}
}
