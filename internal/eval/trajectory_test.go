package eval

import (
	"testing"

	"github.com/edgeai/fedml/internal/obs"
)

func trajRecords() []obs.RoundRecord {
	l1, l3 := 2.0, 1.5
	return []obs.RoundRecord{
		{Round: 1, Iter: 5, Loss: &l1, Dispersion: 0.4},
		{Round: 2, Iter: 10, Dispersion: 0.3}, // loss not sampled this round
		{Round: 3, Iter: 12, Skipped: true},   // fault-tolerant skip
		{Round: 4, Iter: 17, Loss: &l3, Dispersion: 0.2},
	}
}

func TestMetaLossTrajectory(t *testing.T) {
	s := MetaLossTrajectory("fedml", trajRecords())
	if s.Name != "fedml" {
		t.Errorf("name = %q", s.Name)
	}
	want := []Point{{Iter: 5, Value: 2.0}, {Iter: 17, Value: 1.5}}
	if len(s.Points) != len(want) {
		t.Fatalf("points = %+v, want %+v", s.Points, want)
	}
	for i, p := range want {
		if s.Points[i] != p {
			t.Errorf("point %d = %+v, want %+v", i, s.Points[i], p)
		}
	}
}

func TestDispersionTrajectory(t *testing.T) {
	s := DispersionTrajectory("disp", trajRecords())
	want := []Point{{Iter: 5, Value: 0.4}, {Iter: 10, Value: 0.3}, {Iter: 17, Value: 0.2}}
	if len(s.Points) != len(want) {
		t.Fatalf("points = %+v, want %+v", s.Points, want)
	}
	for i, p := range want {
		if s.Points[i] != p {
			t.Errorf("point %d = %+v, want %+v", i, s.Points[i], p)
		}
	}
}
