// Package theory implements the paper's convergence analysis as executable
// formulas: the Lemma 1 curvature constants of the meta-objective, the
// Theorem 1 meta-gradient dissimilarity bound, and the Theorem 2 convergence
// bound with its h(T0) local-update penalty. The tests validate the formulas
// numerically on quadratic problems where every constant is exact, and the
// experiment harness uses them to pick admissible learning rates and to
// overlay predicted convergence floors on measured curves.
package theory

import (
	"errors"
	"fmt"
	"math"
)

// Constants collects the problem constants of Assumptions 1–4:
// μ-strong convexity and H-smoothness of each local loss (Assumptions 1–2),
// gradient bound B (Assumption 2), ρ-Lipschitz Hessians (Assumption 3), and
// the node-similarity constants δ = Σωᵢδᵢ, σ = Σωᵢσᵢ, τ = Σωᵢδᵢσᵢ
// (Assumption 4 aggregated as in Theorem 2).
type Constants struct {
	Mu, H, Rho, B     float64
	Delta, Sigma, Tau float64
	// C is the unspecified absolute constant of Theorem 1; the proof gives
	// 2 + O(α). Zero means 2.
	C float64
}

// Validate checks basic consistency.
func (c Constants) Validate() error {
	switch {
	case c.Mu <= 0:
		return fmt.Errorf("theory: strong convexity μ must be positive, got %v", c.Mu)
	case c.H < c.Mu:
		return fmt.Errorf("theory: smoothness H=%v below μ=%v", c.H, c.Mu)
	case c.Rho < 0 || c.B < 0:
		return fmt.Errorf("theory: ρ=%v and B=%v must be non-negative", c.Rho, c.B)
	case c.Delta < 0 || c.Sigma < 0 || c.Tau < 0:
		return fmt.Errorf("theory: dissimilarities δ=%v σ=%v τ=%v must be non-negative", c.Delta, c.Sigma, c.Tau)
	case c.C < 0:
		return fmt.Errorf("theory: C=%v must be non-negative", c.C)
	}
	return nil
}

func (c Constants) cOrDefault() float64 {
	if c.C == 0 {
		return 2
	}
	return c.C
}

// MaxAlpha returns the largest inner learning rate admissible for Lemma 1:
// α ≤ min{μ/(2μH + ρB), 1/μ}.
func (c Constants) MaxAlpha() float64 {
	return math.Min(c.Mu/(2*c.Mu*c.H+c.Rho*c.B), 1/c.Mu)
}

// Curvature holds the Lemma 1 constants of the meta-objective G.
type Curvature struct {
	// MuPrime is μ′ = μ(1−αH)² − αρB.
	MuPrime float64
	// HPrime is H′ = H(1−αμ)² + αρB.
	HPrime float64
}

// Lemma1 computes the meta-objective curvature for inner rate alpha.
func (c Constants) Lemma1(alpha float64) (Curvature, error) {
	if err := c.Validate(); err != nil {
		return Curvature{}, err
	}
	if alpha <= 0 || alpha > c.MaxAlpha() {
		return Curvature{}, fmt.Errorf("theory: α=%v outside admissible (0, %v]", alpha, c.MaxAlpha())
	}
	cv := Curvature{
		MuPrime: c.Mu*(1-alpha*c.H)*(1-alpha*c.H) - alpha*c.Rho*c.B,
		HPrime:  c.H*(1-alpha*c.Mu)*(1-alpha*c.Mu) + alpha*c.Rho*c.B,
	}
	if cv.MuPrime <= 0 {
		return Curvature{}, fmt.Errorf("theory: μ′=%v not positive at α=%v; G is not provably strongly convex", cv.MuPrime, alpha)
	}
	return cv, nil
}

// MetaDissimilarity returns the Theorem 1 bound on the meta-gradient
// variation ‖∇Gᵢ(θ) − ∇G(θ)‖ evaluated at the aggregate constants:
// δ + αC(Hδ + Bσ + τ).
func (c Constants) MetaDissimilarity(alpha float64) float64 {
	return c.Delta + alpha*c.cOrDefault()*(c.H*c.Delta+c.B*c.Sigma+c.Tau)
}

// MaxBeta returns the largest meta learning rate admissible for Theorem 2:
// β < min{1/(2μ′), 2/H′}.
func (c Constants) MaxBeta(alpha float64) (float64, error) {
	cv, err := c.Lemma1(alpha)
	if err != nil {
		return 0, err
	}
	return math.Min(1/(2*cv.MuPrime), 2/cv.HPrime), nil
}

// Schedule is an algorithm configuration to bound.
type Schedule struct {
	Alpha, Beta float64
	T, T0       int
}

// Bound is the Theorem 2 convergence bound decomposition
// G(θᵀ) − G(θ*) ≤ ξᵀ[G(θ⁰) − G(θ*)] + B(1−αμ)/(1−ξ^T0)·h(T0).
type Bound struct {
	// Xi is the contraction factor ξ = 1 − 2βμ′(1 − H′β/2).
	Xi float64
	// AlphaPrime is α′ = β[δ + αC(Hδ + Bσ + τ)].
	AlphaPrime float64
	// HT0 is h(T0) = α′/(βH′)[(1+βH′)^T0 − 1] − α′T0.
	HT0 float64
	// Floor is the residual error B(1−αμ)/(1−ξ^T0)·h(T0) that does not
	// vanish with T; it grows with T0 and with node dissimilarity.
	Floor float64
	// Total is the full right-hand side for the given initial gap.
	Total float64
	// Curvature carries the Lemma 1 constants used.
	Curvature Curvature
}

// ErrInadmissible reports a schedule outside the theorem's conditions.
var ErrInadmissible = errors.New("theory: schedule violates the theorem's step-size conditions")

// ConvergenceBound evaluates Theorem 2 for the given constants, schedule and
// initial optimality gap G(θ⁰) − G(θ*).
func ConvergenceBound(c Constants, s Schedule, initialGap float64) (Bound, error) {
	if s.T <= 0 || s.T0 <= 0 || s.T%s.T0 != 0 {
		return Bound{}, fmt.Errorf("theory: T=%d must be a positive multiple of T0=%d", s.T, s.T0)
	}
	if initialGap < 0 {
		return Bound{}, fmt.Errorf("theory: negative initial gap %v", initialGap)
	}
	cv, err := c.Lemma1(s.Alpha)
	if err != nil {
		return Bound{}, err
	}
	maxBeta := math.Min(1/(2*cv.MuPrime), 2/cv.HPrime)
	if s.Beta <= 0 || s.Beta >= maxBeta {
		return Bound{}, fmt.Errorf("%w: β=%v outside (0, %v)", ErrInadmissible, s.Beta, maxBeta)
	}

	b := Bound{Curvature: cv}
	b.Xi = 1 - 2*s.Beta*cv.MuPrime*(1-cv.HPrime*s.Beta/2)
	b.AlphaPrime = s.Beta * c.MetaDissimilarity(s.Alpha)
	b.HT0 = hFunc(b.AlphaPrime, s.Beta, cv.HPrime, s.T0)
	if s.T0 > 1 {
		b.Floor = c.B * (1 - s.Alpha*c.Mu) / (1 - math.Pow(b.Xi, float64(s.T0))) * b.HT0
	}
	b.Total = math.Pow(b.Xi, float64(s.T))*initialGap + b.Floor
	return b, nil
}

// hFunc evaluates h(x) = α′/(βH′)·[(1+βH′)^x − 1] − α′x (Theorem 2). It is
// zero at x ∈ {0, 1} and strictly increasing for x ≥ 1.
func hFunc(alphaPrime, beta, hPrime float64, x int) float64 {
	return alphaPrime/(beta*hPrime)*(math.Pow(1+beta*hPrime, float64(x))-1) - alphaPrime*float64(x)
}
