package theory

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func TestValidate(t *testing.T) {
	good := Constants{Mu: 1, H: 2, Rho: 1, B: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Constants{
		{Mu: 0, H: 1},
		{Mu: 2, H: 1},
		{Mu: 1, H: 2, Rho: -1},
		{Mu: 1, H: 2, B: -1},
		{Mu: 1, H: 2, Delta: -1},
		{Mu: 1, H: 2, C: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad constants %d accepted", i)
		}
	}
}

func TestMaxAlpha(t *testing.T) {
	c := Constants{Mu: 1, H: 2, Rho: 1, B: 2}
	// min{1/(2·2+2), 1} = 1/6.
	if got := c.MaxAlpha(); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("MaxAlpha = %v, want 1/6", got)
	}
}

func TestLemma1Formulas(t *testing.T) {
	c := Constants{Mu: 1, H: 2, Rho: 0.5, B: 1}
	alpha := 0.1
	cv, err := c.Lemma1(alpha)
	if err != nil {
		t.Fatal(err)
	}
	wantMu := 1*(1-0.2)*(1-0.2) - 0.1*0.5*1 // 0.64 − 0.05
	wantH := 2*(1-0.1)*(1-0.1) + 0.1*0.5*1  // 1.62 + 0.05
	if math.Abs(cv.MuPrime-wantMu) > 1e-12 || math.Abs(cv.HPrime-wantH) > 1e-12 {
		t.Errorf("Lemma1 = %+v, want μ′=%v H′=%v", cv, wantMu, wantH)
	}
}

func TestLemma1RejectsInadmissibleAlpha(t *testing.T) {
	c := Constants{Mu: 1, H: 2}
	if _, err := c.Lemma1(0); err == nil {
		t.Error("α=0 accepted")
	}
	if _, err := c.Lemma1(10); err == nil {
		t.Error("huge α accepted")
	}
}

// TestLemma1HoldsOnQuadratics validates Lemma 1 numerically: for the
// quadratic loss L(θ) = ½(θ−c)ᵀA(θ−c) with diagonal A, the meta-objective
// G(θ) = L(φ(θ)) has exact Hessian eigenvalues aᵢ(1−αaᵢ)², all of which must
// lie inside [μ′, H′] (here ρ = 0 exactly).
func TestLemma1HoldsOnQuadratics(t *testing.T) {
	r := rng.New(1)
	check := func(seed uint8) bool {
		rr := r.Split(uint64(seed))
		dim := 2 + rr.IntN(6)
		eigs := make([]float64, dim)
		mu, h := math.Inf(1), 0.0
		for i := range eigs {
			eigs[i] = 0.5 + 2*rr.Float64()
			mu = math.Min(mu, eigs[i])
			h = math.Max(h, eigs[i])
		}
		c := Constants{Mu: mu, H: h}
		alpha := c.MaxAlpha() * (0.2 + 0.7*rr.Float64())
		cv, err := c.Lemma1(alpha)
		if err != nil {
			return false
		}
		for _, a := range eigs {
			g := a * (1 - alpha*a) * (1 - alpha*a)
			if g < cv.MuPrime-1e-12 || g > cv.HPrime+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMetaDissimilarity(t *testing.T) {
	c := Constants{Mu: 1, H: 2, B: 3, Delta: 0.5, Sigma: 0.2, Tau: 0.1}
	// δ + αC(Hδ + Bσ + τ) with C=2: 0.5 + 0.1·2·(1 + 0.6 + 0.1) = 0.84.
	if got := c.MetaDissimilarity(0.1); math.Abs(got-0.84) > 1e-12 {
		t.Errorf("MetaDissimilarity = %v, want 0.84", got)
	}
	// Identical nodes ⇒ zero dissimilarity regardless of α.
	same := Constants{Mu: 1, H: 2, B: 3}
	if same.MetaDissimilarity(0.1) != 0 {
		t.Error("zero-dissimilarity case broken")
	}
}

func TestHFuncProperties(t *testing.T) {
	const ap, beta, hp = 0.3, 0.05, 2.0
	if got := hFunc(ap, beta, hp, 0); math.Abs(got) > 1e-12 {
		t.Errorf("h(0) = %v, want 0", got)
	}
	if got := hFunc(ap, beta, hp, 1); math.Abs(got) > 1e-12 {
		t.Errorf("h(1) = %v, want 0 (Corollary 1)", got)
	}
	prev := 0.0
	for x := 1; x <= 50; x++ {
		cur := hFunc(ap, beta, hp, x)
		if cur < prev-1e-12 {
			t.Fatalf("h not increasing at %d: %v < %v", x, cur, prev)
		}
		prev = cur
	}
	// h scales linearly with α′ (hence with δ): doubling dissimilarity
	// doubles the penalty.
	if got := hFunc(2*ap, beta, hp, 10); math.Abs(got-2*hFunc(ap, beta, hp, 10)) > 1e-9 {
		t.Error("h not linear in α′")
	}
}

func TestConvergenceBoundStructure(t *testing.T) {
	c := Constants{Mu: 1, H: 2, Delta: 0.1, B: 1}
	alpha := c.MaxAlpha() / 2
	maxBeta, err := c.MaxBeta(alpha)
	if err != nil {
		t.Fatal(err)
	}
	beta := maxBeta / 4

	b, err := ConvergenceBound(c, Schedule{Alpha: alpha, Beta: beta, T: 100, T0: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Xi <= 0 || b.Xi >= 1 {
		t.Errorf("ξ = %v outside (0,1)", b.Xi)
	}
	if b.Floor <= 0 {
		t.Errorf("floor = %v, want positive with T0>1 and δ>0", b.Floor)
	}
	if b.Total < b.Floor {
		t.Error("total below floor")
	}

	// Corollary 1: T0 = 1 removes the floor entirely.
	b1, err := ConvergenceBound(c, Schedule{Alpha: alpha, Beta: beta, T: 100, T0: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Floor != 0 {
		t.Errorf("T0=1 floor = %v, want 0", b1.Floor)
	}

	// The floor grows with T0 at fixed T (Theorem 2 discussion).
	b20, err := ConvergenceBound(c, Schedule{Alpha: alpha, Beta: beta, T: 100, T0: 20}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b20.Floor <= b.Floor {
		t.Errorf("floor did not grow with T0: %v vs %v", b20.Floor, b.Floor)
	}

	// The floor grows with dissimilarity δ.
	c2 := c
	c2.Delta = 0.5
	bBig, err := ConvergenceBound(c2, Schedule{Alpha: alpha, Beta: beta, T: 100, T0: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if bBig.Floor <= b.Floor {
		t.Errorf("floor did not grow with δ: %v vs %v", bBig.Floor, b.Floor)
	}

	// The transient term shrinks with T.
	bLong, err := ConvergenceBound(c, Schedule{Alpha: alpha, Beta: beta, T: 1000, T0: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if bLong.Total >= b.Total {
		t.Errorf("bound did not shrink with T: %v vs %v", bLong.Total, b.Total)
	}
}

func TestConvergenceBoundRejections(t *testing.T) {
	c := Constants{Mu: 1, H: 2, Delta: 0.1, B: 1}
	alpha := c.MaxAlpha() / 2
	if _, err := ConvergenceBound(c, Schedule{Alpha: alpha, Beta: 100, T: 10, T0: 5}, 1); !errors.Is(err, ErrInadmissible) {
		t.Errorf("huge β: err = %v, want ErrInadmissible", err)
	}
	if _, err := ConvergenceBound(c, Schedule{Alpha: alpha, Beta: 0.01, T: 10, T0: 3}, 1); err == nil {
		t.Error("T not multiple of T0 accepted")
	}
	if _, err := ConvergenceBound(c, Schedule{Alpha: alpha, Beta: 0.01, T: 10, T0: 5}, -1); err == nil {
		t.Error("negative gap accepted")
	}
}

// TestTheorem2BoundHoldsOnFederatedQuadratics simulates the exact federated
// meta-learning dynamics on quadratic losses with identical curvature A=aI
// but node-specific centers, where every constant of Assumptions 1–4 is
// available in closed form (ρ=0, σ=τ=0, δᵢ = a‖cᵢ−c̄‖), and checks the
// measured optimality gap never exceeds the Theorem 2 bound.
func TestTheorem2BoundHoldsOnFederatedQuadratics(t *testing.T) {
	r := rng.New(42)
	const (
		dim   = 4
		nodes = 5
		a     = 1.0 // isotropic curvature: μ = H = a
		alpha = 0.2 // admissible: MaxAlpha = μ/(2μH) = 0.5
		beta  = 0.1
		T     = 200
		T0    = 10
	)

	// Node centers and the weighted mean.
	centers := make([]tensor.Vec, nodes)
	for i := range centers {
		c := tensor.NewVec(dim)
		for j := range c {
			c[j] = r.Norm()
		}
		centers[i] = c
	}
	w := 1.0 / nodes
	cbar := tensor.NewVec(dim)
	for _, c := range centers {
		cbar.Axpy(w, c)
	}

	// Meta-objective pieces: G_i(θ) = ½ q ‖θ−cᵢ‖², q = a(1−αa)².
	q := a * (1 - alpha*a) * (1 - alpha*a)
	gVal := func(theta tensor.Vec) float64 {
		var total float64
		for _, c := range centers {
			d := theta.Dist(c)
			total += w * 0.5 * q * d * d
		}
		return total
	}
	gStar := gVal(cbar) // θ* = c̄ by symmetry

	// Simulate Algorithm 1 exactly: T0 local steps of θᵢ ← θᵢ − βq(θᵢ−cᵢ),
	// then weighted averaging.
	theta := tensor.NewVec(dim)
	theta.Fill(3) // far initialization
	initialGap := gVal(theta) - gStar
	var trajB float64
	for round := 0; round < T/T0; round++ {
		locals := make([]tensor.Vec, nodes)
		for i := range locals {
			ti := theta.Clone()
			for s := 0; s < T0; s++ {
				// Track the gradient-norm bound B along the trajectory:
				// ∇L_i(φ) with ‖∇L_i(θ)‖ = a‖θ−cᵢ‖ ≥ needed sup.
				gn := a * ti.Dist(centers[i])
				if gn > trajB {
					trajB = gn
				}
				g := ti.Sub(centers[i])
				ti.Axpy(-beta*q, g)
			}
			locals[i] = ti
		}
		theta.Zero()
		for _, ti := range locals {
			theta.Axpy(w, ti)
		}
	}
	measuredGap := gVal(theta) - gStar

	// Exact constants.
	var delta float64
	for _, c := range centers {
		delta += w * a * c.Dist(cbar)
	}
	consts := Constants{Mu: a, H: a, B: trajB, Delta: delta}
	bound, err := ConvergenceBound(consts, Schedule{Alpha: alpha, Beta: beta, T: T, T0: T0}, initialGap)
	if err != nil {
		t.Fatal(err)
	}
	if measuredGap > bound.Total {
		t.Errorf("Theorem 2 violated: measured gap %v > bound %v", measuredGap, bound.Total)
	}
	if measuredGap < 0 {
		t.Errorf("negative measured gap %v (optimum wrong)", measuredGap)
	}
	t.Logf("measured gap %.3g vs Theorem 2 bound %.3g (floor %.3g)", measuredGap, bound.Total, bound.Floor)
}
