package core

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/edgeai/fedml/internal/codec"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/tensor"
)

// SyncMaskPolicy is the partial-parameter sync policy: after Warmup rounds of
// full synchronization the platform freezes every coordinate outside Ranges
// and keeps syncing only the masked subset (typically the model's output
// head, via nn.HeadSegments). Broadcasts and updates then travel as masked
// payloads (codec.Masked) carrying only the live coordinates, which is where
// the communication — and, under an EnergyModel, the radio energy — saving
// comes from.
//
// The round schedule, shared by every aggregator and node by construction
// (the mask is a pure function of the round number, and the wire format is
// self-describing):
//
//   - Rounds 1..Warmup-1: full broadcasts, full aggregation.
//   - Round Warmup: the last full broadcast. Its aggregation already pins the
//     frozen coordinates (restoreFrozen), so the θ the nodes just received
//     stays bit-identical outside the mask from here on — the reference the
//     masked scatter on both ends depends on.
//   - Rounds Warmup+1...: masked broadcasts and masked replies; aggregation
//     touches only masked coordinates.
//
// Recovery composes with the suspect/probe/resync protocol: a re-probe
// resets the link's codec chains, so the next masked payload is an inner
// full sync of the masked set only (the cheap, common case — chaos losses
// with node state intact). A node that lost its full reference entirely
// (restarted process, or a platform resumed from a checkpoint) keeps failing
// masked probes; after two consecutive failures the link escalates to one
// full unmasked payload that re-establishes the reference, and the full
// reply it triggers is projected onto the mask before aggregation so frozen
// coordinates still cannot drift.
type SyncMaskPolicy struct {
	// Warmup is the number of leading full-sync rounds; must be >= 1. The
	// mask engages on round Warmup+1.
	Warmup int
	// Ranges are the coordinates that keep syncing after warmup: sorted,
	// non-overlapping, non-empty. ResolveSyncMask builds them from a model's
	// segment layout.
	Ranges []codec.Range
}

// Validate checks the policy's shape. The upper dimension bound is checked
// against the model at run start (validateDim), when it is known.
func (p *SyncMaskPolicy) Validate() error {
	if p.Warmup < 1 {
		return fmt.Errorf("core: sync mask warmup %d, want >= 1", p.Warmup)
	}
	if len(p.Ranges) == 0 {
		return fmt.Errorf("core: sync mask has no ranges")
	}
	prev := 0
	for i, r := range p.Ranges {
		if r.Lo < prev || r.Hi <= r.Lo {
			return fmt.Errorf("core: sync mask range %d [%d,%d) unsorted, overlapping, or empty", i, r.Lo, r.Hi)
		}
		prev = r.Hi
	}
	return nil
}

// validateDim checks the mask against the model dimension.
func (p *SyncMaskPolicy) validateDim(dim int) error {
	if err := codec.ValidRanges(p.Ranges, dim); err != nil {
		return fmt.Errorf("core: sync mask does not fit the model: %w", err)
	}
	return nil
}

// maskFor returns the wire mask for round's parameter traffic: nil (full
// sync) through the warmup, the configured ranges afterwards.
func (p *SyncMaskPolicy) maskFor(round int) []codec.Range {
	if p == nil || round <= p.Warmup {
		return nil
	}
	return p.Ranges
}

// frozenAt reports whether round's aggregation must preserve the frozen
// coordinates. It engages one round before maskFor — the last full
// broadcast's aggregation already pins them, so the reference the nodes hold
// going into the first masked round matches the platform's θ exactly.
func (p *SyncMaskPolicy) frozenAt(round int) bool {
	return p != nil && round >= p.Warmup
}

// restoreFrozen copies saved into theta outside mask — the frozen
// coordinates — leaving the masked coordinates at their aggregated values.
// saved is the θ broadcast at the start of the round, whose frozen
// coordinates are the canonical values: every accepted update carries them
// bit-exactly (masked replies scatter into θ, full replies are projected),
// but the weighted average (Σωθ_f)/(Σω) of identical values is not
// bit-identical to θ_f in floating point, so the aggregation loop restores
// them explicitly.
func restoreFrozen(theta, saved tensor.Vec, mask []codec.Range) {
	lo := 0
	for _, r := range mask {
		copy(theta[lo:r.Lo], saved[lo:r.Lo])
		lo = r.Hi
	}
	copy(theta[lo:], saved[lo:])
}

// projectMask overwrites u outside mask with the corresponding coordinates
// of theta: the uniform acceptance rule under an active mask — whatever a
// node sent, the vector that aggregates is θ outside the mask and the
// node's values inside it.
func projectMask(u, theta []float64, mask []codec.Range) {
	lo := 0
	for _, r := range mask {
		copy(u[lo:r.Lo], theta[lo:r.Lo])
		lo = r.Hi
	}
	copy(u[lo:], theta[lo:])
}

// ResolveSyncMask parses a sync-mask spec against a concrete model. The
// supported form is "head:<warmup>" — freeze everything but the model's
// output-layer segments (nn.HeadSegments) after <warmup> full rounds. The
// empty spec resolves to nil (no masking).
func ResolveSyncMask(spec string, m nn.Model) (*SyncMaskPolicy, error) {
	if spec == "" {
		return nil, nil
	}
	name, warmStr, ok := strings.Cut(spec, ":")
	if !ok || name != "head" {
		return nil, fmt.Errorf("core: sync mask spec %q, want \"head:<warmup>\"", spec)
	}
	warmup, err := strconv.Atoi(warmStr)
	if err != nil || warmup < 1 {
		return nil, fmt.Errorf("core: sync mask warmup %q, want a positive integer", warmStr)
	}
	segs, err := nn.HeadSegments(m)
	if err != nil {
		return nil, err
	}
	var ranges []codec.Range
	for _, s := range segs {
		// Adjacent segments (w directly followed by b) coalesce into one
		// wire range, keeping the mask header minimal.
		if n := len(ranges); n > 0 && ranges[n-1].Hi == s.Lo {
			ranges[n-1].Hi = s.Hi
			continue
		}
		ranges = append(ranges, codec.Range{Lo: s.Lo, Hi: s.Hi})
	}
	return &SyncMaskPolicy{Warmup: warmup, Ranges: ranges}, nil
}
