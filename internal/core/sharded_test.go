package core

import (
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/transport"
)

// sumShardStats folds per-shard accounting the way the director claims to.
func sumShardStats(shards []CommStats) CommStats {
	var out CommStats
	for _, s := range shards {
		out.add(s)
	}
	return out
}

// TestShardedMatchesFlatBitExact is the acceptance bar of the refactor: the
// two-tier topology must reproduce the flat platform's θ sequence bit for
// bit, in strict and in clean fault-tolerant mode, for several shard counts
// — the merge rule makes sharding an implementation detail, not a numerics
// change.
func TestShardedMatchesFlatBitExact(t *testing.T) {
	fed := tinyFederation(t, 0.5, 0.5)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(2))

	cases := []struct {
		name string
		cfg  Config
	}{
		{"strict", Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 5}},
		{"ft-clean", Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 5, RoundTimeout: 2 * time.Second}},
		{"strict-q8", Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 5, Codec: "q8"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flat, err := Train(m, fed, theta0.Clone(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 3, 4} {
				res, err := TrainSharded(m, fed, theta0.Clone(), tc.cfg, ShardedOptions{Shards: shards})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if d := res.Theta.Dist(flat.Theta); d != 0 {
					t.Errorf("shards=%d: θ diverged from flat by %v (want bit-identical)", shards, d)
				}
				// Full participation, no faults: every traffic counter must
				// match the flat run exactly, and the root must equal the
				// shard sum.
				if res.Comm != flat.Comm {
					t.Errorf("shards=%d: root stats %+v != flat %+v", shards, res.Comm, flat.Comm)
				}
				got := sumShardStats(res.Shards)
				got.Rounds, got.SkippedRounds = res.Comm.Rounds, res.Comm.SkippedRounds
				if got != res.Comm {
					t.Errorf("shards=%d: Σ shard stats %+v != root %+v", shards, got, res.Comm)
				}
			}
		})
	}
}

// TestShardedStatsParityUnderChaos pins the accounting invariant for the
// two-tier topology under fire: with nodes killed, revived, and corrupted
// inside different shards, the root's traffic and fault counters must equal
// the sum of the shard counters exactly, and each shard's observer stream
// must fold back into that shard's CommStats.
func TestShardedStatsParityUnderChaos(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:8]
	m := tinyModel(fed)
	recs := make([]*obs.Recorder, 0, 4)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 60, T0: 5, Seed: 3,
		RoundTimeout: 400 * time.Millisecond,
		GuardRadius:  50,
		WrapLink: func(i int, l transport.Link) transport.Link {
			var sc []transport.ChaosEvent
			switch i {
			case 1: // shard 0 under a 4-way split of 8 nodes
				sc = []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 5, Op: transport.OpRevive}}
			case 6: // shard 3
				sc = []transport.ChaosEvent{{Round: 3, Op: transport.OpCorrupt}}
			default:
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{Seed: 100 + uint64(i), Scenario: sc})
		},
	}
	res, err := TrainSharded(m, fed, nil, cfg, ShardedOptions{
		Shards: 4,
		ShardObserver: func(shard int) obs.RoundObserver {
			for len(recs) <= shard {
				recs = append(recs, obs.NewRecorder())
			}
			return recs[shard]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped == 0 || res.Comm.Rejoined == 0 || res.Comm.Rejected == 0 {
		t.Fatalf("scenario did not exercise all fault paths: %+v", res.Comm)
	}

	got := sumShardStats(res.Shards)
	if got.Messages != res.Comm.Messages || got.Bytes != res.Comm.Bytes ||
		got.Dropped != res.Comm.Dropped || got.Rejoined != res.Comm.Rejoined ||
		got.Rejected != res.Comm.Rejected {
		t.Errorf("Σ shard stats %+v != root %+v", got, res.Comm)
	}
	for s, rec := range recs {
		tot := rec.Totals()
		want := statsAsTotals(res.Shards[s])
		if tot != want {
			t.Errorf("shard %d: event stream folds to %+v, shard stats say %+v", s, tot, want)
		}
	}
}

// TestShardedWithSamplingConverges: per-shard sampling draws different
// subsets than the flat sampler (each shard salts its own stream), so θ
// equality is not expected — but training must still converge and the
// accounting parity must hold.
func TestShardedWithSamplingConverges(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(4))
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 4, Participation: 0.5}

	before := eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta0)
	res, err := TrainSharded(m, fed, theta0.Clone(), cfg, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	after := eval.GlobalMetaObjective(m, fed, cfg.Alpha, res.Theta)
	if after >= before {
		t.Errorf("sampled sharded training did not reduce G(θ): %v -> %v", before, after)
	}
	got := sumShardStats(res.Shards)
	if got.Messages != res.Comm.Messages || got.Bytes != res.Comm.Bytes {
		t.Errorf("Σ shard traffic %+v != root %+v", got, res.Comm)
	}

	// Sampling inside shards must still cut traffic vs full participation.
	full, err := TrainSharded(m, fed, theta0.Clone(), Config{Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 4}, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Messages >= full.Comm.Messages {
		t.Errorf("sampled sharded run sent %d messages, full run %d", res.Comm.Messages, full.Comm.Messages)
	}
}

// TestShardedRejectsBadLayout: explicit layouts must land on merge-recursion
// split points or be refused up front.
func TestShardedRejectsBadLayout(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5, Seed: 1}
	_, err := TrainSharded(m, fed, nil, cfg, ShardedOptions{
		Ranges: []ShardRange{{0, 3}, {3, 10}},
	})
	if err == nil {
		t.Fatal("misaligned shard layout accepted")
	}
	if _, err := TrainSharded(m, fed, nil, cfg, ShardedOptions{}); err == nil {
		t.Fatal("zero shards with no layout accepted")
	}
}

// TestShardedCheckpointResume: checkpointing lives at the director, and
// round-keyed per-shard sampling makes a resumed run reproduce the
// uninterrupted one bit for bit.
func TestShardedCheckpointResume(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	base := Config{Alpha: 0.01, Beta: 0.01, T0: 10, Seed: 8, Participation: 0.5}

	uncut := base
	uncut.T = 100
	want, err := TrainSharded(m, fed, nil, uncut, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	ck := t.TempDir() + "/sharded.ck"
	first := base
	first.T = 50
	first.CheckpointPath = ck
	if _, err := TrainSharded(m, fed, nil, first, ShardedOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	second := base
	second.T = 100
	second.CheckpointPath = ck
	second.Resume = true
	got, err := TrainSharded(m, fed, nil, second, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Theta.Dist(want.Theta); d != 0 {
		t.Errorf("resumed sharded run diverged from uninterrupted run by %v", d)
	}
}
