package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/edgeai/fedml/internal/codec"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/dro"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// RetryPolicy controls how a node handles transient link failures: each
// failed Send/Recv is retried after an exponentially growing, jittered
// delay. The zero value disables retrying (any link error is fatal, the
// pre-existing behavior).
type RetryPolicy struct {
	// MaxAttempts is the number of retries per operation; 0 disables.
	MaxAttempts int
	// BaseDelay is the first backoff delay. Zero means 20ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 2s.
	MaxDelay time.Duration
}

func (r RetryPolicy) normalized() RetryPolicy {
	if r.BaseDelay <= 0 {
		r.BaseDelay = 20 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 2 * time.Second
	}
	return r
}

// backoff returns the jittered delay before retry attempt k (0-based):
// BaseDelay·2^k, capped at MaxDelay, with up to 50% multiplicative jitter so
// a fleet of rejoining nodes does not thunder back in lockstep.
func (r RetryPolicy) backoff(k int, rand *rng.Rand) time.Duration {
	d := math.Ldexp(float64(r.BaseDelay), k)
	if max := float64(r.MaxDelay); d > max {
		d = max
	}
	return time.Duration(d * (1 + 0.5*rand.Float64()))
}

// NodeConfig identifies one source edge node.
type NodeConfig struct {
	// ID is the node's index in the federation (used in protocol messages
	// and to derive the node's private random stream).
	ID int
	// Model is the shared model family.
	Model nn.Model
	// Data is the node's local dataset (already split into train/test).
	Data *data.NodeDataset
	// Shared holds the algorithm hyper-parameters (must match the
	// platform's).
	Shared Config
	// Retry, when enabled, makes the node ride out transient link errors
	// with exponential backoff instead of dying on the first hiccup.
	Retry RetryPolicy
	// Redial, when non-nil, is invoked between retry attempts to establish
	// a replacement link (e.g. transport.Dial back to the platform after a
	// TCP connection died). The old link is closed first. Without Redial, a
	// closed link is permanent and retrying stops early.
	Redial func() (transport.Link, error)
}

// nodeLink wraps the node's endpoint with the retry/redial policy: failed
// operations back off exponentially (with jitter) and, when a Redial hook is
// configured, each retry attempt runs over a freshly established link.
type nodeLink struct {
	link   transport.Link
	retry  RetryPolicy
	redial func() (transport.Link, error)
	rand   *rng.Rand
}

// do runs op with retries per the policy. Without a redial hook a closed
// link is permanent, so retrying stops early instead of spinning.
func (l *nodeLink) do(op func(transport.Link) error) error {
	err := op(l.link)
	for k := 0; err != nil && k < l.retry.MaxAttempts; k++ {
		if l.redial == nil && errors.Is(err, transport.ErrClosed) {
			return err
		}
		time.Sleep(l.retry.backoff(k, l.rand))
		if l.redial != nil {
			fresh, derr := l.redial()
			if derr != nil {
				err = fmt.Errorf("redial: %w", derr)
				continue
			}
			_ = l.link.Close()
			l.link = fresh
		}
		err = op(l.link)
	}
	return err
}

func (l *nodeLink) recv() (transport.Msg, error) {
	var m transport.Msg
	err := l.do(func(lk transport.Link) error {
		var e error
		m, e = lk.Recv()
		return e
	})
	return m, err
}

func (l *nodeLink) send(m transport.Msg) error {
	return l.do(func(lk transport.Link) error { return lk.Send(m) })
}

// RunNode executes the node side of Algorithm 1 (or Algorithm 2 when
// Shared.Robust is set) over link, until the platform sends KindDone or the
// link fails. Transient link errors are retried per nc.Retry (with
// nc.Redial re-establishing the connection when set); any node-side failure
// is reported to the platform as a KindError message before returning.
func RunNode(link transport.Link, nc NodeConfig) error {
	cfg := nc.Shared.normalized()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if nc.Model == nil || nc.Data == nil {
		return fmt.Errorf("core: node %d missing model or data", nc.ID)
	}

	n := newNodeState(cfg, nc.Model, nc.Data, nc.ID)
	// The retry jitter draws from its own stream so backoff timing can
	// never perturb the node's training randomness.
	nl := &nodeLink{
		link:   link,
		retry:  nc.Retry.normalized(),
		redial: nc.Redial,
		rand:   rng.New(cfg.Seed).Split(uint64(nc.ID) + 0x5e7241),
	}

	// Codec state mirrors the platform: every parameter message carries the
	// codec tag, so the node instantiates the matching decoder/encoder pair
	// on first sight and re-creates it if the tag ever changes. Both sides
	// are mask-aware: a masked broadcast scatters into the node's retained
	// reference, and the node mirrors the broadcast's mask on its reply so
	// only the synced coordinates travel back.
	var (
		downDec *codec.Masked // decodes platform→node parameter payloads
		upEnc   *codec.Masked // encodes this node's update replies
	)

	for {
		msg, err := nl.recv()
		if err != nil {
			return fmt.Errorf("core: node %d recv: %w", nc.ID, err)
		}
		switch msg.Kind {
		case transport.KindDone:
			return nil
		case transport.KindParams:
			global := tensor.Vec(msg.Params)
			var wireMask []codec.Range
			if msg.Codec != "" {
				if downDec == nil || downDec.Name() != msg.Codec {
					inner, cerr := codec.New(msg.Codec)
					if cerr != nil {
						return fmt.Errorf("core: node %d: platform sent %v", nc.ID, cerr)
					}
					downDec = codec.NewMasked(inner)
					innerUp, _ := codec.New(msg.Codec)
					upEnc = codec.NewMasked(innerUp)
				}
				decoded, ranges, derr := downDec.DecodeMasked(msg.Payload, nil)
				if derr != nil {
					// A broken reference chain (missed broadcasts) or wire
					// corruption. Report it and stay alive: a fault-tolerant
					// platform marks this node suspect and its next probe is
					// a full resync the fresh chain can decode.
					_ = nl.send(transport.Msg{
						Kind:   transport.KindError,
						Round:  msg.Round,
						NodeID: nc.ID,
						Err:    fmt.Sprintf("decode params: %v", derr),
					})
					continue
				}
				if codec.IsFull(msg.Payload) {
					// A full downlink doubles as the resync signal: restart
					// the uplink chain so the platform's reset decoder gets
					// a full payload back.
					upEnc.Reset()
				}
				global = tensor.Vec(decoded)
				wireMask = ranges
			}
			steps := cfg.T0
			if msg.LocalSteps > 0 {
				steps = msg.LocalSteps
			}
			var compT0 time.Time
			if cfg.Observer != nil {
				compT0 = time.Now()
			}
			theta, err := n.localUpdates(global, steps, msg.Round)
			if err != nil {
				// Report the failure to the platform so it can abort the
				// round instead of hanging.
				_ = nl.send(transport.Msg{
					Kind:   transport.KindError,
					Round:  msg.Round,
					NodeID: nc.ID,
					Err:    err.Error(),
				})
				return fmt.Errorf("core: node %d local update: %w", nc.ID, err)
			}
			if cfg.Observer != nil {
				cfg.Observer.Observe(obs.Event{
					Type: obs.TypeNodeCompute, Round: msg.Round, Node: nc.ID,
					Iter: n.iter, T0: steps, Dur: time.Since(compT0),
				})
			}
			// Ownership of Msg.Params/Payload transfers to the receiver on
			// Send (see transport.Msg); theta is the node's reusable buffer,
			// so a copy (or a fresh encoding) must cross the boundary.
			// Version echoes the broadcast's θ-version tag so an async
			// platform can compute the update's staleness; zero (and
			// harmless) on the sync path.
			reply := transport.Msg{
				Kind:    transport.KindUpdate,
				Round:   msg.Round,
				NodeID:  nc.ID,
				Version: msg.Version,
			}
			if msg.Codec != "" {
				// The reply mirrors the broadcast's mask: under a masked
				// downlink only the masked coordinates carry information
				// (the rest is the platform's own θ), so only they return.
				payload, eerr := upEnc.EncodeMasked(theta, wireMask)
				if eerr != nil {
					_ = nl.send(transport.Msg{
						Kind:   transport.KindError,
						Round:  msg.Round,
						NodeID: nc.ID,
						Err:    eerr.Error(),
					})
					return fmt.Errorf("core: node %d encode update: %w", nc.ID, eerr)
				}
				reply.Codec, reply.Payload = msg.Codec, payload
			} else {
				reply.Params = theta.Clone()
			}
			if err := nl.send(reply); err != nil {
				return fmt.Errorf("core: node %d send update: %w", nc.ID, err)
			}
		default:
			return fmt.Errorf("%w: node %d got unexpected %v", ErrProtocol, nc.ID, msg.Kind)
		}
	}
}

// nodeState carries the across-round state of one node: the iteration
// counter, the adversarial dataset D_adv, the regeneration count r, and the
// reusable numeric buffers (one meta workspace plus the local θ and
// meta-gradient vectors) shared by all T0 steps of all rounds.
type nodeState struct {
	cfg   Config
	model nn.Model
	data  *data.NodeDataset
	id    int
	rand  *rng.Rand

	ws    *meta.Workspace
	theta tensor.Vec
	grad  tensor.Vec

	iter     int
	adv      []data.Sample
	advRound int // r in Algorithm 2
}

// newNodeState builds the per-node state, sizing the reusable buffers for
// the model.
func newNodeState(cfg Config, m nn.Model, d *data.NodeDataset, id int) *nodeState {
	np := m.NumParams()
	return &nodeState{
		cfg:   cfg,
		model: m,
		data:  d,
		id:    id,
		rand:  rng.New(cfg.Seed).Split(uint64(id) + 1),
		ws:    meta.NewWorkspace(m),
		theta: tensor.NewVec(np),
		grad:  tensor.NewVec(np),
	}
}

// localUpdates performs `steps` local meta-updates starting from the
// received global parameters and returns the updated vector (Algorithm 1
// lines 6–13, Algorithm 2 lines 6–22). The step count is normally T0 but
// the platform may override it per round. round tags emitted observability
// events and does not influence the computation.
func (n *nodeState) localUpdates(global tensor.Vec, steps, round int) (tensor.Vec, error) {
	if len(global) != n.model.NumParams() {
		return nil, fmt.Errorf("core: node %d got %d params, model needs %d", n.id, len(global), n.model.NumParams())
	}
	theta := n.theta
	theta.CopyFrom(global)
	cfg := n.cfg
	for t := 0; t < steps; t++ {
		n.iter++
		train, test := n.data.Train, n.data.Test
		if cfg.BatchSize > 0 {
			train = data.Minibatch(n.rand, n.data.Train, cfg.BatchSize)
			test = data.Minibatch(n.rand, n.data.Test, cfg.BatchSize)
		}
		// phi aliases workspace memory: valid until the next ws call,
		// which is exactly the lifetime generateAdversarial needs.
		var phi tensor.Vec
		if cfg.Robust != nil {
			phi = n.ws.GradWithExtraInto(theta, train, test, n.adv, cfg.Alpha, cfg.GradMode, n.grad)
		} else {
			phi = n.ws.GradInto(theta, train, test, cfg.Alpha, cfg.GradMode, n.grad)
		}
		theta.Axpy(-cfg.Beta, n.grad)
		if !theta.IsFinite() {
			return nil, fmt.Errorf("core: node %d diverged at iteration %d (non-finite parameters)", n.id, n.iter)
		}
		if r := cfg.Robust; r != nil && n.iter%(r.N0*cfg.T0) == 0 && n.advRound < r.R {
			if err := n.generateAdversarial(phi, round); err != nil {
				return nil, err
			}
		}
	}
	return theta, nil
}

// generateAdversarial implements Algorithm 2 lines 15–22: sample |D_test|
// points uniformly from D_comb = D_test ∪ D_adv, run Ta steps of penalized
// gradient ascent on each under the current inner-adapted model φ, and
// append the results to D_adv.
func (n *nodeState) generateAdversarial(phi tensor.Vec, round int) error {
	r := n.cfg.Robust
	var genT0 time.Time
	if n.cfg.Observer != nil {
		genT0 = time.Now()
	}
	comb := make([]data.Sample, 0, len(n.data.Test)+len(n.adv))
	comb = append(comb, n.data.Test...)
	comb = append(comb, n.adv...)
	if len(comb) == 0 {
		return nil
	}
	pcfg := dro.PerturbConfig{
		Lambda:   r.Lambda,
		Nu:       r.Nu,
		Steps:    r.Ta,
		Cost:     r.Cost,
		ClampMin: r.ClampMin,
		ClampMax: r.ClampMax,
	}
	fresh := make([]data.Sample, 0, len(n.data.Test))
	for j := 0; j < len(n.data.Test); j++ {
		s := comb[n.rand.IntN(len(comb))]
		adv, err := dro.Perturb(n.model, phi, s, n.data.Test, pcfg)
		if err != nil {
			return fmt.Errorf("core: node %d adversarial generation: %w", n.id, err)
		}
		fresh = append(fresh, adv)
	}
	n.adv = append(n.adv, fresh...)
	n.advRound++
	if n.cfg.Observer != nil {
		n.cfg.Observer.Observe(obs.Event{
			Type: obs.TypeAdvRegen, Round: round, Node: n.id,
			Dur: time.Since(genT0), Value: float64(len(fresh)),
		})
	}
	return nil
}
