package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/edgeai/fedml/internal/checkpoint"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// RunAsyncPlatform executes the buffered-async variant of the platform loop:
// instead of gating every round on a full gather barrier, it applies node
// updates as they arrive with staleness-decayed weights and keeps
// re-broadcasting the current θ, so one straggler no longer sets the pace of
// the whole federation.
//
// The consistency model (DESIGN.md §12):
//
//   - θ carries a version: the number of aggregations applied so far
//     (== CommStats.Rounds). Every broadcast and probe is stamped with it
//     (transport.Msg.Version) and nodes echo the stamp on their reply.
//   - Each node holds at most one outstanding assignment. A node with no
//     work in flight gets the current θ at the current version; a node still
//     computing keeps its old assignment and is simply left alone.
//   - At delivery, an update's staleness s = currentVersion − echoed
//     version. It is applied with weight ω·StalenessDecay^s when
//     s ≤ MaxStaleness and discarded (CommStats.StaleDropped) otherwise.
//   - Each round the platform waits only for an AsyncQuorum fraction of the
//     assignments it dispatched *this* round (bounded by RoundTimeout), then
//     aggregates whatever has arrived — fresh or stale. Stragglers past the
//     quorum deliver in a later round at decayed weight.
//   - A node whose in-flight assignment falls MaxStaleness versions behind
//     gets one last poll: an update that has already arrived is discarded
//     past the bound (StaleDropped) and the node is handed fresh work, while
//     a node that stayed silent is suspected — its recovery then runs through
//     the ordinary probe/rejoin machinery, which in async mode is the common
//     path rather than the exception.
//
// With StalenessDecay 1, MaxStaleness 0, AsyncQuorum 1, and every node
// answering within RoundTimeout, each round dispatches to every node, waits
// for all of them, and aggregates identical slot sets in the aggregation
// core's order-independent merge — the θ trajectory is bit-identical to
// RunPlatform (degenerate-case equality, mirroring the flat-vs-sharded
// guarantee).
//
// The loop is fault-tolerant by construction (cfg.RoundTimeout must be
// positive): it takes ownership of the links, and checkpoint/resume works as
// in RunPlatform — the θ-version rides on the persisted Rounds counter, and
// a resumed platform restarts with no assignments in flight (the nodes it
// reconnects to are fresh processes).
func RunAsyncPlatform(links []transport.Link, weights []float64, theta0 tensor.Vec, cfg Config) (tensor.Vec, CommStats, error) {
	var stats CommStats
	c := cfg.normalized()
	c.Async = true // direct callers get the same validation Train does
	if err := c.Validate(); err != nil {
		return nil, stats, err
	}
	if len(links) == 0 {
		return nil, stats, fmt.Errorf("core: no nodes to federate")
	}
	if len(links) != len(weights) {
		return nil, stats, fmt.Errorf("core: %d links but %d weights", len(links), len(weights))
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			return nil, stats, fmt.Errorf("core: negative aggregation weight %v", w)
		}
		wsum += w
	}
	if wsum <= 0 {
		return nil, stats, fmt.Errorf("core: aggregation weights sum to %v", wsum)
	}

	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ls := newLinkSet(c, links, 0)
	defer ls.finish()

	theta := theta0.Clone()
	if c.SyncMask != nil {
		if err := c.SyncMask.validateDim(len(theta)); err != nil {
			return nil, stats, err
		}
	}
	bp, err := newBudgetPolicy(c, weights, 0, len(theta))
	if err != nil {
		return nil, stats, err
	}
	agg := newAggCore(0, len(links), len(theta))
	selector := newParticipationSelector(c, len(links), 0)
	pi := selector.inclusionProb()
	useHT := c.UnbiasedParticipation && c.samplingActive()
	var htDenom float64
	if useHT {
		htDenom = foldScalars(0, len(links), func(i int) float64 { return weights[i] })
	}

	var prevTheta tensor.Vec
	if ls.obs != nil {
		prevTheta = make(tensor.Vec, len(theta))
	}
	// frozenRef snapshots the pre-aggregation θ when the sync mask is frozen
	// (see RunPlatform): frozen coordinates are restored after ScaleInto.
	var frozenRef tensor.Vec
	if c.SyncMask != nil {
		frozenRef = make(tensor.Vec, len(theta))
	}

	// pending[i] is the θ-version assigned to node i and not yet resolved
	// (answered, written off, or suspected); -1 means the node is free.
	pending := make([]int, len(links))
	for i := range pending {
		pending[i] = -1
	}
	// fresh marks the assignments dispatched in the current round — the set
	// the quorum is measured against.
	fresh := make([]bool, len(links))

	// pollTO is the per-link poll deadline of the gather sweep: small enough
	// that a silent straggler cannot stall the pass, large enough not to
	// busy-spin the scheduler.
	pollTO := c.RoundTimeout / 64
	if pollTO < 200*time.Microsecond {
		pollTO = 200 * time.Microsecond
	}
	if pollTO > 2*time.Millisecond {
		pollTO = 2 * time.Millisecond
	}

	var (
		iter       int
		dispersion float64
	)
	t0 := c.T0
	startRound := 1
	ckEvery := c.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 1
	}
	if c.CheckpointPath != "" && c.Resume {
		st, err := checkpoint.LoadRunState(c.CheckpointPath)
		switch {
		case err == nil:
			if len(st.Theta) != len(theta) {
				return nil, stats, fmt.Errorf("core: resume: snapshot has %d params, model needs %d", len(st.Theta), len(theta))
			}
			theta.CopyFrom(tensor.Vec(st.Theta))
			iter = st.Iter
			t0 = st.T0
			dispersion = st.Dispersion
			ls.stats = statsFromSnapshot(st)
			startRound = st.Round + 1
			logf("core: resumed from %s: round %d done, iter %d", c.CheckpointPath, st.Round, st.Iter)
		case errors.Is(err, os.ErrNotExist):
		default:
			return nil, stats, err
		}
	}

	consecSkipped := 0
	for round := startRound; iter < c.T; round++ {
		// The θ-version is the aggregation count — skipped rounds leave both
		// θ and the version unchanged, so staleness measures actual drift.
		ver := ls.stats.Rounds
		t0 = nextT0(c, round, dispersion, t0, c.T-iter)
		var roundT0 time.Time
		if ls.obs != nil {
			roundT0 = time.Now()
			ls.obs.Observe(obs.Event{Type: obs.TypeRoundStart, Round: round, Iter: iter, T0: t0, Alive: ls.aliveCnt})
		}

		// Write off assignments that fell past the drop bound, with one last
		// poll each: a node whose answer already arrived is alive — discard
		// the update (it is past the bound by construction) and free the node
		// for fresh work. A node that stayed silent goes to the probe/rejoin
		// machinery instead of being waited on forever.
		for i, pv := range pending {
			if pv < 0 || ver-pv <= c.MaxStaleness {
				continue
			}
			pending[i] = -1
			msg, err := ls.asyncGather(i, round, theta, pollTO)
			switch {
			case err == nil:
				ls.billUp(i, round, wireBytes(msg))
				ls.markStaleDrop(i, round, ver-msg.Version)
			case errors.Is(err, errDecode):
				ls.billUp(i, round, wireBytes(msg))
				ls.stats.Rejected++
				if ls.obs != nil {
					ls.obs.Observe(obs.Event{Type: obs.TypeReject, Round: round, Node: ls.base + i, Cause: err.Error()})
				}
				ls.resyncLink(i)
				ls.logf("core: rejected update from node %d in round %d: %v", ls.base+i, round, err)
			default:
				ls.markSuspect(i, round, fmt.Errorf("in-flight update at version %d exceeded staleness bound %d at version %d", pv, c.MaxStaleness, ver))
			}
		}

		// Dispatch the current θ to every selected node with no work in
		// flight; nodes still computing keep their older assignment.
		agg.reset()
		freshCnt := 0
		for i := range fresh {
			fresh[i] = false
		}
		selected := selector.selectAlive(round, ls.alive)
		if bp != nil {
			selected = bp.filter(round, t0, selected, func(i int, joules float64) {
				ls.markBudgetFiltered(i, round, joules)
			})
		}
		for _, i := range selected {
			if pending[i] >= 0 {
				continue
			}
			m, err := ls.paramsMsg(theta, i, round, t0, false)
			if err != nil {
				return nil, ls.stats, err
			}
			m.Version = ver
			nBytes := wireBytes(m)
			if err := ls.ops.send(i, m); err != nil {
				ls.markSuspect(i, round, err)
				continue
			}
			ls.billDown(i, round, false, nBytes)
			pending[i] = ver
			fresh[i] = true
			freshCnt++
		}

		// Re-probe suspects with the current θ, exactly as the sync loop
		// does; in async mode rejoin is routine, not exceptional.
		var probeNodes []int
		for i := range ls.alive {
			if ls.alive[i] {
				continue
			}
			m, err := ls.paramsMsg(theta, i, round, t0, true)
			if err != nil {
				return nil, ls.stats, err
			}
			m.Version = ver
			nBytes := wireBytes(m)
			if err := ls.ops.trySend(i, m, ls.probeTO); err != nil {
				continue
			}
			probeNodes = append(probeNodes, i)
			ls.billDown(i, round, true, nBytes)
		}

		thetaNorm := theta.Norm()
		// deliver vets one arrived update: bill the wire bytes, apply the
		// staleness drop bound, sanitize, and hand the survivor to the
		// aggregation core at its decayed weight.
		deliver := func(i int, msg transport.Msg) {
			ls.billUp(i, round, wireBytes(msg))
			s := ver - msg.Version
			if s > c.MaxStaleness {
				ls.markStaleDrop(i, round, s)
				return
			}
			if err := sanitize(tensor.Vec(msg.Params), theta, thetaNorm, ls.c.GuardRadius); err != nil {
				ls.stats.Rejected++
				if ls.obs != nil {
					ls.obs.Observe(obs.Event{Type: obs.TypeReject, Round: round, Node: ls.base + i, Cause: err.Error()})
				}
				ls.logf("core: rejected update from node %d in round %d: %v", ls.base+i, round, err)
				return
			}
			w := weights[i]
			if useHT {
				w /= pi
			}
			if s > 0 {
				w *= math.Pow(c.StalenessDecay, float64(s))
				ls.markStaleApply(i, round, s)
			}
			agg.accept(i, tensor.Vec(msg.Params), w)
		}

		// Gather sweep: poll every link with work in flight until the quorum
		// of this round's fresh assignments has resolved (or the round
		// deadline passes). Stragglers from earlier rounds deliver here too —
		// they just don't gate the quorum.
		need := int(math.Ceil(c.AsyncQuorum * float64(freshCnt)))
		resolvedFresh, resolvedAny := 0, 0
		resolve := func(i int) {
			pending[i] = -1
			resolvedAny++
			if fresh[i] {
				fresh[i] = false
				resolvedFresh++
			}
		}
		deadline := time.Now().Add(c.RoundTimeout)
		for time.Now().Before(deadline) {
			if freshCnt > 0 && resolvedFresh >= need {
				break
			}
			if freshCnt == 0 && resolvedAny > 0 {
				break
			}
			anyPending := false
			for i := range pending {
				if pending[i] < 0 {
					continue
				}
				anyPending = true
				msg, err := ls.asyncGather(i, round, theta, pollTO)
				switch {
				case err == nil:
					resolved := msg.Version == pending[i]
					deliver(i, msg)
					if resolved {
						resolve(i)
					}
				case errors.Is(err, transport.ErrTimeout):
					// Nothing arrived within this poll; try again next pass.
				case errors.Is(err, errDecode):
					// Delivered but undecodable: bill, discard like a
					// sanitation reject, resync the chain. The node stays.
					ls.billUp(i, round, wireBytes(msg))
					ls.stats.Rejected++
					if ls.obs != nil {
						ls.obs.Observe(obs.Event{Type: obs.TypeReject, Round: round, Node: ls.base + i, Cause: err.Error()})
					}
					ls.resyncLink(i)
					ls.logf("core: rejected update from node %d in round %d: %v", ls.base+i, round, err)
					resolve(i)
				default:
					ls.markSuspect(i, round, err)
					resolve(i)
				}
			}
			if !anyPending {
				break
			}
		}

		// Probe gathers: a suspect that answered rejoins and its reply (at
		// the probed version, staleness 0) aggregates like any other.
		for _, i := range probeNodes {
			msg, err := ls.gatherFrom(i, round, theta, ls.probeTO)
			if err != nil {
				ls.probeFailed(i)
				continue // still unreachable; stays suspect
			}
			ls.rejoin(i, round)
			deliver(i, msg)
		}

		if min := ls.minNodes(); ls.aliveCnt < min {
			return nil, ls.stats, fmt.Errorf("core: only %d nodes alive, below MinNodes=%d", ls.aliveCnt, min)
		}

		sum, selSum, count := agg.reduce()
		denom := selSum
		if useHT {
			denom = htDenom
		}
		if count == 0 || denom <= 0 {
			ls.stats.SkippedRounds++
			consecSkipped++
			if ls.obs != nil {
				ls.obs.Observe(obs.Event{Type: obs.TypeRoundSkip, Round: round, Iter: iter, T0: t0, Alive: ls.aliveCnt, Dur: time.Since(roundT0)})
			}
			logf("core: round %d produced no usable updates (%d alive); skipping aggregation", round, ls.aliveCnt)
			if consecSkipped > maxConsecutiveSkips {
				return nil, ls.stats, fmt.Errorf("core: %d consecutive rounds without usable updates (%d nodes alive)", consecSkipped, ls.aliveCnt)
			}
			continue
		}
		consecSkipped = 0

		if ls.obs != nil {
			prevTheta.CopyFrom(theta)
		}
		frozen := c.SyncMask.frozenAt(round)
		if frozen {
			frozenRef.CopyFrom(theta)
		}
		sum.ScaleInto(1/denom, theta)
		if frozen {
			restoreFrozen(theta, frozenRef, c.SyncMask.Ranges)
		}
		dispersion = agg.dispersion(theta, denom)
		iter += t0
		ls.stats.Rounds++ // this is the version bump: θ changed
		if ls.obs != nil {
			ls.obs.Observe(obs.Event{
				Type: obs.TypeRoundEnd, Round: round, Iter: iter, T0: t0,
				Alive: ls.aliveCnt, Dur: time.Since(roundT0),
				Value: theta.Dist(prevTheta), Dispersion: dispersion,
			})
		}
		if c.OnRound != nil {
			c.OnRound(round, iter, theta)
		}
		if c.CheckpointPath != "" && (ls.stats.Rounds%ckEvery == 0 || iter >= c.T) {
			if err := saveSnapshot(c.CheckpointPath, round, iter, t0, dispersion, theta, ls.stats); err != nil {
				return nil, ls.stats, err
			}
		}
	}

	if err := ls.shutdown(); err != nil {
		return nil, ls.stats, err
	}
	return theta, ls.stats, nil
}
