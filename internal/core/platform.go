package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"github.com/edgeai/fedml/internal/checkpoint"
	"github.com/edgeai/fedml/internal/codec"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// CommStats accounts for the platform↔edge traffic of one training run.
type CommStats struct {
	// Rounds is the number of global aggregations.
	Rounds int
	// Messages is the total number of parameter-bearing messages crossing
	// the platform's transport boundary. Downlink traffic — round
	// broadcasts and suspect re-probes — is billed per *attempted* send:
	// the transport offers no delivery acknowledgment, so a message lost
	// in flight (e.g. a chaos drop) still consumed the platform's uplink
	// and is counted. Uplink updates are billed per *delivered* message
	// only, including updates the sanitation guard later rejects; an
	// update lost in flight is observable only as a gather timeout and is
	// never counted.
	Messages int
	// Bytes is the payload volume of the messages counted above, at
	// 8 bytes per parameter.
	Bytes int64
	// Dropped counts nodes removed by fault-tolerant rounds. A node can be
	// dropped, rejoin, and be dropped again; each removal counts.
	Dropped int
	// Rejoined counts suspect nodes re-admitted after answering a re-probe.
	Rejoined int
	// Rejected counts updates discarded by the sanitation guard (non-finite
	// values or norm explosions past Config.GuardRadius).
	Rejected int
	// SkippedRounds counts fault-tolerant rounds that produced no usable
	// update and therefore aggregated nothing.
	SkippedRounds int
}

// maxConsecutiveSkips bounds how many rounds in a row the fault-tolerant
// platform tolerates without a single usable update before giving up.
const maxConsecutiveSkips = 8

// linkOps abstracts per-node I/O so the strict synchronous path and the
// fault-tolerant (deadline-bounded) path share the round loop.
type linkOps interface {
	// send transmits with the full round deadline (strict: blocking).
	send(i int, m transport.Msg) error
	// trySend transmits with an explicit deadline (strict: blocking).
	trySend(i int, m transport.Msg, d time.Duration) error
	// recv waits for a message with an explicit deadline (strict: blocking).
	recv(i int, d time.Duration) (transport.Msg, error)
	// finish releases any resources the ops layer created.
	finish()
}

// syncOps is the strict path: direct blocking I/O on the caller's links.
type syncOps struct{ links []transport.Link }

var _ linkOps = syncOps{}

func (s syncOps) send(i int, m transport.Msg) error { return s.links[i].Send(m) }
func (s syncOps) trySend(i int, m transport.Msg, _ time.Duration) error {
	return s.links[i].Send(m)
}
func (s syncOps) recv(i int, _ time.Duration) (transport.Msg, error) { return s.links[i].Recv() }
func (syncOps) finish()                                              {}

// asyncOps is the fault-tolerant path: every link gets goroutine pumps and
// every operation a deadline, so dead or slow nodes cannot stall a round.
// Links of dropped nodes stay open so the platform can re-probe and re-admit
// nodes that come back; everything is closed by finish.
type asyncOps struct {
	wrapped []*transport.Async
	timeout time.Duration
}

var _ linkOps = (*asyncOps)(nil)

func (a *asyncOps) send(i int, m transport.Msg) error {
	return a.wrapped[i].TrySend(m, a.timeout)
}

func (a *asyncOps) trySend(i int, m transport.Msg, d time.Duration) error {
	return a.wrapped[i].TrySend(m, d)
}

func (a *asyncOps) recv(i int, d time.Duration) (transport.Msg, error) {
	return a.wrapped[i].TryRecv(d)
}

func (a *asyncOps) finish() {
	for _, w := range a.wrapped {
		_ = w.Close()
	}
}

// platformRun carries the mutable state of one RunPlatform execution.
type platformRun struct {
	c       Config
	ops     linkOps
	ft      bool
	probeTO time.Duration
	logf    func(format string, args ...any)

	theta    tensor.Vec
	alive    []bool
	aliveCnt int
	// expectID pins each link to the NodeID its first valid update claimed
	// (-1 until bound); boundBy is the reverse map. Together they reject
	// misrouted or duplicated updates that would otherwise aggregate
	// silently under the wrong weight.
	expectID []int
	boundBy  map[int]int

	stats CommStats
	// obs, when non-nil, mirrors every stats mutation as a structured
	// event (counter/event parity: the billing helpers below are the only
	// places either side changes). prevTheta is the pre-aggregation θ
	// snapshot used to report the update norm; it is only allocated when
	// an observer is attached, keeping the nil path allocation-free.
	obs       obs.RoundObserver
	prevTheta tensor.Vec

	// codecSpec/down/up hold the update-compression state when Config.Codec
	// selects a non-raw codec: one downlink encoder and one uplink decoder
	// per link, so stateful codecs keep an independent reference chain per
	// node. All three stay nil/empty for raw runs, preserving the
	// allocation-free Params hot path.
	codecSpec string
	down      []codec.Codec
	up        []codec.Codec
}

// wireBytes is the billed size of a parameter-bearing message: the encoded
// payload when one is attached, 8 bytes per raw parameter otherwise.
func wireBytes(m transport.Msg) int64 {
	if len(m.Payload) > 0 {
		return int64(len(m.Payload))
	}
	return int64(8 * len(m.Params))
}

// paramsMsg builds the KindParams message carrying the current θ to link i.
// Raw runs ship a clone of θ (ownership transfers on Send); codec runs
// encode through link i's downlink encoder. resync restarts the link's
// reference chains first, so the message is guaranteed to be a full payload
// any decoder state can accept — the recovery offer sent with every probe.
func (p *platformRun) paramsMsg(i, round, t0 int, resync bool) (transport.Msg, error) {
	m := transport.Msg{Kind: transport.KindParams, Round: round, LocalSteps: t0}
	if p.down == nil {
		m.Params = p.theta.Clone()
		return m, nil
	}
	if resync {
		p.resyncLink(i)
	}
	payload, err := p.down[i].Encode(p.theta)
	if err != nil {
		return transport.Msg{}, fmt.Errorf("core: encode broadcast for node %d: %w", i, err)
	}
	m.Codec = p.codecSpec
	m.Payload = payload
	return m, nil
}

// resyncLink drops link i's codec reference chains, forcing the next
// downlink message to be a full payload and priming the uplink decoder to
// accept the full reply it triggers. No-op for raw runs.
func (p *platformRun) resyncLink(i int) {
	if p.down == nil {
		return
	}
	p.down[i].Reset()
	p.up[i].Reset()
}

// decodeUp expands the compressed update carried by msg through link i's
// uplink decoder, filling msg.Params in place. Every failure wraps
// errDecode so the round loop can tell wire damage from protocol abuse.
func (p *platformRun) decodeUp(i int, msg *transport.Msg) error {
	if p.up == nil || msg.Codec != p.codecSpec {
		return fmt.Errorf("%w: node %d sent codec %q, platform expects %q", errDecode, i, msg.Codec, p.codecSpec)
	}
	params, err := p.up[i].Decode(msg.Payload)
	if err != nil {
		return fmt.Errorf("%w: node %d: %v", errDecode, i, err)
	}
	msg.Params = params
	return nil
}

// errDecode marks a delivered update whose payload could not be decoded —
// wire corruption or a broken codec reference chain. Fault-tolerant rounds
// treat it like a sanitation reject (bill, discard, resync the link);
// strict rounds abort.
var errDecode = errors.New("core: undecodable update payload")

// billDown accounts one downlink (platform→node) parameter message of
// nBytes wire bytes, billed on the attempted send — the transport cannot
// tell delivered from lost (see CommStats.Messages).
func (p *platformRun) billDown(node, round int, probe bool, nBytes int64) {
	p.stats.Messages++
	p.stats.Bytes += nBytes
	if p.obs != nil {
		t := obs.TypeBroadcast
		if probe {
			t = obs.TypeProbe
		}
		p.obs.Observe(obs.Event{Type: t, Round: round, Node: node, Bytes: nBytes})
	}
}

// billUp accounts one delivered uplink (node→platform) update message.
func (p *platformRun) billUp(node, round int, nBytes int64) {
	p.stats.Messages++
	p.stats.Bytes += nBytes
	if p.obs != nil {
		p.obs.Observe(obs.Event{Type: obs.TypeUpdate, Round: round, Node: node, Bytes: nBytes})
	}
}

// markSuspect removes node i from the active set. In fault-tolerant mode the
// link stays open and the node is re-probed every following round.
func (p *platformRun) markSuspect(i, round int, cause error) {
	if !p.alive[i] {
		return
	}
	p.alive[i] = false
	p.aliveCnt--
	p.stats.Dropped++
	// The node may have missed any number of messages while unreachable, so
	// its codec reference chains are unusable until a full resync.
	p.resyncLink(i)
	if p.obs != nil {
		p.obs.Observe(obs.Event{Type: obs.TypeDrop, Round: round, Node: i, Alive: p.aliveCnt, Cause: cause.Error()})
	}
	p.logf("core: dropped node %d in round %d (%d alive): %v", i, round, p.aliveCnt, cause)
}

// rejoin re-admits a suspect node that answered a re-probe.
func (p *platformRun) rejoin(i, round int) {
	p.alive[i] = true
	p.aliveCnt++
	p.stats.Rejoined++
	if p.obs != nil {
		p.obs.Observe(obs.Event{Type: obs.TypeRejoin, Round: round, Node: i, Alive: p.aliveCnt})
	}
	p.logf("core: node %d rejoined in round %d (%d alive)", i, round, p.aliveCnt)
}

// bindNodeID validates the claimed NodeID of an update from link i against
// the binding learned from that link's first update.
func (p *platformRun) bindNodeID(i, id int) error {
	if prev := p.expectID[i]; prev >= 0 {
		if id != prev {
			return fmt.Errorf("%w: link %d update claims node %d, but the link is bound to node %d", ErrProtocol, i, id, prev)
		}
		return nil
	}
	if other, taken := p.boundBy[id]; taken && other != i {
		return fmt.Errorf("%w: node id %d claimed by links %d and %d (misrouted or duplicated update)", ErrProtocol, id, other, i)
	}
	p.expectID[i] = id
	p.boundBy[id] = i
	return nil
}

// gatherFrom waits up to d for link i's update to the given round,
// validating protocol shape and NodeID binding. In fault-tolerant mode it
// drains stale answers to earlier rounds (late replies from a node that
// was dropped and is coming back) instead of treating them as violations.
func (p *platformRun) gatherFrom(i, round int, d time.Duration) (transport.Msg, error) {
	deadline := time.Now().Add(d)
	for {
		remain := d
		if p.ft {
			remain = time.Until(deadline)
			if remain <= 0 {
				return transport.Msg{}, fmt.Errorf("core: gather round %d from node %d: %w", round, i, transport.ErrTimeout)
			}
		}
		msg, err := p.ops.recv(i, remain)
		if err != nil {
			return transport.Msg{}, fmt.Errorf("core: gather round %d from node %d: %w", round, i, err)
		}
		switch {
		case msg.Kind == transport.KindError:
			return transport.Msg{}, fmt.Errorf("core: node %d failed in round %d: %s", msg.NodeID, round, msg.Err)
		case msg.Kind != transport.KindUpdate:
			return transport.Msg{}, fmt.Errorf("%w: expected update, got %v from node %d", ErrProtocol, msg.Kind, i)
		}
		if msg.Round != round {
			if p.ft && msg.Round < round {
				p.logf("core: discarding stale round-%d update from link %d during round %d", msg.Round, i, round)
				continue
			}
			return transport.Msg{}, fmt.Errorf("%w: node %d answered round %d during round %d", ErrProtocol, i, msg.Round, round)
		}
		if msg.Codec != "" || len(msg.Payload) > 0 {
			// The message is returned alongside the error so the caller can
			// bill the bytes that did cross the wire.
			if err := p.decodeUp(i, &msg); err != nil {
				return msg, err
			}
			if len(msg.Params) != len(p.theta) {
				return msg, fmt.Errorf("%w: node %d payload decoded to %d params, want %d", errDecode, i, len(msg.Params), len(p.theta))
			}
		} else if len(msg.Params) != len(p.theta) {
			return transport.Msg{}, fmt.Errorf("%w: node %d sent %d params, want %d", ErrProtocol, i, len(msg.Params), len(p.theta))
		}
		if err := p.bindNodeID(i, msg.NodeID); err != nil {
			return transport.Msg{}, err
		}
		return msg, nil
	}
}

// sanitize vets a gathered update against the round's broadcast θ: updates
// carrying NaN/Inf, or drifting further from θ than the guard radius allows,
// are poison (wire corruption, a diverged node) and must not reach the
// aggregation. thetaNorm is ‖θ‖, precomputed once per round.
func (p *platformRun) sanitize(u tensor.Vec, thetaNorm float64) error {
	if !u.IsFinite() {
		return errors.New("update contains NaN or Inf")
	}
	if g := p.c.GuardRadius; g > 0 {
		limit := g * (1 + thetaNorm)
		if d := u.Dist(p.theta); d > limit {
			return fmt.Errorf("update distance %.4g from θ exceeds guard limit %.4g", d, limit)
		}
	}
	return nil
}

// snapshot persists the post-aggregation state of a round for crash
// recovery.
func (p *platformRun) snapshot(round, iter, t0 int, dispersion float64) error {
	st := &checkpoint.RunState{
		Version:       checkpoint.RunStateVersion,
		Round:         round,
		Iter:          iter,
		T0:            t0,
		Dispersion:    dispersion,
		Theta:         append([]float64(nil), p.theta...),
		Rounds:        p.stats.Rounds,
		Messages:      p.stats.Messages,
		Bytes:         p.stats.Bytes,
		Dropped:       p.stats.Dropped,
		Rejoined:      p.stats.Rejoined,
		Rejected:      p.stats.Rejected,
		SkippedRounds: p.stats.SkippedRounds,
	}
	if err := checkpoint.SaveRunState(p.c.CheckpointPath, st); err != nil {
		return fmt.Errorf("core: checkpoint round %d: %w", round, err)
	}
	return nil
}

// RunPlatform executes the platform side of Algorithms 1/2: broadcast the
// current global parameters to the (possibly sampled) nodes, gather their
// local updates, and aggregate with the data-size weights (Eq. 5),
// renormalized over the responders. links[i] must connect to the node
// carrying weight weights[i]; theta0 is not modified.
//
// With cfg.RoundTimeout > 0 the platform runs fault-tolerant rounds: it
// takes ownership of the links (they are closed when training ends), and a
// node that misses the deadline, disconnects, or reports an error is
// dropped and training continues while at least cfg.MinNodes remain.
// Dropped nodes are kept as suspects and re-probed with the current θ every
// round; one that answers rejoins the federation. Gathered updates pass the
// sanitation guard (see Config.GuardRadius) before aggregation, and with
// cfg.CheckpointPath set the platform snapshots its state after aggregation
// rounds and can resume from the snapshot after a crash (cfg.Resume).
func RunPlatform(links []transport.Link, weights []float64, theta0 tensor.Vec, cfg Config) (tensor.Vec, CommStats, error) {
	var stats CommStats
	c := cfg.normalized()
	if err := c.Validate(); err != nil {
		return nil, stats, err
	}
	if len(links) == 0 {
		return nil, stats, fmt.Errorf("core: no nodes to federate")
	}
	if len(links) != len(weights) {
		return nil, stats, fmt.Errorf("core: %d links but %d weights", len(links), len(weights))
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			return nil, stats, fmt.Errorf("core: negative aggregation weight %v", w)
		}
		wsum += w
	}
	if wsum <= 0 {
		return nil, stats, fmt.Errorf("core: aggregation weights sum to %v", wsum)
	}

	ft := c.RoundTimeout > 0
	minNodes := c.MinNodes
	if minNodes == 0 {
		minNodes = 1
	}
	var ops linkOps = syncOps{links: links}
	if ft {
		wrapped := make([]*transport.Async, len(links))
		for i, l := range links {
			wrapped[i] = transport.NewAsync(l, 2)
		}
		a := &asyncOps{wrapped: wrapped, timeout: c.RoundTimeout}
		defer a.finish()
		ops = a
	}
	probeTO := c.ProbeTimeout
	if probeTO <= 0 {
		probeTO = c.RoundTimeout / 4
	}
	if probeTO < time.Millisecond {
		probeTO = time.Millisecond
	}
	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	p := &platformRun{
		c:        c,
		ops:      ops,
		ft:       ft,
		probeTO:  probeTO,
		logf:     logf,
		theta:    theta0.Clone(),
		alive:    make([]bool, len(links)),
		aliveCnt: len(links),
		expectID: make([]int, len(links)),
		boundBy:  make(map[int]int, len(links)),
		obs:      c.Observer,
	}
	for i := range p.alive {
		p.alive[i] = true
		p.expectID[i] = -1
	}
	if p.obs != nil {
		p.prevTheta = make(tensor.Vec, len(p.theta))
	}
	if c.Codec != "" && c.Codec != codec.Raw {
		// One encoder/decoder pair per link: stateful codecs track each
		// node's reference chain independently. Validate caught bad specs.
		p.codecSpec = c.Codec
		p.down = make([]codec.Codec, len(links))
		p.up = make([]codec.Codec, len(links))
		for i := range links {
			p.down[i], _ = codec.New(c.Codec)
			p.up[i], _ = codec.New(c.Codec)
		}
	}

	selector := newParticipationSelector(c, len(links))
	var (
		iter       int
		dispersion float64
	)
	t0 := c.T0
	startRound := 1
	ckEvery := c.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 1
	}
	if c.CheckpointPath != "" && c.Resume {
		st, err := checkpoint.LoadRunState(c.CheckpointPath)
		switch {
		case err == nil:
			if len(st.Theta) != len(p.theta) {
				return nil, stats, fmt.Errorf("core: resume: snapshot has %d params, model needs %d", len(st.Theta), len(p.theta))
			}
			p.theta.CopyFrom(tensor.Vec(st.Theta))
			iter = st.Iter
			t0 = st.T0
			dispersion = st.Dispersion
			p.stats = CommStats{
				Rounds: st.Rounds, Messages: st.Messages, Bytes: st.Bytes,
				Dropped: st.Dropped, Rejoined: st.Rejoined, Rejected: st.Rejected,
				SkippedRounds: st.SkippedRounds,
			}
			startRound = st.Round + 1
			logf("core: resumed from %s: round %d done, iter %d", c.CheckpointPath, st.Round, st.Iter)
		case errors.Is(err, os.ErrNotExist):
			// No snapshot yet: start fresh, so supervisors can always
			// restart the platform with Resume set.
		default:
			return nil, stats, err
		}
	}

	consecSkipped := 0
	for round := startRound; iter < c.T; round++ {
		if c.T0Controller != nil && round > 1 {
			t0 = c.T0Controller(round, dispersion, t0)
			if t0 < 1 {
				t0 = 1
			}
		}
		if remaining := c.T - iter; t0 > remaining {
			t0 = remaining
		}
		var roundT0 time.Time
		if p.obs != nil {
			roundT0 = time.Now()
			p.obs.Observe(obs.Event{Type: obs.TypeRoundStart, Round: round, Iter: iter, T0: t0, Alive: p.aliveCnt})
		}

		selected := make([]int, 0, len(links))
		for _, i := range selector.pick() {
			if p.alive[i] {
				selected = append(selected, i)
			}
		}
		if len(selected) == 0 {
			// The sample missed every alive node; fall back to all of them.
			for i := range p.alive {
				if p.alive[i] {
					selected = append(selected, i)
				}
			}
		}

		roundNodes := selected[:0:len(selected)]
		for _, i := range selected {
			// Ownership of Msg.Params/Payload transfers to the receiver on
			// Send (see transport.Msg). theta is the platform's reusable
			// aggregation buffer — and in fault-tolerant mode the async
			// pump may deliver the message after this round's aggregation
			// has overwritten it — so every broadcast carries its own copy
			// (a clone when raw, a freshly encoded payload otherwise).
			m, err := p.paramsMsg(i, round, t0, false)
			if err != nil {
				return nil, p.stats, err
			}
			nBytes := wireBytes(m)
			if err := ops.send(i, m); err != nil {
				if ft {
					p.markSuspect(i, round, err)
					continue
				}
				return nil, p.stats, fmt.Errorf("core: broadcast round %d to node %d: %w", round, i, err)
			}
			roundNodes = append(roundNodes, i)
			p.billDown(i, round, false, nBytes)
		}

		// Re-probe suspects with the current θ: a dropped node that has
		// recovered answers like any other and rejoins below. Every probe
		// resyncs the link's codec chains first — an unanswered probe must
		// not advance the reference a revived node has never seen.
		var probeNodes []int
		if ft {
			for i := range p.alive {
				if p.alive[i] {
					continue
				}
				m, err := p.paramsMsg(i, round, t0, true)
				if err != nil {
					return nil, p.stats, err
				}
				nBytes := wireBytes(m)
				if err := ops.trySend(i, m, probeTO); err != nil {
					continue
				}
				probeNodes = append(probeNodes, i)
				p.billDown(i, round, true, nBytes)
			}
		}

		updates := make([]tensor.Vec, 0, len(roundNodes)+len(probeNodes))
		selWeights := make([]float64, 0, len(roundNodes)+len(probeNodes))
		var selSum float64
		thetaNorm := p.theta.Norm()
		accept := func(i int, msg transport.Msg) {
			// The message crossed the wire either way; account for it even
			// when the sanitation guard discards the payload.
			p.billUp(i, round, wireBytes(msg))
			if err := p.sanitize(tensor.Vec(msg.Params), thetaNorm); err != nil {
				p.stats.Rejected++
				if p.obs != nil {
					p.obs.Observe(obs.Event{Type: obs.TypeReject, Round: round, Node: i, Cause: err.Error()})
				}
				logf("core: rejected update from node %d in round %d: %v", i, round, err)
				return
			}
			updates = append(updates, tensor.Vec(msg.Params))
			selWeights = append(selWeights, weights[i])
			selSum += weights[i]
		}
		for _, i := range roundNodes {
			msg, err := p.gatherFrom(i, round, c.RoundTimeout)
			if err != nil {
				if ft && errors.Is(err, errDecode) {
					// Delivered but undecodable (wire corruption or a broken
					// reference chain): bill the bytes that arrived, discard
					// like a sanitation reject, and force a full resync so
					// the next exchange re-establishes the chain. The node
					// stays in the federation.
					p.billUp(i, round, wireBytes(msg))
					p.stats.Rejected++
					if p.obs != nil {
						p.obs.Observe(obs.Event{Type: obs.TypeReject, Round: round, Node: i, Cause: err.Error()})
					}
					p.resyncLink(i)
					logf("core: rejected update from node %d in round %d: %v", i, round, err)
					continue
				}
				if ft {
					p.markSuspect(i, round, err)
					continue
				}
				return nil, p.stats, err
			}
			if !ft {
				// Strict mode: a poisoned update aborts the run instead of
				// degrading it.
				if err := p.sanitize(tensor.Vec(msg.Params), thetaNorm); err != nil {
					return nil, p.stats, fmt.Errorf("core: node %d round %d: %v", i, round, err)
				}
			}
			accept(i, msg)
		}
		for _, i := range probeNodes {
			msg, err := p.gatherFrom(i, round, probeTO)
			if err != nil {
				continue // still unreachable; stays suspect
			}
			p.rejoin(i, round)
			accept(i, msg)
		}

		if p.aliveCnt < minNodes {
			return nil, p.stats, fmt.Errorf("core: only %d nodes alive, below MinNodes=%d", p.aliveCnt, minNodes)
		}
		if len(updates) == 0 || selSum <= 0 {
			if ft {
				p.stats.SkippedRounds++
				consecSkipped++
				if p.obs != nil {
					p.obs.Observe(obs.Event{Type: obs.TypeRoundSkip, Round: round, Iter: iter, T0: t0, Alive: p.aliveCnt, Dur: time.Since(roundT0)})
				}
				logf("core: round %d produced no usable updates (%d alive); skipping aggregation", round, p.aliveCnt)
				if consecSkipped > maxConsecutiveSkips {
					return nil, p.stats, fmt.Errorf("core: %d consecutive rounds without usable updates (%d nodes alive)", consecSkipped, p.aliveCnt)
				}
				continue
			}
			return nil, p.stats, fmt.Errorf("core: round %d produced no usable updates (%d nodes alive)", round, p.aliveCnt)
		}
		consecSkipped = 0

		// Aggregate into the reused θ buffer (Eq. 5). The updates were
		// received from the nodes, which relinquished ownership on Send,
		// so none of them aliases theta.
		if p.obs != nil {
			p.prevTheta.CopyFrom(p.theta)
		}
		tensor.WeightedSumInto(p.theta, selWeights, updates)
		p.theta.ScaleInPlace(1 / selSum)
		// Measure the update dispersion around the new aggregate — the
		// similarity proxy fed back to the T0 controller.
		dispersion = 0
		for k, u := range updates {
			dispersion += selWeights[k] / selSum * u.Dist(p.theta)
		}
		iter += t0
		p.stats.Rounds++
		if p.obs != nil {
			p.obs.Observe(obs.Event{
				Type: obs.TypeRoundEnd, Round: round, Iter: iter, T0: t0,
				Alive: p.aliveCnt, Dur: time.Since(roundT0),
				Value: p.theta.Dist(p.prevTheta), Dispersion: dispersion,
			})
		}
		if c.OnRound != nil {
			c.OnRound(round, iter, p.theta)
		}
		if c.CheckpointPath != "" && (p.stats.Rounds%ckEvery == 0 || iter >= c.T) {
			if err := p.snapshot(round, iter, t0, dispersion); err != nil {
				return nil, p.stats, err
			}
		}
	}

	// Shutdown sweep. Failures here are not drops — training is already
	// complete — so they are logged under a named phase and excluded from
	// the Dropped count.
	for i := range links {
		if !p.alive[i] {
			if ft {
				// Best-effort farewell so a node that revives later exits
				// cleanly instead of waiting for a round that never comes.
				_ = ops.trySend(i, transport.Msg{Kind: transport.KindDone}, probeTO)
			}
			continue
		}
		if err := ops.send(i, transport.Msg{Kind: transport.KindDone}); err != nil {
			if ft {
				logf("core: shutdown: done to node %d failed: %v", i, err)
				continue
			}
			return nil, p.stats, fmt.Errorf("core: done to node %d: %w", i, err)
		}
	}
	return p.theta, p.stats, nil
}

// participationSelector picks the per-round node subset for client
// sampling. Full participation returns the fixed identity subset.
type participationSelector struct {
	n        int
	perRound int
	rand     *rng.Rand
	all      []int
}

func newParticipationSelector(c Config, n int) *participationSelector {
	s := &participationSelector{n: n, all: make([]int, n)}
	for i := range s.all {
		s.all[i] = i
	}
	if c.Participation <= 0 || c.Participation >= 1 {
		return s
	}
	s.perRound = int(math.Ceil(c.Participation * float64(n)))
	if s.perRound < 1 {
		s.perRound = 1
	}
	s.rand = rng.New(c.Seed ^ 0x5e1ec7)
	return s
}

// pick returns the node indices participating in the next round, sorted so
// that gathers and aggregation stay deterministic.
func (s *participationSelector) pick() []int {
	if s.rand == nil {
		return s.all
	}
	perm := s.rand.Perm(s.n)
	sel := perm[:s.perRound]
	sort.Ints(sel)
	return sel
}
