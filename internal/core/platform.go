package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// CommStats accounts for the platform↔edge traffic of one training run.
type CommStats struct {
	// Rounds is the number of global aggregations.
	Rounds int
	// Messages is the total number of parameter-bearing messages.
	Messages int
	// Bytes is the payload volume, counting 8 bytes per parameter.
	Bytes int64
	// Dropped counts nodes removed by fault-tolerant rounds.
	Dropped int
}

// linkOps abstracts per-node I/O so the strict synchronous path and the
// fault-tolerant (deadline-bounded) path share the round loop.
type linkOps interface {
	send(i int, m transport.Msg) error
	recv(i int) (transport.Msg, error)
	// drop stops communicating with node i (fault-tolerant mode only).
	drop(i int)
	// finish releases any resources the ops layer created.
	finish()
}

// syncOps is the strict path: direct blocking I/O on the caller's links.
type syncOps struct{ links []transport.Link }

var _ linkOps = syncOps{}

func (s syncOps) send(i int, m transport.Msg) error { return s.links[i].Send(m) }
func (s syncOps) recv(i int) (transport.Msg, error) { return s.links[i].Recv() }
func (syncOps) drop(int)                            {}
func (syncOps) finish()                             {}

// asyncOps is the fault-tolerant path: every link gets goroutine pumps and
// every operation a deadline, so dead or slow nodes cannot stall a round.
type asyncOps struct {
	wrapped []*transport.Async
	timeout time.Duration
}

var _ linkOps = (*asyncOps)(nil)

func (a *asyncOps) send(i int, m transport.Msg) error {
	return a.wrapped[i].TrySend(m, a.timeout)
}

func (a *asyncOps) recv(i int) (transport.Msg, error) {
	return a.wrapped[i].TryRecv(a.timeout)
}

func (a *asyncOps) drop(i int) { _ = a.wrapped[i].Close() }

func (a *asyncOps) finish() {
	for _, w := range a.wrapped {
		_ = w.Close()
	}
}

// RunPlatform executes the platform side of Algorithms 1/2: broadcast the
// current global parameters to the (possibly sampled) nodes, gather their
// local updates, and aggregate with the data-size weights (Eq. 5),
// renormalized over the responders. links[i] must connect to the node
// carrying weight weights[i]; theta0 is not modified.
//
// With cfg.RoundTimeout > 0 the platform runs fault-tolerant rounds: it
// takes ownership of the links (they are closed when training ends), and a
// node that misses the deadline, disconnects, or reports an error is
// dropped and training continues while at least cfg.MinNodes remain.
func RunPlatform(links []transport.Link, weights []float64, theta0 tensor.Vec, cfg Config) (tensor.Vec, CommStats, error) {
	var stats CommStats
	c := cfg.normalized()
	if err := c.Validate(); err != nil {
		return nil, stats, err
	}
	if len(links) == 0 {
		return nil, stats, fmt.Errorf("core: no nodes to federate")
	}
	if len(links) != len(weights) {
		return nil, stats, fmt.Errorf("core: %d links but %d weights", len(links), len(weights))
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			return nil, stats, fmt.Errorf("core: negative aggregation weight %v", w)
		}
		wsum += w
	}
	if wsum <= 0 {
		return nil, stats, fmt.Errorf("core: aggregation weights sum to %v", wsum)
	}

	ft := c.RoundTimeout > 0
	minNodes := c.MinNodes
	if minNodes == 0 {
		minNodes = 1
	}
	var ops linkOps = syncOps{links: links}
	if ft {
		wrapped := make([]*transport.Async, len(links))
		for i, l := range links {
			wrapped[i] = transport.NewAsync(l, 2)
		}
		a := &asyncOps{wrapped: wrapped, timeout: c.RoundTimeout}
		defer a.finish()
		ops = a
	}

	alive := make([]bool, len(links))
	aliveCount := len(links)
	for i := range alive {
		alive[i] = true
	}
	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	markDead := func(i int, round int, cause error) {
		if alive[i] {
			alive[i] = false
			aliveCount--
			stats.Dropped++
			ops.drop(i)
			logf("core: dropped node %d in round %d (%d alive): %v", i, round, aliveCount, cause)
		}
	}

	theta := theta0.Clone()
	selector := newParticipationSelector(c, len(links))
	var (
		iter       int
		dispersion float64
	)
	t0 := c.T0
	for round := 1; iter < c.T; round++ {
		if c.T0Controller != nil && round > 1 {
			t0 = c.T0Controller(round, dispersion, t0)
			if t0 < 1 {
				t0 = 1
			}
		}
		if remaining := c.T - iter; t0 > remaining {
			t0 = remaining
		}

		selected := make([]int, 0, len(links))
		for _, i := range selector.pick() {
			if alive[i] {
				selected = append(selected, i)
			}
		}
		if len(selected) == 0 {
			// The sample missed every alive node; fall back to all of them.
			for i := range alive {
				if alive[i] {
					selected = append(selected, i)
				}
			}
		}

		roundNodes := selected[:0:len(selected)]
		for _, i := range selected {
			// Ownership of Msg.Params transfers to the receiver on Send
			// (see transport.Msg). theta is the platform's reusable
			// aggregation buffer — and in fault-tolerant mode the async
			// pump may deliver the message after this round's aggregation
			// has overwritten it — so every broadcast carries its own copy.
			err := ops.send(i, transport.Msg{
				Kind:       transport.KindParams,
				Round:      round,
				Params:     theta.Clone(),
				LocalSteps: t0,
			})
			if err != nil {
				if ft {
					markDead(i, round, err)
					continue
				}
				return nil, stats, fmt.Errorf("core: broadcast round %d to node %d: %w", round, i, err)
			}
			roundNodes = append(roundNodes, i)
			stats.Messages++
			stats.Bytes += int64(8 * len(theta))
		}

		updates := make([]tensor.Vec, 0, len(roundNodes))
		selWeights := make([]float64, 0, len(roundNodes))
		var selSum float64
		for _, i := range roundNodes {
			msg, err := ops.recv(i)
			if err == nil {
				switch {
				case msg.Kind == transport.KindError:
					err = fmt.Errorf("core: node %d failed in round %d: %s", msg.NodeID, round, msg.Err)
				case msg.Kind != transport.KindUpdate:
					err = fmt.Errorf("%w: expected update, got %v from node %d", ErrProtocol, msg.Kind, i)
				case msg.Round != round:
					err = fmt.Errorf("%w: node %d answered round %d during round %d", ErrProtocol, i, msg.Round, round)
				case len(msg.Params) != len(theta):
					err = fmt.Errorf("%w: node %d sent %d params, want %d", ErrProtocol, i, len(msg.Params), len(theta))
				}
			} else {
				err = fmt.Errorf("core: gather round %d from node %d: %w", round, i, err)
			}
			if err != nil {
				if ft {
					markDead(i, round, err)
					continue
				}
				return nil, stats, err
			}
			updates = append(updates, msg.Params)
			selWeights = append(selWeights, weights[i])
			selSum += weights[i]
			stats.Messages++
			stats.Bytes += int64(8 * len(msg.Params))
		}
		if len(updates) == 0 || selSum <= 0 {
			return nil, stats, fmt.Errorf("core: round %d produced no usable updates (%d nodes alive)", round, aliveCount)
		}
		if aliveCount < minNodes {
			return nil, stats, fmt.Errorf("core: only %d nodes alive, below MinNodes=%d", aliveCount, minNodes)
		}

		// Aggregate into the reused θ buffer (Eq. 5). The updates were
		// received from the nodes, which relinquished ownership on Send,
		// so none of them aliases theta.
		tensor.WeightedSumInto(theta, selWeights, updates)
		theta.ScaleInPlace(1 / selSum)
		// Measure the update dispersion around the new aggregate — the
		// similarity proxy fed back to the T0 controller.
		dispersion = 0
		for k, u := range updates {
			dispersion += selWeights[k] / selSum * u.Dist(theta)
		}
		iter += t0
		stats.Rounds++
		if c.OnRound != nil {
			c.OnRound(round, iter, theta)
		}
	}
	for i := range links {
		if !alive[i] {
			continue
		}
		if err := ops.send(i, transport.Msg{Kind: transport.KindDone}); err != nil {
			if ft {
				markDead(i, -1, err)
				continue
			}
			return nil, stats, fmt.Errorf("core: done to node %d: %w", i, err)
		}
	}
	return theta, stats, nil
}

// participationSelector picks the per-round node subset for client
// sampling. Full participation returns the fixed identity subset.
type participationSelector struct {
	n        int
	perRound int
	rand     *rng.Rand
	all      []int
}

func newParticipationSelector(c Config, n int) *participationSelector {
	s := &participationSelector{n: n, all: make([]int, n)}
	for i := range s.all {
		s.all[i] = i
	}
	if c.Participation <= 0 || c.Participation >= 1 {
		return s
	}
	s.perRound = int(math.Ceil(c.Participation * float64(n)))
	if s.perRound < 1 {
		s.perRound = 1
	}
	s.rand = rng.New(c.Seed ^ 0x5e1ec7)
	return s
}

// pick returns the node indices participating in the next round, sorted so
// that gathers and aggregation stay deterministic.
func (s *participationSelector) pick() []int {
	if s.rand == nil {
		return s.all
	}
	perm := s.rand.Perm(s.n)
	sel := perm[:s.perRound]
	sort.Ints(sel)
	return sel
}
