package core

import (
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/edgeai/fedml/internal/checkpoint"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// CommStats accounts for the platform↔edge traffic of one training run.
type CommStats struct {
	// Rounds is the number of global aggregations.
	Rounds int
	// Messages is the total number of parameter-bearing messages crossing
	// the platform's transport boundary. Downlink traffic — round
	// broadcasts and suspect re-probes — is billed per *attempted* send:
	// the transport offers no delivery acknowledgment, so a message lost
	// in flight (e.g. a chaos drop) still consumed the platform's uplink
	// and is counted. Uplink updates are billed per *delivered* message
	// only, including updates the sanitation guard later rejects; an
	// update lost in flight is observable only as a gather timeout and is
	// never counted.
	Messages int
	// Bytes is the payload volume of the messages counted above, at
	// 8 bytes per parameter.
	Bytes int64
	// Dropped counts nodes removed by fault-tolerant rounds. A node can be
	// dropped, rejoin, and be dropped again; each removal counts.
	Dropped int
	// Rejoined counts suspect nodes re-admitted after answering a re-probe.
	Rejoined int
	// Rejected counts updates discarded by the sanitation guard (non-finite
	// values or norm explosions past Config.GuardRadius).
	Rejected int
	// SkippedRounds counts fault-tolerant rounds that produced no usable
	// update and therefore aggregated nothing.
	SkippedRounds int
	// StaleApplied counts async-mode updates applied at positive staleness
	// (weighted by StalenessDecay^s). Always zero on the sync path.
	StaleApplied int
	// StaleDropped counts async-mode updates discarded because their
	// staleness exceeded MaxStaleness. Always zero on the sync path.
	StaleDropped int
	// BudgetFiltered counts sampled nodes excluded from a round because
	// their modeled energy or time cost exceeded the per-round budget
	// (Config.EnergyBudget / Config.RoundDeadline). A filtered node stays in
	// the federation and may participate again — e.g. once the sync mask
	// shrinks the per-round traffic below its budget.
	BudgetFiltered int
}

// add accumulates other into s field by field.
func (s *CommStats) add(other CommStats) {
	s.Rounds += other.Rounds
	s.Messages += other.Messages
	s.Bytes += other.Bytes
	s.Dropped += other.Dropped
	s.Rejoined += other.Rejoined
	s.Rejected += other.Rejected
	s.SkippedRounds += other.SkippedRounds
	s.StaleApplied += other.StaleApplied
	s.StaleDropped += other.StaleDropped
	s.BudgetFiltered += other.BudgetFiltered
}

// RunPlatform executes the platform side of Algorithms 1/2: broadcast the
// current global parameters to the (possibly sampled) nodes, gather their
// local updates, and aggregate with the data-size weights (Eq. 5),
// renormalized over the responders. links[i] must connect to the node
// carrying weight weights[i]; theta0 is not modified.
//
// RunPlatform is the one-shard degenerate case of the layered architecture:
// one linkSet (link layer) feeding one aggCore (aggregation core) covering
// the whole index space [0, n), steered by the policy layer. RunDirector
// composes the same layers into a two-tier topology; both produce
// bit-identical aggregates because every sum follows the aggregation core's
// fixed merge rule (see aggcore.go).
//
// With cfg.RoundTimeout > 0 the platform runs fault-tolerant rounds: it
// takes ownership of the links (they are closed when training ends), and a
// node that misses the deadline, disconnects, or reports an error is
// dropped and training continues while at least cfg.MinNodes remain.
// Dropped nodes are kept as suspects and re-probed with the current θ every
// round; one that answers rejoins the federation. Gathered updates pass the
// sanitation guard (see Config.GuardRadius) before aggregation, and with
// cfg.CheckpointPath set the platform snapshots its state after aggregation
// rounds and can resume from the snapshot after a crash (cfg.Resume).
func RunPlatform(links []transport.Link, weights []float64, theta0 tensor.Vec, cfg Config) (tensor.Vec, CommStats, error) {
	var stats CommStats
	c := cfg.normalized()
	if err := c.Validate(); err != nil {
		return nil, stats, err
	}
	if len(links) == 0 {
		return nil, stats, fmt.Errorf("core: no nodes to federate")
	}
	if len(links) != len(weights) {
		return nil, stats, fmt.Errorf("core: %d links but %d weights", len(links), len(weights))
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			return nil, stats, fmt.Errorf("core: negative aggregation weight %v", w)
		}
		wsum += w
	}
	if wsum <= 0 {
		return nil, stats, fmt.Errorf("core: aggregation weights sum to %v", wsum)
	}

	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ls := newLinkSet(c, links, 0)
	defer ls.finish()

	theta := theta0.Clone()
	if c.SyncMask != nil {
		if err := c.SyncMask.validateDim(len(theta)); err != nil {
			return nil, stats, err
		}
	}
	bp, err := newBudgetPolicy(c, weights, 0, len(theta))
	if err != nil {
		return nil, stats, err
	}
	agg := newAggCore(0, len(links), len(theta))
	selector := newParticipationSelector(c, len(links), 0)
	pi := selector.inclusionProb()
	// The unbiased correction divides each sampled weight by its inclusion
	// probability and normalizes by the full-participation weight sum, so
	// the aggregate is unbiased over the sampling distribution instead of
	// renormalized over whoever responded. It engages only when sampling is
	// active; under full participation both estimators coincide and the
	// responder renormalization keeps its fault-tolerance semantics. The
	// denominator is folded with the merge rule so flat and sharded runs
	// stay bit-identical.
	useHT := c.UnbiasedParticipation && c.samplingActive()
	var htDenom float64
	if useHT {
		htDenom = foldScalars(0, len(links), func(i int) float64 { return weights[i] })
	}

	// prevTheta is the pre-aggregation θ snapshot used to report the update
	// norm; it is only allocated when an observer is attached, keeping the
	// nil path allocation-free.
	var prevTheta tensor.Vec
	if ls.obs != nil {
		prevTheta = make(tensor.Vec, len(theta))
	}
	// frozenRef snapshots the pre-aggregation θ when the sync mask is frozen:
	// the weighted average of bit-identical frozen coordinates is not
	// bit-identical in floating point, so they are restored after ScaleInto.
	var frozenRef tensor.Vec
	if c.SyncMask != nil {
		frozenRef = make(tensor.Vec, len(theta))
	}

	var (
		iter       int
		dispersion float64
	)
	t0 := c.T0
	startRound := 1
	ckEvery := c.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 1
	}
	if c.CheckpointPath != "" && c.Resume {
		st, err := checkpoint.LoadRunState(c.CheckpointPath)
		switch {
		case err == nil:
			if len(st.Theta) != len(theta) {
				return nil, stats, fmt.Errorf("core: resume: snapshot has %d params, model needs %d", len(st.Theta), len(theta))
			}
			theta.CopyFrom(tensor.Vec(st.Theta))
			iter = st.Iter
			t0 = st.T0
			dispersion = st.Dispersion
			ls.stats = statsFromSnapshot(st)
			startRound = st.Round + 1
			logf("core: resumed from %s: round %d done, iter %d", c.CheckpointPath, st.Round, st.Iter)
		case errors.Is(err, os.ErrNotExist):
			// No snapshot yet: start fresh, so supervisors can always
			// restart the platform with Resume set.
		default:
			return nil, stats, err
		}
	}

	consecSkipped := 0
	for round := startRound; iter < c.T; round++ {
		t0 = nextT0(c, round, dispersion, t0, c.T-iter)
		var roundT0 time.Time
		if ls.obs != nil {
			roundT0 = time.Now()
			ls.obs.Observe(obs.Event{Type: obs.TypeRoundStart, Round: round, Iter: iter, T0: t0, Alive: ls.aliveCnt})
		}

		selected := selector.selectAlive(round, ls.alive)
		if bp != nil {
			selected = bp.filter(round, t0, selected, func(i int, joules float64) {
				ls.markBudgetFiltered(i, round, joules)
			})
		}
		agg.reset()
		if err := ls.gatherRound(round, t0, theta, selected, func(i int, u tensor.Vec) {
			w := weights[i]
			if useHT {
				w /= pi
			}
			agg.accept(i, u, w)
		}); err != nil {
			return nil, ls.stats, err
		}

		sum, selSum, count := agg.reduce()
		denom := selSum
		if useHT {
			denom = htDenom
		}
		if count == 0 || denom <= 0 {
			if ls.ft {
				ls.stats.SkippedRounds++
				consecSkipped++
				if ls.obs != nil {
					ls.obs.Observe(obs.Event{Type: obs.TypeRoundSkip, Round: round, Iter: iter, T0: t0, Alive: ls.aliveCnt, Dur: time.Since(roundT0)})
				}
				logf("core: round %d produced no usable updates (%d alive); skipping aggregation", round, ls.aliveCnt)
				if consecSkipped > maxConsecutiveSkips {
					return nil, ls.stats, fmt.Errorf("core: %d consecutive rounds without usable updates (%d nodes alive)", consecSkipped, ls.aliveCnt)
				}
				continue
			}
			return nil, ls.stats, fmt.Errorf("core: round %d produced no usable updates (%d nodes alive)", round, ls.aliveCnt)
		}
		consecSkipped = 0

		// Aggregate into the reused θ buffer (Eq. 5). The updates were
		// received from the nodes, which relinquished ownership on Send,
		// so none of them aliases theta or the core's reduction buffer.
		if ls.obs != nil {
			prevTheta.CopyFrom(theta)
		}
		frozen := c.SyncMask.frozenAt(round)
		if frozen {
			frozenRef.CopyFrom(theta)
		}
		sum.ScaleInto(1/denom, theta)
		if frozen {
			restoreFrozen(theta, frozenRef, c.SyncMask.Ranges)
		}
		// Measure the update dispersion around the new aggregate — the
		// similarity proxy fed back to the T0 controller.
		dispersion = agg.dispersion(theta, denom)
		iter += t0
		ls.stats.Rounds++
		if ls.obs != nil {
			ls.obs.Observe(obs.Event{
				Type: obs.TypeRoundEnd, Round: round, Iter: iter, T0: t0,
				Alive: ls.aliveCnt, Dur: time.Since(roundT0),
				Value: theta.Dist(prevTheta), Dispersion: dispersion,
			})
		}
		if c.OnRound != nil {
			c.OnRound(round, iter, theta)
		}
		if c.CheckpointPath != "" && (ls.stats.Rounds%ckEvery == 0 || iter >= c.T) {
			if err := saveSnapshot(c.CheckpointPath, round, iter, t0, dispersion, theta, ls.stats); err != nil {
				return nil, ls.stats, err
			}
		}
	}

	if err := ls.shutdown(); err != nil {
		return nil, ls.stats, err
	}
	return theta, ls.stats, nil
}
