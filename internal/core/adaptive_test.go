package core

import (
	"testing"

	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func TestDispersionControllerPolicy(t *testing.T) {
	ctrl := DispersionController(1, 20, 1.0)

	if got := ctrl(2, 2.0, 10); got != 5 {
		t.Errorf("high dispersion: T0 = %d, want 5 (halved)", got)
	}
	if got := ctrl(2, 0.1, 10); got != 15 {
		t.Errorf("low dispersion: T0 = %d, want 15 (grown)", got)
	}
	if got := ctrl(2, 0.75, 10); got != 10 {
		t.Errorf("in-band dispersion: T0 = %d, want unchanged 10", got)
	}
	if got := ctrl(2, 100, 1); got != 1 {
		t.Errorf("min clamp: T0 = %d, want 1", got)
	}
	if got := ctrl(2, 0, 20); got != 20 {
		t.Errorf("max clamp: T0 = %d, want 20", got)
	}
}

func TestAdaptiveT0TrainingRespectsIterationBudget(t *testing.T) {
	fed := tinyFederation(t, 0.5, 0.5)
	m := tinyModel(fed)

	var iters []int
	var rounds []int
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 60, T0: 10, Seed: 2,
		T0Controller: DispersionController(1, 20, 0.05),
		OnRound: func(round, iter int, theta tensor.Vec) {
			rounds = append(rounds, round)
			iters = append(iters, iter)
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("no rounds ran")
	}
	if final := iters[len(iters)-1]; final != 60 {
		t.Errorf("total local iterations = %d, want exactly the budget 60", final)
	}
	for i := 1; i < len(iters); i++ {
		if iters[i] <= iters[i-1] {
			t.Fatalf("iteration counter not increasing: %v", iters)
		}
		if rounds[i] != rounds[i-1]+1 {
			t.Fatalf("round counter skipped: %v", rounds)
		}
	}
	if !res.Theta.IsFinite() {
		t.Error("adaptive training produced non-finite θ")
	}
}

func TestAdaptiveT0ReactsToDispersion(t *testing.T) {
	// A controller that always demands more steps must produce fewer
	// rounds than one that always demands fewer, at the same budget.
	fed := tinyFederation(t, 0.5, 0.5)
	m := tinyModel(fed)
	countRounds := func(ctrl Controller) int {
		n := 0
		cfg := Config{
			Alpha: 0.01, Beta: 0.01, T: 60, T0: 5, Seed: 2,
			T0Controller: ctrl,
			OnRound:      func(round, iter int, theta tensor.Vec) { n = round },
		}
		if _, err := Train(m, fed, nil, cfg); err != nil {
			t.Fatal(err)
		}
		return n
	}
	greedy := countRounds(func(_ int, _ float64, prev int) int { return prev * 2 })
	chatty := countRounds(func(_ int, _ float64, _ int) int { return 1 })
	if greedy >= chatty {
		t.Errorf("growing T0 did not reduce round count: %d vs %d", greedy, chatty)
	}
}

func TestAdaptiveT0StillLearns(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(3))
	before := eval.GlobalMetaObjective(m, fed, 0.01, theta0)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 3,
		T0Controller: DispersionController(1, 25, 0.1),
	}
	res, err := Train(m, fed, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := eval.GlobalMetaObjective(m, fed, 0.01, res.Theta)
	if after >= before {
		t.Errorf("adaptive-T0 training did not reduce G(θ): %v -> %v", before, after)
	}
}

func TestControllerOutputClampedToBudgetAndOne(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	// Controller returns absurd values; platform must clamp to [1, budget].
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 20, T0: 5, Seed: 1,
		T0Controller: func(round int, _ float64, _ int) int {
			if round%2 == 0 {
				return -100
			}
			return 10_000
		},
	}
	var iters []int
	cfg.OnRound = func(_, iter int, _ tensor.Vec) { iters = append(iters, iter) }
	if _, err := Train(m, fed, nil, cfg); err != nil {
		t.Fatal(err)
	}
	if iters[len(iters)-1] != 20 {
		t.Errorf("budget violated: %v", iters)
	}
}
