package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// tinyFederation builds a small synthetic federation for fast tests.
func tinyFederation(t *testing.T, alpha, beta float64) *data.Federation {
	t.Helper()
	cfg := data.DefaultSyntheticConfig(alpha, beta)
	cfg.Nodes = 10
	cfg.Dim = 10
	cfg.Classes = 4
	cfg.MeanSamples = 20
	cfg.Seed = 11
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func tinyModel(fed *data.Federation) *nn.SoftmaxRegression {
	return &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Alpha: 0, Beta: 0.1, T: 10, T0: 5},
		{Alpha: 0.1, Beta: 0, T: 10, T0: 5},
		{Alpha: 0.1, Beta: 0.1, T: 0, T0: 5},
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 0},
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 3}, // not a multiple
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5, GradMode: meta.GradMode(9)},
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5, Robust: &RobustConfig{Lambda: -1, Nu: 1, Ta: 1, N0: 1}},
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5, Robust: &RobustConfig{Lambda: 1, Nu: 0, Ta: 1, N0: 1}},
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5, Robust: &RobustConfig{Lambda: 1, Nu: 1, Ta: 0, N0: 1}},
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5, Robust: &RobustConfig{Lambda: 1, Nu: 1, Ta: 1, N0: 0}},
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5, Robust: &RobustConfig{Lambda: 1, Nu: 1, Ta: 1, N0: 1, R: -1}},
		{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5, Robust: &RobustConfig{Lambda: 1, Nu: 1, Ta: 1, N0: 1, ClampMin: 1, ClampMax: 0}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTrainReducesGlobalMetaObjective(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 1}

	theta0 := m.InitParams(rng.New(1))
	before := eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta0)
	res, err := Train(m, fed, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := eval.GlobalMetaObjective(m, fed, cfg.Alpha, res.Theta)
	if after >= before {
		t.Errorf("FedML did not reduce G(θ): %v -> %v", before, after)
	}
	if !res.Theta.IsFinite() {
		t.Error("final θ not finite")
	}
}

func TestTrainDeterministicAcrossRuns(t *testing.T) {
	fed := tinyFederation(t, 0.5, 0.5)
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 7}
	a, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta.Dist(b.Theta) != 0 {
		t.Errorf("parallel runs disagree by %v; training is not deterministic", a.Theta.Dist(b.Theta))
	}
}

func TestTrainOnRoundCallbackAndCommStats(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	var rounds []int
	var iters []int
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 30, T0: 10, Seed: 1,
		OnRound: func(round, iter int, theta tensor.Vec) {
			rounds = append(rounds, round)
			iters = append(iters, iter)
			if !theta.IsFinite() {
				t.Error("non-finite θ in callback")
			}
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 || rounds[2] != 3 || iters[2] != 30 {
		t.Errorf("callback rounds=%v iters=%v", rounds, iters)
	}
	nNodes := len(fed.Sources)
	if res.Comm.Rounds != 3 {
		t.Errorf("comm rounds = %d", res.Comm.Rounds)
	}
	if want := 2 * 3 * nNodes; res.Comm.Messages != want {
		t.Errorf("messages = %d, want %d", res.Comm.Messages, want)
	}
	if want := int64(2*3*nNodes) * int64(8*m.NumParams()); res.Comm.Bytes != want {
		t.Errorf("bytes = %d, want %d", res.Comm.Bytes, want)
	}
}

func TestTrainFirstOrderModeRuns(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(3))
	so, err := Train(m, fed, theta0, Config{Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := Train(m, fed, theta0, Config{Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1, GradMode: meta.FirstOrder})
	if err != nil {
		t.Fatal(err)
	}
	if so.Theta.Dist(fo.Theta) == 0 {
		t.Error("first-order mode produced identical parameters to second-order")
	}
}

func TestTrainInputValidation(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	okCfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5}

	if _, err := Train(nil, fed, nil, okCfg); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Train(m, nil, nil, okCfg); err == nil {
		t.Error("nil federation accepted")
	}
	if _, err := Train(m, &data.Federation{}, nil, okCfg); err == nil {
		t.Error("empty federation accepted")
	}
	if _, err := Train(m, fed, tensor.NewVec(3), okCfg); err == nil {
		t.Error("mismatched theta0 accepted")
	}
	if _, err := Train(m, fed, nil, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTrainDivergenceSurfacesNodeError(t *testing.T) {
	fed := tinyFederation(t, 0.5, 0.5)
	m := tinyModel(fed)
	// An absurd meta learning rate must blow the parameters up; the node
	// detects non-finite values and the error must propagate to the caller.
	cfg := Config{Alpha: 0.01, Beta: 1e200, T: 20, T0: 10, Seed: 1}
	_, err := Train(m, fed, nil, cfg)
	if err == nil {
		t.Fatal("divergent run reported success")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Errorf("error does not carry root cause: %v", err)
	}
}

func TestRobustTrainRunsAndBuildsAdversarialData(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 1,
		Robust: &RobustConfig{
			Lambda: 1, Nu: 0.5, Ta: 3, N0: 2, R: 2,
		},
	}
	theta0 := m.InitParams(rng.New(5))
	before := eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta0)
	res, err := Train(m, fed, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := eval.GlobalMetaObjective(m, fed, cfg.Alpha, res.Theta)
	if after >= before {
		t.Errorf("Robust FedML did not reduce G(θ): %v -> %v", before, after)
	}

	// Robust training must differ from plain training (the adversarial set
	// kicks in at iteration N0*T0 = 20 < T).
	plain, err := Train(m, fed, theta0, Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Theta.Dist(res.Theta) == 0 {
		t.Error("robust training produced identical parameters to plain FedML")
	}
}

func TestRobustNodeStateAdversarialSchedule(t *testing.T) {
	// Unit-test the node-side schedule: with N0=1, R=2, T0=2, the node must
	// generate |D_test| adversarial samples at iterations 2 and 4 and stop.
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	nd := fed.Sources[0]
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 8, T0: 2, Seed: 1,
		Robust: &RobustConfig{Lambda: 1, Nu: 0.5, Ta: 2, N0: 1, R: 2},
	}
	n := newNodeState(cfg.normalized(), m, nd, 0)
	theta := m.InitParams(rng.New(2))
	for round := 0; round < 4; round++ {
		var err error
		theta, err = n.localUpdates(theta, 2, round+1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if want := 2 * len(nd.Test); len(n.adv) != want {
		t.Errorf("adversarial set size = %d, want %d (R=2 generations)", len(n.adv), want)
	}
	if n.advRound != 2 {
		t.Errorf("advRound = %d, want 2", n.advRound)
	}
}

func TestRunPlatformValidation(t *testing.T) {
	okCfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5}
	theta := tensor.NewVec(4)
	if _, _, err := RunPlatform(nil, nil, theta, okCfg); err == nil {
		t.Error("no links accepted")
	}
	a, _ := transport.Pair()
	if _, _, err := RunPlatform([]transport.Link{a}, []float64{0.5, 0.5}, theta, okCfg); err == nil {
		t.Error("weight/link count mismatch accepted")
	}
	if _, _, err := RunPlatform([]transport.Link{a}, []float64{-1}, theta, okCfg); err == nil {
		t.Error("negative weight accepted")
	}
	if _, _, err := RunPlatform([]transport.Link{a}, []float64{0}, theta, okCfg); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestPlatformRejectsProtocolViolations(t *testing.T) {
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 5, T0: 5}
	theta := tensor.NewVec(2)

	run := func(reply func(transport.Link, transport.Msg)) error {
		p, n := transport.Pair()
		done := make(chan struct{})
		go func() {
			defer close(done)
			msg, err := n.Recv()
			if err != nil {
				return
			}
			reply(n, msg)
		}()
		_, _, err := RunPlatform([]transport.Link{p}, []float64{1}, theta, cfg)
		p.Close()
		<-done
		n.Close()
		return err
	}

	err := run(func(l transport.Link, m transport.Msg) {
		_ = l.Send(transport.Msg{Kind: transport.KindParams, Round: m.Round, Params: m.Params})
	})
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("wrong-kind reply: err = %v, want ErrProtocol", err)
	}

	err = run(func(l transport.Link, m transport.Msg) {
		_ = l.Send(transport.Msg{Kind: transport.KindUpdate, Round: m.Round + 7, Params: m.Params})
	})
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("wrong-round reply: err = %v, want ErrProtocol", err)
	}

	err = run(func(l transport.Link, m transport.Msg) {
		_ = l.Send(transport.Msg{Kind: transport.KindUpdate, Round: m.Round, Params: []float64{1}})
	})
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("wrong-size reply: err = %v, want ErrProtocol", err)
	}

	err = run(func(l transport.Link, m transport.Msg) {
		_ = l.Send(transport.Msg{Kind: transport.KindError, Round: m.Round, Err: "injected failure"})
	})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("node error not propagated: %v", err)
	}
}

func TestNodeRejectsBadInputs(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	okCfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5}
	a, _ := transport.Pair()

	if err := RunNode(a, NodeConfig{ID: 0, Model: nil, Data: fed.Sources[0], Shared: okCfg}); err == nil {
		t.Error("nil model accepted")
	}
	if err := RunNode(a, NodeConfig{ID: 0, Model: m, Data: nil, Shared: okCfg}); err == nil {
		t.Error("nil data accepted")
	}
	if err := RunNode(a, NodeConfig{ID: 0, Model: m, Data: fed.Sources[0], Shared: Config{}}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestNodeReportsParamSizeMismatch(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 5, T0: 5}
	p, n := transport.Pair()
	errc := make(chan error, 1)
	go func() {
		errc <- RunNode(n, NodeConfig{ID: 3, Model: m, Data: fed.Sources[0], Shared: cfg})
	}()
	if err := p.Send(transport.Msg{Kind: transport.KindParams, Round: 1, Params: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	msg, err := p.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != transport.KindError || msg.NodeID != 3 {
		t.Errorf("expected KindError from node 3, got %+v", msg)
	}
	if err := <-errc; err == nil {
		t.Error("node returned nil error after failure")
	}
	p.Close()
	n.Close()
}

func TestEndToEndOverTCP(t *testing.T) {
	// The same Algorithm 1 code must run over real TCP links.
	fed := tinyFederation(t, 0, 0)
	// Use a subset of nodes to keep the socket count small.
	fed.Sources = fed.Sources[:4]
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1}

	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	nodeErrs := make(chan error, len(fed.Sources))
	for i, nd := range fed.Sources {
		go func(i int, nd *data.NodeDataset) {
			link, err := transport.Dial(ln.Addr().String())
			if err != nil {
				nodeErrs <- err
				return
			}
			defer link.Close()
			nodeErrs <- RunNode(link, NodeConfig{ID: i, Model: m, Data: nd, Shared: cfg})
		}(i, nd)
	}

	links, err := transport.Accept(ln, len(fed.Sources))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, l := range links {
			l.Close()
		}
	}()

	// TCP accept order is arbitrary, so aggregate with uniform weights.
	weights := make([]float64, len(fed.Sources))
	for i := range weights {
		weights[i] = 1
	}
	theta0 := m.InitParams(rng.New(1))
	theta, stats, err := RunPlatform(links, weights, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for range fed.Sources {
		if err := <-nodeErrs; err != nil {
			t.Fatal(err)
		}
	}
	if !theta.IsFinite() {
		t.Error("TCP-trained θ not finite")
	}
	if stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", stats.Rounds)
	}
	before := eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta0)
	after := eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta)
	if after >= before {
		t.Errorf("TCP run did not reduce G(θ): %v -> %v", before, after)
	}
}

func TestStochasticMinibatchTraining(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(8))
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 8, BatchSize: 4}
	before := eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta0)
	res, err := Train(m, fed, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := eval.GlobalMetaObjective(m, fed, cfg.Alpha, res.Theta)
	if after >= before {
		t.Errorf("stochastic training did not reduce G(θ): %v -> %v", before, after)
	}

	// Determinism: node minibatch streams derive from the seed.
	res2, err := Train(m, fed, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta.Dist(res2.Theta) != 0 {
		t.Error("minibatch training is not deterministic")
	}

	// Different from full-batch training.
	full, err := Train(m, fed, theta0, Config{Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta.Dist(full.Theta) == 0 {
		t.Error("BatchSize had no effect")
	}
}

func TestBatchSizeValidation(t *testing.T) {
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5, BatchSize: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative BatchSize accepted")
	}
}
