package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// runFTPlatform wires n healthy nodes plus optional misbehaving links and
// runs a fault-tolerant platform over them.
func runFTPlatform(t *testing.T, fed *data.Federation, cfg Config, silent map[int]bool) (tensor.Vec, CommStats, error) {
	t.Helper()
	m := tinyModel(fed)
	n := len(fed.Sources)
	platformLinks := make([]transport.Link, n)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		p, nl := transport.Pair()
		platformLinks[i] = p
		if silent[i] {
			// A dead node: accepts the connection but never answers.
			go func(l transport.Link) {
				<-done
				l.Close()
			}(nl)
			continue
		}
		go func(i int, l transport.Link) {
			_ = RunNode(l, NodeConfig{ID: i, Model: m, Data: fed.Sources[i], Shared: cfg})
			l.Close()
		}(i, nl)
	}
	weights := fed.Weights()
	theta0 := m.InitParams(rng.New(cfg.Seed))
	theta, stats, err := RunPlatform(platformLinks, weights, theta0, cfg)
	close(done)
	return theta, stats, err
}

func TestFaultTolerantDropsSilentNode(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 30, T0: 10, Seed: 1,
		RoundTimeout: 300 * time.Millisecond,
	}
	theta, stats, err := runFTPlatform(t, fed, cfg, map[int]bool{2: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", stats.Dropped)
	}
	if stats.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", stats.Rounds)
	}
	if !theta.IsFinite() {
		t.Error("θ not finite after fault-tolerant run")
	}
	// The run must still learn.
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(cfg.Seed))
	if eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta) >= eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta0) {
		t.Error("fault-tolerant run did not reduce the objective")
	}
}

func TestFaultTolerantDropsErroringNode(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:4]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1,
		RoundTimeout: 500 * time.Millisecond,
	}

	n := len(fed.Sources)
	platformLinks := make([]transport.Link, n)
	for i := 0; i < n; i++ {
		p, nl := transport.Pair()
		platformLinks[i] = p
		if i == 1 {
			// A node that reports an application-level failure.
			go func(l transport.Link) {
				defer l.Close()
				msg, err := l.Recv()
				if err != nil {
					return
				}
				_ = l.Send(transport.Msg{Kind: transport.KindError, Round: msg.Round, NodeID: 1, Err: "sensor offline"})
			}(nl)
			continue
		}
		go func(i int, l transport.Link) {
			_ = RunNode(l, NodeConfig{ID: i, Model: m, Data: fed.Sources[i], Shared: cfg})
			l.Close()
		}(i, nl)
	}
	theta0 := m.InitParams(rng.New(1))
	theta, stats, err := RunPlatform(platformLinks, fed.Weights(), theta0, cfg)
	if err != nil {
		t.Fatalf("fault-tolerant run aborted on a single node error: %v", err)
	}
	if stats.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", stats.Dropped)
	}
	if !theta.IsFinite() {
		t.Error("θ not finite")
	}
}

func TestFaultTolerantAbortsBelowMinNodes(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:3]
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 30, T0: 10, Seed: 1,
		RoundTimeout: 200 * time.Millisecond,
		MinNodes:     3,
	}
	_, _, err := runFTPlatform(t, fed, cfg, map[int]bool{0: true})
	if err == nil {
		t.Fatal("run continued below MinNodes")
	}
	if !strings.Contains(err.Error(), "MinNodes") && !strings.Contains(err.Error(), "usable updates") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFaultTolerantAbortsWhenAllNodesDead(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:2]
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1,
		RoundTimeout: 150 * time.Millisecond,
	}
	_, _, err := runFTPlatform(t, fed, cfg, map[int]bool{0: true, 1: true})
	if err == nil {
		t.Fatal("run with zero healthy nodes succeeded")
	}
}

func TestStrictModeStillAbortsOnFailure(t *testing.T) {
	// Without RoundTimeout a node error must abort (existing semantics).
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:2]
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 10, Seed: 1}

	p0, n0 := transport.Pair()
	p1, n1 := transport.Pair()
	go func() {
		_ = RunNode(n0, NodeConfig{ID: 0, Model: m, Data: fed.Sources[0], Shared: cfg})
		n0.Close()
	}()
	go func() {
		defer n1.Close()
		msg, err := n1.Recv()
		if err != nil {
			return
		}
		_ = n1.Send(transport.Msg{Kind: transport.KindError, Round: msg.Round, NodeID: 1, Err: "boom"})
	}()
	_, _, err := RunPlatform([]transport.Link{p0, p1}, []float64{0.5, 0.5}, m.InitParams(rng.New(1)), cfg)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("strict mode did not abort with the node error: %v", err)
	}
	p0.Close()
	p1.Close()
}

func TestTrainWithRoundTimeoutHealthyFederation(t *testing.T) {
	// With all nodes healthy, fault-tolerant Train must behave like the
	// strict path (modulo shutdown races, which it must tolerate).
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 30, T0: 10, Seed: 2,
		RoundTimeout: 2 * time.Second,
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped != 0 {
		t.Errorf("healthy federation dropped %d nodes", res.Comm.Dropped)
	}
	strict, err := Train(m, fed, nil, Config{Alpha: 0.01, Beta: 0.01, T: 30, T0: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta.Dist(strict.Theta) != 0 {
		t.Error("fault-tolerant and strict runs disagree on a healthy federation")
	}
}

func TestLogfReceivesDropEvents(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:4]
	var logged []string
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1,
		RoundTimeout: 250 * time.Millisecond,
		Logf: func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
	}
	_, stats, err := runFTPlatform(t, fed, cfg, map[int]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 1 {
		t.Fatalf("dropped = %d", stats.Dropped)
	}
	found := false
	for _, line := range logged {
		if strings.Contains(line, "dropped node 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("drop event not logged: %v", logged)
	}
}
