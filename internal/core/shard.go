package core

import (
	"fmt"
	"time"

	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// RunShardAggregator executes one leaf of the two-tier topology: it owns
// the node links of the contiguous global index range r (links[k] connects
// the node with global index r.Lo+k and weight weights[k]), takes round
// dispatches from the director over up, runs the node-facing round through
// the same link layer and aggregation core as the flat platform, and sends
// the shard-weighted partial sum + sample count back upstream as a
// KindPartial message.
//
// The shard applies the full per-node machinery locally — client sampling
// (from its own (Seed, shard)-salted stream), fault-tolerant drop/probe/
// rejoin when cfg.RoundTimeout > 0, codec chains, the sanitation guard —
// and reports its cumulative CommStats inside every partial, which is what
// lets the director's totals equal the sum of the shard totals exactly.
// Checkpointing and the T0 schedule belong to the director: cfg's
// checkpoint fields are ignored here and the per-round step count arrives
// in the dispatch message.
//
// The function returns when the director sends KindDone (after a clean
// shutdown sweep of the shard's nodes) or on a fatal error, which is also
// reported upstream as KindError so the director can abort the run.
func RunShardAggregator(up transport.Link, links []transport.Link, weights []float64, r ShardRange, cfg Config) error {
	c := cfg.normalized()
	if err := c.Validate(); err != nil {
		return err
	}
	if r.Lo < 0 || r.Hi <= r.Lo {
		return fmt.Errorf("core: shard range [%d,%d) is empty", r.Lo, r.Hi)
	}
	if len(links) != r.Hi-r.Lo {
		return fmt.Errorf("core: shard [%d,%d) needs %d links, got %d", r.Lo, r.Hi, r.Hi-r.Lo, len(links))
	}
	if len(links) != len(weights) {
		return fmt.Errorf("core: %d links but %d weights", len(links), len(weights))
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("core: negative aggregation weight %v", w)
		}
		wsum += w
	}
	if wsum <= 0 {
		return fmt.Errorf("core: aggregation weights sum to %v", wsum)
	}

	ls := newLinkSet(c, links, r.Lo)
	defer ls.finish()
	selector := newParticipationSelector(c, len(links), uint64(r.Lo))
	pi := selector.inclusionProb()
	correct := c.UnbiasedParticipation && c.samplingActive()
	// The shard's slice of the unbiased estimator's denominator, folded
	// with the merge rule so the director's cross-shard fold reproduces
	// the flat platform's scalar bit for bit.
	fullW := foldScalars(r.Lo, r.Hi, func(gi int) float64 { return weights[gi-r.Lo] })

	// The aggregation core is sized on the first dispatch, when the model
	// dimension becomes known.
	var (
		agg       *aggCore
		bp        *budgetPolicy
		shardMean tensor.Vec
		iter      int
		lastRound int
	)

	fail := func(round int, err error) error {
		_ = up.Send(transport.Msg{
			Kind:   transport.KindError,
			Round:  round,
			NodeID: r.Lo,
			Err:    err.Error(),
		})
		return err
	}

	for {
		msg, err := up.Recv()
		if err != nil {
			return fmt.Errorf("core: shard [%d,%d) recv: %w", r.Lo, r.Hi, err)
		}
		switch msg.Kind {
		case transport.KindDone:
			return ls.shutdown()
		case transport.KindParams:
			// Fall through to the round body below.
		default:
			return fmt.Errorf("%w: shard [%d,%d) got unexpected %v", ErrProtocol, r.Lo, r.Hi, msg.Kind)
		}

		round := msg.Round
		if round <= lastRound {
			return fmt.Errorf("%w: shard [%d,%d) dispatched round %d after round %d", ErrProtocol, r.Lo, r.Hi, round, lastRound)
		}
		lastRound = round
		theta := tensor.Vec(msg.Params)
		if agg == nil {
			if c.SyncMask != nil {
				if err := c.SyncMask.validateDim(len(theta)); err != nil {
					return fail(round, err)
				}
			}
			var berr error
			if bp, berr = newBudgetPolicy(c, weights, r.Lo, len(theta)); berr != nil {
				return fail(round, berr)
			}
			agg = newAggCore(r.Lo, r.Hi, len(theta))
			shardMean = tensor.NewVec(len(theta))
		}
		if len(theta) != agg.dim {
			return fail(round, fmt.Errorf("%w: shard [%d,%d) dispatched %d params, want %d", ErrProtocol, r.Lo, r.Hi, len(theta), agg.dim))
		}
		t0 := msg.LocalSteps
		if t0 <= 0 {
			t0 = c.T0
		}
		var roundT0 time.Time
		if ls.obs != nil {
			roundT0 = time.Now()
			ls.obs.Observe(obs.Event{Type: obs.TypeRoundStart, Round: round, Iter: iter, T0: t0, Alive: ls.aliveCnt})
		}

		selected := selector.selectAlive(round, ls.alive)
		if bp != nil {
			selected = bp.filter(round, t0, selected, func(i int, joules float64) {
				ls.markBudgetFiltered(i, round, joules)
			})
		}
		agg.reset()
		if err := ls.gatherRound(round, t0, theta, selected, func(i int, u tensor.Vec) {
			w := weights[i]
			if correct {
				w /= pi
			}
			agg.accept(r.Lo+i, u, w)
		}); err != nil {
			return fail(round, err)
		}

		sum, selSum, count := agg.reduce()
		iter += t0
		// The within-shard dispersion (around the shard-local aggregate) is
		// the shard's half of the hierarchical similarity proxy; the
		// director adds the between-shard term.
		var dispersion float64
		if count > 0 && selSum > 0 {
			sum.ScaleInto(1/selSum, shardMean)
			dispersion = agg.dispersion(shardMean, selSum)
		}
		if ls.obs != nil {
			if count == 0 {
				ls.stats.SkippedRounds++
				ls.obs.Observe(obs.Event{Type: obs.TypeRoundSkip, Round: round, Iter: iter, T0: t0, Alive: ls.aliveCnt, Dur: time.Since(roundT0)})
			} else {
				ls.stats.Rounds++
				ls.obs.Observe(obs.Event{
					Type: obs.TypeRoundEnd, Round: round, Iter: iter, T0: t0,
					Alive: ls.aliveCnt, Dur: time.Since(roundT0), Dispersion: dispersion,
				})
			}
		} else {
			if count == 0 {
				ls.stats.SkippedRounds++
			} else {
				ls.stats.Rounds++
			}
		}

		partial := transport.Msg{
			Kind:   transport.KindPartial,
			Round:  round,
			NodeID: r.Lo,
			Partial: &transport.Partial{
				Weight:     selSum,
				FullWeight: fullW,
				Count:      count,
				Dispersion: dispersion,
				Alive:      ls.aliveCnt,
				Stats:      shardStatsOf(ls.stats),
			},
		}
		if count > 0 {
			// sum is the core's reused reduction buffer; ownership of
			// Msg.Params transfers on Send, so a copy crosses the boundary.
			partial.Params = sum.Clone()
		}
		if err := up.Send(partial); err != nil {
			return fmt.Errorf("core: shard [%d,%d) send partial for round %d: %w", r.Lo, r.Hi, round, err)
		}
	}
}

// shardStatsOf converts the shard's accounting to its wire form.
func shardStatsOf(s CommStats) transport.ShardStats {
	return transport.ShardStats{
		Rounds:         s.Rounds,
		Messages:       s.Messages,
		Bytes:          s.Bytes,
		Dropped:        s.Dropped,
		Rejoined:       s.Rejoined,
		Rejected:       s.Rejected,
		SkippedRounds:  s.SkippedRounds,
		StaleApplied:   s.StaleApplied,
		StaleDropped:   s.StaleDropped,
		BudgetFiltered: s.BudgetFiltered,
	}
}

// statsOfShard converts a shard's wire-form accounting back to CommStats.
func statsOfShard(s transport.ShardStats) CommStats {
	return CommStats{
		Rounds:         s.Rounds,
		Messages:       s.Messages,
		Bytes:          s.Bytes,
		Dropped:        s.Dropped,
		Rejoined:       s.Rejoined,
		Rejected:       s.Rejected,
		SkippedRounds:  s.SkippedRounds,
		StaleApplied:   s.StaleApplied,
		StaleDropped:   s.StaleDropped,
		BudgetFiltered: s.BudgetFiltered,
	}
}
