package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// ShardedOptions shapes the two-tier topology built by TrainSharded.
type ShardedOptions struct {
	// Shards is the number of leaf shard aggregators. Used only when Ranges
	// is nil; ShardRanges(n, Shards) plans the layout.
	Shards int
	// Ranges, when non-nil, is an explicit shard layout. It must tile the
	// node index space with boundaries on merge-recursion split points
	// (validateRanges); use ShardRanges to generate one.
	Ranges []ShardRange
	// ShardObserver, when non-nil, supplies a per-shard observer for the
	// shard aggregators' round and traffic events. Cfg.Observer stays with
	// the director: sharing one observer across shards would interleave
	// round streams, so each shard gets its own (typically its own JSONL
	// file — see cmd/fedml -shards).
	ShardObserver func(shard int) obs.RoundObserver
}

// ShardedResult is the outcome of a two-tier federated meta-training run.
type ShardedResult struct {
	// Theta is the final global model initialization θ.
	Theta tensor.Vec
	// Comm is the root accounting: traffic and fault counters are the exact
	// sum of the shard counters, Rounds/SkippedRounds count global
	// aggregations.
	Comm CommStats
	// Shards holds each shard aggregator's own cumulative accounting.
	Shards []CommStats
}

// TrainSharded runs FedML through the two-tier topology fully in-process:
// each source node of fed executes in its own goroutine behind an in-memory
// link, the node links are partitioned into contiguous shards each owned by
// a RunShardAggregator goroutine, and a RunDirector merges the shard
// partials. Because the shard layout aligns with the aggregation core's
// merge recursion, the θ sequence is bit-identical to Train over the same
// federation whenever the same updates arrive.
//
// Division of labor inside cfg: the director keeps the policy surface —
// Observer, OnRound, T0Controller, CheckpointPath/Resume — while sampling,
// fault tolerance, codecs, and the sanitation guard are applied by the
// shards against their own node links (cfg.MinNodes is per shard).
// cfg.WrapLink wraps the node links with their *global* index, exactly as
// in Train; director↔shard links are an unbilled in-process control plane
// and are never wrapped.
func TrainSharded(m nn.Model, fed *data.Federation, theta0 tensor.Vec, cfg Config, opt ShardedOptions) (*ShardedResult, error) {
	c := cfg.normalized()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if m == nil || fed == nil {
		return nil, errors.New("core: nil model or federation")
	}
	if len(fed.Sources) == 0 {
		return nil, errors.New("core: federation has no source nodes")
	}
	n := len(fed.Sources)
	ranges := opt.Ranges
	if ranges == nil {
		if opt.Shards < 1 {
			return nil, errors.New("core: sharded training needs Shards >= 1 or an explicit Ranges layout")
		}
		ranges = ShardRanges(n, opt.Shards)
	}
	if err := validateRanges(n, ranges); err != nil {
		return nil, err
	}
	if theta0 == nil {
		theta0 = m.InitParams(rng.New(c.Seed))
	}
	if len(theta0) != m.NumParams() {
		return nil, fmt.Errorf("core: theta0 has %d params, model needs %d", len(theta0), m.NumParams())
	}

	platformLinks := make([]transport.Link, n)
	nodeLinks := make([]transport.Link, n)
	for i := range fed.Sources {
		platformLinks[i], nodeLinks[i] = transport.Pair()
		if c.WrapLink != nil {
			// Fault-injection hook, keyed by global node index as in Train.
			platformLinks[i] = c.WrapLink(i, platformLinks[i])
		}
	}

	var nodeWG sync.WaitGroup
	nodeErrs := make([]error, n)
	for i, nd := range fed.Sources {
		nodeWG.Add(1)
		go func(i int, nd *data.NodeDataset) {
			defer nodeWG.Done()
			nodeErrs[i] = RunNode(nodeLinks[i], NodeConfig{
				ID:     i,
				Model:  m,
				Data:   nd,
				Shared: c,
			})
		}(i, nd)
	}

	weights := fed.Weights()
	dirLinks := make([]transport.Link, len(ranges))
	shardErrs := make([]error, len(ranges))
	var shardWG sync.WaitGroup
	for s, r := range ranges {
		var shardLink transport.Link
		dirLinks[s], shardLink = transport.Pair()
		sc := c
		// The policy surface stays with the director; a shard must neither
		// re-wrap its links nor write the global checkpoint.
		sc.Observer = nil
		if opt.ShardObserver != nil {
			sc.Observer = opt.ShardObserver(s)
		}
		sc.OnRound = nil
		sc.T0Controller = nil
		sc.WrapLink = nil
		sc.CheckpointPath = ""
		sc.CheckpointEvery = 0
		sc.Resume = false
		shardWG.Add(1)
		go func(s int, r ShardRange, up transport.Link, sc Config) {
			defer shardWG.Done()
			shardErrs[s] = RunShardAggregator(up, platformLinks[r.Lo:r.Hi], weights[r.Lo:r.Hi], r, sc)
		}(s, r, shardLink, sc)
	}

	theta, rootStats, shardStats, dirErr := RunDirector(dirLinks, ranges, theta0, c)

	// Tear down outside-in: closing the director links unblocks shards
	// stuck in Recv or mid-partial-Send after a director-side failure, then
	// closing the platform-side node links unblocks their nodes. In
	// fault-tolerant mode the shards' linkSets already closed the node
	// links they own, making these closes no-ops.
	for _, l := range dirLinks {
		_ = l.Close()
	}
	shardWG.Wait()
	for _, l := range platformLinks {
		_ = l.Close()
	}
	nodeWG.Wait()
	for _, l := range nodeLinks {
		_ = l.Close()
	}

	if dirErr != nil {
		// A node failure surfaces at every tier; prefer the node's error,
		// then the shard's, which carry the root cause.
		for _, err := range nodeErrs {
			if err != nil && !errors.Is(err, transport.ErrClosed) {
				return nil, fmt.Errorf("federated training: %w", err)
			}
		}
		for _, err := range shardErrs {
			if err != nil && !errors.Is(err, transport.ErrClosed) {
				return nil, fmt.Errorf("federated training: %w", err)
			}
		}
		return nil, fmt.Errorf("federated training: %w", dirErr)
	}
	for _, err := range shardErrs {
		if err != nil {
			return nil, fmt.Errorf("federated training: %w", err)
		}
	}
	for _, err := range nodeErrs {
		if err == nil {
			continue
		}
		// In fault-tolerant mode dropped (or raced-at-shutdown) nodes see
		// their link closed by the shard; that is expected, not failure.
		if c.RoundTimeout > 0 && errors.Is(err, transport.ErrClosed) {
			continue
		}
		return nil, fmt.Errorf("federated training: %w", err)
	}
	return &ShardedResult{Theta: theta, Comm: rootStats, Shards: shardStats}, nil
}
