package core

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func randomUpdates(seed uint64, n, dim int) ([]tensor.Vec, []float64) {
	r := rng.New(seed)
	us := make([]tensor.Vec, n)
	ws := make([]float64, n)
	for i := range us {
		u := tensor.NewVec(dim)
		for d := range u {
			u[d] = r.Norm()
		}
		us[i] = u
		ws[i] = 0.5 + r.Float64()
	}
	return us, ws
}

func TestAggCoreMatchesNaiveSum(t *testing.T) {
	const n, dim = 13, 7
	us, ws := randomUpdates(21, n, dim)
	agg := newAggCore(0, n, dim)
	for i := range us {
		agg.accept(i, us[i].Clone(), ws[i])
	}
	sum, wsum, count := agg.reduce()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	var naiveW float64
	naive := tensor.NewVec(dim)
	for i := range us {
		for d := range naive {
			naive[d] += ws[i] * us[i][d]
		}
		naiveW += ws[i]
	}
	if math.Abs(wsum-naiveW) > 1e-12*naiveW {
		t.Errorf("wsum = %v, naive %v", wsum, naiveW)
	}
	for d := range naive {
		if math.Abs(sum[d]-naive[d]) > 1e-12*(1+math.Abs(naive[d])) {
			t.Errorf("sum[%d] = %v, naive %v", d, sum[d], naive[d])
		}
	}
}

func TestShardRangesAlign(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 10, 16, 33, 100, 1000} {
		for _, s := range []int{1, 2, 3, 4, 5, 8, 16} {
			ranges := ShardRanges(n, s)
			want := s
			if want > n {
				want = n
			}
			if len(ranges) != want {
				t.Errorf("ShardRanges(%d, %d) produced %d ranges, want %d", n, s, len(ranges), want)
			}
			if err := validateRanges(n, ranges); err != nil {
				t.Errorf("ShardRanges(%d, %d) invalid: %v", n, s, err)
			}
		}
	}
}

func TestValidateRangesRejects(t *testing.T) {
	cases := []struct {
		n      int
		ranges []ShardRange
	}{
		{10, nil},
		{10, []ShardRange{{0, 4}, {5, 10}}},           // gap
		{10, []ShardRange{{0, 5}, {5, 9}}},            // short
		{10, []ShardRange{{0, 3}, {3, 10}}},           // off the midpoint (5)
		{16, []ShardRange{{0, 8}, {8, 10}, {10, 16}}}, // right half split off its midpoint (12)
	}
	for _, c := range cases {
		if err := validateRanges(c.n, c.ranges); err == nil {
			t.Errorf("validateRanges(%d, %v) accepted a bad layout", c.n, c.ranges)
		}
	}
}

// TestMergeCoreBitExact is the tentpole's composition theorem as a test: a
// flat core over [0, n) and a two-tier reduction (per-shard cores merged by
// mergeCore) must produce bit-identical sums and weight folds for any
// aligned shard layout and any pattern of absent nodes, because both
// associate by the same fixed midpoint recursion.
func TestMergeCoreBitExact(t *testing.T) {
	const dim = 5
	r := rng.New(77)
	for _, n := range []int{1, 2, 3, 7, 10, 19, 64, 100} {
		for _, s := range []int{1, 2, 3, 4, 7} {
			us, ws := randomUpdates(uint64(1000+n*10+s), n, dim)
			present := make([]bool, n)
			anyPresent := false
			for i := range present {
				present[i] = r.Float64() < 0.7
				anyPresent = anyPresent || present[i]
			}
			if !anyPresent {
				present[0] = true
			}

			flat := newAggCore(0, n, dim)
			for i := range us {
				if present[i] {
					flat.accept(i, us[i].Clone(), ws[i])
				}
			}
			flatSum, flatW, flatCount := flat.reduce()

			ranges := ShardRanges(n, s)
			merge := newMergeCore(ranges, dim)
			total := 0
			fullW := make([]float64, len(ranges))
			for si, rg := range ranges {
				shard := newAggCore(rg.Lo, rg.Hi, dim)
				count := 0
				for i := rg.Lo; i < rg.Hi; i++ {
					if present[i] {
						shard.accept(i, us[i].Clone(), ws[i])
						count++
					}
				}
				fullW[si] = foldScalars(rg.Lo, rg.Hi, func(i int) float64 { return ws[i] })
				if count == 0 {
					continue
				}
				sum, wsum, _ := shard.reduce()
				merge.accept(si, sum.Clone(), wsum)
				total += count
			}
			mergedSum, mergedW := merge.reduce()

			if total != flatCount {
				t.Fatalf("n=%d s=%d: counts diverged %d vs %d", n, s, total, flatCount)
			}
			if mergedW != flatW {
				t.Errorf("n=%d s=%d: weight fold %v != flat %v", n, s, mergedW, flatW)
			}
			for d := range flatSum {
				if mergedSum[d] != flatSum[d] {
					t.Errorf("n=%d s=%d: sum[%d] %v != flat %v (not bit-exact)", n, s, d, mergedSum[d], flatSum[d])
					break
				}
			}
			// The scalar fold over shard totals must reproduce the flat
			// scalar fold bit for bit too (the HT denominator path).
			flatFold := foldScalars(0, n, func(i int) float64 { return ws[i] })
			if got := foldRangeScalars(ranges, 0, len(ranges), fullW); got != flatFold {
				t.Errorf("n=%d s=%d: foldRangeScalars %v != foldScalars %v", n, s, got, flatFold)
			}
		}
	}
}

func TestSanitize(t *testing.T) {
	theta := tensor.Vec{1, 0}
	ok := tensor.Vec{1.5, 0.5}
	if err := sanitize(ok, theta, theta.Norm(), 10); err != nil {
		t.Errorf("benign update rejected: %v", err)
	}
	if err := sanitize(tensor.Vec{math.NaN(), 0}, theta, theta.Norm(), 0); err == nil {
		t.Error("NaN update accepted")
	}
	if err := sanitize(tensor.Vec{1e9, 0}, theta, theta.Norm(), 1); err == nil {
		t.Error("norm explosion accepted")
	}
}
