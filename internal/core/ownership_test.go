package core

import (
	"testing"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// The in-memory transport passes Msg.Params by reference, and both the
// platform and the nodes now reuse their parameter buffers across rounds.
// These tests pin the ownership contract at the two core send boundaries: a
// receiver that retains a Params slice must never observe it change, no
// matter what the sender's buffers do afterwards.

// TestBroadcastParamsNotAliased retains the round-1 broadcast on the node
// side and checks the platform's round-2 aggregation (which overwrites its
// reused θ buffer) leaves the retained slice untouched.
func TestBroadcastParamsNotAliased(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(3))
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 4, T0: 2, Seed: 1}

	platform, node := transport.Pair()
	errc := make(chan error, 1)
	go func() {
		_, _, err := RunPlatform([]transport.Link{platform}, []float64{1}, theta0, cfg)
		errc <- err
	}()

	// Fake node: answer each round with a fixed update, retaining the
	// round-1 broadcast parameters across the platform's aggregation.
	var retained, snapshot tensor.Vec
	update := m.InitParams(rng.New(4))
	for round := 1; ; round++ {
		msg, err := node.Recv()
		if err != nil {
			t.Fatalf("node recv: %v", err)
		}
		if msg.Kind == transport.KindDone {
			break
		}
		if msg.Kind != transport.KindParams {
			t.Fatalf("round %d: got %v, want params", round, msg.Kind)
		}
		if round == 1 {
			retained = tensor.Vec(msg.Params)
			snapshot = retained.Clone()
		}
		if err := node.Send(transport.Msg{
			Kind:   transport.KindUpdate,
			Round:  msg.Round,
			Params: update.Clone(),
		}); err != nil {
			t.Fatalf("node send: %v", err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("platform: %v", err)
	}
	if retained.Dist(snapshot) != 0 {
		t.Error("round-1 broadcast Params changed after later rounds: platform aliased its reused θ buffer into the message")
	}
	if retained.Dist(update) == 0 {
		t.Error("retained broadcast equals the node update: round 2 never ran")
	}
}

// TestUpdateParamsNotAliased retains the round-1 update on the platform
// side and checks the node's round-2 local steps (which overwrite its
// reused θ buffer) leave the retained slice untouched.
func TestUpdateParamsNotAliased(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	nd := fed.Sources[0]
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 4, T0: 2, Seed: 1}

	platform, node := transport.Pair()
	errc := make(chan error, 1)
	go func() {
		errc <- RunNode(node, NodeConfig{ID: 0, Model: m, Data: nd, Shared: cfg})
	}()

	broadcast := m.InitParams(rng.New(5))
	var retained, snapshot tensor.Vec
	for round := 1; round <= 2; round++ {
		if err := platform.Send(transport.Msg{
			Kind:   transport.KindParams,
			Round:  round,
			Params: broadcast.Clone(),
		}); err != nil {
			t.Fatalf("platform send: %v", err)
		}
		msg, err := platform.Recv()
		if err != nil {
			t.Fatalf("platform recv: %v", err)
		}
		if msg.Kind != transport.KindUpdate {
			t.Fatalf("round %d: got %v, want update", round, msg.Kind)
		}
		if round == 1 {
			retained = tensor.Vec(msg.Params)
			snapshot = retained.Clone()
		}
	}
	if err := platform.Send(transport.Msg{Kind: transport.KindDone}); err != nil {
		t.Fatalf("platform done: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("node: %v", err)
	}
	if retained.Dist(snapshot) != 0 {
		t.Error("round-1 update Params changed after round 2: node aliased its reused θ buffer into the message")
	}
}
