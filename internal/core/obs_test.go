package core

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/transport"
)

// statsAsTotals maps a run's CommStats onto the obs mirror for parity
// comparisons.
func statsAsTotals(s CommStats) obs.Totals {
	return obs.Totals{
		Rounds: s.Rounds, Messages: s.Messages, Bytes: s.Bytes,
		Dropped: s.Dropped, Rejoined: s.Rejoined, Rejected: s.Rejected,
		SkippedRounds: s.SkippedRounds,
		StaleApplied:  s.StaleApplied, StaleDropped: s.StaleDropped,
		BudgetFiltered: s.BudgetFiltered,
	}
}

// TestObserverCounterEventParity is the accounting invariant under fire: a
// chaos run with kills, revives, and a corrupted update must emit exactly
// one event per CommStats counter increment, so the event stream folds back
// into the final stats with no field off by even one.
func TestObserverCounterEventParity(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m := tinyModel(fed)
	rec := obs.NewRecorder()
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 3,
		RoundTimeout: 400 * time.Millisecond,
		GuardRadius:  50,
		Observer:     rec,
		WrapLink: func(i int, l transport.Link) transport.Link {
			var sc []transport.ChaosEvent
			switch i {
			case 1:
				sc = []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 5, Op: transport.OpRevive}}
			case 3:
				sc = []transport.ChaosEvent{{Round: 3, Op: transport.OpCorrupt}}
			default:
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{Seed: 100 + uint64(i), Scenario: sc})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped == 0 || res.Comm.Rejoined == 0 || res.Comm.Rejected == 0 {
		t.Fatalf("scenario did not exercise all fault paths: %+v", res.Comm)
	}
	if got, want := rec.Totals(), statsAsTotals(res.Comm); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
	// Per-type cross-check so a compensating double-count cannot hide.
	if n := rec.Count(obs.TypeDrop); n != res.Comm.Dropped {
		t.Errorf("drop events %d != Dropped %d", n, res.Comm.Dropped)
	}
	if n := rec.Count(obs.TypeRejoin); n != res.Comm.Rejoined {
		t.Errorf("rejoin events %d != Rejoined %d", n, res.Comm.Rejoined)
	}
	if n := rec.Count(obs.TypeReject); n != res.Comm.Rejected {
		t.Errorf("reject events %d != Rejected %d", n, res.Comm.Rejected)
	}
	if n := rec.Count(obs.TypeRoundEnd); n != res.Comm.Rounds {
		t.Errorf("round_end events %d != Rounds %d", n, res.Comm.Rounds)
	}
	msgEvents := rec.Count(obs.TypeBroadcast) + rec.Count(obs.TypeProbe) + rec.Count(obs.TypeUpdate)
	if msgEvents != res.Comm.Messages {
		t.Errorf("traffic events %d != Messages %d", msgEvents, res.Comm.Messages)
	}
	// The node side must have reported compute timing for every delivered
	// update (dropped rounds excluded, so >= is all we can pin).
	if rec.Count(obs.TypeNodeCompute) == 0 {
		t.Error("no node compute events")
	}
}

// TestObserverAttemptedBroadcastBilling pins the documented downlink
// semantics: a broadcast lost in flight (one-way partition) is still billed
// — the platform attempted the send — while the update that never arrives
// is not, so the two directions are asymmetric under loss.
func TestObserverAttemptedBroadcastBilling(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:4]
	m := tinyModel(fed)
	rec := obs.NewRecorder()
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 30, T0: 5, Seed: 1,
		RoundTimeout: 300 * time.Millisecond,
		Observer:     rec,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 2 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed: 7,
				Scenario: []transport.ChaosEvent{
					{Round: 2, Op: transport.OpPartitionToNode},
					{Round: 4, Op: transport.OpHeal},
				},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped == 0 {
		t.Fatal("partition never dropped the node; scenario broken")
	}
	var down, up int
	for _, e := range rec.Events() {
		if e.Node != 2 {
			continue
		}
		switch e.Type {
		case obs.TypeBroadcast, obs.TypeProbe:
			down++
		case obs.TypeUpdate:
			up++
		}
	}
	// Node 2's round-2 broadcast vanished into the partition and at least
	// one re-probe was swallowed too; all were billed, no update answered.
	if down <= up {
		t.Errorf("attempted downlink %d should exceed delivered uplink %d under one-way loss", down, up)
	}
	if got, want := rec.Totals(), statsAsTotals(res.Comm); got != want {
		t.Errorf("parity broke under partition: events %+v vs stats %+v", got, want)
	}
}

// TestTimeModelMatchesObservedRun closes the loop the cost-model bugfix is
// about: pricing a real fault-tolerant run from its CommStats must bill
// exactly the observed message and byte counts (re-probes included), not
// the idealized 2-per-round the old formula assumed.
func TestTimeModelMatchesObservedRun(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:4]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 30, T0: 5, Seed: 1,
		RoundTimeout: 300 * time.Millisecond,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 1 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     5,
				Scenario: []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 4, Op: transport.OpRevive}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm := TimeModel{OneWayLatency: 10 * time.Millisecond, BandwidthBps: 1e6, LocalStepTime: time.Millisecond}
	got, err := tm.Estimate(res.Comm, cfg.T, 8*m.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	transfer := time.Duration(float64(res.Comm.Bytes) / tm.BandwidthBps * float64(time.Second))
	want := time.Duration(res.Comm.Messages)*tm.OneWayLatency + transfer +
		time.Duration(cfg.T)*tm.LocalStepTime
	if got != want {
		t.Errorf("estimate %v != observed-traffic pricing %v (Messages=%d)", got, want, res.Comm.Messages)
	}
}

// TestJSONLSinkUnderChaos drives the file sink through a kill/revive run on
// the fault-tolerant async path and checks the output end to end: every
// line parses, rounds are strictly increasing, the cumulative block never
// regresses, and the final cumulative totals reconstruct the run's
// CommStats exactly.
func TestJSONLSinkUnderChaos(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	sink, err := obs.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 3,
		RoundTimeout: 400 * time.Millisecond,
		Observer:     sink,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 1 && i != 4 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     100 + uint64(i),
				Scenario: []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 5, Op: transport.OpRevive}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped == 0 || res.Comm.Rejoined == 0 {
		t.Fatalf("scenario did not flap any node: %+v", res.Comm)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var (
		recs []obs.RoundRecord
		prev obs.RoundRecord
	)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r obs.RoundRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d unparseable: %v", len(recs)+1, err)
		}
		if r.Schema != obs.SchemaVersion {
			t.Fatalf("schema %d, want %d", r.Schema, obs.SchemaVersion)
		}
		if len(recs) > 0 {
			if r.Round <= prev.Round {
				t.Fatalf("rounds not strictly increasing: %d after %d", r.Round, prev.Round)
			}
			if r.Iter < prev.Iter {
				t.Fatalf("iter regressed: %d after %d", r.Iter, prev.Iter)
			}
			if r.Cum.Messages < prev.Cum.Messages || r.Cum.Bytes < prev.Cum.Bytes ||
				r.Cum.Rounds < prev.Cum.Rounds || r.Cum.Dropped < prev.Cum.Dropped {
				t.Fatalf("cumulative totals regressed: %+v after %+v", r.Cum, prev.Cum)
			}
		}
		recs = append(recs, r)
		prev = r
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) < res.Comm.Rounds {
		t.Fatalf("only %d records for %d aggregated rounds", len(recs), res.Comm.Rounds)
	}
	if got, want := recs[len(recs)-1].Cum, statsAsTotals(res.Comm); got != want {
		t.Errorf("final cumulative block %+v does not reconstruct CommStats %+v", got, want)
	}
	// Sum of per-round deltas must agree with the cumulative block too.
	var msgs int
	var bytes int64
	for _, r := range recs {
		msgs += r.Msgs
		bytes += r.Bytes
	}
	if msgs != res.Comm.Messages || bytes != res.Comm.Bytes {
		t.Errorf("delta sums (%d msgs, %d bytes) != CommStats (%d, %d)",
			msgs, bytes, res.Comm.Messages, res.Comm.Bytes)
	}
}
