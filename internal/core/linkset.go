package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/edgeai/fedml/internal/codec"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// This file is the link layer of the platform: everything that touches a
// node-facing transport.Link — broadcast, probe, gather, codec chains,
// suspect/rejoin bookkeeping — and the traffic billing that goes with it.
// The flat platform and the leaf shard aggregator both drive their node
// fleets through one linkSet, so the counter/event parity invariant (every
// CommStats mutation mirrored as exactly one obs.Event, see billDown/billUp/
// markSuspect/rejoin) holds for both by construction.

// linkOps abstracts per-node I/O so the strict synchronous path and the
// fault-tolerant (deadline-bounded) path share the round loop.
type linkOps interface {
	// send transmits with the full round deadline (strict: blocking).
	send(i int, m transport.Msg) error
	// trySend transmits with an explicit deadline (strict: blocking).
	trySend(i int, m transport.Msg, d time.Duration) error
	// recv waits for a message with an explicit deadline (strict: blocking).
	recv(i int, d time.Duration) (transport.Msg, error)
	// finish releases any resources the ops layer created.
	finish()
}

// syncOps is the strict path: direct blocking I/O on the caller's links.
type syncOps struct{ links []transport.Link }

var _ linkOps = syncOps{}

func (s syncOps) send(i int, m transport.Msg) error { return s.links[i].Send(m) }
func (s syncOps) trySend(i int, m transport.Msg, _ time.Duration) error {
	return s.links[i].Send(m)
}
func (s syncOps) recv(i int, _ time.Duration) (transport.Msg, error) { return s.links[i].Recv() }
func (syncOps) finish()                                              {}

// asyncOps is the fault-tolerant path: every link gets goroutine pumps and
// every operation a deadline, so dead or slow nodes cannot stall a round.
// Links of dropped nodes stay open so the platform can re-probe and re-admit
// nodes that come back; everything is closed by finish.
type asyncOps struct {
	wrapped []*transport.Async
	timeout time.Duration
}

var _ linkOps = (*asyncOps)(nil)

func (a *asyncOps) send(i int, m transport.Msg) error {
	return a.wrapped[i].TrySend(m, a.timeout)
}

func (a *asyncOps) trySend(i int, m transport.Msg, d time.Duration) error {
	return a.wrapped[i].TrySend(m, d)
}

func (a *asyncOps) recv(i int, d time.Duration) (transport.Msg, error) {
	return a.wrapped[i].TryRecv(d)
}

func (a *asyncOps) finish() {
	for _, w := range a.wrapped {
		_ = w.Close()
	}
}

// linkSet owns the node-facing links of one aggregator (the whole federation
// for the flat platform, one contiguous shard for a leaf aggregator) and all
// per-link state: liveness, NodeID bindings, codec reference chains, and the
// traffic/fault accounting.
type linkSet struct {
	c       Config // normalized
	ops     linkOps
	ft      bool
	probeTO time.Duration
	logf    func(format string, args ...any)

	// base is the global node index of local link 0. Every reported index —
	// obs events, log lines, error strings — is base+i, so per-shard streams
	// stay distinguishable when merged. The flat platform uses base 0.
	base int

	alive    []bool
	aliveCnt int
	// expectID pins each link to the NodeID its first valid update claimed
	// (-1 until bound); boundBy is the reverse map. Together they reject
	// misrouted or duplicated updates that would otherwise aggregate
	// silently under the wrong weight.
	expectID []int
	boundBy  map[int]int

	stats CommStats
	// obs, when non-nil, mirrors every stats mutation as a structured
	// event (counter/event parity: the billing helpers below are the only
	// places either side changes).
	obs obs.RoundObserver

	// codecSpec/down/up hold the payload-path state when Config.Codec
	// selects a non-raw codec or a SyncMask is configured: one downlink
	// encoder and one uplink decoder per link (wrapped in codec.Masked so
	// structural masking composes with any inner compression), so stateful
	// codecs keep an independent reference chain per node. All three stay
	// nil/empty for raw unmasked runs, preserving the allocation-free Params
	// hot path.
	codecSpec string
	down      []*codec.Masked
	up        []*codec.Masked

	// Sync-mask state, nil/empty unless c.SyncMask is set. maskReady[i]
	// records that link i has been sent a full payload this process
	// lifetime, the precondition for masked traffic (a resumed platform or
	// an escalated resync starts false). probeFails[i] counts consecutive
	// failed re-probes; at probeEscalation it clears maskReady so the next
	// probe carries a full payload — the recovery path for a node that lost
	// its scatter reference entirely. lastMasked[i] tracks the downlink's
	// last payload shape for TypeMaskSync transition events.
	maskReady  []bool
	probeFails []int
	lastMasked []bool
}

// probeEscalation is the number of consecutive failed re-probes after which
// a masked run stops offering masked resyncs (inner chain restarts over the
// masked set — sufficient when the node kept its state through a transient
// fault) and sends one full unmasked payload instead (necessary when the
// node restarted and holds no reference to scatter into).
const probeEscalation = 2

// newLinkSet builds the link layer over node links whose global indices
// start at base. c must already be normalized and validated. The caller must
// ls.finish() when the run ends.
func newLinkSet(c Config, links []transport.Link, base int) *linkSet {
	ft := c.RoundTimeout > 0
	var ops linkOps = syncOps{links: links}
	if ft {
		wrapped := make([]*transport.Async, len(links))
		for i, l := range links {
			wrapped[i] = transport.NewAsync(l, 2)
		}
		ops = &asyncOps{wrapped: wrapped, timeout: c.RoundTimeout}
	}
	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ls := &linkSet{
		c:        c,
		ops:      ops,
		ft:       ft,
		probeTO:  resolveProbeTimeout(c),
		logf:     logf,
		base:     base,
		alive:    make([]bool, len(links)),
		aliveCnt: len(links),
		expectID: make([]int, len(links)),
		boundBy:  make(map[int]int, len(links)),
		obs:      c.Observer,
	}
	for i := range ls.alive {
		ls.alive[i] = true
		ls.expectID[i] = -1
	}
	if (c.Codec != "" && c.Codec != codec.Raw) || c.SyncMask != nil {
		// One encoder/decoder pair per link: stateful codecs track each
		// node's reference chain independently. Validate caught bad specs.
		// Mask-only runs (no compression configured) still need the payload
		// path for the masked wire format, so they ride on the raw codec.
		spec := c.Codec
		if spec == "" {
			spec = codec.Raw
		}
		ls.codecSpec = spec
		ls.down = make([]*codec.Masked, len(links))
		ls.up = make([]*codec.Masked, len(links))
		for i := range links {
			di, _ := codec.New(spec)
			ui, _ := codec.New(spec)
			ls.down[i] = codec.NewMasked(di)
			ls.up[i] = codec.NewMasked(ui)
		}
	}
	if c.SyncMask != nil {
		ls.maskReady = make([]bool, len(links))
		ls.probeFails = make([]int, len(links))
		ls.lastMasked = make([]bool, len(links))
	}
	return ls
}

// roundMask is the wire mask for round's parameter traffic: nil until the
// warmup ends or when no sync-mask policy is configured.
func (ls *linkSet) roundMask(round int) []codec.Range {
	return ls.c.SyncMask.maskFor(round)
}

// finish releases the I/O resources (async pumps in fault-tolerant mode).
func (ls *linkSet) finish() { ls.ops.finish() }

// wireBytes is the billed size of a parameter-bearing message: the encoded
// payload when one is attached, 8 bytes per raw parameter otherwise.
func wireBytes(m transport.Msg) int64 {
	if len(m.Payload) > 0 {
		return int64(len(m.Payload))
	}
	return int64(8 * len(m.Params))
}

// paramsMsg builds the KindParams message carrying theta to link i.
// Raw runs ship a clone of theta (ownership transfers on Send); payload runs
// encode through link i's downlink encoder. resync restarts the link's
// reference chains first, so the message is guaranteed to be a payload any
// decoder state can accept — the recovery offer sent with every probe. Under
// a sync mask that resync is itself masked (an inner full sync of the masked
// set only); the escalation to a full unmasked payload is driven by
// maskReady, cleared after probeEscalation consecutive failed probes.
func (ls *linkSet) paramsMsg(theta tensor.Vec, i, round, t0 int, resync bool) (transport.Msg, error) {
	m := transport.Msg{Kind: transport.KindParams, Round: round, LocalSteps: t0}
	if ls.down == nil {
		m.Params = theta.Clone()
		return m, nil
	}
	if resync {
		ls.resyncLink(i)
	}
	mask := ls.roundMask(round)
	if mask != nil && !ls.maskReady[i] {
		// First payload on this link (fresh start, resumed platform, or an
		// escalated resync): only a full payload can establish the scatter
		// reference a masked payload needs.
		mask = nil
	}
	payload, err := ls.down[i].EncodeMasked(theta, mask)
	if err != nil {
		return transport.Msg{}, fmt.Errorf("core: encode broadcast for node %d: %w", ls.base+i, err)
	}
	if ls.maskReady != nil {
		if mask == nil {
			ls.maskReady[i] = true
		}
		if masked := mask != nil; masked != ls.lastMasked[i] {
			ls.lastMasked[i] = masked
			if ls.obs != nil {
				cause := "full"
				if masked {
					cause = "masked"
				}
				ls.obs.Observe(obs.Event{Type: obs.TypeMaskSync, Round: round, Node: ls.base + i, Value: float64(codec.MaskLen(mask)), Cause: cause})
			}
		}
	}
	m.Codec = ls.codecSpec
	m.Payload = payload
	return m, nil
}

// resyncLink drops link i's codec reference chains, forcing the next
// downlink message to be a full payload and priming the uplink decoder to
// accept the full reply it triggers. No-op for raw runs.
func (ls *linkSet) resyncLink(i int) {
	if ls.down == nil {
		return
	}
	ls.down[i].Reset()
	ls.up[i].Reset()
}

// decodeUp expands the compressed update carried by msg through link i's
// uplink decoder, filling msg.Params in place. Every failure wraps
// errDecode so the round loop can tell wire damage from protocol abuse.
//
// theta is the platform's current global vector: masked payloads scatter
// into it, so the frozen coordinates of the decoded update are θ's
// bit-exactly. A full (unmasked) reply arriving while the mask is active —
// recovery traffic after an escalated resync, or a warmup-era straggler on
// the async path — is projected onto the mask for the same reason: under an
// active mask the accepted vector is always θ outside the mask and the
// node's values inside it, so frozen coordinates cannot drift no matter
// which payload shape delivered them.
func (ls *linkSet) decodeUp(i, round int, msg *transport.Msg, theta tensor.Vec) error {
	if ls.up == nil || msg.Codec != ls.codecSpec {
		return fmt.Errorf("%w: node %d sent codec %q, platform expects %q", errDecode, ls.base+i, msg.Codec, ls.codecSpec)
	}
	params, wireRanges, err := ls.up[i].DecodeMasked(msg.Payload, theta)
	if err != nil {
		return fmt.Errorf("%w: node %d: %v", errDecode, ls.base+i, err)
	}
	if mask := ls.roundMask(round); mask != nil && wireRanges == nil && len(params) == len(theta) {
		projectMask(params, theta, mask)
	}
	msg.Params = params
	return nil
}

// errDecode marks a delivered update whose payload could not be decoded —
// wire corruption or a broken codec reference chain. Fault-tolerant rounds
// treat it like a sanitation reject (bill, discard, resync the link);
// strict rounds abort.
var errDecode = errors.New("core: undecodable update payload")

// billDown accounts one downlink (platform→node) parameter message of
// nBytes wire bytes, billed on the attempted send — the transport cannot
// tell delivered from lost (see CommStats.Messages).
func (ls *linkSet) billDown(node, round int, probe bool, nBytes int64) {
	ls.stats.Messages++
	ls.stats.Bytes += nBytes
	if ls.obs != nil {
		t := obs.TypeBroadcast
		if probe {
			t = obs.TypeProbe
		}
		ls.obs.Observe(obs.Event{Type: t, Round: round, Node: ls.base + node, Bytes: nBytes})
	}
}

// billUp accounts one delivered uplink (node→platform) update message.
func (ls *linkSet) billUp(node, round int, nBytes int64) {
	ls.stats.Messages++
	ls.stats.Bytes += nBytes
	if ls.obs != nil {
		ls.obs.Observe(obs.Event{Type: obs.TypeUpdate, Round: round, Node: ls.base + node, Bytes: nBytes})
	}
}

// markSuspect removes node i from the active set. In fault-tolerant mode the
// link stays open and the node is re-probed every following round.
func (ls *linkSet) markSuspect(i, round int, cause error) {
	if !ls.alive[i] {
		return
	}
	ls.alive[i] = false
	ls.aliveCnt--
	ls.stats.Dropped++
	// The node may have missed any number of messages while unreachable, so
	// its codec reference chains are unusable until a full resync.
	ls.resyncLink(i)
	if ls.obs != nil {
		ls.obs.Observe(obs.Event{Type: obs.TypeDrop, Round: round, Node: ls.base + i, Alive: ls.aliveCnt, Cause: cause.Error()})
	}
	ls.logf("core: dropped node %d in round %d (%d alive): %v", ls.base+i, round, ls.aliveCnt, cause)
}

// markBudgetFiltered accounts a sampled node excluded from round because its
// modeled cost (joules) exceeded the energy/deadline budget. Like the other
// billing helpers, this is the only place counter or event side changes.
func (ls *linkSet) markBudgetFiltered(i, round int, joules float64) {
	ls.stats.BudgetFiltered++
	if ls.obs != nil {
		ls.obs.Observe(obs.Event{Type: obs.TypeBudgetFilter, Round: round, Node: ls.base + i, Value: joules})
	}
	ls.logf("core: node %d filtered from round %d by budget (modeled %.3g J)", ls.base+i, round, joules)
}

// probeFailed records one more unanswered (or undecodable) re-probe of
// suspect i. Under a sync mask, probeEscalation consecutive failures clear
// the link's maskReady flag: the masked resync offer was not enough, so the
// next probe carries a full unmasked payload that can rebuild the node's
// scatter reference from nothing.
func (ls *linkSet) probeFailed(i int) {
	if ls.probeFails == nil {
		return
	}
	ls.probeFails[i]++
	if ls.probeFails[i] >= probeEscalation {
		ls.maskReady[i] = false
		ls.probeFails[i] = 0
	}
}

// rejoin re-admits a suspect node that answered a re-probe.
func (ls *linkSet) rejoin(i, round int) {
	ls.alive[i] = true
	ls.aliveCnt++
	ls.stats.Rejoined++
	if ls.probeFails != nil {
		ls.probeFails[i] = 0
	}
	if ls.obs != nil {
		ls.obs.Observe(obs.Event{Type: obs.TypeRejoin, Round: round, Node: ls.base + i, Alive: ls.aliveCnt})
	}
	ls.logf("core: node %d rejoined in round %d (%d alive)", ls.base+i, round, ls.aliveCnt)
}

// markStaleApply accounts an update applied at positive staleness s with a
// decayed weight (async mode). Like the billing helpers above, this is the
// only place either the counter or the event side changes, so counter/event
// parity holds by construction.
func (ls *linkSet) markStaleApply(i, round, s int) {
	ls.stats.StaleApplied++
	if ls.obs != nil {
		ls.obs.Observe(obs.Event{Type: obs.TypeStaleApply, Round: round, Node: ls.base + i, Value: float64(s)})
	}
}

// markStaleDrop accounts an update discarded because its staleness exceeded
// the MaxStaleness drop bound (async mode).
func (ls *linkSet) markStaleDrop(i, round, s int) {
	ls.stats.StaleDropped++
	if ls.obs != nil {
		ls.obs.Observe(obs.Event{Type: obs.TypeStaleDrop, Round: round, Node: ls.base + i, Value: float64(s)})
	}
	ls.logf("core: dropped stale update from node %d in round %d (staleness %d > max %d)", ls.base+i, round, s, ls.c.MaxStaleness)
}

// bindNodeID validates the claimed NodeID of an update from link i against
// the binding learned from that link's first update.
func (ls *linkSet) bindNodeID(i, id int) error {
	if prev := ls.expectID[i]; prev >= 0 {
		if id != prev {
			return fmt.Errorf("%w: link %d update claims node %d, but the link is bound to node %d", ErrProtocol, ls.base+i, id, prev)
		}
		return nil
	}
	if other, taken := ls.boundBy[id]; taken && other != i {
		return fmt.Errorf("%w: node id %d claimed by links %d and %d (misrouted or duplicated update)", ErrProtocol, id, ls.base+other, ls.base+i)
	}
	ls.expectID[i] = id
	ls.boundBy[id] = i
	return nil
}

// gatherFrom waits up to d for link i's update to the given round,
// validating protocol shape and NodeID binding. In fault-tolerant mode it
// drains stale answers to earlier rounds (late replies from a node that
// was dropped and is coming back) instead of treating them as violations.
// theta is the current global vector masked payloads scatter into; its
// length is the expected update dimension.
func (ls *linkSet) gatherFrom(i, round int, theta tensor.Vec, d time.Duration) (transport.Msg, error) {
	dim := len(theta)
	deadline := time.Now().Add(d)
	for {
		remain := d
		if ls.ft {
			remain = time.Until(deadline)
			if remain <= 0 {
				// The overall gather budget was consumed by earlier traffic
				// on this link (stale drains) before a receive could even be
				// issued — distinct from a receive that waited and timed out
				// below, so suspect causes name the budget that ran out.
				return transport.Msg{}, fmt.Errorf("core: gather round %d from node %d: %v round budget exhausted before receive: %w", round, ls.base+i, d, transport.ErrTimeout)
			}
		}
		msg, err := ls.ops.recv(i, remain)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				return transport.Msg{}, fmt.Errorf("core: gather round %d from node %d: receive timed out after waiting the final %v of the %v budget: %w", round, ls.base+i, remain, d, err)
			}
			return transport.Msg{}, fmt.Errorf("core: gather round %d from node %d: %w", round, ls.base+i, err)
		}
		switch {
		case msg.Kind == transport.KindError:
			return transport.Msg{}, fmt.Errorf("core: node %d failed in round %d: %s", msg.NodeID, round, msg.Err)
		case msg.Kind != transport.KindUpdate:
			return transport.Msg{}, fmt.Errorf("%w: expected update, got %v from node %d", ErrProtocol, msg.Kind, ls.base+i)
		}
		if msg.Round != round {
			if ls.ft && msg.Round < round {
				ls.logf("core: discarding stale round-%d update from link %d during round %d", msg.Round, ls.base+i, round)
				continue
			}
			return transport.Msg{}, fmt.Errorf("%w: node %d answered round %d during round %d", ErrProtocol, ls.base+i, msg.Round, round)
		}
		if msg.Codec != "" || len(msg.Payload) > 0 {
			// The message is returned alongside the error so the caller can
			// bill the bytes that did cross the wire.
			if err := ls.decodeUp(i, round, &msg, theta); err != nil {
				return msg, err
			}
			if len(msg.Params) != dim {
				return msg, fmt.Errorf("%w: node %d payload decoded to %d params, want %d", errDecode, ls.base+i, len(msg.Params), dim)
			}
		} else if len(msg.Params) != dim {
			return transport.Msg{}, fmt.Errorf("%w: node %d sent %d params, want %d", ErrProtocol, ls.base+i, len(msg.Params), dim)
		}
		if err := ls.bindNodeID(i, msg.NodeID); err != nil {
			return transport.Msg{}, err
		}
		return msg, nil
	}
}

// asyncGather waits up to d for one update from link i, accepting a reply
// to any round or θ-version — the async loop weighs staleness at apply time
// instead of discarding late answers, so there is no stale-drain loop here.
// Codec decode, shape, and NodeID binding are validated exactly like
// gatherFrom; decode failures return the message alongside the error so the
// caller can bill the bytes that crossed the wire. theta is the current
// global vector masked payloads scatter into; its length is the expected
// update dimension.
func (ls *linkSet) asyncGather(i, round int, theta tensor.Vec, d time.Duration) (transport.Msg, error) {
	dim := len(theta)
	msg, err := ls.ops.recv(i, d)
	if err != nil {
		return transport.Msg{}, fmt.Errorf("core: async gather from node %d in round %d: %w", ls.base+i, round, err)
	}
	switch {
	case msg.Kind == transport.KindError:
		return transport.Msg{}, fmt.Errorf("core: node %d failed in round %d: %s", msg.NodeID, round, msg.Err)
	case msg.Kind != transport.KindUpdate:
		return transport.Msg{}, fmt.Errorf("%w: expected update, got %v from node %d", ErrProtocol, msg.Kind, ls.base+i)
	}
	if msg.Codec != "" || len(msg.Payload) > 0 {
		if err := ls.decodeUp(i, round, &msg, theta); err != nil {
			return msg, err
		}
		if len(msg.Params) != dim {
			return msg, fmt.Errorf("%w: node %d payload decoded to %d params, want %d", errDecode, ls.base+i, len(msg.Params), dim)
		}
	} else if len(msg.Params) != dim {
		return transport.Msg{}, fmt.Errorf("%w: node %d sent %d params, want %d", ErrProtocol, ls.base+i, len(msg.Params), dim)
	}
	if err := ls.bindNodeID(i, msg.NodeID); err != nil {
		return transport.Msg{}, err
	}
	return msg, nil
}

// gatherRound runs one node-facing round: broadcast theta (with step count
// t0) to the selected alive links, re-probe suspects, gather the replies,
// and vet each one through decode + sanitation. Every surviving update is
// handed to accept with its local link index; rejected updates are billed
// and counted but never reach accept. A non-nil error means the run must
// abort (strict-mode failure, or the alive count fell below MinNodes).
//
// selected holds local link indices, already filtered to alive nodes. The
// suspect re-probe path runs regardless of selection — probing is liveness
// maintenance, not participation, so a suspect is probed exactly once per
// round whether or not the sampler would have picked it.
func (ls *linkSet) gatherRound(round, t0 int, theta tensor.Vec, selected []int, accept func(i int, u tensor.Vec)) error {
	roundNodes := make([]int, 0, len(selected))
	for _, i := range selected {
		// Ownership of Msg.Params/Payload transfers to the receiver on
		// Send (see transport.Msg). theta is the caller's reusable
		// aggregation buffer — and in fault-tolerant mode the async
		// pump may deliver the message after this round's aggregation
		// has overwritten it — so every broadcast carries its own copy
		// (a clone when raw, a freshly encoded payload otherwise).
		m, err := ls.paramsMsg(theta, i, round, t0, false)
		if err != nil {
			return err
		}
		nBytes := wireBytes(m)
		if err := ls.ops.send(i, m); err != nil {
			if ls.ft {
				ls.markSuspect(i, round, err)
				continue
			}
			return fmt.Errorf("core: broadcast round %d to node %d: %w", round, ls.base+i, err)
		}
		roundNodes = append(roundNodes, i)
		ls.billDown(i, round, false, nBytes)
	}

	// Re-probe suspects with the current θ: a dropped node that has
	// recovered answers like any other and rejoins below. Every probe
	// resyncs the link's codec chains first — an unanswered probe must
	// not advance the reference a revived node has never seen.
	var probeNodes []int
	if ls.ft {
		for i := range ls.alive {
			if ls.alive[i] {
				continue
			}
			m, err := ls.paramsMsg(theta, i, round, t0, true)
			if err != nil {
				return err
			}
			nBytes := wireBytes(m)
			if err := ls.ops.trySend(i, m, ls.probeTO); err != nil {
				continue
			}
			probeNodes = append(probeNodes, i)
			ls.billDown(i, round, true, nBytes)
		}
	}

	thetaNorm := theta.Norm()
	deliver := func(i int, msg transport.Msg) {
		// The message crossed the wire either way; account for it even
		// when the sanitation guard discards the payload.
		ls.billUp(i, round, wireBytes(msg))
		if err := sanitize(tensor.Vec(msg.Params), theta, thetaNorm, ls.c.GuardRadius); err != nil {
			ls.stats.Rejected++
			if ls.obs != nil {
				ls.obs.Observe(obs.Event{Type: obs.TypeReject, Round: round, Node: ls.base + i, Cause: err.Error()})
			}
			ls.logf("core: rejected update from node %d in round %d: %v", ls.base+i, round, err)
			return
		}
		accept(i, tensor.Vec(msg.Params))
	}
	for _, i := range roundNodes {
		msg, err := ls.gatherFrom(i, round, theta, ls.c.RoundTimeout)
		if err != nil {
			if ls.ft && errors.Is(err, errDecode) {
				// Delivered but undecodable (wire corruption or a broken
				// reference chain): bill the bytes that arrived, discard
				// like a sanitation reject, and force a full resync so
				// the next exchange re-establishes the chain. The node
				// stays in the federation.
				ls.billUp(i, round, wireBytes(msg))
				ls.stats.Rejected++
				if ls.obs != nil {
					ls.obs.Observe(obs.Event{Type: obs.TypeReject, Round: round, Node: ls.base + i, Cause: err.Error()})
				}
				ls.resyncLink(i)
				ls.logf("core: rejected update from node %d in round %d: %v", ls.base+i, round, err)
				continue
			}
			if ls.ft {
				ls.markSuspect(i, round, err)
				continue
			}
			return err
		}
		if !ls.ft {
			// Strict mode: a poisoned update aborts the run instead of
			// degrading it.
			if err := sanitize(tensor.Vec(msg.Params), theta, thetaNorm, ls.c.GuardRadius); err != nil {
				return fmt.Errorf("core: node %d round %d: %v", ls.base+i, round, err)
			}
		}
		deliver(i, msg)
	}
	for _, i := range probeNodes {
		msg, err := ls.gatherFrom(i, round, theta, ls.probeTO)
		if err != nil {
			ls.probeFailed(i)
			continue // still unreachable; stays suspect
		}
		ls.rejoin(i, round)
		deliver(i, msg)
	}

	if min := ls.minNodes(); ls.aliveCnt < min {
		return fmt.Errorf("core: only %d nodes alive, below MinNodes=%d", ls.aliveCnt, min)
	}
	return nil
}

// minNodes resolves the abort threshold for fault-tolerant runs.
func (ls *linkSet) minNodes() int {
	if ls.c.MinNodes == 0 {
		return 1
	}
	return ls.c.MinNodes
}

// shutdown tells every node training is over. Failures here are not drops —
// training is already complete — so they are logged under a named phase and
// excluded from the Dropped count.
func (ls *linkSet) shutdown() error {
	for i := range ls.alive {
		if !ls.alive[i] {
			if ls.ft {
				// Best-effort farewell so a node that revives later exits
				// cleanly instead of waiting for a round that never comes.
				_ = ls.ops.trySend(i, transport.Msg{Kind: transport.KindDone}, ls.probeTO)
			}
			continue
		}
		if err := ls.ops.send(i, transport.Msg{Kind: transport.KindDone}); err != nil {
			if ls.ft {
				ls.logf("core: shutdown: done to node %d failed: %v", ls.base+i, err)
				continue
			}
			return fmt.Errorf("core: done to node %d: %w", ls.base+i, err)
		}
	}
	return nil
}
