package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// Result is the outcome of a federated meta-training run.
type Result struct {
	// Theta is the final global model initialization θ.
	Theta tensor.Vec
	// Comm accounts for the platform↔edge traffic.
	Comm CommStats
}

// Train runs FedML (or Robust FedML when cfg.Robust is set) fully
// in-process: each source node of fed executes in its own goroutine,
// connected to the platform by an in-memory link. The computation is
// deterministic: aggregation order is fixed by node index and every node's
// randomness derives from cfg.Seed.
//
// theta0 may be nil, in which case the model initializes it from cfg.Seed
// (Algorithm 1 line 3).
func Train(m nn.Model, fed *data.Federation, theta0 tensor.Vec, cfg Config) (*Result, error) {
	c := cfg.normalized()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if m == nil || fed == nil {
		return nil, errors.New("core: nil model or federation")
	}
	if len(fed.Sources) == 0 {
		return nil, errors.New("core: federation has no source nodes")
	}
	if theta0 == nil {
		theta0 = m.InitParams(rng.New(c.Seed))
	}
	if len(theta0) != m.NumParams() {
		return nil, fmt.Errorf("core: theta0 has %d params, model needs %d", len(theta0), m.NumParams())
	}

	platformLinks := make([]transport.Link, len(fed.Sources))
	nodeLinks := make([]transport.Link, len(fed.Sources))
	for i := range fed.Sources {
		platformLinks[i], nodeLinks[i] = transport.Pair()
		if c.WrapLink != nil {
			// Fault-injection hook: resilience tests and the CLI wrap the
			// platform-side endpoints in transport.Chaos here.
			platformLinks[i] = c.WrapLink(i, platformLinks[i])
		}
	}

	var wg sync.WaitGroup
	nodeErrs := make([]error, len(fed.Sources))
	for i, nd := range fed.Sources {
		wg.Add(1)
		go func(i int, nd *data.NodeDataset) {
			defer wg.Done()
			nodeErrs[i] = RunNode(nodeLinks[i], NodeConfig{
				ID:     i,
				Model:  m,
				Data:   nd,
				Shared: c,
			})
		}(i, nd)
	}

	run := RunPlatform
	if c.Async {
		run = RunAsyncPlatform
	}
	theta, stats, platformErr := run(platformLinks, fed.Weights(), theta0, c)

	// Tear down the links so nodes blocked on Recv (after a platform-side
	// failure) unblock, then collect node errors.
	for _, l := range platformLinks {
		_ = l.Close()
	}
	wg.Wait()
	for _, l := range nodeLinks {
		_ = l.Close()
	}

	if platformErr != nil {
		// A node failure surfaces on both sides; prefer the node's error,
		// which carries the root cause.
		for _, err := range nodeErrs {
			if err != nil && !errors.Is(err, transport.ErrClosed) {
				return nil, fmt.Errorf("federated training: %w", err)
			}
		}
		return nil, fmt.Errorf("federated training: %w", platformErr)
	}
	for _, err := range nodeErrs {
		if err == nil {
			continue
		}
		// In fault-tolerant mode dropped (or raced-at-shutdown) nodes see
		// their link closed by the platform; that is expected, not failure.
		if c.RoundTimeout > 0 && errors.Is(err, transport.ErrClosed) {
			continue
		}
		return nil, fmt.Errorf("federated training: %w", err)
	}
	return &Result{Theta: theta, Comm: stats}, nil
}
