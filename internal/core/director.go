package core

import (
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/edgeai/fedml/internal/checkpoint"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// RunDirector executes the root of the two-tier topology: it registers the
// shard aggregators (shards[s] is the link to the leaf owning global index
// range ranges[s]), dispatches each round's θ and step count to every
// shard, merges the returned partial sums with the aggregation core's fixed
// merge rule, and renormalizes once at the root — Eq. 5 computed
// hierarchically. Because the shard layout must align with the merge
// recursion (use ShardRanges; validateRanges enforces it), the θ sequence
// is bit-identical to the flat RunPlatform over the same nodes whenever the
// same updates arrive, no matter how many shards the fleet is split across.
//
// Policy stays at the root: the T0 schedule, checkpoint/resume, and the
// round lifecycle (including skip accounting when no shard contributes) are
// the director's, while client sampling, fault tolerance, codecs, and the
// sanitation guard run inside each shard. Config.MinNodes therefore applies
// per shard. Director↔shard links are treated as a reliable in-process
// control plane: dispatches and partials are not billed (root traffic
// totals are the sum of the shard-reported totals — exact counter parity),
// and any link failure aborts the run.
//
// Returns the final θ, the root accounting (traffic and fault counters are
// the sum over shards; Rounds/SkippedRounds count the director's own global
// aggregations), and the per-shard accounting as last reported.
func RunDirector(shards []transport.Link, ranges []ShardRange, theta0 tensor.Vec, cfg Config) (tensor.Vec, CommStats, []CommStats, error) {
	var stats CommStats
	c := cfg.normalized()
	if err := c.Validate(); err != nil {
		return nil, stats, nil, err
	}
	if len(shards) == 0 {
		return nil, stats, nil, fmt.Errorf("core: no shards to direct")
	}
	if len(shards) != len(ranges) {
		return nil, stats, nil, fmt.Errorf("core: %d shard links but %d shard ranges", len(shards), len(ranges))
	}
	n := ranges[len(ranges)-1].Hi
	if err := validateRanges(n, ranges); err != nil {
		return nil, stats, nil, err
	}
	if len(theta0) == 0 {
		return nil, stats, nil, fmt.Errorf("core: empty initial parameters")
	}
	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	S := len(shards)
	theta := theta0.Clone()
	if c.SyncMask != nil {
		if err := c.SyncMask.validateDim(len(theta)); err != nil {
			return nil, stats, nil, err
		}
	}
	merge := newMergeCore(ranges, len(theta))
	useHT := c.UnbiasedParticipation && c.samplingActive()
	ft := c.RoundTimeout > 0

	var (
		shardStats = make([]CommStats, S)
		fullW      = make([]float64, S)
		shardDisp  = make([]float64, S)
		alive      = make([]int, S)
		meanBuf    = tensor.NewVec(len(theta))
		prevTheta  tensor.Vec
		base       CommStats // accounting restored from a resumed snapshot
		own        CommStats // the director's round counters
	)
	for s, r := range ranges {
		alive[s] = r.Hi - r.Lo
	}
	obsv := c.Observer
	if obsv != nil {
		prevTheta = make(tensor.Vec, len(theta))
	}
	// frozenRef snapshots the pre-aggregation θ when the sync mask is frozen:
	// the director is where sharded runs normalize, so it restores the frozen
	// coordinates after ScaleInto exactly like the flat platform.
	var frozenRef tensor.Vec
	if c.SyncMask != nil {
		frozenRef = make(tensor.Vec, len(theta))
	}
	// rootStats folds the three accounting layers: the resumed baseline,
	// the director's own round counters, and the latest cumulative totals
	// reported by each shard.
	rootStats := func() CommStats {
		out := base
		out.add(own)
		for s := range shardStats {
			out.add(shardStats[s])
		}
		out.Rounds = base.Rounds + own.Rounds
		out.SkippedRounds = base.SkippedRounds + own.SkippedRounds
		return out
	}
	aliveTotal := func() int {
		total := 0
		for _, a := range alive {
			total += a
		}
		return total
	}

	var (
		iter       int
		dispersion float64
	)
	t0 := c.T0
	startRound := 1
	ckEvery := c.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 1
	}
	if c.CheckpointPath != "" && c.Resume {
		st, err := checkpoint.LoadRunState(c.CheckpointPath)
		switch {
		case err == nil:
			if len(st.Theta) != len(theta) {
				return nil, stats, nil, fmt.Errorf("core: resume: snapshot has %d params, model needs %d", len(st.Theta), len(theta))
			}
			theta.CopyFrom(tensor.Vec(st.Theta))
			iter = st.Iter
			t0 = st.T0
			dispersion = st.Dispersion
			base = statsFromSnapshot(st)
			startRound = st.Round + 1
			logf("core: resumed from %s: round %d done, iter %d", c.CheckpointPath, st.Round, st.Iter)
		case errors.Is(err, os.ErrNotExist):
			// No snapshot yet: start fresh, so supervisors can always
			// restart the director with Resume set.
		default:
			return nil, stats, nil, err
		}
	}

	consecSkipped := 0
	for round := startRound; iter < c.T; round++ {
		t0 = nextT0(c, round, dispersion, t0, c.T-iter)
		var roundT0 time.Time
		if obsv != nil {
			roundT0 = time.Now()
			obsv.Observe(obs.Event{Type: obs.TypeRoundStart, Round: round, Iter: iter, T0: t0, Alive: aliveTotal()})
		}

		for s := range shards {
			// θ is the director's reused aggregation buffer; ownership of
			// Msg.Params transfers on Send, so each dispatch carries a clone.
			m := transport.Msg{Kind: transport.KindParams, Round: round, Params: theta.Clone(), LocalSteps: t0}
			if err := shards[s].Send(m); err != nil {
				return nil, rootStats(), shardStats, fmt.Errorf("core: dispatch round %d to shard %d: %w", round, s, err)
			}
		}

		merge.reset()
		totalCount := 0
		for s := range shards {
			m, err := shards[s].Recv()
			if err != nil {
				return nil, rootStats(), shardStats, fmt.Errorf("core: gather round %d partial from shard %d: %w", round, s, err)
			}
			switch {
			case m.Kind == transport.KindError:
				return nil, rootStats(), shardStats, fmt.Errorf("core: shard %d failed in round %d: %s", s, round, m.Err)
			case m.Kind != transport.KindPartial:
				return nil, rootStats(), shardStats, fmt.Errorf("%w: expected partial, got %v from shard %d", ErrProtocol, m.Kind, s)
			case m.Round != round:
				return nil, rootStats(), shardStats, fmt.Errorf("%w: shard %d answered round %d during round %d", ErrProtocol, s, m.Round, round)
			case m.Partial == nil:
				return nil, rootStats(), shardStats, fmt.Errorf("%w: shard %d sent a partial without metadata", ErrProtocol, s)
			}
			p := m.Partial
			shardStats[s] = statsOfShard(p.Stats)
			fullW[s] = p.FullWeight
			shardDisp[s] = p.Dispersion
			alive[s] = p.Alive
			if p.Count > 0 {
				if len(m.Params) != len(theta) {
					return nil, rootStats(), shardStats, fmt.Errorf("%w: shard %d partial has %d params, want %d", ErrProtocol, s, len(m.Params), len(theta))
				}
				merge.accept(s, tensor.Vec(m.Params), p.Weight)
				totalCount += p.Count
			}
		}

		sum, wsum := merge.reduce()
		denom := wsum
		if useHT {
			denom = foldRangeScalars(ranges, 0, S, fullW)
		}
		if totalCount == 0 || denom <= 0 {
			if ft {
				own.SkippedRounds++
				consecSkipped++
				if obsv != nil {
					obsv.Observe(obs.Event{Type: obs.TypeRoundSkip, Round: round, Iter: iter, T0: t0, Alive: aliveTotal(), Dur: time.Since(roundT0)})
				}
				logf("core: round %d produced no usable updates (%d alive); skipping aggregation", round, aliveTotal())
				if consecSkipped > maxConsecutiveSkips {
					return nil, rootStats(), shardStats, fmt.Errorf("core: %d consecutive rounds without usable updates (%d nodes alive)", consecSkipped, aliveTotal())
				}
				continue
			}
			return nil, rootStats(), shardStats, fmt.Errorf("core: round %d produced no usable updates (%d nodes alive)", round, aliveTotal())
		}
		consecSkipped = 0

		if obsv != nil {
			prevTheta.CopyFrom(theta)
		}
		frozen := c.SyncMask.frozenAt(round)
		if frozen {
			frozenRef.CopyFrom(theta)
		}
		sum.ScaleInto(1/denom, theta)
		if frozen {
			restoreFrozen(theta, frozenRef, c.SyncMask.Ranges)
		}
		// The hierarchical dispersion proxy: each contributing shard's
		// within-shard dispersion plus its aggregate's drift from the new
		// global θ, weighted like the aggregation itself. It upper-bounds
		// the flat per-update dispersion (triangle inequality) and feeds
		// the same T0 controller.
		dispersion = 0
		for s := range shards {
			if merge.sums[s] == nil || merge.wts[s] <= 0 {
				continue
			}
			merge.sums[s].ScaleInto(1/merge.wts[s], meanBuf)
			dispersion += merge.wts[s] / denom * (shardDisp[s] + meanBuf.Dist(theta))
		}
		iter += t0
		own.Rounds++
		if obsv != nil {
			obsv.Observe(obs.Event{
				Type: obs.TypeRoundEnd, Round: round, Iter: iter, T0: t0,
				Alive: aliveTotal(), Dur: time.Since(roundT0),
				Value: theta.Dist(prevTheta), Dispersion: dispersion,
			})
		}
		if c.OnRound != nil {
			c.OnRound(round, iter, theta)
		}
		if c.CheckpointPath != "" && (own.Rounds%ckEvery == 0 || iter >= c.T) {
			if err := saveSnapshot(c.CheckpointPath, round, iter, t0, dispersion, theta, rootStats()); err != nil {
				return nil, rootStats(), shardStats, err
			}
		}
	}

	for s := range shards {
		if err := shards[s].Send(transport.Msg{Kind: transport.KindDone}); err != nil {
			return nil, rootStats(), shardStats, fmt.Errorf("core: done to shard %d: %w", s, err)
		}
	}
	return theta, rootStats(), shardStats, nil
}

// foldRangeScalars folds per-shard scalars over the shard-leaf slice [a, b)
// with the merge recursion, so the result equals foldScalars over the
// underlying global index range.
func foldRangeScalars(ranges []ShardRange, a, b int, vals []float64) float64 {
	if b-a == 1 {
		return vals[a]
	}
	lo, hi := ranges[a].Lo, ranges[b-1].Hi
	mid := lo + (hi-lo)/2
	split := a + 1
	for ranges[split].Lo != mid {
		split++
	}
	return foldRangeScalars(ranges, a, split, vals) + foldRangeScalars(ranges, split, b, vals)
}
