package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/edgeai/fedml/internal/checkpoint"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// This file is the policy layer of the platform: who participates in a
// round (client sampling), how long the round may take (timeout
// resolution), how many local steps it runs (the T0 schedule), and when
// state is persisted (checkpointing). Policy decisions are pure functions
// of configuration and round number, so the flat platform, a leaf shard,
// and the director all make identical decisions from the same inputs.

// maxConsecutiveSkips bounds how many rounds in a row a fault-tolerant
// aggregator tolerates without a single usable update before giving up.
const maxConsecutiveSkips = 8

// participationSelector picks the per-round node subset for client
// sampling. Full participation returns the fixed identity subset.
//
// Each round's subset is a pure function of (Seed, salt, round): the
// selector derives a fresh child stream per round instead of consuming one
// sequential stream, so a platform that resumes from a round-R checkpoint
// samples rounds R+1, R+2, … exactly as the uninterrupted run would have.
// salt decorrelates selectors drawing from one Seed (one per shard).
type participationSelector struct {
	n        int
	perRound int
	src      *rng.Rand
	all      []int
}

func newParticipationSelector(c Config, n int, salt uint64) *participationSelector {
	s := &participationSelector{n: n, all: make([]int, n)}
	for i := range s.all {
		s.all[i] = i
	}
	if c.Participation <= 0 || c.Participation >= 1 {
		return s
	}
	s.perRound = int(math.Ceil(c.Participation * float64(n)))
	if s.perRound < 1 {
		s.perRound = 1
	}
	s.src = rng.New(c.Seed ^ 0x5e1ec7).Split(salt)
	return s
}

// pick returns the local node indices participating in round (1-based),
// sorted so that gathers and aggregation stay deterministic. The result for
// a given round never depends on which earlier rounds were picked.
func (s *participationSelector) pick(round int) []int {
	if s.src == nil {
		return s.all
	}
	perm := s.src.Split(uint64(round)).Perm(s.n)
	sel := perm[:s.perRound]
	sort.Ints(sel)
	return sel
}

// inclusionProb is the marginal probability that any given node is sampled
// in a round (uniform over fixed-size subsets), the π of the
// inverse-inclusion-probability correction. 1 under full participation.
func (s *participationSelector) inclusionProb() float64 {
	if s.src == nil {
		return 1
	}
	return float64(s.perRound) / float64(s.n)
}

// selectAlive applies the round's sample to the current liveness mask,
// falling back to every alive node when the sample missed all of them.
func (s *participationSelector) selectAlive(round int, alive []bool) []int {
	selected := make([]int, 0, s.n)
	for _, i := range s.pick(round) {
		if alive[i] {
			selected = append(selected, i)
		}
	}
	if len(selected) == 0 {
		// The sample missed every alive node; fall back to all of them.
		for i := range alive {
			if alive[i] {
				selected = append(selected, i)
			}
		}
	}
	return selected
}

// resolveProbeTimeout resolves the per-operation suspect re-probe deadline:
// ProbeTimeout when set, RoundTimeout/4 otherwise, floored at 1ms.
func resolveProbeTimeout(c Config) time.Duration {
	probeTO := c.ProbeTimeout
	if probeTO <= 0 {
		probeTO = c.RoundTimeout / 4
	}
	if probeTO < time.Millisecond {
		probeTO = time.Millisecond
	}
	return probeTO
}

// nextT0 advances the local-step schedule for the upcoming round: the
// T0Controller (fed the previous round's dispersion) re-chooses the count,
// clamped to [1, remaining budget].
func nextT0(c Config, round int, dispersion float64, t0, remaining int) int {
	if c.T0Controller != nil && round > 1 {
		t0 = c.T0Controller(round, dispersion, t0)
		if t0 < 1 {
			t0 = 1
		}
	}
	if t0 > remaining {
		t0 = remaining
	}
	return t0
}

// foldScalars folds per-node scalars over global indices [lo, hi) with the
// same midpoint recursion the aggregation core uses for vectors, so scalar
// totals (e.g. the full-participation weight sum of the unbiased
// correction) compose bit-exactly across the shard tree.
func foldScalars(lo, hi int, f func(i int) float64) float64 {
	if hi-lo == 1 {
		return f(lo)
	}
	mid := lo + (hi-lo)/2
	return foldScalars(lo, mid, f) + foldScalars(mid, hi, f)
}

// saveSnapshot persists the post-aggregation state of a round for crash
// recovery.
func saveSnapshot(path string, round, iter, t0 int, dispersion float64, theta tensor.Vec, stats CommStats) error {
	st := &checkpoint.RunState{
		Version:       checkpoint.RunStateVersion,
		Round:         round,
		Iter:          iter,
		T0:            t0,
		Dispersion:    dispersion,
		Theta:         append([]float64(nil), theta...),
		Rounds:        stats.Rounds,
		Messages:      stats.Messages,
		Bytes:         stats.Bytes,
		Dropped:       stats.Dropped,
		Rejoined:      stats.Rejoined,
		Rejected:      stats.Rejected,
		SkippedRounds: stats.SkippedRounds,
		StaleApplied:  stats.StaleApplied,
		StaleDropped:  stats.StaleDropped,
	}
	if err := checkpoint.SaveRunState(path, st); err != nil {
		return fmt.Errorf("core: checkpoint round %d: %w", round, err)
	}
	return nil
}

// statsFromSnapshot rebuilds the accounting a snapshot recorded.
func statsFromSnapshot(st *checkpoint.RunState) CommStats {
	return CommStats{
		Rounds: st.Rounds, Messages: st.Messages, Bytes: st.Bytes,
		Dropped: st.Dropped, Rejoined: st.Rejoined, Rejected: st.Rejected,
		SkippedRounds: st.SkippedRounds,
		StaleApplied:  st.StaleApplied, StaleDropped: st.StaleDropped,
	}
}
