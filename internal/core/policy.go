package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/edgeai/fedml/internal/checkpoint"
	"github.com/edgeai/fedml/internal/codec"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// This file is the policy layer of the platform: who participates in a
// round (client sampling), how long the round may take (timeout
// resolution), how many local steps it runs (the T0 schedule), and when
// state is persisted (checkpointing). Policy decisions are pure functions
// of configuration and round number, so the flat platform, a leaf shard,
// and the director all make identical decisions from the same inputs.

// maxConsecutiveSkips bounds how many rounds in a row a fault-tolerant
// aggregator tolerates without a single usable update before giving up.
const maxConsecutiveSkips = 8

// participationSelector picks the per-round node subset for client
// sampling. Full participation returns the fixed identity subset.
//
// Each round's subset is a pure function of (Seed, salt, round): the
// selector derives a fresh child stream per round instead of consuming one
// sequential stream, so a platform that resumes from a round-R checkpoint
// samples rounds R+1, R+2, … exactly as the uninterrupted run would have.
// salt decorrelates selectors drawing from one Seed (one per shard).
type participationSelector struct {
	n        int
	perRound int
	src      *rng.Rand
	all      []int
}

func newParticipationSelector(c Config, n int, salt uint64) *participationSelector {
	s := &participationSelector{n: n, all: make([]int, n)}
	for i := range s.all {
		s.all[i] = i
	}
	if c.Participation <= 0 || c.Participation >= 1 {
		return s
	}
	s.perRound = int(math.Ceil(c.Participation * float64(n)))
	if s.perRound < 1 {
		s.perRound = 1
	}
	s.src = rng.New(c.Seed ^ 0x5e1ec7).Split(salt)
	return s
}

// pick returns the local node indices participating in round (1-based),
// sorted so that gathers and aggregation stay deterministic. The result for
// a given round never depends on which earlier rounds were picked.
func (s *participationSelector) pick(round int) []int {
	if s.src == nil {
		return s.all
	}
	perm := s.src.Split(uint64(round)).Perm(s.n)
	sel := perm[:s.perRound]
	sort.Ints(sel)
	return sel
}

// inclusionProb is the marginal probability that any given node is sampled
// in a round (uniform over fixed-size subsets), the π of the
// inverse-inclusion-probability correction. 1 under full participation.
func (s *participationSelector) inclusionProb() float64 {
	if s.src == nil {
		return 1
	}
	return float64(s.perRound) / float64(s.n)
}

// selectAlive applies the round's sample to the current liveness mask,
// falling back to every alive node when the sample missed all of them.
func (s *participationSelector) selectAlive(round int, alive []bool) []int {
	selected := make([]int, 0, s.n)
	for _, i := range s.pick(round) {
		if alive[i] {
			selected = append(selected, i)
		}
	}
	if len(selected) == 0 {
		// The sample missed every alive node; fall back to all of them.
		for i := range alive {
			if alive[i] {
				selected = append(selected, i)
			}
		}
	}
	return selected
}

// budgetEnabled reports whether an energy budget value constrains anything:
// zero and +Inf both mean "unlimited".
func budgetEnabled(b float64) bool {
	return b > 0 && !math.IsInf(b, 1)
}

// budgetPolicy is the opt-in budget-aware participation mode: it filters the
// round's sampled nodes to those whose modeled per-round cost — energy under
// the EnergyModel, wall-clock under the TimeModel — fits the configured
// per-node budgets, so the Elgabli-style scheduling question ("who can
// afford this round?") is answered before any radio turns on. It layers on
// top of the round-keyed sampler rather than replacing it: with every
// sampled node affordable (in particular whenever both budgets are
// disabled), filter returns the selection slice untouched, which is what
// makes the unbudgeted trajectory bit-identical to plain sampling.
type budgetPolicy struct {
	em       EnergyModel
	budget   float64   // joules per node-round; constrains when budgetEnabled
	scale    []float64 // per-node energy multipliers by global index; nil = 1
	tm       TimeModel
	deadline time.Duration // modeled per-round deadline; 0 = disabled
	weights  []float64     // aggregation weights by local index
	base     int
	mask     *SyncMaskPolicy

	// fullBytes and maskedBytes are the modeled one-way wire sizes of a
	// parameter message before and after the sync mask engages, priced by
	// codec.WireSize so compression discounts the budget the same way it
	// discounts CommStats.Bytes.
	fullBytes   int
	maskedBytes int
}

// newBudgetPolicy builds the round filter, or nil when no budget constrains
// the run (the bit-identity fast path costs nothing).
func newBudgetPolicy(c Config, weights []float64, base, dim int) (*budgetPolicy, error) {
	if !budgetEnabled(c.EnergyBudget) && c.RoundDeadline <= 0 {
		return nil, nil
	}
	if c.EnergyScale != nil && len(c.EnergyScale) < base+len(weights) {
		return nil, fmt.Errorf("core: energy scale covers %d nodes, need %d", len(c.EnergyScale), base+len(weights))
	}
	spec := c.Codec
	if spec == "" && c.SyncMask != nil {
		spec = codec.Raw // masked runs ship payloads even without compression
	}
	fullBytes, err := codec.WireSize(spec, dim)
	if err != nil {
		return nil, fmt.Errorf("core: budget wire model: %w", err)
	}
	bp := &budgetPolicy{
		budget:   c.EnergyBudget,
		scale:    c.EnergyScale,
		deadline: c.RoundDeadline,
		weights:  weights,
		base:     base,
		mask:     c.SyncMask,

		fullBytes:   fullBytes,
		maskedBytes: fullBytes,
	}
	if c.Energy != nil {
		bp.em = *c.Energy
	}
	if c.Time != nil {
		bp.tm = *c.Time
	}
	if p := c.SyncMask; p != nil {
		inner, err := codec.WireSize(spec, codec.MaskLen(p.Ranges))
		if err != nil {
			return nil, fmt.Errorf("core: budget wire model: %w", err)
		}
		bp.maskedBytes = 9 + 8*len(p.Ranges) + inner
	}
	return bp, nil
}

// roundBytes is the modeled one-way message size for the round, tracking the
// sync-mask schedule: budgets see the same traffic discount the wire does.
func (b *budgetPolicy) roundBytes(round int) int {
	if b.mask.maskFor(round) != nil {
		return b.maskedBytes
	}
	return b.fullBytes
}

// nodeJoules models node i's energy share of one round: one broadcast down,
// one update up, t0 local iterations, scaled by the node's EnergyScale entry.
func (b *budgetPolicy) nodeJoules(i, bytes, t0 int) float64 {
	s := 1.0
	if b.scale != nil {
		s = b.scale[b.base+i]
	}
	return s * b.em.RoundJoules(int64(bytes), int64(bytes), t0)
}

// nodeTime models a node's wall-clock share of one round under the
// TimeModel, reusing Estimate's saturating arithmetic.
func (b *budgetPolicy) nodeTime(bytes, t0 int) time.Duration {
	d, err := b.tm.Estimate(CommStats{Rounds: 1, Messages: 2, Bytes: int64(2 * bytes)}, t0, 0)
	if err != nil {
		return 0 // validated at config time; unreachable
	}
	return d
}

// filter applies the budgets to the round's sampled nodes. Affordable nodes
// pass through; unaffordable ones are handed to reject (which bills
// CommStats.BudgetFiltered). When every sampled node is affordable the input
// slice is returned untouched — the bit-identity guarantee. When none is,
// the single node with the best expected progress per joule (ω_i/cost_i,
// ties to the lower index) is kept so the round still aggregates something.
func (b *budgetPolicy) filter(round, t0 int, selected []int, reject func(i int, joules float64)) []int {
	bytes := b.roundBytes(round)
	joules := make([]float64, len(selected))
	afford := make([]bool, len(selected))
	nAfford := 0
	for k, i := range selected {
		joules[k] = b.nodeJoules(i, bytes, t0)
		ok := true
		if budgetEnabled(b.budget) && joules[k] > b.budget {
			ok = false
		}
		if ok && b.deadline > 0 && b.nodeTime(bytes, t0) > b.deadline {
			ok = false
		}
		afford[k] = ok
		if ok {
			nAfford++
		}
	}
	if nAfford == len(selected) {
		return selected
	}
	if nAfford == 0 && len(selected) > 0 {
		best := 0
		for k := 1; k < len(selected); k++ {
			if progressPerJoule(b.weights[selected[k]], joules[k]) > progressPerJoule(b.weights[selected[best]], joules[best]) {
				best = k
			}
		}
		afford[best] = true
		nAfford = 1
	}
	keep := make([]int, 0, nAfford)
	for k, i := range selected {
		if afford[k] {
			keep = append(keep, i)
		} else {
			reject(i, joules[k])
		}
	}
	return keep
}

// progressPerJoule ranks backfill candidates: aggregation weight (the
// expected-progress proxy — Eq. 5 weighs updates by data size) per modeled
// joule. A zero-cost node ranks infinitely high.
func progressPerJoule(w, joules float64) float64 {
	if joules <= 0 {
		return math.Inf(1)
	}
	return w / joules
}

// resolveProbeTimeout resolves the per-operation suspect re-probe deadline:
// ProbeTimeout when set, RoundTimeout/4 otherwise, floored at 1ms.
func resolveProbeTimeout(c Config) time.Duration {
	probeTO := c.ProbeTimeout
	if probeTO <= 0 {
		probeTO = c.RoundTimeout / 4
	}
	if probeTO < time.Millisecond {
		probeTO = time.Millisecond
	}
	return probeTO
}

// nextT0 advances the local-step schedule for the upcoming round: the
// T0Controller (fed the previous round's dispersion) re-chooses the count,
// clamped to [1, remaining budget].
func nextT0(c Config, round int, dispersion float64, t0, remaining int) int {
	if c.T0Controller != nil && round > 1 {
		t0 = c.T0Controller(round, dispersion, t0)
		if t0 < 1 {
			t0 = 1
		}
	}
	if t0 > remaining {
		t0 = remaining
	}
	return t0
}

// foldScalars folds per-node scalars over global indices [lo, hi) with the
// same midpoint recursion the aggregation core uses for vectors, so scalar
// totals (e.g. the full-participation weight sum of the unbiased
// correction) compose bit-exactly across the shard tree.
func foldScalars(lo, hi int, f func(i int) float64) float64 {
	if hi-lo == 1 {
		return f(lo)
	}
	mid := lo + (hi-lo)/2
	return foldScalars(lo, mid, f) + foldScalars(mid, hi, f)
}

// saveSnapshot persists the post-aggregation state of a round for crash
// recovery.
func saveSnapshot(path string, round, iter, t0 int, dispersion float64, theta tensor.Vec, stats CommStats) error {
	st := &checkpoint.RunState{
		Version:        checkpoint.RunStateVersion,
		Round:          round,
		Iter:           iter,
		T0:             t0,
		Dispersion:     dispersion,
		Theta:          append([]float64(nil), theta...),
		Rounds:         stats.Rounds,
		Messages:       stats.Messages,
		Bytes:          stats.Bytes,
		Dropped:        stats.Dropped,
		Rejoined:       stats.Rejoined,
		Rejected:       stats.Rejected,
		SkippedRounds:  stats.SkippedRounds,
		StaleApplied:   stats.StaleApplied,
		StaleDropped:   stats.StaleDropped,
		BudgetFiltered: stats.BudgetFiltered,
	}
	if err := checkpoint.SaveRunState(path, st); err != nil {
		return fmt.Errorf("core: checkpoint round %d: %w", round, err)
	}
	return nil
}

// statsFromSnapshot rebuilds the accounting a snapshot recorded.
func statsFromSnapshot(st *checkpoint.RunState) CommStats {
	return CommStats{
		Rounds: st.Rounds, Messages: st.Messages, Bytes: st.Bytes,
		Dropped: st.Dropped, Rejoined: st.Rejoined, Rejected: st.Rejected,
		SkippedRounds: st.SkippedRounds,
		StaleApplied:  st.StaleApplied, StaleDropped: st.StaleDropped,
		BudgetFiltered: st.BudgetFiltered,
	}
}
