package core

import "net"

// newLocalListener opens a loopback listener on an ephemeral port.
func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
