package core

import (
	"testing"

	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func TestParticipationValidation(t *testing.T) {
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5, Participation: -0.1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative participation accepted")
	}
	cfg.Participation = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("participation > 1 accepted")
	}
	cfg.Participation = 0.5
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid participation rejected: %v", err)
	}
}

func TestParticipationSelector(t *testing.T) {
	t.Run("full participation", func(t *testing.T) {
		s := newParticipationSelector(Config{Participation: 0}, 5)
		sel := s.pick()
		if len(sel) != 5 {
			t.Fatalf("selected %d of 5", len(sel))
		}
		s1 := newParticipationSelector(Config{Participation: 1}, 5)
		if len(s1.pick()) != 5 {
			t.Fatal("participation=1 should select everyone")
		}
	})

	t.Run("partial deterministic", func(t *testing.T) {
		a := newParticipationSelector(Config{Participation: 0.4, Seed: 3}, 10)
		b := newParticipationSelector(Config{Participation: 0.4, Seed: 3}, 10)
		for round := 0; round < 5; round++ {
			sa, sb := a.pick(), b.pick()
			if len(sa) != 4 {
				t.Fatalf("selected %d, want ceil(0.4*10)=4", len(sa))
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatal("selection not deterministic")
				}
				if i > 0 && sa[i] <= sa[i-1] {
					t.Fatal("selection not sorted/unique")
				}
			}
		}
	})

	t.Run("at least one node", func(t *testing.T) {
		s := newParticipationSelector(Config{Participation: 0.01, Seed: 1}, 3)
		if len(s.pick()) != 1 {
			t.Fatal("tiny participation must still pick one node")
		}
	})

	t.Run("covers all nodes over time", func(t *testing.T) {
		s := newParticipationSelector(Config{Participation: 0.3, Seed: 9}, 10)
		seen := map[int]bool{}
		for round := 0; round < 50; round++ {
			for _, i := range s.pick() {
				seen[i] = true
			}
		}
		if len(seen) != 10 {
			t.Errorf("only %d/10 nodes ever selected", len(seen))
		}
	})
}

func TestTrainWithPartialParticipation(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(4))

	var roundsSeen int
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 4, Participation: 0.5,
		OnRound: func(round, iter int, theta tensor.Vec) { roundsSeen = round },
	}
	before := eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta0)
	res, err := Train(m, fed, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if roundsSeen != 10 {
		t.Errorf("rounds = %d, want 10", roundsSeen)
	}
	after := eval.GlobalMetaObjective(m, fed, cfg.Alpha, res.Theta)
	if after >= before {
		t.Errorf("partial-participation training did not reduce G(θ): %v -> %v", before, after)
	}

	// Sampling must cut traffic roughly in half relative to full
	// participation.
	full, err := Train(m, fed, theta0, Config{Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Messages >= full.Comm.Messages {
		t.Errorf("sampled run sent %d messages, full run %d", res.Comm.Messages, full.Comm.Messages)
	}
}

func TestTrainPartialParticipationDeterministic(t *testing.T) {
	fed := tinyFederation(t, 0.5, 0.5)
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 6, Participation: 0.5}
	a, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta.Dist(b.Theta) != 0 {
		t.Error("partial participation broke determinism")
	}
}
