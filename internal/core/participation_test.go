package core

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

func TestParticipationValidation(t *testing.T) {
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5, Participation: -0.1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative participation accepted")
	}
	cfg.Participation = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("participation > 1 accepted")
	}
	cfg.Participation = 0.5
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid participation rejected: %v", err)
	}
}

func TestParticipationSelector(t *testing.T) {
	t.Run("full participation", func(t *testing.T) {
		s := newParticipationSelector(Config{Participation: 0}, 5, 0)
		sel := s.pick(1)
		if len(sel) != 5 {
			t.Fatalf("selected %d of 5", len(sel))
		}
		s1 := newParticipationSelector(Config{Participation: 1}, 5, 0)
		if len(s1.pick(1)) != 5 {
			t.Fatal("participation=1 should select everyone")
		}
	})

	t.Run("partial deterministic", func(t *testing.T) {
		a := newParticipationSelector(Config{Participation: 0.4, Seed: 3}, 10, 0)
		b := newParticipationSelector(Config{Participation: 0.4, Seed: 3}, 10, 0)
		for round := 1; round <= 5; round++ {
			sa, sb := a.pick(round), b.pick(round)
			if len(sa) != 4 {
				t.Fatalf("selected %d, want ceil(0.4*10)=4", len(sa))
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatal("selection not deterministic")
				}
				if i > 0 && sa[i] <= sa[i-1] {
					t.Fatal("selection not sorted/unique")
				}
			}
		}
	})

	t.Run("at least one node", func(t *testing.T) {
		s := newParticipationSelector(Config{Participation: 0.01, Seed: 1}, 3, 0)
		if len(s.pick(1)) != 1 {
			t.Fatal("tiny participation must still pick one node")
		}
	})

	t.Run("round-keyed, not history-dependent", func(t *testing.T) {
		// A platform resuming from a round-R checkpoint builds a fresh
		// selector and asks straight for round R+1; the answer must match
		// what the uninterrupted run would have drawn.
		seq := newParticipationSelector(Config{Participation: 0.3, Seed: 11}, 10, 0)
		var want [][]int
		for round := 1; round <= 8; round++ {
			want = append(want, append([]int(nil), seq.pick(round)...))
		}
		fresh := newParticipationSelector(Config{Participation: 0.3, Seed: 11}, 10, 0)
		for _, round := range []int{6, 2, 8, 1} {
			got := fresh.pick(round)
			for i := range got {
				if got[i] != want[round-1][i] {
					t.Fatalf("round %d out-of-order pick %v, sequential run drew %v", round, got, want[round-1])
				}
			}
		}
	})

	t.Run("salt decorrelates shards", func(t *testing.T) {
		a := newParticipationSelector(Config{Participation: 0.3, Seed: 5}, 10, 0)
		b := newParticipationSelector(Config{Participation: 0.3, Seed: 5}, 10, 7)
		same := 0
		for round := 1; round <= 20; round++ {
			sa, sb := a.pick(round), b.pick(round)
			eq := true
			for i := range sa {
				if sa[i] != sb[i] {
					eq = false
					break
				}
			}
			if eq {
				same++
			}
		}
		if same == 20 {
			t.Error("different salts drew identical subsets every round")
		}
	})

	t.Run("covers all nodes over time", func(t *testing.T) {
		s := newParticipationSelector(Config{Participation: 0.3, Seed: 9}, 10, 0)
		seen := map[int]bool{}
		for round := 1; round <= 50; round++ {
			for _, i := range s.pick(round) {
				seen[i] = true
			}
		}
		if len(seen) != 10 {
			t.Errorf("only %d/10 nodes ever selected", len(seen))
		}
	})
}

func TestTrainWithPartialParticipation(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(4))

	var roundsSeen int
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 4, Participation: 0.5,
		OnRound: func(round, iter int, theta tensor.Vec) { roundsSeen = round },
	}
	before := eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta0)
	res, err := Train(m, fed, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if roundsSeen != 10 {
		t.Errorf("rounds = %d, want 10", roundsSeen)
	}
	after := eval.GlobalMetaObjective(m, fed, cfg.Alpha, res.Theta)
	if after >= before {
		t.Errorf("partial-participation training did not reduce G(θ): %v -> %v", before, after)
	}

	// Sampling must cut traffic roughly in half relative to full
	// participation.
	full, err := Train(m, fed, theta0, Config{Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Messages >= full.Comm.Messages {
		t.Errorf("sampled run sent %d messages, full run %d", res.Comm.Messages, full.Comm.Messages)
	}
}

func TestTrainPartialParticipationDeterministic(t *testing.T) {
	fed := tinyFederation(t, 0.5, 0.5)
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 6, Participation: 0.5}
	a, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta.Dist(b.Theta) != 0 {
		t.Error("partial participation broke determinism")
	}
}

// TestSampledTrainingResumesDeterministically pins the interaction between
// client sampling and checkpoint resume: because each round's subset is a
// pure function of (Seed, round), a run that crashes after round 5 and
// resumes must sample rounds 6..10 exactly as the uninterrupted run, ending
// on the bit-identical θ.
func TestSampledTrainingResumesDeterministically(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	base := Config{Alpha: 0.01, Beta: 0.01, T0: 10, Seed: 8, Participation: 0.5}

	uncut := base
	uncut.T = 100
	want, err := Train(m, fed, nil, uncut)
	if err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(t.TempDir(), "run.ck")
	first := base
	first.T = 50
	first.CheckpointPath = ck
	if _, err := Train(m, fed, nil, first); err != nil {
		t.Fatal(err)
	}
	second := base
	second.T = 100
	second.CheckpointPath = ck
	second.Resume = true
	got, err := Train(m, fed, nil, second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Theta.Dist(want.Theta) != 0 {
		t.Errorf("resumed sampled run diverged from uninterrupted run by %v", got.Theta.Dist(want.Theta))
	}
}

// TestSamplingSuspectProbedOnce pins the sampling × fault-tolerance
// interaction: probing is liveness maintenance, not participation, so a
// suspect node gets exactly one downlink (the probe) per round — never a
// probe plus a sampled broadcast, which would double-bill it — and an alive
// node gets at most the one sampled broadcast.
func TestSamplingSuspectProbedOnce(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:6]
	m := tinyModel(fed)
	rec := obs.NewRecorder()
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 60, T0: 5, Seed: 3,
		Participation: 0.5,
		RoundTimeout:  400 * time.Millisecond,
		Observer:      rec,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 2 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     9,
				Scenario: []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 6, Op: transport.OpRevive}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped == 0 {
		t.Fatal("kill scenario never dropped the node")
	}
	if rec.Count(obs.TypeProbe) == 0 {
		t.Fatal("no probes observed; suspect path never exercised")
	}

	type rn struct{ round, node int }
	downlinks := map[rn]int{}
	for _, e := range rec.Events() {
		switch e.Type {
		case obs.TypeBroadcast, obs.TypeProbe:
			downlinks[rn{e.Round, e.Node}]++
		}
	}
	for k, n := range downlinks {
		if n > 1 {
			t.Errorf("node %d billed %d downlinks in round %d; probe and broadcast overlapped", k.node, n, k.round)
		}
	}
	// And the parity invariant must survive the combination.
	if got, want := rec.Totals(), statsAsTotals(res.Comm); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
}
