package core

import (
	"fmt"

	"github.com/edgeai/fedml/internal/transport"
)

// SimNodeLink is a platform-side transport.Link whose far endpoint is a
// simulated node computed inline: Send of a round broadcast synthesizes the
// node's update synchronously (no goroutine, no channel) and the following
// Recv returns it. One SimNodeLink costs a few words of state, which is what
// lets a single machine drive 10⁵–10⁶ nodes per round through the unchanged
// shard/platform round loop (see experiments' ext-scale).
//
// The link is strict-mode, raw-codec only: it must not be wrapped in
// transport.Async (each wrap costs two goroutines, defeating the point) and
// rejects compressed broadcasts — run it with Config.RoundTimeout == 0 and
// Config.Codec empty or "raw".
type SimNodeLink struct {
	// ID is the simulated node's global index, echoed in replies.
	ID int
	// Update synthesizes the node's round reply from the broadcast
	// parameters. It owns theta (ownership transferred on Send, as for any
	// Link) and may mutate and return it in place, the allocation-free
	// idiom. localSteps is the round's dispatched T0.
	Update func(id, round, localSteps int, theta []float64) []float64

	pending *transport.Msg
	closed  bool
}

// Send accepts a platform broadcast and computes the simulated reply.
func (l *SimNodeLink) Send(m transport.Msg) error {
	if l.closed {
		return transport.ErrClosed
	}
	switch m.Kind {
	case transport.KindParams:
		if m.Codec != "" {
			return fmt.Errorf("simnode %d: compressed broadcast (codec %q); SimNodeLink is raw-only", l.ID, m.Codec)
		}
		reply := transport.Msg{
			Kind:    transport.KindUpdate,
			Round:   m.Round,
			NodeID:  l.ID,
			Version: m.Version,
			Params:  l.Update(l.ID, m.Round, m.LocalSteps, m.Params),
		}
		l.pending = &reply
		return nil
	case transport.KindDone:
		return nil
	default:
		return fmt.Errorf("simnode %d: unexpected %v", l.ID, m.Kind)
	}
}

// Recv returns the reply synthesized by the last broadcast.
func (l *SimNodeLink) Recv() (transport.Msg, error) {
	if l.closed {
		return transport.Msg{}, transport.ErrClosed
	}
	if l.pending == nil {
		// A real node would leave the caller blocked; failing loudly turns
		// the would-be deadlock into a diagnosable protocol bug.
		return transport.Msg{}, fmt.Errorf("simnode %d: recv with no pending reply", l.ID)
	}
	m := *l.pending
	l.pending = nil
	return m, nil
}

// Close implements transport.Link.
func (l *SimNodeLink) Close() error {
	l.closed = true
	l.pending = nil
	return nil
}
