package core

import (
	"errors"
	"fmt"

	"github.com/edgeai/fedml/internal/tensor"
)

// This file is the aggregation core of the layered platform: ω-weighted
// partial-sum accumulation over a global node-index range, update sanitation,
// and the shard-range planner. It is reused by the flat platform (one core
// covering the whole index space), by leaf shard aggregators (one core per
// contiguous shard), and — in its range-leaf form — by the director merging
// shard partials.
//
// The merge rule: every sum is associated by fixed midpoint recursion over
// the global node-index space — sum[lo,hi) = sum[lo,mid) + sum[mid,hi) with
// mid = lo + (hi-lo)/2, absent indices contributing the additive identity
// (no operation, no rounding). Because the association is a function of the
// index space alone, a shard covering a subtree of the recursion computes
// exactly the subtree's value, and a root that merges shard partials with
// the same recursion reproduces the flat platform's sum bit for bit.
// ShardRanges generates layouts whose boundaries fall on recursion split
// points, so two-tier aggregation is exactly equivalent to one-tier — the
// composition property behind RunDirector (see DESIGN.md §11).

// aggCore accumulates ω-weighted updates for one round. Each accepted update
// occupies the slot of its global node index; reduce folds the occupied
// slots with the midpoint-recursion merge rule.
type aggCore struct {
	// lo, hi delimit the global node-index range this core covers.
	lo, hi int
	dim    int

	// slots/wts hold the round's accepted updates and their (possibly
	// inclusion-probability-corrected) weights, indexed by globalIdx-lo.
	// A nil slot is absent (not sampled, dropped, or rejected).
	slots []tensor.Vec
	wts   []float64
	count int

	// sum is the reduction output buffer; scratch holds one temporary per
	// recursion depth so reduce allocates nothing after warm-up.
	sum     tensor.Vec
	scratch []tensor.Vec
}

// newAggCore builds a core over the global index range [lo, hi).
func newAggCore(lo, hi, dim int) *aggCore {
	return &aggCore{
		lo:    lo,
		hi:    hi,
		dim:   dim,
		slots: make([]tensor.Vec, hi-lo),
		wts:   make([]float64, hi-lo),
		sum:   tensor.NewVec(dim),
	}
}

// reset clears the round's slots.
func (a *aggCore) reset() {
	for i := range a.slots {
		a.slots[i] = nil
		a.wts[i] = 0
	}
	a.count = 0
}

// accept stores the update of global node i with aggregation weight w. The
// core takes ownership of u until the next reset.
func (a *aggCore) accept(i int, u tensor.Vec, w float64) {
	s := i - a.lo
	if a.slots[s] == nil {
		a.count++
	}
	a.slots[s] = u
	a.wts[s] = w
}

// reduce folds the occupied slots into Σ w_i·u_i with the fixed merge rule
// and returns the partial sum (valid until the next reduce), the weight sum
// folded by the same recursion, and the number of accepted updates. With no
// occupied slots the sum is zero and wsum is 0.
func (a *aggCore) reduce() (sum tensor.Vec, wsum float64, count int) {
	if a.count == 0 {
		a.sum.Zero()
		return a.sum, 0, 0
	}
	wsum, _ = a.reduceRange(a.lo, a.hi, 0, a.sum)
	return a.sum, wsum, a.count
}

// reduceRange computes the subtree sum over global indices [lo, hi) into
// dst, returning the subtree weight sum and whether any slot was present.
func (a *aggCore) reduceRange(lo, hi, depth int, dst tensor.Vec) (float64, bool) {
	if hi-lo == 1 {
		u := a.slots[lo-a.lo]
		if u == nil {
			return 0, false
		}
		w := a.wts[lo-a.lo]
		u.ScaleInto(w, dst)
		return w, true
	}
	mid := lo + (hi-lo)/2
	wl, okl := a.reduceRange(lo, mid, depth+1, dst)
	if !okl {
		// The left subtree is empty: the right subtree's value is the
		// node's value, with no merge rounding — the additive identity.
		return a.reduceRange(mid, hi, depth+1, dst)
	}
	tmp := a.tmp(depth)
	wr, okr := a.reduceRange(mid, hi, depth+1, tmp)
	if !okr {
		return wl, true
	}
	dst.AddInPlace(tmp)
	return wl + wr, true
}

// tmp returns the scratch vector for one recursion depth, growing the pool
// on first use.
func (a *aggCore) tmp(depth int) tensor.Vec {
	for len(a.scratch) <= depth {
		a.scratch = append(a.scratch, tensor.NewVec(a.dim))
	}
	return a.scratch[depth]
}

// dispersion measures the weighted mean distance of the round's accepted
// updates from center (the aggregate), the similarity proxy fed to the T0
// controller. wsum normalizes the weights; 0 is returned for empty rounds.
func (a *aggCore) dispersion(center tensor.Vec, wsum float64) float64 {
	if a.count == 0 || wsum <= 0 {
		return 0
	}
	var d float64
	for s, u := range a.slots {
		if u == nil {
			continue
		}
		d += a.wts[s] / wsum * u.Dist(center)
	}
	return d
}

// sanitize vets an update against the round's broadcast θ: updates carrying
// NaN/Inf, or drifting further from θ than the guard radius allows, are
// poison (wire corruption, a diverged node) and must not reach the
// aggregation. thetaNorm is ‖θ‖, precomputed once per round; guard <= 0
// disables the norm guard.
func sanitize(u, theta tensor.Vec, thetaNorm, guard float64) error {
	if !u.IsFinite() {
		return errors.New("update contains NaN or Inf")
	}
	if guard > 0 {
		limit := guard * (1 + thetaNorm)
		if d := u.Dist(theta); d > limit {
			return fmt.Errorf("update distance %.4g from θ exceeds guard limit %.4g", d, limit)
		}
	}
	return nil
}

// ShardRange is a contiguous global node-index range [Lo, Hi) owned by one
// shard aggregator.
type ShardRange struct {
	Lo, Hi int
}

// ShardRanges splits the global index space [0, n) into `shards` contiguous
// ranges by the same midpoint recursion the aggregation core reduces with,
// so every boundary falls on a recursion split point and shard partial sums
// compose bit-exactly to the flat sum. shards is clamped to [1, n].
func ShardRanges(n, shards int) []ShardRange {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	out := make([]ShardRange, 0, shards)
	var split func(lo, hi, s int)
	split = func(lo, hi, s int) {
		if s <= 1 || hi-lo <= 1 {
			out = append(out, ShardRange{Lo: lo, Hi: hi})
			return
		}
		mid := lo + (hi-lo)/2
		sl := s / 2
		if sl > mid-lo {
			sl = mid - lo
		}
		sr := s - sl
		if sr > hi-mid {
			sr = hi - mid
		}
		split(lo, mid, sl)
		split(mid, hi, sr)
	}
	split(0, n, shards)
	return out
}

// validateRanges checks that ranges tile [0, n) in order and that every
// boundary lies on a midpoint-recursion split point, the precondition for
// the director's bit-exact merge.
func validateRanges(n int, ranges []ShardRange) error {
	if len(ranges) == 0 {
		return errors.New("core: no shard ranges")
	}
	next := 0
	for i, r := range ranges {
		if r.Lo != next || r.Hi <= r.Lo {
			return fmt.Errorf("core: shard %d range [%d,%d) does not tile [0,%d)", i, r.Lo, r.Hi, n)
		}
		next = r.Hi
	}
	if next != n {
		return fmt.Errorf("core: shard ranges cover [0,%d), want [0,%d)", next, n)
	}
	var aligned func(lo, hi, a, b int) error
	aligned = func(lo, hi, a, b int) error {
		if b-a == 1 {
			return nil
		}
		mid := lo + (hi-lo)/2
		for k := a + 1; k < b; k++ {
			if ranges[k].Lo == mid {
				if err := aligned(lo, mid, a, k); err != nil {
					return err
				}
				return aligned(mid, hi, k, b)
			}
		}
		return fmt.Errorf("core: shard layout has no boundary at recursion split %d of [%d,%d); use ShardRanges", mid, lo, hi)
	}
	return aligned(0, n, 0, len(ranges))
}

// mergeCore folds shard partial sums with the same midpoint recursion the
// shards used internally, completing the two-tier reduction bit-exactly.
// Leaves are pre-weighted partials, so no leaf scaling is applied.
type mergeCore struct {
	ranges  []ShardRange
	dim     int
	sums    []tensor.Vec // nil = shard contributed nothing this round
	wts     []float64
	count   int
	out     tensor.Vec
	scratch []tensor.Vec
}

// newMergeCore builds the root's merge core over a validated shard layout.
func newMergeCore(ranges []ShardRange, dim int) *mergeCore {
	return &mergeCore{
		ranges: ranges,
		dim:    dim,
		sums:   make([]tensor.Vec, len(ranges)),
		wts:    make([]float64, len(ranges)),
		out:    tensor.NewVec(dim),
	}
}

func (m *mergeCore) reset() {
	for i := range m.sums {
		m.sums[i] = nil
		m.wts[i] = 0
	}
	m.count = 0
}

// accept stores shard s's round partial (Σ w·u over its accepted updates)
// and weight sum. The core takes ownership of sum until the next reset.
func (m *mergeCore) accept(s int, sum tensor.Vec, wsum float64) {
	if m.sums[s] == nil {
		m.count++
	}
	m.sums[s] = sum
	m.wts[s] = wsum
}

// reduce folds the present shard partials, returning the global partial sum
// (valid until the next reduce) and the recursion-folded weight sum.
func (m *mergeCore) reduce() (sum tensor.Vec, wsum float64) {
	if m.count == 0 {
		m.out.Zero()
		return m.out, 0
	}
	wsum, _ = m.reduceShards(0, len(m.ranges), 0, m.out)
	return m.out, wsum
}

// reduceShards computes the subtree value over the shard-leaf slice [a, b)
// into dst. The split shard is located by the recursion midpoint of the
// covered index range; validateRanges guarantees it exists.
func (m *mergeCore) reduceShards(a, b, depth int, dst tensor.Vec) (float64, bool) {
	if b-a == 1 {
		if m.sums[a] == nil {
			return 0, false
		}
		dst.CopyFrom(m.sums[a])
		return m.wts[a], true
	}
	lo, hi := m.ranges[a].Lo, m.ranges[b-1].Hi
	mid := lo + (hi-lo)/2
	split := a + 1
	for m.ranges[split].Lo != mid {
		split++
	}
	wl, okl := m.reduceShards(a, split, depth+1, dst)
	if !okl {
		return m.reduceShards(split, b, depth+1, dst)
	}
	tmp := m.tmp(depth)
	wr, okr := m.reduceShards(split, b, depth+1, tmp)
	if !okr {
		return wl, true
	}
	dst.AddInPlace(tmp)
	return wl + wr, true
}

func (m *mergeCore) tmp(depth int) tensor.Vec {
	for len(m.scratch) <= depth {
		m.scratch = append(m.scratch, tensor.NewVec(m.dim))
	}
	return m.scratch[depth]
}
