package core

import (
	"math"
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/transport"
)

// fig2aFederation builds a federation at the paper's Fig. 2a model shape
// (60 features × 10 classes ⇒ 610 parameters), small enough for CI.
func fig2aFederation(t *testing.T) *data.Federation {
	t.Helper()
	cfg := data.DefaultSyntheticConfig(0, 0)
	cfg.Nodes = 10
	cfg.Dim = 60
	cfg.Classes = 10
	cfg.MeanSamples = 20
	cfg.Seed = 11
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func meanAccuracy(acc []float64) float64 {
	var s float64
	for _, a := range acc {
		s += a
	}
	return s / float64(len(acc))
}

// TestCodecCompressionAndAccuracy is the headline acceptance claim: on the
// Fig. 2a model shape, q8 and topk cut per-round wire traffic at least 4×
// against the raw baseline (as billed by CommStats.Bytes) while landing
// within 2 percentage points of raw's final meta-test accuracy.
func TestCodecCompressionAndAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run training comparison")
	}
	fed := fig2aFederation(t)
	m := tinyModel(fed)
	base := Config{Alpha: 0.01, Beta: 0.01, T: 60, T0: 5, Seed: 3}

	run := func(spec string) (*Result, float64) {
		cfg := base
		cfg.Codec = spec
		res, err := Train(m, fed, nil, cfg)
		if err != nil {
			t.Fatalf("codec %q: %v", spec, err)
		}
		acc := eval.FinalAccuracies(m, res.Theta, fed.Targets, base.Alpha, base.T0)
		return res, meanAccuracy(acc)
	}

	raw, rawAcc := run("")
	for _, spec := range []string{"q8", "topk"} {
		res, acc := run(spec)
		if res.Comm.Messages != raw.Comm.Messages {
			t.Errorf("%s: %d messages, raw run had %d — compression must not change the protocol", spec, res.Comm.Messages, raw.Comm.Messages)
		}
		if ratio := float64(raw.Comm.Bytes) / float64(res.Comm.Bytes); ratio < 4 {
			t.Errorf("%s: %d wire bytes vs raw %d — ratio %.2fx < 4x", spec, res.Comm.Bytes, raw.Comm.Bytes, ratio)
		}
		if gap := rawAcc - acc; gap > 0.02 {
			t.Errorf("%s: meta-test accuracy %.4f vs raw %.4f — gap %.4f > 0.02", spec, acc, rawAcc, gap)
		}
	}
}

// TestCodecTopKSurvivesKillRevive proves the delta reference chain heals
// across a chaos kill/revive: the platform must resync the revived node with
// a full payload (not an undecodable delta), re-admit it, and still converge.
func TestCodecTopKSurvivesKillRevive(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 1,
		Codec:        "topk",
		RoundTimeout: 300 * time.Millisecond,
		Logf:         t.Logf,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 2 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     9,
				Scenario: []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 4, Op: transport.OpRevive}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", res.Comm.Dropped)
	}
	if res.Comm.Rejoined != 1 {
		t.Errorf("Rejoined = %d, want 1 (full resync must let the revived node back in)", res.Comm.Rejoined)
	}
	if !res.Theta.IsFinite() {
		t.Error("θ not finite")
	}

	// The compressed chaos run must track the compressed fault-free run: a
	// broken resync would silently aggregate against divergent references.
	ffCfg := Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 1, Codec: "topk"}
	ff, err := Train(m, fed, nil, ffCfg)
	if err != nil {
		t.Fatal(err)
	}
	gFF := eval.GlobalMetaObjective(m, fed, cfg.Alpha, ff.Theta)
	gChaos := eval.GlobalMetaObjective(m, fed, cfg.Alpha, res.Theta)
	if rel := math.Abs(gChaos-gFF) / math.Abs(gFF); rel > 0.05 {
		t.Errorf("chaos objective %.5f vs fault-free %.5f: relative gap %.3f > 5%%", gChaos, gFF, rel)
	}
}

// TestCodecDropForcesResyncNotDeath drills the desync path without a full
// kill: one delta update vanishes in flight, so the platform's uplink
// decoder misses a link in the reference chain. The node is marked suspect
// on the gather timeout and must rejoin via the probe's full-resync
// handshake within a round or two — never aggregate against a stale chain.
func TestCodecDropForcesResyncNotDeath(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:4]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 1,
		Codec:        "topk",
		RoundTimeout: 300 * time.Millisecond,
		Logf:         t.Logf,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 1 {
				return l
			}
			// Swallow exactly the round-3 broadcast: the node misses one
			// delta and every later one is undecodable until resync.
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     5,
				Scenario: []transport.ChaosEvent{{Round: 3, Op: transport.OpDrop}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped < 1 {
		t.Errorf("Dropped = %d, want >= 1 (missed delta must surface as a suspect)", res.Comm.Dropped)
	}
	if res.Comm.Rejoined < 1 {
		t.Errorf("Rejoined = %d, want >= 1 (node must come back after the full resync)", res.Comm.Rejoined)
	}
	if !res.Theta.IsFinite() {
		t.Error("θ not finite")
	}
}

// TestCodecObsParityUnderChaos extends the counter/event parity invariant to
// compressed runs: with topk payloads, kills, revives, and byte-level wire
// corruption in play, the event stream must still fold back into CommStats
// exactly — including the compressed byte billing.
func TestCodecObsParityUnderChaos(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m := tinyModel(fed)
	rec := obs.NewRecorder()
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 3,
		Codec:        "topk",
		RoundTimeout: 400 * time.Millisecond,
		GuardRadius:  50,
		Observer:     rec,
		WrapLink: func(i int, l transport.Link) transport.Link {
			var sc []transport.ChaosEvent
			switch i {
			case 1:
				sc = []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 5, Op: transport.OpRevive}}
			case 3:
				sc = []transport.ChaosEvent{{Round: 3, Op: transport.OpCorrupt}}
			default:
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{Seed: 100 + uint64(i), Scenario: sc})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped == 0 || res.Comm.Rejoined == 0 {
		t.Fatalf("scenario did not exercise the drop/rejoin paths: %+v", res.Comm)
	}
	if got, want := rec.Totals(), statsAsTotals(res.Comm); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
	// Compressed billing sanity: a raw run of the same shape moves 8 bytes
	// per parameter per message; this run must bill far less.
	var msgBytes int64
	var msgs int
	for _, e := range rec.Events() {
		switch e.Type {
		case obs.TypeBroadcast, obs.TypeProbe, obs.TypeUpdate:
			msgBytes += e.Bytes
			msgs++
		}
	}
	if msgBytes != res.Comm.Bytes || msgs != res.Comm.Messages {
		t.Errorf("traffic events sum to %d bytes / %d msgs, stats say %d / %d", msgBytes, msgs, res.Comm.Bytes, res.Comm.Messages)
	}
	rawPerMsg := int64(8 * m.NumParams())
	if avg := res.Comm.Bytes / int64(res.Comm.Messages); avg > rawPerMsg/2 {
		t.Errorf("average billed message %d bytes — not compressed (raw would be %d)", avg, rawPerMsg)
	}
}

func TestConfigValidateCodec(t *testing.T) {
	good := Config{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5}
	for _, spec := range []string{"", "raw", "f16", "q8", "topk", "topk:0.25"} {
		c := good
		c.Codec = spec
		if err := c.Validate(); err != nil {
			t.Errorf("Codec %q rejected: %v", spec, err)
		}
	}
	for _, spec := range []string{"gzip", "topk:0", "TOPK"} {
		c := good
		c.Codec = spec
		if err := c.Validate(); err == nil {
			t.Errorf("Codec %q accepted", spec)
		}
	}
}
