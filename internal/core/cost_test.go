package core

import (
	"math"
	"testing"
	"time"
)

func TestTimeModelValidate(t *testing.T) {
	bad := []TimeModel{
		{OneWayLatency: -time.Second},
		{BandwidthBps: -1},
		{LocalStepTime: -time.Second},
	}
	for i, tm := range bad {
		if err := tm.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
	if err := (TimeModel{}).Validate(); err != nil {
		t.Errorf("zero model rejected: %v", err)
	}
}

func TestTimeModelEstimate(t *testing.T) {
	tm := TimeModel{
		OneWayLatency: 10 * time.Millisecond,
		BandwidthBps:  1e6, // 1 MB/s
		LocalStepTime: time.Millisecond,
	}
	// 10 rounds, 100 iterations, 100 KB params:
	// per round: 2*(10ms + 100ms) = 220ms → 2.2s; compute 100ms.
	got, err := tm.Estimate(CommStats{Rounds: 10}, 100, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 2300 * time.Millisecond
	if got != want {
		t.Errorf("estimate = %v, want %v", got, want)
	}
}

// TestTimeModelEstimateObservedTraffic is the regression test for the
// 2-messages-per-round assumption: a fault-tolerant run with a drop/rejoin
// cycle carries re-probe traffic in CommStats, and the estimate must bill
// the observed Messages/Bytes, not an idealized round count.
func TestTimeModelEstimateObservedTraffic(t *testing.T) {
	tm := TimeModel{
		OneWayLatency: 10 * time.Millisecond,
		BandwidthBps:  1e6,
		LocalStepTime: time.Millisecond,
	}
	const paramBytes = 100_000
	// 10 rounds of 4 nodes (2 messages per node-round), plus 6 re-probes of
	// a dropped node before it rejoined — the traffic shape PR 2's
	// drop/rejoin protocol produces and the old formula ignored.
	stats := CommStats{
		Rounds:   10,
		Messages: 2*4*10 + 6,
		Bytes:    int64(2*4*10+6) * paramBytes,
		Dropped:  1,
		Rejoined: 1,
	}
	got, err := tm.Estimate(stats, 100, paramBytes)
	if err != nil {
		t.Fatal(err)
	}
	transfer := time.Duration(float64(stats.Bytes) / tm.BandwidthBps * float64(time.Second))
	want := time.Duration(stats.Messages)*tm.OneWayLatency + transfer + 100*tm.LocalStepTime
	if got != want {
		t.Errorf("observed-traffic estimate = %v, want %v", got, want)
	}
	// Same run priced by the fallback (no observed traffic) must be cheaper:
	// it misses the re-probes and the extra per-node messages.
	fallback, err := tm.Estimate(CommStats{Rounds: 10}, 100, paramBytes)
	if err != nil {
		t.Fatal(err)
	}
	if fallback >= got {
		t.Errorf("fallback %v not below observed-traffic estimate %v", fallback, got)
	}
}

func TestTimeModelEstimateNegativeTraffic(t *testing.T) {
	tm := TimeModel{}
	if _, err := tm.Estimate(CommStats{Rounds: 1, Messages: -1}, 1, 1); err == nil {
		t.Error("negative message count accepted")
	}
	if _, err := tm.Estimate(CommStats{Rounds: 1, Messages: 1, Bytes: -8}, 1, 1); err == nil {
		t.Error("negative byte count accepted")
	}
}

func TestTimeModelInfiniteBandwidth(t *testing.T) {
	tm := TimeModel{OneWayLatency: time.Millisecond}
	got, err := tm.Estimate(CommStats{Rounds: 5}, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10*time.Millisecond {
		t.Errorf("infinite-bandwidth estimate = %v, want 10ms", got)
	}
}

func TestTimeModelEstimateRejections(t *testing.T) {
	tm := TimeModel{}
	if _, err := tm.Estimate(CommStats{Rounds: 0}, 10, 10); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := tm.Estimate(CommStats{Rounds: 1}, -1, 10); err == nil {
		t.Error("negative iters accepted")
	}
	if _, err := (TimeModel{BandwidthBps: -1}).Estimate(CommStats{Rounds: 1}, 1, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestTimeModelT0TradeOff(t *testing.T) {
	// On a slow network, fewer rounds (larger T0) must be faster at equal
	// iteration budget; on a fast network the difference must collapse.
	slow := TimeModel{OneWayLatency: 500 * time.Millisecond, BandwidthBps: 1e4, LocalStepTime: time.Millisecond}
	fast := TimeModel{OneWayLatency: 100 * time.Microsecond, BandwidthBps: 1e9, LocalStepTime: time.Millisecond}
	const totalIters, paramBytes = 200, 8 * 7850

	slowFewRounds, err := slow.Estimate(CommStats{Rounds: 10}, totalIters, paramBytes)
	if err != nil {
		t.Fatal(err)
	}
	slowManyRounds, err := slow.Estimate(CommStats{Rounds: 200}, totalIters, paramBytes)
	if err != nil {
		t.Fatal(err)
	}
	if slowFewRounds >= slowManyRounds {
		t.Errorf("slow network: fewer rounds not faster (%v vs %v)", slowFewRounds, slowManyRounds)
	}

	fastFew, _ := fast.Estimate(CommStats{Rounds: 10}, totalIters, paramBytes)
	fastMany, _ := fast.Estimate(CommStats{Rounds: 200}, totalIters, paramBytes)
	ratioSlow := float64(slowManyRounds) / float64(slowFewRounds)
	ratioFast := float64(fastMany) / float64(fastFew)
	if ratioFast >= ratioSlow {
		t.Errorf("T0 should matter less on fast networks: ratios %v vs %v", ratioFast, ratioSlow)
	}
}

func TestEdgeProfiles(t *testing.T) {
	ps := EdgeProfiles(time.Millisecond)
	for _, name := range []string{"lora-like", "wifi", "datacenter"} {
		tm, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if err := tm.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
		if tm.LocalStepTime != time.Millisecond {
			t.Errorf("profile %s lost the step time", name)
		}
	}
}

// TestTimeModelEstimateSaturates is the regression test for the int64
// overflow: huge byte counts on slow links (lora-like profile at ext-scale
// node counts) used to overflow the float64→Duration conversion and return
// a negative duration. The estimate must saturate at MaxInt64 instead.
func TestTimeModelEstimateSaturates(t *testing.T) {
	tm := EdgeProfiles(time.Millisecond)["lora-like"]
	// ~10⁶ nodes × 10⁵ rounds × 1 MB params ≈ 2·10¹⁷ bytes at 6 kB/s:
	// ≈3·10¹³ seconds, ≫ MaxInt64 ns (≈9.2·10⁹ s).
	stats := CommStats{Rounds: 100_000, Messages: 2_000_000_000, Bytes: 2e17}
	got, err := tm.Estimate(stats, 1_000_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 {
		t.Fatalf("estimate overflowed negative: %v", got)
	}
	if got != time.Duration(math.MaxInt64) {
		t.Fatalf("estimate = %v, want saturation at MaxInt64", got)
	}

	// The message-latency product alone must saturate too.
	latOnly := TimeModel{OneWayLatency: time.Hour}
	got, err = latOnly.Estimate(CommStats{Rounds: 1, Messages: math.MaxInt32 * 1000, Bytes: 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != time.Duration(math.MaxInt64) {
		t.Fatalf("latency-only estimate = %v, want saturation", got)
	}

	// Sane inputs keep their exact value.
	tm2 := TimeModel{OneWayLatency: 10 * time.Millisecond, BandwidthBps: 1e6, LocalStepTime: time.Millisecond}
	got, err = tm2.Estimate(CommStats{Rounds: 10}, 100, 100_000)
	if err != nil || got != 2300*time.Millisecond {
		t.Fatalf("saturating path changed the in-range estimate: %v, %v", got, err)
	}
}

func TestEnergyModelValidate(t *testing.T) {
	bad := []EnergyModel{
		{TxJPerByte: -1},
		{RxJPerByte: -1},
		{ComputeJPerIter: -1},
		{TxJPerByte: math.NaN()},
		{RxJPerByte: math.Inf(1)},
	}
	for i, em := range bad {
		if err := em.Validate(); err == nil {
			t.Errorf("bad energy model %d accepted", i)
		}
	}
	if err := (EnergyModel{}).Validate(); err != nil {
		t.Errorf("zero energy model rejected: %v", err)
	}
}

func TestEnergyModelRoundJoules(t *testing.T) {
	em := EnergyModel{TxJPerByte: 2, RxJPerByte: 3, ComputeJPerIter: 5}
	if got := em.RoundJoules(10, 100, 7); got != 3*10+2*100+5*7 {
		t.Fatalf("RoundJoules = %v, want %v", got, 3*10+2*100+5*7)
	}
}

// TestEnergyProfiles pins the qualitative shape the ext-energy experiment
// relies on: the lora-like profile is radio-dominated (a single KB costs
// more than many iterations of compute), and profiles parallel EdgeProfiles.
func TestEnergyProfiles(t *testing.T) {
	profiles := EnergyProfiles(5e-3)
	for name := range EdgeProfiles(time.Millisecond) {
		em, ok := profiles[name]
		if !ok {
			t.Fatalf("no energy profile for edge profile %q", name)
		}
		if err := em.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	lora := profiles["lora-like"]
	if radio := lora.RoundJoules(1024, 1024, 0); radio < 100*lora.RoundJoules(0, 0, 1) {
		t.Fatalf("lora-like is not radio-dominated: 1 KiB each way = %v J vs 1 iter = %v J", radio, lora.RoundJoules(0, 0, 1))
	}
}
