package core

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// subsets enumerates all k-element subsets of {0..n-1}.
func subsets(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= n-(k-len(cur)); i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

// TestUnbiasedEstimatorExact proves the estimator property by exhaustive
// enumeration over every C(n,k) subset, through the same aggregation-core
// path the platform uses: the Horvitz–Thompson aggregate (weights ω/π,
// denominator = full weight total) averages to the full-participation
// aggregate exactly, while the responder renormalization is biased for
// unequal weights.
func TestUnbiasedEstimatorExact(t *testing.T) {
	const n, k, dim = 5, 2, 3
	us, _ := randomUpdates(42, n, dim)
	// Skewed weights make the renormalization bias visible.
	ws := []float64{10, 1, 1, 1, 1}
	pi := float64(k) / float64(n)
	fullW := foldScalars(0, n, func(i int) float64 { return ws[i] })

	// Full participation reference.
	ref := newAggCore(0, n, dim)
	for i := 0; i < n; i++ {
		ref.accept(i, us[i].Clone(), ws[i])
	}
	refSum, refW, _ := ref.reduce()
	full := tensor.NewVec(dim)
	refSum.ScaleInto(1/refW, full)

	all := subsets(n, k)
	avgHT := tensor.NewVec(dim)
	avgRenorm := tensor.NewVec(dim)
	agg := newAggCore(0, n, dim)
	for _, sub := range all {
		agg.reset()
		for _, i := range sub {
			agg.accept(i, us[i].Clone(), ws[i]/pi)
		}
		sum, selSum, _ := agg.reduce()
		for d := range avgHT {
			avgHT[d] += sum[d] / fullW / float64(len(all))
			// The biased estimator renormalizes the corrected weights over
			// the responders, exactly what the platform does without the
			// flag (the ω/π factors cancel).
			avgRenorm[d] += sum[d] / selSum / float64(len(all))
		}
	}

	var htErr, renormErr float64
	for d := range full {
		htErr = math.Max(htErr, math.Abs(avgHT[d]-full[d]))
		renormErr = math.Max(renormErr, math.Abs(avgRenorm[d]-full[d]))
	}
	if htErr > 1e-12 {
		t.Errorf("HT estimator biased: max error %v over exhaustive subsets", htErr)
	}
	if renormErr < 1e-3 {
		t.Errorf("renormalized estimator unexpectedly unbiased (max error %v); test lost its teeth", renormErr)
	}
}

// TestUnbiasedParticipationTraining drives the flag through real training:
// the run must stay deterministic, converge, and — under full participation
// — be a bit-exact no-op.
func TestUnbiasedParticipationTraining(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	theta0 := m.InitParams(rng.New(4))

	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 100, T0: 10, Seed: 4, Participation: 0.5, UnbiasedParticipation: true}
	a, err := Train(m, fed, theta0.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(m, fed, theta0.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta.Dist(b.Theta) != 0 {
		t.Error("unbiased participation broke determinism")
	}
	if !a.Theta.IsFinite() {
		t.Fatal("unbiased training produced non-finite θ")
	}

	biased := cfg
	biased.UnbiasedParticipation = false
	c, err := Train(m, fed, theta0.Clone(), biased)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta.Dist(c.Theta) == 0 {
		t.Error("flag had no effect under active sampling")
	}

	// Under full participation the estimator reduces to the plain
	// renormalization: the flag must be a bit-exact no-op.
	fullCfg := Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 10, Seed: 4, UnbiasedParticipation: true}
	d, err := Train(m, fed, theta0.Clone(), fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	fullCfg.UnbiasedParticipation = false
	e, err := Train(m, fed, theta0.Clone(), fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Theta.Dist(e.Theta) != 0 {
		t.Error("flag changed θ under full participation")
	}
}

// TestUnbiasedSimulatedAggregation pins the statistical claim end to end on
// the real platform loop with simulated nodes that return fixed points: over
// many sampled rounds, the per-round HT aggregates must average closer to
// the full-participation aggregate than the renormalized ones, with the
// heavy-weight node's over-counting driving the gap.
func TestUnbiasedSimulatedAggregation(t *testing.T) {
	const n, dim, rounds = 5, 4, 400
	centers, _ := randomUpdates(7, n, dim)
	ws := []float64{10, 1, 1, 1, 1}
	wsum := 0.0
	full := tensor.NewVec(dim)
	for i := range centers {
		wsum += ws[i]
	}
	for i := range centers {
		for d := range full {
			full[d] += ws[i] / wsum * centers[i][d]
		}
	}

	run := func(unbiased bool) tensor.Vec {
		theta0 := tensor.NewVec(dim)
		mean := tensor.NewVec(dim)
		cfg := Config{
			Alpha: 0.01, Beta: 0.01, T: rounds, T0: 1, Seed: 12,
			Participation: 0.4, UnbiasedParticipation: unbiased,
			OnRound: func(round, iter int, theta tensor.Vec) {
				for d := range mean {
					mean[d] += theta[d] / rounds
				}
			},
		}
		ls := make([]SimNodeLink, n)
		lp := make([]transport.Link, n)
		for i := range ls {
			ls[i] = SimNodeLink{ID: i, Update: func(id, round, t0 int, theta []float64) []float64 {
				copy(theta, centers[id])
				return theta
			}}
			lp[i] = &ls[i]
		}
		if _, _, err := RunPlatform(lp, ws, theta0, cfg); err != nil {
			t.Fatal(err)
		}
		return mean
	}

	htMean := run(true)
	renormMean := run(false)
	var htErr, renormErr float64
	for d := range full {
		htErr = math.Max(htErr, math.Abs(htMean[d]-full[d]))
		renormErr = math.Max(renormErr, math.Abs(renormMean[d]-full[d]))
	}
	if htErr >= renormErr {
		t.Errorf("HT mean error %v not better than renormalized %v over %d rounds", htErr, renormErr, rounds)
	}
}
