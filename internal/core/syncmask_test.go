package core

import (
	"math"
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/codec"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// headMLP builds a two-layer MLP over fed together with a head-only sync
// mask: unlike the softmax model (whose whole vector is the head), the MLP
// has a real frozen block, so head-only sync is structurally meaningful.
func headMLP(t *testing.T, fed *data.Federation, warmup int) (*nn.MLP, *SyncMaskPolicy) {
	t.Helper()
	m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, 8, fed.NumClasses}, L2: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ResolveSyncMask("head:1", m)
	if err != nil {
		t.Fatal(err)
	}
	p.Warmup = warmup
	return m, p
}

func inMask(i int, mask []codec.Range) bool {
	for _, r := range mask {
		if i >= r.Lo && i < r.Hi {
			return true
		}
	}
	return false
}

// assertFrozen checks that theta equals ref bit-exactly on every coordinate
// outside mask — the core invariant of partial-parameter sync.
func assertFrozen(t *testing.T, ctx string, theta, ref tensor.Vec, mask []codec.Range) {
	t.Helper()
	for i := range theta {
		if inMask(i, mask) {
			continue
		}
		if theta[i] != ref[i] {
			t.Fatalf("%s: frozen coordinate %d drifted: %v != %v", ctx, i, theta[i], ref[i])
		}
	}
}

func TestSyncMaskSchedule(t *testing.T) {
	p := &SyncMaskPolicy{Warmup: 3, Ranges: []codec.Range{{Lo: 2, Hi: 5}}}
	for round := 1; round <= 3; round++ {
		if p.maskFor(round) != nil {
			t.Errorf("round %d: mask active during warmup", round)
		}
	}
	if got := p.maskFor(4); !codec.EqualRanges(got, p.Ranges) {
		t.Errorf("round 4 mask = %v, want %v", got, p.Ranges)
	}
	// frozenAt engages one round before maskFor: the round-Warmup aggregation
	// must already pin the frozen coordinates, because its broadcast is the
	// reference the nodes scatter masked payloads into.
	if p.frozenAt(2) {
		t.Error("frozen before the last full broadcast")
	}
	if !p.frozenAt(3) || !p.frozenAt(4) {
		t.Error("not frozen from round Warmup on")
	}
	var nilP *SyncMaskPolicy
	if nilP.maskFor(9) != nil || nilP.frozenAt(9) {
		t.Error("nil policy must be inert")
	}
}

func TestSyncMaskPolicyValidate(t *testing.T) {
	good := &SyncMaskPolicy{Warmup: 1, Ranges: []codec.Range{{Lo: 0, Hi: 2}, {Lo: 4, Hi: 6}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good policy rejected: %v", err)
	}
	bad := []*SyncMaskPolicy{
		{Warmup: 0, Ranges: []codec.Range{{Lo: 0, Hi: 2}}},
		{Warmup: 1},
		{Warmup: 1, Ranges: []codec.Range{{Lo: 3, Hi: 3}}},
		{Warmup: 1, Ranges: []codec.Range{{Lo: 4, Hi: 6}, {Lo: 0, Hi: 2}}},
		{Warmup: 1, Ranges: []codec.Range{{Lo: 0, Hi: 4}, {Lo: 3, Hi: 6}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
	if err := good.validateDim(6); err != nil {
		t.Errorf("mask fitting dim 6 rejected: %v", err)
	}
	if err := good.validateDim(5); err == nil {
		t.Error("mask overrunning the model accepted")
	}
}

func TestRestoreFrozenAndProjectMask(t *testing.T) {
	mask := []codec.Range{{Lo: 2, Hi: 4}, {Lo: 7, Hi: 9}}
	theta := make(tensor.Vec, 10)
	saved := make(tensor.Vec, 10)
	for i := range theta {
		theta[i], saved[i] = 1, 2
	}
	restoreFrozen(theta, saved, mask)
	for i := range theta {
		want := 2.0
		if inMask(i, mask) {
			want = 1.0 // aggregated values survive inside the mask
		}
		if theta[i] != want {
			t.Errorf("restoreFrozen: coord %d = %v, want %v", i, theta[i], want)
		}
	}

	u := make([]float64, 10)
	ref := make([]float64, 10)
	for i := range u {
		u[i], ref[i] = 5, 6
	}
	projectMask(u, ref, mask)
	for i := range u {
		want := 6.0
		if inMask(i, mask) {
			want = 5.0 // the node's values survive inside the mask
		}
		if u[i] != want {
			t.Errorf("projectMask: coord %d = %v, want %v", i, u[i], want)
		}
	}
}

func TestResolveSyncMask(t *testing.T) {
	if p, err := ResolveSyncMask("", nil); p != nil || err != nil {
		t.Errorf("empty spec: (%v, %v), want (nil, nil)", p, err)
	}
	// The softmax model is all head: w then b coalesce into one full range.
	sm := &nn.SoftmaxRegression{In: 3, Classes: 2}
	p, err := ResolveSyncMask("head:2", sm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Warmup != 2 || !codec.EqualRanges(p.Ranges, []codec.Range{{Lo: 0, Hi: 8}}) {
		t.Errorf("softmax mask = %+v, want one coalesced [0,8) range", p)
	}
	// The MLP head is the adjacent head.w + head.b pair at the tail.
	m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{4, 3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	p, err = ResolveSyncMask("head:5", m)
	if err != nil {
		t.Fatal(err)
	}
	want := []codec.Range{{Lo: 15, Hi: 23}}
	if p.Warmup != 5 || !codec.EqualRanges(p.Ranges, want) {
		t.Errorf("MLP mask = %+v, want ranges %v", p, want)
	}
	for _, spec := range []string{"head", "head:", "head:0", "head:-1", "head:x", "tail:3", ":3"} {
		if _, err := ResolveSyncMask(spec, m); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestConfigValidateBudgetAndMask(t *testing.T) {
	ok := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5}
	mask := &SyncMaskPolicy{Warmup: 1, Ranges: []codec.Range{{Lo: 0, Hi: 2}}}
	good := []func(c *Config){
		func(c *Config) { c.EnergyBudget = 0 },
		func(c *Config) { c.EnergyBudget = math.Inf(1) }, // +Inf = unlimited, no Energy model needed
		func(c *Config) { c.EnergyBudget = 0.5; c.Energy = &EnergyModel{TxJPerByte: 1e-6} },
		func(c *Config) { c.RoundDeadline = time.Second; c.Time = &TimeModel{OneWayLatency: time.Millisecond} },
		func(c *Config) { c.SyncMask = mask },
		func(c *Config) { c.EnergyScale = []float64{1, 2, 0.5} },
	}
	for i, mod := range good {
		c := ok
		mod(&c)
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []func(c *Config){
		// NaN fails every ordered comparison, so only an explicit check
		// catches it; ±Inf rates are equally poisonous.
		func(c *Config) { c.Alpha = math.NaN() },
		func(c *Config) { c.Alpha = math.Inf(1) },
		func(c *Config) { c.Beta = math.NaN() },
		func(c *Config) { c.GuardRadius = math.NaN() },
		func(c *Config) { c.StalenessDecay = math.NaN() },
		func(c *Config) { c.AsyncQuorum = math.NaN() },
		func(c *Config) { c.Participation = math.NaN() },
		func(c *Config) { c.EnergyBudget = math.NaN() },
		func(c *Config) { c.EnergyBudget = -1 },
		func(c *Config) { c.EnergyBudget = 0.5 }, // finite budget without an Energy model
		func(c *Config) { c.EnergyBudget = 0.5; c.Energy = &EnergyModel{TxJPerByte: -1} },
		func(c *Config) { c.Energy = &EnergyModel{RxJPerByte: math.NaN()} },
		func(c *Config) { c.RoundDeadline = -time.Second },
		func(c *Config) { c.RoundDeadline = time.Second }, // deadline without a Time model
		func(c *Config) { c.RoundDeadline = time.Second; c.Time = &TimeModel{OneWayLatency: -1} },
		func(c *Config) { c.EnergyScale = []float64{1, 0, 1} },
		func(c *Config) { c.EnergyScale = []float64{1, math.NaN()} },
		func(c *Config) { c.EnergyScale = []float64{-2} },
		func(c *Config) { c.SyncMask = &SyncMaskPolicy{Warmup: 0, Ranges: mask.Ranges} },
		func(c *Config) { c.SyncMask = &SyncMaskPolicy{Warmup: 1} },
		func(c *Config) { c.SyncMask = mask; c.Participation = 0.5; c.UnbiasedParticipation = true },
	}
	for i, mod := range bad {
		c := ok
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBudgetPolicyFilter(t *testing.T) {
	weights := []float64{1, 4, 1}
	dim := 10 // raw wire model: 80 bytes per message
	base := Config{
		Energy:       &EnergyModel{TxJPerByte: 1, RxJPerByte: 1},
		EnergyBudget: 200,
		EnergyScale:  []float64{1, 1, 2},
	}
	bp, err := newBudgetPolicy(base, weights, 0, dim)
	if err != nil {
		t.Fatal(err)
	}
	// Node joules at t0=0: scale × (80 rx + 80 tx) = {160, 160, 320}.
	var rejected []int
	sel := []int{0, 1, 2}
	got := bp.filter(1, 0, sel, func(i int, joules float64) {
		rejected = append(rejected, i)
		if joules != 320 {
			t.Errorf("node %d rejected at %v J, want 320", i, joules)
		}
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 || len(rejected) != 1 || rejected[0] != 2 {
		t.Errorf("filter kept %v rejected %v, want [0 1] / [2]", got, rejected)
	}

	// All affordable: the exact input slice comes back — the bit-identity
	// guarantee is "the budget layer did not exist".
	bp.budget = 1000
	got = bp.filter(1, 0, sel, func(int, float64) { t.Error("affordable node rejected") })
	if &got[0] != &sel[0] || len(got) != len(sel) {
		t.Error("filter did not return the input slice untouched")
	}

	// None affordable: backfill the single best progress-per-joule node.
	// ω/J = {1/160, 4/160, 1/320} → node 1 wins.
	bp.budget = 100
	rejected = nil
	got = bp.filter(1, 0, sel, func(i int, _ float64) { rejected = append(rejected, i) })
	if len(got) != 1 || got[0] != 1 || len(rejected) != 2 {
		t.Errorf("backfill kept %v rejected %v, want [1] / the other two", got, rejected)
	}

	// Deadline constraint alone: 2 messages × 100ms latency > 150ms kills
	// everyone, so backfill again keeps exactly the best node.
	dl := Config{
		Time:          &TimeModel{OneWayLatency: 100 * time.Millisecond},
		RoundDeadline: 150 * time.Millisecond,
	}
	bp, err = newBudgetPolicy(dl, weights, 0, dim)
	if err != nil {
		t.Fatal(err)
	}
	got = bp.filter(1, 0, sel, func(int, float64) {})
	if len(got) != 1 {
		t.Errorf("deadline backfill kept %v, want exactly one node", got)
	}

	// No constraint configured: no policy at all.
	if bp, err := newBudgetPolicy(Config{EnergyBudget: math.Inf(1)}, weights, 0, dim); bp != nil || err != nil {
		t.Errorf("unconstrained config built a policy: (%v, %v)", bp, err)
	}
}

func TestBudgetRoundBytesTracksMask(t *testing.T) {
	c := Config{
		Energy:       &EnergyModel{TxJPerByte: 1},
		EnergyBudget: 1,
		SyncMask:     &SyncMaskPolicy{Warmup: 2, Ranges: []codec.Range{{Lo: 8, Hi: 10}}},
	}
	bp, err := newBudgetPolicy(c, []float64{1}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	full := bp.roundBytes(1)
	masked := bp.roundBytes(3)
	if masked >= full {
		t.Errorf("masked round priced at %d B, full at %d B — the budget must see the mask discount", masked, full)
	}
	// Masked wire model: 9-byte header + 8 bytes per range + the inner
	// codec's payload over the 2 masked coordinates (raw here: mask-only
	// runs ride on the raw codec).
	inner, err := codec.WireSize(codec.Raw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 9 + 8*1 + inner; masked != want {
		t.Errorf("masked bytes = %d, want %d", masked, want)
	}
}

// TestBudgetUnlimitedBitIdentity is the acceptance golden test: with budgets
// infinite (or merely never binding) the budget layer must leave the
// round-keyed sampling trajectory bit-identical — same per-round θ, same
// traffic, zero filtered nodes.
func TestBudgetUnlimitedBitIdentity(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	run := func(mod func(c *Config)) ([]tensor.Vec, CommStats) {
		var traj []tensor.Vec
		cfg := Config{
			Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 5,
			Participation: 0.5,
			OnRound: func(round, iter int, theta tensor.Vec) {
				traj = append(traj, theta.Clone())
			},
		}
		if mod != nil {
			mod(&cfg)
		}
		res, err := Train(m, fed, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return traj, res.Comm
	}

	baseTraj, baseComm := run(nil)
	for name, mod := range map[string]func(c *Config){
		"huge finite budget": func(c *Config) {
			c.Energy = &EnergyModel{TxJPerByte: 1.2e-3, RxJPerByte: 9e-4, ComputeJPerIter: 1e-3}
			c.EnergyBudget = 1e9
		},
		"infinite budget": func(c *Config) { c.EnergyBudget = math.Inf(1) },
		"loose deadline": func(c *Config) {
			c.Time = &TimeModel{OneWayLatency: time.Millisecond, BandwidthBps: 1e6}
			c.RoundDeadline = time.Hour
		},
	} {
		traj, comm := run(mod)
		if comm != baseComm {
			t.Errorf("%s: CommStats %+v != unbudgeted %+v", name, comm, baseComm)
		}
		if len(traj) != len(baseTraj) {
			t.Fatalf("%s: %d rounds, unbudgeted run had %d", name, len(traj), len(baseTraj))
		}
		for r := range traj {
			for i := range traj[r] {
				if traj[r][i] != baseTraj[r][i] {
					t.Fatalf("%s: round %d coord %d: %v != %v (trajectory not bit-identical)",
						name, r+1, i, traj[r][i], baseTraj[r][i])
				}
			}
		}
	}
}

// TestBudgetFiltersExpensiveNode prices one node out of every round and
// checks the accounting on both the counter and the event side.
func TestBudgetFiltersExpensiveNode(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	scale := make([]float64, len(fed.Sources))
	for i := range scale {
		scale[i] = 1
	}
	hungry := len(fed.Sources) - 1
	scale[hungry] = 1000 // a radio a thousand times hungrier than the rest
	rec := obs.NewRecorder()
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 5,
		Energy:       &EnergyModel{TxJPerByte: 1e-6, RxJPerByte: 1e-6, ComputeJPerIter: 1e-4},
		EnergyBudget: 0.01,
		EnergyScale:  scale,
		Observer:     rec,
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Full participation, 8 rounds: the hungry node is filtered from every one.
	if res.Comm.BudgetFiltered != 8 {
		t.Errorf("BudgetFiltered = %d, want 8", res.Comm.BudgetFiltered)
	}
	for _, e := range rec.Events() {
		if e.Type == obs.TypeBudgetFilter && e.Node != hungry {
			t.Errorf("round %d filtered node %d; only node %d is unaffordable", e.Round, e.Node, hungry)
		}
	}
	if got, want := rec.Totals(), statsAsTotals(res.Comm); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
	if !res.Theta.IsFinite() {
		t.Error("θ not finite")
	}
}

// TestSyncMaskHeadOnlyTraining is the end-to-end partial-sync contract on a
// model with a real frozen block: after warmup, only head coordinates move
// (bit-frozen feature layers), the wire bill drops, and the masked rounds
// still make progress on the meta-objective.
func TestSyncMaskHeadOnlyTraining(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m, p := headMLP(t, fed, 2)
	base := Config{Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 7}

	full, err := Train(m, fed, nil, base)
	if err != nil {
		t.Fatal(err)
	}

	var warmRef tensor.Vec
	cfg := base
	cfg.SyncMask = p
	cfg.OnRound = func(round, iter int, theta tensor.Vec) {
		if round == p.Warmup {
			warmRef = theta.Clone()
		}
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warmRef == nil {
		t.Fatal("warmup round never aggregated")
	}
	assertFrozen(t, "head-only run", res.Theta, warmRef, p.Ranges)

	if res.Comm.Messages != full.Comm.Messages {
		t.Errorf("masked run sent %d messages, full run %d — masking must not change the protocol", res.Comm.Messages, full.Comm.Messages)
	}
	if ratio := float64(res.Comm.Bytes) / float64(full.Comm.Bytes); ratio > 0.55 {
		t.Errorf("masked run moved %d bytes vs full %d (%.0f%%) — head-only sync saved too little", res.Comm.Bytes, full.Comm.Bytes, 100*ratio)
	}

	gWarm := eval.GlobalMetaObjective(m, fed, base.Alpha, warmRef)
	gFinal := eval.GlobalMetaObjective(m, fed, base.Alpha, res.Theta)
	if gFinal >= gWarm {
		t.Errorf("masked rounds made no progress: G %.5f at warmup, %.5f at end", gWarm, gFinal)
	}
}

// TestSyncMaskComposesWithCodecs runs head-only sync with each compressing
// inner codec: the structural mask and the per-message compression stack, the
// frozen block stays bit-frozen, and the wire bill drops below mask-only.
func TestSyncMaskComposesWithCodecs(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m, p := headMLP(t, fed, 2)
	run := func(spec string) (*Result, tensor.Vec) {
		var warmRef tensor.Vec
		cfg := Config{
			Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 7,
			Codec:    spec,
			SyncMask: p,
			OnRound: func(round, iter int, theta tensor.Vec) {
				if round == p.Warmup {
					warmRef = theta.Clone()
				}
			},
		}
		res, err := Train(m, fed, nil, cfg)
		if err != nil {
			t.Fatalf("codec %q: %v", spec, err)
		}
		return res, warmRef
	}

	raw, _ := run("")
	for _, spec := range []string{"q8", "topk"} {
		res, warmRef := run(spec)
		assertFrozen(t, "masked "+spec, res.Theta, warmRef, p.Ranges)
		if res.Comm.Bytes >= raw.Comm.Bytes {
			t.Errorf("%s over mask moved %d bytes, mask alone %d — inner compression bought nothing", spec, res.Comm.Bytes, raw.Comm.Bytes)
		}
		if !res.Theta.IsFinite() {
			t.Errorf("%s: θ not finite", spec)
		}
	}
}

// TestSyncMaskKillReviveMaskedResync is the cheap recovery path: a transient
// kill/revive with node state intact must heal with masked resyncs only —
// an inner full sync over the masked set, never a full-vector payload.
func TestSyncMaskKillReviveMaskedResync(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m, p := headMLP(t, fed, 2)
	rec := obs.NewRecorder()
	var warmRef tensor.Vec
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 1,
		SyncMask:     p,
		RoundTimeout: 300 * time.Millisecond,
		Observer:     rec,
		Logf:         t.Logf,
		OnRound: func(round, iter int, theta tensor.Vec) {
			if round == p.Warmup {
				warmRef = theta.Clone()
			}
		},
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 2 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     9,
				Scenario: []transport.ChaosEvent{{Round: 3, Op: transport.OpKill}, {Round: 5, Op: transport.OpRevive}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped != 1 || res.Comm.Rejoined != 1 {
		t.Errorf("Dropped/Rejoined = %d/%d, want 1/1", res.Comm.Dropped, res.Comm.Rejoined)
	}
	assertFrozen(t, "kill/revive run", res.Theta, warmRef, p.Ranges)

	// The revived node kept its scatter reference, so every resync offer must
	// stay masked: one masked transition per link when the warmup ends, and
	// not a single full-payload escalation.
	masked, fullEsc := 0, 0
	for _, e := range rec.Events() {
		if e.Type != obs.TypeMaskSync {
			continue
		}
		switch e.Cause {
		case "masked":
			masked++
		case "full":
			fullEsc++
		}
	}
	if masked != len(fed.Sources) {
		t.Errorf("%d masked transitions, want %d (one per link at round Warmup+1)", masked, len(fed.Sources))
	}
	if fullEsc != 0 {
		t.Errorf("%d full-payload escalations — a transient fault must resync the masked set only", fullEsc)
	}
	if got, want := rec.Totals(), statsAsTotals(res.Comm); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
}

// TestSyncMaskEscalatedFullResync is the process-restart-style recovery path:
// a node unreachable long enough that masked resync offers keep failing must
// be escalated to a full unmasked payload (rebuilding its scatter reference
// from nothing) and still rejoin — with the frozen block intact, because the
// full reply the escalation triggers is projected onto the mask.
func TestSyncMaskEscalatedFullResync(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m, p := headMLP(t, fed, 2)
	rec := obs.NewRecorder()
	var warmRef tensor.Vec
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 50, T0: 5, Seed: 1,
		SyncMask:     p,
		RoundTimeout: 300 * time.Millisecond,
		Observer:     rec,
		Logf:         t.Logf,
		OnRound: func(round, iter int, theta tensor.Vec) {
			if round == p.Warmup {
				warmRef = theta.Clone()
			}
		},
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 2 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     9,
				Scenario: []transport.ChaosEvent{{Round: 3, Op: transport.OpKill}, {Round: 8, Op: transport.OpRevive}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Rejoined < 1 {
		t.Errorf("Rejoined = %d, want >= 1 (escalated full resync must let the node back in)", res.Comm.Rejoined)
	}
	assertFrozen(t, "escalation run", res.Theta, warmRef, p.Ranges)

	// Two consecutive failed masked probes must have escalated link 2 to at
	// least one full unmasked payload after the warmup.
	fullEsc := 0
	for _, e := range rec.Events() {
		if e.Type == obs.TypeMaskSync && e.Cause == "full" && e.Round > p.Warmup {
			if e.Node != 2 {
				t.Errorf("full-payload escalation on node %d in round %d; only node 2 was faulted", e.Node, e.Round)
			}
			fullEsc++
		}
	}
	if fullEsc == 0 {
		t.Error("no full-payload escalation observed — repeated probe failures must clear the mask")
	}
	if got, want := rec.Totals(), statsAsTotals(res.Comm); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
}
