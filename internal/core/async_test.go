package core

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// TestAsyncDegenerateMatchesSync pins the degenerate-case equality guarantee:
// with StalenessDecay 1, MaxStaleness 0, AsyncQuorum 1, and every node
// answering within the round budget, the async loop dispatches to everyone,
// waits for everyone, and must produce a θ bit-identical to RunPlatform's.
func TestAsyncDegenerateMatchesSync(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	base := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 3,
		RoundTimeout: 5 * time.Second,
	}

	sync, err := Train(m, fed, nil, base)
	if err != nil {
		t.Fatal(err)
	}

	asyncCfg := base
	asyncCfg.Async = true
	asyncCfg.StalenessDecay = 1
	asyncCfg.MaxStaleness = 0
	asyncCfg.AsyncQuorum = 1
	async, err := Train(m, fed, nil, asyncCfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(sync.Theta) != len(async.Theta) {
		t.Fatalf("θ lengths differ: %d vs %d", len(sync.Theta), len(async.Theta))
	}
	for j := range sync.Theta {
		if sync.Theta[j] != async.Theta[j] {
			t.Fatalf("θ[%d] differs: sync %v, async %v (degenerate async must be bit-identical)",
				j, sync.Theta[j], async.Theta[j])
		}
	}
	if sync.Comm.Rounds != async.Comm.Rounds {
		t.Errorf("rounds differ: sync %d, async %d", sync.Comm.Rounds, async.Comm.Rounds)
	}
	if async.Comm.StaleApplied != 0 || async.Comm.StaleDropped != 0 {
		t.Errorf("degenerate run saw staleness: %+v", async.Comm)
	}
}

// holdingNode echoes every assignment immediately except the first regular
// one, which it holds until release fires; the held reply goes out with the
// version it was assigned at, which by then is stale.
func holdingNode(l transport.Link, id int, release <-chan struct{}) {
	held := false
	for {
		m, err := l.Recv()
		if err != nil || m.Kind == transport.KindDone {
			return
		}
		if m.Kind != transport.KindParams {
			continue
		}
		if !held {
			held = true
			<-release
		}
		if l.Send(transport.Msg{
			Kind: transport.KindUpdate, Round: m.Round, NodeID: id,
			Params: m.Params, Version: m.Version,
		}) != nil {
			return
		}
	}
}

// echoingNode answers every assignment immediately with a zero-distance
// update at the echoed version.
func echoingNode(l transport.Link, id int) {
	for {
		m, err := l.Recv()
		if err != nil || m.Kind == transport.KindDone {
			return
		}
		if m.Kind != transport.KindParams {
			continue
		}
		if l.Send(transport.Msg{
			Kind: transport.KindUpdate, Round: m.Round, NodeID: id,
			Params: m.Params, Version: m.Version,
		}) != nil {
			return
		}
	}
}

// asyncHarness drives RunAsyncPlatform against two echo nodes and one
// holding node released after the aggregation count reaches releaseAt.
// It returns the run's stats and the recorder that watched it.
func asyncHarness(t *testing.T, cfg Config, releaseAt int) (CommStats, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder()
	cfg.Observer = rec
	release := make(chan struct{})
	released := false
	inner := cfg.OnRound
	aggs := 0
	cfg.OnRound = func(round, iter int, theta tensor.Vec) {
		aggs++
		if aggs >= releaseAt && !released {
			released = true
			close(release)
			// Give the released node time to queue its stale reply before
			// the next round's sweep looks for it.
			time.Sleep(20 * time.Millisecond)
		}
		if inner != nil {
			inner(round, iter, theta)
		}
	}

	const n = 3
	links := make([]transport.Link, n)
	nodeLinks := make([]transport.Link, n)
	for i := 0; i < n; i++ {
		links[i], nodeLinks[i] = transport.Pair()
	}
	go echoingNode(nodeLinks[0], 0)
	go echoingNode(nodeLinks[1], 1)
	go holdingNode(nodeLinks[2], 2, release)
	defer func() {
		for i := 0; i < n; i++ {
			_ = links[i].Close()
			_ = nodeLinks[i].Close()
		}
	}()

	theta0 := tensor.Vec{1, 2, 3, 4}
	theta, stats, err := RunAsyncPlatform(links, []float64{1, 1, 1}, theta0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !theta.IsFinite() {
		t.Error("θ not finite")
	}
	if !released {
		t.Fatal("holding node never released; scenario is vacuous")
	}
	return stats, rec
}

// TestAsyncStaleApply delivers one update two-plus versions late, inside the
// drop bound: it must be applied (StaleApplied), not dropped, the node must
// never be suspected, and the event stream must fold back to the stats
// exactly (counter/event parity including the stale counters).
func TestAsyncStaleApply(t *testing.T) {
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 1,
		RoundTimeout: 400 * time.Millisecond,
		Async:        true, StalenessDecay: 0.5, MaxStaleness: 50, AsyncQuorum: 0.6,
	}
	stats, rec := asyncHarness(t, cfg, 2)
	if stats.StaleApplied == 0 {
		t.Errorf("StaleApplied = 0, want > 0 (held update released after 2 aggregations)")
	}
	if stats.StaleDropped != 0 {
		t.Errorf("StaleDropped = %d, want 0 (bound is 50)", stats.StaleDropped)
	}
	if stats.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (a slow node inside the bound is not a suspect)", stats.Dropped)
	}
	if got, want := rec.Totals(), statsAsTotals(stats); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
	// The stale-apply event must carry the staleness as its value.
	for _, e := range rec.Events() {
		if e.Type == obs.TypeStaleApply && e.Value < 1 {
			t.Errorf("stale_apply event with staleness %v < 1", e.Value)
		}
	}
}

// TestAsyncStaleDropKeepsNode delivers one update past MaxStaleness: the
// round-start sweep must discard it (StaleDropped) but keep the node — an
// answer past the bound proves liveness, so no suspect/drop — and parity
// must hold.
func TestAsyncStaleDropKeepsNode(t *testing.T) {
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 1,
		RoundTimeout: 400 * time.Millisecond,
		Async:        true, StalenessDecay: 1, MaxStaleness: 0, AsyncQuorum: 0.6,
	}
	stats, rec := asyncHarness(t, cfg, 1)
	if stats.StaleDropped == 0 {
		t.Errorf("StaleDropped = 0, want > 0 (held update is one version stale, bound is 0)")
	}
	if stats.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (late-but-arrived must not suspect the node)", stats.Dropped)
	}
	if got, want := rec.Totals(), statsAsTotals(stats); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
}

// TestAsyncSilentStragglerSuspectedAndRejoins exercises the suspect path: a
// node that goes completely dark past the staleness bound must be suspected,
// then re-admitted through the ordinary probe/rejoin machinery once it wakes
// up — and the books must balance.
func TestAsyncSilentStragglerSuspectedAndRejoins(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m := tinyModel(fed)
	rec := obs.NewRecorder()
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 2,
		RoundTimeout: 300 * time.Millisecond,
		GuardRadius:  50,
		Observer:     rec,
		Async:        true, StalenessDecay: 0.5, MaxStaleness: 2, AsyncQuorum: 0.6,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 2 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     9,
				Scenario: []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 6, Op: transport.OpRevive}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped == 0 {
		t.Errorf("Dropped = 0, want > 0 (killed node past the staleness bound)")
	}
	if res.Comm.Rejoined == 0 {
		t.Errorf("Rejoined = 0, want > 0 (revived node must come back via probe)")
	}
	if got, want := rec.Totals(), statsAsTotals(res.Comm); got != want {
		t.Errorf("event stream folds to %+v, CommStats says %+v", got, want)
	}
}

// TestAsyncStragglerThroughput is the headline robustness claim: with one
// node at 10× the latency of its peers, the async loop must complete at
// least twice the rounds per wall-clock second of the sync gather barrier
// while landing within 5% of the fault-free objective.
func TestAsyncStragglerThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second straggler benchmark")
	}
	if raceEnabled {
		t.Skip("wall-clock speedup assertion is meaningless under race instrumentation")
	}
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	base := Config{Alpha: 0.01, Beta: 0.01, T: 60, T0: 5, Seed: 3}

	ff, err := Train(m, fed, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	gFF := eval.GlobalMetaObjective(m, fed, base.Alpha, ff.Theta)

	// One straggler at 10× the per-message latency of everyone else.
	straggled := func(cfg Config) Config {
		cfg.RoundTimeout = 2 * time.Second
		cfg.GuardRadius = 50
		cfg.WrapLink = func(i int, l transport.Link) transport.Link {
			lat := 2 * time.Millisecond
			if i == 3 {
				lat = 20 * time.Millisecond
			}
			return transport.NewChaos(l, transport.ChaosConfig{Seed: 40 + uint64(i), Latency: lat})
		}
		return cfg
	}

	runTimed := func(cfg Config) (*Result, float64) {
		t.Helper()
		start := time.Now()
		res, err := Train(m, fed, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		if res.Comm.Rounds == 0 || elapsed <= 0 {
			t.Fatalf("degenerate measurement: %d rounds in %.3fs", res.Comm.Rounds, elapsed)
		}
		return res, float64(res.Comm.Rounds) / elapsed
	}

	syncRes, syncRate := runTimed(straggled(base))

	asyncCfg := straggled(base)
	asyncCfg.Async = true
	asyncCfg.StalenessDecay = 0.5
	asyncCfg.MaxStaleness = 20
	asyncCfg.AsyncQuorum = 0.8
	asyncRes, asyncRate := runTimed(asyncCfg)

	if asyncRate < 2*syncRate {
		t.Errorf("async %.1f rounds/s vs sync %.1f rounds/s: want >= 2x (straggler still sets the clock)",
			asyncRate, syncRate)
	}
	gAsync := eval.GlobalMetaObjective(m, fed, base.Alpha, asyncRes.Theta)
	if rel := math.Abs(gAsync-gFF) / math.Abs(gFF); rel > 0.05 {
		t.Errorf("async objective %.5f vs fault-free %.5f: relative gap %.3f > 5%%", gAsync, gFF, rel)
	}
	t.Logf("sync: %d rounds at %.1f/s; async: %d rounds at %.1f/s (%.1fx), objective gap %.4f",
		syncRes.Comm.Rounds, syncRate, asyncRes.Comm.Rounds, asyncRate, asyncRate/syncRate,
		math.Abs(gAsync-gFF)/math.Abs(gFF))
}

// TestAsyncCheckpointResume crashes an async run mid-flight and resumes it:
// the θ-version rides on the persisted Rounds counter, so the resumed run
// must pick up where the snapshot left off and finish with exactly the same
// total round count as an uninterrupted run.
func TestAsyncCheckpointResume(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:6]
	m := tinyModel(fed)
	ckPath := filepath.Join(t.TempDir(), "async.state")
	const wantRounds = 8 // T/T0

	base := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 2,
		RoundTimeout: 2 * time.Second,
		Async:        true, StalenessDecay: 1, MaxStaleness: 0, AsyncQuorum: 1,
		CheckpointPath: ckPath, CheckpointEvery: 1,
	}

	// Crash after round 3: severing every node link makes the next dispatch
	// suspect everyone and abort below MinNodes — with the round-3 snapshot
	// already on disk.
	var crashLinks []transport.Link
	crashCfg := base
	crashCfg.OnRound = func(round, iter int, theta tensor.Vec) {
		if round == 3 {
			for _, l := range crashLinks {
				_ = l.Close()
			}
		}
	}
	{
		n := len(fed.Sources)
		links := make([]transport.Link, n)
		for i := 0; i < n; i++ {
			p, nl := transport.Pair()
			links[i] = p
			crashLinks = append(crashLinks, nl)
			go func(i int, l transport.Link) {
				_ = RunNode(l, NodeConfig{ID: i, Model: m, Data: fed.Sources[i], Shared: crashCfg})
			}(i, nl)
		}
		_, _, err := RunAsyncPlatform(links, fed.Weights(), m.InitParams(rng.New(crashCfg.Seed)), crashCfg)
		if err == nil {
			t.Fatal("crashed run reported success")
		}
		for _, l := range links {
			_ = l.Close()
		}
	}

	resumeCfg := base
	resumeCfg.Resume = true
	lastRound := 0
	resumeCfg.OnRound = func(round, iter int, theta tensor.Vec) { lastRound = round }
	res, err := Train(m, fed, nil, resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Rounds != wantRounds {
		t.Errorf("resumed run: total rounds = %d, want %d", res.Comm.Rounds, wantRounds)
	}
	if lastRound != wantRounds {
		t.Errorf("resumed run finished at round %d, want %d", lastRound, wantRounds)
	}
	if !res.Theta.IsFinite() {
		t.Error("θ not finite after resume")
	}
}

// TestAsyncConfigValidation pins the async knobs' validation surface.
func TestAsyncConfigValidation(t *testing.T) {
	good := Config{
		Alpha: 0.1, Beta: 0.1, T: 10, T0: 5,
		RoundTimeout: time.Second,
		Async:        true, StalenessDecay: 0.5, MaxStaleness: 3, AsyncQuorum: 0.8,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good async config rejected: %v", err)
	}
	bad := []Config{
		func() Config { c := good; c.RoundTimeout = 0; return c }(), // async needs a round budget
		func() Config { c := good; c.StalenessDecay = -0.1; return c }(),
		func() Config { c := good; c.StalenessDecay = 1.5; return c }(),
		func() Config { c := good; c.MaxStaleness = -1; return c }(),
		func() Config { c := good; c.AsyncQuorum = -0.2; return c }(),
		func() Config { c := good; c.AsyncQuorum = 1.2; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad async config %d accepted", i)
		}
	}
	// RunAsyncPlatform validates even when callers bypass Train.
	if _, _, err := RunAsyncPlatform(nil, nil, tensor.Vec{1}, Config{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5}); err == nil {
		t.Error("RunAsyncPlatform accepted a config without RoundTimeout")
	}
}
