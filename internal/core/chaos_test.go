package core

import (
	"errors"
	"fmt"
	"math"
	"net"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// TestChaosKillsRejoinsAndConverges is the headline resilience scenario:
// two nodes are killed mid-run and revived a few rounds later, and a third
// node's update is corrupted on the wire. The run must drop and re-admit
// the flapping nodes, reject the poison via the sanitation guard, and still
// land within 5% of the fault-free meta-objective.
func TestChaosKillsRejoinsAndConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario")
	}
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	base := Config{Alpha: 0.01, Beta: 0.01, T: 60, T0: 5, Seed: 3}

	ff, err := Train(m, fed, nil, base)
	if err != nil {
		t.Fatal(err)
	}

	chaosCfg := base
	chaosCfg.RoundTimeout = 400 * time.Millisecond
	chaosCfg.GuardRadius = 50
	chaosCfg.Logf = t.Logf
	chaosCfg.WrapLink = func(i int, l transport.Link) transport.Link {
		var sc []transport.ChaosEvent
		switch i {
		case 1:
			sc = []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 5, Op: transport.OpRevive}}
		case 4:
			sc = []transport.ChaosEvent{{Round: 3, Op: transport.OpKill}, {Round: 6, Op: transport.OpRevive}}
		case 7:
			sc = []transport.ChaosEvent{{Round: 4, Op: transport.OpCorrupt}}
		default:
			return l
		}
		return transport.NewChaos(l, transport.ChaosConfig{Seed: 100 + uint64(i), Scenario: sc})
	}
	res, err := Train(m, fed, nil, chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped < 2 {
		t.Errorf("Dropped = %d, want >= 2 (two killed nodes)", res.Comm.Dropped)
	}
	if res.Comm.Rejoined < 2 {
		t.Errorf("Rejoined = %d, want >= 2 (both revived nodes re-admitted)", res.Comm.Rejoined)
	}
	if res.Comm.Rejected < 1 {
		t.Errorf("Rejected = %d, want >= 1 (corrupted update sanitized)", res.Comm.Rejected)
	}
	gFF := eval.GlobalMetaObjective(m, fed, base.Alpha, ff.Theta)
	gChaos := eval.GlobalMetaObjective(m, fed, base.Alpha, res.Theta)
	if rel := math.Abs(gChaos-gFF) / math.Abs(gFF); rel > 0.05 {
		t.Errorf("chaos objective %.5f vs fault-free %.5f: relative gap %.3f > 5%%", gChaos, gFF, rel)
	}
}

// TestRejoinAfterKillWindow drills the suspect/re-probe path directly: one
// node goes dark for two rounds and must come back, with both transitions
// counted exactly once.
func TestRejoinAfterKillWindow(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 30, T0: 5, Seed: 1,
		RoundTimeout: 300 * time.Millisecond,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 2 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     9,
				Scenario: []transport.ChaosEvent{{Round: 2, Op: transport.OpKill}, {Round: 4, Op: transport.OpRevive}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", res.Comm.Dropped)
	}
	if res.Comm.Rejoined != 1 {
		t.Errorf("Rejoined = %d, want 1", res.Comm.Rejoined)
	}
	if !res.Theta.IsFinite() {
		t.Error("θ not finite")
	}
}

// fakeNode answers every broadcast with a scripted update vector.
func fakeNode(l transport.Link, id int, params func(m transport.Msg) []float64) {
	for {
		m, err := l.Recv()
		if err != nil || m.Kind == transport.KindDone {
			return
		}
		_ = l.Send(transport.Msg{Kind: transport.KindUpdate, Round: m.Round, NodeID: id, Params: params(m)})
	}
}

// strictPair builds a 2-node strict-mode harness: node 0 is a healthy
// echoer, node 1 is the misbehaving fake under test.
func strictPair(t *testing.T, bad func(m transport.Msg) (id int, params []float64)) error {
	t.Helper()
	p0, n0 := transport.Pair()
	p1, n1 := transport.Pair()
	defer p0.Close()
	defer p1.Close()
	go fakeNode(n0, 0, func(m transport.Msg) []float64 { return m.Params })
	go func() {
		for {
			m, err := n1.Recv()
			if err != nil || m.Kind == transport.KindDone {
				return
			}
			id, params := bad(m)
			_ = n1.Send(transport.Msg{Kind: transport.KindUpdate, Round: m.Round, NodeID: id, Params: params})
		}
	}()
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1}
	theta0 := tensor.Vec{0.1, 0.2, 0.3}
	_, _, err := RunPlatform([]transport.Link{p0, p1}, []float64{0.5, 0.5}, theta0, cfg)
	return err
}

func TestSanitationStrictModeAbortsOnNaN(t *testing.T) {
	err := strictPair(t, func(m transport.Msg) (int, []float64) {
		u := append([]float64(nil), m.Params...)
		u[0] = math.NaN()
		return 1, u
	})
	if err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("strict mode accepted a NaN update: %v", err)
	}
}

func TestSanitationStrictModeGuardRadius(t *testing.T) {
	p0, n0 := transport.Pair()
	p1, n1 := transport.Pair()
	defer p0.Close()
	defer p1.Close()
	go fakeNode(n0, 0, func(m transport.Msg) []float64 { return m.Params })
	go fakeNode(n1, 1, func(m transport.Msg) []float64 {
		u := append([]float64(nil), m.Params...)
		for i := range u {
			u[i] *= 1e9 // norm explosion, still finite
		}
		return u
	})
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1, GuardRadius: 10}
	_, _, err := RunPlatform([]transport.Link{p0, p1}, []float64{0.5, 0.5}, tensor.Vec{1, 2, 3}, cfg)
	if err == nil || !strings.Contains(err.Error(), "guard") {
		t.Fatalf("strict mode accepted a norm-exploding update: %v", err)
	}
}

func TestSanitationFaultTolerantRejectsAndContinues(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:5]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 30, T0: 5, Seed: 1,
		RoundTimeout: 300 * time.Millisecond,
		GuardRadius:  50,
		WrapLink: func(i int, l transport.Link) transport.Link {
			if i != 3 {
				return l
			}
			return transport.NewChaos(l, transport.ChaosConfig{
				Seed:     4,
				Scenario: []transport.ChaosEvent{{Round: 2, Op: transport.OpCorrupt}},
			})
		},
	}
	res, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", res.Comm.Rejected)
	}
	if res.Comm.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (corruption must not evict the node)", res.Comm.Dropped)
	}
	if !res.Theta.IsFinite() {
		t.Error("θ poisoned despite sanitation")
	}
}

func TestAllUpdatesRejectedEventuallyAborts(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:3]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 1000, T0: 5, Seed: 1,
		RoundTimeout: time.Second,
		GuardRadius:  1e-12, // rejects every honest update
	}
	_, err := Train(m, fed, nil, cfg)
	if err == nil || !strings.Contains(err.Error(), "without usable updates") {
		t.Fatalf("run with a guard that rejects everything did not abort: %v", err)
	}
}

func TestNodeIDMisrouteDetected(t *testing.T) {
	// The fake claims node 0's identity — the platform must refuse to
	// aggregate two links under one id.
	err := strictPair(t, func(m transport.Msg) (int, []float64) { return 0, m.Params })
	if !errors.Is(err, ErrProtocol) || !strings.Contains(err.Error(), "claimed by links") {
		t.Fatalf("duplicated NodeID aggregated silently: %v", err)
	}
}

func TestNodeIDRebindDetected(t *testing.T) {
	// The fake changes identity between rounds on the same link.
	var calls atomic.Int64
	err := strictPair(t, func(m transport.Msg) (int, []float64) {
		if calls.Add(1) == 1 {
			return 5, m.Params
		}
		return 6, m.Params
	})
	if !errors.Is(err, ErrProtocol) || !strings.Contains(err.Error(), "bound to node") {
		t.Fatalf("NodeID rebind aggregated silently: %v", err)
	}
}

func TestShutdownFailureNotCountedAsDrop(t *testing.T) {
	// A node that vanishes right after its final update: the Done sweep
	// fails, but that is a shutdown event, not a drop, and must never log a
	// bogus negative round.
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:3]
	m := tinyModel(fed)
	var logged []string
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 10, T0: 10, Seed: 1,
		RoundTimeout: 500 * time.Millisecond,
		Logf: func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
	}
	n := len(fed.Sources)
	links := make([]transport.Link, n)
	for i := 0; i < n; i++ {
		p, nl := transport.Pair()
		links[i] = p
		if i == 2 {
			go func(l transport.Link) {
				m, err := l.Recv()
				if err != nil {
					return
				}
				_ = l.Send(transport.Msg{Kind: transport.KindUpdate, Round: m.Round, NodeID: 2, Params: m.Params})
				l.Close() // gone before the Done sweep
			}(nl)
			continue
		}
		go func(i int, l transport.Link) {
			_ = RunNode(l, NodeConfig{ID: i, Model: m, Data: fed.Sources[i], Shared: cfg})
			l.Close()
		}(i, nl)
	}
	_, stats, err := RunPlatform(links, fed.Weights(), m.InitParams(rng.New(1)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (shutdown failures are not drops)", stats.Dropped)
	}
	for _, line := range logged {
		if strings.Contains(line, "round -1") {
			t.Errorf("bogus shutdown log line: %q", line)
		}
	}
}

// flakyLink fails every third operation once with a transient error.
type flakyLink struct {
	transport.Link
	ops      atomic.Int64
	injected atomic.Int64
}

var errFlaky = errors.New("transient carrier hiccup")

func (f *flakyLink) fail() bool {
	if f.ops.Add(1)%3 == 0 {
		f.injected.Add(1)
		return true
	}
	return false
}

func (f *flakyLink) Send(m transport.Msg) error {
	if f.fail() {
		return errFlaky
	}
	return f.Link.Send(m)
}

func (f *flakyLink) Recv() (transport.Msg, error) {
	if f.fail() {
		return transport.Msg{}, errFlaky
	}
	return f.Link.Recv()
}

func TestNodeRetriesTransientErrors(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:3]
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 20, T0: 5, Seed: 1}

	n := len(fed.Sources)
	links := make([]transport.Link, n)
	flaky := &flakyLink{}
	for i := 0; i < n; i++ {
		p, nl := transport.Pair()
		links[i] = p
		if i == 1 {
			flaky.Link = nl
			nl = flaky
		}
		go func(i int, l transport.Link) {
			_ = RunNode(l, NodeConfig{
				ID: i, Model: m, Data: fed.Sources[i], Shared: cfg,
				Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond},
			})
		}(i, nl)
	}
	theta, _, err := RunPlatform(links, fed.Weights(), m.InitParams(rng.New(1)), cfg)
	if err != nil {
		t.Fatalf("strict run failed despite node-side retries: %v", err)
	}
	if !theta.IsFinite() {
		t.Error("θ not finite")
	}
	if flaky.injected.Load() == 0 {
		t.Error("flaky link never injected a failure; test is vacuous")
	}
}

func TestNodeRedialAfterLinkDeath(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	m := tinyModel(fed)
	cfg := Config{Alpha: 0.01, Beta: 0.01, T: 10, T0: 5, Seed: 1}

	p1, n1 := transport.Pair()
	p2, n2 := transport.Pair()
	var redialed atomic.Int64
	nodeDone := make(chan error, 1)
	go func() {
		nodeDone <- RunNode(n1, NodeConfig{
			ID: 0, Model: m, Data: fed.Sources[0], Shared: cfg,
			Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
			Redial: func() (transport.Link, error) {
				redialed.Add(1)
				return n2, nil
			},
		})
	}()

	theta0 := m.InitParams(rng.New(1))
	// Round 1 over the first link.
	if err := p1.Send(transport.Msg{Kind: transport.KindParams, Round: 1, Params: theta0.Clone(), LocalSteps: 5}); err != nil {
		t.Fatal(err)
	}
	if m1, err := p1.Recv(); err != nil || m1.Round != 1 {
		t.Fatalf("round 1 update: %v", err)
	}
	// The connection dies; the node must back off and redial onto link 2.
	p1.Close()
	if err := p2.Send(transport.Msg{Kind: transport.KindParams, Round: 2, Params: theta0.Clone(), LocalSteps: 5}); err != nil {
		t.Fatal(err)
	}
	if m2, err := p2.Recv(); err != nil || m2.Round != 2 {
		t.Fatalf("round 2 update after redial: %v", err)
	}
	if err := p2.Send(transport.Msg{Kind: transport.KindDone}); err != nil {
		t.Fatal(err)
	}
	if err := <-nodeDone; err != nil {
		t.Fatalf("node did not survive the redial: %v", err)
	}
	if redialed.Load() == 0 {
		t.Error("redial hook never invoked")
	}
}

func TestTCPConnectionKilledMidRound(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:4]
	m := tinyModel(fed)
	cfg := Config{
		Alpha: 0.01, Beta: 0.01, T: 20, T0: 10, Seed: 1,
		RoundTimeout: time.Second,
	}

	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	n := len(fed.Sources)
	accepted := make(chan []transport.Link, 1)
	go func() {
		links, err := transport.Accept(ln, n)
		if err != nil {
			t.Error(err)
			accepted <- nil
			return
		}
		accepted <- links
	}()

	// Three healthy TCP nodes plus one whose connection is severed abruptly
	// after its first update (a mid-run power loss).
	for i := 0; i < n-1; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, c net.Conn) {
			l := transport.NewConnLink(c)
			_ = RunNode(l, NodeConfig{ID: i, Model: m, Data: fed.Sources[i], Shared: cfg})
			l.Close()
		}(i, conn)
	}
	killerConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	go func(c net.Conn) {
		l := transport.NewConnLink(c)
		msg, err := l.Recv()
		if err != nil {
			return
		}
		_ = l.Send(transport.Msg{Kind: transport.KindUpdate, Round: msg.Round, NodeID: 3, Params: msg.Params})
		_ = c.Close() // abrupt kill: no goodbye, socket just dies
	}(killerConn)

	links := <-accepted
	if links == nil {
		t.Fatal("accept failed")
	}
	weights := []float64{1, 1, 1, 1}
	theta, stats, err := RunPlatform(links, weights, m.InitParams(rng.New(1)), cfg)
	if err != nil {
		t.Fatalf("platform did not survive the TCP kill: %v", err)
	}
	if stats.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", stats.Dropped)
	}
	if !theta.IsFinite() {
		t.Error("θ not finite")
	}
}

func TestCheckpointResumeAfterCrash(t *testing.T) {
	fed := tinyFederation(t, 0, 0)
	fed.Sources = fed.Sources[:6]
	m := tinyModel(fed)
	ckPath := filepath.Join(t.TempDir(), "run.state")
	const wantRounds = 8 // T/T0

	runPlatformOnce := func(cfg Config) (CommStats, int, error) {
		// Install the round tracker before spawning nodes: the node goroutines
		// copy cfg, so it must not be mutated once they are running.
		lastRound := 0
		inner := cfg.OnRound
		cfg.OnRound = func(round, iter int, theta tensor.Vec) {
			lastRound = round
			if inner != nil {
				inner(round, iter, theta)
			}
		}
		n := len(fed.Sources)
		links := make([]transport.Link, n)
		nodeLinks := make([]transport.Link, n)
		for i := 0; i < n; i++ {
			links[i], nodeLinks[i] = transport.Pair()
			go func(i int, l transport.Link) {
				_ = RunNode(l, NodeConfig{ID: i, Model: m, Data: fed.Sources[i], Shared: cfg})
			}(i, nodeLinks[i])
		}
		_, stats, err := RunPlatform(links, fed.Weights(), m.InitParams(rng.New(cfg.Seed)), cfg)
		for _, l := range links {
			_ = l.Close()
		}
		for _, l := range nodeLinks {
			_ = l.Close()
		}
		return stats, lastRound, err
	}

	base := Config{
		Alpha: 0.01, Beta: 0.01, T: 40, T0: 5, Seed: 2,
		CheckpointPath: ckPath, CheckpointEvery: 1,
	}

	// First run "crashes" after round 3: the crash hook severs every node
	// link, so the round-4 broadcast fails and the strict platform aborts —
	// with the round-3 snapshot already on disk.
	var crashLinks []transport.Link
	crashCfg := base
	crashCfg.OnRound = func(round, iter int, theta tensor.Vec) {
		if round == 3 {
			for _, l := range crashLinks {
				_ = l.Close()
			}
		}
	}
	{
		n := len(fed.Sources)
		links := make([]transport.Link, n)
		for i := 0; i < n; i++ {
			p, nl := transport.Pair()
			links[i] = p
			crashLinks = append(crashLinks, nl)
			go func(i int, l transport.Link) {
				_ = RunNode(l, NodeConfig{ID: i, Model: m, Data: fed.Sources[i], Shared: crashCfg})
			}(i, nl)
		}
		_, _, err := RunPlatform(links, fed.Weights(), m.InitParams(rng.New(crashCfg.Seed)), crashCfg)
		if err == nil {
			t.Fatal("crashed run reported success")
		}
		for _, l := range links {
			_ = l.Close()
		}
	}

	// Restart with Resume: the platform must pick up at round 4 and finish
	// with the same total round count as an uninterrupted run.
	resumeCfg := base
	resumeCfg.Resume = true
	stats, lastRound, err := runPlatformOnce(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != wantRounds {
		t.Errorf("resumed run: total rounds = %d, want %d", stats.Rounds, wantRounds)
	}
	if lastRound != wantRounds {
		t.Errorf("resumed run finished at round %d, want %d", lastRound, wantRounds)
	}

	// A Resume with no snapshot on disk is a fresh run, so supervisors can
	// restart unconditionally.
	freshPath := filepath.Join(t.TempDir(), "fresh.state")
	freshCfg := base
	freshCfg.CheckpointPath = freshPath
	freshCfg.Resume = true
	stats2, lastRound2, err := runPlatformOnce(freshCfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Rounds != wantRounds || lastRound2 != wantRounds {
		t.Errorf("fresh resume run: rounds = %d last = %d, want %d", stats2.Rounds, lastRound2, wantRounds)
	}
}

func TestResilienceConfigValidation(t *testing.T) {
	good := Config{Alpha: 0.1, Beta: 0.1, T: 10, T0: 5}
	bad := []Config{
		func() Config { c := good; c.GuardRadius = -1; return c }(),
		func() Config { c := good; c.ProbeTimeout = -time.Second; return c }(),
		func() Config { c := good; c.CheckpointEvery = -1; return c }(),
		func() Config { c := good; c.Resume = true; return c }(), // no path
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad resilience config %d accepted", i)
		}
	}
	ok := good
	ok.GuardRadius = 10
	ok.CheckpointPath = "x"
	ok.Resume = true
	ok.CheckpointEvery = 2
	ok.ProbeTimeout = time.Second
	if err := ok.Validate(); err != nil {
		t.Errorf("good resilience config rejected: %v", err)
	}
}

// Keep the data import used even if federation helpers change shape.
var _ = data.Sample{}
