package core

import (
	"fmt"
	"math"
	"time"
)

// TimeModel estimates the wall-clock duration of a federated training run
// on an edge deployment. The paper motivates the T0 knob by the
// communication bottleneck of wireless edge networks; this model makes the
// trade-off quantitative: each round costs one uplink and one downlink of
// the full parameter vector plus T0 local iterations of compute, and nodes
// work in parallel, so rounds dominate when the network is slow and local
// compute dominates when it is fast.
type TimeModel struct {
	// OneWayLatency is the per-message network latency.
	OneWayLatency time.Duration
	// BandwidthBps is the link bandwidth in bytes per second (0 = infinite).
	BandwidthBps float64
	// LocalStepTime is the time one local meta-iteration takes on a node.
	LocalStepTime time.Duration
}

// Validate checks the model.
func (tm TimeModel) Validate() error {
	switch {
	case tm.OneWayLatency < 0:
		return fmt.Errorf("core: negative latency %v", tm.OneWayLatency)
	case tm.BandwidthBps < 0:
		return fmt.Errorf("core: negative bandwidth %v", tm.BandwidthBps)
	case tm.LocalStepTime < 0:
		return fmt.Errorf("core: negative step time %v", tm.LocalStepTime)
	}
	return nil
}

// Estimate returns the modelled wall-clock time of a run that produced
// stats over totalIters local iterations with paramBytes-sized parameter
// messages.
//
// When stats carries observed traffic (Messages > 0) the communication cost
// is billed from it directly — Messages one-way latencies plus Bytes over
// the shared access link — so re-probe traffic, rejected updates, and
// messages lost to drops (which CommStats counts per the attempted/delivered
// semantics documented on CommStats.Messages) all price in. The previous
// formula assumed exactly 2 messages per round and silently undercounted
// any run with fault-tolerant re-probes.
//
// When Messages is zero (a hand-built CommStats from a round count alone,
// as the what-if experiments use) it falls back to the idealized 2 messages
// of paramBytes per round, which reproduces the old behavior exactly.
func (tm TimeModel) Estimate(stats CommStats, totalIters, paramBytes int) (time.Duration, error) {
	if err := tm.Validate(); err != nil {
		return 0, err
	}
	if stats.Rounds <= 0 || totalIters < 0 || paramBytes < 0 {
		return 0, fmt.Errorf("core: invalid run shape rounds=%d iters=%d bytes=%d", stats.Rounds, totalIters, paramBytes)
	}
	if stats.Messages < 0 || stats.Bytes < 0 {
		return 0, fmt.Errorf("core: invalid traffic counts messages=%d bytes=%d", stats.Messages, stats.Bytes)
	}
	msgs := stats.Messages
	bytes := stats.Bytes
	if msgs == 0 {
		msgs = 2 * stats.Rounds // idealized downlink + uplink per round
		bytes = int64(msgs) * int64(paramBytes)
	}
	// Every term saturates at MaxInt64 instead of wrapping: huge byte
	// counts on slow links (a lora-like profile at fleet-scale node counts)
	// used to overflow the float64→Duration conversion and come back
	// negative.
	var transfer time.Duration
	if tm.BandwidthBps > 0 {
		transfer = durationFromSeconds(float64(bytes) / tm.BandwidthBps)
	}
	comm := satAddDuration(satMulDuration(msgs, tm.OneWayLatency), transfer)
	compute := satMulDuration(totalIters, tm.LocalStepTime)
	return satAddDuration(comm, compute), nil
}

// durationFromSeconds converts non-negative seconds to a Duration,
// saturating at MaxInt64 where the naive conversion overflows int64 (the
// result of such a conversion is platform-dependent and typically negative).
func durationFromSeconds(sec float64) time.Duration {
	ns := sec * float64(time.Second)
	if ns >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ns)
}

// satMulDuration returns n·d, saturating at MaxInt64.
func satMulDuration(n int, d time.Duration) time.Duration {
	if n <= 0 || d <= 0 {
		return 0
	}
	if int64(d) > math.MaxInt64/int64(n) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(n) * d
}

// satAddDuration returns a+b for non-negative a, b, saturating at MaxInt64.
func satAddDuration(a, b time.Duration) time.Duration {
	if a > time.Duration(math.MaxInt64)-b {
		return time.Duration(math.MaxInt64)
	}
	return a + b
}

// EdgeProfiles are representative network profiles for the trade-off
// experiments: a constrained wireless uplink, a typical broadband link, and
// a datacenter-grade link.
func EdgeProfiles(localStep time.Duration) map[string]TimeModel {
	return map[string]TimeModel{
		"lora-like":  {OneWayLatency: 500 * time.Millisecond, BandwidthBps: 6e3, LocalStepTime: localStep},
		"wifi":       {OneWayLatency: 20 * time.Millisecond, BandwidthBps: 2e6, LocalStepTime: localStep},
		"datacenter": {OneWayLatency: 200 * time.Microsecond, BandwidthBps: 1e9, LocalStepTime: localStep},
	}
}

// EnergyModel prices a node's share of a federated round in joules: radio
// energy per byte in each direction plus compute energy per local
// meta-iteration. It is the energy counterpart of TimeModel — the quantity
// the Elgabli-style budgeted scheduler maximizes progress against, and the
// y-axis companion of the ext-energy accuracy-vs-joules curves. The zero
// value prices everything at 0 J; Validate rejects negative or non-finite
// coefficients.
type EnergyModel struct {
	// TxJPerByte is the radio energy to transmit one byte (node uplink).
	TxJPerByte float64
	// RxJPerByte is the radio energy to receive one byte (node downlink).
	RxJPerByte float64
	// ComputeJPerIter is the energy of one local meta-iteration.
	ComputeJPerIter float64
}

// Validate checks the model.
func (em EnergyModel) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"tx J/byte", em.TxJPerByte},
		{"rx J/byte", em.RxJPerByte},
		{"compute J/iter", em.ComputeJPerIter},
	} {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("core: energy model %s = %v (want finite, ≥ 0)", c.name, c.v)
		}
	}
	return nil
}

// RoundJoules prices one node's participation in one round: rxBytes
// received (broadcast), txBytes sent (update), and iters local iterations.
func (em EnergyModel) RoundJoules(rxBytes, txBytes int64, iters int) float64 {
	return em.RxJPerByte*float64(rxBytes) + em.TxJPerByte*float64(txBytes) + em.ComputeJPerIter*float64(iters)
}

// EnergyProfiles are representative per-node energy profiles matching
// EdgeProfiles: a LoRa-class radio whose slow airtime makes every byte
// expensive (radio-dominated), a WiFi radio, and a datacenter NIC where
// compute dominates. computeJPerIter is the workload-dependent term, passed
// in like EdgeProfiles' localStep.
func EnergyProfiles(computeJPerIter float64) map[string]EnergyModel {
	return map[string]EnergyModel{
		"lora-like":  {TxJPerByte: 1.2e-3, RxJPerByte: 9e-4, ComputeJPerIter: computeJPerIter},
		"wifi":       {TxJPerByte: 6e-6, RxJPerByte: 4e-6, ComputeJPerIter: computeJPerIter},
		"datacenter": {TxJPerByte: 5e-8, RxJPerByte: 5e-8, ComputeJPerIter: computeJPerIter},
	}
}
