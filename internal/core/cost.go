package core

import (
	"fmt"
	"time"
)

// TimeModel estimates the wall-clock duration of a federated training run
// on an edge deployment. The paper motivates the T0 knob by the
// communication bottleneck of wireless edge networks; this model makes the
// trade-off quantitative: each round costs one uplink and one downlink of
// the full parameter vector plus T0 local iterations of compute, and nodes
// work in parallel, so rounds dominate when the network is slow and local
// compute dominates when it is fast.
type TimeModel struct {
	// OneWayLatency is the per-message network latency.
	OneWayLatency time.Duration
	// BandwidthBps is the link bandwidth in bytes per second (0 = infinite).
	BandwidthBps float64
	// LocalStepTime is the time one local meta-iteration takes on a node.
	LocalStepTime time.Duration
}

// Validate checks the model.
func (tm TimeModel) Validate() error {
	switch {
	case tm.OneWayLatency < 0:
		return fmt.Errorf("core: negative latency %v", tm.OneWayLatency)
	case tm.BandwidthBps < 0:
		return fmt.Errorf("core: negative bandwidth %v", tm.BandwidthBps)
	case tm.LocalStepTime < 0:
		return fmt.Errorf("core: negative step time %v", tm.LocalStepTime)
	}
	return nil
}

// Estimate returns the modelled wall-clock time of a run that produced
// stats over totalIters local iterations with paramBytes-sized parameter
// messages.
//
// When stats carries observed traffic (Messages > 0) the communication cost
// is billed from it directly — Messages one-way latencies plus Bytes over
// the shared access link — so re-probe traffic, rejected updates, and
// messages lost to drops (which CommStats counts per the attempted/delivered
// semantics documented on CommStats.Messages) all price in. The previous
// formula assumed exactly 2 messages per round and silently undercounted
// any run with fault-tolerant re-probes.
//
// When Messages is zero (a hand-built CommStats from a round count alone,
// as the what-if experiments use) it falls back to the idealized 2 messages
// of paramBytes per round, which reproduces the old behavior exactly.
func (tm TimeModel) Estimate(stats CommStats, totalIters, paramBytes int) (time.Duration, error) {
	if err := tm.Validate(); err != nil {
		return 0, err
	}
	if stats.Rounds <= 0 || totalIters < 0 || paramBytes < 0 {
		return 0, fmt.Errorf("core: invalid run shape rounds=%d iters=%d bytes=%d", stats.Rounds, totalIters, paramBytes)
	}
	if stats.Messages < 0 || stats.Bytes < 0 {
		return 0, fmt.Errorf("core: invalid traffic counts messages=%d bytes=%d", stats.Messages, stats.Bytes)
	}
	msgs := stats.Messages
	bytes := stats.Bytes
	if msgs == 0 {
		msgs = 2 * stats.Rounds // idealized downlink + uplink per round
		bytes = int64(msgs) * int64(paramBytes)
	}
	var transfer time.Duration
	if tm.BandwidthBps > 0 {
		transfer = time.Duration(float64(bytes) / tm.BandwidthBps * float64(time.Second))
	}
	comm := time.Duration(msgs)*tm.OneWayLatency + transfer
	compute := time.Duration(totalIters) * tm.LocalStepTime
	return comm + compute, nil
}

// EdgeProfiles are representative network profiles for the trade-off
// experiments: a constrained wireless uplink, a typical broadband link, and
// a datacenter-grade link.
func EdgeProfiles(localStep time.Duration) map[string]TimeModel {
	return map[string]TimeModel{
		"lora-like":  {OneWayLatency: 500 * time.Millisecond, BandwidthBps: 6e3, LocalStepTime: localStep},
		"wifi":       {OneWayLatency: 20 * time.Millisecond, BandwidthBps: 2e6, LocalStepTime: localStep},
		"datacenter": {OneWayLatency: 200 * time.Microsecond, BandwidthBps: 1e9, LocalStepTime: localStep},
	}
}
