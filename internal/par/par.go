// Package par is the shared worker-pool execution layer for the
// measurement and experiment stack (eval, meta.TrainCentralized, fedavg,
// reptile, experiments): bounded fan-out over an index space with
// deterministic results.
//
// The contract every caller relies on:
//
//   - Work is identified by index. fn(i) must be a pure function of i and
//     of state that is read-only during the fan-out (θ, datasets, configs).
//   - Outputs go into index-addressed slots (one slot per i), never into
//     shared accumulators. Reductions happen after the pool drains, in
//     fixed index order, on the calling goroutine.
//   - Per-worker scratch (nn.Workspace, meta.Workspace, gradient buffers)
//     is indexed by the worker id passed to ForEachWorker. Which worker
//     executes which index is scheduling-dependent, but since workspaces
//     are pure scratch this never changes any result.
//
// Under these rules the numbers produced are bit-identical for every
// worker count, including 1 — the parallel suite is byte-for-byte the
// sequential suite, only faster. Worker counts are a knob (`-workers`),
// with 0 meaning runtime.GOMAXPROCS(0).
//
// Scheduling hands out *batched index ranges*: each atomic claim grabs a
// contiguous chunk of ~n/(8·w) indices (singles when n is small), so the
// per-index synchronization cost is amortized across the chunk while the
// tail still load-balances across 8·w claims. Chunking only changes which
// worker runs which index — never the per-index-slot outputs — so the
// determinism contract above is unaffected.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a configured worker count: any value <= 0 selects
// runtime.GOMAXPROCS(0), so zero configs "just work" and scale with the
// machine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Span returns the number of workers a fan-out over n items actually uses:
// Workers(workers) clamped to n. Callers allocating per-worker scratch
// (one workspace per worker) size their slices with Span so ids seen by
// ForEachWorker always index in bounds.
func Span(workers, n int) int {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach invokes fn(i) for every i in [0, n) using at most
// Workers(workers) concurrent goroutines. It returns when all n calls have
// completed. When the pool degenerates to a single worker, fn runs on the
// calling goroutine with no synchronization at all.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker id (in [0, Span(workers, n)))
// passed to fn, so callers can index per-worker scratch. Index ranges are
// handed out dynamically (work stealing) in chunks of chunkSize(n, w), so
// which worker runs which index is not deterministic — only results written
// to per-index slots are.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Span(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	chunk := chunkSize(n, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			for {
				hi := int(next.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(wk, i)
				}
			}
		}(wk)
	}
	wg.Wait()
}

// chunkSize is the number of indices one atomic claim hands a worker:
// n/(8·w), floored at 1. Eight claims per worker amortizes the shared-
// counter contention that dominated the old one-index-per-CAS scheduler
// while keeping enough claims in flight that an uneven fn cost still load-
// balances; for small n it degrades to the old per-index behaviour.
func chunkSize(n, w int) int {
	c := n / (8 * w)
	if c < 1 {
		return 1
	}
	return c
}

// ForEachErr runs fn(i) for every i in [0, n) on the pool and returns the
// error of the smallest failing index (deterministic regardless of
// schedule), or nil. All n calls run to completion even after a failure —
// matching the sequential loop that checks errors only after the round.
// The error slots are freshly allocated per call, so no stale error from a
// previous invocation can leak into this one.
func ForEachErr(workers, n int, fn func(i int) error) error {
	return ForEachWorkerErr(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorkerErr is ForEachErr with the worker id passed to fn.
func ForEachWorkerErr(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEachWorker(workers, n, func(wk, i int) { errs[i] = fn(wk, i) })
	return FirstError(errs)
}

// FirstError returns the lowest-indexed non-nil error in errs, or nil.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
