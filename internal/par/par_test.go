package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestSpanClamps(t *testing.T) {
	if got := Span(8, 3); got != 3 {
		t.Errorf("Span(8,3) = %d, want 3", got)
	}
	if got := Span(2, 100); got != 2 {
		t.Errorf("Span(2,100) = %d, want 2", got)
	}
	if got := Span(4, 0); got != 1 {
		t.Errorf("Span(4,0) = %d, want 1", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		hits := make([]atomic.Int64, n)
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestChunkSize(t *testing.T) {
	cases := []struct{ n, w, want int }{
		{n: 1, w: 1, want: 1},
		{n: 7, w: 1, want: 1},   // small n: singles
		{n: 16, w: 1, want: 2},  // 16/(8·1)
		{n: 64, w: 1, want: 8},  // 64/(8·1)
		{n: 57, w: 8, want: 1},  // 57/(8·8) rounds to 0 → singles fallback
		{n: 128, w: 8, want: 2}, // 128/(8·8)
		{n: 1000, w: 8, want: 15},
	}
	for _, c := range cases {
		if got := chunkSize(c.n, c.w); got != c.want {
			t.Errorf("chunkSize(n=%d, w=%d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
}

// The batched-range scheduler must still cover every index exactly once for
// shapes where chunks exceed 1 and where n is not a multiple of chunk·w —
// the final claims straddle n and must be clipped, not dropped or repeated.
func TestForEachCoversEveryIndexOnceChunked(t *testing.T) {
	cases := []struct{ n, workers int }{
		{n: 1000, workers: 8}, // chunk 15; last claim clips at 1000
		{n: 1000, workers: 2}, // chunk 62
		{n: 129, workers: 4},  // chunk 4, remainder 1
		{n: 17, workers: 16},  // chunk 1: singles fallback under contention
		{n: 3, workers: 8},    // more workers than work
	}
	for _, tc := range cases {
		hits := make([]atomic.Int64, tc.n)
		ForEach(tc.workers, tc.n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("n=%d workers=%d: index %d executed %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -5, func(int) { ran = true })
	if ran {
		t.Error("fn invoked for empty index space")
	}
}

func TestForEachWorkerIdsInSpan(t *testing.T) {
	const workers, n = 4, 40
	span := Span(workers, n)
	var bad atomic.Int64
	ForEachWorker(workers, n, func(w, i int) {
		if w < 0 || w >= span {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d calls saw a worker id outside [0, %d)", bad.Load(), span)
	}
}

func TestForEachSlotResultsWorkerCountInvariant(t *testing.T) {
	// The determinism contract: per-index slot outputs are identical for
	// every worker count.
	const n = 64
	ref := make([]float64, n)
	ForEach(1, n, func(i int) { ref[i] = float64(i*i) / 7 })
	for _, workers := range []int{2, 3, 8} {
		got := make([]float64, n)
		ForEach(workers, n, func(i int) { got[i] = float64(i*i) / 7 })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachErr(workers, 20, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Errorf("workers=%d: first error = %v, want boom 3", workers, err)
		}
	}
}

func TestForEachErrRunsAllIndicesDespiteFailure(t *testing.T) {
	var ran atomic.Int64
	err := ForEachErr(4, 30, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if ran.Load() != 30 {
		t.Errorf("only %d/30 indices ran after failure", ran.Load())
	}
}

func TestForEachErrNoStaleErrorsAcrossCalls(t *testing.T) {
	// Regression guard for the stale per-node error-slot trap: each call
	// owns fresh error slots, so a failure in one round cannot resurface
	// in the next.
	fail := true
	if err := ForEachErr(4, 8, func(i int) error {
		if fail && i == 5 {
			return errors.New("round-1 failure")
		}
		return nil
	}); err == nil {
		t.Fatal("injected failure not reported")
	}
	fail = false
	if err := ForEachErr(4, 8, func(i int) error { return nil }); err != nil {
		t.Errorf("clean round reported stale error: %v", err)
	}
}

func TestFirstError(t *testing.T) {
	if FirstError(nil) != nil {
		t.Error("empty slice")
	}
	e1, e2 := errors.New("a"), errors.New("b")
	if got := FirstError([]error{nil, e1, e2}); got != e1 {
		t.Errorf("got %v", got)
	}
}

func TestForEachWorkerErrPassesWorkerId(t *testing.T) {
	span := Span(3, 12)
	var bad atomic.Int64
	err := ForEachWorkerErr(3, 12, func(w, i int) error {
		if w < 0 || w >= span {
			bad.Add(1)
		}
		return nil
	})
	if err != nil || bad.Load() != 0 {
		t.Errorf("err=%v, %d out-of-span worker ids", err, bad.Load())
	}
}
