package opt

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/tensor"
)

// quadGrad returns the gradient of f(θ) = ½‖θ − c‖².
func quadGrad(params, c tensor.Vec) tensor.Vec {
	g := params.Sub(c)
	return g
}

func optimizeQuadratic(t *testing.T, o Optimizer, steps int) float64 {
	t.Helper()
	c := tensor.Vec{3, -2, 1, 0.5}
	params := tensor.NewVec(4)
	for i := 0; i < steps; i++ {
		if err := o.Step(params, quadGrad(params, c)); err != nil {
			t.Fatal(err)
		}
	}
	return params.Dist(c)
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	if d := optimizeQuadratic(t, &SGD{LR: 0.5}, 100); d > 1e-6 {
		t.Errorf("SGD distance to optimum = %v", d)
	}
}

func TestMomentumConvergesOnQuadratic(t *testing.T) {
	if d := optimizeQuadratic(t, &Momentum{LR: 0.2, Gamma: 0.8}, 200); d > 1e-6 {
		t.Errorf("Momentum distance to optimum = %v", d)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	if d := optimizeQuadratic(t, &Adam{LR: 0.2}, 500); d > 1e-3 {
		t.Errorf("Adam distance to optimum = %v", d)
	}
}

func TestSGDStepExactness(t *testing.T) {
	params := tensor.Vec{1, 2}
	g := tensor.Vec{0.5, -1}
	s := &SGD{LR: 2}
	if err := s.Step(params, g); err != nil {
		t.Fatal(err)
	}
	if params[0] != 0 || params[1] != 4 {
		t.Errorf("params = %v, want [0 4]", params)
	}
}

func TestMomentumAcceleratesAlongConsistentGradients(t *testing.T) {
	// Feeding the same gradient repeatedly, momentum must travel farther
	// than plain SGD at the same learning rate.
	g := tensor.Vec{1, 1}
	sgdParams := tensor.NewVec(2)
	momParams := tensor.NewVec(2)
	sgd := &SGD{LR: 0.1}
	mom := &Momentum{LR: 0.1, Gamma: 0.9}
	for i := 0; i < 10; i++ {
		if err := sgd.Step(sgdParams, g); err != nil {
			t.Fatal(err)
		}
		if err := mom.Step(momParams, g); err != nil {
			t.Fatal(err)
		}
	}
	if momParams.Norm() <= sgdParams.Norm() {
		t.Errorf("momentum (%v) did not outrun SGD (%v)", momParams.Norm(), sgdParams.Norm())
	}
}

func TestAdamScaleInvariance(t *testing.T) {
	// Adam's update magnitude is ~LR regardless of gradient scale.
	big := tensor.NewVec(2)
	small := tensor.NewVec(2)
	aBig := &Adam{LR: 0.1}
	aSmall := &Adam{LR: 0.1}
	if err := aBig.Step(big, tensor.Vec{1000, 1000}); err != nil {
		t.Fatal(err)
	}
	if err := aSmall.Step(small, tensor.Vec{0.001, 0.001}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(big.Norm()-small.Norm()) > 1e-3 {
		t.Errorf("adam step magnitudes differ: %v vs %v", big.Norm(), small.Norm())
	}
}

func TestOptimizerValidation(t *testing.T) {
	params := tensor.NewVec(2)
	g := tensor.NewVec(2)
	if err := (&SGD{LR: 0}).Step(params, g); err == nil {
		t.Error("zero LR accepted")
	}
	if err := (&SGD{LR: 0.1}).Step(params, tensor.NewVec(3)); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (&Momentum{LR: 0.1, Gamma: 1}).Step(params, g); err == nil {
		t.Error("γ=1 accepted")
	}
	if err := (&Adam{LR: 0.1, Beta1: 1}).Step(params, g); err == nil {
		t.Error("β1=1 accepted")
	}

	m := &Momentum{LR: 0.1, Gamma: 0.5}
	if err := m.Step(params, g); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(tensor.NewVec(3), tensor.NewVec(3)); err == nil {
		t.Error("momentum length change accepted")
	}
	a := &Adam{LR: 0.1}
	if err := a.Step(params, g); err != nil {
		t.Fatal(err)
	}
	if err := a.Step(tensor.NewVec(3), tensor.NewVec(3)); err == nil {
		t.Error("adam length change accepted")
	}
}

func TestReset(t *testing.T) {
	params := tensor.NewVec(2)
	g := tensor.Vec{1, 1}
	m := &Momentum{LR: 0.1, Gamma: 0.9}
	_ = m.Step(params, g)
	m.Reset()
	if m.velocity != nil {
		t.Error("momentum Reset did not clear state")
	}
	a := &Adam{LR: 0.1}
	_ = a.Step(params, g)
	a.Reset()
	if a.m != nil || a.t != 0 {
		t.Error("adam Reset did not clear state")
	}
	s := &SGD{LR: 0.1}
	s.Reset() // must not panic
}

func TestNames(t *testing.T) {
	if (&SGD{}).Name() != "sgd" || (&Momentum{}).Name() != "momentum" || (&Adam{}).Name() != "adam" {
		t.Error("optimizer names broken")
	}
}

func TestClipNorm(t *testing.T) {
	g := tensor.Vec{3, 4}
	if n := ClipNorm(g, 10); n != 5 {
		t.Errorf("returned norm %v, want 5", n)
	}
	if g.Norm() != 5 {
		t.Error("clip below threshold modified the gradient")
	}
	ClipNorm(g, 1)
	if math.Abs(g.Norm()-1) > 1e-12 {
		t.Errorf("clipped norm = %v, want 1", g.Norm())
	}
	// Non-positive max is a no-op.
	g2 := tensor.Vec{3, 4}
	ClipNorm(g2, 0)
	if g2.Norm() != 5 {
		t.Error("max=0 clipped")
	}
}
