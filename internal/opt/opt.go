// Package opt implements first-order optimizers over flat parameter
// vectors: plain SGD (the paper's meta-update), heavy-ball momentum, and
// Adam. The federated runtime keeps the paper's plain gradient descent on
// the nodes; these optimizers serve the centralized utilities (reference
// optimum estimation, ablations of the meta-update rule) and downstream
// users who want an adaptive outer step.
package opt

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/tensor"
)

// Optimizer updates a parameter vector in place from a gradient. An
// optimizer owns per-parameter state and must be used with one vector
// length only.
type Optimizer interface {
	// Step applies one update: params ← params − update(grad).
	Step(params, grad tensor.Vec) error
	// Reset clears the internal state (moments, step counter).
	Reset()
	// Name identifies the rule.
	Name() string
}

// SGD is plain gradient descent with a fixed learning rate.
type SGD struct {
	// LR is the learning rate.
	LR float64
}

var _ Optimizer = (*SGD)(nil)

// Step implements Optimizer.
func (s *SGD) Step(params, grad tensor.Vec) error {
	if err := check(s.LR, params, grad); err != nil {
		return err
	}
	params.Axpy(-s.LR, grad)
	return nil
}

// Reset implements Optimizer (no state).
func (s *SGD) Reset() {}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Momentum is heavy-ball SGD: v ← γv + g; θ ← θ − η·v.
type Momentum struct {
	// LR is the learning rate; Gamma the momentum coefficient in [0, 1).
	LR, Gamma float64

	velocity tensor.Vec
}

var _ Optimizer = (*Momentum)(nil)

// Step implements Optimizer.
func (m *Momentum) Step(params, grad tensor.Vec) error {
	if err := check(m.LR, params, grad); err != nil {
		return err
	}
	if m.Gamma < 0 || m.Gamma >= 1 {
		return fmt.Errorf("opt: momentum γ must be in [0, 1), got %v", m.Gamma)
	}
	if m.velocity == nil {
		m.velocity = tensor.NewVec(len(params))
	} else if len(m.velocity) != len(params) {
		return fmt.Errorf("opt: optimizer built for %d params, got %d", len(m.velocity), len(params))
	}
	m.velocity.ScaleInPlace(m.Gamma)
	m.velocity.AddInPlace(grad)
	params.Axpy(-m.LR, m.velocity)
	return nil
}

// Reset implements Optimizer.
func (m *Momentum) Reset() { m.velocity = nil }

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// Adam is the Kingma–Ba adaptive optimizer with bias correction.
type Adam struct {
	// LR is the step size; Beta1/Beta2 the moment decays (0 means the
	// standard 0.9/0.999); Eps the denominator floor (0 means 1e-8).
	LR, Beta1, Beta2, Eps float64

	m, v tensor.Vec
	t    int
}

var _ Optimizer = (*Adam)(nil)

// Step implements Optimizer.
func (a *Adam) Step(params, grad tensor.Vec) error {
	if err := check(a.LR, params, grad); err != nil {
		return err
	}
	b1, b2, eps := a.Beta1, a.Beta2, a.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	if b1 < 0 || b1 >= 1 || b2 < 0 || b2 >= 1 {
		return fmt.Errorf("opt: adam betas (%v, %v) outside [0, 1)", b1, b2)
	}
	if a.m == nil {
		a.m = tensor.NewVec(len(params))
		a.v = tensor.NewVec(len(params))
	} else if len(a.m) != len(params) {
		return fmt.Errorf("opt: optimizer built for %d params, got %d", len(a.m), len(params))
	}
	a.t++
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i := range params {
		a.m[i] = b1*a.m[i] + (1-b1)*grad[i]
		a.v[i] = b2*a.v[i] + (1-b2)*grad[i]*grad[i]
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + eps)
	}
	return nil
}

// Reset implements Optimizer.
func (a *Adam) Reset() {
	a.m, a.v, a.t = nil, nil, 0
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// ClipNorm scales grad in place so its Euclidean norm is at most max.
// It returns the original norm. Non-positive max is a no-op.
func ClipNorm(grad tensor.Vec, max float64) float64 {
	n := grad.Norm()
	if max > 0 && n > max {
		grad.ScaleInPlace(max / n)
	}
	return n
}

func check(lr float64, params, grad tensor.Vec) error {
	if lr <= 0 {
		return fmt.Errorf("opt: learning rate must be positive, got %v", lr)
	}
	if len(params) != len(grad) {
		return fmt.Errorf("opt: %d params but %d gradient entries", len(params), len(grad))
	}
	return nil
}
