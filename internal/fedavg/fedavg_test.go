package fedavg

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func tinyFederation(t *testing.T) *data.Federation {
	t.Helper()
	cfg := data.DefaultSyntheticConfig(0, 0)
	cfg.Nodes = 10
	cfg.Dim = 10
	cfg.Classes = 4
	cfg.MeanSamples = 20
	cfg.Seed = 11
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

// globalLoss is the FedAvg objective: the data-size-weighted average loss
// over the full local datasets.
func globalLoss(m nn.Model, fed *data.Federation, theta tensor.Vec) float64 {
	w := fed.Weights()
	var total float64
	for i, nd := range fed.Sources {
		total += w[i] * m.Loss(theta, nd.All())
	}
	return total
}

func TestConfigValidate(t *testing.T) {
	good := Config{Eta: 0.1, T: 10, T0: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Eta: 0, T: 10, T0: 5},
		{Eta: 0.1, T: 0, T0: 5},
		{Eta: 0.1, T: 10, T0: 0},
		{Eta: 0.1, T: 10, T0: 4},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTrainReducesGlobalLoss(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	theta0 := m.InitParams(rng.New(1))
	before := globalLoss(m, fed, theta0)
	res, err := Train(m, fed, theta0, Config{Eta: 0.05, T: 100, T0: 10})
	if err != nil {
		t.Fatal(err)
	}
	after := globalLoss(m, fed, res.Theta)
	if after >= before {
		t.Errorf("FedAvg did not reduce the global loss: %v -> %v", before, after)
	}
}

func TestTrainDeterministic(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	cfg := Config{Eta: 0.05, T: 40, T0: 10, Seed: 3}
	a, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta.Dist(b.Theta) != 0 {
		t.Error("FedAvg is not deterministic")
	}
}

func TestTrainOnRoundCallback(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	var iters []int
	cfg := Config{Eta: 0.05, T: 30, T0: 10, OnRound: func(round, iter int, theta tensor.Vec) {
		iters = append(iters, iter)
	}}
	if _, err := Train(m, fed, nil, cfg); err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 || iters[0] != 10 || iters[2] != 30 {
		t.Errorf("callback iters = %v", iters)
	}
}

func TestTrainValidation(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	okCfg := Config{Eta: 0.05, T: 10, T0: 5}
	if _, err := Train(nil, fed, nil, okCfg); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Train(m, nil, nil, okCfg); err == nil {
		t.Error("nil federation accepted")
	}
	if _, err := Train(m, &data.Federation{}, nil, okCfg); err == nil {
		t.Error("empty federation accepted")
	}
	if _, err := Train(m, fed, tensor.NewVec(1), okCfg); err == nil {
		t.Error("bad theta0 accepted")
	}
	if _, err := Train(m, fed, nil, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFedProxValidation(t *testing.T) {
	cfg := Config{Eta: 0.1, T: 10, T0: 5, ProxMu: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative ProxMu accepted")
	}
}

func TestFedProxKeepsUpdatesNearGlobal(t *testing.T) {
	// A large proximal coefficient must hold the per-round update close to
	// the previous global model, so the overall parameter movement shrinks.
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	theta0 := m.InitParams(rng.New(5))

	plain, err := Train(m, fed, theta0, Config{Eta: 0.05, T: 30, T0: 10})
	if err != nil {
		t.Fatal(err)
	}
	prox, err := Train(m, fed, theta0, Config{Eta: 0.05, T: 30, T0: 10, ProxMu: 10})
	if err != nil {
		t.Fatal(err)
	}
	plainMove := plain.Theta.Dist(theta0)
	proxMove := prox.Theta.Dist(theta0)
	if proxMove >= plainMove {
		t.Errorf("FedProx moved farther (%v) than FedAvg (%v) despite μ=10", proxMove, plainMove)
	}
}

func TestFedProxStillLearns(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	theta0 := m.InitParams(rng.New(6))
	before := globalLoss(m, fed, theta0)
	res, err := Train(m, fed, theta0, Config{Eta: 0.05, T: 100, T0: 10, ProxMu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	after := globalLoss(m, fed, res.Theta)
	if after >= before {
		t.Errorf("FedProx did not reduce the global loss: %v -> %v", before, after)
	}
}

func TestTrainDivergenceDetected(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}
	if _, err := Train(m, fed, nil, Config{Eta: 1e200, T: 20, T0: 10}); err == nil {
		t.Error("divergent FedAvg run reported success")
	}
}

// nanAtCall wraps a model and poisons the gradient for a window of Grad
// calls. With Workers=1 the round loop visits nodes strictly in index order
// (T0 calls per node per round), so a call window addresses an exact
// (node, round) pair.
type nanAtCall struct {
	nn.Model
	calls    int
	from, to int // 0-based [from, to) window of poisoned calls
}

func (m *nanAtCall) Grad(theta tensor.Vec, batch []data.Sample) tensor.Vec {
	g := m.Model.Grad(theta, batch).Clone()
	if m.calls >= m.from && m.calls < m.to {
		g[0] = math.NaN()
	}
	m.calls++
	return g
}

// Regression guard for the per-round error slots: a node failing in round 2
// must be reported as exactly that node and that round — round 1 completed
// cleanly, and no slot from a previous round may leak forward.
func TestTrainDivergenceNamesNodeAndRound(t *testing.T) {
	fed := tinyFederation(t)
	base := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	const t0 = 4
	n := len(fed.Sources)
	from := n*t0 + 3*t0 // node 3's local steps in round 2
	m := &nanAtCall{Model: base, from: from, to: from + t0}
	_, err := Train(m, fed, nil, Config{Eta: 0.05, T: 3 * t0, T0: t0, Workers: 1})
	if err == nil {
		t.Fatal("poisoned gradient not detected")
	}
	want := "fedavg: node 3 diverged in round 2"
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// Training results must be bit-identical for every worker count.
func TestTrainWorkerCountInvariance(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	ref, err := Train(m, fed, nil, Config{Eta: 0.05, T: 20, T0: 5, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		res, err := Train(m, fed, nil, Config{Eta: 0.05, T: 20, T0: 5, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Theta {
			if res.Theta[i] != ref.Theta[i] {
				t.Fatalf("workers=%d: theta[%d] = %v, want %v (bit-identical)", workers, i, res.Theta[i], ref.Theta[i])
			}
		}
	}
}

func TestTrainObserverRoundEvents(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}
	rec := obs.NewRecorder()
	cfg := Config{Eta: 0.05, T: 20, T0: 5, Seed: 1, Observer: rec}
	if _, err := Train(m, fed, nil, cfg); err != nil {
		t.Fatal(err)
	}
	rounds := rec.Rounds()
	if len(rounds) != 4 {
		t.Fatalf("got %d round records, want 4", len(rounds))
	}
	for k, r := range rounds {
		if r.Round != k+1 || r.Iter != (k+1)*cfg.T0 || r.T0 != cfg.T0 {
			t.Errorf("record %d has wrong shape: %+v", k, r)
		}
		if r.Alive != len(fed.Sources) {
			t.Errorf("record %d alive = %d, want %d", k, r.Alive, len(fed.Sources))
		}
		if r.UpdateNorm <= 0 {
			t.Errorf("record %d update norm %v not positive", k, r.UpdateNorm)
		}
	}
	if got := rec.Count(obs.TypeRoundStart); got != 4 {
		t.Errorf("round_start events = %d, want 4", got)
	}
}
