// Package fedavg implements the FedAvg baseline (McMahan et al., 2016) the
// paper compares against: each node performs T0 local full-batch gradient
// descent steps on its entire local dataset, and the platform aggregates the
// resulting parameters with data-size weights. Unlike FedML it optimizes a
// single global fit rather than an adaptation-friendly initialization, which
// is exactly the difference the Figure 3 experiments expose.
package fedavg

import (
	"errors"
	"fmt"

	"time"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Config holds the FedAvg hyper-parameters. The paper gives FedAvg the same
// learning rate as FedML's meta rate β.
type Config struct {
	// Eta is the local gradient-descent learning rate.
	Eta float64
	// T is the total number of local iterations; T0 the number between
	// aggregations. T must be a multiple of T0.
	T, T0 int
	// ProxMu, when positive, adds the FedProx proximal term (Sahu et al.,
	// cited by the paper for its synthetic generator): each local step
	// descends L_i(θ) + (μ/2)‖θ − θ_global‖², which tames client drift on
	// heterogeneous federations.
	ProxMu float64
	// Seed drives the default initialization.
	Seed uint64
	// Workers bounds the per-round node fan-out (0 = GOMAXPROCS). Results
	// are bit-identical for every worker count.
	Workers int
	// OnRound, when non-nil, is invoked after each aggregation. theta is
	// a reused buffer, overwritten next round: borrowed for the duration
	// of the call, Clone to retain.
	OnRound func(round, iter int, theta tensor.Vec)
	// Observer, when non-nil, receives round lifecycle events
	// (obs.TypeRoundStart/TypeRoundEnd with wall-clock duration and update
	// norm), so baseline runs share the FedML metrics pipeline. Nil adds
	// no overhead.
	Observer obs.RoundObserver
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Eta <= 0:
		return fmt.Errorf("fedavg: learning rate must be positive, got %v", c.Eta)
	case c.T <= 0 || c.T0 <= 0:
		return fmt.Errorf("fedavg: T=%d and T0=%d must be positive", c.T, c.T0)
	case c.T%c.T0 != 0:
		return fmt.Errorf("fedavg: T=%d must be a multiple of T0=%d", c.T, c.T0)
	case c.ProxMu < 0:
		return fmt.Errorf("fedavg: proximal coefficient must be non-negative, got %v", c.ProxMu)
	}
	return nil
}

// Result is the outcome of a FedAvg run.
type Result struct {
	// Theta is the final global model.
	Theta tensor.Vec
}

// Train runs FedAvg over the federation's source nodes. Each node trains on
// its entire local dataset (train ∪ test), matching the paper's setup
// ("the entire dataset is used for training in Fedavg"). theta0 may be nil.
func Train(m nn.Model, fed *data.Federation, theta0 tensor.Vec, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil || fed == nil {
		return nil, errors.New("fedavg: nil model or federation")
	}
	if len(fed.Sources) == 0 {
		return nil, errors.New("fedavg: federation has no source nodes")
	}
	if theta0 == nil {
		theta0 = m.InitParams(rng.New(cfg.Seed))
	}
	if len(theta0) != m.NumParams() {
		return nil, fmt.Errorf("fedavg: theta0 has %d params, model needs %d", len(theta0), m.NumParams())
	}

	// Cache each node's full local dataset.
	local := make([][]data.Sample, len(fed.Sources))
	for i, nd := range fed.Sources {
		local[i] = nd.All()
	}
	weights := fed.Weights()

	theta := theta0.Clone()
	rounds := cfg.T / cfg.T0
	// Per-worker scratch (one workspace and gradient buffer per pool
	// worker) plus per-node parameter buffers, all reused across rounds so
	// the steady-state round loop allocates only error slots. Earlier
	// revisions kept a single nodeErrs slice alive across rounds, which
	// let a stale slot from a failed round leak into later ones;
	// par.ForEachWorkerErr owns fresh slots per call.
	type workerScratch struct {
		ws nn.Workspace
		g  tensor.Vec // gradient buffer
	}
	np := m.NumParams()
	scratch := make([]workerScratch, par.Span(cfg.Workers, len(fed.Sources)))
	for w := range scratch {
		scratch[w] = workerScratch{ws: nn.NewWorkspace(m), g: tensor.NewVec(np)}
	}
	updates := make([]tensor.Vec, len(fed.Sources))
	for i := range updates {
		updates[i] = tensor.NewVec(np)
	}
	var prev tensor.Vec // pre-aggregation snapshot for the update norm
	if cfg.Observer != nil {
		prev = tensor.NewVec(np)
	}
	for round := 1; round <= rounds; round++ {
		var roundT0 time.Time
		if cfg.Observer != nil {
			roundT0 = time.Now()
			prev.CopyFrom(theta)
			cfg.Observer.Observe(obs.Event{
				Type: obs.TypeRoundStart, Round: round, Iter: (round - 1) * cfg.T0,
				T0: cfg.T0, Alive: len(fed.Sources),
			})
		}
		// Nodes are independent within a round; run them on the pool.
		// theta is read-only during the fan-out and aggregation order is
		// fixed by index, so results are bit-identical for every worker
		// count.
		err := par.ForEachWorkerErr(cfg.Workers, len(fed.Sources), func(w, i int) error {
			sc := &scratch[w]
			ti := updates[i]
			ti.CopyFrom(theta)
			for t := 0; t < cfg.T0; t++ {
				if cfg.ProxMu > 0 {
					// ∇[(μ/2)‖θ_i − θ_global‖²] = μ(θ_i − θ_global); the
					// proximal term modifies the gradient, so the step
					// cannot fuse.
					nn.GradInto(m, sc.ws, ti, local[i], sc.g)
					sc.g.Axpy(cfg.ProxMu, ti)
					sc.g.Axpy(-cfg.ProxMu, theta)
					ti.Axpy(-cfg.Eta, sc.g)
				} else {
					nn.GradStepInto(m, sc.ws, ti, local[i], cfg.Eta, sc.g, ti)
				}
			}
			if !ti.IsFinite() {
				return fmt.Errorf("fedavg: node %d diverged in round %d", i, round)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// theta never aliases the node buffers, so aggregating into it is
		// safe. OnRound borrows the reused buffer; callers must Clone to
		// retain it.
		tensor.WeightedSumInto(theta, weights, updates)
		if cfg.Observer != nil {
			cfg.Observer.Observe(obs.Event{
				Type: obs.TypeRoundEnd, Round: round, Iter: round * cfg.T0,
				T0: cfg.T0, Alive: len(fed.Sources), Dur: time.Since(roundT0),
				Value: theta.Dist(prev),
			})
		}
		if cfg.OnRound != nil {
			cfg.OnRound(round, round*cfg.T0, theta)
		}
	}
	return &Result{Theta: theta}, nil
}
