package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("nearby seeds produced %d identical outputs out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	// Same id from identical parent state must reproduce.
	c1b := parent.Split(0)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatal("Split is not a pure function of (parent state, id)")
		}
	}
	// Different ids must decorrelate.
	same := 0
	d1, d2 := parent.Split(0), parent.Split(1)
	_ = c2
	for i := 0; i < 100; i++ {
		if d1.Uint64() == d2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sibling streams matched %d/100 draws", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(3)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntNRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("IntN(7) bucket %d has count %d, want ~10000", v, c)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormMeanStd(t *testing.T) {
	r := New(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMeanStd(3, 0.5)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.02 {
		t.Errorf("NormMeanStd mean = %v, want ~3", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(10)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(2, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Errorf("shuffle changed multiset: sum %d -> %d", sum, sum2)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
