// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the repository.
//
// Every experiment in the paper reproduction must be bit-for-bit reproducible
// from a single seed, across Go versions and across machines. The standard
// library's math/rand does not guarantee a stable stream across Go releases,
// so we implement our own generator: a SplitMix64 seeder feeding an
// xoshiro256** state, with support for deriving independent child streams
// (one per edge node) from a parent stream.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator.
//
// The zero value is not usable; construct with New. Rand is not safe for
// concurrent use; derive one generator per goroutine with Split.
type Rand struct {
	s [4]uint64

	// cached spare normal variate for the polar method.
	hasSpare bool
	spare    float64
}

// New returns a generator seeded from seed via SplitMix64, so that nearby
// seeds still produce decorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro's all-zero state is degenerate; SplitMix64 cannot emit four
	// zeros in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child generator. The child stream is a pure
// function of the parent state and id, so splitting the same parent with the
// same id always yields the same stream; the parent is not advanced.
func (r *Rand) Split(id uint64) *Rand {
	return New(r.s[0] ^ (r.s[2] * 0x9e3779b97f4a7c15) ^ (id+1)*0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform integer in [0, n). n must be positive.
func (r *Rand) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias at n << 2^64 is negligible for simulation workloads, but
	// we still reject the biased tail to keep streams principled.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Norm returns a standard normal variate via the Marsaglia polar method.
func (r *Rand) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormMeanStd returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// LogNormal returns exp(N(mu, sigma^2)). Used for power-law-like per-node
// sample counts (the paper draws node sizes from a power law).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}
