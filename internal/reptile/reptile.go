// Package reptile implements federated Reptile (Nichol, Achiam, Schulman:
// "On First-Order Meta-Learning Algorithms"), the first-order meta-learning
// baseline the paper's related-work section positions FedML against.
//
// Each round, every node runs InnerSteps full-batch gradient-descent steps
// on its K-sample training split starting from the global parameters, and
// the platform moves the global parameters toward the data-size-weighted
// average of the adapted parameters with meta step ε:
//
//	θ ← (1−ε)·θ + ε·Σ_i ω_i φ_i.
//
// With ε = 1 and local steps on the full local dataset this degenerates to
// FedAvg; the interesting regimes use ε < 1 and few-shot inner runs, which
// approximate the MAML update to first order without any Hessian term.
package reptile

import (
	"errors"
	"fmt"

	"time"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Config holds the federated Reptile hyper-parameters.
type Config struct {
	// InnerLR is the task-level gradient-descent rate.
	InnerLR float64
	// MetaLR is the interpolation step ε ∈ (0, 1].
	MetaLR float64
	// InnerSteps is the number of local gradient steps per round.
	InnerSteps int
	// Rounds is the number of global rounds.
	Rounds int
	// Seed drives the default initialization.
	Seed uint64
	// Workers bounds the per-round node fan-out (0 = GOMAXPROCS). Results
	// are bit-identical for every worker count.
	Workers int
	// OnRound, when non-nil, is invoked after every round. theta is a
	// reused buffer, overwritten next round: borrowed for the duration of
	// the call, Clone to retain.
	OnRound func(round int, theta tensor.Vec)
	// Observer, when non-nil, receives round lifecycle events
	// (obs.TypeRoundStart/TypeRoundEnd with wall-clock duration and update
	// norm), so baseline runs share the FedML metrics pipeline. Nil adds
	// no overhead.
	Observer obs.RoundObserver
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.InnerLR <= 0:
		return fmt.Errorf("reptile: inner learning rate must be positive, got %v", c.InnerLR)
	case c.MetaLR <= 0 || c.MetaLR > 1:
		return fmt.Errorf("reptile: meta step ε must be in (0, 1], got %v", c.MetaLR)
	case c.InnerSteps <= 0:
		return fmt.Errorf("reptile: inner steps must be positive, got %d", c.InnerSteps)
	case c.Rounds <= 0:
		return fmt.Errorf("reptile: rounds must be positive, got %d", c.Rounds)
	}
	return nil
}

// Result is the outcome of a Reptile run.
type Result struct {
	// Theta is the final meta-initialization.
	Theta tensor.Vec
}

// Train runs federated Reptile over the federation's source nodes, using
// each node's K-sample training split for the inner runs (matching FedML's
// few-shot inner step). theta0 may be nil.
func Train(m nn.Model, fed *data.Federation, theta0 tensor.Vec, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil || fed == nil {
		return nil, errors.New("reptile: nil model or federation")
	}
	if len(fed.Sources) == 0 {
		return nil, errors.New("reptile: federation has no source nodes")
	}
	if theta0 == nil {
		theta0 = m.InitParams(rng.New(cfg.Seed))
	}
	if len(theta0) != m.NumParams() {
		return nil, fmt.Errorf("reptile: theta0 has %d params, model needs %d", len(theta0), m.NumParams())
	}

	weights := fed.Weights()
	theta := theta0.Clone()
	// Per-worker scratch (workspace + gradient buffer) and per-node
	// adapted-parameter slots φ_i, all reused across rounds. Error slots
	// are owned by par.ForEachWorkerErr and fresh per round, so a failure
	// in one round cannot leak into the next.
	type workerScratch struct {
		ws nn.Workspace
		g  tensor.Vec
	}
	np := m.NumParams()
	scratch := make([]workerScratch, par.Span(cfg.Workers, len(fed.Sources)))
	for w := range scratch {
		scratch[w] = workerScratch{ws: nn.NewWorkspace(m), g: tensor.NewVec(np)}
	}
	adapted := make([]tensor.Vec, len(fed.Sources))
	for i := range adapted {
		adapted[i] = tensor.NewVec(np)
	}
	avg := tensor.NewVec(np)
	var prev tensor.Vec // pre-interpolation snapshot for the update norm
	if cfg.Observer != nil {
		prev = tensor.NewVec(np)
	}
	for round := 1; round <= cfg.Rounds; round++ {
		var roundT0 time.Time
		if cfg.Observer != nil {
			roundT0 = time.Now()
			prev.CopyFrom(theta)
			cfg.Observer.Observe(obs.Event{
				Type: obs.TypeRoundStart, Round: round, Iter: (round - 1) * cfg.InnerSteps,
				T0: cfg.InnerSteps, Alive: len(fed.Sources),
			})
		}
		// Inner runs are independent; run them on the pool and keep the
		// aggregation order fixed by index for determinism.
		err := par.ForEachWorkerErr(cfg.Workers, len(fed.Sources), func(w, i int) error {
			sc := &scratch[w]
			phi := adapted[i]
			phi.CopyFrom(theta)
			for s := 0; s < cfg.InnerSteps; s++ {
				nn.GradStepInto(m, sc.ws, phi, fed.Sources[i].Train, cfg.InnerLR, sc.g, phi)
			}
			if !phi.IsFinite() {
				return fmt.Errorf("reptile: node %d diverged in round %d", i, round)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		tensor.WeightedSumInto(avg, weights, adapted)
		// θ ← (1−ε)θ + ε·avg.
		theta.ScaleInPlace(1 - cfg.MetaLR)
		theta.Axpy(cfg.MetaLR, avg)
		if cfg.Observer != nil {
			cfg.Observer.Observe(obs.Event{
				Type: obs.TypeRoundEnd, Round: round, Iter: round * cfg.InnerSteps,
				T0: cfg.InnerSteps, Alive: len(fed.Sources), Dur: time.Since(roundT0),
				Value: theta.Dist(prev),
			})
		}
		if cfg.OnRound != nil {
			cfg.OnRound(round, theta)
		}
	}
	return &Result{Theta: theta}, nil
}
