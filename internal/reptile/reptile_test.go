package reptile

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func tinyFederation(t *testing.T) (*data.Federation, *nn.SoftmaxRegression) {
	t.Helper()
	cfg := data.DefaultSyntheticConfig(0.5, 0.5)
	cfg.Nodes = 10
	cfg.Dim = 10
	cfg.Classes = 4
	cfg.MeanSamples = 20
	cfg.Seed = 11
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed, &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}
}

func TestConfigValidate(t *testing.T) {
	good := Config{InnerLR: 0.1, MetaLR: 0.5, InnerSteps: 3, Rounds: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{InnerLR: 0, MetaLR: 0.5, InnerSteps: 3, Rounds: 5},
		{InnerLR: 0.1, MetaLR: 0, InnerSteps: 3, Rounds: 5},
		{InnerLR: 0.1, MetaLR: 1.5, InnerSteps: 3, Rounds: 5},
		{InnerLR: 0.1, MetaLR: 0.5, InnerSteps: 0, Rounds: 5},
		{InnerLR: 0.1, MetaLR: 0.5, InnerSteps: 3, Rounds: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTrainImprovesMetaObjective(t *testing.T) {
	fed, m := tinyFederation(t)
	theta0 := m.InitParams(rng.New(1))
	const alpha = 0.05
	before := eval.GlobalMetaObjective(m, fed, alpha, theta0)
	res, err := Train(m, fed, theta0, Config{InnerLR: alpha, MetaLR: 0.5, InnerSteps: 3, Rounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	after := eval.GlobalMetaObjective(m, fed, alpha, res.Theta)
	if after >= before {
		t.Errorf("Reptile did not improve the meta-objective: %v -> %v", before, after)
	}
}

func TestTrainDeterministic(t *testing.T) {
	fed, m := tinyFederation(t)
	cfg := Config{InnerLR: 0.05, MetaLR: 0.5, InnerSteps: 3, Rounds: 10, Seed: 2}
	a, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta.Dist(b.Theta) != 0 {
		t.Error("Reptile is not deterministic")
	}
}

func TestMetaLROneInterpolatesFully(t *testing.T) {
	// With ε = 1 the new θ is exactly the weighted average of the adapted
	// parameters.
	fed, m := tinyFederation(t)
	theta0 := m.InitParams(rng.New(3))
	res, err := Train(m, fed, theta0, Config{InnerLR: 0.05, MetaLR: 1, InnerSteps: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	weights := fed.Weights()
	adapted := make([]tensor.Vec, len(fed.Sources))
	for i, nd := range fed.Sources {
		phi := theta0.Clone()
		for s := 0; s < 2; s++ {
			phi.Axpy(-0.05, m.Grad(phi, nd.Train))
		}
		adapted[i] = phi
	}
	want := tensor.WeightedSum(weights, adapted)
	if res.Theta.Dist(want) > 1e-12 {
		t.Errorf("ε=1 round does not match weighted average (dist %v)", res.Theta.Dist(want))
	}
}

func TestOnRoundCallback(t *testing.T) {
	fed, m := tinyFederation(t)
	var rounds []int
	cfg := Config{InnerLR: 0.05, MetaLR: 0.5, InnerSteps: 2, Rounds: 3,
		OnRound: func(round int, theta tensor.Vec) { rounds = append(rounds, round) }}
	if _, err := Train(m, fed, nil, cfg); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 || rounds[2] != 3 {
		t.Errorf("callback rounds = %v", rounds)
	}
}

func TestTrainValidation(t *testing.T) {
	fed, m := tinyFederation(t)
	okCfg := Config{InnerLR: 0.05, MetaLR: 0.5, InnerSteps: 2, Rounds: 2}
	if _, err := Train(nil, fed, nil, okCfg); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Train(m, nil, nil, okCfg); err == nil {
		t.Error("nil federation accepted")
	}
	if _, err := Train(m, &data.Federation{}, nil, okCfg); err == nil {
		t.Error("empty federation accepted")
	}
	if _, err := Train(m, fed, tensor.NewVec(1), okCfg); err == nil {
		t.Error("bad theta0 accepted")
	}
	if _, err := Train(m, fed, nil, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTrainDivergenceDetected(t *testing.T) {
	fed, m := tinyFederation(t)
	if _, err := Train(m, fed, nil, Config{InnerLR: 1e200, MetaLR: 1, InnerSteps: 3, Rounds: 2}); err == nil {
		t.Error("divergent run reported success")
	}
}

// nanAtCall poisons a window of Grad calls; with Workers=1 the round loop
// visits nodes in index order (InnerSteps calls per node per round), so the
// window addresses an exact (node, round) pair.
type nanAtCall struct {
	nn.Model
	calls    int
	from, to int
}

func (m *nanAtCall) Grad(theta tensor.Vec, batch []data.Sample) tensor.Vec {
	g := m.Model.Grad(theta, batch).Clone()
	if m.calls >= m.from && m.calls < m.to {
		g[0] = math.NaN()
	}
	m.calls++
	return g
}

// Regression guard for the per-round error slots: a node failing in round 2
// is reported as that node and round, with no stale slot from round 1.
func TestTrainDivergenceNamesNodeAndRound(t *testing.T) {
	fed, base := tinyFederation(t)
	const steps = 3
	n := len(fed.Sources)
	from := n*steps + 2*steps // node 2's inner run in round 2
	m := &nanAtCall{Model: base, from: from, to: from + steps}
	cfg := Config{InnerLR: 0.05, MetaLR: 0.5, InnerSteps: steps, Rounds: 3, Workers: 1}
	_, err := Train(m, fed, nil, cfg)
	if err == nil {
		t.Fatal("poisoned gradient not detected")
	}
	want := "reptile: node 2 diverged in round 2"
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// Training results must be bit-identical for every worker count.
func TestTrainWorkerCountInvariance(t *testing.T) {
	fed, m := tinyFederation(t)
	cfg := Config{InnerLR: 0.05, MetaLR: 0.5, InnerSteps: 3, Rounds: 5, Seed: 3}
	cfg.Workers = 1
	ref, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		res, err := Train(m, fed, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Theta {
			if res.Theta[i] != ref.Theta[i] {
				t.Fatalf("workers=%d: theta[%d] = %v, want %v (bit-identical)", workers, i, res.Theta[i], ref.Theta[i])
			}
		}
	}
}

func TestTrainObserverRoundEvents(t *testing.T) {
	fed, m := tinyFederation(t)
	rec := obs.NewRecorder()
	cfg := Config{InnerLR: 0.05, MetaLR: 0.5, InnerSteps: 3, Rounds: 5, Seed: 1, Observer: rec}
	if _, err := Train(m, fed, nil, cfg); err != nil {
		t.Fatal(err)
	}
	rounds := rec.Rounds()
	if len(rounds) != cfg.Rounds {
		t.Fatalf("got %d round records, want %d", len(rounds), cfg.Rounds)
	}
	for k, r := range rounds {
		if r.Round != k+1 || r.Iter != (k+1)*cfg.InnerSteps {
			t.Errorf("record %d has wrong shape: %+v", k, r)
		}
		if r.UpdateNorm <= 0 {
			t.Errorf("record %d update norm %v not positive", k, r.UpdateNorm)
		}
	}
	if got := rec.Count(obs.TypeRoundEnd); got != cfg.Rounds {
		t.Errorf("round_end events = %d, want %d", got, cfg.Rounds)
	}
}
