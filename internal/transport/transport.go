// Package transport provides the message pipe between the platform and the
// edge nodes. Two implementations share one interface: an in-memory channel
// pipe for single-process simulation, and a TCP pipe (encoding/gob framing)
// that exercises a real network path. The federated runtime in
// internal/core is written against Link only, so the same Algorithm 1/2 code
// runs over either.
package transport

import (
	"errors"
	"fmt"
)

// Kind discriminates wire messages.
type Kind int

const (
	// KindParams carries global parameters from the platform to a node.
	KindParams Kind = iota + 1
	// KindUpdate carries locally-updated parameters from a node.
	KindUpdate
	// KindDone tells a node that training is over.
	KindDone
	// KindError reports a node-side failure to the platform.
	KindError
	// KindPartial carries a shard aggregator's round result — the
	// ω-weighted partial sum in Params plus the Partial metadata block —
	// up to the director in a two-tier topology.
	KindPartial
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindParams:
		return "params"
	case KindUpdate:
		return "update"
	case KindDone:
		return "done"
	case KindError:
		return "error"
	case KindPartial:
		return "partial"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Msg is one message between the platform and a node.
//
// Ownership of the Params slice transfers to the receiver when the message
// is sent: after Send returns, the sender must neither read nor mutate the
// slice, and the receiver may retain it indefinitely. This matters because
// the in-memory link passes slices by reference (no serialization) and the
// senders in internal/core reuse their parameter buffers across rounds — a
// sender that keeps writing into a sent slice would corrupt the receiver's
// copy. Senders that want to keep using a buffer must Send a Clone.
type Msg struct {
	Kind   Kind      `json:"kind"`
	Round  int       `json:"round"`
	NodeID int       `json:"node_id"`
	Params []float64 `json:"params,omitempty"`
	// Version tags the global parameter vector a message refers to: the
	// platform stamps each KindParams broadcast with the number of
	// aggregations applied to θ so far, and nodes echo it on the KindUpdate
	// reply. The async platform computes an update's staleness as the
	// difference between its current version and the echoed one. Zero on the
	// sync path (which tracks freshness by Round instead).
	Version int `json:"version,omitempty"`
	// LocalSteps, when positive on a KindParams message, overrides the
	// node's configured T0 for this round — the knob the platform uses to
	// balance communication against local computation (§IV of the paper).
	LocalSteps int `json:"local_steps,omitempty"`
	// Err carries a node-side error description on KindError.
	Err string `json:"err,omitempty"`
	// Codec and Payload carry compressed parameters instead of Params: when
	// Codec is non-empty, Payload holds the parameter vector encoded by the
	// internal/codec implementation Codec names, and Params is empty. Every
	// message is self-describing — a receiver instantiates the named codec
	// on first sight, so mixed fleets and codec changes need no handshake
	// round. Payload follows the same ownership contract as Params.
	Codec   string `json:"codec,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	// Partial carries the shard-aggregation metadata of a KindPartial
	// message; Params holds the unnormalized partial sum Σ ω·u it belongs
	// to. Nil on every other kind.
	Partial *Partial `json:"partial,omitempty"`
}

// ShardStats mirrors the platform's communication counters for transit in a
// Partial, so the shard wire protocol does not depend on internal/core. The
// semantics match core.CommStats field for field.
type ShardStats struct {
	Rounds         int   `json:"rounds"`
	Messages       int   `json:"messages"`
	Bytes          int64 `json:"bytes"`
	Dropped        int   `json:"dropped"`
	Rejoined       int   `json:"rejoined"`
	Rejected       int   `json:"rejected"`
	SkippedRounds  int   `json:"skipped_rounds"`
	StaleApplied   int   `json:"stale_applied"`
	StaleDropped   int   `json:"stale_dropped"`
	BudgetFiltered int   `json:"budget_filtered,omitempty"`
}

// Partial is the metadata block of a shard aggregator's round result. The
// accompanying Msg.Params holds the shard's unnormalized weighted update
// sum; the director merges partials with the aggregation core's fixed merge
// rule and divides once at the root.
type Partial struct {
	// Weight is the merge-rule-folded sum of the aggregation weights of
	// the updates inside the partial sum (0 when Count is 0).
	Weight float64 `json:"weight"`
	// FullWeight is the merge-rule-folded weight total of every node the
	// shard owns, responding or not — the denominator contribution of the
	// unbiased-participation estimator.
	FullWeight float64 `json:"full_weight"`
	// Count is the number of node updates aggregated into the partial sum.
	// Zero means the shard contributed nothing this round and Msg.Params
	// is empty.
	Count int `json:"count"`
	// Dispersion is the shard's weighted mean distance of its accepted
	// updates from the shard-local aggregate — the within-shard half of
	// the hierarchical similarity proxy.
	Dispersion float64 `json:"dispersion"`
	// Alive is the shard's live node count after the round.
	Alive int `json:"alive"`
	// Stats is the shard's cumulative communication accounting after this
	// round. The director's totals are the sum of the latest Stats of
	// every shard, which is what makes root/shard counter parity exact.
	Stats ShardStats `json:"stats"`
}

// Link is one endpoint of a bidirectional, ordered, reliable message pipe.
// Send and Recv may be used from different goroutines, but neither is safe
// for concurrent use with itself.
//
// Implementations must honor the Msg.Params ownership contract: a message
// handed to Send belongs to the far endpoint from that moment on, and a
// message returned by Recv belongs to the caller. Implementations may pass
// the Params slice through by reference (the in-memory pipe does) or copy
// it (the TCP pipe serializes); callers cannot tell the difference as long
// as they respect the contract.
type Link interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
}

// ErrClosed is returned by operations on a closed link.
var ErrClosed = errors.New("transport: link closed")
