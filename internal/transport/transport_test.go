package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func roundTrip(t *testing.T, a, b Link) {
	t.Helper()
	want := Msg{Kind: KindParams, Round: 3, NodeID: 7, Params: []float64{1, 2.5, -3}}
	errc := make(chan error, 1)
	go func() { errc <- a.Send(want) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
	if got.Kind != want.Kind || got.Round != want.Round || got.NodeID != want.NodeID {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if len(got.Params) != 3 || got.Params[1] != 2.5 {
		t.Fatalf("params corrupted: %v", got.Params)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	roundTrip(t, a, b)
	roundTrip(t, b, a) // both directions
}

func TestMemoryCloseUnblocksPeer(t *testing.T) {
	a, b := Pair()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after peer close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock after peer Close")
	}
	if err := a.Send(Msg{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on closed link = %v, want ErrClosed", err)
	}
}

func TestMemoryCloseIdempotent(t *testing.T) {
	a, b := Pair()
	_ = b
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
}

func TestMemoryManyMessagesOrdered(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(Msg{Round: i}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Round != i {
			t.Fatalf("out of order: got round %d at position %d", m.Round, i)
		}
	}
	wg.Wait()
}

func newTCPPair(t *testing.T) (server, client Link) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type dialResult struct {
		link Link
		err  error
	}
	dialc := make(chan dialResult, 1)
	go func() {
		l, err := Dial(ln.Addr().String())
		dialc <- dialResult{l, err}
	}()
	links, err := Accept(ln, 1)
	if err != nil {
		t.Fatal(err)
	}
	dr := <-dialc
	if dr.err != nil {
		t.Fatal(dr.err)
	}
	t.Cleanup(func() {
		links[0].Close()
		dr.link.Close()
	})
	return links[0], dr.link
}

func TestTCPRoundTrip(t *testing.T) {
	s, c := newTCPPair(t)
	roundTrip(t, s, c)
	roundTrip(t, c, s)
}

func TestTCPLargeParams(t *testing.T) {
	s, c := newTCPPair(t)
	params := make([]float64, 100000)
	for i := range params {
		params[i] = float64(i) * 0.001
	}
	go func() {
		_ = s.Send(Msg{Kind: KindUpdate, Params: params})
	}()
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params) != len(params) || got.Params[99999] != params[99999] {
		t.Error("large payload corrupted")
	}
}

func TestTCPCloseGivesErrClosed(t *testing.T) {
	s, c := newTCPPair(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after peer close = %v, want ErrClosed", err)
	}
}

func TestDialBadAddr(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a dead port succeeded")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindParams: "params",
		KindUpdate: "update",
		KindDone:   "done",
		KindError:  "error",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
