package transport

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/edgeai/fedml/internal/rng"
)

// ErrInjected marks a fault manufactured by a Chaos link. Callers that
// retry transient failures (core.RunNode) treat it like any other link
// error; tests can errors.Is against it to tell injected faults from real
// ones.
var ErrInjected = fmt.Errorf("transport: injected fault")

// ChaosOp is one scripted fault action.
type ChaosOp int

const (
	// OpKill silences the link in both directions (a crashed or partitioned
	// node): outbound messages vanish, inbound messages are discarded.
	OpKill ChaosOp = iota + 1
	// OpRevive undoes OpKill; traffic flows again.
	OpRevive
	// OpPartitionToNode drops platform→node traffic only.
	OpPartitionToNode
	// OpPartitionFromNode drops node→platform traffic only.
	OpPartitionFromNode
	// OpHeal undoes both one-way partitions.
	OpHeal
	// OpCorrupt corrupts the payload of the next node→platform message.
	OpCorrupt
	// OpDrop silently discards the next node→platform message.
	OpDrop
	// OpSendErr makes the next platform→node Send fail with ErrInjected.
	OpSendErr
	// OpSlow sets a scripted per-link latency (ChaosEvent.Arg) added to
	// every delivered message from the firing round on — a straggler knob
	// independent of the uniform Latency/Jitter. Arg 0 clears it.
	OpSlow
)

var chaosOpNames = map[string]ChaosOp{
	"kill":      OpKill,
	"revive":    OpRevive,
	"part-send": OpPartitionToNode,
	"part-recv": OpPartitionFromNode,
	"heal":      OpHeal,
	"corrupt":   OpCorrupt,
	"drop":      OpDrop,
	"send-err":  OpSendErr,
	"slow":      OpSlow,
}

// String implements fmt.Stringer.
func (op ChaosOp) String() string {
	for name, o := range chaosOpNames {
		if o == op {
			return name
		}
	}
	return fmt.Sprintf("ChaosOp(%d)", int(op))
}

// ChaosEvent schedules Op to fire when the link first observes the given
// (1-based) protocol round on an outbound KindParams message.
type ChaosEvent struct {
	Round int
	Op    ChaosOp
	// Arg parameterizes ops that take a value: for OpSlow it is the
	// scripted per-link latency (0 clears it). Ignored by every other op.
	Arg time.Duration
}

// ChaosConfig parameterizes a Chaos link. The zero value injects nothing.
type ChaosConfig struct {
	// Seed drives the link's private random stream; two links built with the
	// same seed and config inject the same fault sequence.
	Seed uint64
	// DropProb is the probability that any delivered message (either
	// direction) is silently discarded.
	DropProb float64
	// CorruptProb is the probability that a node→platform payload is
	// corrupted (NaN/Inf injection, exponent bit-flip, or norm explosion).
	CorruptProb float64
	// SendErrProb is the probability that a platform→node Send fails with a
	// transient ErrInjected instead of transmitting.
	SendErrProb float64
	// Latency and Jitter delay every delivered message by
	// Latency + |N(0,1)|·Jitter.
	Latency time.Duration
	Jitter  time.Duration
	// Scenario scripts round-keyed faults ("node dies at round 5, returns
	// at round 9"). Events fire in round order.
	Scenario []ChaosEvent
}

// Chaos wraps the platform-side endpoint of a Link with deterministic,
// seeded fault injection: message drops, payload corruption, transient send
// errors, latency, and scripted kill/revive/partition scenarios. It tracks
// the protocol round from outbound KindParams messages, so scenarios are
// expressed in the same round numbers the training loop uses.
//
// Send is the platform→node direction and Recv the node→platform direction;
// wrap the node-side endpoint only for direction-agnostic faults.
type Chaos struct {
	inner Link
	cfg   ChaosConfig

	mu           sync.Mutex
	rand         *rng.Rand
	pending      []ChaosEvent // sorted by Round, unfired suffix
	killed       bool
	partToNode   bool
	partFromNode bool
	corruptNext  int
	dropNext     int
	sendErrNext  int
	slow         time.Duration // scripted per-link latency (OpSlow)

	// Stats count injected faults (under mu); useful for assertions.
	Dropped   int
	Corrupted int
	Errored   int
}

var _ Link = (*Chaos)(nil)

// NewChaos wraps inner with fault injection per cfg.
func NewChaos(inner Link, cfg ChaosConfig) *Chaos {
	c := &Chaos{
		inner: inner,
		cfg:   cfg,
		rand:  rng.New(cfg.Seed ^ 0xc4a05),
	}
	c.pending = append(c.pending, cfg.Scenario...)
	sort.SliceStable(c.pending, func(i, j int) bool { return c.pending[i].Round < c.pending[j].Round })
	return c
}

// observeRound fires every scripted event scheduled at or before round.
// Called with mu held.
func (c *Chaos) observeRound(round int) {
	if round <= 0 {
		return
	}
	for len(c.pending) > 0 && c.pending[0].Round <= round {
		ev := c.pending[0]
		c.pending = c.pending[1:]
		switch ev.Op {
		case OpKill:
			c.killed = true
		case OpRevive:
			c.killed = false
		case OpPartitionToNode:
			c.partToNode = true
		case OpPartitionFromNode:
			c.partFromNode = true
		case OpHeal:
			c.partToNode, c.partFromNode = false, false
		case OpCorrupt:
			c.corruptNext++
		case OpDrop:
			c.dropNext++
		case OpSendErr:
			c.sendErrNext++
		case OpSlow:
			c.slow = ev.Arg
		}
	}
}

// delay computes the next per-message latency. Called with mu held; the
// caller sleeps after releasing the lock.
func (c *Chaos) delay() time.Duration {
	if c.cfg.Latency <= 0 && c.cfg.Jitter <= 0 && c.slow <= 0 {
		return 0
	}
	d := c.cfg.Latency + c.slow
	if c.cfg.Jitter > 0 {
		d += time.Duration(math.Abs(c.rand.Norm()) * float64(c.cfg.Jitter))
	}
	return d
}

// Send implements Link (platform→node). Scripted events fire off the round
// numbers of outbound KindParams messages before any fault is applied, so a
// kill scheduled for round r suppresses the round-r broadcast itself.
func (c *Chaos) Send(m Msg) error {
	c.mu.Lock()
	if m.Kind == KindParams {
		c.observeRound(m.Round)
	}
	if c.sendErrNext > 0 || (c.cfg.SendErrProb > 0 && c.rand.Float64() < c.cfg.SendErrProb) {
		if c.sendErrNext > 0 {
			c.sendErrNext--
		}
		c.Errored++
		c.mu.Unlock()
		return fmt.Errorf("chaos send: %w", ErrInjected)
	}
	drop := c.killed || c.partToNode ||
		(c.cfg.DropProb > 0 && c.rand.Float64() < c.cfg.DropProb)
	if drop {
		c.Dropped++
	}
	d := c.delay()
	c.mu.Unlock()

	if d > 0 {
		time.Sleep(d)
	}
	if drop {
		return nil // the message vanishes in the network
	}
	return c.inner.Send(m)
}

// Recv implements Link (node→platform). Messages arriving while the link is
// killed or partitioned are discarded, as a real network would lose them.
func (c *Chaos) Recv() (Msg, error) {
	for {
		m, err := c.inner.Recv()
		if err != nil {
			return Msg{}, err
		}
		c.mu.Lock()
		drop := c.killed || c.partFromNode || c.dropNext > 0 ||
			(c.cfg.DropProb > 0 && c.rand.Float64() < c.cfg.DropProb)
		if drop {
			if c.dropNext > 0 {
				c.dropNext--
			}
			c.Dropped++
			c.mu.Unlock()
			continue
		}
		corrupt := (len(m.Params) > 0 || len(m.Payload) > 0) &&
			(c.corruptNext > 0 || (c.cfg.CorruptProb > 0 && c.rand.Float64() < c.cfg.CorruptProb))
		if corrupt {
			if c.corruptNext > 0 {
				c.corruptNext--
			}
			if len(m.Params) > 0 {
				c.corruptPayload(m.Params)
			} else {
				c.corruptBytes(m.Payload)
			}
			c.Corrupted++
		}
		d := c.delay()
		c.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
		return m, nil
	}
}

// corruptPayload damages p in place with one of four wire-fault shapes: NaN
// injection, +Inf injection, an exponent bit-flip, or a norm explosion. The
// first two must be caught by the platform's finite check, the last two by
// the norm guard. Called with mu held.
func (c *Chaos) corruptPayload(p []float64) {
	k := c.rand.IntN(len(p))
	switch c.rand.IntN(4) {
	case 0:
		p[k] = math.NaN()
	case 1:
		p[k] = math.Inf(1)
	case 2:
		// Exponent stuck-at-one: sign and mantissa survive but the
		// magnitude saturates near the float64 maximum (~9e307), so the
		// value stays finite yet explodes any norm guard.
		p[k] = math.Float64frombits(math.Float64bits(p[k]) | 0x7FE0000000000000)
	default:
		for i := range p {
			p[i] *= 1e9
		}
	}
}

// corruptBytes damages an encoded (codec) payload in place: between one and
// eight random bit flips anywhere in the buffer, modeling the same wire
// faults on compressed traffic. The receiving codec must either reject the
// payload outright or decode values the sanitation guard then catches.
// Called with mu held.
func (c *Chaos) corruptBytes(p []byte) {
	flips := 1 + c.rand.IntN(8)
	for j := 0; j < flips; j++ {
		p[c.rand.IntN(len(p))] ^= 1 << c.rand.IntN(8)
	}
}

// Close implements Link.
func (c *Chaos) Close() error { return c.inner.Close() }

// Stats returns the injected-fault counters (dropped, corrupted, errored).
func (c *Chaos) Stats() (dropped, corrupted, errored int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Dropped, c.Corrupted, c.Errored
}

// ParseScenario parses a comma-separated chaos script of the form
// "<node>:<op>@<round>", e.g. "3:kill@5,3:revive@9,1:corrupt@4", into
// per-node event lists. Ops: kill, revive, part-send, part-recv, heal,
// corrupt, drop, send-err, slow. Ops that take an argument use
// "<node>:<op>=<arg>@<round>"; slow takes a time.ParseDuration latency,
// e.g. "2:slow=100ms@3" (and "2:slow=0s@9" clears it).
func ParseScenario(s string) (map[int][]ChaosEvent, error) {
	out := map[int][]ChaosEvent{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		node, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("transport: scenario %q: want <node>:<op>@<round>", part)
		}
		opToken, roundStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("transport: scenario %q: missing @<round>", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(node))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("transport: scenario %q: bad node index", part)
		}
		opName, argStr, hasArg := strings.Cut(opToken, "=")
		op, ok := chaosOpNames[strings.TrimSpace(opName)]
		if !ok {
			return nil, fmt.Errorf("transport: scenario %q: unknown op %q", part, opName)
		}
		var arg time.Duration
		switch {
		case op == OpSlow && !hasArg:
			return nil, fmt.Errorf("transport: scenario %q: slow needs a duration (slow=<dur>)", part)
		case op == OpSlow:
			arg, err = time.ParseDuration(strings.TrimSpace(argStr))
			if err != nil || arg < 0 {
				return nil, fmt.Errorf("transport: scenario %q: bad slow duration %q", part, argStr)
			}
		case hasArg:
			return nil, fmt.Errorf("transport: scenario %q: op %q takes no argument", part, opName)
		}
		r, err := strconv.Atoi(strings.TrimSpace(roundStr))
		if err != nil || r < 1 {
			return nil, fmt.Errorf("transport: scenario %q: bad round", part)
		}
		out[n] = append(out[n], ChaosEvent{Round: r, Op: op, Arg: arg})
	}
	return out, nil
}
