package transport

import (
	"errors"
	"testing"
	"time"
)

func TestAsyncRoundTrip(t *testing.T) {
	p, n := Pair()
	a := NewAsync(p, 2)
	defer a.Close()
	defer n.Close()

	go func() {
		m, err := n.Recv()
		if err != nil {
			return
		}
		m.Round++
		_ = n.Send(m)
	}()

	if err := a.TrySend(Msg{Kind: KindParams, Round: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := a.TryRecv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 2 {
		t.Errorf("round = %d, want 2", got.Round)
	}
}

func TestAsyncRecvTimeoutOnSilentPeer(t *testing.T) {
	p, n := Pair()
	a := NewAsync(p, 1)
	defer a.Close()
	defer n.Close()

	start := time.Now()
	_, err := a.TryRecv(30 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestAsyncSendTimeoutWhenPeerNotReceiving(t *testing.T) {
	p, n := Pair()
	a := NewAsync(p, 1)
	defer a.Close()
	defer n.Close()

	// First send fills the queue (pump blocks on the unbuffered pipe since
	// the peer never calls Recv); second send must time out.
	if err := a.TrySend(Msg{Round: 1}, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadlineHit := false
	for i := 0; i < 3; i++ {
		if err := a.TrySend(Msg{Round: 2 + i}, 30*time.Millisecond); errors.Is(err, ErrTimeout) {
			deadlineHit = true
			break
		}
	}
	if !deadlineHit {
		t.Error("sends to a non-receiving peer never timed out")
	}
}

func TestAsyncSurfacesPeerClose(t *testing.T) {
	p, n := Pair()
	a := NewAsync(p, 1)
	defer a.Close()

	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := a.TryRecv(time.Second)
	if !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	// The error stays observable on subsequent calls.
	_, err = a.TryRecv(50 * time.Millisecond)
	if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrTimeout) {
		t.Errorf("second err = %v", err)
	}
}

func TestAsyncCloseIdempotentAndUnblocks(t *testing.T) {
	p, n := Pair()
	a := NewAsync(p, 1)
	defer n.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = a.TryRecv(10 * time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock TryRecv")
	}
	if err := a.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
	if err := a.TrySend(Msg{}, 10*time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
}

func TestAsyncQueueDepthDefaultsToOne(t *testing.T) {
	p, n := Pair()
	a := NewAsync(p, 0)
	defer a.Close()
	defer n.Close()
	// Just exercise that a zero queue still works.
	go func() { _, _ = n.Recv() }()
	if err := a.TrySend(Msg{}, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncOverTCP(t *testing.T) {
	s, c := newTCPPair(t)
	a := NewAsync(s, 2)
	defer a.Close()

	go func() {
		m, err := c.Recv()
		if err != nil {
			return
		}
		_ = c.Send(m)
	}()
	if err := a.TrySend(Msg{Kind: KindUpdate, Params: []float64{1, 2}}, time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := a.TryRecv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params) != 2 {
		t.Error("payload lost over async TCP")
	}
}
