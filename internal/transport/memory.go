package transport

import "sync"

// memLink is one endpoint of an in-memory pipe. Messages pass through
// unbuffered channels, so a Send rendezvouses with the peer's Recv — the
// same back-pressure a synchronous network call would apply.
type memLink struct {
	send chan<- Msg
	recv <-chan Msg

	closed chan struct{}
	once   sync.Once
	peer   *memLink
}

var _ Link = (*memLink)(nil)

// Pair returns the two endpoints of a connected in-memory pipe. Closing
// either endpoint unblocks both sides.
func Pair() (Link, Link) {
	ab := make(chan Msg)
	ba := make(chan Msg)
	a := &memLink{send: ab, recv: ba, closed: make(chan struct{})}
	b := &memLink{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Link.
func (l *memLink) Send(m Msg) error {
	select {
	case <-l.closed:
		return ErrClosed
	case <-l.peer.closed:
		return ErrClosed
	case l.send <- m:
		return nil
	}
}

// Recv implements Link.
func (l *memLink) Recv() (Msg, error) {
	select {
	case <-l.closed:
		return Msg{}, ErrClosed
	case <-l.peer.closed:
		return Msg{}, ErrClosed
	case m := <-l.recv:
		return m, nil
	}
}

// Close implements Link. It is idempotent.
func (l *memLink) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}
