package transport

import (
	"sync"
	"testing"
	"time"
)

// TestAsyncCloseVsTryOps hammers TrySend/TryRecv from multiple goroutines
// while Close fires concurrently. Run under -race (make check) it verifies
// the pump teardown does not race with in-flight operations; in any mode it
// verifies nothing deadlocks or panics.
func TestAsyncCloseVsTryOps(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		p, n := Pair()
		a := NewAsync(p, 1)

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(3)
		go func() { // peer echo until its link dies
			defer wg.Done()
			for {
				m, err := n.Recv()
				if err != nil {
					return
				}
				if n.Send(m) != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = a.TrySend(Msg{Kind: KindParams, Round: 1}, time.Millisecond)
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = a.TryRecv(time.Millisecond)
			}
		}()

		time.Sleep(time.Millisecond)
		_ = a.Close()
		_ = n.Close()
		close(stop)
		wg.Wait()

		// After Close every operation must fail fast, not hang.
		if err := a.TrySend(Msg{}, 10*time.Millisecond); err == nil {
			t.Fatal("TrySend succeeded on a closed Async")
		}
	}
}

// TestAsyncDoubleCloseConcurrent verifies Close is idempotent under
// concurrent invocation.
func TestAsyncDoubleCloseConcurrent(t *testing.T) {
	p, n := Pair()
	defer n.Close()
	a := NewAsync(p, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Close()
		}()
	}
	wg.Wait()
}

// TestAsyncDeepQueueUnderLatency drives an Async wrapper at queue depth 4
// over a chaos link with per-message latency: sends must pipeline (all four
// accepted without waiting out the per-message delay), every queued message
// must eventually be delivered in order, and nothing may be lost or
// duplicated. This is the transport posture the buffered-async platform loop
// relies on for straggler nodes.
func TestAsyncDeepQueueUnderLatency(t *testing.T) {
	const depth = 4
	p, n := Pair()
	chaos := NewChaos(p, ChaosConfig{Seed: 9, Latency: 20 * time.Millisecond})
	a := NewAsync(chaos, depth)
	defer a.Close()
	defer n.Close()
	go func() {
		for {
			m, err := n.Recv()
			if err != nil || m.Kind == KindDone {
				return
			}
			if n.Send(Msg{Kind: KindUpdate, Round: m.Round, NodeID: 0}) != nil {
				return
			}
		}
	}()

	start := time.Now()
	for r := 1; r <= depth; r++ {
		if err := a.TrySend(Msg{Kind: KindParams, Round: r, Params: []float64{1}}, time.Second); err != nil {
			t.Fatalf("queued send %d: %v", r, err)
		}
	}
	// Four sends into a depth-4 queue must not serialize on the 20ms
	// per-message latency (the pump owns the delay, not the caller).
	if queued := time.Since(start); queued > 15*time.Millisecond {
		t.Errorf("queueing %d sends took %v, want fast-path enqueue", depth, queued)
	}
	for r := 1; r <= depth; r++ {
		m, err := a.TryRecv(2 * time.Second)
		if err != nil {
			t.Fatalf("echo %d: %v", r, err)
		}
		if m.Round != r {
			t.Fatalf("echo out of order: got round %d, want %d", m.Round, r)
		}
	}
}

// TestAsyncDeepQueueCloseVsTryOps repeats the close-vs-ops hammer at queue
// depth 3 with chaos latency and jitter in the path, so teardown races
// against messages still sitting in the send queue and delay timers still
// pending inside the chaos pumps.
func TestAsyncDeepQueueCloseVsTryOps(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		p, n := Pair()
		chaos := NewChaos(p, ChaosConfig{
			Seed:    uint64(iter),
			Latency: 200 * time.Microsecond,
			Jitter:  200 * time.Microsecond,
		})
		a := NewAsync(chaos, 3)

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(3)
		go func() { // peer echo until its link dies
			defer wg.Done()
			for {
				m, err := n.Recv()
				if err != nil {
					return
				}
				if n.Send(m) != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for r := 1; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = a.TrySend(Msg{Kind: KindParams, Round: r}, time.Millisecond)
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = a.TryRecv(time.Millisecond)
			}
		}()

		time.Sleep(2 * time.Millisecond)
		_ = a.Close()
		_ = n.Close()
		close(stop)
		wg.Wait()

		if err := a.TrySend(Msg{}, 10*time.Millisecond); err == nil {
			t.Fatal("TrySend succeeded on a closed Async")
		}
		// TryRecv may still drain messages queued before the close; after the
		// queue empties it must fail, not hang.
		for i := 0; ; i++ {
			if _, err := a.TryRecv(10 * time.Millisecond); err != nil {
				break
			}
			if i > 3 { // queue depth is 3; anything more is a leak
				t.Fatal("TryRecv kept producing messages on a closed Async")
			}
		}
	}
}
