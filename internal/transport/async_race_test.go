package transport

import (
	"sync"
	"testing"
	"time"
)

// TestAsyncCloseVsTryOps hammers TrySend/TryRecv from multiple goroutines
// while Close fires concurrently. Run under -race (make check) it verifies
// the pump teardown does not race with in-flight operations; in any mode it
// verifies nothing deadlocks or panics.
func TestAsyncCloseVsTryOps(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		p, n := Pair()
		a := NewAsync(p, 1)

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(3)
		go func() { // peer echo until its link dies
			defer wg.Done()
			for {
				m, err := n.Recv()
				if err != nil {
					return
				}
				if n.Send(m) != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = a.TrySend(Msg{Kind: KindParams, Round: 1}, time.Millisecond)
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = a.TryRecv(time.Millisecond)
			}
		}()

		time.Sleep(time.Millisecond)
		_ = a.Close()
		_ = n.Close()
		close(stop)
		wg.Wait()

		// After Close every operation must fail fast, not hang.
		if err := a.TrySend(Msg{}, 10*time.Millisecond); err == nil {
			t.Fatal("TrySend succeeded on a closed Async")
		}
	}
}

// TestAsyncDoubleCloseConcurrent verifies Close is idempotent under
// concurrent invocation.
func TestAsyncDoubleCloseConcurrent(t *testing.T) {
	p, n := Pair()
	defer n.Close()
	a := NewAsync(p, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Close()
		}()
	}
	wg.Wait()
}
