package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// tcpLink frames Msg values over a net.Conn with encoding/gob.
type tcpLink struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	sendMu sync.Mutex
	recvMu sync.Mutex
	once   sync.Once
}

var _ Link = (*tcpLink)(nil)

// NewConnLink wraps an established connection as a Link. The caller hands
// over ownership of conn; Close closes it.
func NewConnLink(conn net.Conn) Link {
	return &tcpLink{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}
}

// Dial connects to a platform listening at addr and returns the node-side
// endpoint.
func Dial(addr string) (Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConnLink(conn), nil
}

// Accept accepts n node connections from ln and returns their platform-side
// endpoints in accept order.
func Accept(ln net.Listener, n int) ([]Link, error) {
	links := make([]Link, 0, n)
	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			for _, l := range links {
				_ = l.Close()
			}
			return nil, fmt.Errorf("transport: accept node %d: %w", i, err)
		}
		links = append(links, NewConnLink(conn))
	}
	return links, nil
}

// Send implements Link.
func (l *tcpLink) Send(m Msg) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	if err := l.enc.Encode(m); err != nil {
		return fmt.Errorf("transport: send: %w", mapClosed(err))
	}
	return nil
}

// Recv implements Link.
func (l *tcpLink) Recv() (Msg, error) {
	l.recvMu.Lock()
	defer l.recvMu.Unlock()
	var m Msg
	if err := l.dec.Decode(&m); err != nil {
		return Msg{}, fmt.Errorf("transport: recv: %w", mapClosed(err))
	}
	return m, nil
}

// Close implements Link; idempotent.
func (l *tcpLink) Close() error {
	var err error
	l.once.Do(func() { err = l.conn.Close() })
	return err
}

func mapClosed(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}
