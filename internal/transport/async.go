package transport

import (
	"errors"
	"sync"
	"time"
)

// ErrTimeout reports that an Async operation exceeded its deadline.
var ErrTimeout = errors.New("transport: operation timed out")

// Async wraps a Link with goroutine-pumped, buffered I/O so a caller can
// impose per-operation deadlines without ever blocking on a dead or slow
// peer. The platform uses it for fault-tolerant rounds: a straggler that
// misses the round deadline is dropped instead of stalling the federation.
type Async struct {
	link  Link
	sendQ chan Msg
	recvQ chan Msg
	errc  chan error
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// NewAsync starts the I/O pumps for link with the given queue depth per
// direction. Close stops the pumps and closes the underlying link.
func NewAsync(link Link, queue int) *Async {
	if queue < 1 {
		queue = 1
	}
	a := &Async{
		link:  link,
		sendQ: make(chan Msg, queue),
		recvQ: make(chan Msg, queue),
		errc:  make(chan error, 2), // one slot per pump
		done:  make(chan struct{}),
	}
	a.wg.Add(2)
	go a.sendLoop()
	go a.recvLoop()
	return a
}

func (a *Async) sendLoop() {
	defer a.wg.Done()
	for {
		select {
		case <-a.done:
			return
		case m := <-a.sendQ:
			if err := a.link.Send(m); err != nil {
				a.reportErr(err)
				return
			}
		}
	}
}

func (a *Async) recvLoop() {
	defer a.wg.Done()
	for {
		m, err := a.link.Recv()
		if err != nil {
			a.reportErr(err)
			return
		}
		select {
		case <-a.done:
			return
		case a.recvQ <- m:
		}
	}
}

func (a *Async) reportErr(err error) {
	select {
	case a.errc <- err:
	default:
	}
}

// TrySend enqueues m, waiting at most timeout for queue space. It returns
// ErrTimeout on deadline, or the pump's error if the link has failed.
// Close takes priority over free queue space (a queued message would never
// be sent once the pumps have stopped).
func (a *Async) TrySend(m Msg, timeout time.Duration) error {
	select {
	case <-a.done:
		return ErrClosed
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case a.sendQ <- m:
		return nil
	case err := <-a.errc:
		a.reportErr(err) // keep it observable for later calls
		return err
	case <-a.done:
		return ErrClosed
	case <-timer.C:
		return ErrTimeout
	}
}

// TryRecv waits at most timeout for an inbound message. Messages already
// queued are delivered even if the link has since closed.
func (a *Async) TryRecv(timeout time.Duration) (Msg, error) {
	select {
	case m := <-a.recvQ:
		return m, nil
	default:
	}
	select {
	case <-a.done:
		return Msg{}, ErrClosed
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m := <-a.recvQ:
		return m, nil
	case err := <-a.errc:
		a.reportErr(err)
		return Msg{}, err
	case <-a.done:
		return Msg{}, ErrClosed
	case <-timer.C:
		return Msg{}, ErrTimeout
	}
}

// Close stops the pumps and closes the underlying link. It is idempotent
// and waits for the pump goroutines to exit.
func (a *Async) Close() error {
	var err error
	a.once.Do(func() {
		close(a.done)
		err = a.link.Close()
		a.wg.Wait()
	})
	return err
}
