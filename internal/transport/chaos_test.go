package transport

import (
	"errors"
	"math"
	"testing"
	"time"
)

// echoNode answers every KindParams message with a KindUpdate carrying the
// same round and params, until the link dies.
func echoNode(l Link, id int) {
	for {
		m, err := l.Recv()
		if err != nil || m.Kind == KindDone {
			return
		}
		if m.Kind != KindParams {
			continue
		}
		_ = l.Send(Msg{Kind: KindUpdate, Round: m.Round, NodeID: id, Params: m.Params})
	}
}

func TestChaosScenarioKillRevive(t *testing.T) {
	p, n := Pair()
	chaos := NewChaos(p, ChaosConfig{
		Seed:     7,
		Scenario: []ChaosEvent{{Round: 2, Op: OpKill}, {Round: 4, Op: OpRevive}},
	})
	a := NewAsync(chaos, 4)
	defer a.Close()
	defer n.Close()
	go echoNode(n, 0)

	send := func(round int) {
		t.Helper()
		if err := a.TrySend(Msg{Kind: KindParams, Round: round, Params: []float64{1}}, time.Second); err != nil {
			t.Fatalf("send round %d: %v", round, err)
		}
	}

	send(1)
	if m, err := a.TryRecv(time.Second); err != nil || m.Round != 1 {
		t.Fatalf("round 1 echo: %v %+v", err, m)
	}
	// Rounds 2 and 3 fall inside the kill window: broadcasts vanish, no
	// echo comes back.
	send(2)
	send(3)
	if _, err := a.TryRecv(100 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected silence during kill window, got err=%v", err)
	}
	// Round 4 fires the revive and flows through again.
	send(4)
	if m, err := a.TryRecv(time.Second); err != nil || m.Round != 4 {
		t.Fatalf("round 4 echo after revive: %v %+v", err, m)
	}
	if dropped, _, _ := chaos.Stats(); dropped < 2 {
		t.Errorf("dropped = %d, want >= 2", dropped)
	}
}

func TestChaosScenarioCorrupt(t *testing.T) {
	p, n := Pair()
	chaos := NewChaos(p, ChaosConfig{
		Seed:     11,
		Scenario: []ChaosEvent{{Round: 1, Op: OpCorrupt}},
	})
	defer chaos.Close()
	defer n.Close()
	go echoNode(n, 0)

	orig := []float64{1, 2, 3, 4}
	if err := chaos.Send(Msg{Kind: KindParams, Round: 1, Params: append([]float64(nil), orig...)}); err != nil {
		t.Fatal(err)
	}
	m, err := chaos.Recv()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, v := range m.Params {
		if v != orig[i] {
			same = false
		}
	}
	if same {
		t.Errorf("payload not corrupted: %v", m.Params)
	}
	if _, corrupted, _ := chaos.Stats(); corrupted != 1 {
		t.Errorf("corrupted = %d, want 1", corrupted)
	}
}

func TestChaosCorruptionShapesAreRejectable(t *testing.T) {
	// Every corruption mode must either break finiteness or blow up the
	// distance from the original vector, so the platform guard can always
	// catch it.
	c := NewChaos(nil, ChaosConfig{Seed: 3})
	for trial := 0; trial < 64; trial++ {
		p := []float64{0.5, -0.25, 1.5, 0}
		c.corruptPayload(p)
		finite := true
		var dist float64
		orig := []float64{0.5, -0.25, 1.5, 0}
		for i, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
			}
			dist += (v - orig[i]) * (v - orig[i])
		}
		if finite && math.Sqrt(dist) < 1e3 {
			t.Fatalf("trial %d: corruption %v neither non-finite nor norm-exploding", trial, p)
		}
	}
}

func TestChaosDropProbOne(t *testing.T) {
	p, n := Pair()
	chaos := NewChaos(p, ChaosConfig{Seed: 5, DropProb: 1})
	defer chaos.Close()
	defer n.Close()

	received := make(chan Msg, 8)
	go func() {
		for {
			m, err := n.Recv()
			if err != nil {
				close(received)
				return
			}
			received <- m
		}
	}()
	for r := 1; r <= 5; r++ {
		if err := chaos.Send(Msg{Kind: KindParams, Round: r}); err != nil {
			t.Fatalf("send %d: %v", r, err)
		}
	}
	chaos.Close()
	for m := range received {
		t.Errorf("message leaked through DropProb=1: %+v", m)
	}
	if dropped, _, _ := chaos.Stats(); dropped != 5 {
		t.Errorf("dropped = %d, want 5", dropped)
	}
}

func TestChaosInjectedSendError(t *testing.T) {
	p, n := Pair()
	chaos := NewChaos(p, ChaosConfig{Seed: 2, Scenario: []ChaosEvent{{Round: 1, Op: OpSendErr}}})
	defer chaos.Close()
	defer n.Close()

	err := chaos.Send(Msg{Kind: KindParams, Round: 1})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The fault is transient: the very next send works.
	go func() { _, _ = n.Recv() }()
	if err := chaos.Send(Msg{Kind: KindParams, Round: 1}); err != nil {
		t.Fatalf("send after injected error: %v", err)
	}
}

func TestChaosOneWayPartition(t *testing.T) {
	p, n := Pair()
	chaos := NewChaos(p, ChaosConfig{
		Seed:     9,
		Scenario: []ChaosEvent{{Round: 2, Op: OpPartitionFromNode}, {Round: 3, Op: OpHeal}},
	})
	a := NewAsync(chaos, 4)
	defer a.Close()
	defer n.Close()
	go echoNode(n, 0)

	// Round 2: the broadcast reaches the node, but its answer is lost.
	if err := a.TrySend(Msg{Kind: KindParams, Round: 2, Params: []float64{1}}, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TryRecv(100 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("update crossed a from-node partition: err=%v", err)
	}
	// Round 3 heals: traffic flows both ways again.
	if err := a.TrySend(Msg{Kind: KindParams, Round: 3, Params: []float64{1}}, time.Second); err != nil {
		t.Fatal(err)
	}
	if m, err := a.TryRecv(time.Second); err != nil || m.Round != 3 {
		t.Fatalf("echo after heal: %v %+v", err, m)
	}
}

func TestChaosDeterminism(t *testing.T) {
	// Two identically-seeded links make identical drop decisions.
	run := func() []bool {
		p, n := Pair()
		defer n.Close()
		chaos := NewChaos(p, ChaosConfig{Seed: 42, DropProb: 0.5})
		defer chaos.Close()
		go func() {
			for {
				if _, err := n.Recv(); err != nil {
					return
				}
			}
		}()
		var dropped []bool
		for r := 1; r <= 32; r++ {
			before, _, _ := chaos.Stats()
			if err := chaos.Send(Msg{Kind: KindParams, Round: r}); err != nil {
				t.Fatal(err)
			}
			after, _, _ := chaos.Stats()
			dropped = append(dropped, after > before)
		}
		return dropped
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop sequences diverge at message %d: %v vs %v", i, a, b)
		}
	}
}

func TestParseScenario(t *testing.T) {
	events, err := ParseScenario("3:kill@5, 3:revive@9 ,1:corrupt@4")
	if err != nil {
		t.Fatal(err)
	}
	if len(events[3]) != 2 || events[3][0] != (ChaosEvent{Round: 5, Op: OpKill}) || events[3][1] != (ChaosEvent{Round: 9, Op: OpRevive}) {
		t.Errorf("node 3 events = %+v", events[3])
	}
	if len(events[1]) != 1 || events[1][0] != (ChaosEvent{Round: 4, Op: OpCorrupt}) {
		t.Errorf("node 1 events = %+v", events[1])
	}
	if got, _ := ParseScenario("  "); len(got) != 0 {
		t.Errorf("empty scenario parsed to %+v", got)
	}
	for _, bad := range []string{"kill@5", "3:kill", "3:zap@5", "x:kill@5", "3:kill@0", "3:kill@x"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

func TestChaosLatency(t *testing.T) {
	p, n := Pair()
	chaos := NewChaos(p, ChaosConfig{Seed: 1, Latency: 30 * time.Millisecond})
	defer chaos.Close()
	defer n.Close()
	go echoNode(n, 0)

	start := time.Now()
	if err := chaos.Send(Msg{Kind: KindParams, Round: 1, Params: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := chaos.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("round trip took %v, want >= 60ms (two injected delays)", elapsed)
	}
}

func TestParseScenarioSlow(t *testing.T) {
	events, err := ParseScenario("2:slow=40ms@3,2:slow=0s@8")
	if err != nil {
		t.Fatal(err)
	}
	want := []ChaosEvent{
		{Round: 3, Op: OpSlow, Arg: 40 * time.Millisecond},
		{Round: 8, Op: OpSlow, Arg: 0},
	}
	if len(events[2]) != 2 || events[2][0] != want[0] || events[2][1] != want[1] {
		t.Errorf("node 2 events = %+v, want %+v", events[2], want)
	}
	for _, bad := range []string{
		"2:slow@3",          // slow needs a duration argument
		"2:slow=@3",         // empty duration
		"2:slow=banana@3",   // unparseable duration
		"2:slow=-10ms@3",    // negative duration
		"2:kill=40ms@3",     // arg on an op that takes none
		"2:corrupt=cksum@3", // arg on an op that takes none
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

// TestChaosScenarioSlow checks that a scripted slow op injects per-message
// latency from its round onward and that slow=0s clears it again.
func TestChaosScenarioSlow(t *testing.T) {
	p, n := Pair()
	chaos := NewChaos(p, ChaosConfig{
		Seed: 5,
		Scenario: []ChaosEvent{
			{Round: 2, Op: OpSlow, Arg: 25 * time.Millisecond},
			{Round: 3, Op: OpSlow, Arg: 0},
		},
	})
	defer chaos.Close()
	defer n.Close()
	go echoNode(n, 0)

	rtt := func(round int) time.Duration {
		t.Helper()
		start := time.Now()
		if err := chaos.Send(Msg{Kind: KindParams, Round: round, Params: []float64{1}}); err != nil {
			t.Fatalf("send round %d: %v", round, err)
		}
		if _, err := chaos.Recv(); err != nil {
			t.Fatalf("recv round %d: %v", round, err)
		}
		return time.Since(start)
	}

	if d := rtt(1); d > 20*time.Millisecond {
		t.Errorf("round 1 (before slow) took %v", d)
	}
	// Round 2 triggers the slowdown: outbound and echo both delayed.
	if d := rtt(2); d < 50*time.Millisecond {
		t.Errorf("round 2 (slow=25ms) took %v, want >= 50ms", d)
	}
	// Round 3 clears it.
	if d := rtt(3); d > 20*time.Millisecond {
		t.Errorf("round 3 (after slow=0s) took %v", d)
	}
}
