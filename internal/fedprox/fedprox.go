// Package fedprox exposes FedProx (Sahu et al., 2018) as a first-class
// baseline trainer. Each node's local objective is augmented with the
// proximal term (μ/2)‖θ_i − θ_global‖², which bounds client drift on
// heterogeneous federations — the knob that distinguishes it from plain
// FedAvg in the workload comparison matrices.
//
// The implementation delegates to fedavg.Train with ProxMu set: the proximal
// carve-out lives in fedavg's local-step loop (the gradient modification
// that cannot fuse with GradStepInto), so the two baselines share one
// audited round loop, one determinism contract, and one observer surface.
// This package only pins μ > 0 and gives the algorithm its own name in
// registries and reports.
package fedprox

import (
	"fmt"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/fedavg"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/tensor"
)

// Config holds the FedProx hyper-parameters.
type Config struct {
	// Eta is the local gradient-descent learning rate.
	Eta float64
	// Mu is the proximal coefficient; FedProx requires μ > 0 (μ = 0 is
	// FedAvg — use that package instead).
	Mu float64
	// T is the total number of local iterations; T0 the number between
	// aggregations. T must be a multiple of T0.
	T, T0 int
	// Seed drives the default initialization.
	Seed uint64
	// Workers bounds the per-round node fan-out (0 = GOMAXPROCS).
	Workers int
	// OnRound, when non-nil, is invoked after each aggregation. theta is a
	// borrowed buffer; Clone to retain.
	OnRound func(round, iter int, theta tensor.Vec)
	// Observer, when non-nil, receives round lifecycle events.
	Observer obs.RoundObserver
}

// Result is the outcome of a FedProx run.
type Result struct {
	// Theta is the final global model.
	Theta tensor.Vec
}

// Train runs FedProx over the federation's source nodes. theta0 may be nil.
func Train(m nn.Model, fed *data.Federation, theta0 tensor.Vec, cfg Config) (*Result, error) {
	if cfg.Mu <= 0 {
		return nil, fmt.Errorf("fedprox: proximal coefficient must be positive, got %v (use fedavg for μ=0)", cfg.Mu)
	}
	res, err := fedavg.Train(m, fed, theta0, fedavg.Config{
		Eta:      cfg.Eta,
		T:        cfg.T,
		T0:       cfg.T0,
		ProxMu:   cfg.Mu,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
		OnRound:  cfg.OnRound,
		Observer: cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Theta: res.Theta}, nil
}
