package fedprox

import (
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/fedavg"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func tinyFederation(t *testing.T) *data.Federation {
	t.Helper()
	cfg := data.DefaultSyntheticConfig(0, 0)
	cfg.Nodes = 10
	cfg.Dim = 10
	cfg.Classes = 4
	cfg.MeanSamples = 20
	cfg.Seed = 11
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestTrainRequiresPositiveMu(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	for _, mu := range []float64{0, -1} {
		if _, err := Train(m, fed, nil, Config{Eta: 0.05, Mu: mu, T: 10, T0: 5}); err == nil {
			t.Errorf("μ=%v accepted", mu)
		}
	}
}

// FedProx must be exactly fedavg with the proximal coefficient threaded
// through — same seed, same trajectory, bit-identical final model.
func TestTrainMatchesFedavgWithProxMu(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	theta0 := m.InitParams(rng.New(3))
	prox, err := Train(m, fed, theta0, Config{Eta: 0.05, Mu: 0.5, T: 30, T0: 10})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fedavg.Train(m, fed, theta0, fedavg.Config{Eta: 0.05, ProxMu: 0.5, T: 30, T0: 10})
	if err != nil {
		t.Fatal(err)
	}
	if prox.Theta.Dist(ref.Theta) != 0 {
		t.Error("fedprox.Train diverged from fedavg.Train with ProxMu set")
	}
}

func TestTrainReducesLoss(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	theta0 := m.InitParams(rng.New(7))
	lossOf := func(theta []float64) float64 {
		w := fed.Weights()
		var total float64
		for i, nd := range fed.Sources {
			total += w[i] * m.Loss(theta, nd.All())
		}
		return total
	}
	res, err := Train(m, fed, theta0, Config{Eta: 0.05, Mu: 0.1, T: 100, T0: 10})
	if err != nil {
		t.Fatal(err)
	}
	if after, before := lossOf(res.Theta), lossOf(theta0); after >= before {
		t.Errorf("FedProx did not reduce the global loss: %v -> %v", before, after)
	}
}

func TestTrainObserverAndOnRound(t *testing.T) {
	fed := tinyFederation(t)
	m := &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses}
	rec := obs.NewRecorder()
	var iters []int
	cfg := Config{Eta: 0.05, Mu: 0.5, T: 20, T0: 5, Observer: rec,
		OnRound: func(round, iter int, _ tensor.Vec) { iters = append(iters, iter) }}
	if _, err := Train(m, fed, nil, cfg); err != nil {
		t.Fatal(err)
	}
	if len(rec.Rounds()) != 4 {
		t.Errorf("round records = %d, want 4", len(rec.Rounds()))
	}
	if len(iters) != 4 || iters[3] != 20 {
		t.Errorf("OnRound iters = %v", iters)
	}
}
