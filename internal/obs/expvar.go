package obs

import "expvar"

// ExpvarSink mirrors the CommStats counters into an expvar.Map, so a live
// training process serves them at /debug/vars next to net/http/pprof (the
// cmd/fedml -pprof endpoint). Map keys: rounds, messages, bytes, dropped,
// rejoined, rejected, skipped_rounds, stale_applied, stale_dropped,
// budget_filtered.
type ExpvarSink struct {
	m *expvar.Map
}

var _ RoundObserver = (*ExpvarSink)(nil)

// NewExpvarSink publishes (or reuses and resets) the named expvar map.
// Reuse matters because expvar panics on duplicate registration and tests
// and long-lived processes may build more than one sink per name.
func NewExpvarSink(name string) *ExpvarSink {
	if v := expvar.Get(name); v != nil {
		if m, ok := v.(*expvar.Map); ok {
			m.Init()
			return &ExpvarSink{m: m}
		}
	}
	return &ExpvarSink{m: expvar.NewMap(name)}
}

// Observe implements RoundObserver. expvar.Map is internally synchronized.
func (s *ExpvarSink) Observe(e Event) {
	switch e.Type {
	case TypeRoundEnd:
		s.m.Add("rounds", 1)
	case TypeRoundSkip:
		s.m.Add("skipped_rounds", 1)
	case TypeBroadcast, TypeProbe, TypeUpdate:
		s.m.Add("messages", 1)
		s.m.Add("bytes", e.Bytes)
	case TypeDrop:
		s.m.Add("dropped", 1)
	case TypeRejoin:
		s.m.Add("rejoined", 1)
	case TypeReject:
		s.m.Add("rejected", 1)
	case TypeStaleApply:
		s.m.Add("stale_applied", 1)
	case TypeStaleDrop:
		s.m.Add("stale_dropped", 1)
	case TypeBudgetFilter:
		s.m.Add("budget_filtered", 1)
	}
}
