package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JSONLSink writes one JSON line per round (RoundRecord, schema-versioned).
// It is safe for concurrent use — the platform loop and node goroutines emit
// into it directly on the fault-tolerant async path — and failure-sticky: the
// first write or encode error stops further output and surfaces from Close,
// so a full disk cannot crash or stall training.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer // nil unless the sink owns the destination
	b   builder
	n   int // records written
	err error
}

var _ RoundObserver = (*JSONLSink)(nil)

// NewJSONLSink writes records to w. The caller owns w; Close flushes the
// pending record but does not close w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// CreateJSONL creates (truncating) path and returns a sink that owns the
// file: Close flushes and closes it.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create metrics sink: %w", err)
	}
	return &JSONLSink{w: f, c: f}, nil
}

// Observe implements RoundObserver.
func (s *JSONLSink) Observe(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if done := s.b.observe(e); done != nil {
		s.write(done)
	}
}

// write marshals one record; called with mu held.
func (s *JSONLSink) write(r *RoundRecord) {
	data, err := json.Marshal(r)
	if err != nil {
		s.err = fmt.Errorf("obs: encode round %d: %w", r.Round, err)
		return
	}
	data = append(data, '\n')
	if _, err := s.w.Write(data); err != nil {
		s.err = fmt.Errorf("obs: write round %d: %w", r.Round, err)
		return
	}
	s.n++
}

// Flush writes the open round record, if any, and reports the sticky error.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if done := s.b.flush(); done != nil && s.err == nil {
		s.write(done)
	}
	return s.err
}

// Close flushes, closes an owned destination, and returns the first error
// the sink encountered.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil {
		if cerr := s.c.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("obs: close metrics sink: %w", cerr)
		}
		s.c = nil
	}
	return err
}

// Written reports how many round records have been written so far.
func (s *JSONLSink) Written() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
