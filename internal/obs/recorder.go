package obs

import "sync"

// Recorder is the in-memory observer: it keeps the raw event stream and the
// folded per-round records, so tests can assert counter/event parity and
// eval can rebuild per-round trajectories without re-running evaluation.
// Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	b      builder
	rounds []RoundRecord
	events []Event
}

var _ RoundObserver = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe implements RoundObserver.
func (r *Recorder) Observe(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
	if done := r.b.observe(e); done != nil {
		r.rounds = append(r.rounds, *done)
	}
}

// Events returns a copy of every event observed so far, in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Rounds returns a copy of the folded round records, including the round
// still open (a training run never emits an event after its last round, so
// the trailing record would otherwise be invisible).
func (r *Recorder) Rounds() []RoundRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]RoundRecord(nil), r.rounds...)
	if r.b.cur != nil {
		out = append(out, *r.b.cur)
	}
	return out
}

// Totals folds the recorded events into cumulative counters — the
// reconstruction that must equal the run's final core.CommStats exactly
// (counter/event parity).
func (r *Recorder) Totals() Totals {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.b.cum
}

// Count returns how many events of the given type were observed.
func (r *Recorder) Count(t Type) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Type == t {
			n++
		}
	}
	return n
}
