package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestJSONLGoldenSchema pins the exact serialized form of a fully populated
// round record. If this test changes, SchemaVersion must be bumped.
func TestJSONLGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	loss := 2.5
	for _, e := range []Event{
		{Type: TypeRoundStart, Round: 1, Iter: 0, T0: 5, Alive: 3},
		{Type: TypeBroadcast, Round: 1, Node: 0, Bytes: 80},
		{Type: TypeBroadcast, Round: 1, Node: 1, Bytes: 80},
		{Type: TypeNodeCompute, Round: 1, Node: 0, Dur: 1500 * time.Microsecond},
		{Type: TypeUpdate, Round: 1, Node: 0, Bytes: 80},
		{Type: TypeStaleApply, Round: 1, Node: 0, Value: 2},
		{Type: TypeStaleDrop, Round: 1, Node: 2, Value: 5},
		{Type: TypeBudgetFilter, Round: 1, Node: 2, Value: 0.125},
		{Type: TypeDrop, Round: 1, Node: 1, Cause: "recv update: timeout"},
		{Type: TypeReject, Round: 1, Node: 2, Cause: "non-finite update"},
		{Type: TypeRoundEnd, Round: 1, Iter: 5, T0: 5, Alive: 1,
			Dur: 2 * time.Millisecond, Value: 0.5, Dispersion: 0.25},
		{Type: TypeMetaLoss, Round: 1, Iter: 5, Value: loss},
	} {
		s.Observe(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	const golden = `{"schema":3,"round":1,"iter":5,"t0":5,"alive":1,"dur_ms":2,` +
		`"msgs":3,"bytes":240,"update_norm":0.5,"dispersion":0.25,"loss":2.5,` +
		`"dropped":[{"node":1,"cause":"recv update: timeout"}],` +
		`"rejected":[{"node":2,"cause":"non-finite update"}],` +
		`"stale_applied":1,"stale_dropped":1,"budget_filtered":1,` +
		`"nodes":[{"node":0,"compute_ms":1.5}],` +
		`"cum":{"rounds":1,"messages":3,"bytes":240,"dropped":1,"rejoined":0,"rejected":1,"skipped_rounds":0,"stale_applied":1,"stale_dropped":1,"budget_filtered":1}}`
	got := strings.TrimRight(buf.String(), "\n")
	if got != golden {
		t.Errorf("schema drift — bump SchemaVersion if intentional.\n got: %s\nwant: %s", got, golden)
	}
	// The compute-timing list is intentionally part of the schema too.
	var rec RoundRecord
	if err := json.Unmarshal([]byte(got), &rec); err != nil {
		t.Fatalf("golden line does not round-trip: %v", err)
	}
	if len(rec.Nodes) != 1 || rec.Nodes[0].ComputeMS != 1.5 {
		t.Errorf("node timing lost in round-trip: %+v", rec.Nodes)
	}
}

func TestJSONLSkippedAndLossOmitted(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Observe(Event{Type: TypeRoundStart, Round: 1, T0: 5, Alive: 2})
	s.Observe(Event{Type: TypeRoundSkip, Round: 1, Alive: 2, Dur: time.Millisecond})
	s.Observe(Event{Type: TypeRoundStart, Round: 2, T0: 5, Alive: 2})
	s.Observe(Event{Type: TypeRoundEnd, Round: 2, Iter: 5, T0: 5, Alive: 2})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := parseLines(t, buf.Bytes())
	if len(lines) != 2 {
		t.Fatalf("got %d records, want 2", len(lines))
	}
	if !lines[0].Skipped || lines[0].Cum.SkippedRounds != 1 {
		t.Errorf("skip not recorded: %+v", lines[0])
	}
	if lines[0].Loss != nil || lines[1].Loss != nil {
		t.Error("loss must be omitted when never measured")
	}
	if strings.Contains(strings.Split(buf.String(), "\n")[0], `"loss"`) {
		t.Error("loss key serialized despite omitempty")
	}
	if lines[1].Cum.Rounds != 1 || lines[1].Cum.SkippedRounds != 1 {
		t.Errorf("cumulative totals wrong: %+v", lines[1].Cum)
	}
}

func TestJSONLWriteErrorIsSticky(t *testing.T) {
	s := NewJSONLSink(failWriter{})
	s.Observe(Event{Type: TypeRoundStart, Round: 1, T0: 5, Alive: 2})
	s.Observe(Event{Type: TypeRoundStart, Round: 2, T0: 5, Alive: 2}) // flushes round 1 -> write fails
	s.Observe(Event{Type: TypeRoundStart, Round: 3, T0: 5, Alive: 2}) // must be a no-op
	err := s.Flush()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("sticky error not surfaced: %v", err)
	}
	if s.Written() != 0 {
		t.Errorf("Written = %d after failed writes", s.Written())
	}
	if cerr := s.Close(); cerr == nil {
		t.Error("Close must also surface the sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func parseLines(t *testing.T, data []byte) []RoundRecord {
	t.Helper()
	var out []RoundRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var r RoundRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		if r.Schema != SchemaVersion {
			t.Fatalf("record schema %d, want %d", r.Schema, SchemaVersion)
		}
		out = append(out, r)
	}
	return out
}
