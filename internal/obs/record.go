package obs

import "time"

// SchemaVersion is the wire version stamped on every RoundRecord. Bump it
// whenever a field changes meaning or shape; the golden-schema test pins the
// exact serialized form so drift cannot ship silently. v2 added the async
// staleness accounting (stale_applied/stale_dropped, per-round and
// cumulative); v3 added the budget-filter accounting (budget_filtered).
const SchemaVersion = 3

// NodeCause names a node and why it was dropped or its update rejected.
type NodeCause struct {
	Node  int    `json:"node"`
	Cause string `json:"cause,omitempty"`
}

// NodeTiming is one node's local-compute timing within a round.
type NodeTiming struct {
	Node      int     `json:"node"`
	ComputeMS float64 `json:"compute_ms"`
}

// RoundRecord is the per-round unit both sinks produce: everything that
// happened between one TypeRoundStart and the next, including the traffic
// deltas of the round and the cumulative totals after it (so a consumer can
// reconstruct the final core.CommStats from either the sum of deltas or the
// last record's Cum block).
type RoundRecord struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// Round is the 1-based protocol round.
	Round int `json:"round"`
	// Iter is the cumulative local-iteration count after the round.
	Iter int `json:"iter"`
	// T0 is the local step count the round requested.
	T0 int `json:"t0"`
	// Alive is the active-node count at the end of the round.
	Alive int `json:"alive"`
	// DurMS is the round's wall-clock duration in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// Msgs and Bytes are this round's traffic delta (broadcasts + probes +
	// delivered updates).
	Msgs  int   `json:"msgs"`
	Bytes int64 `json:"bytes"`
	// UpdateNorm is ‖θ_new − θ_old‖ of the aggregation (0 when skipped).
	UpdateNorm float64 `json:"update_norm"`
	// Dispersion is the weighted mean distance of node updates from the
	// aggregate — the similarity proxy the T0 controller consumes.
	Dispersion float64 `json:"dispersion"`
	// Loss is the externally measured meta-objective, when a TypeMetaLoss
	// event was attached to the round; nil (omitted) otherwise.
	Loss *float64 `json:"loss,omitempty"`
	// Dropped, Rejoined, Rejected list the round's fault events.
	Dropped  []NodeCause `json:"dropped,omitempty"`
	Rejoined []int       `json:"rejoined,omitempty"`
	Rejected []NodeCause `json:"rejected,omitempty"`
	// Skipped marks a fault-tolerant round that aggregated nothing.
	Skipped bool `json:"skipped,omitempty"`
	// StaleApplied and StaleDropped are this round's async staleness
	// deltas: updates applied at positive staleness with a decayed weight,
	// and updates discarded past the MaxStaleness drop bound. Always zero
	// on the sync path.
	StaleApplied int `json:"stale_applied,omitempty"`
	StaleDropped int `json:"stale_dropped,omitempty"`
	// BudgetFiltered is this round's count of sampled nodes excluded by the
	// energy/deadline budget.
	BudgetFiltered int `json:"budget_filtered,omitempty"`
	// Nodes carries per-node compute timings, in arrival order.
	Nodes []NodeTiming `json:"nodes,omitempty"`
	// Cum is the cumulative totals after this round.
	Cum Totals `json:"cum"`
}

// builder folds the event stream into RoundRecords. It is not goroutine-safe;
// the sinks serialize access with their own mutex. A record stays open until
// an event for a later round arrives (so trailing TypeMetaLoss events from
// OnRound callbacks still land in the round they measure) or the sink is
// flushed; events for rounds already flushed — late node-compute reports
// racing in on the fault-tolerant async path — fold into the cumulative
// totals but cannot reopen a record.
type builder struct {
	cur *RoundRecord
	cum Totals
}

// observe folds e and returns a completed record when e opens a later round,
// nil otherwise.
func (b *builder) observe(e Event) *RoundRecord {
	if b.cur != nil && e.Round < b.cur.Round {
		// Late event for a flushed round: keep the books, drop the detail.
		b.cum.observe(e)
		return nil
	}
	var done *RoundRecord
	if b.cur != nil && e.Round > b.cur.Round {
		done = b.cur
		b.cur = nil
	}
	if b.cur == nil {
		b.cur = &RoundRecord{Schema: SchemaVersion, Round: e.Round}
	}
	b.cum.observe(e)
	r := b.cur
	switch e.Type {
	case TypeRoundStart:
		r.Iter, r.T0, r.Alive = e.Iter, e.T0, e.Alive
	case TypeRoundEnd:
		r.Iter, r.T0, r.Alive = e.Iter, e.T0, e.Alive
		r.DurMS = durMS(e.Dur)
		r.UpdateNorm = e.Value
		r.Dispersion = e.Dispersion
	case TypeRoundSkip:
		r.Skipped = true
		r.Alive = e.Alive
		r.DurMS = durMS(e.Dur)
	case TypeBroadcast, TypeProbe, TypeUpdate:
		r.Msgs++
		r.Bytes += e.Bytes
	case TypeDrop:
		r.Dropped = append(r.Dropped, NodeCause{Node: e.Node, Cause: e.Cause})
	case TypeRejoin:
		r.Rejoined = append(r.Rejoined, e.Node)
	case TypeReject:
		r.Rejected = append(r.Rejected, NodeCause{Node: e.Node, Cause: e.Cause})
	case TypeNodeCompute:
		r.Nodes = append(r.Nodes, NodeTiming{Node: e.Node, ComputeMS: durMS(e.Dur)})
	case TypeMetaLoss:
		v := e.Value
		r.Loss = &v
	case TypeStaleApply:
		r.StaleApplied++
	case TypeStaleDrop:
		r.StaleDropped++
	case TypeBudgetFilter:
		r.BudgetFiltered++
	}
	r.Cum = b.cum
	return done
}

// flush closes and returns the open record, if any.
func (b *builder) flush() *RoundRecord {
	done := b.cur
	b.cur = nil
	return done
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
