package obs

import (
	"expvar"
	"testing"
	"time"
)

func TestTypeString(t *testing.T) {
	types := []Type{
		TypeRoundStart, TypeRoundEnd, TypeRoundSkip, TypeBroadcast, TypeProbe,
		TypeUpdate, TypeDrop, TypeRejoin, TypeReject, TypeNodeCompute,
		TypeAdvRegen, TypeMetaLoss,
	}
	seen := map[string]bool{}
	for _, typ := range types {
		s := typ.String()
		if s == "" || seen[s] {
			t.Errorf("type %d has empty or duplicate name %q", typ, s)
		}
		seen[s] = true
	}
	if s := Type(99).String(); s != "Type(99)" {
		t.Errorf("unknown type renders as %q", s)
	}
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() of nothing must be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils must be nil (zero-overhead fast path)")
	}
	r := NewRecorder()
	if got := Multi(nil, r, nil); got != RoundObserver(r) {
		t.Error("Multi with one live observer must return it directly")
	}
	r2 := NewRecorder()
	m := Multi(r, r2)
	m.Observe(Event{Type: TypeDrop, Round: 1, Node: 3})
	if r.Count(TypeDrop) != 1 || r2.Count(TypeDrop) != 1 {
		t.Error("Tracer did not fan out to both observers")
	}
}

// TestNilObserverHotLoopZeroAlloc is the overhead guarantee: the emission
// pattern every hot call site uses (inline Event literal through Emit) must
// not allocate when the observer is nil — so an uninstrumented run pays
// nothing for the observability layer.
func TestNilObserverHotLoopZeroAlloc(t *testing.T) {
	var o RoundObserver
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			Emit(o, Event{Type: TypeBroadcast, Round: 3, Node: i, Bytes: 512})
			Emit(o, Event{Type: TypeUpdate, Round: 3, Node: i, Bytes: 512})
		}
		Emit(o, Event{Type: TypeRoundEnd, Round: 3, Iter: 15, T0: 5, Alive: 8,
			Dur: time.Millisecond, Value: 0.5, Dispersion: 0.1})
	})
	if allocs != 0 {
		t.Fatalf("nil observer emission allocated %.1f allocs/run, want 0", allocs)
	}
}

func TestRecorderTotalsParity(t *testing.T) {
	r := NewRecorder()
	events := []Event{
		{Type: TypeRoundStart, Round: 1, T0: 5, Alive: 3},
		{Type: TypeBroadcast, Round: 1, Node: 0, Bytes: 80},
		{Type: TypeBroadcast, Round: 1, Node: 1, Bytes: 80},
		{Type: TypeUpdate, Round: 1, Node: 0, Bytes: 80},
		{Type: TypeReject, Round: 1, Node: 1, Cause: "NaN"},
		{Type: TypeDrop, Round: 1, Node: 2, Cause: "timeout"},
		{Type: TypeRoundEnd, Round: 1, Iter: 5, T0: 5, Alive: 2},
		{Type: TypeRoundStart, Round: 2, T0: 5, Alive: 2},
		{Type: TypeProbe, Round: 2, Node: 2, Bytes: 80},
		{Type: TypeRejoin, Round: 2, Node: 2},
		{Type: TypeRoundSkip, Round: 2, Alive: 3},
	}
	for _, e := range events {
		r.Observe(e)
	}
	got := r.Totals()
	want := Totals{Rounds: 1, Messages: 4, Bytes: 320, Dropped: 1, Rejoined: 1, Rejected: 1, SkippedRounds: 1}
	if got != want {
		t.Errorf("Totals = %+v, want %+v", got, want)
	}
	if n := len(r.Events()); n != len(events) {
		t.Errorf("recorded %d events, want %d", n, len(events))
	}
}

func TestRecorderRoundsIncludePending(t *testing.T) {
	r := NewRecorder()
	r.Observe(Event{Type: TypeRoundStart, Round: 1, T0: 5, Alive: 2})
	r.Observe(Event{Type: TypeRoundEnd, Round: 1, Iter: 5, T0: 5, Alive: 2})
	// No later event arrived: round 1 is still pending in the builder but
	// must be visible.
	rounds := r.Rounds()
	if len(rounds) != 1 || rounds[0].Round != 1 {
		t.Fatalf("pending round invisible: %+v", rounds)
	}
	r.Observe(Event{Type: TypeRoundStart, Round: 2, T0: 5, Alive: 2})
	rounds = r.Rounds()
	if len(rounds) != 2 || rounds[0].Round != 1 || rounds[1].Round != 2 {
		t.Fatalf("rounds after flush: %+v", rounds)
	}
}

func TestBuilderFoldsTrailingMetaLoss(t *testing.T) {
	// The platform emits RoundEnd before the OnRound callback runs, so a
	// caller-measured meta-loss for round r arrives after round r's end but
	// before round r+1 opens. It must land in round r's record.
	r := NewRecorder()
	r.Observe(Event{Type: TypeRoundStart, Round: 1, T0: 5, Alive: 2})
	r.Observe(Event{Type: TypeRoundEnd, Round: 1, Iter: 5, T0: 5, Alive: 2})
	r.Observe(Event{Type: TypeMetaLoss, Round: 1, Iter: 5, Value: 1.25})
	r.Observe(Event{Type: TypeRoundStart, Round: 2, T0: 5, Alive: 2})
	rounds := r.Rounds()
	if rounds[0].Loss == nil || *rounds[0].Loss != 1.25 {
		t.Fatalf("meta-loss not folded into round 1: %+v", rounds[0])
	}
	if rounds[1].Loss != nil {
		t.Errorf("round 2 inherited round 1's loss")
	}
}

func TestBuilderLateEventKeepsBooks(t *testing.T) {
	// A node-compute report for an already-flushed round (async stragglers)
	// must not corrupt the current record, but traffic-bearing late events
	// still count toward the cumulative totals.
	r := NewRecorder()
	r.Observe(Event{Type: TypeRoundStart, Round: 1, T0: 5, Alive: 2})
	r.Observe(Event{Type: TypeRoundEnd, Round: 1, Iter: 5, T0: 5, Alive: 2})
	r.Observe(Event{Type: TypeRoundStart, Round: 3, T0: 5, Alive: 2})
	r.Observe(Event{Type: TypeNodeCompute, Round: 1, Node: 0, Dur: time.Millisecond})
	r.Observe(Event{Type: TypeUpdate, Round: 1, Node: 0, Bytes: 80})
	rounds := r.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("rounds = %+v", rounds)
	}
	if cur := rounds[1]; cur.Round != 3 || len(cur.Nodes) != 0 || cur.Msgs != 0 {
		t.Errorf("late events leaked into round 3's record: %+v", cur)
	}
	if tot := r.Totals(); tot.Messages != 1 || tot.Bytes != 80 {
		t.Errorf("late traffic lost from totals: %+v", tot)
	}
}

func TestExpvarSinkMirrorsCounters(t *testing.T) {
	s := NewExpvarSink("test.obs.comm")
	for _, e := range []Event{
		{Type: TypeBroadcast, Round: 1, Bytes: 100},
		{Type: TypeUpdate, Round: 1, Bytes: 50},
		{Type: TypeDrop, Round: 1, Node: 1},
		{Type: TypeRejoin, Round: 2, Node: 1},
		{Type: TypeReject, Round: 2, Node: 0},
		{Type: TypeRoundEnd, Round: 2},
		{Type: TypeRoundSkip, Round: 3},
	} {
		s.Observe(e)
	}
	m, ok := expvar.Get("test.obs.comm").(*expvar.Map)
	if !ok {
		t.Fatal("expvar map not published")
	}
	for key, want := range map[string]string{
		"messages": "2", "bytes": "150", "dropped": "1", "rejoined": "1",
		"rejected": "1", "rounds": "1", "skipped_rounds": "1",
	} {
		v := m.Get(key)
		if v == nil || v.String() != want {
			t.Errorf("expvar %s = %v, want %s", key, v, want)
		}
	}
	// Rebuilding the sink under the same name must reset, not panic.
	s2 := NewExpvarSink("test.obs.comm")
	s2.Observe(Event{Type: TypeRoundEnd, Round: 1})
	if v := m.Get("rounds"); v.String() != "1" {
		t.Errorf("reused map not reset: rounds = %v", v)
	}
}
