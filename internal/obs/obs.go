// Package obs is the round-level observability layer of the training stack:
// a structured-event stream emitted by the federated platform loop, the
// node-side local-update loop, and the baseline trainers, consumed by
// pluggable RoundObserver implementations.
//
// The package ships three observers: JSONLSink (one schema-versioned JSON
// record per round, for offline analysis), Recorder (in-memory, for tests
// and for eval to rebuild per-round trajectories without re-running
// evaluation), and ExpvarSink (live counters mirroring core.CommStats under
// /debug/vars next to net/http/pprof).
//
// The contract every emitter honors: a nil observer costs one pointer
// comparison and zero allocations on the hot round loop (see Emit and the
// AllocsPerRun regression test), and counter/event parity — every traffic or
// fault counter increment in core.CommStats is paired with exactly one
// event, so a trace reconstructs the final stats exactly (Totals).
package obs

import (
	"fmt"
	"time"
)

// Type discriminates events.
type Type uint8

const (
	// TypeRoundStart opens a platform round: Round, Iter (completed local
	// iterations so far), T0 (local steps requested this round), Alive.
	TypeRoundStart Type = iota + 1
	// TypeRoundEnd closes an aggregated round: Iter (cumulative), Dur
	// (wall-clock), Value (‖θ_new − θ_old‖, the aggregated update norm) and
	// Dispersion (weighted mean distance of node updates from the
	// aggregate). One TypeRoundEnd per core.CommStats.Rounds increment.
	TypeRoundEnd
	// TypeRoundSkip closes a fault-tolerant round that produced no usable
	// update and aggregated nothing. One per CommStats.SkippedRounds.
	TypeRoundSkip
	// TypeBroadcast is one platform→node parameter message handed to the
	// transport (attempted-send semantics; Bytes is the payload size). One
	// per CommStats.Messages increment at the broadcast site.
	TypeBroadcast
	// TypeProbe is one re-probe θ message attempted to a suspect (dropped)
	// node. One per CommStats.Messages increment at the probe site.
	TypeProbe
	// TypeUpdate is one node→platform update actually delivered (it may
	// still be rejected by sanitation — delivery and acceptance are separate
	// events). One per CommStats.Messages increment at the gather site.
	TypeUpdate
	// TypeDrop records node Node leaving the active set (Cause explains).
	// One per CommStats.Dropped.
	TypeDrop
	// TypeRejoin records a suspect node re-admitted after answering a
	// re-probe. One per CommStats.Rejoined.
	TypeRejoin
	// TypeReject records a delivered update discarded by the sanitation
	// guard (Cause explains). One per CommStats.Rejected.
	TypeReject
	// TypeNodeCompute reports one node's local-update timing for a round:
	// Node, Dur, T0 (steps performed), Iter (the node's cumulative local
	// iteration count). Emitted from the node goroutine.
	TypeNodeCompute
	// TypeAdvRegen reports one adversarial-data regeneration (Algorithm 2
	// lines 15–22): Node, Dur, Value (samples generated). Emitted from the
	// node goroutine.
	TypeAdvRegen
	// TypeMetaLoss attaches an externally measured meta-objective G(θ) to a
	// round (Value). Emitted by callers (e.g. cmd/fedml's round tracker),
	// not by the core loop, which never evaluates the objective itself.
	TypeMetaLoss
	// TypeStaleApply records an async-mode update applied at positive
	// staleness with a decayed weight: Value is the staleness (rounds
	// between the θ-version the update was computed against and the one it
	// was applied to). One per CommStats.StaleApplied.
	TypeStaleApply
	// TypeStaleDrop records an async-mode update discarded because its
	// staleness (Value) exceeded Config.MaxStaleness. One per
	// CommStats.StaleDropped.
	TypeStaleDrop
	// TypeBudgetFilter records a sampled node excluded from a round because
	// its modeled energy/time cost (Value, joules) exceeded the per-round
	// budget. One per CommStats.BudgetFiltered.
	TypeBudgetFilter
	// TypeMaskSync records a sync-mask decision on one downlink: the link
	// transitioned between full and masked parameter payloads (Cause names
	// the new state, Value is the masked coordinate count, 0 for full). A
	// pure decision event with no counter — counter/event parity only
	// requires every counter increment to have an event, not the converse.
	TypeMaskSync
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeRoundStart:
		return "round_start"
	case TypeRoundEnd:
		return "round_end"
	case TypeRoundSkip:
		return "round_skip"
	case TypeBroadcast:
		return "broadcast"
	case TypeProbe:
		return "probe"
	case TypeUpdate:
		return "update"
	case TypeDrop:
		return "drop"
	case TypeRejoin:
		return "rejoin"
	case TypeReject:
		return "reject"
	case TypeNodeCompute:
		return "node_compute"
	case TypeAdvRegen:
		return "adv_regen"
	case TypeMetaLoss:
		return "meta_loss"
	case TypeStaleApply:
		return "stale_apply"
	case TypeStaleDrop:
		return "stale_drop"
	case TypeBudgetFilter:
		return "budget_filter"
	case TypeMaskSync:
		return "mask_sync"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Event is one structured observation. It is a plain value — constructing
// one never allocates — and unused fields are zero.
type Event struct {
	Type Type
	// Round is the 1-based protocol round the event belongs to.
	Round int
	// Iter is the cumulative local-iteration count, where known.
	Iter int
	// Node is the node index for node-scoped events, 0 otherwise.
	Node int
	// T0 is the local step count of the round, where known.
	T0 int
	// Alive is the active-node count at emission time, where known.
	Alive int
	// Bytes is the payload volume of traffic events (8 bytes per parameter).
	Bytes int64
	// Dur is the wall-clock duration of timed events.
	Dur time.Duration
	// Value is the metric payload: update norm (TypeRoundEnd), measured
	// meta-loss (TypeMetaLoss), samples generated (TypeAdvRegen).
	Value float64
	// Dispersion is the update dispersion of an aggregated round.
	Dispersion float64
	// Cause explains drops and rejections.
	Cause string
}

// RoundObserver receives the event stream. Implementations must be safe for
// concurrent use: the platform loop and the node goroutines emit from
// different goroutines.
type RoundObserver interface {
	Observe(Event)
}

// Emit forwards e to o when o is non-nil. Call sites on hot loops construct
// the Event inline; with a nil observer the whole expression is a struct
// fill on the stack plus one comparison — zero allocations (enforced by an
// AllocsPerRun test).
func Emit(o RoundObserver, e Event) {
	if o != nil {
		o.Observe(e)
	}
}

// Tracer multiplexes one event stream to several observers in order.
type Tracer struct {
	obs []RoundObserver
}

// Observe implements RoundObserver.
func (t *Tracer) Observe(e Event) {
	for _, o := range t.obs {
		o.Observe(e)
	}
}

// Multi composes observers into one. Nils are skipped; the result is nil
// when none remain and the single observer itself when only one does, so
// the zero-overhead nil fast path and direct dispatch are both preserved.
func Multi(observers ...RoundObserver) RoundObserver {
	var list []RoundObserver
	for _, o := range observers {
		if o != nil {
			list = append(list, o)
		}
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	default:
		return &Tracer{obs: list}
	}
}

// Totals is the event-side mirror of core.CommStats: folding a trace's
// events reproduces the run's final counters exactly (the counter/event
// parity invariant). It lives here rather than reusing core.CommStats so
// obs stays dependency-free.
type Totals struct {
	Rounds         int   `json:"rounds"`
	Messages       int   `json:"messages"`
	Bytes          int64 `json:"bytes"`
	Dropped        int   `json:"dropped"`
	Rejoined       int   `json:"rejoined"`
	Rejected       int   `json:"rejected"`
	SkippedRounds  int   `json:"skipped_rounds"`
	StaleApplied   int   `json:"stale_applied"`
	StaleDropped   int   `json:"stale_dropped"`
	BudgetFiltered int   `json:"budget_filtered"`
}

// observe folds one event into the totals.
func (t *Totals) observe(e Event) {
	switch e.Type {
	case TypeRoundEnd:
		t.Rounds++
	case TypeRoundSkip:
		t.SkippedRounds++
	case TypeBroadcast, TypeProbe, TypeUpdate:
		t.Messages++
		t.Bytes += e.Bytes
	case TypeDrop:
		t.Dropped++
	case TypeRejoin:
		t.Rejoined++
	case TypeReject:
		t.Rejected++
	case TypeStaleApply:
		t.StaleApplied++
	case TypeStaleDrop:
		t.StaleDropped++
	case TypeBudgetFilter:
		t.BudgetFiltered++
	}
}
