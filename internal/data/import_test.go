package data

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	csvData := "1.0,2.0,0\n3.5,-1.25,1\n0,0,2\n"
	samples, classes, err := LoadCSV(strings.NewReader(csvData), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 || classes != 3 {
		t.Fatalf("got %d samples, %d classes", len(samples), classes)
	}
	if samples[1].X[0] != 3.5 || samples[1].X[1] != -1.25 || samples[1].Y != 1 {
		t.Errorf("sample 1 = %+v", samples[1])
	}
}

func TestLoadCSVRejections(t *testing.T) {
	cases := map[string]struct {
		csv string
		dim int
	}{
		"bad dim":        {"1,0\n", 0},
		"wrong columns":  {"1,2,3,0\n", 2},
		"bad feature":    {"x,2,0\n", 2},
		"bad label":      {"1,2,zero\n", 2},
		"negative label": {"1,2,-1\n", 2},
		"empty":          {"", 2},
		"one class":      {"1,2,0\n3,4,0\n", 2},
	}
	for name, tc := range cases {
		if _, _, err := LoadCSV(strings.NewReader(tc.csv), tc.dim); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(path, []byte("1,0\n2,1\n3,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	samples, classes, err := LoadCSVFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 || classes != 2 {
		t.Errorf("got %d/%d", len(samples), classes)
	}
	if _, _, err := LoadCSVFile(filepath.Join(dir, "missing.csv"), 1); err == nil {
		t.Error("missing file accepted")
	}
}

// importPool builds a labelled pool with `n` samples per class.
func importPool(classes, n int) []Sample {
	var out []Sample
	for c := 0; c < classes; c++ {
		for i := 0; i < n; i++ {
			out = append(out, Sample{X: []float64{float64(c), float64(i)}, Y: c})
		}
	}
	return out
}

func TestBuildFederationIID(t *testing.T) {
	pool := importPool(4, 100)
	fed, err := BuildFederation("csv", pool, 4, PartitionConfig{
		Nodes: 10, K: 5, SourceFraction: 0.8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Sources) != 8 || len(fed.Targets) != 2 {
		t.Fatalf("split %d/%d", len(fed.Sources), len(fed.Targets))
	}
	if fed.Dim != 2 || fed.NumClasses != 4 {
		t.Errorf("shape %d/%d", fed.Dim, fed.NumClasses)
	}
	// Even split: 400/10 = 40 per node.
	for i, nd := range fed.Sources {
		if nd.Size() != 40 {
			t.Errorf("node %d size %d, want 40", i, nd.Size())
		}
		if len(nd.Train) != 5 {
			t.Errorf("node %d train %d", i, len(nd.Train))
		}
	}
}

func TestBuildFederationLabelSkew(t *testing.T) {
	pool := importPool(10, 50)
	fed, err := BuildFederation("csv", pool, 10, PartitionConfig{
		Nodes: 12, ClassesPerNode: 2, K: 5,
		MeanSamples: 30, StdSamples: 5, SourceFraction: 0.75, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range append(append([]*NodeDataset{}, fed.Sources...), fed.Targets...) {
		labels := map[int]bool{}
		for _, s := range nd.All() {
			labels[s.Y] = true
		}
		if len(labels) > 2 {
			t.Errorf("node %d sees %d classes, want <= 2", i, len(labels))
		}
	}
}

func TestBuildFederationDeterministic(t *testing.T) {
	pool := importPool(3, 60)
	cfg := PartitionConfig{Nodes: 6, ClassesPerNode: 2, K: 4, MeanSamples: 20, StdSamples: 4, SourceFraction: 0.5, Seed: 9}
	a, err := BuildFederation("x", pool, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFederation("x", pool, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodesA := append(append([]*NodeDataset{}, a.Sources...), a.Targets...)
	nodesB := append(append([]*NodeDataset{}, b.Sources...), b.Targets...)
	for i := range nodesA {
		sa, sb := nodesA[i].All(), nodesB[i].All()
		if len(sa) != len(sb) {
			t.Fatalf("node %d sizes differ: %d vs %d", i, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j].Y != sb[j].Y || sa[j].X.Dist(sb[j].X) != 0 {
				t.Fatalf("node %d sample %d not bit-identical across same-seed partitions", i, j)
			}
		}
	}
}

func TestBuildFederationRecyclesSmallPools(t *testing.T) {
	// 2 classes x 10 samples but nodes demand ~40 each: pools must recycle
	// rather than fail.
	pool := importPool(2, 10)
	fed, err := BuildFederation("small", pool, 2, PartitionConfig{
		Nodes: 4, K: 3, MeanSamples: 40, StdSamples: 5, SourceFraction: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, nd := range fed.Sources {
		total += nd.Size()
	}
	if total < 60 {
		t.Errorf("recycling failed: only %d samples distributed", total)
	}
}

func TestBuildFederationRejections(t *testing.T) {
	pool := importPool(3, 20)
	cases := map[string]PartitionConfig{
		"few nodes":      {Nodes: 1, K: 3, SourceFraction: 0.5},
		"bad K":          {Nodes: 4, K: 0, SourceFraction: 0.5},
		"bad fraction":   {Nodes: 4, K: 3, SourceFraction: 1},
		"bad skew":       {Nodes: 4, K: 3, ClassesPerNode: 7, SourceFraction: 0.5},
		"negative sizes": {Nodes: 4, K: 3, MeanSamples: -1, SourceFraction: 0.5},
	}
	for name, cfg := range cases {
		if _, err := BuildFederation("x", pool, 3, cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := BuildFederation("x", nil, 3, PartitionConfig{Nodes: 4, K: 3, SourceFraction: 0.5}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := BuildFederation("x", pool, 1, PartitionConfig{Nodes: 4, K: 3, SourceFraction: 0.5}); err == nil {
		t.Error("one class accepted")
	}
	// Even split with too little data.
	if _, err := BuildFederation("x", importPool(2, 4), 2, PartitionConfig{Nodes: 4, K: 3, SourceFraction: 0.5}); err == nil {
		t.Error("insufficient even split accepted")
	}
	// Out-of-range label.
	bad := importPool(3, 5)
	bad[0].Y = 9
	if _, err := BuildFederation("x", bad, 3, PartitionConfig{Nodes: 4, K: 2, MeanSamples: 10, SourceFraction: 0.5}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestBuildFederationEndToEndCSV(t *testing.T) {
	// Full pipeline: CSV -> federation -> samples usable for training.
	var b strings.Builder
	for c := 0; c < 3; c++ {
		for i := 0; i < 30; i++ {
			fmt.Fprintf(&b, "%d.5,%d,%d\n", c, i, c)
		}
	}
	samples, classes, err := LoadCSV(strings.NewReader(b.String()), 2)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := BuildFederation("csv", samples, classes, PartitionConfig{
		Nodes: 6, ClassesPerNode: 2, K: 4, MeanSamples: 12, StdSamples: 2, SourceFraction: 0.5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := fed.NodeStats(); s.Nodes != 6 || s.MeanPerNode <= 0 {
		t.Errorf("stats %+v", s)
	}
}
