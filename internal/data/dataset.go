// Package data implements the dataset substrate for the paper's three
// workloads: the FedProx-style Synthetic(α̃, β̃) generator, an MNIST-like
// procedural digit workload, and a Sent140-like character-sequence sentiment
// workload (see DESIGN.md §3 for the documented substitutions).
//
// A Federation is a set of per-node task datasets. Following §III-A of the
// paper, each node's local dataset D_i is split into a training part
// D_i^train of size K (used for the MAML inner step and for fast adaptation)
// and a testing part D_i^test (used for the meta-update and for evaluation).
package data

import (
	"errors"
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Sample is one labelled example: a feature vector and a class label.
type Sample struct {
	X tensor.Vec
	Y int
}

// NodeDataset is the local dataset of one edge node, already split into the
// K-sample training part and the testing part.
type NodeDataset struct {
	// Train is D_i^train, |Train| == K.
	Train []Sample
	// Test is D_i^test, disjoint from Train.
	Test []Sample
}

// Size returns |D_i| = |Train| + |Test|.
func (n *NodeDataset) Size() int { return len(n.Train) + len(n.Test) }

// All returns the concatenation of Train and Test as a fresh slice.
func (n *NodeDataset) All() []Sample {
	out := make([]Sample, 0, n.Size())
	out = append(out, n.Train...)
	out = append(out, n.Test...)
	return out
}

// Federation is a collection of per-node task datasets drawn from related
// distributions, partitioned into source nodes (which run federated
// meta-training) and target nodes (held out for fast-adaptation evaluation).
type Federation struct {
	// Name identifies the workload (e.g. "Synthetic(0.5,0.5)").
	Name string
	// Dim is the feature dimension; NumClasses the number of labels.
	Dim, NumClasses int
	// Sources are the meta-training nodes (the set S in the paper).
	Sources []*NodeDataset
	// Targets are the held-out nodes used to evaluate fast adaptation.
	Targets []*NodeDataset
}

// Weights returns the aggregation weights ω_i = |D_i| / Σ_j |D_j| over the
// source nodes (Eq. 2 in the paper).
func (f *Federation) Weights() []float64 {
	total := 0
	for _, n := range f.Sources {
		total += n.Size()
	}
	w := make([]float64, len(f.Sources))
	if total == 0 {
		return w
	}
	for i, n := range f.Sources {
		w[i] = float64(n.Size()) / float64(total)
	}
	return w
}

// Stats summarizes per-node sample counts, as reported in Table I.
type Stats struct {
	Nodes       int
	MeanPerNode float64
	StdPerNode  float64
}

// NodeStats computes Table-I-style statistics over all nodes (sources and
// targets combined, matching how the paper reports dataset statistics).
func (f *Federation) NodeStats() Stats {
	sizes := make([]float64, 0, len(f.Sources)+len(f.Targets))
	for _, n := range f.Sources {
		sizes = append(sizes, float64(n.Size()))
	}
	for _, n := range f.Targets {
		sizes = append(sizes, float64(n.Size()))
	}
	s := Stats{Nodes: len(sizes)}
	if s.Nodes == 0 {
		return s
	}
	var sum float64
	for _, v := range sizes {
		sum += v
	}
	s.MeanPerNode = sum / float64(s.Nodes)
	var ss float64
	for _, v := range sizes {
		d := v - s.MeanPerNode
		ss += d * d
	}
	s.StdPerNode = math.Sqrt(ss / float64(s.Nodes))
	return s
}

// ErrNotEnoughSamples is returned when a node has too few samples to carve
// out a K-sample training set while leaving a non-empty test set.
var ErrNotEnoughSamples = errors.New("data: node has too few samples for the requested K")

// SplitNode shuffles samples and splits them into a K-sample training set
// and the remaining test set, as required by §III-A (|D_i^train| = K,
// |D_i| > K).
func SplitNode(r *rng.Rand, samples []Sample, k int) (*NodeDataset, error) {
	if k <= 0 {
		return nil, fmt.Errorf("data: K must be positive, got %d", k)
	}
	if len(samples) <= k {
		return nil, fmt.Errorf("%w: have %d, need > %d", ErrNotEnoughSamples, len(samples), k)
	}
	shuffled := make([]Sample, len(samples))
	copy(shuffled, samples)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	return &NodeDataset{Train: shuffled[:k], Test: shuffled[k:]}, nil
}

// Resplit returns a copy of the federation with every node re-split to a new
// training-set size K. It is used by the adaptation experiments, which vary
// K at the target while keeping the underlying node data fixed.
func (f *Federation) Resplit(r *rng.Rand, k int) (*Federation, error) {
	out := &Federation{Name: f.Name, Dim: f.Dim, NumClasses: f.NumClasses}
	out.Sources = make([]*NodeDataset, 0, len(f.Sources))
	out.Targets = make([]*NodeDataset, 0, len(f.Targets))
	for _, n := range f.Sources {
		nd, err := SplitNode(r, n.All(), k)
		if err != nil {
			return nil, fmt.Errorf("resplit source node: %w", err)
		}
		out.Sources = append(out.Sources, nd)
	}
	for _, n := range f.Targets {
		nd, err := SplitNode(r, n.All(), k)
		if err != nil {
			return nil, fmt.Errorf("resplit target node: %w", err)
		}
		out.Targets = append(out.Targets, nd)
	}
	return out, nil
}

// Accuracy returns the fraction of samples whose label matches the
// prediction function's output.
func Accuracy(samples []Sample, predict func(x tensor.Vec) int) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if predict(s.X) == s.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
