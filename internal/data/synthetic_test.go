package data

import (
	"math"
	"testing"
)

func TestGenerateSyntheticShape(t *testing.T) {
	cfg := DefaultSyntheticConfig(0.5, 0.5)
	fed, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fed.Sources) + len(fed.Targets); got != 50 {
		t.Errorf("total nodes = %d, want 50", got)
	}
	if len(fed.Sources) != 40 {
		t.Errorf("sources = %d, want 40 (80%%)", len(fed.Sources))
	}
	if fed.Dim != 60 || fed.NumClasses != 10 {
		t.Errorf("shape = %d/%d, want 60/10", fed.Dim, fed.NumClasses)
	}
	for i, n := range fed.Sources {
		if len(n.Train) != cfg.K {
			t.Fatalf("node %d train size = %d, want %d", i, len(n.Train), cfg.K)
		}
		if len(n.Test) == 0 {
			t.Fatalf("node %d has empty test set", i)
		}
		for _, s := range n.Train {
			if len(s.X) != 60 {
				t.Fatalf("sample dim = %d", len(s.X))
			}
			if s.Y < 0 || s.Y >= 10 {
				t.Fatalf("label out of range: %d", s.Y)
			}
			if !s.X.IsFinite() {
				t.Fatal("non-finite feature")
			}
		}
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	cfg := DefaultSyntheticConfig(0.5, 0.5)
	a, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sources {
		for j := range a.Sources[i].Train {
			sa, sb := a.Sources[i].Train[j], b.Sources[i].Train[j]
			if sa.Y != sb.Y || sa.X.Dist(sb.X) != 0 {
				t.Fatalf("same seed produced different data at node %d sample %d", i, j)
			}
		}
	}
}

func TestGenerateSyntheticSeedChangesData(t *testing.T) {
	cfg := DefaultSyntheticConfig(0.5, 0.5)
	a, _ := GenerateSynthetic(cfg)
	cfg.Seed = 99
	b, _ := GenerateSynthetic(cfg)
	if a.Sources[0].Train[0].X.Dist(b.Sources[0].Train[0].X) == 0 {
		t.Error("different seeds produced identical data")
	}
}

func TestSyntheticHeterogeneityIncreasesWithAlphaBeta(t *testing.T) {
	// Larger (α̃, β̃) should increase dispersion of the per-node input means.
	spread := func(alpha, beta float64) float64 {
		cfg := DefaultSyntheticConfig(alpha, beta)
		cfg.Seed = 7
		fed, err := GenerateSynthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Mean input vector per node; measure variance of per-node means.
		var centers []float64
		for _, n := range fed.Sources {
			var m float64
			cnt := 0
			for _, s := range n.All() {
				m += s.X.Mean()
				cnt++
			}
			centers = append(centers, m/float64(cnt))
		}
		var mu float64
		for _, c := range centers {
			mu += c
		}
		mu /= float64(len(centers))
		var v float64
		for _, c := range centers {
			v += (c - mu) * (c - mu)
		}
		return v / float64(len(centers))
	}
	low := spread(0, 0)
	high := spread(1, 1)
	if high <= low {
		t.Errorf("heterogeneity did not increase: spread(0,0)=%v spread(1,1)=%v", low, high)
	}
}

func TestSyntheticLabelsNonDegenerate(t *testing.T) {
	fed, err := GenerateSynthetic(DefaultSyntheticConfig(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, n := range fed.Sources {
		for _, s := range n.All() {
			counts[s.Y]++
		}
	}
	if len(counts) < 3 {
		t.Errorf("only %d distinct labels generated across federation", len(counts))
	}
}

func TestSyntheticNodeStatsMatchTable1(t *testing.T) {
	cfg := DefaultSyntheticConfig(0, 0)
	cfg.Nodes = 500 // larger draw to average out sampling noise
	fed, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := fed.NodeStats()
	if math.Abs(s.MeanPerNode-17) > 3 {
		t.Errorf("mean samples per node = %v, Table I says 17", s.MeanPerNode)
	}
	if s.StdPerNode < 2 || s.StdPerNode > 9 {
		t.Errorf("std samples per node = %v, Table I says 5", s.StdPerNode)
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.Alpha = -1 },
		func(c *SyntheticConfig) { c.Nodes = 1 },
		func(c *SyntheticConfig) { c.Dim = 0 },
		func(c *SyntheticConfig) { c.Classes = 1 },
		func(c *SyntheticConfig) { c.K = 0 },
		func(c *SyntheticConfig) { c.MeanSamples = 0 },
		func(c *SyntheticConfig) { c.SourceFraction = 1 },
		func(c *SyntheticConfig) { c.SourceFraction = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultSyntheticConfig(0.5, 0.5)
		mutate(&cfg)
		if _, err := GenerateSynthetic(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
