package data

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// _digitGlyphs is a 5x7 pixel font for the digits 0-9 ('#' = ink). The
// MNIST-like generator upscales these to 28x28 and applies per-sample jitter
// and noise; see DESIGN.md §3 for why this substitution preserves the
// experiment's behaviour (real MNIST is unavailable offline).
var _digitGlyphs = [10][7]string{
	{" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "}, // 0
	{"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}, // 1
	{" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"}, // 2
	{"#####", "   # ", "  #  ", "   # ", "    #", "#   #", " ### "}, // 3
	{"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "}, // 4
	{"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "}, // 5
	{"  ## ", " #   ", "#    ", "#### ", "#   #", "#   #", " ### "}, // 6
	{"#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "}, // 7
	{" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "}, // 8
	{" ### ", "#   #", "#   #", " ####", "    #", "   # ", " ##  "}, // 9
}

// MNISTImageSide is the side length of generated digit images.
const MNISTImageSide = 28

// MNISTConfig parameterizes the MNIST-like workload: 100 nodes, each holding
// samples of only two digits, node sizes following a power law (Table I:
// mean 34, stdev 5).
type MNISTConfig struct {
	// Nodes is the number of edge nodes (paper: 100).
	Nodes int
	// DigitsPerNode is the label-skew level (paper: 2 digits per node).
	DigitsPerNode int
	// K is the training-split size.
	K int
	// MeanSamples/StdSamples parameterize node sizes.
	MeanSamples, StdSamples float64
	// NoiseStd is the per-pixel Gaussian noise level.
	NoiseStd float64
	// SourceFraction is the fraction of meta-training nodes (paper: 80%).
	SourceFraction float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultMNISTConfig returns the paper's configuration.
func DefaultMNISTConfig() MNISTConfig {
	return MNISTConfig{
		Nodes:          100,
		DigitsPerNode:  2,
		K:              5,
		MeanSamples:    34,
		StdSamples:     5,
		NoiseStd:       0.45,
		SourceFraction: 0.8,
		Seed:           2,
	}
}

// GenerateMNIST builds the MNIST-like Federation: each node is assigned
// DigitsPerNode digit classes and draws noisy, jittered renderings of those
// digits. Pixels are in [0, 1], matching the input domain assumed by the
// adversarial-perturbation experiments.
func GenerateMNIST(cfg MNISTConfig) (*Federation, error) {
	if err := validateMNIST(cfg); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	sizes := PowerLawSizes(root.Split(0), cfg.Nodes, cfg.MeanSamples, cfg.StdSamples, cfg.K+2)

	fed := &Federation{
		Name:       "MNIST",
		Dim:        MNISTImageSide * MNISTImageSide,
		NumClasses: 10,
	}
	numSources := int(math.Round(cfg.SourceFraction * float64(cfg.Nodes)))
	if numSources <= 0 || numSources >= cfg.Nodes {
		return nil, fmt.Errorf("data: SourceFraction %v leaves no sources or no targets among %d nodes", cfg.SourceFraction, cfg.Nodes)
	}

	for i := 0; i < cfg.Nodes; i++ {
		nodeRng := root.Split(uint64(i) + 1)
		digits := pickDigits(nodeRng, cfg.DigitsPerNode)
		samples := make([]Sample, sizes[i])
		for s := range samples {
			d := digits[nodeRng.IntN(len(digits))]
			samples[s] = Sample{X: RenderDigit(nodeRng, d, cfg.NoiseStd), Y: d}
		}
		nd, err := SplitNode(nodeRng, samples, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("split node %d: %w", i, err)
		}
		if i < numSources {
			fed.Sources = append(fed.Sources, nd)
		} else {
			fed.Targets = append(fed.Targets, nd)
		}
	}
	return fed, nil
}

func pickDigits(r *rng.Rand, n int) []int {
	p := r.Perm(10)
	return p[:n]
}

// RenderDigit rasterizes digit d onto a 28x28 image with random sub-glyph
// translation, per-sample stroke intensity, and Gaussian pixel noise, then
// clamps to [0, 1]. The glyph occupies a 20x28 region (5x7 font upscaled
// by 4) placed with ±2 pixel jitter.
func RenderDigit(r *rng.Rand, d int, noiseStd float64) tensor.Vec {
	if d < 0 || d > 9 {
		panic(fmt.Sprintf("data: RenderDigit with non-digit class %d", d))
	}
	const (
		side  = MNISTImageSide
		scale = 3 // 5x7 font -> 15x21 glyph, leaving room for jitter
	)
	img := tensor.NewVec(side * side)

	// Jittered top-left corner of the glyph region (width 15, height 21).
	offX := 6 + r.IntN(9) - 4 // x offset in [2, 10]
	offY := 3 + r.IntN(7) - 3 // y offset in [0, 6]
	ink := 0.55 + 0.45*r.Float64()

	glyph := &_digitGlyphs[d]
	for gy := 0; gy < 7; gy++ {
		rowStr := glyph[gy]
		for gx := 0; gx < 5; gx++ {
			if rowStr[gx] != '#' {
				continue
			}
			for dy := 0; dy < scale; dy++ {
				y := offY + gy*scale + dy
				if y < 0 || y >= side {
					continue
				}
				for dx := 0; dx < scale; dx++ {
					x := offX + gx*scale + dx
					if x < 0 || x >= side {
						continue
					}
					img[y*side+x] = ink
				}
			}
		}
	}
	if noiseStd > 0 {
		for i := range img {
			img[i] += r.NormMeanStd(0, noiseStd)
		}
	}
	img.ClampInPlace(0, 1)
	return img
}

func validateMNIST(cfg MNISTConfig) error {
	switch {
	case cfg.Nodes < 2:
		return fmt.Errorf("data: need at least 2 nodes, got %d", cfg.Nodes)
	case cfg.DigitsPerNode < 1 || cfg.DigitsPerNode > 10:
		return fmt.Errorf("data: DigitsPerNode must be in [1,10], got %d", cfg.DigitsPerNode)
	case cfg.K <= 0:
		return fmt.Errorf("data: K must be positive, got %d", cfg.K)
	case cfg.MeanSamples <= 0 || cfg.StdSamples < 0:
		return fmt.Errorf("data: invalid node-size moments mean=%v std=%v", cfg.MeanSamples, cfg.StdSamples)
	case cfg.NoiseStd < 0:
		return fmt.Errorf("data: negative NoiseStd %v", cfg.NoiseStd)
	case cfg.SourceFraction <= 0 || cfg.SourceFraction >= 1:
		return fmt.Errorf("data: SourceFraction must be in (0,1), got %v", cfg.SourceFraction)
	}
	return nil
}
