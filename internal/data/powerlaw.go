package data

import (
	"math"

	"github.com/edgeai/fedml/internal/rng"
)

// PowerLawSizes draws n per-node sample counts whose distribution has
// approximately the given mean and standard deviation, with a heavy right
// tail (the paper states "the number of samples on each node follows a power
// law"). We use a lognormal draw — the standard heavy-tailed stand-in used
// by the FedProx codebase the paper's generator is modelled on — with
// moment-matched parameters, clipped below at min.
func PowerLawSizes(r *rng.Rand, n int, mean, std float64, min int) []int {
	if n <= 0 {
		return nil
	}
	// Moment matching: for X ~ LogNormal(mu, sigma),
	// E X = exp(mu + sigma^2/2), Var X = (exp(sigma^2)-1) E[X]^2.
	cv := std / mean
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	sigma := math.Sqrt(sigma2)

	sizes := make([]int, n)
	for i := range sizes {
		v := int(math.Round(r.LogNormal(mu, sigma)))
		if v < min {
			v = min
		}
		sizes[i] = v
	}
	return sizes
}
