package data

import "github.com/edgeai/fedml/internal/rng"

// Minibatch draws a uniform random subset of `size` samples without
// replacement (the whole slice, reshuffled copy-free semantics aside, when
// size >= len(samples)). The originals are not modified.
func Minibatch(r *rng.Rand, samples []Sample, size int) []Sample {
	if size <= 0 || len(samples) == 0 {
		return nil
	}
	if size >= len(samples) {
		out := make([]Sample, len(samples))
		copy(out, samples)
		return out
	}
	// Partial Fisher-Yates: draw `size` distinct indices.
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	out := make([]Sample, size)
	for k := 0; k < size; k++ {
		j := k + r.IntN(len(idx)-k)
		idx[k], idx[j] = idx[j], idx[k]
		out[k] = samples[idx[k]]
	}
	return out
}
