package data

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Sent140 stand-in. The paper's Sent140 experiment treats each Twitter
// account as a node; the model takes a sequence of 25 characters, embeds
// each into a 300-d pretrained (frozen) GloVe space, and feeds the
// concatenation to a 3-hidden-layer MLP. Offline we cannot ship tweets or
// GloVe, so we generate character sequences from per-node sentiment
// processes and use a frozen deterministic random embedding table as the
// pretrained-feature stand-in (DESIGN.md §3).

// Sent140Config parameterizes the Sent140-like workload.
type Sent140Config struct {
	// Nodes is the number of accounts (paper: 706).
	Nodes int
	// SeqLen is the number of characters per sample (paper: 25).
	SeqLen int
	// Vocab is the alphabet size.
	Vocab int
	// EmbedDim is the frozen embedding dimension (paper: 300; the default
	// experiment config scales this down for speed, see experiments pkg).
	EmbedDim int
	// K is the training-split size.
	K int
	// MeanSamples/StdSamples parameterize node sizes (Table I: 42 ± 35).
	MeanSamples, StdSamples float64
	// LexiconBias is the probability that a character is drawn from the
	// label's sentiment lexicon; the remainder mixes node-specific style and
	// uniform noise. Higher bias = more learnable signal.
	LexiconBias float64
	// FlipFraction is the fraction of accounts whose label polarity is
	// inverted (they use the lexicons with the opposite sentiment, as
	// sarcastic or idiosyncratic accounts do). This is the node-specific
	// structure that no single global model can express but that one
	// adaptation gradient step on K local samples can recover — the regime
	// the paper's fast-adaptation comparison operates in.
	FlipFraction float64
	// SourceFraction is the fraction of meta-training nodes (paper: 80%).
	SourceFraction float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultSent140Config returns the paper-shaped configuration (embedding
// dimension 300 as in the paper; experiments scale it down via this field).
func DefaultSent140Config() Sent140Config {
	return Sent140Config{
		Nodes:          706,
		SeqLen:         25,
		Vocab:          64,
		EmbedDim:       300,
		K:              5,
		MeanSamples:    42,
		StdSamples:     35,
		LexiconBias:    0.5,
		FlipFraction:   0.5,
		SourceFraction: 0.8,
		Seed:           3,
	}
}

// Embedding is a frozen character-embedding table: the GloVe stand-in.
type Embedding struct {
	Vocab, Dim int
	table      *tensor.Mat
}

// NewEmbedding builds a deterministic frozen embedding table with rows of
// roughly unit norm, seeded independently of the data so that the "pretrained
// features" are shared across all nodes (as GloVe is in the paper).
func NewEmbedding(vocab, dim int, seed uint64) *Embedding {
	r := rng.New(seed)
	t := tensor.NewMat(vocab, dim)
	scale := 1 / math.Sqrt(float64(dim))
	for i := range t.Data {
		t.Data[i] = r.Norm() * scale
	}
	return &Embedding{Vocab: vocab, Dim: dim, table: t}
}

// Embed concatenates the embeddings of the character ids into one vector of
// length len(ids)*Dim.
func (e *Embedding) Embed(ids []int) tensor.Vec {
	out := make(tensor.Vec, 0, len(ids)*e.Dim)
	for _, id := range ids {
		if id < 0 || id >= e.Vocab {
			panic(fmt.Sprintf("data: character id %d outside vocab %d", id, e.Vocab))
		}
		out = append(out, e.table.Row(id)...)
	}
	return out
}

// GenerateSent140 builds the Sent140-like Federation. Each node has a
// private "style" distribution over characters; each sample draws characters
// from a mixture of the global sentiment lexicon for its label, the node
// style, and uniform noise. Samples are pre-embedded with the frozen table,
// so downstream models are plain feed-forward networks over tensor.Vec.
func GenerateSent140(cfg Sent140Config) (*Federation, error) {
	if err := validateSent140(cfg); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	sizes := PowerLawSizes(root.Split(0), cfg.Nodes, cfg.MeanSamples, cfg.StdSamples, cfg.K+2)
	emb := NewEmbedding(cfg.Vocab, cfg.EmbedDim, cfg.Seed^0x5e1405e1405e14)

	// Global sentiment lexicons: disjoint character subsets for the two
	// labels (positive / negative), analogous to sentiment-bearing words.
	lexSize := cfg.Vocab / 4
	perm := root.Split(1).Perm(cfg.Vocab)
	lexicons := [2][]int{perm[:lexSize], perm[lexSize : 2*lexSize]}

	fed := &Federation{
		Name:       "Sent140",
		Dim:        cfg.SeqLen * cfg.EmbedDim,
		NumClasses: 2,
	}
	numSources := int(math.Round(cfg.SourceFraction * float64(cfg.Nodes)))
	if numSources <= 0 || numSources >= cfg.Nodes {
		return nil, fmt.Errorf("data: SourceFraction %v leaves no sources or no targets among %d nodes", cfg.SourceFraction, cfg.Nodes)
	}

	for i := 0; i < cfg.Nodes; i++ {
		nodeRng := root.Split(uint64(i) + 2)
		// Node style: a handful of characters this account overuses.
		style := make([]int, 6)
		for j := range style {
			style[j] = nodeRng.IntN(cfg.Vocab)
		}
		flipped := nodeRng.Float64() < cfg.FlipFraction
		samples := make([]Sample, sizes[i])
		for s := range samples {
			y := nodeRng.IntN(2)
			ids := make([]int, cfg.SeqLen)
			for c := range ids {
				u := nodeRng.Float64()
				switch {
				case u < cfg.LexiconBias:
					lex := lexicons[y]
					ids[c] = lex[nodeRng.IntN(len(lex))]
				case u < cfg.LexiconBias+0.3:
					ids[c] = style[nodeRng.IntN(len(style))]
				default:
					ids[c] = nodeRng.IntN(cfg.Vocab)
				}
			}
			label := y
			if flipped {
				label = 1 - y
			}
			samples[s] = Sample{X: emb.Embed(ids), Y: label}
		}
		nd, err := SplitNode(nodeRng, samples, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("split node %d: %w", i, err)
		}
		if i < numSources {
			fed.Sources = append(fed.Sources, nd)
		} else {
			fed.Targets = append(fed.Targets, nd)
		}
	}
	return fed, nil
}

func validateSent140(cfg Sent140Config) error {
	switch {
	case cfg.Nodes < 2:
		return fmt.Errorf("data: need at least 2 nodes, got %d", cfg.Nodes)
	case cfg.SeqLen <= 0 || cfg.Vocab < 8 || cfg.EmbedDim <= 0:
		return fmt.Errorf("data: invalid shape seqLen=%d vocab=%d embed=%d", cfg.SeqLen, cfg.Vocab, cfg.EmbedDim)
	case cfg.K <= 0:
		return fmt.Errorf("data: K must be positive, got %d", cfg.K)
	case cfg.MeanSamples <= 0 || cfg.StdSamples < 0:
		return fmt.Errorf("data: invalid node-size moments mean=%v std=%v", cfg.MeanSamples, cfg.StdSamples)
	case cfg.LexiconBias <= 0 || cfg.LexiconBias > 0.7:
		return fmt.Errorf("data: LexiconBias must be in (0, 0.7], got %v", cfg.LexiconBias)
	case cfg.FlipFraction < 0 || cfg.FlipFraction >= 1:
		return fmt.Errorf("data: FlipFraction must be in [0, 1), got %v", cfg.FlipFraction)
	case cfg.SourceFraction <= 0 || cfg.SourceFraction >= 1:
		return fmt.Errorf("data: SourceFraction must be in (0,1), got %v", cfg.SourceFraction)
	}
	return nil
}
