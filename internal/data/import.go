package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// LoadCSV reads labelled samples from CSV: each record holds dim feature
// columns followed by one integer class label. It returns the samples and
// the number of classes (1 + the maximum label seen). This is the bridge
// for reproducing the experiments on real datasets (e.g. an MNIST CSV
// export) instead of the offline stand-ins.
func LoadCSV(r io.Reader, dim int) ([]Sample, int, error) {
	if dim <= 0 {
		return nil, 0, fmt.Errorf("data: feature dimension must be positive, got %d", dim)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = dim + 1
	var samples []Sample
	classes := 0
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("data: csv line %d: %w", line, err)
		}
		x := make(tensor.Vec, dim)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, 0, fmt.Errorf("data: csv line %d column %d: %w", line, j+1, err)
			}
			x[j] = v
		}
		y, err := strconv.Atoi(rec[dim])
		if err != nil {
			return nil, 0, fmt.Errorf("data: csv line %d label: %w", line, err)
		}
		if y < 0 {
			return nil, 0, fmt.Errorf("data: csv line %d: negative label %d", line, y)
		}
		if y+1 > classes {
			classes = y + 1
		}
		samples = append(samples, Sample{X: x, Y: y})
	}
	if len(samples) == 0 {
		return nil, 0, fmt.Errorf("data: csv contains no samples")
	}
	if classes < 2 {
		return nil, 0, fmt.Errorf("data: csv contains only one class")
	}
	return samples, classes, nil
}

// LoadCSVFile opens path and delegates to LoadCSV.
func LoadCSVFile(path string, dim int) ([]Sample, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("data: open %s: %w", path, err)
	}
	defer f.Close()
	return LoadCSV(f, dim)
}

// PartitionConfig controls how a flat sample pool is distributed over a
// federation of edge nodes, reproducing the paper's non-IID setup on
// user-supplied data.
type PartitionConfig struct {
	// Nodes is the federation size.
	Nodes int
	// ClassesPerNode enables label skew: each node only sees this many
	// classes (the paper's MNIST setting uses 2). Zero means IID (all
	// classes everywhere).
	ClassesPerNode int
	// K is the few-shot training-split size per node.
	K int
	// MeanSamples/StdSamples parameterize power-law node sizes. Zero mean
	// divides the pool evenly.
	MeanSamples, StdSamples float64
	// SourceFraction is the fraction of meta-training nodes (paper: 0.8).
	SourceFraction float64
	// Seed drives the assignment.
	Seed uint64
}

// BuildFederation partitions samples over a federation according to cfg.
// Samples are drawn per node from its assigned classes' pools without
// replacement until a pool is exhausted, then that pool recycles (shuffled
// re-use keeps every node at its target size on small datasets; callers
// with abundant data never recycle).
func BuildFederation(name string, samples []Sample, classes int, cfg PartitionConfig) (*Federation, error) {
	switch {
	case len(samples) == 0:
		return nil, fmt.Errorf("data: no samples to partition")
	case classes < 2:
		return nil, fmt.Errorf("data: need >= 2 classes, got %d", classes)
	case cfg.Nodes < 2:
		return nil, fmt.Errorf("data: need >= 2 nodes, got %d", cfg.Nodes)
	case cfg.ClassesPerNode < 0 || cfg.ClassesPerNode > classes:
		return nil, fmt.Errorf("data: ClassesPerNode %d outside [0, %d]", cfg.ClassesPerNode, classes)
	case cfg.K <= 0:
		return nil, fmt.Errorf("data: K must be positive, got %d", cfg.K)
	case cfg.SourceFraction <= 0 || cfg.SourceFraction >= 1:
		return nil, fmt.Errorf("data: SourceFraction must be in (0,1), got %v", cfg.SourceFraction)
	case cfg.MeanSamples < 0 || cfg.StdSamples < 0:
		return nil, fmt.Errorf("data: negative node-size moments")
	}

	root := rng.New(cfg.Seed)

	// Class pools, shuffled once.
	pools := make([][]Sample, classes)
	for _, s := range samples {
		if s.Y < 0 || s.Y >= classes {
			return nil, fmt.Errorf("data: sample label %d outside %d classes", s.Y, classes)
		}
		pools[s.Y] = append(pools[s.Y], s)
	}
	poolRng := root.Split(0)
	cursors := make([]int, classes)
	for c := range pools {
		p := pools[c]
		poolRng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	}
	drawFrom := func(c int) Sample {
		p := pools[c]
		if cursors[c] >= len(p) {
			poolRng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
			cursors[c] = 0
		}
		s := p[cursors[c]]
		cursors[c]++
		return s
	}

	// Per-node sizes.
	var sizes []int
	if cfg.MeanSamples > 0 {
		sizes = PowerLawSizes(root.Split(1), cfg.Nodes, cfg.MeanSamples, cfg.StdSamples, cfg.K+2)
	} else {
		per := len(samples) / cfg.Nodes
		if per < cfg.K+2 {
			return nil, fmt.Errorf("data: %d samples over %d nodes leaves %d per node, need > K=%d", len(samples), cfg.Nodes, per, cfg.K)
		}
		sizes = make([]int, cfg.Nodes)
		for i := range sizes {
			sizes[i] = per
		}
	}

	numSources := int(cfg.SourceFraction*float64(cfg.Nodes) + 0.5)
	if numSources <= 0 || numSources >= cfg.Nodes {
		return nil, fmt.Errorf("data: SourceFraction %v leaves no sources or no targets", cfg.SourceFraction)
	}

	fed := &Federation{Name: name, Dim: len(samples[0].X), NumClasses: classes}
	for i := 0; i < cfg.Nodes; i++ {
		nodeRng := root.Split(uint64(i) + 2)
		// Classes this node sees. Only classes with data are eligible.
		eligible := make([]int, 0, classes)
		for c := range pools {
			if len(pools[c]) > 0 {
				eligible = append(eligible, c)
			}
		}
		if len(eligible) == 0 {
			return nil, fmt.Errorf("data: no non-empty class pools")
		}
		nodeClasses := eligible
		if n := cfg.ClassesPerNode; n > 0 && n < len(eligible) {
			perm := nodeRng.Perm(len(eligible))
			nodeClasses = make([]int, n)
			for j := 0; j < n; j++ {
				nodeClasses[j] = eligible[perm[j]]
			}
		}
		nodeSamples := make([]Sample, sizes[i])
		for s := range nodeSamples {
			nodeSamples[s] = drawFrom(nodeClasses[nodeRng.IntN(len(nodeClasses))])
		}
		nd, err := SplitNode(nodeRng, nodeSamples, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("partition node %d: %w", i, err)
		}
		if i < numSources {
			fed.Sources = append(fed.Sources, nd)
		} else {
			fed.Targets = append(fed.Targets, nd)
		}
	}
	return fed, nil
}
