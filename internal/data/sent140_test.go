package data

import (
	"testing"
)

func smallSent140Config() Sent140Config {
	cfg := DefaultSent140Config()
	cfg.Nodes = 20
	cfg.EmbedDim = 8
	cfg.SeqLen = 10
	return cfg
}

func TestGenerateSent140Shape(t *testing.T) {
	cfg := smallSent140Config()
	fed, err := GenerateSent140(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Dim != cfg.SeqLen*cfg.EmbedDim {
		t.Errorf("dim = %d, want %d", fed.Dim, cfg.SeqLen*cfg.EmbedDim)
	}
	if fed.NumClasses != 2 {
		t.Errorf("classes = %d, want 2", fed.NumClasses)
	}
	if len(fed.Sources) != 16 || len(fed.Targets) != 4 {
		t.Errorf("source/target = %d/%d", len(fed.Sources), len(fed.Targets))
	}
	for _, n := range fed.Sources {
		for _, s := range n.All() {
			if len(s.X) != fed.Dim {
				t.Fatalf("sample dim %d", len(s.X))
			}
			if s.Y != 0 && s.Y != 1 {
				t.Fatalf("label %d", s.Y)
			}
		}
	}
}

func TestSent140BothLabelsPresent(t *testing.T) {
	fed, err := GenerateSent140(smallSent140Config())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, n := range fed.Sources {
		for _, s := range n.All() {
			counts[s.Y]++
		}
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("degenerate labels: %v", counts)
	}
}

func TestSent140Deterministic(t *testing.T) {
	cfg := smallSent140Config()
	a, _ := GenerateSent140(cfg)
	b, _ := GenerateSent140(cfg)
	if a.Sources[0].Train[0].X.Dist(b.Sources[0].Train[0].X) != 0 {
		t.Error("same seed produced different data")
	}
}

func TestSent140SignalIsLearnable(t *testing.T) {
	// A trivial nearest-centroid classifier on the embedded features should
	// beat chance comfortably: the per-label lexicons inject real signal.
	cfg := smallSent140Config()
	cfg.Nodes = 10
	cfg.FlipFraction = 0 // global signal only exists without polarity flips
	fed, err := GenerateSent140(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var train, test []Sample
	for _, n := range fed.Sources {
		train = append(train, n.Train...)
		test = append(test, n.Test...)
	}
	centroid := make([][]float64, 2)
	counts := [2]int{}
	for c := range centroid {
		centroid[c] = make([]float64, fed.Dim)
	}
	for _, s := range train {
		for j, v := range s.X {
			centroid[s.Y][j] += v
		}
		counts[s.Y]++
	}
	for c := range centroid {
		if counts[c] == 0 {
			t.Skip("degenerate train draw")
		}
		for j := range centroid[c] {
			centroid[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for _, s := range test {
		best, bestD := 0, 1e300
		for c := range centroid {
			var d float64
			for j, v := range s.X {
				diff := v - centroid[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == s.Y {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.6 {
		t.Errorf("nearest-centroid accuracy %v; generated data carries too little signal", acc)
	}
}

func TestSent140PolarityFlipsCreateNodeHeterogeneity(t *testing.T) {
	// With FlipFraction=0.5 a global classifier cannot fit every node:
	// measure per-node agreement with a fixed lexicon rule and check both
	// polarities occur.
	cfg := smallSent140Config()
	cfg.Nodes = 40
	cfg.FlipFraction = 0.5
	fed, err := GenerateSent140(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the un-flipped generator on the same seed labels samples
	// by raw lexicon sentiment; compare class-conditional feature means
	// between nodes instead, which must anti-correlate for flipped pairs.
	meanDiff := func(n *NodeDataset) []float64 {
		d := make([]float64, fed.Dim)
		counts := [2]int{}
		for _, s := range n.All() {
			counts[s.Y]++
		}
		if counts[0] == 0 || counts[1] == 0 {
			return nil
		}
		for _, s := range n.All() {
			sign := 1.0
			if s.Y == 0 {
				sign = -1
			}
			for j, v := range s.X {
				d[j] += sign * v / float64(counts[s.Y])
			}
		}
		return d
	}
	var first []float64
	pos, neg := 0, 0
	for _, n := range fed.Sources {
		d := meanDiff(n)
		if d == nil {
			continue
		}
		if first == nil {
			first = d
			continue
		}
		var dot float64
		for j := range d {
			dot += d[j] * first[j]
		}
		if dot > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("polarity flips missing: %d aligned, %d anti-aligned nodes", pos, neg)
	}
}

func TestEmbeddingDeterministicAndFrozen(t *testing.T) {
	a := NewEmbedding(32, 8, 5)
	b := NewEmbedding(32, 8, 5)
	ea, eb := a.Embed([]int{0, 5, 31}), b.Embed([]int{0, 5, 31})
	if ea.Dist(eb) != 0 {
		t.Error("embedding table is not deterministic")
	}
	if len(ea) != 24 {
		t.Errorf("embed length = %d, want 24", len(ea))
	}
}

func TestEmbedPanicsOutOfVocab(t *testing.T) {
	e := NewEmbedding(8, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Embed with id out of vocab did not panic")
		}
	}()
	e.Embed([]int{8})
}

func TestSent140Validation(t *testing.T) {
	bad := []func(*Sent140Config){
		func(c *Sent140Config) { c.Nodes = 1 },
		func(c *Sent140Config) { c.SeqLen = 0 },
		func(c *Sent140Config) { c.Vocab = 4 },
		func(c *Sent140Config) { c.EmbedDim = 0 },
		func(c *Sent140Config) { c.K = 0 },
		func(c *Sent140Config) { c.LexiconBias = 0 },
		func(c *Sent140Config) { c.LexiconBias = 0.9 },
		func(c *Sent140Config) { c.FlipFraction = -0.1 },
		func(c *Sent140Config) { c.FlipFraction = 1 },
		func(c *Sent140Config) { c.SourceFraction = 1.5 },
	}
	for i, mutate := range bad {
		cfg := smallSent140Config()
		mutate(&cfg)
		if _, err := GenerateSent140(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
