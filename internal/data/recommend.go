package data

import (
	"fmt"
	"math"
	"sort"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Federated recommendation workload (Chen et al.'s FedMeta-for-recommendation
// framing): each node is one user, each sample is one user-item interaction,
// and fast adaptation IS the product — a few locally observed ratings must
// personalize the shared model to the user's taste.
//
// Generative model. A catalog of Items carries latent embeddings
// q_j ~ N(0, I/√d); item popularity is a power law (Zipf with exponent
// PopularityExponent), so every user's interaction log concentrates on the
// same popular head while the tail differs per user. User i scores item j as
//
//	score_ij = (w* + p_i) · q_j + ε,   ε ~ N(0, NoiseStd²)
//
// where w* is a SHARED quality direction (some items are broadly liked —
// the structure a global model can learn) and p_i ~ N(0, TasteStd²·I) is the
// user's PRIVATE taste (the structure only per-user adaptation can express).
// Ratings are the score bucketed into Levels classes at the user's own
// empirical quantiles — users calibrate their own star scale — so every
// node's label distribution is balanced by construction. The observed
// feature vector of a sample is the item embedding q_j itself
// (embedding-style features; Dim = LatentDim), and the metric downstream is
// post-adaptation rating accuracy on the user's held-out interactions.
//
// With TasteStd ≳ 1 the private component dominates: a single global model
// tops out near the accuracy w* alone affords, while one or two gradient
// steps on the user's K observed ratings recover p_i's direction — the
// personalized-vs-global gap the ext-rec comparison matrix measures.

// RecommendConfig parameterizes the federated recommendation generator.
type RecommendConfig struct {
	// Users is the number of nodes (one node per user).
	Users int
	// Items is the catalog size.
	Items int
	// LatentDim is the item-embedding width; the observed feature dimension.
	LatentDim int
	// Levels is the rating granularity (2 = like/dislike, up to 5 stars).
	Levels int
	// TasteStd scales the private per-user preference p_i against the
	// shared quality direction w* (entrywise std 1). Larger values make
	// personalization matter more.
	TasteStd float64
	// NoiseStd is the rating-noise level ε.
	NoiseStd float64
	// PopularityExponent is the Zipf exponent of item popularity (0 = uniform).
	PopularityExponent float64
	// K is the training-split size |D_i^train| (the observed ratings
	// adaptation may use).
	K int
	// MeanSamples/StdSamples parameterize the power-law per-user
	// interaction counts.
	MeanSamples, StdSamples float64
	// SourceFraction is the fraction of meta-training users.
	SourceFraction float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultRecommendConfig returns the reference configuration: 80 users over
// a 200-item catalog, 16-d embeddings, binary like/dislike ratings.
func DefaultRecommendConfig() RecommendConfig {
	return RecommendConfig{
		Users:              80,
		Items:              200,
		LatentDim:          16,
		Levels:             2,
		TasteStd:           1.5,
		NoiseStd:           0.1,
		PopularityExponent: 1.0,
		K:                  5,
		MeanSamples:        30,
		StdSamples:         15,
		SourceFraction:     0.8,
		Seed:               11,
	}
}

// GenerateRecommend builds the federated recommendation Federation.
func GenerateRecommend(cfg RecommendConfig) (*Federation, error) {
	if err := validateRecommend(cfg); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	sizes := PowerLawSizes(root.Split(0), cfg.Users, cfg.MeanSamples, cfg.StdSamples, cfg.K+cfg.Levels+1)

	// Shared catalog: item embeddings and the Zipf popularity CDF, drawn
	// once so every user rates the same items.
	catRng := root.Split(1)
	scale := 1 / math.Sqrt(float64(cfg.LatentDim))
	items := make([]tensor.Vec, cfg.Items)
	for j := range items {
		q := tensor.NewVec(cfg.LatentDim)
		for d := range q {
			q[d] = catRng.Norm() * scale
		}
		items[j] = q
	}
	popCDF := zipfCDF(cfg.Items, cfg.PopularityExponent)

	// Shared quality direction w*: the cross-user structure a global model
	// (and a meta-initialization) can learn.
	wStar := tensor.NewVec(cfg.LatentDim)
	for d := range wStar {
		wStar[d] = catRng.Norm()
	}

	fed := &Federation{
		Name:       "Recommend",
		Dim:        cfg.LatentDim,
		NumClasses: cfg.Levels,
	}
	numSources := int(math.Round(cfg.SourceFraction * float64(cfg.Users)))
	if numSources <= 0 || numSources >= cfg.Users {
		return nil, fmt.Errorf("data: SourceFraction %v leaves no sources or no targets among %d users", cfg.SourceFraction, cfg.Users)
	}

	pref := tensor.NewVec(cfg.LatentDim)
	for i := 0; i < cfg.Users; i++ {
		userRng := root.Split(uint64(i) + 2)
		// User preference: shared quality plus private taste.
		for d := range pref {
			pref[d] = wStar[d] + userRng.NormMeanStd(0, cfg.TasteStd)
		}
		n := sizes[i]
		scores := make([]float64, n)
		feats := make([]tensor.Vec, n)
		for s := 0; s < n; s++ {
			j := sampleCDF(popCDF, userRng.Float64())
			feats[s] = items[j]
			scores[s] = pref.Dot(items[j]) + userRng.NormMeanStd(0, cfg.NoiseStd)
		}
		labels := bucketByQuantile(scores, cfg.Levels)
		samples := make([]Sample, n)
		for s := range samples {
			// Samples share the catalog's embedding rows; SplitNode and all
			// consumers treat Sample.X as read-only.
			samples[s] = Sample{X: feats[s], Y: labels[s]}
		}
		nd, err := SplitNode(userRng, samples, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("split user %d: %w", i, err)
		}
		if i < numSources {
			fed.Sources = append(fed.Sources, nd)
		} else {
			fed.Targets = append(fed.Targets, nd)
		}
	}
	return fed, nil
}

// zipfCDF returns the cumulative popularity distribution P(item ≤ j) with
// P(j) ∝ (j+1)^-s.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	total := 0.0
	for j := 0; j < n; j++ {
		total += math.Pow(float64(j+1), -s)
		cdf[j] = total
	}
	for j := range cdf {
		cdf[j] /= total
	}
	return cdf
}

// sampleCDF returns the first index whose cumulative mass covers u ∈ [0, 1).
func sampleCDF(cdf []float64, u float64) int {
	i := sort.SearchFloat64s(cdf, u)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}

// bucketByQuantile assigns each score its rating class by the empirical
// quantiles of the user's own scores: the lowest 1/levels fraction is class
// 0, the next is class 1, and so on — per-user calibrated star scales with
// balanced labels by construction.
func bucketByQuantile(scores []float64, levels int) []int {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	labels := make([]int, n)
	for rank, idx := range order {
		c := rank * levels / n
		if c >= levels {
			c = levels - 1
		}
		labels[idx] = c
	}
	return labels
}

func validateRecommend(cfg RecommendConfig) error {
	switch {
	case cfg.Users < 2:
		return fmt.Errorf("data: need at least 2 users, got %d", cfg.Users)
	case cfg.Items < 2:
		return fmt.Errorf("data: need at least 2 items, got %d", cfg.Items)
	case cfg.LatentDim <= 0:
		return fmt.Errorf("data: LatentDim must be positive, got %d", cfg.LatentDim)
	case cfg.Levels < 2 || cfg.Levels > 5:
		return fmt.Errorf("data: Levels must be in [2,5], got %d", cfg.Levels)
	case cfg.TasteStd < 0 || cfg.NoiseStd < 0:
		return fmt.Errorf("data: negative taste/noise std %v/%v", cfg.TasteStd, cfg.NoiseStd)
	case cfg.PopularityExponent < 0:
		return fmt.Errorf("data: negative popularity exponent %v", cfg.PopularityExponent)
	case cfg.K <= 0:
		return fmt.Errorf("data: K must be positive, got %d", cfg.K)
	case cfg.MeanSamples <= 0 || cfg.StdSamples < 0:
		return fmt.Errorf("data: invalid node-size moments mean=%v std=%v", cfg.MeanSamples, cfg.StdSamples)
	case cfg.SourceFraction <= 0 || cfg.SourceFraction >= 1:
		return fmt.Errorf("data: SourceFraction must be in (0,1), got %v", cfg.SourceFraction)
	}
	return nil
}
