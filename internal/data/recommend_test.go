package data

import (
	"math"
	"testing"
)

func smallRecommendConfig() RecommendConfig {
	cfg := DefaultRecommendConfig()
	cfg.Users = 20
	cfg.Items = 60
	cfg.LatentDim = 8
	return cfg
}

func TestGenerateRecommendShape(t *testing.T) {
	cfg := smallRecommendConfig()
	fed, err := GenerateRecommend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Dim != cfg.LatentDim {
		t.Errorf("dim = %d, want %d", fed.Dim, cfg.LatentDim)
	}
	if fed.NumClasses != cfg.Levels {
		t.Errorf("classes = %d, want %d", fed.NumClasses, cfg.Levels)
	}
	if len(fed.Sources) != 16 || len(fed.Targets) != 4 {
		t.Errorf("source/target = %d/%d", len(fed.Sources), len(fed.Targets))
	}
	for _, n := range fed.Sources {
		if len(n.Train) != cfg.K {
			t.Fatalf("train split %d, want %d", len(n.Train), cfg.K)
		}
		for _, s := range n.All() {
			if len(s.X) != fed.Dim {
				t.Fatalf("sample dim %d", len(s.X))
			}
			if s.Y < 0 || s.Y >= cfg.Levels {
				t.Fatalf("label %d out of [0,%d)", s.Y, cfg.Levels)
			}
		}
	}
}

// Determinism under rng.Split: the same seed must reproduce the federation
// bit-identically, including every feature value and label.
func TestRecommendDeterministic(t *testing.T) {
	cfg := smallRecommendConfig()
	a, err := GenerateRecommend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRecommend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodesA := append(append([]*NodeDataset{}, a.Sources...), a.Targets...)
	nodesB := append(append([]*NodeDataset{}, b.Sources...), b.Targets...)
	for i := range nodesA {
		sa, sb := nodesA[i].All(), nodesB[i].All()
		if len(sa) != len(sb) {
			t.Fatalf("node %d sizes differ: %d vs %d", i, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j].Y != sb[j].Y || sa[j].X.Dist(sb[j].X) != 0 {
				t.Fatalf("node %d sample %d differs between same-seed runs", i, j)
			}
		}
	}
	cfg.Seed++
	c, err := GenerateRecommend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sources[0].Train[0].X.Dist(c.Sources[0].Train[0].X) == 0 &&
		a.Sources[0].Train[0].Y == c.Sources[0].Train[0].Y &&
		a.Sources[0].Size() == c.Sources[0].Size() {
		t.Error("different seeds produced identical data")
	}
}

// Power-law partition shape: node sizes must be heterogeneous (not a flat
// split), respect the generator's floor, and average near MeanSamples.
func TestRecommendPowerLawShape(t *testing.T) {
	cfg := smallRecommendConfig()
	cfg.Users = 60
	fed, err := GenerateRecommend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := append(append([]*NodeDataset{}, fed.Sources...), fed.Targets...)
	minSize, maxSize, total := math.MaxInt, 0, 0
	for _, n := range nodes {
		sz := n.Size()
		if sz < minSize {
			minSize = sz
		}
		if sz > maxSize {
			maxSize = sz
		}
		total += sz
	}
	if floor := cfg.K + cfg.Levels + 1; minSize < floor {
		t.Errorf("min node size %d below floor %d", minSize, floor)
	}
	if maxSize <= minSize {
		t.Errorf("degenerate partition: all nodes size %d", minSize)
	}
	mean := float64(total) / float64(len(nodes))
	if mean < cfg.MeanSamples/2 || mean > cfg.MeanSamples*2 {
		t.Errorf("mean node size %.1f far from configured %v", mean, cfg.MeanSamples)
	}
	// Power-law skew: the largest node should be well above the mean.
	if float64(maxSize) < 1.3*mean {
		t.Errorf("max node size %d shows no heavy tail over mean %.1f", maxSize, mean)
	}
}

// Every user's labels are balanced by construction (per-user quantile
// bucketing), so each rating level must appear on each node.
func TestRecommendPerUserLabelBalance(t *testing.T) {
	cfg := smallRecommendConfig()
	cfg.Levels = 3
	fed, err := GenerateRecommend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range fed.Sources {
		counts := map[int]int{}
		for _, s := range n.All() {
			counts[s.Y]++
		}
		for c := 0; c < cfg.Levels; c++ {
			if counts[c] == 0 {
				t.Errorf("user %d missing rating level %d: %v", i, c, counts)
			}
		}
	}
}

// Zipf popularity: the most popular catalog head must account for a
// disproportionate share of interactions across all users.
func TestRecommendPopularitySkew(t *testing.T) {
	cfg := smallRecommendConfig()
	cfg.Users = 40
	fed, err := GenerateRecommend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Items are identified by their (shared) embedding vectors; count
	// distinct feature rows.
	seen := map[string]int{}
	keyOf := func(x []float64) string {
		buf := make([]byte, 0, len(x)*8)
		for _, v := range x {
			bits := math.Float64bits(v)
			for b := 0; b < 8; b++ {
				buf = append(buf, byte(bits>>(8*b)))
			}
		}
		return string(buf)
	}
	total := 0
	for _, n := range fed.Sources {
		for _, s := range n.All() {
			seen[keyOf(s.X)]++
			total++
		}
	}
	if len(seen) < 2 || len(seen) > cfg.Items {
		t.Fatalf("distinct items %d outside (1, %d]", len(seen), cfg.Items)
	}
	top := 0
	for _, c := range seen {
		if c > top {
			top = c
		}
	}
	uniform := float64(total) / float64(cfg.Items)
	if float64(top) < 3*uniform {
		t.Errorf("top item count %d shows no popularity skew (uniform share %.1f)", top, uniform)
	}
}

func TestRecommendValidation(t *testing.T) {
	bad := []func(*RecommendConfig){
		func(c *RecommendConfig) { c.Users = 1 },
		func(c *RecommendConfig) { c.Items = 1 },
		func(c *RecommendConfig) { c.LatentDim = 0 },
		func(c *RecommendConfig) { c.Levels = 1 },
		func(c *RecommendConfig) { c.Levels = 6 },
		func(c *RecommendConfig) { c.TasteStd = -1 },
		func(c *RecommendConfig) { c.NoiseStd = -0.1 },
		func(c *RecommendConfig) { c.PopularityExponent = -0.5 },
		func(c *RecommendConfig) { c.K = 0 },
		func(c *RecommendConfig) { c.MeanSamples = 0 },
		func(c *RecommendConfig) { c.SourceFraction = 1 },
	}
	for i, mutate := range bad {
		cfg := smallRecommendConfig()
		mutate(&cfg)
		if _, err := GenerateRecommend(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
