package data

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// TinyML fault-classification workload (Fed-Meta-Align's heterogeneous-device
// setting): each node is one sensor-equipped edge device classifying windows
// of its own signal into fault modes. Two axes of heterogeneity make a
// single global model insufficient and one adaptation step sufficient:
//
//   - Calibration drift: every device renders the SAME fault signatures
//     through its own amplitude gain, baseline offset, and phase — fixed
//     per device, so a handful of local windows reveal them.
//   - Class skew: a device observes only FaultsPerDevice of the fault modes
//     (plus "normal"), mirroring how real deployments see the failure modes
//     of their own installation, not the full taxonomy.
//
// A sample is a window of FaultWindow sensor readings: a baseline sinusoid
// (the healthy signal) overlaid with one of the fault signatures, plus
// per-device Gaussian sensor noise whose level itself varies across devices.

// FaultWindow is the number of sensor readings per classification window.
const FaultWindow = 24

// Fault-mode classes. Class 0 is the healthy signal; classes 1..5 are the
// fault signatures injected on top of it.
const (
	FaultNormal = iota // healthy baseline
	FaultBias          // constant offset shift
	FaultDrift         // linear ramp across the window
	FaultSpike         // short large-amplitude transient
	FaultStuck         // reading frozen at a constant from a random onset
	FaultNoise         // variance burst (noisy electronics)
	NumFaultClasses
)

// FaultConfig parameterizes the fault-classification generator.
type FaultConfig struct {
	// Devices is the number of nodes (one node per edge device).
	Devices int
	// FaultsPerDevice is the class-skew level: how many of the 5 fault
	// modes each device observes (plus the normal class).
	FaultsPerDevice int
	// K is the training-split size.
	K int
	// MeanSamples/StdSamples parameterize the power-law node sizes.
	MeanSamples, StdSamples float64
	// NoiseStdMin/NoiseStdMax bound the per-device sensor-noise level,
	// drawn uniformly per device (noise heterogeneity).
	NoiseStdMin, NoiseStdMax float64
	// SourceFraction is the fraction of meta-training devices.
	SourceFraction float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultFaultConfig returns the reference configuration: 60 devices, each
// seeing 2 of the 5 fault modes.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{
		Devices:         60,
		FaultsPerDevice: 2,
		K:               5,
		MeanSamples:     40,
		StdSamples:      15,
		NoiseStdMin:     0.05,
		NoiseStdMax:     0.25,
		SourceFraction:  0.8,
		Seed:            13,
	}
}

// GenerateFault builds the fault-classification Federation.
func GenerateFault(cfg FaultConfig) (*Federation, error) {
	if err := validateFault(cfg); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	sizes := PowerLawSizes(root.Split(0), cfg.Devices, cfg.MeanSamples, cfg.StdSamples, cfg.K+cfg.FaultsPerDevice+2)

	fed := &Federation{
		Name:       "Fault",
		Dim:        FaultWindow,
		NumClasses: NumFaultClasses,
	}
	numSources := int(math.Round(cfg.SourceFraction * float64(cfg.Devices)))
	if numSources <= 0 || numSources >= cfg.Devices {
		return nil, fmt.Errorf("data: SourceFraction %v leaves no sources or no targets among %d devices", cfg.SourceFraction, cfg.Devices)
	}

	for i := 0; i < cfg.Devices; i++ {
		devRng := root.Split(uint64(i) + 1)
		dev := deviceProfile(devRng, cfg)
		classes := deviceFaults(devRng, cfg.FaultsPerDevice)
		samples := make([]Sample, sizes[i])
		for s := range samples {
			c := classes[devRng.IntN(len(classes))]
			samples[s] = Sample{X: renderFaultWindow(devRng, dev, c), Y: c}
		}
		nd, err := SplitNode(devRng, samples, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("split device %d: %w", i, err)
		}
		if i < numSources {
			fed.Sources = append(fed.Sources, nd)
		} else {
			fed.Targets = append(fed.Targets, nd)
		}
	}
	return fed, nil
}

// faultProfile is one device's fixed sensor calibration: the heterogeneity
// that personalization recovers.
type faultProfile struct {
	amp, freq, offset, phase, noiseStd float64
}

func deviceProfile(r *rng.Rand, cfg FaultConfig) faultProfile {
	return faultProfile{
		amp:      0.6 + 0.8*r.Float64(),     // [0.6, 1.4]
		freq:     1.5 + 1.5*r.Float64(),     // [1.5, 3.0] cycles/window
		offset:   r.NormMeanStd(0, 0.4),     // baseline shift
		phase:    2 * math.Pi * r.Float64(), // sampling alignment
		noiseStd: cfg.NoiseStdMin + (cfg.NoiseStdMax-cfg.NoiseStdMin)*r.Float64(),
	}
}

// deviceFaults returns the device's observable classes: FaultNormal plus n
// fault modes chosen without replacement.
func deviceFaults(r *rng.Rand, n int) []int {
	p := r.Perm(NumFaultClasses - 1) // permutation of the 5 fault modes
	classes := make([]int, 0, n+1)
	classes = append(classes, FaultNormal)
	for _, f := range p[:n] {
		classes = append(classes, f+1)
	}
	return classes
}

// renderFaultWindow synthesizes one sensor window: the device's calibrated
// healthy sinusoid, the fault signature for class c, and sensor noise.
func renderFaultWindow(r *rng.Rand, dev faultProfile, c int) tensor.Vec {
	w := tensor.NewVec(FaultWindow)
	for t := range w {
		x := float64(t) / FaultWindow
		w[t] = dev.offset + dev.amp*math.Sin(2*math.Pi*dev.freq*x+dev.phase)
	}
	switch c {
	case FaultNormal:
		// healthy signal only
	case FaultBias:
		shift := 0.8 + 0.4*r.Float64()
		if r.Float64() < 0.5 {
			shift = -shift
		}
		for t := range w {
			w[t] += shift
		}
	case FaultDrift:
		slope := 1.2 + 0.8*r.Float64()
		if r.Float64() < 0.5 {
			slope = -slope
		}
		for t := range w {
			w[t] += slope * float64(t) / FaultWindow
		}
	case FaultSpike:
		at := r.IntN(FaultWindow)
		mag := 2 + 1.5*r.Float64()
		if r.Float64() < 0.5 {
			mag = -mag
		}
		w[at] += mag
		if at+1 < FaultWindow {
			w[at+1] += mag / 2
		}
	case FaultStuck:
		onset := 2 + r.IntN(FaultWindow/2)
		frozen := w[onset]
		for t := onset; t < FaultWindow; t++ {
			w[t] = frozen
		}
	case FaultNoise:
		burst := 3 * dev.amp
		for t := range w {
			w[t] += r.NormMeanStd(0, burst)
		}
	default:
		panic(fmt.Sprintf("data: renderFaultWindow with unknown class %d", c))
	}
	if dev.noiseStd > 0 {
		for t := range w {
			w[t] += r.NormMeanStd(0, dev.noiseStd)
		}
	}
	return w
}

func validateFault(cfg FaultConfig) error {
	switch {
	case cfg.Devices < 2:
		return fmt.Errorf("data: need at least 2 devices, got %d", cfg.Devices)
	case cfg.FaultsPerDevice < 1 || cfg.FaultsPerDevice > NumFaultClasses-1:
		return fmt.Errorf("data: FaultsPerDevice must be in [1,%d], got %d", NumFaultClasses-1, cfg.FaultsPerDevice)
	case cfg.K <= 0:
		return fmt.Errorf("data: K must be positive, got %d", cfg.K)
	case cfg.MeanSamples <= 0 || cfg.StdSamples < 0:
		return fmt.Errorf("data: invalid node-size moments mean=%v std=%v", cfg.MeanSamples, cfg.StdSamples)
	case cfg.NoiseStdMin < 0 || cfg.NoiseStdMax < cfg.NoiseStdMin:
		return fmt.Errorf("data: invalid noise range [%v,%v]", cfg.NoiseStdMin, cfg.NoiseStdMax)
	case cfg.SourceFraction <= 0 || cfg.SourceFraction >= 1:
		return fmt.Errorf("data: SourceFraction must be in (0,1), got %v", cfg.SourceFraction)
	}
	return nil
}
