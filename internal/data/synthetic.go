package data

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// SyntheticConfig parameterizes the Synthetic(α̃, β̃) generator from §VI-A of
// the paper (which follows the FedProx setup). Alpha controls how much the
// per-node ground-truth models differ; Beta controls how much the per-node
// input distributions differ. Synthetic(0,0) is the most homogeneous setting.
type SyntheticConfig struct {
	// Alpha is α̃: variance of the per-node model mean u_i.
	Alpha float64
	// Beta is β̃: variance of the per-node input mean B_i.
	Beta float64
	// Nodes is the total number of nodes (paper: 50).
	Nodes int
	// Dim is the input dimension (paper: 60).
	Dim int
	// Classes is the number of labels (paper: 10).
	Classes int
	// K is the training-split size |D_i^train|.
	K int
	// MeanSamples/StdSamples parameterize the power-law node sizes
	// (Table I: mean 17, stdev 5).
	MeanSamples, StdSamples float64
	// SourceFraction is the fraction of nodes used as meta-training sources
	// (paper: 80%).
	SourceFraction float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultSyntheticConfig returns the paper's configuration for
// Synthetic(alpha, beta).
func DefaultSyntheticConfig(alpha, beta float64) SyntheticConfig {
	return SyntheticConfig{
		Alpha:          alpha,
		Beta:           beta,
		Nodes:          50,
		Dim:            60,
		Classes:        10,
		K:              5,
		MeanSamples:    17,
		StdSamples:     5,
		SourceFraction: 0.8,
		Seed:           1,
	}
}

// GenerateSynthetic builds a Federation according to the paper's generative
// model: for node i, draw u_i ~ N(0, α̃) and B_i ~ N(0, β̃); the node's true
// model is W_i ~ N(u_i, 1) (entrywise), b_i ~ N(u_i, 1); its inputs are
// x ~ N(v_i, Σ) with v_i entrywise ~ N(B_i, 1) and Σ diagonal with
// Σ_kk = k^-1.2; labels are y = argmax softmax(W_i x + b_i).
func GenerateSynthetic(cfg SyntheticConfig) (*Federation, error) {
	if err := validateSynthetic(cfg); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	sizeRng := root.Split(0)
	sizes := PowerLawSizes(sizeRng, cfg.Nodes, cfg.MeanSamples, cfg.StdSamples, cfg.K+2)

	fed := &Federation{
		Name:       fmt.Sprintf("Synthetic(%g,%g)", cfg.Alpha, cfg.Beta),
		Dim:        cfg.Dim,
		NumClasses: cfg.Classes,
	}

	// Diagonal input covariance Σ_kk = k^-1.2 (k is 1-based in the paper).
	sigma := make([]float64, cfg.Dim)
	for k := range sigma {
		sigma[k] = math.Pow(float64(k+1), -1.2)
	}

	numSources := int(math.Round(cfg.SourceFraction * float64(cfg.Nodes)))
	if numSources <= 0 || numSources >= cfg.Nodes {
		return nil, fmt.Errorf("data: SourceFraction %v leaves no sources or no targets among %d nodes", cfg.SourceFraction, cfg.Nodes)
	}

	for i := 0; i < cfg.Nodes; i++ {
		nodeRng := root.Split(uint64(i) + 1)
		samples := syntheticNodeSamples(nodeRng, cfg, sigma, sizes[i])
		nd, err := SplitNode(nodeRng, samples, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("split node %d: %w", i, err)
		}
		if i < numSources {
			fed.Sources = append(fed.Sources, nd)
		} else {
			fed.Targets = append(fed.Targets, nd)
		}
	}
	return fed, nil
}

func syntheticNodeSamples(r *rng.Rand, cfg SyntheticConfig, sigma []float64, n int) []Sample {
	// Per-node latent means.
	u := r.NormMeanStd(0, math.Sqrt(cfg.Alpha))
	b := r.NormMeanStd(0, math.Sqrt(cfg.Beta))

	// Node's ground-truth model W_i, b_i.
	w := tensor.NewMat(cfg.Classes, cfg.Dim)
	for j := range w.Data {
		w.Data[j] = r.NormMeanStd(u, 1)
	}
	bias := tensor.NewVec(cfg.Classes)
	for j := range bias {
		bias[j] = r.NormMeanStd(u, 1)
	}

	// Node's input mean v_i.
	v := tensor.NewVec(cfg.Dim)
	for j := range v {
		v[j] = r.NormMeanStd(b, 1)
	}

	samples := make([]Sample, n)
	logits := tensor.NewVec(cfg.Classes)
	for s := range samples {
		x := tensor.NewVec(cfg.Dim)
		for j := range x {
			x[j] = r.NormMeanStd(v[j], math.Sqrt(sigma[j]))
		}
		w.MulVec(x, logits)
		logits.AddInPlace(bias)
		samples[s] = Sample{X: x, Y: logits.ArgMax()}
	}
	return samples
}

func validateSynthetic(cfg SyntheticConfig) error {
	switch {
	case cfg.Alpha < 0 || cfg.Beta < 0:
		return fmt.Errorf("data: negative similarity variances α̃=%v β̃=%v", cfg.Alpha, cfg.Beta)
	case cfg.Nodes < 2:
		return fmt.Errorf("data: need at least 2 nodes, got %d", cfg.Nodes)
	case cfg.Dim <= 0 || cfg.Classes < 2:
		return fmt.Errorf("data: invalid shape dim=%d classes=%d", cfg.Dim, cfg.Classes)
	case cfg.K <= 0:
		return fmt.Errorf("data: K must be positive, got %d", cfg.K)
	case cfg.MeanSamples <= 0 || cfg.StdSamples < 0:
		return fmt.Errorf("data: invalid node-size moments mean=%v std=%v", cfg.MeanSamples, cfg.StdSamples)
	case cfg.SourceFraction <= 0 || cfg.SourceFraction >= 1:
		return fmt.Errorf("data: SourceFraction must be in (0,1), got %v", cfg.SourceFraction)
	}
	return nil
}
