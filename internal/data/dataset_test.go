package data

import (
	"errors"
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func mkSamples(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{X: tensor.Vec{float64(i)}, Y: i % 3}
	}
	return out
}

func TestSplitNode(t *testing.T) {
	r := rng.New(1)
	nd, err := SplitNode(r, mkSamples(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nd.Train) != 4 || len(nd.Test) != 6 {
		t.Fatalf("split sizes = %d/%d, want 4/6", len(nd.Train), len(nd.Test))
	}
	if nd.Size() != 10 {
		t.Errorf("Size = %d", nd.Size())
	}
	// Train and Test must partition the original multiset.
	seen := map[float64]int{}
	for _, s := range nd.All() {
		seen[s.X[0]]++
	}
	if len(seen) != 10 {
		t.Errorf("split lost or duplicated samples: %d unique", len(seen))
	}
}

func TestSplitNodeErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := SplitNode(r, mkSamples(5), 5); !errors.Is(err, ErrNotEnoughSamples) {
		t.Errorf("K == n should fail with ErrNotEnoughSamples, got %v", err)
	}
	if _, err := SplitNode(r, mkSamples(5), 0); err == nil {
		t.Error("K == 0 should fail")
	}
	if _, err := SplitNode(r, mkSamples(5), -1); err == nil {
		t.Error("negative K should fail")
	}
}

func TestWeights(t *testing.T) {
	f := &Federation{
		Sources: []*NodeDataset{
			{Train: mkSamples(2), Test: mkSamples(2)},  // 4
			{Train: mkSamples(2), Test: mkSamples(10)}, // 12
		},
	}
	w := f.Weights()
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[1]-0.75) > 1e-12 {
		t.Errorf("weights = %v, want [0.25 0.75]", w)
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestWeightsEmpty(t *testing.T) {
	f := &Federation{}
	if w := f.Weights(); len(w) != 0 {
		t.Errorf("empty federation weights = %v", w)
	}
}

func TestNodeStats(t *testing.T) {
	f := &Federation{
		Sources: []*NodeDataset{{Train: mkSamples(1), Test: mkSamples(1)}}, // 2
		Targets: []*NodeDataset{{Train: mkSamples(2), Test: mkSamples(2)}}, // 4
	}
	s := f.NodeStats()
	if s.Nodes != 2 || s.MeanPerNode != 3 || math.Abs(s.StdPerNode-1) > 1e-12 {
		t.Errorf("stats = %+v", s)
	}
	if st := (&Federation{}).NodeStats(); st.Nodes != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestResplit(t *testing.T) {
	r := rng.New(1)
	f := &Federation{
		Name: "t", Dim: 1, NumClasses: 3,
		Sources: []*NodeDataset{{Train: mkSamples(3), Test: mkSamples(7)}},
		Targets: []*NodeDataset{{Train: mkSamples(3), Test: mkSamples(5)}},
	}
	g, err := f.Resplit(r, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sources[0].Train) != 6 || len(g.Targets[0].Train) != 6 {
		t.Errorf("resplit train sizes = %d/%d", len(g.Sources[0].Train), len(g.Targets[0].Train))
	}
	if g.Sources[0].Size() != 10 || g.Targets[0].Size() != 8 {
		t.Errorf("resplit changed node sizes")
	}
	// Too-large K must error.
	if _, err := f.Resplit(r, 100); err == nil {
		t.Error("oversized K should fail")
	}
}

func TestAccuracy(t *testing.T) {
	samples := []Sample{
		{X: tensor.Vec{0}, Y: 0},
		{X: tensor.Vec{1}, Y: 1},
		{X: tensor.Vec{2}, Y: 0},
		{X: tensor.Vec{3}, Y: 1},
	}
	acc := Accuracy(samples, func(x tensor.Vec) int {
		if x[0] >= 2 {
			return 1
		}
		return 0
	})
	if acc != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestPowerLawSizes(t *testing.T) {
	r := rng.New(5)
	sizes := PowerLawSizes(r, 5000, 17, 5, 3)
	var sum float64
	for _, s := range sizes {
		if s < 3 {
			t.Fatalf("size %d below min", s)
		}
		sum += float64(s)
	}
	mean := sum / float64(len(sizes))
	if math.Abs(mean-17) > 1.5 {
		t.Errorf("power-law mean = %v, want ~17", mean)
	}
	var ss float64
	for _, s := range sizes {
		d := float64(s) - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(sizes)))
	if std < 3 || std > 8 {
		t.Errorf("power-law std = %v, want ~5", std)
	}
	if PowerLawSizes(r, 0, 1, 1, 1) != nil {
		t.Error("zero-count sizes should be nil")
	}
}

func TestMinibatch(t *testing.T) {
	r := rng.New(7)
	samples := mkSamples(20)

	b := Minibatch(r, samples, 5)
	if len(b) != 5 {
		t.Fatalf("batch size = %d", len(b))
	}
	// Without replacement: all distinct.
	seen := map[float64]bool{}
	for _, s := range b {
		if seen[s.X[0]] {
			t.Fatal("minibatch drew a sample twice")
		}
		seen[s.X[0]] = true
	}

	// Oversized request returns a copy of everything.
	full := Minibatch(r, samples, 100)
	if len(full) != 20 {
		t.Errorf("oversized batch = %d", len(full))
	}
	full[0].X[0] = 999
	// The Sample struct is copied but shares X storage by design (samples
	// are immutable by convention); just check the slice itself is fresh.
	full[1] = Sample{}
	if samples[1].X == nil {
		t.Error("minibatch aliases the source slice headers")
	}

	if Minibatch(r, samples, 0) != nil {
		t.Error("zero-size batch should be nil")
	}
	if Minibatch(r, nil, 5) != nil {
		t.Error("empty source should give nil")
	}
}

func TestMinibatchCoverage(t *testing.T) {
	// Over many draws, every sample should appear.
	r := rng.New(8)
	samples := mkSamples(10)
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		for _, s := range Minibatch(r, samples, 3) {
			seen[s.X[0]] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("only %d/10 samples ever drawn", len(seen))
	}
}
