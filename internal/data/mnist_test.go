package data

import (
	"testing"

	"github.com/edgeai/fedml/internal/rng"
)

func TestGenerateMNISTShape(t *testing.T) {
	cfg := DefaultMNISTConfig()
	cfg.Nodes = 20 // keep the test fast
	fed, err := GenerateMNIST(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Dim != 784 || fed.NumClasses != 10 {
		t.Errorf("shape = %d/%d, want 784/10", fed.Dim, fed.NumClasses)
	}
	if len(fed.Sources) != 16 || len(fed.Targets) != 4 {
		t.Errorf("source/target = %d/%d, want 16/4", len(fed.Sources), len(fed.Targets))
	}
}

func TestMNISTLabelSkewTwoDigitsPerNode(t *testing.T) {
	cfg := DefaultMNISTConfig()
	cfg.Nodes = 20
	fed, err := GenerateMNIST(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range fed.Sources {
		labels := map[int]bool{}
		for _, s := range n.All() {
			labels[s.Y] = true
		}
		if len(labels) > 2 {
			t.Errorf("node %d has %d distinct digits, want <= 2", i, len(labels))
		}
	}
}

func TestMNISTPixelsInUnitRange(t *testing.T) {
	cfg := DefaultMNISTConfig()
	cfg.Nodes = 4
	fed, err := GenerateMNIST(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fed.Sources {
		for _, s := range n.All() {
			for _, p := range s.X {
				if p < 0 || p > 1 {
					t.Fatalf("pixel %v outside [0,1]", p)
				}
			}
		}
	}
}

func TestRenderDigitClassesAreDistinguishable(t *testing.T) {
	// Noise-free renderings of different digits must differ; renderings of
	// the same digit with the same RNG state must be identical.
	mean := func(d int) []float64 {
		r := rng.New(42)
		acc := make([]float64, MNISTImageSide*MNISTImageSide)
		const n = 20
		for i := 0; i < n; i++ {
			img := RenderDigit(r, d, 0)
			for j, p := range img {
				acc[j] += p / n
			}
		}
		return acc
	}
	m0, m1 := mean(0), mean(1)
	var dist float64
	for j := range m0 {
		d := m0[j] - m1[j]
		dist += d * d
	}
	if dist < 1 {
		t.Errorf("mean images of digits 0 and 1 nearly identical (dist²=%v)", dist)
	}
}

func TestRenderDigitDeterministic(t *testing.T) {
	a := RenderDigit(rng.New(9), 7, 0.1)
	b := RenderDigit(rng.New(9), 7, 0.1)
	if a.Dist(b) != 0 {
		t.Error("same RNG state produced different renderings")
	}
}

func TestRenderDigitPanicsOnBadClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RenderDigit(10) did not panic")
		}
	}()
	RenderDigit(rng.New(1), 10, 0)
}

func TestMNISTValidation(t *testing.T) {
	bad := []func(*MNISTConfig){
		func(c *MNISTConfig) { c.Nodes = 0 },
		func(c *MNISTConfig) { c.DigitsPerNode = 0 },
		func(c *MNISTConfig) { c.DigitsPerNode = 11 },
		func(c *MNISTConfig) { c.K = 0 },
		func(c *MNISTConfig) { c.NoiseStd = -1 },
		func(c *MNISTConfig) { c.SourceFraction = 0 },
		func(c *MNISTConfig) { c.MeanSamples = -2 },
	}
	for i, mutate := range bad {
		cfg := DefaultMNISTConfig()
		mutate(&cfg)
		if _, err := GenerateMNIST(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
