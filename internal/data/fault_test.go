package data

import (
	"math"
	"testing"
)

func smallFaultConfig() FaultConfig {
	cfg := DefaultFaultConfig()
	cfg.Devices = 20
	return cfg
}

func TestGenerateFaultShape(t *testing.T) {
	cfg := smallFaultConfig()
	fed, err := GenerateFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Dim != FaultWindow {
		t.Errorf("dim = %d, want %d", fed.Dim, FaultWindow)
	}
	if fed.NumClasses != NumFaultClasses {
		t.Errorf("classes = %d, want %d", fed.NumClasses, NumFaultClasses)
	}
	if len(fed.Sources) != 16 || len(fed.Targets) != 4 {
		t.Errorf("source/target = %d/%d", len(fed.Sources), len(fed.Targets))
	}
	for _, n := range fed.Sources {
		for _, s := range n.All() {
			if len(s.X) != FaultWindow {
				t.Fatalf("sample dim %d", len(s.X))
			}
			if s.Y < 0 || s.Y >= NumFaultClasses {
				t.Fatalf("label %d", s.Y)
			}
			if !s.X.IsFinite() {
				t.Fatal("non-finite sensor window")
			}
		}
	}
}

// Determinism under rng.Split: same seed, bit-identical federation.
func TestFaultDeterministic(t *testing.T) {
	cfg := smallFaultConfig()
	a, err := GenerateFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodesA := append(append([]*NodeDataset{}, a.Sources...), a.Targets...)
	nodesB := append(append([]*NodeDataset{}, b.Sources...), b.Targets...)
	for i := range nodesA {
		sa, sb := nodesA[i].All(), nodesB[i].All()
		if len(sa) != len(sb) {
			t.Fatalf("node %d sizes differ", i)
		}
		for j := range sa {
			if sa[j].Y != sb[j].Y || sa[j].X.Dist(sb[j].X) != 0 {
				t.Fatalf("node %d sample %d differs between same-seed runs", i, j)
			}
		}
	}
	cfg.Seed++
	c, err := GenerateFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sources[0].Train[0].X.Dist(c.Sources[0].Train[0].X) == 0 {
		t.Error("different seeds produced identical data")
	}
}

// Label-distribution skew: each device must see exactly FaultsPerDevice+1
// classes (its fault subset plus normal), and the subsets must differ across
// devices — no device observes the full taxonomy.
func TestFaultLabelSkew(t *testing.T) {
	cfg := smallFaultConfig()
	cfg.Devices = 30
	cfg.FaultsPerDevice = 2
	fed, err := GenerateFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := append(append([]*NodeDataset{}, fed.Sources...), fed.Targets...)
	subsets := map[string]bool{}
	for i, n := range nodes {
		labels := map[int]bool{}
		for _, s := range n.All() {
			labels[s.Y] = true
		}
		if !labels[FaultNormal] {
			t.Errorf("device %d never observes the normal class", i)
		}
		if len(labels) > cfg.FaultsPerDevice+1 {
			t.Errorf("device %d sees %d classes, want <= %d", i, len(labels), cfg.FaultsPerDevice+1)
		}
		key := ""
		for c := 0; c < NumFaultClasses; c++ {
			if labels[c] {
				key += string(rune('0' + c))
			}
		}
		subsets[key] = true
	}
	if len(subsets) < 2 {
		t.Errorf("all %d devices share one class subset — no skew", len(nodes))
	}
	// Globally every fault mode should still occur somewhere.
	global := map[int]bool{}
	for _, n := range nodes {
		for _, s := range n.All() {
			global[s.Y] = true
		}
	}
	if len(global) != NumFaultClasses {
		t.Errorf("only %d of %d classes appear globally", len(global), NumFaultClasses)
	}
}

// Power-law node sizes: floor respected, heterogeneous, heavy upper tail.
func TestFaultPowerLawShape(t *testing.T) {
	cfg := smallFaultConfig()
	cfg.Devices = 60
	fed, err := GenerateFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := append(append([]*NodeDataset{}, fed.Sources...), fed.Targets...)
	minSize, maxSize, total := math.MaxInt, 0, 0
	for _, n := range nodes {
		sz := n.Size()
		if sz < minSize {
			minSize = sz
		}
		if sz > maxSize {
			maxSize = sz
		}
		total += sz
	}
	if floor := cfg.K + cfg.FaultsPerDevice + 2; minSize < floor {
		t.Errorf("min node size %d below floor %d", minSize, floor)
	}
	if maxSize <= minSize {
		t.Error("degenerate flat partition")
	}
	mean := float64(total) / float64(len(nodes))
	if float64(maxSize) < 1.3*mean {
		t.Errorf("max node size %d shows no heavy tail over mean %.1f", maxSize, mean)
	}
}

// Sensor-noise heterogeneity: per-device noise levels differ, so per-device
// window variance around the device's own mean signal must spread out.
func TestFaultNoiseHeterogeneity(t *testing.T) {
	cfg := smallFaultConfig()
	cfg.Devices = 24
	fed, err := GenerateFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Use normal-class windows only: residual variance there is calibration
	// noise, not fault signature.
	var spreads []float64
	for _, n := range fed.Sources {
		var vals []float64
		for _, s := range n.All() {
			if s.Y != FaultNormal {
				continue
			}
			for _, v := range s.X {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2*FaultWindow {
			continue
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		varSum := 0.0
		for _, v := range vals {
			varSum += (v - mean) * (v - mean)
		}
		spreads = append(spreads, math.Sqrt(varSum/float64(len(vals))))
	}
	if len(spreads) < 4 {
		t.Skip("too few devices with enough normal windows")
	}
	lo, hi := spreads[0], spreads[0]
	for _, s := range spreads {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi <= lo {
		t.Errorf("identical per-device signal spread %.3f — no heterogeneity", lo)
	}
}

func TestFaultValidation(t *testing.T) {
	bad := []func(*FaultConfig){
		func(c *FaultConfig) { c.Devices = 1 },
		func(c *FaultConfig) { c.FaultsPerDevice = 0 },
		func(c *FaultConfig) { c.FaultsPerDevice = NumFaultClasses },
		func(c *FaultConfig) { c.K = 0 },
		func(c *FaultConfig) { c.MeanSamples = 0 },
		func(c *FaultConfig) { c.NoiseStdMin = -0.1 },
		func(c *FaultConfig) { c.NoiseStdMax = 0.01 },
		func(c *FaultConfig) { c.SourceFraction = 0 },
	}
	for i, mutate := range bad {
		cfg := smallFaultConfig()
		mutate(&cfg)
		if _, err := GenerateFault(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
