package tensor

import (
	"testing"
)

func TestMatAtSetRow(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	if m.At(0, 1) != 5 || m.At(1, 2) != 7 {
		t.Errorf("At/Set mismatch: %v", m.Data)
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Errorf("Row(1) = %v", row)
	}
	row[0] = 9 // Row aliases storage
	if m.At(1, 0) != 9 {
		t.Error("Row does not alias matrix storage")
	}
}

func TestMulVec(t *testing.T) {
	m := MatFromData(2, 3, Vec{1, 2, 3, 4, 5, 6})
	out := NewVec(2)
	m.MulVec(Vec{1, 1, 1}, out)
	if out[0] != 6 || out[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", out)
	}
}

func TestMulVecT(t *testing.T) {
	m := MatFromData(2, 3, Vec{1, 2, 3, 4, 5, 6})
	out := NewVec(3)
	m.MulVecT(Vec{1, 1}, out)
	if out[0] != 5 || out[1] != 7 || out[2] != 9 {
		t.Errorf("MulVecT = %v, want [5 7 9]", out)
	}
}

func TestMulVecTransposeConsistency(t *testing.T) {
	// Property: <M x, y> == <x, Mᵀ y>.
	m := MatFromData(3, 2, Vec{1, -2, 0.5, 3, -1, 4})
	x := Vec{2, -1}
	y := Vec{1, 0.5, -2}
	mx := NewVec(3)
	m.MulVec(x, mx)
	mty := NewVec(2)
	m.MulVecT(y, mty)
	if !almostEq(mx.Dot(y), x.Dot(mty), 1e-12) {
		t.Errorf("adjoint mismatch: %v vs %v", mx.Dot(y), x.Dot(mty))
	}
}

func TestAddOuterInPlace(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuterInPlace(2, Vec{1, 3}, Vec{4, 5})
	want := Vec{8, 10, 24, 30}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestMatClone(t *testing.T) {
	m := MatFromData(1, 2, Vec{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMatShapePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"NewMatNegative", func() { NewMat(-1, 2) }},
		{"MatFromDataWrongLen", func() { MatFromData(2, 2, Vec{1, 2, 3}) }},
		{"MulVecWrongX", func() { NewMat(2, 3).MulVec(NewVec(2), NewVec(2)) }},
		{"MulVecWrongOut", func() { NewMat(2, 3).MulVec(NewVec(3), NewVec(3)) }},
		{"MulVecTWrongX", func() { NewMat(2, 3).MulVecT(NewVec(3), NewVec(3)) }},
		{"AddOuterWrong", func() { NewMat(2, 2).AddOuterInPlace(1, NewVec(3), NewVec(2)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
