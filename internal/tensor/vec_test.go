package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}

	if got := v.Add(w); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := v.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := w.ArgMax(); got != 2 {
		t.Errorf("ArgMax = %v, want 2", got)
	}
}

func TestVecInPlaceOps(t *testing.T) {
	v := Vec{1, 2, 3}
	v.AddInPlace(Vec{1, 1, 1})
	if v[0] != 2 || v[2] != 4 {
		t.Errorf("AddInPlace = %v", v)
	}
	v.SubInPlace(Vec{2, 2, 2})
	if v[0] != 0 || v[2] != 2 {
		t.Errorf("SubInPlace = %v", v)
	}
	v.ScaleInPlace(3)
	if v[1] != 3 {
		t.Errorf("ScaleInPlace = %v", v)
	}
	v.Axpy(2, Vec{1, 1, 1})
	if v[0] != 2 || v[1] != 5 {
		t.Errorf("Axpy = %v", v)
	}
	v.Fill(7)
	if v[0] != 7 || v[2] != 7 {
		t.Errorf("Fill = %v", v)
	}
	v.Zero()
	if v.Sum() != 0 {
		t.Errorf("Zero = %v", v)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestNormAndDist(t *testing.T) {
	v := Vec{3, 4}
	if !almostEq(v.Norm(), 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", v.Norm())
	}
	if !almostEq(v.Dist(Vec{0, 0}), 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", v.Dist(Vec{0, 0}))
	}
	if got := (Vec{-7, 2}).NormInf(); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
}

func TestArgMaxEdgeCases(t *testing.T) {
	if got := (Vec{}).ArgMax(); got != -1 {
		t.Errorf("empty ArgMax = %d, want -1", got)
	}
	if got := (Vec{1, 1, 1}).ArgMax(); got != 0 {
		t.Errorf("tie ArgMax = %d, want 0 (first)", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vec{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestWeightedSum(t *testing.T) {
	got := WeightedSum([]float64{0.25, 0.75}, []Vec{{4, 0}, {0, 4}})
	if !almostEq(got[0], 1, 1e-12) || !almostEq(got[1], 3, 1e-12) {
		t.Errorf("WeightedSum = %v, want [1 3]", got)
	}
	if WeightedSum(nil, nil) != nil {
		t.Error("empty WeightedSum should be nil")
	}
}

func TestWeightedSumConvexCombinationProperty(t *testing.T) {
	// Property: a convex combination of identical vectors is that vector.
	check := func(raw []float64, w8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := Vec(raw)
		n := int(w8%4) + 1
		weights := make([]float64, n)
		vs := make([]Vec, n)
		for i := range weights {
			weights[i] = 1 / float64(n)
			vs[i] = v
		}
		got := WeightedSum(weights, vs)
		for i := range got {
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				continue
			}
			if !almostEq(got[i], v[i], 1e-9*(1+math.Abs(v[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDotCauchySchwarzProperty(t *testing.T) {
	// Property: |<v,w>| <= ||v||*||w||.
	check := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		v, w := Vec(a[:n]), Vec(b[:n])
		if !v.IsFinite() || !w.IsFinite() {
			return true
		}
		lhs := math.Abs(v.Dot(w))
		rhs := v.Norm() * w.Norm()
		return lhs <= rhs*(1+1e-9) || math.IsInf(rhs, 1)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Add", func() { _ = (Vec{1}).Add(Vec{1, 2}) }},
		{"Dot", func() { _ = (Vec{1}).Dot(Vec{1, 2}) }},
		{"Axpy", func() { (Vec{1}).Axpy(1, Vec{1, 2}) }},
		{"CopyFrom", func() { (Vec{1}).CopyFrom(Vec{1, 2}) }},
		{"WeightedSum", func() { WeightedSum([]float64{1}, []Vec{{1}, {2}}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
