package tensor

import "fmt"

// Mat is a dense row-major matrix of float64.
type Mat struct {
	Rows, Cols int
	Data       Vec // len == Rows*Cols, row-major
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMat with negative shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make(Vec, rows*cols)}
}

// MatFromData wraps data (not copied) as a rows x cols matrix.
func MatFromData(rows, cols int, data Vec) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: MatFromData %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// MulVec computes out = m * x. out must have length m.Rows and x length
// m.Cols; out may not alias x.
func (m *Mat) MulVec(x, out Vec) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVec shape mismatch: %dx%d by %d into %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, r := range row {
			s += r * x[j]
		}
		out[i] = s
	}
}

// MulVecT computes out = mᵀ * x. out must have length m.Cols and x length
// m.Rows; out is overwritten and may not alias x.
func (m *Mat) MulVecT(x, out Vec) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecT shape mismatch: %dx%d ᵀ by %d into %d", m.Rows, m.Cols, len(x), len(out)))
	}
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, r := range row {
			out[j] += r * xi
		}
	}
}

// AddOuterInPlace adds c * x yᵀ to m. len(x) must be m.Rows, len(y) m.Cols.
// This is the rank-1 update used by linear-layer weight gradients.
func (m *Mat) AddOuterInPlace(c float64, x, y Vec) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuterInPlace shape mismatch: %dx%d with %d,%d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		cxi := c * x[i]
		if cxi == 0 {
			continue
		}
		for j := range row {
			row[j] += cxi * y[j]
		}
	}
}

// Batched kernels. The per-sample kernels above stream the whole weight
// matrix through the cache once per sample; the batch variants tile the
// sample loop so each matrix row is loaded once per tile and reused across
// the tile's samples. Every kernel keeps the per-output-element accumulation
// order of its per-sample counterpart (ascending k for dot products,
// ascending row index for transposed products, ascending sample index for
// outer-product accumulation), so results are bit-identical to calling the
// per-sample kernel in a loop — the determinism contract the golden
// workers=1-vs-8 tests enforce extends to tiling.

// mulVecTile is the register-blocking width of MulVecBatch and
// MulVecTBatch: four samples share one streamed weight row, using four
// scalar accumulators that comfortably fit the amd64/arm64 register file.
const mulVecTile = 4

// addOuterTile is the sample-blocking depth of AddOuterBatch: the gradient
// matrix is streamed once per block of eight samples instead of once per
// sample, while the block's input rows stay cache-resident.
const addOuterTile = 8

// MulVecBatch computes outs[j] = m*xs[j] + bias for every j (a nil bias adds
// nothing). Each xs[j] must have length m.Cols and each outs[j] length
// m.Rows; outs[j] may not alias xs[k]. Results are bit-identical to per-
// sample MulVec followed by AddInPlace(bias).
func (m *Mat) MulVecBatch(xs []Vec, bias Vec, outs []Vec) {
	if len(xs) != len(outs) {
		panic(fmt.Sprintf("tensor: MulVecBatch got %d inputs for %d outputs", len(xs), len(outs)))
	}
	if bias != nil && len(bias) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVecBatch bias has %d entries, want %d", len(bias), m.Rows))
	}
	for j := range xs {
		if len(xs[j]) != m.Cols || len(outs[j]) != m.Rows {
			panic(fmt.Sprintf("tensor: MulVecBatch shape mismatch at sample %d: %dx%d by %d into %d", j, m.Rows, m.Cols, len(xs[j]), len(outs[j])))
		}
	}
	n := len(xs)
	j := 0
	for ; j+mulVecTile <= n; j += mulVecTile {
		x0, x1, x2, x3 := xs[j], xs[j+1], xs[j+2], xs[j+3]
		o0, o1, o2, o3 := outs[j], outs[j+1], outs[j+2], outs[j+3]
		for i := 0; i < m.Rows; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			var s0, s1, s2, s3 float64
			for k, r := range row {
				s0 += r * x0[k]
				s1 += r * x1[k]
				s2 += r * x2[k]
				s3 += r * x3[k]
			}
			if bias != nil {
				b := bias[i]
				s0 += b
				s1 += b
				s2 += b
				s3 += b
			}
			o0[i], o1[i], o2[i], o3[i] = s0, s1, s2, s3
		}
	}
	for ; j < n; j++ { // remainder: singles, same arithmetic
		m.MulVec(xs[j], outs[j])
		if bias != nil {
			outs[j].AddInPlace(bias)
		}
	}
}

// MulVecTBatch overwrites outs[j] = mᵀ*xs[j] for every j. Each xs[j] must
// have length m.Rows and each outs[j] length m.Cols; outs[j] may not alias
// xs[k]. It preserves per-sample MulVecT's skip of zero coefficients (common
// for post-ReLU gradients), so results are bit-identical to the per-sample
// loop.
func (m *Mat) MulVecTBatch(xs, outs []Vec) {
	if len(xs) != len(outs) {
		panic(fmt.Sprintf("tensor: MulVecTBatch got %d inputs for %d outputs", len(xs), len(outs)))
	}
	for j := range xs {
		if len(xs[j]) != m.Rows || len(outs[j]) != m.Cols {
			panic(fmt.Sprintf("tensor: MulVecTBatch shape mismatch at sample %d: %dx%d ᵀ by %d into %d", j, m.Rows, m.Cols, len(xs[j]), len(outs[j])))
		}
	}
	n := len(xs)
	j := 0
	for ; j+mulVecTile <= n; j += mulVecTile {
		x0, x1, x2, x3 := xs[j], xs[j+1], xs[j+2], xs[j+3]
		o0, o1, o2, o3 := outs[j], outs[j+1], outs[j+2], outs[j+3]
		o0.Zero()
		o1.Zero()
		o2.Zero()
		o3.Zero()
		for i := 0; i < m.Rows; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			c0, c1, c2, c3 := x0[i], x1[i], x2[i], x3[i]
			if c0 != 0 && c1 != 0 && c2 != 0 && c3 != 0 {
				for k, r := range row {
					o0[k] += r * c0
					o1[k] += r * c1
					o2[k] += r * c2
					o3[k] += r * c3
				}
				continue
			}
			// At least one zero coefficient: per-sample passes keep the
			// skip semantics (and the arithmetic) of MulVecT exactly.
			if c0 != 0 {
				for k, r := range row {
					o0[k] += r * c0
				}
			}
			if c1 != 0 {
				for k, r := range row {
					o1[k] += r * c1
				}
			}
			if c2 != 0 {
				for k, r := range row {
					o2[k] += r * c2
				}
			}
			if c3 != 0 {
				for k, r := range row {
					o3[k] += r * c3
				}
			}
		}
	}
	for ; j < n; j++ { // remainder: singles
		m.MulVecT(xs[j], outs[j])
	}
}

// AddOuterBatch adds c * Σ_j xs[j] ys[j]ᵀ to m — the batched form of the
// rank-1 gradient accumulation. Each xs[j] must have length m.Rows and each
// ys[j] length m.Cols. Samples are processed in blocks of addOuterTile with
// the row loop outside the block's sample loop, so each gradient row is
// loaded once per block; per matrix element the sample order stays ascending
// and zero coefficients are skipped, making the result bit-identical to
// calling AddOuterInPlace(c, xs[j], ys[j]) for j = 0..n-1.
func (m *Mat) AddOuterBatch(c float64, xs, ys []Vec) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("tensor: AddOuterBatch got %d left vectors for %d right vectors", len(xs), len(ys)))
	}
	for j := range xs {
		if len(xs[j]) != m.Rows || len(ys[j]) != m.Cols {
			panic(fmt.Sprintf("tensor: AddOuterBatch shape mismatch at sample %d: %dx%d with %d,%d", j, m.Rows, m.Cols, len(xs[j]), len(ys[j])))
		}
	}
	n := len(xs)
	for j0 := 0; j0 < n; j0 += addOuterTile {
		j1 := j0 + addOuterTile
		if j1 > n {
			j1 = n
		}
		for i := 0; i < m.Rows; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j := j0; j < j1; j++ {
				cxi := c * xs[j][i]
				if cxi == 0 {
					continue
				}
				y := ys[j]
				for k := range row {
					row[k] += cxi * y[k]
				}
			}
		}
	}
}
