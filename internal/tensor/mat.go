package tensor

import "fmt"

// Mat is a dense row-major matrix of float64.
type Mat struct {
	Rows, Cols int
	Data       Vec // len == Rows*Cols, row-major
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMat with negative shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make(Vec, rows*cols)}
}

// MatFromData wraps data (not copied) as a rows x cols matrix.
func MatFromData(rows, cols int, data Vec) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: MatFromData %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// MulVec computes out = m * x. out must have length m.Rows and x length
// m.Cols; out may not alias x.
func (m *Mat) MulVec(x, out Vec) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVec shape mismatch: %dx%d by %d into %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, r := range row {
			s += r * x[j]
		}
		out[i] = s
	}
}

// MulVecT computes out = mᵀ * x. out must have length m.Cols and x length
// m.Rows; out is overwritten and may not alias x.
func (m *Mat) MulVecT(x, out Vec) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecT shape mismatch: %dx%d ᵀ by %d into %d", m.Rows, m.Cols, len(x), len(out)))
	}
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, r := range row {
			out[j] += r * xi
		}
	}
}

// AddOuterInPlace adds c * x yᵀ to m. len(x) must be m.Rows, len(y) m.Cols.
// This is the rank-1 update used by linear-layer weight gradients.
func (m *Mat) AddOuterInPlace(c float64, x, y Vec) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuterInPlace shape mismatch: %dx%d with %d,%d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		cxi := c * x[i]
		if cxi == 0 {
			continue
		}
		for j := range row {
			row[j] += cxi * y[j]
		}
	}
}
