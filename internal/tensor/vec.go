// Package tensor implements the dense linear-algebra substrate used by the
// models, the meta-learning machinery and the federated runtime.
//
// Model parameters are represented as flat Vec values so that weighted
// aggregation at the platform, wire transport, and the theory checks are all
// model-agnostic. Mat provides the small dense-matrix kernels needed by the
// data generators and by softmax regression.
package tensor

import (
	"fmt"
	"math"
)

// Vec is a dense vector of float64. The zero value is an empty vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// CopyFrom copies src into v. The lengths must match.
func (v Vec) CopyFrom(src Vec) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Zero sets every element of v to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to c.
func (v Vec) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	checkLen("Add", v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	checkLen("Sub", v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInto sets out = v + w. out must have the same length as v and w; it
// may alias either input.
func (v Vec) AddInto(w, out Vec) {
	checkLen("AddInto", v, w)
	checkLen("AddInto", v, out)
	for i := range v {
		out[i] = v[i] + w[i]
	}
}

// SubInto sets out = v - w. out must have the same length as v and w; it
// may alias either input.
func (v Vec) SubInto(w, out Vec) {
	checkLen("SubInto", v, w)
	checkLen("SubInto", v, out)
	for i := range v {
		out[i] = v[i] - w[i]
	}
}

// ScaleInto sets out = c*v. out may alias v.
func (v Vec) ScaleInto(c float64, out Vec) {
	checkLen("ScaleInto", v, out)
	for i := range v {
		out[i] = c * v[i]
	}
}

// AddInPlace sets v = v + w.
func (v Vec) AddInPlace(w Vec) {
	checkLen("AddInPlace", v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace sets v = v - w.
func (v Vec) SubInPlace(w Vec) {
	checkLen("SubInPlace", v, w)
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale returns c*v as a new vector.
func (v Vec) Scale(c float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// ScaleInPlace sets v = c*v.
func (v Vec) ScaleInPlace(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// Axpy sets v = v + c*w (BLAS axpy).
func (v Vec) Axpy(c float64, w Vec) {
	checkLen("Axpy", v, w)
	for i := range v {
		v[i] += c * w[i]
	}
}

// AxpyInto sets out = v + c*w in a single pass. out may alias v (the
// gradient-descent step out = θ − α·g fuses the copy and the axpy this way);
// it must not alias w. Bit-identical to CopyFrom(v) followed by Axpy(c, w).
func (v Vec) AxpyInto(c float64, w, out Vec) {
	checkLen("AxpyInto", v, w)
	checkLen("AxpyInto", v, out)
	for i := range v {
		out[i] = v[i] + c*w[i]
	}
}

// Dot returns the inner product <v, w>.
func (v Vec) Dot(w Vec) float64 {
	checkLen("Dot", v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the max-absolute-value norm of v.
func (v Vec) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Dist returns the Euclidean distance ||v - w||.
func (v Vec) Dist(w Vec) float64 {
	checkLen("Dist", v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// ArgMax returns the index of the largest element (first on ties), or -1 for
// an empty vector.
func (v Vec) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// IsFinite reports whether every element is finite (no NaN or Inf).
func (v Vec) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// WeightedSum returns sum_i weights[i]*vs[i] as a new vector. All vectors
// must share one length; len(weights) must equal len(vs). This is the
// platform's global-aggregation kernel (Eq. 5 in the paper).
func WeightedSum(weights []float64, vs []Vec) Vec {
	if len(vs) == 0 {
		if len(weights) != 0 {
			panic(fmt.Sprintf("tensor: WeightedSum got %d weights for 0 vectors", len(weights)))
		}
		return nil
	}
	out := make(Vec, len(vs[0]))
	WeightedSumInto(out, weights, vs)
	return out
}

// WeightedSumInto overwrites out with sum_i weights[i]*vs[i]. All vectors
// must share out's length; len(weights) must equal len(vs). out must not
// alias any vs[k]. With no vectors out is zeroed.
func WeightedSumInto(out Vec, weights []float64, vs []Vec) {
	if len(weights) != len(vs) {
		panic(fmt.Sprintf("tensor: WeightedSumInto got %d weights for %d vectors", len(weights), len(vs)))
	}
	out.Zero()
	for k, v := range vs {
		checkLen("WeightedSumInto", out, v)
		w := weights[k]
		for i := range v {
			out[i] += w * v[i]
		}
	}
}

func checkLen(op string, a, b Vec) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: %s length mismatch %d != %d", op, len(a), len(b)))
	}
}
