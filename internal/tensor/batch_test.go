package tensor

import "testing"

// lcgFill fills v deterministically, planting an exact zero every fifth
// entry so the zero-coefficient skip paths of the batched kernels are
// exercised alongside the dense fast paths.
func lcgFill(v Vec, seed *uint64) {
	for i := range v {
		*seed = *seed*6364136223846793005 + 1442695040888963407
		if i%5 == 4 {
			v[i] = 0
			continue
		}
		v[i] = float64(int64(*seed>>33))/float64(1<<30) - 1
	}
}

func lcgMat(rows, cols int, seed *uint64) *Mat {
	m := NewMat(rows, cols)
	lcgFill(m.Data, seed)
	return m
}

func lcgVecs(n, dim int, seed *uint64) []Vec {
	vs := make([]Vec, n)
	for i := range vs {
		vs[i] = NewVec(dim)
		lcgFill(vs[i], seed)
	}
	return vs
}

// The batched kernels must be bit-identical to their per-sample loops — the
// par determinism contract extends to tiling. Batch sizes 1..9 cover the
// singles fallback (n < tile), full tiles (4, 8) and odd remainders.
func TestMulVecBatchMatchesPerSample(t *testing.T) {
	seed := uint64(1)
	m := lcgMat(6, 7, &seed)
	bias := NewVec(6)
	lcgFill(bias, &seed)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		xs := lcgVecs(n, 7, &seed)
		outs := lcgVecs(n, 6, &seed) // pre-filled garbage: kernel must overwrite
		m.MulVecBatch(xs, bias, outs)
		ref := NewVec(6)
		for j := range xs {
			m.MulVec(xs[j], ref)
			ref.AddInPlace(bias)
			for i := range ref {
				if outs[j][i] != ref[i] {
					t.Fatalf("n=%d sample %d out[%d] = %v, want %v (bit-exact)", n, j, i, outs[j][i], ref[i])
				}
			}
		}
	}
}

func TestMulVecBatchNilBias(t *testing.T) {
	seed := uint64(2)
	m := lcgMat(4, 5, &seed)
	xs := lcgVecs(5, 5, &seed)
	outs := lcgVecs(5, 4, &seed)
	m.MulVecBatch(xs, nil, outs)
	ref := NewVec(4)
	for j := range xs {
		m.MulVec(xs[j], ref)
		for i := range ref {
			if outs[j][i] != ref[i] {
				t.Fatalf("sample %d out[%d] = %v, want %v", j, i, outs[j][i], ref[i])
			}
		}
	}
}

func TestMulVecTBatchMatchesPerSample(t *testing.T) {
	seed := uint64(3)
	m := lcgMat(6, 7, &seed)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		xs := lcgVecs(n, 6, &seed) // every fifth entry zero: exercises skip paths
		outs := lcgVecs(n, 7, &seed)
		m.MulVecTBatch(xs, outs)
		ref := NewVec(7)
		for j := range xs {
			m.MulVecT(xs[j], ref)
			for k := range ref {
				if outs[j][k] != ref[k] {
					t.Fatalf("n=%d sample %d out[%d] = %v, want %v (bit-exact)", n, j, k, outs[j][k], ref[k])
				}
			}
		}
	}
}

// A tile whose four coefficients are all zero at some row must still match
// the per-sample skip exactly (and not touch the outputs for that row).
func TestMulVecTBatchAllZeroRow(t *testing.T) {
	seed := uint64(4)
	m := lcgMat(3, 4, &seed)
	xs := make([]Vec, 4)
	for j := range xs {
		xs[j] = Vec{0, 0, 0} // row coefficients all zero
		xs[j][j%3] = float64(j + 1)
	}
	xs[2][2] = 0 // sample 2 is entirely zero
	outs := lcgVecs(4, 4, &seed)
	m.MulVecTBatch(xs, outs)
	ref := NewVec(4)
	for j := range xs {
		m.MulVecT(xs[j], ref)
		for k := range ref {
			if outs[j][k] != ref[k] {
				t.Fatalf("sample %d out[%d] = %v, want %v", j, k, outs[j][k], ref[k])
			}
		}
	}
}

func TestAddOuterBatchMatchesPerSample(t *testing.T) {
	for _, n := range []int{1, 3, 7, 8, 9, 17} { // below, at, and past the 8-sample block
		seed := uint64(5)
		xs := lcgVecs(n, 4, &seed) // zeros exercise the cxi == 0 skip
		ys := lcgVecs(n, 5, &seed)
		got := lcgMat(4, 5, &seed)
		want := got.Clone()
		got.AddOuterBatch(-0.75, xs, ys)
		for j := range xs {
			want.AddOuterInPlace(-0.75, xs[j], ys[j])
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("n=%d element %d = %v, want %v (bit-exact)", n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestBatchKernelShapePanics(t *testing.T) {
	m := NewMat(2, 3)
	cases := []struct {
		name string
		fn   func()
	}{
		{"MulVecBatchLenMismatch", func() { m.MulVecBatch(make([]Vec, 2), nil, make([]Vec, 3)) }},
		{"MulVecBatchBadBias", func() { m.MulVecBatch([]Vec{NewVec(3)}, NewVec(3), []Vec{NewVec(2)}) }},
		{"MulVecBatchBadSample", func() { m.MulVecBatch([]Vec{NewVec(2)}, nil, []Vec{NewVec(2)}) }},
		{"MulVecTBatchLenMismatch", func() { m.MulVecTBatch(make([]Vec, 1), make([]Vec, 2)) }},
		{"MulVecTBatchBadSample", func() { m.MulVecTBatch([]Vec{NewVec(3)}, []Vec{NewVec(3)}) }},
		{"AddOuterBatchLenMismatch", func() { m.AddOuterBatch(1, make([]Vec, 2), make([]Vec, 1)) }},
		{"AddOuterBatchBadSample", func() { m.AddOuterBatch(1, []Vec{NewVec(3)}, []Vec{NewVec(3)}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestAxpyInto(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	out := NewVec(3)
	v.AxpyInto(-2, w, out)
	// Bit-exact contract: identical to CopyFrom + Axpy.
	want := NewVec(3)
	want.CopyFrom(v)
	want.Axpy(-2, w)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("AxpyInto[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// out may alias v (the in-place step case).
	v.AxpyInto(-2, w, v)
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("aliased AxpyInto[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

// Benchmarks comparing the tiled batch kernels against per-sample loops on
// a Sent140-shaped layer (64 features, 16 hidden, 32-sample batch).
func benchBatchSetup(b *testing.B, rows, cols, n int) (*Mat, []Vec, []Vec) {
	b.Helper()
	seed := uint64(1)
	m := lcgMat(rows, cols, &seed)
	xs := lcgVecs(n, cols, &seed)
	outs := lcgVecs(n, rows, &seed)
	return m, xs, outs
}

func BenchmarkMulVecBatch(b *testing.B) {
	m, xs, outs := benchBatchSetup(b, 16, 64, 32)
	bias := NewVec(16)
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.MulVecBatch(xs, bias, outs)
		}
	})
	b.Run("per-sample", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range xs {
				m.MulVec(xs[j], outs[j])
				outs[j].AddInPlace(bias)
			}
		}
	})
}

func BenchmarkAddOuterBatch(b *testing.B) {
	seed := uint64(2)
	m := lcgMat(16, 64, &seed)
	xs := lcgVecs(32, 16, &seed)
	ys := lcgVecs(32, 64, &seed)
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.AddOuterBatch(0.5, xs, ys)
		}
	})
	b.Run("per-sample", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range xs {
				m.AddOuterInPlace(0.5, xs[j], ys[j])
			}
		}
	})
}

func TestAxpyIntoShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ShortW":   func() { Vec{1, 2}.AxpyInto(1, Vec{1}, NewVec(2)) },
		"ShortOut": func() { Vec{1, 2}.AxpyInto(1, Vec{1, 2}, NewVec(1)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}
