package tensor

import "testing"

func TestAddSubScaleInto(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{10, 20, 30}
	out := NewVec(3)

	v.AddInto(w, out)
	if out.Dist(Vec{11, 22, 33}) != 0 {
		t.Errorf("AddInto = %v", out)
	}
	v.SubInto(w, out)
	if out.Dist(Vec{-9, -18, -27}) != 0 {
		t.Errorf("SubInto = %v", out)
	}
	v.ScaleInto(2, out)
	if out.Dist(Vec{2, 4, 6}) != 0 {
		t.Errorf("ScaleInto = %v", out)
	}
	// Inputs are untouched.
	if v.Dist(Vec{1, 2, 3}) != 0 || w.Dist(Vec{10, 20, 30}) != 0 {
		t.Errorf("inputs mutated: v=%v w=%v", v, w)
	}
}

func TestIntoOpsAliasing(t *testing.T) {
	// out may alias either input.
	a := Vec{1, 2, 3}
	a.AddInto(Vec{1, 1, 1}, a)
	if a.Dist(Vec{2, 3, 4}) != 0 {
		t.Errorf("AddInto aliased = %v", a)
	}
	b := Vec{5, 6, 7}
	Vec{1, 1, 1}.SubInto(b, b)
	if b.Dist(Vec{-4, -5, -6}) != 0 {
		t.Errorf("SubInto aliased = %v", b)
	}
	c := Vec{1, 2, 3}
	c.ScaleInto(3, c)
	if c.Dist(Vec{3, 6, 9}) != 0 {
		t.Errorf("ScaleInto aliased = %v", c)
	}
}

func TestWeightedSumIntoOverwrites(t *testing.T) {
	out := Vec{99, 99} // stale contents must not leak through
	WeightedSumInto(out, []float64{0.5, 2}, []Vec{{1, 2}, {10, 20}})
	if out.Dist(Vec{20.5, 41}) != 0 {
		t.Errorf("WeightedSumInto = %v", out)
	}
	WeightedSumInto(out, nil, nil)
	if out.Dist(Vec{0, 0}) != 0 {
		t.Errorf("empty WeightedSumInto = %v, want zeros", out)
	}
}

func TestWeightedSumIntoMatchesWeightedSum(t *testing.T) {
	weights := []float64{0.3, 0.5, 0.2}
	vs := []Vec{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	out := NewVec(3)
	WeightedSumInto(out, weights, vs)
	if d := out.Dist(WeightedSum(weights, vs)); d != 0 {
		t.Errorf("WeightedSumInto differs from WeightedSum by %g", d)
	}
}

func TestWeightedSumIntoPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("weight/vector count mismatch", func() {
		WeightedSumInto(NewVec(2), []float64{1}, []Vec{{1, 2}, {3, 4}})
	})
	mustPanic("length mismatch", func() {
		WeightedSumInto(NewVec(2), []float64{1}, []Vec{{1, 2, 3}})
	})
}
