package tensor

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSoftmaxBasic(t *testing.T) {
	out := NewVec(3)
	Softmax(Vec{0, 0, 0}, out)
	for _, p := range out {
		if !almostEq(p, 1.0/3, 1e-12) {
			t.Fatalf("uniform softmax = %v", out)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	out := NewVec(2)
	Softmax(Vec{1000, 1001}, out)
	if !out.IsFinite() {
		t.Fatalf("softmax overflowed: %v", out)
	}
	if !almostEq(out.Sum(), 1, 1e-9) {
		t.Errorf("softmax sums to %v", out.Sum())
	}
	if out[1] <= out[0] {
		t.Error("softmax ordering violated")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	// Properties: output in (0,1], sums to 1, shift-invariant.
	check := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make(Vec, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(x, 50) // keep magnitudes sane
		}
		out := NewVec(len(v))
		Softmax(v, out)
		if !almostEq(out.Sum(), 1, 1e-9) {
			return false
		}
		for _, p := range out {
			if p < 0 || p > 1 {
				return false
			}
		}
		shifted := v.Clone()
		for i := range shifted {
			shifted[i] += 13.7
		}
		out2 := NewVec(len(v))
		Softmax(shifted, out2)
		for i := range out {
			if !almostEq(out[i], out2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxInPlaceAlias(t *testing.T) {
	v := Vec{1, 2, 3}
	Softmax(v, v)
	if !almostEq(v.Sum(), 1, 1e-9) {
		t.Errorf("aliased softmax = %v", v)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(Vec{0, 0}); !almostEq(got, math.Log(2), 1e-12) {
		t.Errorf("LogSumExp([0,0]) = %v, want log 2", got)
	}
	if got := LogSumExp(Vec{1000, 1000}); !almostEq(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp large = %v", got)
	}
	if got := LogSumExp(Vec{}); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(empty) = %v, want -Inf", got)
	}
}

func TestCrossEntropyFromLogits(t *testing.T) {
	// Uniform logits over k classes => loss = log k.
	if got := CrossEntropyFromLogits(Vec{0, 0, 0, 0}, 1); !almostEq(got, math.Log(4), 1e-12) {
		t.Errorf("CE uniform = %v, want log 4", got)
	}
	// Confident correct prediction => loss near 0.
	if got := CrossEntropyFromLogits(Vec{100, 0}, 0); got > 1e-9 {
		t.Errorf("CE confident = %v, want ~0", got)
	}
	// Confident wrong prediction => large loss.
	if got := CrossEntropyFromLogits(Vec{100, 0}, 1); got < 50 {
		t.Errorf("CE wrong = %v, want large", got)
	}
}

// An out-of-range label used to read (or write nothing and return garbage
// via) logits[label] with only the runtime's bare index panic; the kernel
// now fails with a message naming the op, the label and the class count.
func TestCrossEntropyFromLogitsLabelOutOfRange(t *testing.T) {
	for _, label := range []int{-1, 3, 100} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("label %d: no panic", label)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "CrossEntropyFromLogits") || !strings.Contains(msg, "3 classes") {
					t.Errorf("label %d: panic %v does not name op and class count", label, r)
				}
			}()
			CrossEntropyFromLogits(Vec{1, 2, 3}, label)
		}()
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	v := Vec{-2, 0.5, 2}
	v.ClampInPlace(0, 1)
	if v[0] != 0 || v[1] != 0.5 || v[2] != 1 {
		t.Errorf("ClampInPlace = %v", v)
	}
}

func TestSign(t *testing.T) {
	if Sign(3) != 1 || Sign(-0.1) != -1 || Sign(0) != 0 {
		t.Error("Sign misbehaves")
	}
}

func BenchmarkSoftmax64(b *testing.B) {
	v := NewVec(64)
	for i := range v {
		v[i] = float64(i % 7)
	}
	out := NewVec(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(v, out)
	}
}

func BenchmarkMulVec(b *testing.B) {
	m := NewMat(64, 64)
	x, out := NewVec(64), NewVec(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, out)
	}
}
