package tensor

import (
	"fmt"
	"math"
)

// Softmax writes the softmax of logits into out (which may alias logits).
// The computation is shifted by the max logit for numerical stability.
func Softmax(logits, out Vec) {
	checkLen("Softmax", logits, out)
	if len(logits) == 0 {
		return
	}
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}

// LogSumExp returns log(sum_i exp(v[i])) computed stably.
func LogSumExp(v Vec) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	maxv := v[0]
	for _, x := range v[1:] {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	var sum float64
	for _, x := range v {
		sum += math.Exp(x - maxv)
	}
	return maxv + math.Log(sum)
}

// CrossEntropyFromLogits returns -log softmax(logits)[label], computed
// stably without materializing the softmax. A label outside [0, len(logits))
// — a corrupt or mis-encoded dataset — panics with the op name, the label,
// and the class count rather than a bare index error deep in the hot path.
func CrossEntropyFromLogits(logits Vec, label int) float64 {
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("tensor: CrossEntropyFromLogits label %d out of range for %d classes", label, len(logits)))
	}
	return LogSumExp(logits) - logits[label]
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// ClampInPlace clamps every element of v to [lo, hi]. Used to keep
// adversarially-perturbed feature vectors inside the valid input domain.
func (v Vec) ClampInPlace(lo, hi float64) {
	for i := range v {
		v[i] = Clamp(v[i], lo, hi)
	}
}

// Sign returns -1, 0 or +1 matching the sign of x. Used by the FGSM attack.
func Sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
