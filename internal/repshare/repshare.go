// Package repshare implements the representation-sharing baseline
// (FedPer/LG-FedAvg style, the "shared feature extractor, local classifier"
// pattern): nodes jointly train the model's feature layers but each keeps a
// private classification head that is never synchronized. Personalization is
// thus structural — baked into the parameter layout — rather than recovered
// by post-hoc gradient adaptation as in FedML.
//
// The split rides on the nn.Segmenter layout metadata: every segment named
// "head.*" stays local, everything else is the shared representation. A
// model whose parameters are all head (e.g. softmax regression) is rejected
// at configuration time — there would be nothing to share.
package repshare

import (
	"errors"
	"fmt"
	"time"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Config holds the representation-sharing hyper-parameters.
type Config struct {
	// Eta is the local gradient-descent learning rate.
	Eta float64
	// T is the total number of local iterations; T0 the number between
	// aggregations. T must be a multiple of T0.
	T, T0 int
	// Seed drives the default initialization.
	Seed uint64
	// Workers bounds the per-round node fan-out (0 = GOMAXPROCS). Results
	// are bit-identical for every worker count.
	Workers int
	// OnRound, when non-nil, is invoked after each aggregation with the
	// aggregate parameter vector (shared representation + weighted-mean
	// head). theta is a borrowed buffer; Clone to retain.
	OnRound func(round, iter int, theta tensor.Vec)
	// Observer, when non-nil, receives round lifecycle events.
	Observer obs.RoundObserver
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Eta <= 0:
		return fmt.Errorf("repshare: learning rate must be positive, got %v", c.Eta)
	case c.T <= 0 || c.T0 <= 0:
		return fmt.Errorf("repshare: T=%d and T0=%d must be positive", c.T, c.T0)
	case c.T%c.T0 != 0:
		return fmt.Errorf("repshare: T=%d must be a multiple of T0=%d", c.T, c.T0)
	}
	return nil
}

// Result is the outcome of a representation-sharing run.
type Result struct {
	// Theta is the shared representation paired with the weighted mean of
	// the local heads — the initialization a node unseen during training
	// would start from.
	Theta tensor.Vec
	// Locals holds each source node's personalized parameters: the shared
	// representation plus that node's private head.
	Locals []tensor.Vec
}

// SharedSegments returns the model's non-head segments — the representation
// block this baseline synchronizes. It errors when the model exposes no
// layout or when every parameter belongs to the head.
func SharedSegments(m nn.Model) ([]nn.Segment, error) {
	sg, ok := m.(nn.Segmenter)
	if !ok {
		return nil, fmt.Errorf("repshare: model %T does not expose parameter segments", m)
	}
	var shared []nn.Segment
	for _, s := range sg.Segments() {
		if len(s.Name) >= 5 && s.Name[:5] == "head." {
			continue
		}
		shared = append(shared, s)
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("repshare: model %T is all head — nothing to share", m)
	}
	return shared, nil
}

// Train runs the representation-sharing baseline over the federation's
// source nodes. Each round every node takes T0 full-batch gradient steps on
// its complete local dataset, then only the shared (non-head) segments are
// aggregated and redistributed; heads never leave the node. theta0 may be
// nil.
func Train(m nn.Model, fed *data.Federation, theta0 tensor.Vec, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil || fed == nil {
		return nil, errors.New("repshare: nil model or federation")
	}
	if len(fed.Sources) == 0 {
		return nil, errors.New("repshare: federation has no source nodes")
	}
	shared, err := SharedSegments(m)
	if err != nil {
		return nil, err
	}
	if theta0 == nil {
		theta0 = m.InitParams(rng.New(cfg.Seed))
	}
	if len(theta0) != m.NumParams() {
		return nil, fmt.Errorf("repshare: theta0 has %d params, model needs %d", len(theta0), m.NumParams())
	}

	local := make([][]data.Sample, len(fed.Sources))
	for i, nd := range fed.Sources {
		local[i] = nd.All()
	}
	weights := fed.Weights()

	np := m.NumParams()
	// Every node starts from the same initialization; heads diverge from
	// round one and never re-converge.
	locals := make([]tensor.Vec, len(fed.Sources))
	for i := range locals {
		locals[i] = theta0.Clone()
	}
	type workerScratch struct {
		ws nn.Workspace
		g  tensor.Vec
	}
	scratch := make([]workerScratch, par.Span(cfg.Workers, len(fed.Sources)))
	for w := range scratch {
		scratch[w] = workerScratch{ws: nn.NewWorkspace(m), g: tensor.NewVec(np)}
	}
	agg := tensor.NewVec(np)
	var prev tensor.Vec
	if cfg.Observer != nil {
		prev = tensor.NewVec(np)
	}
	rounds := cfg.T / cfg.T0
	for round := 1; round <= rounds; round++ {
		var roundT0 time.Time
		if cfg.Observer != nil {
			roundT0 = time.Now()
			prev.CopyFrom(agg)
			cfg.Observer.Observe(obs.Event{
				Type: obs.TypeRoundStart, Round: round, Iter: (round - 1) * cfg.T0,
				T0: cfg.T0, Alive: len(fed.Sources),
			})
		}
		err := par.ForEachWorkerErr(cfg.Workers, len(fed.Sources), func(w, i int) error {
			sc := &scratch[w]
			ti := locals[i]
			for t := 0; t < cfg.T0; t++ {
				nn.GradStepInto(m, sc.ws, ti, local[i], cfg.Eta, sc.g, ti)
			}
			if !ti.IsFinite() {
				return fmt.Errorf("repshare: node %d diverged in round %d", i, round)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Aggregate the full vectors once, then write back only the shared
		// ranges: each node keeps its private head, and agg's head range
		// doubles as the weighted-mean head the final Theta reports.
		tensor.WeightedSumInto(agg, weights, locals)
		for _, seg := range shared {
			for i := range locals {
				copy(locals[i][seg.Lo:seg.Hi], agg[seg.Lo:seg.Hi])
			}
		}
		if cfg.Observer != nil {
			cfg.Observer.Observe(obs.Event{
				Type: obs.TypeRoundEnd, Round: round, Iter: round * cfg.T0,
				T0: cfg.T0, Alive: len(fed.Sources), Dur: time.Since(roundT0),
				Value: agg.Dist(prev),
			})
		}
		if cfg.OnRound != nil {
			cfg.OnRound(round, round*cfg.T0, agg)
		}
	}
	return &Result{Theta: agg, Locals: locals}, nil
}
