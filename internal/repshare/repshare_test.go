package repshare

import (
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/tensor"
)

func tinyFederation(t *testing.T) *data.Federation {
	t.Helper()
	cfg := data.DefaultSyntheticConfig(0.5, 0.5)
	cfg.Nodes = 10
	cfg.Dim = 10
	cfg.Classes = 4
	cfg.MeanSamples = 20
	cfg.Seed = 11
	fed, err := data.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func tinyMLP(t *testing.T, fed *data.Federation) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, 8, fed.NumClasses}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSharedSegments(t *testing.T) {
	fed := tinyFederation(t)
	m := tinyMLP(t, fed)
	shared, err := SharedSegments(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shared {
		if len(s.Name) >= 5 && s.Name[:5] == "head." {
			t.Errorf("head segment %q reported as shared", s.Name)
		}
	}
	// Softmax regression is all head: nothing to share.
	if _, err := SharedSegments(&nn.SoftmaxRegression{In: 4, Classes: 2}); err == nil {
		t.Error("all-head model accepted")
	}
}

func TestTrainValidation(t *testing.T) {
	fed := tinyFederation(t)
	m := tinyMLP(t, fed)
	okCfg := Config{Eta: 0.05, T: 10, T0: 5}
	if _, err := Train(nil, fed, nil, okCfg); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Train(m, nil, nil, okCfg); err == nil {
		t.Error("nil federation accepted")
	}
	if _, err := Train(m, &data.Federation{}, nil, okCfg); err == nil {
		t.Error("empty federation accepted")
	}
	if _, err := Train(m, fed, tensor.NewVec(1), okCfg); err == nil {
		t.Error("bad theta0 accepted")
	}
	if _, err := Train(m, fed, nil, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Train(m, fed, nil, Config{Eta: 0.05, T: 10, T0: 4}); err == nil {
		t.Error("T not multiple of T0 accepted")
	}
}

// The structural contract: after training, every node shares bit-identical
// representation segments while heads have diverged.
func TestTrainSharesRepresentationKeepsHeadsLocal(t *testing.T) {
	fed := tinyFederation(t)
	m := tinyMLP(t, fed)
	res, err := Train(m, fed, nil, Config{Eta: 0.05, T: 40, T0: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Locals) != len(fed.Sources) {
		t.Fatalf("locals = %d, want %d", len(res.Locals), len(fed.Sources))
	}
	shared, err := SharedSegments(m)
	if err != nil {
		t.Fatal(err)
	}
	head, err := nn.HeadSegments(m)
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Locals[0]
	headsDiverged := false
	for i, l := range res.Locals[1:] {
		for _, s := range shared {
			for j := s.Lo; j < s.Hi; j++ {
				if l[j] != ref[j] {
					t.Fatalf("node %d segment %s[%d] differs from node 0 after sync", i+1, s.Name, j-s.Lo)
				}
			}
		}
		for _, s := range head {
			for j := s.Lo; j < s.Hi; j++ {
				if l[j] != ref[j] {
					headsDiverged = true
				}
			}
		}
	}
	if !headsDiverged {
		t.Error("all local heads identical — heads are being synced")
	}
	// Theta's shared block must equal the nodes' shared block.
	for _, s := range shared {
		for j := s.Lo; j < s.Hi; j++ {
			if res.Theta[j] != ref[j] {
				t.Fatalf("Theta segment %s differs from the synced representation", s.Name)
			}
		}
	}
}

// Per-node personalized models must fit their own node better than the
// weighted-mean-head aggregate does: the private head carries node structure.
func TestTrainLocalHeadsPersonalize(t *testing.T) {
	fed := tinyFederation(t)
	m := tinyMLP(t, fed)
	res, err := Train(m, fed, nil, Config{Eta: 0.05, T: 200, T0: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	better := 0
	for i, nd := range fed.Sources {
		all := nd.All()
		if m.Loss(res.Locals[i], all) < m.Loss(res.Theta, all) {
			better++
		}
	}
	if better <= len(fed.Sources)/2 {
		t.Errorf("only %d/%d nodes fit better with their private head", better, len(fed.Sources))
	}
}

func TestTrainDeterministicAndWorkerInvariant(t *testing.T) {
	fed := tinyFederation(t)
	m := tinyMLP(t, fed)
	cfg := Config{Eta: 0.05, T: 20, T0: 5, Seed: 3, Workers: 1}
	ref, err := Train(m, fed, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		res, err := Train(m, fed, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Theta.Dist(ref.Theta) != 0 {
			t.Fatalf("workers=%d theta differs", workers)
		}
		for i := range res.Locals {
			if res.Locals[i].Dist(ref.Locals[i]) != 0 {
				t.Fatalf("workers=%d local %d differs", workers, i)
			}
		}
	}
}

func TestTrainObserverAndOnRound(t *testing.T) {
	fed := tinyFederation(t)
	m := tinyMLP(t, fed)
	rec := obs.NewRecorder()
	var iters []int
	cfg := Config{Eta: 0.05, T: 20, T0: 5, Observer: rec,
		OnRound: func(round, iter int, _ tensor.Vec) { iters = append(iters, iter) }}
	if _, err := Train(m, fed, nil, cfg); err != nil {
		t.Fatal(err)
	}
	if len(rec.Rounds()) != 4 {
		t.Errorf("round records = %d, want 4", len(rec.Rounds()))
	}
	if len(iters) != 4 || iters[0] != 5 || iters[3] != 20 {
		t.Errorf("OnRound iters = %v", iters)
	}
}
