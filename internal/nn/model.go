// Package nn implements the learning models used by the paper's experiments
// and the differentiation machinery the meta-learning algorithms need:
//
//   - SoftmaxRegression: multinomial logistic regression (the convex model
//     used for the synthetic and MNIST experiments) with analytic gradients,
//     analytic Hessian-vector products, and analytic input gradients.
//   - MLP: a feed-forward network with ReLU activations and optional batch
//     normalization (the Sent140 model), with manual backpropagation.
//
// The MAML meta-gradient (I − α∇²L_train(θ)) ∇L_test(φ) only ever needs a
// Hessian-VECTOR product, never the full Hessian. Models may provide an
// analytic HVP (SoftmaxRegression does); for the rest, HVP falls back to a
// central finite difference of the gradient, the standard substitute when
// second-order automatic differentiation is unavailable (see DESIGN.md §3).
package nn

import (
	"math"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Model is a stateless model family: parameters live in a flat tensor.Vec so
// that the federated runtime can aggregate, ship and compare them without
// knowing the architecture.
type Model interface {
	// NumParams returns the length of the flat parameter vector.
	NumParams() int
	// InitParams draws a fresh random initialization.
	InitParams(r *rng.Rand) tensor.Vec
	// Loss returns the empirical loss L(θ, D) (Eq. 1), averaged over batch.
	Loss(params tensor.Vec, batch []data.Sample) float64
	// Grad returns ∇_θ L(θ, D), averaged over batch.
	Grad(params tensor.Vec, batch []data.Sample) tensor.Vec
	// PredictBatch returns the predicted class of every sample. Predictions
	// are computed jointly so models with batch normalization can use
	// transductive batch statistics (as MAML-style meta-testing does).
	PredictBatch(params tensor.Vec, batch []data.Sample) []int
}

// HVPComputer is implemented by models that can compute the Hessian-vector
// product ∇²L(θ, D)·v analytically.
type HVPComputer interface {
	HVP(params tensor.Vec, batch []data.Sample, v tensor.Vec) tensor.Vec
}

// InputGradienter is implemented by models that can differentiate the
// per-sample loss with respect to the input features, as required by the
// adversarial data generation of Algorithm 2 and the FGSM attack.
type InputGradienter interface {
	// InputGrad returns ∇_x l(θ, (x, y)) for a single sample. For models
	// with batch normalization the normalization statistics of ctx are
	// treated as constants (frozen-BN approximation); ctx may be nil for
	// models that do not need it.
	InputGrad(params tensor.Vec, s data.Sample, ctx []data.Sample) tensor.Vec
}

// _fdEpsBase is the optimal step scale for central differences,
// cbrt(machine epsilon).
var _fdEpsBase = math.Cbrt(2.220446049250313e-16)

// FiniteDiffHVP approximates ∇²L(θ)·v by a central finite difference of the
// gradient: (∇L(θ+εv) − ∇L(θ−εv)) / 2ε, with ε scaled to the magnitudes of
// θ and v. The error is O(ε²‖∇³L‖).
func FiniteDiffHVP(m Model, params tensor.Vec, batch []data.Sample, v tensor.Vec) tensor.Vec {
	vn := v.Norm()
	if vn == 0 {
		return tensor.NewVec(len(params))
	}
	eps := _fdEpsBase * (1 + params.Norm()) / vn
	pp := params.Clone()
	pp.Axpy(eps, v)
	pm := params.Clone()
	pm.Axpy(-eps, v)
	g := m.Grad(pp, batch)
	g.SubInPlace(m.Grad(pm, batch))
	g.ScaleInPlace(1 / (2 * eps))
	return g
}

// HVP returns ∇²L(θ, D)·v, using the model's analytic implementation when
// available and the finite-difference approximation otherwise.
func HVP(m Model, params tensor.Vec, batch []data.Sample, v tensor.Vec) tensor.Vec {
	if h, ok := m.(HVPComputer); ok {
		return h.HVP(params, batch, v)
	}
	return FiniteDiffHVP(m, params, batch, v)
}

// Accuracy evaluates the fraction of batch whose predicted class matches the
// label.
func Accuracy(m Model, params tensor.Vec, batch []data.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	preds := m.PredictBatch(params, batch)
	correct := 0
	for i, p := range preds {
		if p == batch[i].Y {
			correct++
		}
	}
	return float64(correct) / float64(len(batch))
}

// NumericalGrad computes a central finite-difference gradient of m.Loss.
// It is exposed for tests that verify analytic gradients.
func NumericalGrad(m Model, params tensor.Vec, batch []data.Sample) tensor.Vec {
	const eps = 1e-6
	g := tensor.NewVec(len(params))
	p := params.Clone()
	for i := range p {
		orig := p[i]
		p[i] = orig + eps
		lp := m.Loss(p, batch)
		p[i] = orig - eps
		lm := m.Loss(p, batch)
		p[i] = orig
		g[i] = (lp - lm) / (2 * eps)
	}
	return g
}
