package nn

import (
	"testing"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// The Into API's contract is zero steady-state allocations: after the first
// call has sized the workspace's grow-only buffers, repeated calls on the
// same shapes must not touch the heap. testing.AllocsPerRun warms up with
// one untimed call, which is exactly when the sizing happens, so these
// assert a hard 0.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // size the workspace before measuring
	if allocs := testing.AllocsPerRun(20, f); allocs != 0 {
		t.Errorf("%s: %v allocs per call, want 0", name, allocs)
	}
}

func TestSoftmaxGradIntoZeroAllocs(t *testing.T) {
	m := &SoftmaxRegression{In: 6, Classes: 4, L2: 0.01}
	r := rng.New(1)
	batch := randBatch(r, 12, m.In, m.Classes)
	params := m.InitParams(r)
	ws := m.NewWorkspace()
	out := tensor.NewVec(m.NumParams())
	v := m.InitParams(rng.New(2))
	hvpOut := tensor.NewVec(m.NumParams())

	assertZeroAllocs(t, "SoftmaxRegression.GradInto", func() {
		m.GradInto(ws, params, batch, out)
	})
	assertZeroAllocs(t, "SoftmaxRegression.HVPInto", func() {
		m.HVPInto(ws, params, batch, v, hvpOut)
	})
	igOut := tensor.NewVec(m.In)
	assertZeroAllocs(t, "SoftmaxRegression.InputGradInto", func() {
		m.InputGradInto(ws, params, batch[0], batch, igOut)
	})
}

func TestMLPGradIntoZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  MLPConfig
	}{
		{"plain", MLPConfig{Dims: []int{6, 8, 4, 3}, L2: 0.01}},
		{"batchnorm", MLPConfig{Dims: []int{6, 8, 4, 3}, BatchNorm: true, L2: 0.01}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := mustMLP(t, tc.cfg)
			r := rng.New(1)
			batch := randBatch(r, 10, 6, 3)
			params := m.InitParams(r)
			ws := m.NewWorkspace()
			out := tensor.NewVec(m.NumParams())

			assertZeroAllocs(t, "MLP.GradInto", func() {
				m.GradInto(ws, params, batch, out)
			})
			igOut := tensor.NewVec(6)
			assertZeroAllocs(t, "MLP.InputGradInto", func() {
				m.InputGradInto(ws, params, batch[0], batch, igOut)
			})
		})
	}
}

// TestFiniteDiffHVPIntoZeroAllocs covers the finite-difference HVP path the
// MLP relies on: with a workspace carrying fd scratch it must also run
// allocation-free.
func TestFiniteDiffHVPIntoZeroAllocs(t *testing.T) {
	m := mustMLP(t, MLPConfig{Dims: []int{5, 6, 3}, BatchNorm: true})
	r := rng.New(1)
	batch := randBatch(r, 8, 5, 3)
	params := m.InitParams(r)
	v := m.InitParams(rng.New(2))
	ws := m.NewWorkspace()
	out := tensor.NewVec(m.NumParams())

	assertZeroAllocs(t, "HVPInto(MLP, finite-diff)", func() {
		HVPInto(m, ws, params, batch, v, out)
	})
}

// The Into kernels must agree exactly with the allocating wrappers: the
// wrappers are now implemented on top of them, so this pins the aliasing
// discipline (reused buffers must not leak state between calls).

func TestGradIntoMatchesGrad(t *testing.T) {
	models := []Model{
		&SoftmaxRegression{In: 6, Classes: 4, L2: 0.01},
		mustMLP(t, MLPConfig{Dims: []int{6, 7, 4}, BatchNorm: true, L2: 0.01}),
	}
	for _, m := range models {
		r := rng.New(9)
		batch := randBatch(r, 11, 6, 4)
		params := m.InitParams(r)
		ws := NewWorkspace(m)
		out := tensor.NewVec(m.NumParams())
		// Run twice on different params so buffer reuse across calls is
		// exercised; compare each against the fresh-allocation path.
		for trial := 0; trial < 2; trial++ {
			GradInto(m, ws, params, batch, out)
			want := m.Grad(params, batch)
			if d := out.Dist(want); d != 0 {
				t.Errorf("%T trial %d: GradInto differs from Grad by %g", m, trial, d)
			}
			params.ScaleInPlace(0.7)
		}
	}
}

func TestHVPIntoMatchesHVP(t *testing.T) {
	m := &SoftmaxRegression{In: 5, Classes: 3, L2: 0.01}
	r := rng.New(4)
	batch := randBatch(r, 9, 5, 3)
	params := m.InitParams(r)
	v := m.InitParams(rng.New(5))
	ws := m.NewWorkspace()
	out := tensor.NewVec(m.NumParams())
	HVPInto(m, ws, params, batch, v, out)
	want := m.HVP(params, batch, v)
	if d := out.Dist(want); d != 0 {
		t.Errorf("HVPInto differs from HVP by %g", d)
	}
}

func TestInputGradIntoMatchesInputGrad(t *testing.T) {
	models := []Model{
		&SoftmaxRegression{In: 6, Classes: 3},
		mustMLP(t, MLPConfig{Dims: []int{6, 5, 3}, BatchNorm: true}),
	}
	for _, m := range models {
		ig := m.(InputGradienter)
		r := rng.New(7)
		batch := randBatch(r, 8, 6, 3)
		params := m.InitParams(r)
		ws := NewWorkspace(m)
		out := tensor.NewVec(6)
		InputGradInto(ig, ws, params, batch[0], batch, out)
		want := ig.InputGrad(params, batch[0], batch)
		if d := out.Dist(want); d != 0 {
			t.Errorf("%T: InputGradInto differs from InputGrad by %g", m, d)
		}
	}
}

// TestGradIntoNilWorkspace pins the graceful-degradation contract: a nil
// workspace is always valid and produces identical numbers.
func TestGradIntoNilWorkspace(t *testing.T) {
	m := mustMLP(t, MLPConfig{Dims: []int{4, 5, 2}, BatchNorm: true})
	r := rng.New(3)
	batch := randBatch(r, 6, 4, 2)
	params := m.InitParams(r)
	out := tensor.NewVec(m.NumParams())
	GradInto(m, nil, params, batch, out)
	if d := out.Dist(m.Grad(params, batch)); d != 0 {
		t.Errorf("nil-workspace GradInto differs by %g", d)
	}
}
