package nn

import "fmt"

// Segment names one structurally meaningful, contiguous slice [Lo, Hi) of a
// model's flat parameter vector — a layer's weight matrix, a bias, a batch
// norm scale. Segments are the layout metadata partial-parameter sync needs:
// the federated runtime can freeze or sync whole segments without knowing
// the architecture (TinyMetaFed-style structural partial updates).
type Segment struct {
	// Name identifies the segment: "layer<l>.<part>" for hidden layers,
	// "head.<part>" for the final (output) layer, with <part> one of
	// w, b, gamma, beta.
	Name string
	// Lo and Hi bound the half-open slice of the flat parameter vector.
	Lo, Hi int
}

// Len returns the number of parameters in the segment.
func (s Segment) Len() int { return s.Hi - s.Lo }

// Segmenter is implemented by models that expose their flat-vector layout.
// Segments must be contiguous, sorted, and tile [0, NumParams()) exactly.
type Segmenter interface {
	Segments() []Segment
}

// HeadSegments returns the model's output-layer ("head.*") segments, the
// structural subset a head-only sync policy keeps synchronizing after
// warmup. The error names models that expose no layout or no head — callers
// surface it at configuration time, not mid-training.
func HeadSegments(m Model) ([]Segment, error) {
	sg, ok := m.(Segmenter)
	if !ok {
		return nil, fmt.Errorf("nn: model %T does not expose parameter segments", m)
	}
	var head []Segment
	for _, s := range sg.Segments() {
		if len(s.Name) >= 5 && s.Name[:5] == "head." {
			head = append(head, s)
		}
	}
	if len(head) == 0 {
		return nil, fmt.Errorf("nn: model %T has no head segments", m)
	}
	return head, nil
}

// Segments reports the softmax layout: a single dense layer, so the whole
// vector is the head ("head.w" then "head.b", matching the view order).
// Head-only masking degenerates to full sync, harmlessly.
func (m *SoftmaxRegression) Segments() []Segment {
	wLen := m.Classes * m.In
	return []Segment{
		{Name: "head.w", Lo: 0, Hi: wLen},
		{Name: "head.b", Lo: wLen, Hi: wLen + m.Classes},
	}
}

// Segments reports the MLP layout in viewInto's order: per layer, the
// weight matrix then the bias, then (with batch norm, hidden layers only)
// gamma and beta. The final layer's segments are named "head.*"; hidden
// layers are "layer<l>.*".
func (m *MLP) Segments() []Segment {
	var segs []Segment
	off := 0
	for l := 0; l < m.layers(); l++ {
		out, in := m.dims[l+1], m.dims[l]
		prefix := fmt.Sprintf("layer%d", l)
		if l == m.layers()-1 {
			prefix = "head"
		}
		segs = append(segs, Segment{Name: prefix + ".w", Lo: off, Hi: off + out*in})
		off += out * in
		segs = append(segs, Segment{Name: prefix + ".b", Lo: off, Hi: off + out})
		off += out
		if m.batchNorm && l < m.layers()-1 {
			segs = append(segs, Segment{Name: prefix + ".gamma", Lo: off, Hi: off + out})
			off += out
			segs = append(segs, Segment{Name: prefix + ".beta", Lo: off, Hi: off + out})
			off += out
		}
	}
	return segs
}
