package nn

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

func mustMLP(t *testing.T, cfg MLPConfig) *MLP {
	t.Helper()
	m, err := NewMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMLPValidation(t *testing.T) {
	bad := []MLPConfig{
		{Dims: []int{5}},
		{Dims: nil},
		{Dims: []int{5, 0, 2}},
		{Dims: []int{5, -1, 2}},
		{Dims: []int{5, 3, 2}, L2: -1},
	}
	for i, cfg := range bad {
		if _, err := NewMLP(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMLPNumParams(t *testing.T) {
	// dims [4,3,2]: W0 12 + b0 3 + W1 6 + b1 2 = 23; BN adds gamma+beta (3+3).
	m := mustMLP(t, MLPConfig{Dims: []int{4, 3, 2}})
	if m.NumParams() != 23 {
		t.Errorf("plain NumParams = %d, want 23", m.NumParams())
	}
	mbn := mustMLP(t, MLPConfig{Dims: []int{4, 3, 2}, BatchNorm: true})
	if mbn.NumParams() != 29 {
		t.Errorf("BN NumParams = %d, want 29", mbn.NumParams())
	}
	if m.InputDim() != 4 || m.NumClasses() != 2 {
		t.Errorf("shape accessors wrong: %d/%d", m.InputDim(), m.NumClasses())
	}
}

func TestMLPInitParams(t *testing.T) {
	m := mustMLP(t, MLPConfig{Dims: []int{4, 3, 2}, BatchNorm: true})
	p := m.InitParams(rng.New(1))
	if len(p) != m.NumParams() {
		t.Fatalf("init len %d", len(p))
	}
	v := m.view(p)
	for f := 0; f < 3; f++ {
		if v.gamma[0][f] != 1 || v.beta[0][f] != 0 {
			t.Errorf("BN init gamma/beta = %v/%v", v.gamma[0][f], v.beta[0][f])
		}
	}
	if !p.IsFinite() {
		t.Error("non-finite init")
	}
}

func TestMLPGradMatchesNumericalNoBN(t *testing.T) {
	r := rng.New(2)
	m := mustMLP(t, MLPConfig{Dims: []int{5, 4, 3}, L2: 0.02})
	p := m.InitParams(r)
	batch := randBatch(r, 6, 5, 3)
	got := m.Grad(p, batch)
	want := NumericalGrad(m, p, batch)
	if e := relErr(got, want); e > 1e-5 {
		t.Errorf("MLP gradient relErr = %v", e)
	}
}

func TestMLPGradMatchesNumericalWithBN(t *testing.T) {
	r := rng.New(3)
	m := mustMLP(t, MLPConfig{Dims: []int{4, 5, 3, 2}, BatchNorm: true})
	p := m.InitParams(r)
	batch := randBatch(r, 8, 4, 2)
	got := m.Grad(p, batch)
	want := NumericalGrad(m, p, batch)
	if e := relErr(got, want); e > 1e-4 {
		t.Errorf("BN MLP gradient relErr = %v", e)
	}
}

func TestMLPDeepGradMatchesNumerical(t *testing.T) {
	// Three hidden layers, the paper's Sent140 head shape (scaled down).
	r := rng.New(4)
	m := mustMLP(t, MLPConfig{Dims: []int{6, 8, 4, 3, 2}, BatchNorm: true, L2: 0.01})
	p := m.InitParams(r)
	batch := randBatch(r, 10, 6, 2)
	got := m.Grad(p, batch)
	want := NumericalGrad(m, p, batch)
	if e := relErr(got, want); e > 1e-4 {
		t.Errorf("deep BN MLP gradient relErr = %v", e)
	}
}

func TestMLPFiniteDiffHVPSelfConsistent(t *testing.T) {
	// FD-HVP must be approximately linear in v for smooth regions.
	r := rng.New(5)
	m := mustMLP(t, MLPConfig{Dims: []int{4, 6, 3}})
	p := m.InitParams(r)
	batch := randBatch(r, 12, 4, 3)
	v := tensor.NewVec(m.NumParams())
	for i := range v {
		v[i] = r.Norm()
	}
	h1 := FiniteDiffHVP(m, p, batch, v)
	h2 := FiniteDiffHVP(m, p, batch, v.Scale(2))
	if e := relErr(h1.Scale(2), h2); e > 1e-2 {
		t.Errorf("FD HVP not ~linear: relErr = %v", e)
	}
}

func TestMLPInputGradMatchesNumericalNoBN(t *testing.T) {
	r := rng.New(6)
	m := mustMLP(t, MLPConfig{Dims: []int{5, 4, 3}})
	p := m.InitParams(r)
	s := randBatch(r, 1, 5, 3)[0]
	got := m.InputGrad(p, s, nil)

	const eps = 1e-6
	want := tensor.NewVec(5)
	for i := range s.X {
		orig := s.X[i]
		s.X[i] = orig + eps
		lp := m.Loss(p, []data.Sample{s})
		s.X[i] = orig - eps
		lm := m.Loss(p, []data.Sample{s})
		s.X[i] = orig
		want[i] = (lp - lm) / (2 * eps)
	}
	if e := relErr(got, want); e > 1e-5 {
		t.Errorf("MLP input gradient relErr = %v", e)
	}
}

func TestMLPInputGradWithBNFiniteAndNonZero(t *testing.T) {
	r := rng.New(7)
	m := mustMLP(t, MLPConfig{Dims: []int{5, 4, 3}, BatchNorm: true})
	p := m.InitParams(r)
	batch := randBatch(r, 6, 5, 3)
	g := m.InputGrad(p, batch[0], batch)
	if !g.IsFinite() {
		t.Fatal("frozen-BN input gradient is not finite")
	}
	if g.Norm() == 0 {
		t.Error("frozen-BN input gradient is identically zero")
	}
}

func TestMLPGradientDescentReducesLoss(t *testing.T) {
	r := rng.New(8)
	m := mustMLP(t, MLPConfig{Dims: []int{4, 8, 3}, BatchNorm: true})
	p := m.InitParams(r)
	batch := randBatch(r, 20, 4, 3)
	before := m.Loss(p, batch)
	for step := 0; step < 80; step++ {
		p.Axpy(-0.1, m.Grad(p, batch))
	}
	after := m.Loss(p, batch)
	if after >= before-0.05 {
		t.Errorf("training failed: %v -> %v", before, after)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// XOR is not linearly separable: passing requires a working hidden layer.
	m := mustMLP(t, MLPConfig{Dims: []int{2, 8, 2}})
	r := rng.New(9)
	p := m.InitParams(r)
	var batch []data.Sample
	for i := 0; i < 40; i++ {
		a, b := r.IntN(2), r.IntN(2)
		x := tensor.Vec{float64(a) + 0.05*r.Norm(), float64(b) + 0.05*r.Norm()}
		batch = append(batch, data.Sample{X: x, Y: a ^ b})
	}
	for step := 0; step < 2000; step++ {
		p.Axpy(-0.5, m.Grad(p, batch))
	}
	if acc := Accuracy(m, p, batch); acc < 0.95 {
		t.Errorf("XOR accuracy = %v", acc)
	}
}

func TestMLPEmptyBatch(t *testing.T) {
	m := mustMLP(t, MLPConfig{Dims: []int{3, 2}, L2: 1})
	p := tensor.NewVec(m.NumParams())
	p[0] = 2
	if got := m.Loss(p, nil); math.Abs(got-2) > 1e-12 {
		t.Errorf("empty-batch loss = %v, want L2 term 2", got)
	}
	g := m.Grad(p, nil)
	if g[0] != 2 || g[1] != 0 {
		t.Errorf("empty-batch grad = %v", g)
	}
	if preds := m.PredictBatch(p, nil); preds != nil {
		t.Errorf("empty predictions = %v", preds)
	}
}

func TestMLPPanicsOnBadShapes(t *testing.T) {
	m := mustMLP(t, MLPConfig{Dims: []int{3, 2}})
	t.Run("params", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on bad param length")
			}
		}()
		m.Loss(tensor.NewVec(1), randBatch(rng.New(1), 1, 3, 2))
	})
	t.Run("input", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on bad input dim")
			}
		}()
		p := m.InitParams(rng.New(1))
		m.Loss(p, []data.Sample{{X: tensor.NewVec(5), Y: 0}})
	})
}

func TestMLPBatchNormNormalizesActivations(t *testing.T) {
	// With gamma=1, beta=0, the normalized pre-activations should have
	// ~zero mean and ~unit variance per feature across the batch.
	m := mustMLP(t, MLPConfig{Dims: []int{4, 5, 2}, BatchNorm: true})
	r := rng.New(10)
	p := m.InitParams(r)
	batch := randBatch(r, 32, 4, 2)
	v := m.view(p)
	c := m.forward(m.workspace(nil), v, batch, nil)
	dim := 5
	for f := 0; f < dim; f++ {
		var mean float64
		for j := range batch {
			mean += c.zhat[0][j][f]
		}
		mean /= float64(len(batch))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("zhat mean[%d] = %v", f, mean)
		}
		var variance float64
		for j := range batch {
			d := c.zhat[0][j][f] - mean
			variance += d * d
		}
		variance /= float64(len(batch))
		if math.Abs(variance-1) > 0.01 {
			t.Errorf("zhat var[%d] = %v", f, variance)
		}
	}
}

func BenchmarkSoftmaxGrad(b *testing.B) {
	r := rng.New(1)
	m := &SoftmaxRegression{In: 60, Classes: 10}
	p := m.InitParams(r)
	batch := randBatch(r, 17, 60, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Grad(p, batch)
	}
}

func BenchmarkSoftmaxHVP(b *testing.B) {
	r := rng.New(1)
	m := &SoftmaxRegression{In: 60, Classes: 10}
	p := m.InitParams(r)
	batch := randBatch(r, 17, 60, 10)
	v := m.InitParams(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.HVP(p, batch, v)
	}
}

func BenchmarkMLPGradBN(b *testing.B) {
	r := rng.New(1)
	m, err := NewMLP(MLPConfig{Dims: []int{50, 64, 32, 16, 2}, BatchNorm: true})
	if err != nil {
		b.Fatal(err)
	}
	p := m.InitParams(r)
	batch := randBatch(r, 16, 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Grad(p, batch)
	}
}
