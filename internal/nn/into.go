package nn

import (
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/tensor"
)

// This file defines the allocation-free ("Into") side of the model API.
//
// The federated runtime executes gradient → inner step → outer gradient →
// HVP on every one of T0·rounds local iterations; with the plain Model
// interface each stage allocates fresh vectors and per-layer scratch, which
// makes garbage collection the dominant cost at paper scale. The Into API
// inverts ownership: the caller provides the output buffer and a reusable
// Workspace that owns all intermediate scratch, sized once on first use.
//
// Conventions (see DESIGN.md §6):
//   - FooInto(ws, ..., out) overwrites out and never retains out or ws
//     beyond the call. out must not alias the params or direction inputs.
//   - A Workspace belongs to one goroutine; it is not safe for concurrent
//     use. Results that alias workspace memory are valid only until the
//     next call using the same workspace (this is documented per method).
//   - The allocating wrappers (Model.Grad, HVP, ...) remain the convenient
//     API for cold paths; the Into API is for steady-state loops.

// Workspace is reusable scratch memory for one model's Into kernels. Each
// model family provides its own concrete type via NewWorkspace; callers
// treat it as opaque and pass it back to the model's *Into methods. A nil
// Workspace is always valid: the kernels then allocate their scratch per
// call.
type Workspace interface{ isWorkspace() }

// WorkspaceProvider is implemented by models whose kernels can run
// allocation-free against a reusable Workspace.
type WorkspaceProvider interface {
	NewWorkspace() Workspace
}

// GradIntoer is implemented by models that can compute ∇L into a
// caller-provided buffer without allocating (given a workspace from the
// same model).
type GradIntoer interface {
	// GradInto computes ∇_θ L(θ, D) averaged over batch into out.
	// out must not alias params.
	GradInto(ws Workspace, params tensor.Vec, batch []data.Sample, out tensor.Vec)
}

// HVPIntoer is implemented by models that can compute the Hessian-vector
// product into a caller-provided buffer.
type HVPIntoer interface {
	// HVPInto computes ∇²L(θ, D)·v into out. out must alias neither
	// params nor v.
	HVPInto(ws Workspace, params tensor.Vec, batch []data.Sample, v, out tensor.Vec)
}

// GradStepIntoer is implemented by models whose gradient-descent step
// out = params − lr·∇L(params, batch) runs as one fused kernel: the gradient
// lives in workspace scratch and the regularizer plus the step collapse into
// a single pass over the parameter vector, instead of the three sweeps
// (gradient write, parameter copy, axpy) of the unfused sequence.
type GradStepIntoer interface {
	// GradStepInto computes out = params − lr·∇L(params, batch). out may
	// alias params (in-place step); it must not alias workspace memory.
	GradStepInto(ws Workspace, params tensor.Vec, batch []data.Sample, lr float64, out tensor.Vec)
}

// InputGradIntoer is implemented by models that can compute the per-sample
// input gradient into a caller-provided buffer.
type InputGradIntoer interface {
	// InputGradInto computes ∇_x l(θ, (x, y)) for a single sample into
	// out (length = input dimension).
	InputGradInto(ws Workspace, params tensor.Vec, s data.Sample, ctx []data.Sample, out tensor.Vec)
}

// NewWorkspace returns a reusable workspace for m, or nil when the model
// has no Into support (the Into helpers below then fall back to the
// allocating API).
func NewWorkspace(m Model) Workspace {
	if p, ok := m.(WorkspaceProvider); ok {
		return p.NewWorkspace()
	}
	return nil
}

// GradInto computes ∇_θ L(θ, D) into out, allocation-free when the model
// implements GradIntoer and ws comes from the same model; otherwise it
// falls back to the allocating Grad and copies.
func GradInto(m Model, ws Workspace, params tensor.Vec, batch []data.Sample, out tensor.Vec) {
	if g, ok := m.(GradIntoer); ok {
		g.GradInto(ws, params, batch, out)
		return
	}
	out.CopyFrom(m.Grad(params, batch))
}

// HVPInto computes ∇²L(θ, D)·v into out, preferring (in order) the model's
// buffered analytic HVP, its allocating analytic HVP, and the
// finite-difference fallback.
func HVPInto(m Model, ws Workspace, params tensor.Vec, batch []data.Sample, v, out tensor.Vec) {
	if h, ok := m.(HVPIntoer); ok {
		h.HVPInto(ws, params, batch, v, out)
		return
	}
	if h, ok := m.(HVPComputer); ok {
		out.CopyFrom(h.HVP(params, batch, v))
		return
	}
	FiniteDiffHVPInto(m, ws, params, batch, v, out)
}

// GradStepInto computes out = params − lr·∇L(params, batch), using the
// model's fused kernel when it implements GradStepIntoer. grad is fallback
// scratch (length NumParams) used only by models without the fused kernel;
// out may alias params but must alias neither grad nor workspace memory.
// Both paths produce bit-identical results: the fused kernels reproduce the
// unfused per-element arithmetic exactly.
func GradStepInto(m Model, ws Workspace, params tensor.Vec, batch []data.Sample, lr float64, grad, out tensor.Vec) {
	if g, ok := m.(GradStepIntoer); ok {
		g.GradStepInto(ws, params, batch, lr, out)
		return
	}
	GradInto(m, ws, params, batch, grad)
	params.AxpyInto(-lr, grad, out)
}

// LossWither is implemented by models that can evaluate the batch loss
// against a reusable Workspace without allocating.
type LossWither interface {
	LossWith(ws Workspace, params tensor.Vec, batch []data.Sample) float64
}

// LossWith evaluates L(θ, D), allocation-free when the model implements
// LossWither; otherwise it falls back to the allocating Loss.
func LossWith(m Model, ws Workspace, params tensor.Vec, batch []data.Sample) float64 {
	if l, ok := m.(LossWither); ok {
		return l.LossWith(ws, params, batch)
	}
	return m.Loss(params, batch)
}

// InputGradInto computes ∇_x l(θ, (x, y)) into out, allocation-free when
// the model implements InputGradIntoer.
func InputGradInto(ig InputGradienter, ws Workspace, params tensor.Vec, s data.Sample, ctx []data.Sample, out tensor.Vec) {
	if g, ok := ig.(InputGradIntoer); ok {
		g.InputGradInto(ws, params, s, ctx, out)
		return
	}
	out.CopyFrom(ig.InputGrad(params, s, ctx))
}

// fdScratcher is implemented by workspaces that carry scratch for the
// finite-difference HVP (two perturbed parameter vectors and one gradient).
type fdScratcher interface {
	fdScratch(n int) (pp, pm, g2 tensor.Vec)
}

// fdBufs is the shared finite-difference scratch embedded by the model
// workspaces. (The type name must differ from the fdScratch method, or the
// embedded field would shadow the promoted method and break the fdScratcher
// assertion.)
type fdBufs struct{ pp, pm, g2 tensor.Vec }

func (f *fdBufs) fdScratch(n int) (pp, pm, g2 tensor.Vec) {
	if len(f.pp) != n {
		f.pp = tensor.NewVec(n)
		f.pm = tensor.NewVec(n)
		f.g2 = tensor.NewVec(n)
	}
	return f.pp, f.pm, f.g2
}

// FiniteDiffHVPInto is the buffered counterpart of FiniteDiffHVP: it
// approximates ∇²L(θ)·v by a central difference of GradInto, reusing ws for
// both the inner gradients and (when the workspace provides it) the
// perturbed-parameter scratch. out must alias neither params nor v.
func FiniteDiffHVPInto(m Model, ws Workspace, params tensor.Vec, batch []data.Sample, v, out tensor.Vec) {
	vn := v.Norm()
	if vn == 0 {
		out.Zero()
		return
	}
	var pp, pm, g2 tensor.Vec
	if f, ok := ws.(fdScratcher); ok {
		pp, pm, g2 = f.fdScratch(len(params))
	} else {
		pp = tensor.NewVec(len(params))
		pm = tensor.NewVec(len(params))
		g2 = tensor.NewVec(len(params))
	}
	eps := _fdEpsBase * (1 + params.Norm()) / vn
	pp.CopyFrom(params)
	pp.Axpy(eps, v)
	pm.CopyFrom(params)
	pm.Axpy(-eps, v)
	GradInto(m, ws, pp, batch, out)
	GradInto(m, ws, pm, batch, g2)
	out.SubInPlace(g2)
	out.ScaleInPlace(1 / (2 * eps))
}
