package nn

import (
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// fakeModel satisfies Model but not Segmenter.
type fakeModel struct{}

func (fakeModel) NumParams() int                               { return 4 }
func (fakeModel) InitParams(*rng.Rand) tensor.Vec              { return tensor.NewVec(4) }
func (fakeModel) Loss(tensor.Vec, []data.Sample) float64       { return 0 }
func (fakeModel) Grad(tensor.Vec, []data.Sample) tensor.Vec    { return tensor.NewVec(4) }
func (fakeModel) PredictBatch(tensor.Vec, []data.Sample) []int { return nil }

// checkTiling asserts that segments are sorted, contiguous, and tile
// [0, numParams) exactly — the Segmenter contract.
func checkTiling(t *testing.T, segs []Segment, numParams int) {
	t.Helper()
	off := 0
	for _, s := range segs {
		if s.Lo != off || s.Hi <= s.Lo {
			t.Fatalf("segment %q [%d,%d) breaks tiling at offset %d", s.Name, s.Lo, s.Hi, off)
		}
		off = s.Hi
	}
	if off != numParams {
		t.Fatalf("segments tile %d params, model has %d", off, numParams)
	}
}

func TestSoftmaxSegments(t *testing.T) {
	m := &SoftmaxRegression{In: 60, Classes: 10}
	segs := m.Segments()
	checkTiling(t, segs, m.NumParams())
	head, err := HeadSegments(m)
	if err != nil {
		t.Fatal(err)
	}
	// Single-layer model: the head is the entire vector.
	total := 0
	for _, s := range head {
		total += s.Len()
	}
	if total != m.NumParams() {
		t.Fatalf("softmax head covers %d of %d params", total, m.NumParams())
	}
}

func TestMLPSegments(t *testing.T) {
	for _, bn := range []bool{false, true} {
		m, err := NewMLP(MLPConfig{Dims: []int{60, 32, 16, 10}, BatchNorm: bn})
		if err != nil {
			t.Fatal(err)
		}
		segs := m.Segments()
		checkTiling(t, segs, m.NumParams())

		head, err := HeadSegments(m)
		if err != nil {
			t.Fatal(err)
		}
		// Head = last layer's W (10×16) + b (10), never batch norm (BN is
		// hidden-layer only), and far smaller than the full vector.
		total := 0
		for _, s := range head {
			total += s.Len()
		}
		if total != 10*16+10 {
			t.Fatalf("bn=%v: head covers %d params, want %d", bn, total, 10*16+10)
		}
		if head[0].Hi != m.NumParams()-10 || head[1].Hi != m.NumParams() {
			t.Fatalf("bn=%v: head segments %v not at the tail of the vector", bn, head)
		}
	}
}

func TestHeadSegmentsRejectsNonSegmenter(t *testing.T) {
	if _, err := HeadSegments(fakeModel{}); err == nil {
		t.Fatal("HeadSegments accepted a model with no layout metadata")
	}
}
