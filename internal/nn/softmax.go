package nn

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// SoftmaxRegression is multinomial logistic regression with cross-entropy
// loss and optional L2 regularization:
//
//	l(θ, (x, y)) = −log softmax(Wx + b)[y] + (λ₂/2)‖θ‖².
//
// With λ₂ > 0 the empirical loss is λ₂-strongly convex, matching
// Assumption 1 of the paper; it is H-smooth with H ≤ ‖x‖²/2 + λ₂.
// Parameters are laid out as the row-major C×In weight matrix followed by
// the C bias entries.
type SoftmaxRegression struct {
	// In is the input dimension; Classes the number of labels.
	In, Classes int
	// L2 is the λ₂ regularization coefficient (may be zero).
	L2 float64
	// InitScale is the standard deviation of the weight initialization
	// (biases start at zero). Zero means 0.01.
	InitScale float64
}

var (
	_ Model             = (*SoftmaxRegression)(nil)
	_ HVPComputer       = (*SoftmaxRegression)(nil)
	_ InputGradienter   = (*SoftmaxRegression)(nil)
	_ WorkspaceProvider = (*SoftmaxRegression)(nil)
	_ GradIntoer        = (*SoftmaxRegression)(nil)
	_ GradStepIntoer    = (*SoftmaxRegression)(nil)
	_ HVPIntoer         = (*SoftmaxRegression)(nil)
	_ InputGradIntoer   = (*SoftmaxRegression)(nil)
	_ LossWither        = (*SoftmaxRegression)(nil)
)

// softmaxWorkspace owns the class-sized scratch vectors and the rebindable
// matrix views of the softmax kernels, so the steady-state GradInto /
// HVPInto / InputGradInto paths allocate nothing.
type softmaxWorkspace struct {
	classes, in int
	p, u, a     tensor.Vec // probability / direction / curvature scratch
	gstep       tensor.Vec // gradient accumulator of the fused GradStepInto
	w, gw, vw   tensor.Mat // views rebound onto params / out / v per call
	fdBufs
}

func (*softmaxWorkspace) isWorkspace() {}

// NewWorkspace implements WorkspaceProvider.
func (m *SoftmaxRegression) NewWorkspace() Workspace {
	ws := &softmaxWorkspace{
		classes: m.Classes,
		in:      m.In,
		p:       tensor.NewVec(m.Classes),
		u:       tensor.NewVec(m.Classes),
		a:       tensor.NewVec(m.Classes),
	}
	for _, mat := range []*tensor.Mat{&ws.w, &ws.gw, &ws.vw} {
		mat.Rows, mat.Cols = m.Classes, m.In
	}
	return ws
}

// workspace returns ws as a softmax workspace matching m, creating a fresh
// one when ws is nil or was built for a different model shape.
func (m *SoftmaxRegression) workspace(ws Workspace) *softmaxWorkspace {
	if s, ok := ws.(*softmaxWorkspace); ok && s.classes == m.Classes && s.in == m.In {
		return s
	}
	return m.NewWorkspace().(*softmaxWorkspace)
}

// bindView points mat's storage at the weight block of the flat vector p
// and returns the bias block. The shapes were fixed by NewWorkspace.
func (m *SoftmaxRegression) bindView(mat *tensor.Mat, p tensor.Vec) tensor.Vec {
	if len(p) != m.NumParams() {
		panic(fmt.Sprintf("nn: SoftmaxRegression got %d params, want %d", len(p), m.NumParams()))
	}
	mat.Data = p[:m.Classes*m.In]
	return p[m.Classes*m.In:]
}

// GradInto implements GradIntoer. out must not alias params.
func (m *SoftmaxRegression) GradInto(ws Workspace, params tensor.Vec, batch []data.Sample, out tensor.Vec) {
	s := m.workspace(ws)
	b := m.bindView(&s.w, params)
	gb := m.bindView(&s.gw, out)
	out.Zero()
	if len(batch) > 0 {
		inv := 1 / float64(len(batch))
		for _, smp := range batch {
			m.probs(&s.w, b, smp.X, s.p)
			s.p[smp.Y]--
			s.gw.AddOuterInPlace(inv, s.p, smp.X)
			gb.Axpy(inv, s.p)
		}
	}
	if m.L2 != 0 {
		out.Axpy(m.L2, params)
	}
}

// GradStepInto implements GradStepIntoer: out = params − lr·∇L(params, batch)
// with the gradient held in workspace scratch and the step applied as one
// fused pass, replacing the caller's copy-then-axpy pair. out may alias
// params; it must not alias workspace memory. Bit-identical to GradInto
// followed by the axpy step.
func (m *SoftmaxRegression) GradStepInto(ws Workspace, params tensor.Vec, batch []data.Sample, lr float64, out tensor.Vec) {
	s := m.workspace(ws)
	if len(s.gstep) != m.NumParams() {
		s.gstep = tensor.NewVec(m.NumParams())
	}
	m.GradInto(s, params, batch, s.gstep)
	params.AxpyInto(-lr, s.gstep, out)
}

// HVPInto implements HVPIntoer: the analytic Hessian-vector product written
// into out. out must alias neither params nor v.
func (m *SoftmaxRegression) HVPInto(ws Workspace, params tensor.Vec, batch []data.Sample, v, out tensor.Vec) {
	s := m.workspace(ws)
	b := m.bindView(&s.w, params)
	if len(v) != m.NumParams() {
		panic(fmt.Sprintf("nn: HVP direction has %d entries, want %d", len(v), m.NumParams()))
	}
	vb := m.bindView(&s.vw, v)
	ob := m.bindView(&s.gw, out)
	out.Zero()
	if len(batch) > 0 {
		inv := 1 / float64(len(batch))
		for _, smp := range batch {
			m.probs(&s.w, b, smp.X, s.p)
			s.vw.MulVec(smp.X, s.u)
			s.u.AddInPlace(vb)
			pu := s.p.Dot(s.u)
			for c := range s.a {
				s.a[c] = s.p[c]*s.u[c] - s.p[c]*pu
			}
			s.gw.AddOuterInPlace(inv, s.a, smp.X)
			ob.Axpy(inv, s.a)
		}
	}
	if m.L2 != 0 {
		out.Axpy(m.L2, v)
	}
}

// InputGradInto implements InputGradIntoer: ∇_x l(θ, (x, y)) = Wᵀ(p − e_y)
// written into out (length m.In).
func (m *SoftmaxRegression) InputGradInto(ws Workspace, params tensor.Vec, smp data.Sample, _ []data.Sample, out tensor.Vec) {
	s := m.workspace(ws)
	b := m.bindView(&s.w, params)
	m.probs(&s.w, b, smp.X, s.p)
	s.p[smp.Y]--
	s.w.MulVecT(s.p, out)
}

// NumParams implements Model.
func (m *SoftmaxRegression) NumParams() int { return m.Classes*m.In + m.Classes }

// InitParams implements Model.
func (m *SoftmaxRegression) InitParams(r *rng.Rand) tensor.Vec {
	scale := m.InitScale
	if scale == 0 {
		scale = 0.01
	}
	p := tensor.NewVec(m.NumParams())
	for i := 0; i < m.Classes*m.In; i++ {
		p[i] = r.Norm() * scale
	}
	return p
}

// view splits the flat parameter vector into the weight matrix and bias,
// aliasing the underlying storage.
func (m *SoftmaxRegression) view(params tensor.Vec) (*tensor.Mat, tensor.Vec) {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("nn: SoftmaxRegression got %d params, want %d", len(params), m.NumParams()))
	}
	w := tensor.MatFromData(m.Classes, m.In, params[:m.Classes*m.In])
	b := params[m.Classes*m.In:]
	return w, b
}

// probs computes softmax(Wx+b) into out.
func (m *SoftmaxRegression) probs(w *tensor.Mat, b tensor.Vec, x tensor.Vec, out tensor.Vec) {
	w.MulVec(x, out)
	out.AddInPlace(b)
	tensor.Softmax(out, out)
}

// Loss implements Model.
func (m *SoftmaxRegression) Loss(params tensor.Vec, batch []data.Sample) float64 {
	return m.LossWith(nil, params, batch)
}

// LossWith implements LossWither.
func (m *SoftmaxRegression) LossWith(ws Workspace, params tensor.Vec, batch []data.Sample) float64 {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("nn: SoftmaxRegression got %d params, want %d", len(params), m.NumParams()))
	}
	if len(batch) == 0 {
		return m.l2Term(params)
	}
	s := m.workspace(ws)
	b := m.bindView(&s.w, params)
	var total float64
	for _, smp := range batch {
		s.w.MulVec(smp.X, s.u)
		s.u.AddInPlace(b)
		total += tensor.CrossEntropyFromLogits(s.u, smp.Y)
	}
	return total/float64(len(batch)) + m.l2Term(params)
}

func (m *SoftmaxRegression) l2Term(params tensor.Vec) float64 {
	if m.L2 == 0 {
		return 0
	}
	return 0.5 * m.L2 * params.Dot(params)
}

// Grad implements Model. It is the allocating wrapper over GradInto.
func (m *SoftmaxRegression) Grad(params tensor.Vec, batch []data.Sample) tensor.Vec {
	g := tensor.NewVec(m.NumParams())
	m.GradInto(nil, params, batch, g)
	return g
}

// HVP implements HVPComputer: the exact Hessian-vector product of the
// softmax cross-entropy. For a single sample with probabilities p and
// perturbation direction (V, v), let u = Vx + v; then
// ∇²l · (V, v) = ((p∘u − p(pᵀu)) xᵀ, p∘u − p(pᵀu)).
func (m *SoftmaxRegression) HVP(params tensor.Vec, batch []data.Sample, v tensor.Vec) tensor.Vec {
	out := tensor.NewVec(m.NumParams())
	m.HVPInto(nil, params, batch, v, out)
	return out
}

// InputGrad implements InputGradienter: ∇_x l(θ, (x, y)) = Wᵀ(p − e_y).
// The ctx batch is unused (softmax regression has no batch statistics).
func (m *SoftmaxRegression) InputGrad(params tensor.Vec, s data.Sample, _ []data.Sample) tensor.Vec {
	out := tensor.NewVec(m.In)
	m.InputGradInto(nil, params, s, nil, out)
	return out
}

// PredictBatch implements Model.
func (m *SoftmaxRegression) PredictBatch(params tensor.Vec, batch []data.Sample) []int {
	w, b := m.view(params)
	preds := make([]int, len(batch))
	logits := tensor.NewVec(m.Classes)
	for i, s := range batch {
		w.MulVec(s.X, logits)
		logits.AddInPlace(b)
		preds[i] = logits.ArgMax()
	}
	return preds
}

// SmoothnessUpperBound returns a data-dependent upper bound on the
// H-smoothness constant of the empirical loss over batch: the softmax
// cross-entropy Hessian satisfies ‖∇²l‖ ≤ ‖x̃‖²/2 + λ₂ where x̃ = (x, 1).
// The theory package uses it to pick admissible learning rates.
func (m *SoftmaxRegression) SmoothnessUpperBound(batch []data.Sample) float64 {
	var maxSq float64
	for _, s := range batch {
		sq := s.X.Dot(s.X) + 1
		if sq > maxSq {
			maxSq = sq
		}
	}
	return maxSq/2 + m.L2
}

// StrongConvexity returns the strong-convexity modulus μ = λ₂ of the
// regularized loss (0 when unregularized).
func (m *SoftmaxRegression) StrongConvexity() float64 { return math.Max(m.L2, 0) }
