package nn

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// SoftmaxRegression is multinomial logistic regression with cross-entropy
// loss and optional L2 regularization:
//
//	l(θ, (x, y)) = −log softmax(Wx + b)[y] + (λ₂/2)‖θ‖².
//
// With λ₂ > 0 the empirical loss is λ₂-strongly convex, matching
// Assumption 1 of the paper; it is H-smooth with H ≤ ‖x‖²/2 + λ₂.
// Parameters are laid out as the row-major C×In weight matrix followed by
// the C bias entries.
type SoftmaxRegression struct {
	// In is the input dimension; Classes the number of labels.
	In, Classes int
	// L2 is the λ₂ regularization coefficient (may be zero).
	L2 float64
	// InitScale is the standard deviation of the weight initialization
	// (biases start at zero). Zero means 0.01.
	InitScale float64
}

var (
	_ Model           = (*SoftmaxRegression)(nil)
	_ HVPComputer     = (*SoftmaxRegression)(nil)
	_ InputGradienter = (*SoftmaxRegression)(nil)
)

// NumParams implements Model.
func (m *SoftmaxRegression) NumParams() int { return m.Classes*m.In + m.Classes }

// InitParams implements Model.
func (m *SoftmaxRegression) InitParams(r *rng.Rand) tensor.Vec {
	scale := m.InitScale
	if scale == 0 {
		scale = 0.01
	}
	p := tensor.NewVec(m.NumParams())
	for i := 0; i < m.Classes*m.In; i++ {
		p[i] = r.Norm() * scale
	}
	return p
}

// view splits the flat parameter vector into the weight matrix and bias,
// aliasing the underlying storage.
func (m *SoftmaxRegression) view(params tensor.Vec) (*tensor.Mat, tensor.Vec) {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("nn: SoftmaxRegression got %d params, want %d", len(params), m.NumParams()))
	}
	w := tensor.MatFromData(m.Classes, m.In, params[:m.Classes*m.In])
	b := params[m.Classes*m.In:]
	return w, b
}

// probs computes softmax(Wx+b) into out.
func (m *SoftmaxRegression) probs(w *tensor.Mat, b tensor.Vec, x tensor.Vec, out tensor.Vec) {
	w.MulVec(x, out)
	out.AddInPlace(b)
	tensor.Softmax(out, out)
}

// Loss implements Model.
func (m *SoftmaxRegression) Loss(params tensor.Vec, batch []data.Sample) float64 {
	w, b := m.view(params)
	if len(batch) == 0 {
		return m.l2Term(params)
	}
	logits := tensor.NewVec(m.Classes)
	var total float64
	for _, s := range batch {
		w.MulVec(s.X, logits)
		logits.AddInPlace(b)
		total += tensor.CrossEntropyFromLogits(logits, s.Y)
	}
	return total/float64(len(batch)) + m.l2Term(params)
}

func (m *SoftmaxRegression) l2Term(params tensor.Vec) float64 {
	if m.L2 == 0 {
		return 0
	}
	return 0.5 * m.L2 * params.Dot(params)
}

// Grad implements Model.
func (m *SoftmaxRegression) Grad(params tensor.Vec, batch []data.Sample) tensor.Vec {
	w, b := m.view(params)
	g := tensor.NewVec(m.NumParams())
	gw, gb := m.view(g)
	if len(batch) > 0 {
		inv := 1 / float64(len(batch))
		p := tensor.NewVec(m.Classes)
		for _, s := range batch {
			m.probs(w, b, s.X, p)
			p[s.Y]--
			gw.AddOuterInPlace(inv, p, s.X)
			gb.Axpy(inv, p)
		}
	}
	if m.L2 != 0 {
		g.Axpy(m.L2, params)
	}
	return g
}

// HVP implements HVPComputer: the exact Hessian-vector product of the
// softmax cross-entropy. For a single sample with probabilities p and
// perturbation direction (V, v), let u = Vx + v; then
// ∇²l · (V, v) = ((p∘u − p(pᵀu)) xᵀ, p∘u − p(pᵀu)).
func (m *SoftmaxRegression) HVP(params tensor.Vec, batch []data.Sample, v tensor.Vec) tensor.Vec {
	w, b := m.view(params)
	if len(v) != m.NumParams() {
		panic(fmt.Sprintf("nn: HVP direction has %d entries, want %d", len(v), m.NumParams()))
	}
	vw := tensor.MatFromData(m.Classes, m.In, v[:m.Classes*m.In])
	vb := v[m.Classes*m.In:]

	out := tensor.NewVec(m.NumParams())
	ow, ob := m.view(out)
	if len(batch) > 0 {
		inv := 1 / float64(len(batch))
		p := tensor.NewVec(m.Classes)
		u := tensor.NewVec(m.Classes)
		a := tensor.NewVec(m.Classes)
		for _, s := range batch {
			m.probs(w, b, s.X, p)
			vw.MulVec(s.X, u)
			u.AddInPlace(vb)
			pu := p.Dot(u)
			for c := range a {
				a[c] = p[c]*u[c] - p[c]*pu
			}
			ow.AddOuterInPlace(inv, a, s.X)
			ob.Axpy(inv, a)
		}
	}
	if m.L2 != 0 {
		out.Axpy(m.L2, v)
	}
	return out
}

// InputGrad implements InputGradienter: ∇_x l(θ, (x, y)) = Wᵀ(p − e_y).
// The ctx batch is unused (softmax regression has no batch statistics).
func (m *SoftmaxRegression) InputGrad(params tensor.Vec, s data.Sample, _ []data.Sample) tensor.Vec {
	w, b := m.view(params)
	p := tensor.NewVec(m.Classes)
	m.probs(w, b, s.X, p)
	p[s.Y]--
	out := tensor.NewVec(m.In)
	w.MulVecT(p, out)
	return out
}

// PredictBatch implements Model.
func (m *SoftmaxRegression) PredictBatch(params tensor.Vec, batch []data.Sample) []int {
	w, b := m.view(params)
	preds := make([]int, len(batch))
	logits := tensor.NewVec(m.Classes)
	for i, s := range batch {
		w.MulVec(s.X, logits)
		logits.AddInPlace(b)
		preds[i] = logits.ArgMax()
	}
	return preds
}

// SmoothnessUpperBound returns a data-dependent upper bound on the
// H-smoothness constant of the empirical loss over batch: the softmax
// cross-entropy Hessian satisfies ‖∇²l‖ ≤ ‖x̃‖²/2 + λ₂ where x̃ = (x, 1).
// The theory package uses it to pick admissible learning rates.
func (m *SoftmaxRegression) SmoothnessUpperBound(batch []data.Sample) float64 {
	var maxSq float64
	for _, s := range batch {
		sq := s.X.Dot(s.X) + 1
		if sq > maxSq {
			maxSq = sq
		}
	}
	return maxSq/2 + m.L2
}

// StrongConvexity returns the strong-convexity modulus μ = λ₂ of the
// regularized loss (0 when unregularized).
func (m *SoftmaxRegression) StrongConvexity() float64 { return math.Max(m.L2, 0) }
