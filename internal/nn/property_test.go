package nn

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// TestSoftmaxGradPropertyRandomShapes checks the analytic gradient against
// the numerical one across randomly drawn model shapes, batch sizes, and
// parameter settings.
func TestSoftmaxGradPropertyRandomShapes(t *testing.T) {
	root := rng.New(77)
	check := func(seed uint16) bool {
		r := root.Split(uint64(seed))
		m := &SoftmaxRegression{
			In:      1 + r.IntN(8),
			Classes: 2 + r.IntN(5),
			L2:      float64(r.IntN(3)) * 0.05,
		}
		p := m.InitParams(r)
		for i := range p {
			p[i] = r.Norm() * 0.5
		}
		batch := randBatch(r, 1+r.IntN(6), m.In, m.Classes)
		got := m.Grad(p, batch)
		want := NumericalGrad(m, p, batch)
		return relErr(got, want) < 1e-5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSoftmaxHVPPropertyRandomShapes checks HVP symmetry and agreement with
// finite differences across random shapes.
func TestSoftmaxHVPPropertyRandomShapes(t *testing.T) {
	root := rng.New(78)
	check := func(seed uint16) bool {
		r := root.Split(uint64(seed))
		m := &SoftmaxRegression{In: 1 + r.IntN(6), Classes: 2 + r.IntN(4)}
		p := m.InitParams(r)
		batch := randBatch(r, 1+r.IntN(5), m.In, m.Classes)
		v := tensor.NewVec(m.NumParams())
		w := tensor.NewVec(m.NumParams())
		for i := range v {
			v[i], w[i] = r.Norm(), r.Norm()
		}
		hv := m.HVP(p, batch, v)
		// Symmetry.
		lhs := hv.Dot(w)
		rhs := v.Dot(m.HVP(p, batch, w))
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			return false
		}
		// Finite-difference agreement.
		return relErr(hv, FiniteDiffHVP(m, p, batch, v)) < 1e-4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMLPGradPropertyRandomShapes checks manual backprop against numerical
// gradients across random architectures (with and without batch norm).
func TestMLPGradPropertyRandomShapes(t *testing.T) {
	root := rng.New(79)
	check := func(seed uint16) bool {
		r := root.Split(uint64(seed))
		in := 2 + r.IntN(4)
		classes := 2 + r.IntN(3)
		dims := []int{in}
		for h := 0; h < 1+r.IntN(2); h++ {
			dims = append(dims, 2+r.IntN(5))
		}
		dims = append(dims, classes)
		m, err := NewMLP(MLPConfig{Dims: dims, BatchNorm: seed%2 == 0, L2: float64(r.IntN(2)) * 0.05})
		if err != nil {
			return false
		}
		p := m.InitParams(r)
		batch := randBatch(r, 3+r.IntN(5), in, classes)
		// ReLU is non-differentiable at 0: analytic backprop picks the 0
		// subgradient while central differences report 0.5. Skip draws
		// whose pre-activations sit on (or numerically at) the kink —
		// dead units make this exact-zero case common in deep stacks.
		c := m.forward(m.workspace(nil), m.view(p), batch, nil)
		for l := range c.preAct {
			for j := range c.preAct[l] {
				for _, x := range c.preAct[l][j] {
					if math.Abs(x) < 1e-4 {
						return true // vacuously pass: kink-adjacent draw
					}
				}
			}
		}
		got := m.Grad(p, batch)
		want := NumericalGrad(m, p, batch)
		return relErr(got, want) < 5e-3
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestLossNonNegativeProperty checks that the cross-entropy-based losses are
// always non-negative, for both model families.
func TestLossNonNegativeProperty(t *testing.T) {
	root := rng.New(80)
	check := func(seed uint16) bool {
		r := root.Split(uint64(seed))
		m := &SoftmaxRegression{In: 1 + r.IntN(6), Classes: 2 + r.IntN(4), L2: 0.01}
		p := m.InitParams(r)
		for i := range p {
			p[i] = 3 * r.Norm()
		}
		batch := randBatch(r, 1+r.IntN(8), m.In, m.Classes)
		return m.Loss(p, batch) >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPredictionsMatchArgmaxOfLossGradientStationarity sanity-checks that
// a heavily trained model predicts the training labels (interpolation on a
// tiny separable batch).
func TestPredictionsMatchTrainingLabelsAfterInterpolation(t *testing.T) {
	r := rng.New(81)
	m := &SoftmaxRegression{In: 4, Classes: 3}
	batch := []data.Sample{
		{X: tensor.Vec{5, 0, 0, 0}, Y: 0},
		{X: tensor.Vec{0, 5, 0, 0}, Y: 1},
		{X: tensor.Vec{0, 0, 5, 0}, Y: 2},
	}
	p := m.InitParams(r)
	for i := 0; i < 400; i++ {
		p.Axpy(-0.5, m.Grad(p, batch))
	}
	preds := m.PredictBatch(p, batch)
	for i, s := range batch {
		if preds[i] != s.Y {
			t.Errorf("sample %d predicted %d, want %d", i, preds[i], s.Y)
		}
	}
}
