package nn

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// _bnEps is the batch-normalization variance floor.
const _bnEps = 1e-5

// MLPConfig describes a feed-forward network: Dims[0] inputs, hidden layers
// Dims[1:len-1] (each optionally batch-normalized, then ReLU), and a final
// linear layer producing Dims[len-1] logits. This is the Sent140 model shape
// from §VI-A (hidden sizes 256/128/64 with batch norm and ReLU).
type MLPConfig struct {
	// Dims is [inputDim, hidden..., numClasses]; needs at least 2 entries.
	Dims []int
	// BatchNorm inserts batch normalization before each hidden ReLU.
	BatchNorm bool
	// L2 is an optional ridge coefficient on all parameters.
	L2 float64
}

// MLP is a multi-layer perceptron with manual backpropagation. Batch
// normalization uses the statistics of whatever batch is being evaluated
// (transductive batch statistics — the convention of the original MAML
// implementation, which keeps no running averages at meta-test time).
type MLP struct {
	dims      []int
	batchNorm bool
	l2        float64
	numParams int
}

var _ Model = (*MLP)(nil)
var _ InputGradienter = (*MLP)(nil)

// NewMLP validates cfg and returns the model.
func NewMLP(cfg MLPConfig) (*MLP, error) {
	if len(cfg.Dims) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least input and output dims, got %v", cfg.Dims)
	}
	for i, d := range cfg.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("nn: MLP dim %d is %d, must be positive", i, d)
		}
	}
	if cfg.L2 < 0 {
		return nil, fmt.Errorf("nn: negative L2 %v", cfg.L2)
	}
	m := &MLP{
		dims:      append([]int(nil), cfg.Dims...),
		batchNorm: cfg.BatchNorm,
		l2:        cfg.L2,
	}
	for l := 0; l < m.layers(); l++ {
		m.numParams += m.dims[l+1]*m.dims[l] + m.dims[l+1]
		if m.batchNorm && l < m.layers()-1 {
			m.numParams += 2 * m.dims[l+1]
		}
	}
	return m, nil
}

// layers returns the number of linear layers.
func (m *MLP) layers() int { return len(m.dims) - 1 }

// NumClasses returns the output dimension.
func (m *MLP) NumClasses() int { return m.dims[len(m.dims)-1] }

// Dims returns a copy of the layer dimensions [in, hidden..., classes].
func (m *MLP) Dims() []int { return append([]int(nil), m.dims...) }

// BatchNorm reports whether hidden layers are batch-normalized.
func (m *MLP) BatchNorm() bool { return m.batchNorm }

// L2 returns the ridge coefficient.
func (m *MLP) L2() float64 { return m.l2 }

// InputDim returns the input dimension.
func (m *MLP) InputDim() int { return m.dims[0] }

// NumParams implements Model.
func (m *MLP) NumParams() int { return m.numParams }

// mlpView is a set of matrix/vector windows into a flat parameter vector.
type mlpView struct {
	w           []*tensor.Mat
	b           []tensor.Vec
	gamma, beta []tensor.Vec // per hidden layer; nil without batch norm
}

func (m *MLP) view(params tensor.Vec) mlpView {
	if len(params) != m.numParams {
		panic(fmt.Sprintf("nn: MLP got %d params, want %d", len(params), m.numParams))
	}
	v := mlpView{
		w: make([]*tensor.Mat, m.layers()),
		b: make([]tensor.Vec, m.layers()),
	}
	if m.batchNorm {
		v.gamma = make([]tensor.Vec, m.layers()-1)
		v.beta = make([]tensor.Vec, m.layers()-1)
	}
	off := 0
	take := func(n int) tensor.Vec {
		s := params[off : off+n]
		off += n
		return s
	}
	for l := 0; l < m.layers(); l++ {
		out, in := m.dims[l+1], m.dims[l]
		v.w[l] = tensor.MatFromData(out, in, take(out*in))
		v.b[l] = take(out)
		if m.batchNorm && l < m.layers()-1 {
			v.gamma[l] = take(out)
			v.beta[l] = take(out)
		}
	}
	return v
}

// InitParams implements Model: He initialization for weights, zero biases,
// unit gammas, zero betas.
func (m *MLP) InitParams(r *rng.Rand) tensor.Vec {
	p := tensor.NewVec(m.numParams)
	v := m.view(p)
	for l := 0; l < m.layers(); l++ {
		scale := math.Sqrt(2 / float64(m.dims[l]))
		for i := range v.w[l].Data {
			v.w[l].Data[i] = r.Norm() * scale
		}
		if m.batchNorm && l < m.layers()-1 {
			v.gamma[l].Fill(1)
		}
	}
	return p
}

// mlpCache stores the forward-pass intermediates needed by backprop.
type mlpCache struct {
	// inputs[l][j] is the input to linear layer l for sample j.
	inputs [][]tensor.Vec
	// z[l][j] is the linear output of hidden layer l (before BN).
	z [][]tensor.Vec
	// zhat[l][j] is the normalized value (BN only).
	zhat [][]tensor.Vec
	// preAct[l][j] is the value fed to ReLU (after BN scale/shift, or z).
	preAct [][]tensor.Vec
	// mean[l], istd[l] are the per-feature batch statistics of hidden
	// layer l (BN only).
	mean, istd []tensor.Vec
	logits     []tensor.Vec
}

// forward runs the network on a batch; stats, when non-nil, overrides the
// batch-normalization statistics (used by InputGrad's frozen-BN mode).
func (m *MLP) forward(v mlpView, batch []data.Sample, frozen *bnStats) *mlpCache {
	n := len(batch)
	hidden := m.layers() - 1
	c := &mlpCache{
		inputs: make([][]tensor.Vec, m.layers()),
		z:      make([][]tensor.Vec, hidden),
		zhat:   make([][]tensor.Vec, hidden),
		preAct: make([][]tensor.Vec, hidden),
		mean:   make([]tensor.Vec, hidden),
		istd:   make([]tensor.Vec, hidden),
		logits: make([]tensor.Vec, n),
	}
	c.inputs[0] = make([]tensor.Vec, n)
	for j, s := range batch {
		if len(s.X) != m.dims[0] {
			panic(fmt.Sprintf("nn: MLP input dim %d, want %d", len(s.X), m.dims[0]))
		}
		c.inputs[0][j] = s.X
	}

	for l := 0; l < hidden; l++ {
		dim := m.dims[l+1]
		c.z[l] = make([]tensor.Vec, n)
		for j := range batch {
			z := tensor.NewVec(dim)
			v.w[l].MulVec(c.inputs[l][j], z)
			z.AddInPlace(v.b[l])
			c.z[l][j] = z
		}
		act := c.z[l]
		if m.batchNorm {
			if frozen != nil {
				c.mean[l], c.istd[l] = frozen.mean[l], frozen.istd[l]
			} else {
				c.mean[l], c.istd[l] = batchStats(c.z[l], dim)
			}
			c.zhat[l] = make([]tensor.Vec, n)
			c.preAct[l] = make([]tensor.Vec, n)
			for j := range batch {
				zh := tensor.NewVec(dim)
				pa := tensor.NewVec(dim)
				for f := 0; f < dim; f++ {
					zh[f] = (c.z[l][j][f] - c.mean[l][f]) * c.istd[l][f]
					pa[f] = v.gamma[l][f]*zh[f] + v.beta[l][f]
				}
				c.zhat[l][j] = zh
				c.preAct[l][j] = pa
			}
			act = c.preAct[l]
		} else {
			c.preAct[l] = c.z[l]
		}
		// ReLU into the next layer's inputs.
		c.inputs[l+1] = make([]tensor.Vec, n)
		for j := range batch {
			h := tensor.NewVec(dim)
			for f, a := range act[j] {
				if a > 0 {
					h[f] = a
				}
			}
			c.inputs[l+1][j] = h
		}
	}

	last := m.layers() - 1
	for j := range batch {
		logit := tensor.NewVec(m.dims[last+1])
		v.w[last].MulVec(c.inputs[last][j], logit)
		logit.AddInPlace(v.b[last])
		c.logits[j] = logit
	}
	return c
}

// bnStats carries frozen batch-normalization statistics.
type bnStats struct {
	mean, istd []tensor.Vec
}

func batchStats(zs []tensor.Vec, dim int) (mean, istd tensor.Vec) {
	n := float64(len(zs))
	mean = tensor.NewVec(dim)
	for _, z := range zs {
		mean.AddInPlace(z)
	}
	mean.ScaleInPlace(1 / n)
	variance := tensor.NewVec(dim)
	for _, z := range zs {
		for f := 0; f < dim; f++ {
			d := z[f] - mean[f]
			variance[f] += d * d
		}
	}
	istd = tensor.NewVec(dim)
	for f := 0; f < dim; f++ {
		istd[f] = 1 / math.Sqrt(variance[f]/n+_bnEps)
	}
	return mean, istd
}

// Loss implements Model.
func (m *MLP) Loss(params tensor.Vec, batch []data.Sample) float64 {
	if len(batch) == 0 {
		return m.l2Term(params)
	}
	v := m.view(params)
	c := m.forward(v, batch, nil)
	var total float64
	for j, s := range batch {
		total += tensor.CrossEntropyFromLogits(c.logits[j], s.Y)
	}
	return total/float64(len(batch)) + m.l2Term(params)
}

func (m *MLP) l2Term(params tensor.Vec) float64 {
	if m.l2 == 0 {
		return 0
	}
	return 0.5 * m.l2 * params.Dot(params)
}

// Grad implements Model via full manual backpropagation, including the
// gradient through the batch-normalization statistics.
func (m *MLP) Grad(params tensor.Vec, batch []data.Sample) tensor.Vec {
	g := tensor.NewVec(m.numParams)
	if len(batch) > 0 {
		v := m.view(params)
		gv := m.view(g)
		c := m.forward(v, batch, nil)
		m.backward(v, gv, c, batch, nil)
	}
	if m.l2 != 0 {
		g.Axpy(m.l2, params)
	}
	return g
}

// backward accumulates parameter gradients into gv. If dx is non-nil it also
// accumulates the loss gradient with respect to each input sample into
// dx[j]; in that mode BN statistics are treated as constants (frozen).
func (m *MLP) backward(v, gv mlpView, c *mlpCache, batch []data.Sample, dx []tensor.Vec) {
	n := len(batch)
	invN := 1 / float64(n)
	hidden := m.layers() - 1
	last := m.layers() - 1

	// d holds ∂loss/∂(input of layer l+1) per sample, i.e. post-ReLU grads.
	d := make([]tensor.Vec, n)
	probs := tensor.NewVec(m.dims[last+1])
	for j, s := range batch {
		tensor.Softmax(c.logits[j], probs)
		probs[s.Y]--
		probs.ScaleInPlace(invN)
		gv.w[last].AddOuterInPlace(1, probs, c.inputs[last][j])
		gv.b[last].AddInPlace(probs)
		dj := tensor.NewVec(m.dims[last])
		v.w[last].MulVecT(probs, dj)
		d[j] = dj
	}

	for l := hidden - 1; l >= 0; l-- {
		dim := m.dims[l+1]
		// Through ReLU: dy[j] = d[j] ∘ 1[preAct > 0].
		dy := d
		for j := 0; j < n; j++ {
			pa := c.preAct[l][j]
			for f := 0; f < dim; f++ {
				if pa[f] <= 0 {
					dy[j][f] = 0
				}
			}
		}

		var dz []tensor.Vec
		if m.batchNorm {
			// Through the affine BN parameters.
			dzhat := make([]tensor.Vec, n)
			for j := 0; j < n; j++ {
				dzh := tensor.NewVec(dim)
				for f := 0; f < dim; f++ {
					gv.gamma[l][f] += dy[j][f] * c.zhat[l][j][f]
					gv.beta[l][f] += dy[j][f]
					dzh[f] = dy[j][f] * v.gamma[l][f]
				}
				dzhat[j] = dzh
			}
			if dx != nil {
				// Frozen statistics: dz = dzhat * istd.
				dz = dzhat
				for j := 0; j < n; j++ {
					for f := 0; f < dim; f++ {
						dz[j][f] *= c.istd[l][f]
					}
				}
			} else {
				dz = bnBackward(dzhat, c.z[l], c.mean[l], c.istd[l])
			}
		} else {
			dz = dy
		}

		for j := 0; j < n; j++ {
			gv.w[l].AddOuterInPlace(1, dz[j], c.inputs[l][j])
			gv.b[l].AddInPlace(dz[j])
			prev := tensor.NewVec(m.dims[l])
			v.w[l].MulVecT(dz[j], prev)
			d[j] = prev
		}
	}

	if dx != nil {
		for j := 0; j < n; j++ {
			dx[j] = d[j]
		}
	}
}

// bnBackward propagates gradients through batch normalization, including the
// dependence of the batch mean and variance on every sample.
func bnBackward(dzhat, z []tensor.Vec, mean, istd tensor.Vec) []tensor.Vec {
	n := len(dzhat)
	dim := len(mean)
	invN := 1 / float64(n)

	sumDzhat := tensor.NewVec(dim)
	sumDzhatZc := tensor.NewVec(dim) // Σ_j dzhat_j ∘ (z_j − mean)
	for j := 0; j < n; j++ {
		for f := 0; f < dim; f++ {
			sumDzhat[f] += dzhat[j][f]
			sumDzhatZc[f] += dzhat[j][f] * (z[j][f] - mean[f])
		}
	}

	dz := make([]tensor.Vec, n)
	for j := 0; j < n; j++ {
		dj := tensor.NewVec(dim)
		for f := 0; f < dim; f++ {
			zc := z[j][f] - mean[f]
			// Standard BN backward:
			// dz = istd*(dzhat − mean(dzhat) − zhat*mean(dzhat∘zhat_like))
			dj[f] = istd[f] * (dzhat[j][f] - invN*sumDzhat[f] - zc*istd[f]*istd[f]*invN*sumDzhatZc[f])
		}
		dz[j] = dj
	}
	return dz
}

// InputGrad implements InputGradienter. For batch-normalized networks the
// statistics are taken from ctx and frozen (constant w.r.t. x); without
// batch norm the result is the exact per-sample input gradient and ctx is
// ignored.
func (m *MLP) InputGrad(params tensor.Vec, s data.Sample, ctx []data.Sample) tensor.Vec {
	v := m.view(params)
	var frozen *bnStats
	if m.batchNorm {
		if len(ctx) == 0 {
			ctx = []data.Sample{s}
		}
		ref := m.forward(v, ctx, nil)
		frozen = &bnStats{mean: ref.mean, istd: ref.istd}
	}
	batch := []data.Sample{s}
	c := m.forward(v, batch, frozen)
	gv := m.view(tensor.NewVec(m.numParams)) // scratch; parameter grads discarded
	dx := make([]tensor.Vec, 1)
	m.backward(v, gv, c, batch, dx)
	return dx[0]
}

// PredictBatch implements Model, using transductive batch statistics for
// batch-normalized networks.
func (m *MLP) PredictBatch(params tensor.Vec, batch []data.Sample) []int {
	if len(batch) == 0 {
		return nil
	}
	v := m.view(params)
	c := m.forward(v, batch, nil)
	preds := make([]int, len(batch))
	for j := range batch {
		preds[j] = c.logits[j].ArgMax()
	}
	return preds
}
