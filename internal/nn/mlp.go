package nn

import (
	"fmt"
	"math"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// _bnEps is the batch-normalization variance floor.
const _bnEps = 1e-5

// MLPConfig describes a feed-forward network: Dims[0] inputs, hidden layers
// Dims[1:len-1] (each optionally batch-normalized, then ReLU), and a final
// linear layer producing Dims[len-1] logits. This is the Sent140 model shape
// from §VI-A (hidden sizes 256/128/64 with batch norm and ReLU).
type MLPConfig struct {
	// Dims is [inputDim, hidden..., numClasses]; needs at least 2 entries.
	Dims []int
	// BatchNorm inserts batch normalization before each hidden ReLU.
	BatchNorm bool
	// L2 is an optional ridge coefficient on all parameters.
	L2 float64
}

// MLP is a multi-layer perceptron with manual backpropagation. Batch
// normalization uses the statistics of whatever batch is being evaluated
// (transductive batch statistics — the convention of the original MAML
// implementation, which keeps no running averages at meta-test time).
type MLP struct {
	dims      []int
	batchNorm bool
	l2        float64
	numParams int
}

var (
	_ Model             = (*MLP)(nil)
	_ InputGradienter   = (*MLP)(nil)
	_ WorkspaceProvider = (*MLP)(nil)
	_ GradIntoer        = (*MLP)(nil)
	_ GradStepIntoer    = (*MLP)(nil)
	_ InputGradIntoer   = (*MLP)(nil)
	_ LossWither        = (*MLP)(nil)
)

// NewMLP validates cfg and returns the model.
func NewMLP(cfg MLPConfig) (*MLP, error) {
	if len(cfg.Dims) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least input and output dims, got %v", cfg.Dims)
	}
	for i, d := range cfg.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("nn: MLP dim %d is %d, must be positive", i, d)
		}
	}
	if cfg.L2 < 0 {
		return nil, fmt.Errorf("nn: negative L2 %v", cfg.L2)
	}
	m := &MLP{
		dims:      append([]int(nil), cfg.Dims...),
		batchNorm: cfg.BatchNorm,
		l2:        cfg.L2,
	}
	for l := 0; l < m.layers(); l++ {
		m.numParams += m.dims[l+1]*m.dims[l] + m.dims[l+1]
		if m.batchNorm && l < m.layers()-1 {
			m.numParams += 2 * m.dims[l+1]
		}
	}
	return m, nil
}

// layers returns the number of linear layers.
func (m *MLP) layers() int { return len(m.dims) - 1 }

// NumClasses returns the output dimension.
func (m *MLP) NumClasses() int { return m.dims[len(m.dims)-1] }

// Dims returns a copy of the layer dimensions [in, hidden..., classes].
func (m *MLP) Dims() []int { return append([]int(nil), m.dims...) }

// BatchNorm reports whether hidden layers are batch-normalized.
func (m *MLP) BatchNorm() bool { return m.batchNorm }

// L2 returns the ridge coefficient.
func (m *MLP) L2() float64 { return m.l2 }

// InputDim returns the input dimension.
func (m *MLP) InputDim() int { return m.dims[0] }

// NumParams implements Model.
func (m *MLP) NumParams() int { return m.numParams }

// mlpView is a set of matrix/vector windows into a flat parameter vector.
type mlpView struct {
	w           []*tensor.Mat
	b           []tensor.Vec
	gamma, beta []tensor.Vec // per hidden layer; nil without batch norm
}

// viewInto (re)binds v's windows onto params. The view skeleton (Mat
// headers and per-layer slices) is allocated on first use and reused on
// every rebind, so steady-state calls allocate nothing.
func (m *MLP) viewInto(v *mlpView, params tensor.Vec) {
	if len(params) != m.numParams {
		panic(fmt.Sprintf("nn: MLP got %d params, want %d", len(params), m.numParams))
	}
	if v.w == nil {
		v.w = make([]*tensor.Mat, m.layers())
		v.b = make([]tensor.Vec, m.layers())
		for l := range v.w {
			v.w[l] = &tensor.Mat{Rows: m.dims[l+1], Cols: m.dims[l]}
		}
		if m.batchNorm {
			v.gamma = make([]tensor.Vec, m.layers()-1)
			v.beta = make([]tensor.Vec, m.layers()-1)
		}
	}
	off := 0
	for l := 0; l < m.layers(); l++ {
		out, in := m.dims[l+1], m.dims[l]
		v.w[l].Data = params[off : off+out*in]
		off += out * in
		v.b[l] = params[off : off+out]
		off += out
		if m.batchNorm && l < m.layers()-1 {
			v.gamma[l] = params[off : off+out]
			off += out
			v.beta[l] = params[off : off+out]
			off += out
		}
	}
}

func (m *MLP) view(params tensor.Vec) mlpView {
	var v mlpView
	m.viewInto(&v, params)
	return v
}

// InitParams implements Model: He initialization for weights, zero biases,
// unit gammas, zero betas.
func (m *MLP) InitParams(r *rng.Rand) tensor.Vec {
	p := tensor.NewVec(m.numParams)
	v := m.view(p)
	for l := 0; l < m.layers(); l++ {
		scale := math.Sqrt(2 / float64(m.dims[l]))
		for i := range v.w[l].Data {
			v.w[l].Data[i] = r.Norm() * scale
		}
		if m.batchNorm && l < m.layers()-1 {
			v.gamma[l].Fill(1)
		}
	}
	return p
}

// mlpCache is the forward-pass view handed to backprop: per-call reslices
// of the workspace buffers, sized to the current batch.
type mlpCache struct {
	// inputs[l][j] is the input to linear layer l for sample j.
	inputs [][]tensor.Vec
	// z[l][j] is the linear output of hidden layer l (before BN).
	z [][]tensor.Vec
	// zhat[l][j] is the normalized value (BN only).
	zhat [][]tensor.Vec
	// preAct[l][j] is the value fed to ReLU (after BN scale/shift, or z).
	preAct [][]tensor.Vec
	// mean[l], istd[l] are the per-feature batch statistics of hidden
	// layer l (BN only).
	mean, istd []tensor.Vec
	logits     []tensor.Vec
}

// mlpWorkspace owns every intermediate buffer of the MLP's forward and
// backward passes, sized once (growing only when a larger batch arrives)
// and reused, so GradInto allocates nothing in steady state. A workspace
// belongs to one goroutine.
type mlpWorkspace struct {
	m *MLP

	// Forward buffers, capacity fwCap samples per layer.
	fwCap  int
	inputs [][]tensor.Vec // [layers][fwCap]; [0] holds aliases of the batch
	z      [][]tensor.Vec // [hidden][fwCap]
	zhat   [][]tensor.Vec // [hidden][fwCap], BN only
	preAct [][]tensor.Vec // [hidden][fwCap], BN only
	mean   []tensor.Vec   // [hidden]
	istd   []tensor.Vec   // [hidden]
	logits []tensor.Vec   // [fwCap]
	cache  mlpCache       // per-call reslices of the buffers above

	// Backward buffers, capacity bwCap samples per layer.
	bwCap                int
	delta                [][]tensor.Vec // [layers][bwCap]; delta[l][j] sized dims[l]
	dzhat                [][]tensor.Vec // [hidden][bwCap], BN only
	probs                []tensor.Vec   // [bwCap][classes]; per-sample softmax grads
	sumDzhat, sumDzhatZc tensor.Vec     // sized max hidden dim

	// Rebindable parameter and gradient views, plus InputGrad scratch.
	pv, gv mlpView
	igrad  tensor.Vec // discarded parameter grads of InputGradInto
	gstep  tensor.Vec // gradient accumulator of the fused GradStepInto
	dx1    []tensor.Vec
	frozen bnStats

	fdBufs
}

func (*mlpWorkspace) isWorkspace() {}

// NewWorkspace implements WorkspaceProvider.
func (m *MLP) NewWorkspace() Workspace {
	hidden := m.layers() - 1
	ws := &mlpWorkspace{
		m:      m,
		inputs: make([][]tensor.Vec, m.layers()),
		z:      make([][]tensor.Vec, hidden),
		zhat:   make([][]tensor.Vec, hidden),
		preAct: make([][]tensor.Vec, hidden),
		mean:   make([]tensor.Vec, hidden),
		istd:   make([]tensor.Vec, hidden),
		delta:  make([][]tensor.Vec, m.layers()),
		dzhat:  make([][]tensor.Vec, hidden),
		dx1:    make([]tensor.Vec, 1),
	}
	maxHidden := 0
	for l := 0; l < hidden; l++ {
		dim := m.dims[l+1]
		ws.mean[l] = tensor.NewVec(dim)
		ws.istd[l] = tensor.NewVec(dim)
		if dim > maxHidden {
			maxHidden = dim
		}
	}
	ws.sumDzhat = tensor.NewVec(maxHidden)
	ws.sumDzhatZc = tensor.NewVec(maxHidden)
	ws.cache.inputs = make([][]tensor.Vec, m.layers())
	ws.cache.z = make([][]tensor.Vec, hidden)
	ws.cache.zhat = make([][]tensor.Vec, hidden)
	ws.cache.preAct = make([][]tensor.Vec, hidden)
	ws.cache.mean = make([]tensor.Vec, hidden)
	ws.cache.istd = make([]tensor.Vec, hidden)
	return ws
}

// workspace returns ws as an MLP workspace for m, creating a temporary one
// when ws is nil or belongs to a different model.
func (m *MLP) workspace(ws Workspace) *mlpWorkspace {
	if w, ok := ws.(*mlpWorkspace); ok && w.m == m {
		return w
	}
	return m.NewWorkspace().(*mlpWorkspace)
}

// allocVecs returns n vectors of length dim carved out of one backing
// array.
func allocVecs(n, dim int) []tensor.Vec {
	backing := tensor.NewVec(n * dim)
	out := make([]tensor.Vec, n)
	for j := range out {
		out[j] = backing[j*dim : (j+1)*dim]
	}
	return out
}

func (ws *mlpWorkspace) ensureForward(n int) {
	if n <= ws.fwCap {
		return
	}
	m := ws.m
	ws.fwCap = n
	ws.inputs[0] = make([]tensor.Vec, n) // aliases of the batch, no backing
	for l := 1; l < m.layers(); l++ {
		ws.inputs[l] = allocVecs(n, m.dims[l])
	}
	for l := 0; l < m.layers()-1; l++ {
		dim := m.dims[l+1]
		ws.z[l] = allocVecs(n, dim)
		if m.batchNorm {
			ws.zhat[l] = allocVecs(n, dim)
			ws.preAct[l] = allocVecs(n, dim)
		}
	}
	ws.logits = allocVecs(n, m.NumClasses())
}

func (ws *mlpWorkspace) ensureBackward(n int) {
	if n <= ws.bwCap {
		return
	}
	m := ws.m
	ws.bwCap = n
	for l := 0; l < m.layers(); l++ {
		ws.delta[l] = allocVecs(n, m.dims[l])
	}
	ws.probs = allocVecs(n, m.NumClasses())
	if m.batchNorm {
		for l := 0; l < m.layers()-1; l++ {
			ws.dzhat[l] = allocVecs(n, m.dims[l+1])
		}
	}
}

// forward runs the network on a batch using ws's buffers; frozen, when
// non-nil, overrides the batch-normalization statistics (used by
// InputGrad's frozen-BN mode). The returned cache aliases ws and is valid
// until the next forward on the same workspace.
func (m *MLP) forward(ws *mlpWorkspace, v mlpView, batch []data.Sample, frozen *bnStats) *mlpCache {
	n := len(batch)
	hidden := m.layers() - 1
	ws.ensureForward(n)
	c := &ws.cache
	for l := 0; l < m.layers(); l++ {
		c.inputs[l] = ws.inputs[l][:n]
	}
	for l := 0; l < hidden; l++ {
		c.z[l] = ws.z[l][:n]
		if m.batchNorm {
			c.zhat[l] = ws.zhat[l][:n]
			c.preAct[l] = ws.preAct[l][:n]
		} else {
			c.zhat[l] = nil
			c.preAct[l] = c.z[l]
		}
	}
	c.logits = ws.logits[:n]

	for j, s := range batch {
		if len(s.X) != m.dims[0] {
			panic(fmt.Sprintf("nn: MLP input dim %d, want %d", len(s.X), m.dims[0]))
		}
		c.inputs[0][j] = s.X
	}

	// Each linear layer is one blocked matrix-matrix product (MulVecBatch
	// tiles the sample loop over the weight rows) with the bias add fused
	// into the store; the activations that follow are fused into a single
	// sweep that writes ReLU straight into the next layer's input buffer
	// (buffers are reused, so zeros must be written explicitly).
	for l := 0; l < hidden; l++ {
		v.w[l].MulVecBatch(c.inputs[l], v.b[l], c.z[l])
		if m.batchNorm {
			if frozen != nil {
				c.mean[l], c.istd[l] = frozen.mean[l], frozen.istd[l]
			} else {
				c.mean[l], c.istd[l] = ws.mean[l], ws.istd[l]
				batchStatsInto(c.z[l], c.mean[l], c.istd[l])
			}
			// Fused normalize → affine → ReLU: one pass per sample writes
			// zhat, preAct, and the next layer's input.
			dim := m.dims[l+1]
			mean, istd, gamma, beta := c.mean[l], c.istd[l], v.gamma[l], v.beta[l]
			for j := range batch {
				zj, zh, pa, h := c.z[l][j], c.zhat[l][j], c.preAct[l][j], c.inputs[l+1][j]
				for f := 0; f < dim; f++ {
					zhf := (zj[f] - mean[f]) * istd[f]
					zh[f] = zhf
					paf := gamma[f]*zhf + beta[f]
					pa[f] = paf
					if paf > 0 {
						h[f] = paf
					} else {
						h[f] = 0
					}
				}
			}
		} else {
			for j := range batch {
				h := c.inputs[l+1][j]
				for f, a := range c.z[l][j] {
					if a > 0 {
						h[f] = a
					} else {
						h[f] = 0
					}
				}
			}
		}
	}

	last := m.layers() - 1
	v.w[last].MulVecBatch(c.inputs[last], v.b[last], c.logits)
	return c
}

// bnStats carries frozen batch-normalization statistics.
type bnStats struct {
	mean, istd []tensor.Vec
}

// batchStatsInto computes the per-feature mean and inverse standard
// deviation of zs into the caller's buffers. An empty batch has no defined
// statistics; it fails fast here rather than letting NaN mean/istd flow
// silently into the parameters.
func batchStatsInto(zs []tensor.Vec, mean, istd tensor.Vec) {
	if len(zs) == 0 {
		panic("nn: batchStatsInto on empty batch — batch-normalization statistics are undefined")
	}
	n := float64(len(zs))
	mean.Zero()
	for _, z := range zs {
		mean.AddInPlace(z)
	}
	mean.ScaleInPlace(1 / n)
	istd.Zero() // accumulate the variance in istd, then invert
	for _, z := range zs {
		for f := range istd {
			d := z[f] - mean[f]
			istd[f] += d * d
		}
	}
	for f := range istd {
		istd[f] = 1 / math.Sqrt(istd[f]/n+_bnEps)
	}
}

// Loss implements Model.
func (m *MLP) Loss(params tensor.Vec, batch []data.Sample) float64 {
	return m.LossWith(nil, params, batch)
}

// LossWith implements LossWither.
func (m *MLP) LossWith(wsAny Workspace, params tensor.Vec, batch []data.Sample) float64 {
	if len(batch) == 0 {
		return m.l2Term(params)
	}
	ws := m.workspace(wsAny)
	m.viewInto(&ws.pv, params)
	c := m.forward(ws, ws.pv, batch, nil)
	var total float64
	for j, s := range batch {
		total += tensor.CrossEntropyFromLogits(c.logits[j], s.Y)
	}
	return total/float64(len(batch)) + m.l2Term(params)
}

func (m *MLP) l2Term(params tensor.Vec) float64 {
	if m.l2 == 0 {
		return 0
	}
	return 0.5 * m.l2 * params.Dot(params)
}

// Grad implements Model. It is the allocating wrapper over GradInto.
func (m *MLP) Grad(params tensor.Vec, batch []data.Sample) tensor.Vec {
	g := tensor.NewVec(m.numParams)
	m.GradInto(nil, params, batch, g)
	return g
}

// GradInto implements GradIntoer via full manual backpropagation, including
// the gradient through the batch-normalization statistics. With a workspace
// from this model the steady-state path allocates nothing. out must not
// alias params.
func (m *MLP) GradInto(wsAny Workspace, params tensor.Vec, batch []data.Sample, out tensor.Vec) {
	ws := m.workspace(wsAny)
	if len(out) != m.numParams {
		panic(fmt.Sprintf("nn: MLP gradient buffer has %d entries, want %d", len(out), m.numParams))
	}
	out.Zero()
	if len(batch) > 0 {
		m.viewInto(&ws.pv, params)
		m.viewInto(&ws.gv, out)
		c := m.forward(ws, ws.pv, batch, nil)
		m.backward(ws, ws.pv, ws.gv, c, batch, nil)
	}
	if m.l2 != 0 {
		out.Axpy(m.l2, params)
	}
}

// GradStepInto implements GradStepIntoer: out = params − lr·∇L(params, batch)
// as one fused kernel. The gradient accumulates into workspace scratch, and
// the L2 term plus the descent step collapse into a single final pass over
// the parameter vector — element for element the same arithmetic as GradInto
// followed by the axpy step, so results are bit-identical. out may alias
// params (in-place step); it must not alias workspace memory.
func (m *MLP) GradStepInto(wsAny Workspace, params tensor.Vec, batch []data.Sample, lr float64, out tensor.Vec) {
	ws := m.workspace(wsAny)
	if len(out) != m.numParams {
		panic(fmt.Sprintf("nn: MLP step buffer has %d entries, want %d", len(out), m.numParams))
	}
	if ws.gstep == nil {
		ws.gstep = tensor.NewVec(m.numParams)
	}
	g := ws.gstep
	g.Zero()
	if len(batch) > 0 {
		m.viewInto(&ws.pv, params)
		m.viewInto(&ws.gv, g)
		c := m.forward(ws, ws.pv, batch, nil)
		m.backward(ws, ws.pv, ws.gv, c, batch, nil)
	}
	if m.l2 != 0 {
		// out = params − lr·(g + l2·params): the L2 axpy of GradInto and the
		// step fused into one sweep, with identical per-element rounding.
		l2 := m.l2
		for i := range out {
			out[i] = params[i] - lr*(g[i]+l2*params[i])
		}
		return
	}
	params.AxpyInto(-lr, g, out)
}

// backward accumulates parameter gradients into gv. If dx is non-nil it
// also stores the loss gradient with respect to each input sample into
// dx[j] (aliasing ws.delta[0] memory); in that mode BN statistics are
// treated as constants (frozen).
func (m *MLP) backward(ws *mlpWorkspace, v, gv mlpView, c *mlpCache, batch []data.Sample, dx []tensor.Vec) {
	n := len(batch)
	ws.ensureBackward(n)
	invN := 1 / float64(n)
	hidden := m.layers() - 1
	last := m.layers() - 1

	// d holds ∂loss/∂(input of layer l+1) per sample, i.e. post-ReLU grads.
	// The loss layer runs as three blocked passes — per-sample softmax
	// gradients, then one batched outer-product accumulation and one batched
	// transposed product — instead of interleaving tiny kernels per sample;
	// the per-element accumulation order (ascending sample index) is the
	// same, so the gradients are bit-identical.
	d := ws.delta[last][:n]
	probs := ws.probs[:n]
	for j, s := range batch {
		p := probs[j]
		tensor.Softmax(c.logits[j], p)
		p[s.Y]--
		p.ScaleInPlace(invN)
	}
	gv.w[last].AddOuterBatch(1, probs, c.inputs[last])
	for j := 0; j < n; j++ {
		gv.b[last].AddInPlace(probs[j])
	}
	v.w[last].MulVecTBatch(probs, d)

	for l := hidden - 1; l >= 0; l-- {
		dim := m.dims[l+1]
		// Through ReLU: dy[j] = d[j] ∘ 1[preAct > 0].
		dy := d
		for j := 0; j < n; j++ {
			pa := c.preAct[l][j]
			for f := 0; f < dim; f++ {
				if pa[f] <= 0 {
					dy[j][f] = 0
				}
			}
		}

		var dz []tensor.Vec
		if m.batchNorm {
			// Through the affine BN parameters.
			dzhat := ws.dzhat[l][:n]
			for j := 0; j < n; j++ {
				dzh := dzhat[j]
				for f := 0; f < dim; f++ {
					gv.gamma[l][f] += dy[j][f] * c.zhat[l][j][f]
					gv.beta[l][f] += dy[j][f]
					dzh[f] = dy[j][f] * v.gamma[l][f]
				}
			}
			dz = dzhat
			if dx != nil {
				// Frozen statistics: dz = dzhat * istd.
				for j := 0; j < n; j++ {
					for f := 0; f < dim; f++ {
						dz[j][f] *= c.istd[l][f]
					}
				}
			} else {
				bnBackwardInPlace(dzhat, c.z[l], c.mean[l], c.istd[l],
					ws.sumDzhat[:dim], ws.sumDzhatZc[:dim])
			}
		} else {
			dz = dy
		}

		prev := ws.delta[l][:n]
		gv.w[l].AddOuterBatch(1, dz, c.inputs[l])
		for j := 0; j < n; j++ {
			gv.b[l].AddInPlace(dz[j])
		}
		v.w[l].MulVecTBatch(dz, prev)
		d = prev
	}

	if dx != nil {
		for j := 0; j < n; j++ {
			dx[j] = d[j]
		}
	}
}

// bnBackwardInPlace propagates gradients through batch normalization,
// including the dependence of the batch mean and variance on every sample.
// The result overwrites dzhat; sumDzhat and sumDzhatZc are caller scratch.
func bnBackwardInPlace(dzhat, z []tensor.Vec, mean, istd, sumDzhat, sumDzhatZc tensor.Vec) {
	n := len(dzhat)
	invN := 1 / float64(n)

	sumDzhat.Zero()
	sumDzhatZc.Zero() // Σ_j dzhat_j ∘ (z_j − mean)
	for j := 0; j < n; j++ {
		for f := range sumDzhat {
			sumDzhat[f] += dzhat[j][f]
			sumDzhatZc[f] += dzhat[j][f] * (z[j][f] - mean[f])
		}
	}

	for j := 0; j < n; j++ {
		dj := dzhat[j]
		for f := range sumDzhat {
			zc := z[j][f] - mean[f]
			// Standard BN backward:
			// dz = istd*(dzhat − mean(dzhat) − zhat*mean(dzhat∘zhat_like))
			dj[f] = istd[f] * (dj[f] - invN*sumDzhat[f] - zc*istd[f]*istd[f]*invN*sumDzhatZc[f])
		}
	}
}

// InputGrad implements InputGradienter. For batch-normalized networks the
// statistics are taken from ctx and frozen (constant w.r.t. x); without
// batch norm the result is the exact per-sample input gradient and ctx is
// ignored.
func (m *MLP) InputGrad(params tensor.Vec, s data.Sample, ctx []data.Sample) tensor.Vec {
	out := tensor.NewVec(m.dims[0])
	m.InputGradInto(nil, params, s, ctx, out)
	return out
}

// InputGradInto implements InputGradIntoer: the frozen-BN input gradient
// written into out (length = input dimension).
func (m *MLP) InputGradInto(wsAny Workspace, params tensor.Vec, s data.Sample, ctx []data.Sample, out tensor.Vec) {
	ws := m.workspace(wsAny)
	m.viewInto(&ws.pv, params)
	var frozen *bnStats
	if m.batchNorm {
		if len(ctx) == 0 {
			ctx = []data.Sample{s}
		}
		ref := m.forward(ws, ws.pv, ctx, nil)
		// The statistics buffers are only written by non-frozen forwards,
		// so they stay valid through the frozen pass below.
		ws.frozen = bnStats{mean: ref.mean, istd: ref.istd}
		frozen = &ws.frozen
	}
	batch := []data.Sample{s}
	c := m.forward(ws, ws.pv, batch, frozen)
	if ws.igrad == nil {
		ws.igrad = tensor.NewVec(m.numParams)
	}
	ws.igrad.Zero()
	m.viewInto(&ws.gv, ws.igrad) // scratch; parameter grads discarded
	m.backward(ws, ws.pv, ws.gv, c, batch, ws.dx1)
	out.CopyFrom(ws.dx1[0])
}

// PredictBatch implements Model, using transductive batch statistics for
// batch-normalized networks.
func (m *MLP) PredictBatch(params tensor.Vec, batch []data.Sample) []int {
	if len(batch) == 0 {
		return nil
	}
	ws := m.workspace(nil)
	m.viewInto(&ws.pv, params)
	c := m.forward(ws, ws.pv, batch, nil)
	preds := make([]int, len(batch))
	for j := range batch {
		preds[j] = c.logits[j].ArgMax()
	}
	return preds
}
