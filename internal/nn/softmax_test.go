package nn

import (
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// randBatch builds a random batch with the given shape.
func randBatch(r *rng.Rand, n, dim, classes int) []data.Sample {
	batch := make([]data.Sample, n)
	for i := range batch {
		x := tensor.NewVec(dim)
		for j := range x {
			x[j] = r.Norm()
		}
		batch[i] = data.Sample{X: x, Y: r.IntN(classes)}
	}
	return batch
}

func relErr(a, b tensor.Vec) float64 {
	d := a.Sub(b).Norm()
	den := math.Max(a.Norm(), b.Norm())
	if den == 0 {
		return d
	}
	return d / den
}

func TestSoftmaxRegressionShapes(t *testing.T) {
	m := &SoftmaxRegression{In: 4, Classes: 3}
	if m.NumParams() != 15 {
		t.Errorf("NumParams = %d, want 15", m.NumParams())
	}
	p := m.InitParams(rng.New(1))
	if len(p) != 15 {
		t.Errorf("init len = %d", len(p))
	}
	// Biases start at zero.
	for i := 12; i < 15; i++ {
		if p[i] != 0 {
			t.Errorf("bias %d initialized nonzero: %v", i, p[i])
		}
	}
}

func TestSoftmaxRegressionGradMatchesNumerical(t *testing.T) {
	r := rng.New(2)
	for _, l2 := range []float64{0, 0.1} {
		m := &SoftmaxRegression{In: 5, Classes: 4, L2: l2}
		p := m.InitParams(r)
		for i := range p {
			p[i] = r.Norm() * 0.5
		}
		batch := randBatch(r, 7, 5, 4)
		got := m.Grad(p, batch)
		want := NumericalGrad(m, p, batch)
		if e := relErr(got, want); e > 1e-6 {
			t.Errorf("L2=%v: analytic vs numerical gradient relErr = %v", l2, e)
		}
	}
}

func TestSoftmaxRegressionHVPMatchesFiniteDiff(t *testing.T) {
	r := rng.New(3)
	m := &SoftmaxRegression{In: 5, Classes: 3, L2: 0.05}
	p := m.InitParams(r)
	for i := range p {
		p[i] = r.Norm() * 0.5
	}
	batch := randBatch(r, 6, 5, 3)
	v := tensor.NewVec(m.NumParams())
	for i := range v {
		v[i] = r.Norm()
	}
	got := m.HVP(p, batch, v)
	want := FiniteDiffHVP(m, p, batch, v)
	if e := relErr(got, want); e > 1e-5 {
		t.Errorf("analytic vs FD HVP relErr = %v", e)
	}
}

func TestSoftmaxRegressionHVPLinearity(t *testing.T) {
	r := rng.New(4)
	m := &SoftmaxRegression{In: 4, Classes: 3}
	p := m.InitParams(r)
	batch := randBatch(r, 5, 4, 3)
	v1 := tensor.NewVec(m.NumParams())
	v2 := tensor.NewVec(m.NumParams())
	for i := range v1 {
		v1[i], v2[i] = r.Norm(), r.Norm()
	}
	sum := v1.Add(v2)
	lhs := m.HVP(p, batch, sum)
	rhs := m.HVP(p, batch, v1).Add(m.HVP(p, batch, v2))
	if e := relErr(lhs, rhs); e > 1e-10 {
		t.Errorf("HVP not linear: relErr = %v", e)
	}
}

func TestSoftmaxRegressionHVPSymmetry(t *testing.T) {
	// <H v, w> == <v, H w> since the Hessian is symmetric.
	r := rng.New(5)
	m := &SoftmaxRegression{In: 4, Classes: 3, L2: 0.01}
	p := m.InitParams(r)
	batch := randBatch(r, 5, 4, 3)
	v := tensor.NewVec(m.NumParams())
	w := tensor.NewVec(m.NumParams())
	for i := range v {
		v[i], w[i] = r.Norm(), r.Norm()
	}
	lhs := m.HVP(p, batch, v).Dot(w)
	rhs := v.Dot(m.HVP(p, batch, w))
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Errorf("HVP asymmetric: %v vs %v", lhs, rhs)
	}
}

func TestSoftmaxRegressionHVPPositiveSemiDefinite(t *testing.T) {
	// Cross-entropy + L2 has PSD Hessian: <v, Hv> >= L2*||v||^2.
	r := rng.New(6)
	m := &SoftmaxRegression{In: 4, Classes: 3, L2: 0.1}
	p := m.InitParams(r)
	batch := randBatch(r, 8, 4, 3)
	for trial := 0; trial < 20; trial++ {
		v := tensor.NewVec(m.NumParams())
		for i := range v {
			v[i] = r.Norm()
		}
		q := v.Dot(m.HVP(p, batch, v))
		if q < 0.1*v.Dot(v)-1e-9 {
			t.Fatalf("quadratic form %v below strong-convexity floor %v", q, 0.1*v.Dot(v))
		}
	}
}

func TestSoftmaxRegressionInputGradMatchesNumerical(t *testing.T) {
	r := rng.New(7)
	m := &SoftmaxRegression{In: 6, Classes: 3}
	p := m.InitParams(r)
	for i := range p {
		p[i] = r.Norm() * 0.3
	}
	s := randBatch(r, 1, 6, 3)[0]
	got := m.InputGrad(p, s, nil)

	const eps = 1e-6
	want := tensor.NewVec(6)
	for i := range s.X {
		orig := s.X[i]
		s.X[i] = orig + eps
		lp := m.Loss(p, []data.Sample{s})
		s.X[i] = orig - eps
		lm := m.Loss(p, []data.Sample{s})
		s.X[i] = orig
		want[i] = (lp - lm) / (2 * eps)
	}
	if e := relErr(got, want); e > 1e-6 {
		t.Errorf("input gradient relErr = %v", e)
	}
}

func TestSoftmaxRegressionGradientDescentReducesLoss(t *testing.T) {
	r := rng.New(8)
	m := &SoftmaxRegression{In: 5, Classes: 3}
	p := m.InitParams(r)
	batch := randBatch(r, 30, 5, 3)
	before := m.Loss(p, batch)
	for step := 0; step < 50; step++ {
		g := m.Grad(p, batch)
		p.Axpy(-0.5, g)
	}
	after := m.Loss(p, batch)
	if after >= before {
		t.Errorf("gradient descent failed: %v -> %v", before, after)
	}
}

func TestSoftmaxRegressionLearnsSeparableProblem(t *testing.T) {
	// Class = sign structure on one coordinate; should reach high accuracy.
	r := rng.New(9)
	m := &SoftmaxRegression{In: 2, Classes: 2}
	batch := make([]data.Sample, 100)
	for i := range batch {
		x := tensor.Vec{r.Norm(), r.Norm()}
		y := 0
		if x[0] > 0 {
			y = 1
		}
		batch[i] = data.Sample{X: x, Y: y}
	}
	p := m.InitParams(r)
	for step := 0; step < 300; step++ {
		p.Axpy(-1.0, m.Grad(p, batch))
	}
	if acc := Accuracy(m, p, batch); acc < 0.95 {
		t.Errorf("accuracy %v on separable problem", acc)
	}
}

func TestSoftmaxRegressionEmptyBatch(t *testing.T) {
	m := &SoftmaxRegression{In: 3, Classes: 2, L2: 0.5}
	p := tensor.Vec{1, 0, 0, 0, 0, 0, 1, 0}
	if got := m.Loss(p, nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("empty-batch loss = %v, want pure L2 term 0.5", got)
	}
	g := m.Grad(p, nil)
	if relErr(g, p.Scale(0.5)) > 1e-12 {
		t.Errorf("empty-batch grad = %v", g)
	}
	if preds := m.PredictBatch(p, nil); len(preds) != 0 {
		t.Errorf("empty predictions = %v", preds)
	}
}

func TestSoftmaxRegressionParamLengthPanics(t *testing.T) {
	m := &SoftmaxRegression{In: 3, Classes: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong param length did not panic")
		}
	}()
	m.Loss(tensor.NewVec(3), nil)
}

func TestSmoothnessAndConvexityAccessors(t *testing.T) {
	m := &SoftmaxRegression{In: 2, Classes: 2, L2: 0.3}
	batch := []data.Sample{{X: tensor.Vec{3, 4}, Y: 0}}
	// ||x||^2+1 = 26; bound = 13 + 0.3.
	if got := m.SmoothnessUpperBound(batch); math.Abs(got-13.3) > 1e-12 {
		t.Errorf("smoothness bound = %v, want 13.3", got)
	}
	if m.StrongConvexity() != 0.3 {
		t.Errorf("strong convexity = %v", m.StrongConvexity())
	}
}

func TestHVPDispatchUsesAnalytic(t *testing.T) {
	r := rng.New(10)
	m := &SoftmaxRegression{In: 3, Classes: 2}
	p := m.InitParams(r)
	batch := randBatch(r, 4, 3, 2)
	v := tensor.NewVec(m.NumParams())
	for i := range v {
		v[i] = r.Norm()
	}
	viaDispatch := HVP(m, p, batch, v)
	direct := m.HVP(p, batch, v)
	if relErr(viaDispatch, direct) != 0 {
		t.Error("HVP dispatch did not use the analytic implementation")
	}
}

func TestFiniteDiffHVPZeroDirection(t *testing.T) {
	m := &SoftmaxRegression{In: 3, Classes: 2}
	p := m.InitParams(rng.New(1))
	got := FiniteDiffHVP(m, p, nil, tensor.NewVec(m.NumParams()))
	if got.Norm() != 0 {
		t.Errorf("FD HVP of zero direction = %v", got.Norm())
	}
}
