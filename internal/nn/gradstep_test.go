package nn

import (
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// The fused gradient+step kernel must be bit-identical to GradInto followed
// by an axpy — it is the same arithmetic in one pass over the parameter
// vector, and every inner-loop caller (fedavg, reptile, meta, eval) now
// relies on that equivalence.
func TestGradStepIntoMatchesGradThenStep(t *testing.T) {
	models := []Model{
		&SoftmaxRegression{In: 6, Classes: 4},
		&SoftmaxRegression{In: 6, Classes: 4, L2: 0.05},
		mustMLP(t, MLPConfig{Dims: []int{6, 7, 4}}),
		mustMLP(t, MLPConfig{Dims: []int{6, 7, 4}, L2: 0.02}),
		mustMLP(t, MLPConfig{Dims: []int{6, 7, 4}, BatchNorm: true, L2: 0.02}),
	}
	const lr = 0.3
	for _, m := range models {
		r := rng.New(11)
		batch := randBatch(r, 9, 6, 4)
		params := m.InitParams(r)
		ws := NewWorkspace(m)
		g := tensor.NewVec(m.NumParams())
		want := tensor.NewVec(m.NumParams())
		GradInto(m, NewWorkspace(m), params, batch, g)
		params.AxpyInto(-lr, g, want)

		out := tensor.NewVec(m.NumParams())
		GradStepInto(m, ws, params, batch, lr, g, out)
		if d := out.Dist(want); d != 0 {
			t.Errorf("%T: fused GradStepInto differs from grad-then-step by %g", m, d)
		}

		// In-place: out aliases params (the adaptation-loop pattern).
		phi := params.Clone()
		GradStepInto(m, ws, phi, batch, lr, g, phi)
		if d := phi.Dist(want); d != 0 {
			t.Errorf("%T: in-place GradStepInto differs by %g", m, d)
		}
	}
}

// noFused hides the GradStepIntoer fast path, forcing the package helper
// onto its grad-then-axpy fallback; both routes must agree bit-exactly.
type noFused struct{ Model }

func TestGradStepIntoFallbackMatchesFused(t *testing.T) {
	m := mustMLP(t, MLPConfig{Dims: []int{5, 6, 3}, L2: 0.01})
	if _, ok := interface{}(noFused{m}).(GradStepIntoer); ok {
		t.Fatal("noFused still satisfies GradStepIntoer; fallback not exercised")
	}
	r := rng.New(13)
	batch := randBatch(r, 7, 5, 3)
	params := m.InitParams(r)
	g := tensor.NewVec(m.NumParams())
	fused := tensor.NewVec(m.NumParams())
	fallback := tensor.NewVec(m.NumParams())
	GradStepInto(m, NewWorkspace(m), params, batch, 0.2, g, fused)
	GradStepInto(noFused{m}, NewWorkspace(m), params, batch, 0.2, g, fallback)
	if d := fused.Dist(fallback); d != 0 {
		t.Errorf("fused and fallback GradStepInto differ by %g", d)
	}
}

func TestGradStepIntoZeroAllocs(t *testing.T) {
	models := []Model{
		&SoftmaxRegression{In: 6, Classes: 4, L2: 0.01},
		mustMLP(t, MLPConfig{Dims: []int{6, 8, 4}, L2: 0.01}),
		mustMLP(t, MLPConfig{Dims: []int{6, 8, 4}, BatchNorm: true}),
	}
	for _, m := range models {
		r := rng.New(1)
		batch := randBatch(r, 10, 6, 4)
		params := m.InitParams(r)
		ws := NewWorkspace(m)
		g := tensor.NewVec(m.NumParams())
		out := tensor.NewVec(m.NumParams())
		assertZeroAllocs(t, "GradStepInto", func() {
			GradStepInto(m, ws, params, batch, 0.1, g, out)
		})
	}
}

// Batch-normalization statistics over zero samples are undefined; the old
// code divided by zero and let NaNs propagate into the parameters. It must
// fail fast with a message naming the operation.
func TestBatchStatsIntoEmptyBatchPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("batchStatsInto on empty batch did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "batchStatsInto") || !strings.Contains(msg, "empty batch") {
			t.Errorf("panic %v does not name batchStatsInto and the empty batch", r)
		}
	}()
	batchStatsInto(nil, tensor.NewVec(3), tensor.NewVec(3))
}
