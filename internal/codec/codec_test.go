package codec

import (
	"errors"
	"math"
	"testing"

	"github.com/edgeai/fedml/internal/rng"
)

// testVector builds a deterministic parameter vector with the mixed
// magnitudes a trained model exhibits: mostly small weights, a few large
// coordinates, exact zeros.
func testVector(n int, seed uint64) []float64 {
	r := rng.New(seed)
	v := make([]float64, n)
	for i := range v {
		switch i % 7 {
		case 0:
			v[i] = 0
		case 1:
			v[i] = 10 * r.Norm()
		default:
			v[i] = 0.1 * r.Norm()
		}
	}
	return v
}

func TestNewAndNames(t *testing.T) {
	for _, spec := range []string{"raw", "f16", "q8", "topk", "topk:0.05", "topk:1"} {
		c, err := New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		if c.Name() != spec {
			t.Errorf("New(%q).Name() = %q, want the spec back", spec, c.Name())
		}
		if !Valid(spec) {
			t.Errorf("Valid(%q) = false", spec)
		}
	}
	for _, spec := range []string{"", "gzip", "topk:0", "topk:1.5", "topk:x", "TOPK"} {
		if _, err := New(spec); err == nil {
			t.Errorf("New(%q) succeeded, want error", spec)
		}
	}
}

func TestRawRoundTripExact(t *testing.T) {
	c, _ := New("raw")
	in := append(testVector(317, 1), math.NaN(), math.Inf(1), math.Inf(-1), -0.0)
	payload, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if !IsFull(payload) {
		t.Error("raw payload not marked full")
	}
	out, err := c.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Fatalf("raw not bit-exact at %d: % x vs % x", i, out[i], in[i])
		}
	}
}

// TestF16ErrorBound pins the f16 contract: |x − x̂| ≤ 2⁻¹⁰·|x| + 2⁻²⁴ for
// finite |x| ≤ 65504, clamping (not Inf) beyond, and sign preservation.
func TestF16ErrorBound(t *testing.T) {
	c, _ := New("f16")
	in := append(testVector(1001, 2), 65504, -65504, 1e300, -1e300, 0x1p-24, -0x1p-30, 0)
	payload, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 2*len(in); len(payload) != want {
		t.Fatalf("payload %d bytes, want %d", len(payload), want)
	}
	out, err := c.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range in {
		xh := out[i]
		if math.Abs(x) > 65504 {
			if math.Abs(xh) != 65504 || math.Signbit(xh) != math.Signbit(x) {
				t.Errorf("overflow %g decoded to %g, want clamp to ±65504", x, xh)
			}
			continue
		}
		if bound := math.Abs(x)*0x1p-10 + 0x1p-24; math.Abs(x-xh) > bound {
			t.Errorf("f16 error |%g − %g| = %g exceeds bound %g", x, xh, math.Abs(x-xh), bound)
		}
	}
}

func TestF16NonFinite(t *testing.T) {
	c, _ := New("f16")
	payload, err := c.Encode([]float64{math.Inf(1), math.Inf(-1), math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out[0], 1) || !math.IsInf(out[1], -1) || !math.IsNaN(out[2]) {
		t.Errorf("non-finite values not preserved: %v", out)
	}
}

// TestQ8ErrorBound pins the q8 contract: per chunk with scale s = max|x|,
// |x − x̂| ≤ s/254 + s·2⁻²³, and all-zero chunks reconstruct exactly.
func TestQ8ErrorBound(t *testing.T) {
	c, _ := New("q8")
	// Three full chunks plus a ragged tail, including an all-zero chunk.
	in := testVector(3*q8ChunkSize+57, 3)
	for i := q8ChunkSize; i < 2*q8ChunkSize; i++ {
		in[i] = 0
	}
	payload, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for start := 0; start < len(in); start += q8ChunkSize {
		end := min(start+q8ChunkSize, len(in))
		var s float64
		for _, v := range in[start:end] {
			if a := math.Abs(v); a > s {
				s = a
			}
		}
		bound := s/254 + s*0x1p-23
		for i := start; i < end; i++ {
			if math.Abs(in[i]-out[i]) > bound {
				t.Errorf("q8 error |%g − %g| = %g exceeds chunk bound %g", in[i], out[i], math.Abs(in[i]-out[i]), bound)
			}
			if s == 0 && out[i] != 0 {
				t.Errorf("all-zero chunk decoded nonzero %g at %d", out[i], i)
			}
		}
	}
}

// TestTopKMirrors pins the stateful contract: after every successful
// Decode, the decoder's output equals the encoder's internal reference bit
// for bit, across full and delta messages, and the error-feedback residual
// drives the reconstruction toward the true vector over repeated sends.
func TestTopKMirrors(t *testing.T) {
	enc, _ := New("topk:0.2")
	dec, _ := New("topk:0.2")
	truth := testVector(500, 4)

	var got []float64
	for round := 0; round < 12; round++ {
		payload, err := enc.Encode(truth)
		if err != nil {
			t.Fatal(err)
		}
		if (round == 0) != IsFull(payload) {
			t.Fatalf("round %d: IsFull = %v, want full only on the first message", round, IsFull(payload))
		}
		got, err = dec.Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		ref := enc.(*topKCodec).ref
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("round %d: decoder diverged from encoder ref at %d: %g vs %g", round, i, got[i], ref[i])
			}
		}
	}
	// Encoding the same target repeatedly, error feedback must converge the
	// shared reference to the truth (up to float32 delta rounding).
	for i := range truth {
		if diff := math.Abs(truth[i] - got[i]); diff > 1e-5*(1+math.Abs(truth[i])) {
			t.Errorf("error feedback did not converge at %d: residual %g", i, diff)
		}
	}
}

// TestTopKFullDensityBound: at frac = 1 every delta coordinate ships, so a
// single message reconstructs to within float32 rounding of the delta.
func TestTopKFullDensityBound(t *testing.T) {
	enc, _ := New("topk:1")
	dec, _ := New("topk:1")
	a := testVector(200, 5)
	b := testVector(200, 6)

	p1, _ := enc.Encode(a)
	if _, err := dec.Decode(p1); err != nil {
		t.Fatal(err)
	}
	p2, err := enc.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dec.Decode(p2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		delta := math.Abs(b[i] - a[i])
		if bound := delta*0x1p-23 + 1e-12; math.Abs(b[i]-out[i]) > bound {
			t.Errorf("topk:1 error %g at %d exceeds float32 bound %g", math.Abs(b[i]-out[i]), i, bound)
		}
	}
}

func TestTopKDesyncDetected(t *testing.T) {
	enc, _ := New("topk")
	dec, _ := New("topk")
	v := testVector(100, 7)

	p1, _ := enc.Encode(v)
	if _, err := dec.Decode(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(v); err != nil { // lost on the wire
		t.Fatal(err)
	}
	p3, _ := enc.Encode(v)
	if _, err := dec.Decode(p3); !errors.Is(err, ErrDesync) {
		t.Errorf("decode after a lost delta: err = %v, want ErrDesync", err)
	}

	// A delta with no prior full sync is also a desync.
	fresh, _ := New("topk")
	if _, err := fresh.Decode(p3); !errors.Is(err, ErrDesync) {
		t.Errorf("delta before full sync: err = %v, want ErrDesync", err)
	}

	// Reset on both ends re-establishes the chain with a full payload.
	enc.Reset()
	dec.Reset()
	p4, _ := enc.Encode(v)
	if !IsFull(p4) {
		t.Error("first payload after Reset is not full")
	}
	if _, err := dec.Decode(p4); err != nil {
		t.Errorf("decode after mutual reset: %v", err)
	}
}

// TestCompressionRatios pins the headline claim on a fig2a-sized vector
// (610 parameters: 60×10 softmax + bias): q8 and topk steady-state payloads
// are ≥4× smaller than the 8·n raw wire size, f16 ≈4×.
func TestCompressionRatios(t *testing.T) {
	v := testVector(610, 8)
	rawBytes := float64(8 * len(v))

	for _, tc := range []struct {
		spec     string
		minRatio float64
	}{
		{"f16", 3.9}, {"q8", 4}, {"topk", 4},
	} {
		c, _ := New(tc.spec)
		payload, err := c.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if tc.spec == "topk" {
			// Steady state is the delta payload, not the initial full sync.
			payload, err = c.Encode(v)
			if err != nil {
				t.Fatal(err)
			}
		}
		if ratio := rawBytes / float64(len(payload)); ratio < tc.minRatio {
			t.Errorf("%s: %d-byte payload, ratio %.2fx < %.1fx", tc.spec, len(payload), ratio, tc.minRatio)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, spec := range []string{"raw", "f16", "q8", "topk"} {
		c, _ := New(spec)
		for _, payload := range [][]byte{nil, {}, {0xff}, {ModeFull, 1, 2, 3}, {ModeDelta, 9, 9, 9, 9}} {
			if out, err := c.Decode(payload); err == nil {
				t.Errorf("%s: Decode(% x) = %v, want error", spec, payload, out)
			}
		}
	}
}
