package codec

import (
	"errors"
	"math"
	"testing"
)

// maskedTestRanges is a two-segment mask over a 100-dim vector: a slice of
// the middle and the tail, 30 coordinates total.
var maskedTestRanges = []Range{{Lo: 20, Hi: 40}, {Lo: 90, Hi: 100}}

// TestMaskedRoundTripPerCodec drives the masked wrapper over every inner
// codec family: masked coordinates must round-trip within the inner codec's
// documented error bound, and unmasked coordinates must come back bit-equal
// to the receiver's base vector — the structural-freeze contract.
func TestMaskedRoundTripPerCodec(t *testing.T) {
	for _, spec := range []string{"raw", "f16", "q8", "topk", "topk:1"} {
		t.Run(spec, func(t *testing.T) {
			encInner, _ := New(spec)
			decInner, _ := New(spec)
			enc, dec := NewMasked(encInner), NewMasked(decInner)

			base := testVector(100, 7)
			// Establish the full reference with a plain message, as warmup
			// rounds do.
			p, err := enc.EncodeMasked(base, nil)
			if err != nil {
				t.Fatal(err)
			}
			// The receiver's reference is what it *decoded* — for lossy
			// codecs that differs from the encoder's vector, and frozen
			// coordinates must stay bit-equal to it, not to the original.
			ref, ranges, err := dec.DecodeMasked(p, nil)
			if err != nil || ranges != nil {
				t.Fatalf("plain decode: ranges=%v err=%v", ranges, err)
			}

			// Two masked messages: the first restarts the inner chain over
			// the masked set, the second exercises the inner delta path.
			params := append([]float64(nil), base...)
			for msg := 0; msg < 2; msg++ {
				for i := range params {
					params[i] += 0.1 * float64((i+msg)%5)
				}
				p, err := enc.EncodeMasked(params, maskedTestRanges)
				if err != nil {
					t.Fatal(err)
				}
				if p[0] != ModeMasked {
					t.Fatalf("masked payload mode = %d, want %d", p[0], ModeMasked)
				}
				out, ranges, err := dec.DecodeMasked(p, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !EqualRanges(ranges, maskedTestRanges) {
					t.Fatalf("decoded ranges %v, want %v", ranges, maskedTestRanges)
				}
				masked := make([]bool, len(params))
				for _, r := range ranges {
					for i := r.Lo; i < r.Hi; i++ {
						masked[i] = true
					}
				}
				for i := range params {
					if !masked[i] {
						if math.Float64bits(out[i]) != math.Float64bits(ref[i]) {
							t.Fatalf("msg %d: unmasked coord %d changed: %g vs reference %g", msg, i, out[i], ref[i])
						}
						continue
					}
					// Inner-codec error bounds over the masked sub-vector.
					var bound float64
					switch spec {
					case "f16":
						bound = math.Abs(params[i])*0x1p-10 + 0x1p-24
					case "q8":
						// One shared chunk: scale is the max-abs of the
						// whole 30-coordinate sub-vector.
						var s float64
						for _, r := range maskedTestRanges {
							for j := r.Lo; j < r.Hi; j++ {
								if a := math.Abs(params[j]); a > s {
									s = a
								}
							}
						}
						bound = s/254 + s*0x1p-23
					case "topk":
						// 10% density keeps 3 of 30 coords per delta; the
						// rest carry over as error feedback. Only bound the
						// full (first) message.
						if msg > 0 {
							continue
						}
					case "topk:1":
						if msg > 0 {
							// Dense delta: float32 rounding of a ≤0.4 delta.
							bound = 0x1p-24
						}
					}
					if math.Abs(params[i]-out[i]) > bound {
						t.Fatalf("%s msg %d: masked coord %d error %g exceeds %g", spec, msg, i, math.Abs(params[i]-out[i]), bound)
					}
				}
			}
		})
	}
}

// TestMaskedScatterIntoBase pins the platform-side decode path: the caller
// supplies the current global vector as the base, and the frozen
// coordinates of the result are exactly that base, whatever the encoder's
// full vector held.
func TestMaskedScatterIntoBase(t *testing.T) {
	encInner, _ := New("raw")
	decInner, _ := New("raw")
	enc, dec := NewMasked(encInner), NewMasked(decInner)

	params := testVector(100, 3)
	p, err := enc.EncodeMasked(params, maskedTestRanges)
	if err != nil {
		t.Fatal(err)
	}
	base := testVector(100, 99)
	out, _, err := dec.DecodeMasked(p, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		want := base[i]
		if i >= 20 && i < 40 || i >= 90 {
			want = params[i]
		}
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("coord %d = %g, want %g", i, out[i], want)
		}
	}
}

// TestMaskedNoReferenceDesyncs pins the resync trigger: a masked payload
// arriving at a decoder that holds no full reference (restarted node) must
// fail with ErrDesync, not fabricate frozen coordinates.
func TestMaskedNoReferenceDesyncs(t *testing.T) {
	encInner, _ := New("q8")
	enc := NewMasked(encInner)
	p, err := enc.EncodeMasked(testVector(50, 1), []Range{{Lo: 10, Hi: 20}})
	if err != nil {
		t.Fatal(err)
	}

	decInner, _ := New("q8")
	dec := NewMasked(decInner)
	if _, _, err := dec.DecodeMasked(p, nil); !errors.Is(err, ErrDesync) {
		t.Fatalf("masked decode with no reference: err = %v, want ErrDesync", err)
	}

	// A wrong-dimension base is the same story.
	if _, _, err := dec.DecodeMasked(p, make([]float64, 49)); !errors.Is(err, ErrDesync) {
		t.Fatalf("masked decode with mismatched base: err = %v, want ErrDesync", err)
	}
}

// TestMaskedTransitionResetsInnerChain pins the composition rule for
// stateful inner codecs: changing the mask resets the inner reference
// chain, so the first message under a new mask is an inner full sync and
// the old chain can never mis-apply across coordinate sets.
func TestMaskedTransitionResetsInnerChain(t *testing.T) {
	encInner, _ := New("topk")
	decInner, _ := New("topk")
	enc, dec := NewMasked(encInner), NewMasked(decInner)

	v := testVector(80, 5)
	// Full → masked → different mask → full again; every payload must
	// decode cleanly because each transition restarts the inner chain.
	steps := [][]Range{nil, {{Lo: 0, Hi: 8}}, {{Lo: 0, Hi: 8}}, {{Lo: 40, Hi: 80}}, nil}
	for step, ranges := range steps {
		for i := range v {
			v[i] += 0.01 * float64(i%3)
		}
		p, err := enc.EncodeMasked(v, ranges)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step == 1 || step == 3 || step == 4 {
			if !IsFull(p) {
				t.Fatalf("step %d: first message under a new mask must be an inner full sync", step)
			}
		}
		if step == 2 && IsFull(p) {
			t.Fatalf("step %d: second message under an unchanged mask should ride the delta chain", step)
		}
		if _, _, err := dec.DecodeMasked(p, nil); err != nil {
			t.Fatalf("step %d: decode: %v", step, err)
		}
	}
}

// TestMaskedRejectsHostileHeaders pins the framing validation: malformed
// range lists are rejected before any dimension-sized allocation.
func TestMaskedRejectsHostileHeaders(t *testing.T) {
	encInner, _ := New("raw")
	enc := NewMasked(encInner)
	good, err := enc.EncodeMasked(testVector(40, 2), []Range{{Lo: 0, Hi: 10}, {Lo: 20, Hi: 30}})
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, 40)

	corrupt := func(mut func(p []byte)) []byte {
		p := append([]byte(nil), good...)
		mut(p)
		return p
	}
	cases := map[string][]byte{
		"truncated header":  good[:8],
		"zero ranges":       corrupt(func(p []byte) { p[5], p[6], p[7], p[8] = 0, 0, 0, 0 }),
		"overlapping":       corrupt(func(p []byte) { p[17] = 5 }),   // second lo=5 < first hi=10
		"out of dim":        corrupt(func(p []byte) { p[21] = 100 }), // second len → hi > dim
		"ranges past bytes": corrupt(func(p []byte) { p[5], p[6], p[7], p[8] = 40, 0, 0, 0 }),
	}
	for name, p := range cases {
		decInner, _ := New("raw")
		dec := NewMasked(decInner)
		if _, _, err := dec.DecodeMasked(p, base); err == nil {
			t.Fatalf("%s: decode accepted a malformed masked payload", name)
		}
	}
}

// TestWireSize pins the codec-aware pricing the what-if estimators use: the
// empty spec is exactly 8 B/param, q8 lands near 1 B/param, and topk's
// steady-state delta is far below raw. This is the figure exttime's
// fallback pricing must use (the 8·NumParams bug).
func TestWireSize(t *testing.T) {
	const dim = 1000
	empty, err := WireSize("", dim)
	if err != nil || empty != 8*dim {
		t.Fatalf("WireSize(\"\") = %d, %v; want %d", empty, err, 8*dim)
	}
	q8, err := WireSize("q8", dim)
	if err != nil {
		t.Fatal(err)
	}
	if q8 < dim || q8 > dim+4*(dim/q8ChunkSize+1)+5 {
		t.Fatalf("WireSize(q8) = %d, want ≈1 B/param over %d params", q8, dim)
	}
	topk, err := WireSize("topk", dim)
	if err != nil {
		t.Fatal(err)
	}
	if topk >= 2*dim { // steady state ≈ 0.8 B/param at 10% density
		t.Fatalf("WireSize(topk) = %d, want steady-state delta well under raw", topk)
	}
	if _, err := WireSize("no-such-codec", dim); err == nil {
		t.Fatal("WireSize accepted an unknown codec")
	}
}
