package codec

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzSpecs are the codec families the round-trip fuzzer drives. topk:1
// exercises the dense-delta path that plain topk's 10% density skips.
var fuzzSpecs = []string{"raw", "f16", "q8", "topk", "topk:1"}

// FuzzCodecRoundTrip feeds arbitrary bytes through all four codec families
// two ways: as a parameter vector (encode→decode must round-trip within
// each codec's documented error bound, full and delta paths both) and as a
// raw wire payload (Decode must reject or parse, never panic or return a
// vector while reporting an error).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 1, 0, 0, 0, 4, 0, 0, 0, 1, 0, 0, 0})
	seed := make([]byte, 0, 33*8)
	for i := 0; i < 33; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(float64(i)*0.37-5))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpretation 1: the bytes are a parameter vector. Non-finite
		// and half-overflowing values are zeroed so the per-codec error
		// bounds apply uniformly (their handling has dedicated unit tests).
		params := make([]float64, len(data)/8)
		for i := range params {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			if !isBounded(v) {
				v = 0
			}
			params[i] = v
		}
		perturbed := append([]float64(nil), params...)
		for i := range perturbed {
			perturbed[i] += 0.25 * float64(i%5)
		}

		for _, spec := range fuzzSpecs {
			enc, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			dec, _ := New(spec)

			p1, err := enc.Encode(params)
			if err != nil {
				t.Fatalf("%s: Encode: %v", spec, err)
			}
			out, err := dec.Decode(p1)
			if err != nil {
				t.Fatalf("%s: Decode(Encode(x)): %v", spec, err)
			}
			checkBound(t, spec, params, out)

			// Second message exercises the stateful delta path; stateless
			// codecs just round-trip again.
			p2, err := enc.Encode(perturbed)
			if err != nil {
				t.Fatalf("%s: second Encode: %v", spec, err)
			}
			if _, err := dec.Decode(p2); err != nil {
				t.Fatalf("%s: second Decode: %v", spec, err)
			}

			// Interpretation 2: the bytes are a hostile wire payload, fed to
			// both a fresh and an already-synchronized decoder.
			fresh, _ := New(spec)
			if v, err := fresh.Decode(data); err == nil && v == nil && len(data) > 0 {
				t.Fatalf("%s: Decode returned nil vector without error", spec)
			}
			_, _ = dec.Decode(data)

			// Interpretation 3: the same hostile payload through the masked
			// wrapper, with and without a reference — the mask framing
			// parser must reject or parse, never panic.
			mInner, _ := New(spec)
			masked := NewMasked(mInner)
			_, _, _ = masked.DecodeMasked(data, nil)
			_, _, _ = masked.DecodeMasked(data, params)
			// And a legitimate masked round-trip over a data-derived mask.
			if n := len(params); n >= 2 {
				ranges := []Range{{Lo: n / 4, Hi: n/4 + 1 + n/3}}
				if ranges[0].Hi > n {
					ranges[0].Hi = n
				}
				mp, err := masked.EncodeMasked(params, ranges)
				if err != nil {
					t.Fatalf("%s: masked Encode: %v", spec, err)
				}
				mDec := NewMasked(fresh)
				out, got, err := mDec.DecodeMasked(mp, params)
				if err != nil || len(out) != n || !EqualRanges(got, ranges) {
					t.Fatalf("%s: masked round-trip: ranges=%v err=%v", spec, got, err)
				}
			}
		}
	})
}

// isBounded reports whether v lies in the domain all four codec error
// bounds share: finite, within half range, and either zero or large enough
// that q8's float32 per-chunk scale stays normal (subnormal scales decode
// fine but fall outside the relative-error bound formula).
func isBounded(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	a := math.Abs(v)
	return a == 0 || (a >= 0x1p-126 && a <= 65504)
}

// checkBound asserts the per-codec single-message reconstruction bound.
func checkBound(t *testing.T, spec string, in, out []float64) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("%s: round-trip length %d, want %d", spec, len(out), len(in))
	}
	switch spec {
	case "raw", "topk", "topk:1": // first message is a bit-exact full sync
		for i := range in {
			if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
				t.Fatalf("%s: full payload not bit-exact at %d: %g vs %g", spec, i, in[i], out[i])
			}
		}
	case "f16":
		for i := range in {
			if bound := math.Abs(in[i])*0x1p-10 + 0x1p-24; math.Abs(in[i]-out[i]) > bound {
				t.Fatalf("f16: error %g at %d exceeds %g (x=%g)", math.Abs(in[i]-out[i]), i, bound, in[i])
			}
		}
	case "q8":
		for start := 0; start < len(in); start += q8ChunkSize {
			end := min(start+q8ChunkSize, len(in))
			var s float64
			for _, v := range in[start:end] {
				if a := math.Abs(v); a > s {
					s = a
				}
			}
			bound := s/254 + s*0x1p-23
			for i := start; i < end; i++ {
				if math.Abs(in[i]-out[i]) > bound {
					t.Fatalf("q8: error %g at %d exceeds %g (x=%g, scale=%g)", math.Abs(in[i]-out[i]), i, bound, in[i], s)
				}
			}
		}
	}
}
