package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// q8ChunkSize is the quantization granularity: each chunk of up to 256
// parameters shares one float32 scale, so a single outlier only coarsens
// its own chunk, not the whole vector.
const q8ChunkSize = 256

// q8Codec quantizes each chunk of parameters to int8 against the chunk's
// max-abs scale: q = round(127·x/s), x̂ = q·s/127. One byte per parameter
// plus 4 bytes of scale per chunk — ≈7.9× smaller than raw at the default
// chunk size, no cross-message state.
//
// Error bound (the contract TestQ8ErrorBound pins): within a chunk with
// scale s = max|x|, every finite parameter reconstructs to within
// |x − x̂| ≤ s/254 + s·2⁻²³ — half a quantization step, plus the float32
// rounding of the stored scale. An all-zero chunk reconstructs exactly.
// Inputs are assumed finite (the training loop's sanitation guarantees it);
// a non-finite chunk quantizes to garbage but never panics.
type q8Codec struct{}

var _ Codec = q8Codec{}

func (q8Codec) Name() string { return "q8" }

func (q8Codec) Encode(params []float64) ([]byte, error) {
	n := len(params)
	nChunks := (n + q8ChunkSize - 1) / q8ChunkSize
	out := make([]byte, 0, 5+4*nChunks+n)
	out = append(out, ModeFull)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	for start := 0; start < n; start += q8ChunkSize {
		chunk := params[start:min(start+q8ChunkSize, n)]
		var maxAbs float64
		for _, v := range chunk {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := float32(maxAbs)
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(scale))
		if scale == 0 || math.IsInf(float64(scale), 0) || scale != scale {
			// Degenerate chunk: all zeros (exact), or non-finite input. Ship
			// zeros; the scale value lets the decoder reproduce the shape.
			for range chunk {
				out = append(out, 0)
			}
			continue
		}
		inv := 127 / float64(scale)
		for _, v := range chunk {
			q := math.Round(v * inv)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			out = append(out, byte(int8(q)))
		}
	}
	return out, nil
}

func (q8Codec) Decode(payload []byte) ([]float64, error) {
	if len(payload) < 5 || payload[0] != ModeFull {
		return nil, fmt.Errorf("codec: q8: bad payload header")
	}
	n := int(binary.LittleEndian.Uint32(payload[1:]))
	nChunks := (n + q8ChunkSize - 1) / q8ChunkSize
	if n < 0 || len(payload) != 5+4*nChunks+n {
		return nil, fmt.Errorf("codec: q8: payload length %d does not match %d params", len(payload), n)
	}
	out := make([]float64, n)
	pos := 5
	for start := 0; start < n; start += q8ChunkSize {
		end := min(start+q8ChunkSize, n)
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[pos:])))
		pos += 4
		for i := start; i < end; i++ {
			out[i] = float64(int8(payload[pos])) * scale / 127
			pos++
		}
	}
	return out, nil
}

func (q8Codec) Reset() {}
