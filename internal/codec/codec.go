// Package codec compresses the parameter vectors that dominate the
// platform↔edge traffic of federated meta-training. Every broadcast, probe,
// and update carries one float64 vector; in the paper's edge setting that
// wire volume is the cost §V trades against local computation via T0, and
// related systems (FedMeta's 2.82–4.33× reduction, TinyMetaFed's partial
// updates) show most of it is redundant. A Codec turns a vector into a
// compact, self-contained payload and back:
//
//	raw   — 8 B/param; bit-exact (the uncompressed baseline)
//	f16   — 2 B/param; IEEE 754 half-precision truncation, ~4×
//	q8    — ~1 B/param; per-chunk max-abs int8 quantization, ~8×
//	topk  — sparsified delta against the last synchronized vector, ~10×
//	        at the default 10% density ("topk:<frac>" tunes it)
//
// Stateless codecs (raw, f16, q8) make every payload self-describing. The
// topk codec is stateful per link and per direction: both endpoints track a
// shared reference vector, each delta payload carries a sequence number, and
// a lost message surfaces as ErrDesync on the next Decode instead of silent
// corruption. Reset drops the reference so the next Encode emits a full
// payload — the resync handshake internal/core runs whenever a node is
// suspected, probed, or fails to decode.
//
// Every payload begins with a one-byte mode marker (ModeFull or ModeDelta),
// so receivers can recognize a full resync without codec-specific parsing
// (IsFull). Multi-byte fields are little-endian.
//
// The per-codec reconstruction error is a testable contract, not folklore:
// see the bounds on each implementation and the matching tests.
package codec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Raw names the identity codec; internal/core treats it (and the empty
// string) as "ship []float64 directly with no payload", today's wire format.
const Raw = "raw"

// Payload mode markers: the first byte of every encoded payload.
const (
	// ModeFull marks a self-contained payload carrying the whole vector.
	ModeFull byte = 1
	// ModeDelta marks a payload that only applies on top of the receiver's
	// reference state (topk).
	ModeDelta byte = 2
	// ModeMasked marks a structurally sparse payload: an explicit list of
	// index ranges followed by an inner-codec payload covering only those
	// coordinates. The receiver scatters the decoded sub-vector into its
	// reference copy of the full vector (see Masked).
	ModeMasked byte = 3
)

// ErrDesync reports that a stateful decode cannot proceed because the
// encoder and decoder reference states have diverged — a reference-bearing
// message was lost, or a delta arrived before any full sync. The remedy is
// a full resync: Reset both ends and re-send a full payload.
var ErrDesync = errors.New("codec: reference state out of sync")

// Codec encodes parameter vectors to wire payloads and back. An instance
// serves exactly one direction of one link: stateful implementations keep
// per-instance reference state, so sharing an instance across links or
// directions corrupts it. Instances are not safe for concurrent use.
type Codec interface {
	// Name returns the canonical spec string; New(Name()) reproduces the
	// codec, which is how the platform's choice propagates to nodes (the
	// tag travels on every message).
	Name() string
	// Encode returns the wire form of params in a freshly allocated buffer
	// (ownership passes to the caller; params is read, never retained).
	Encode(params []float64) ([]byte, error)
	// Decode parses a payload into a freshly allocated vector (ownership
	// passes to the caller). Stateful codecs return ErrDesync when the
	// payload does not apply to their reference state.
	Decode(payload []byte) ([]float64, error)
	// Reset drops any cross-message state: the next Encode emits a full
	// payload and the next Decode accepts only one. No-op for stateless
	// codecs.
	Reset()
}

// New builds a fresh codec instance from its spec string: "raw", "f16",
// "q8", "topk" (10% density), or "topk:<frac>" with frac in (0, 1].
func New(spec string) (Codec, error) {
	switch spec {
	case Raw:
		return rawCodec{}, nil
	case "f16":
		return f16Codec{}, nil
	case "q8":
		return q8Codec{}, nil
	case "topk":
		return &topKCodec{spec: spec, frac: DefaultTopKFraction}, nil
	}
	if rest, ok := strings.CutPrefix(spec, "topk:"); ok {
		frac, err := strconv.ParseFloat(rest, 64)
		if err != nil || frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("codec: bad topk fraction %q (want a number in (0, 1])", rest)
		}
		return &topKCodec{spec: spec, frac: frac}, nil
	}
	return nil, fmt.Errorf("codec: unknown codec %q (want %s)", spec, strings.Join(Names(), ", "))
}

// Valid reports whether spec names a known codec.
func Valid(spec string) bool {
	_, err := New(spec)
	return err == nil
}

// Names lists the codec families for CLI help.
func Names() []string { return []string{"raw", "f16", "q8", "topk", "topk:<frac>"} }

// IsFull reports whether payload is a full (self-contained) message — the
// resync signal a receiver uses to reset its own outbound reference chain.
// A masked payload is "full" when its inner payload is: a masked resync
// restarts the inner reference chain over the masked coordinate set without
// re-shipping the frozen coordinates.
func IsFull(payload []byte) bool {
	if len(payload) > 0 && payload[0] == ModeMasked {
		_, inner, err := parseMaskHeader(payload)
		return err == nil && IsFull(inner)
	}
	return len(payload) > 0 && payload[0] == ModeFull
}

// WireSize reports the steady-state encoded size in bytes of one
// dim-parameter message under spec, the figure the what-if cost estimators
// must use instead of assuming 8 B/param. The empty spec is the
// payload-free []float64 path (exactly 8 B/param). Stateless codecs are
// measured by encoding one representative vector; stateful (delta) codecs
// are measured on their second message, after the reference chain is
// established — the size every message but the first has.
func WireSize(spec string, dim int) (int, error) {
	if spec == "" {
		return 8 * dim, nil
	}
	c, err := New(spec)
	if err != nil {
		return 0, err
	}
	v := make([]float64, dim)
	for i := range v {
		v[i] = float64(i%17)*0.25 - 2
	}
	if _, err := c.Encode(v); err != nil {
		return 0, fmt.Errorf("codec: sizing %q: %w", spec, err)
	}
	p, err := c.Encode(v)
	if err != nil {
		return 0, fmt.Errorf("codec: sizing %q: %w", spec, err)
	}
	return len(p), nil
}
