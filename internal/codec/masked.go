package codec

import (
	"encoding/binary"
	"fmt"
)

// Range is a half-open index interval [Lo, Hi) into a parameter vector.
// A mask is a sorted, non-overlapping slice of Ranges; nil means "sync
// everything" (no mask).
type Range struct {
	Lo, Hi int
}

// Len returns the number of coordinates the range covers.
func (r Range) Len() int { return r.Hi - r.Lo }

// MaskLen returns the total number of coordinates a mask covers.
func MaskLen(ranges []Range) int {
	n := 0
	for _, r := range ranges {
		n += r.Len()
	}
	return n
}

// EqualRanges reports whether two masks cover identical ranges.
func EqualRanges(a, b []Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ValidRanges checks that ranges is a well-formed mask over a dim-parameter
// vector: sorted by Lo, non-empty, non-overlapping, within [0, dim).
func ValidRanges(ranges []Range, dim int) error {
	prev := 0
	for i, r := range ranges {
		if r.Lo < prev || r.Hi <= r.Lo || r.Hi > dim {
			return fmt.Errorf("codec: mask range %d [%d,%d) invalid over dim %d", i, r.Lo, r.Hi, dim)
		}
		prev = r.Hi
	}
	return nil
}

// Masked layers structural sparsity on top of any Codec: a masked message
// carries only the coordinates inside an explicit range list, encoded by the
// inner codec over the gathered sub-vector, and the receiver scatters the
// decoded sub-vector into a reference copy of the full vector. The wire form
// is self-describing —
//
//	[ModeMasked][u32 dim][u32 nranges][(u32 lo, u32 len)×nranges][inner payload]
//
// — so the two mask dimensions compose orthogonally: the range list is the
// structural mask (which coordinates sync at all), the inner payload is the
// per-message compression (f16/q8/topk) over just those coordinates.
//
// Statefulness mirrors the inner codec's: when the range list changes
// between messages (warmup→masked transition, resync), both endpoints reset
// the inner codec, because an inner reference chain established over one
// coordinate set cannot extend to another. Both ends see the same wire
// ranges, so encoder and decoder reset on the same message by construction.
//
// The decoder needs a full reference vector to scatter into. The platform
// supplies its current global vector as the base at every Decode; a node
// retains the last full vector it decoded (ref). A masked payload arriving
// with no reference — the receiver restarted, or never saw a full sync —
// fails with ErrDesync, which feeds the PR 5 suspect/probe/resync protocol.
//
// A Masked instance serves one direction of one link, like any Codec, and
// also satisfies the plain Codec interface by treating nil ranges as "no
// mask" (plain inner payload, no wrapper).
type Masked struct {
	inner Codec

	encRanges []Range // mask of the previous Encode (nil = full)
	encBuf    []float64

	decRanges []Range // mask of the previous Decode (nil = full)
	ref       []float64
}

var _ Codec = (*Masked)(nil)

// NewMasked wraps inner with mask support.
func NewMasked(inner Codec) *Masked { return &Masked{inner: inner} }

// Name returns the inner codec's spec: masking is self-describing on the
// wire, so the codec tag that travels on messages never changes.
func (m *Masked) Name() string { return m.inner.Name() }

// Reset drops all cross-message state: the inner reference chains, the
// remembered masks, and the decoder's full-vector reference.
func (m *Masked) Reset() {
	m.inner.Reset()
	m.encRanges = nil
	m.decRanges = nil
	m.ref = nil
}

// Encode is the plain-Codec entry point: an unmasked message.
func (m *Masked) Encode(params []float64) ([]byte, error) {
	return m.EncodeMasked(params, nil)
}

// Decode is the plain-Codec entry point: decode against the retained
// reference (masked payloads) or refresh it (plain payloads).
func (m *Masked) Decode(payload []byte) ([]float64, error) {
	out, _, err := m.DecodeMasked(payload, nil)
	return out, err
}

// EncodeMasked encodes params under the given mask. Nil ranges produce a
// plain inner payload (no wrapper); otherwise only the masked coordinates
// are gathered and encoded. Changing the mask between calls resets the
// inner codec, so the first message under any new mask is a full (inner)
// sync of that coordinate set.
func (m *Masked) EncodeMasked(params []float64, ranges []Range) ([]byte, error) {
	if len(ranges) == 0 {
		if m.encRanges != nil {
			m.inner.Reset()
			m.encRanges = nil
		}
		return m.inner.Encode(params)
	}
	if err := ValidRanges(ranges, len(params)); err != nil {
		return nil, err
	}
	if !EqualRanges(ranges, m.encRanges) {
		m.inner.Reset()
		m.encRanges = append(m.encRanges[:0:0], ranges...)
	}
	m.encBuf = m.encBuf[:0]
	for _, r := range ranges {
		m.encBuf = append(m.encBuf, params[r.Lo:r.Hi]...)
	}
	innerPayload, err := m.inner.Encode(m.encBuf)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 9+8*len(ranges)+len(innerPayload))
	out = append(out, ModeMasked)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(params)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ranges)))
	for _, r := range ranges {
		out = binary.LittleEndian.AppendUint32(out, uint32(r.Lo))
		out = binary.LittleEndian.AppendUint32(out, uint32(r.Len()))
	}
	return append(out, innerPayload...), nil
}

// DecodeMasked decodes a payload into a freshly allocated full vector.
// Plain payloads pass through the inner codec and refresh the retained
// reference. Masked payloads decode the inner sub-vector and scatter it
// into base when non-nil (the platform's current global vector) or into the
// retained reference otherwise (a node's last known global). The second
// return value is the mask the payload carried (nil for plain payloads).
func (m *Masked) DecodeMasked(payload []byte, base []float64) ([]float64, []Range, error) {
	if len(payload) == 0 || payload[0] != ModeMasked {
		if m.decRanges != nil {
			m.inner.Reset()
			m.decRanges = nil
		}
		out, err := m.inner.Decode(payload)
		if err != nil {
			return nil, nil, err
		}
		m.ref = append(m.ref[:0:0], out...)
		return out, nil, nil
	}
	ranges, innerPayload, err := parseMaskHeader(payload)
	if err != nil {
		return nil, nil, err
	}
	dim := int(binary.LittleEndian.Uint32(payload[1:]))
	if base == nil {
		base = m.ref
	}
	if base == nil {
		return nil, nil, fmt.Errorf("%w: masked payload with no full reference", ErrDesync)
	}
	if len(base) != dim {
		return nil, nil, fmt.Errorf("%w: masked payload for %d params, reference has %d", ErrDesync, dim, len(base))
	}
	if !EqualRanges(ranges, m.decRanges) {
		m.inner.Reset()
		m.decRanges = ranges
	}
	sub, err := m.inner.Decode(innerPayload)
	if err != nil {
		return nil, nil, err
	}
	if len(sub) != MaskLen(ranges) {
		return nil, nil, fmt.Errorf("codec: masked inner payload carries %d params, mask covers %d", len(sub), MaskLen(ranges))
	}
	out := append([]float64(nil), base...)
	pos := 0
	for _, r := range ranges {
		pos += copy(out[r.Lo:r.Hi], sub[pos:])
	}
	m.ref = append(m.ref[:0:0], out...)
	return out, ranges, nil
}

// parseMaskHeader validates a ModeMasked payload's framing and returns the
// range list and the inner payload. It rejects malformed masks (unsorted,
// overlapping, out of range) before any allocation proportional to the
// claimed dimension, so hostile payloads cannot force large allocations.
func parseMaskHeader(payload []byte) ([]Range, []byte, error) {
	if len(payload) < 9 {
		return nil, nil, fmt.Errorf("codec: truncated masked header")
	}
	dim := int(binary.LittleEndian.Uint32(payload[1:]))
	nr := int(binary.LittleEndian.Uint32(payload[5:]))
	if dim <= 0 || nr <= 0 || nr > dim || len(payload) < 9+8*nr {
		return nil, nil, fmt.Errorf("codec: masked header claims %d ranges over dim %d in %d bytes", nr, dim, len(payload))
	}
	ranges := make([]Range, nr)
	for i := 0; i < nr; i++ {
		lo := int(binary.LittleEndian.Uint32(payload[9+8*i:]))
		ln := int(binary.LittleEndian.Uint32(payload[13+8*i:]))
		ranges[i] = Range{Lo: lo, Hi: lo + ln}
	}
	if err := ValidRanges(ranges, dim); err != nil {
		return nil, nil, err
	}
	return ranges, payload[9+8*nr:], nil
}
