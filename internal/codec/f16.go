package codec

import (
	"fmt"
	"math"
)

// f16Codec truncates every parameter to IEEE 754 binary16: 2 bytes per
// parameter, a fixed 4× reduction, no cross-message state.
//
// Error bound (the contract TestF16ErrorBound pins): for finite x with
// |x| ≤ 65504 (the largest finite half), |x − x̂| ≤ 2⁻¹⁰·|x| + 2⁻²⁴ —
// half-precision keeps 11 significand bits, so round-to-nearest loses at
// most one part in 2¹¹ of normal values, with the absolute floor covering
// the subnormal range; the stated bound doubles the relative term to absorb
// the float64→float32→half double rounding. Finite |x| > 65504 clamps to
// ±65504 rather than overflowing to ±Inf, so compression can never
// manufacture the non-finite values the platform's sanitation guard
// rejects. ±Inf and NaN inputs are preserved as such.
type f16Codec struct{}

var _ Codec = f16Codec{}

func (f16Codec) Name() string { return "f16" }

func (f16Codec) Encode(params []float64) ([]byte, error) {
	out := make([]byte, 1+2*len(params))
	out[0] = ModeFull
	for i, v := range params {
		h := halfFromFloat64(v)
		out[1+2*i] = byte(h)
		out[2+2*i] = byte(h >> 8)
	}
	return out, nil
}

func (f16Codec) Decode(payload []byte) ([]float64, error) {
	if len(payload) < 1 || payload[0] != ModeFull {
		return nil, fmt.Errorf("codec: f16: bad payload header")
	}
	body := payload[1:]
	if len(body)%2 != 0 {
		return nil, fmt.Errorf("codec: f16: payload length %d not a whole number of halfs", len(body))
	}
	out := make([]float64, len(body)/2)
	for i := range out {
		out[i] = halfToFloat64(uint16(body[2*i]) | uint16(body[2*i+1])<<8)
	}
	return out, nil
}

func (f16Codec) Reset() {}

// halfFromFloat64 converts to binary16 with round-to-nearest-even, clamping
// finite overflow to the largest finite half instead of ±Inf.
func halfFromFloat64(v float64) uint16 {
	f := float32(v) // round-to-nearest into binary32 first
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff

	switch {
	case exp >= 0x1f:
		if b&0x7fffffff > 0x7f800000 {
			return sign | 0x7e00 // NaN stays NaN
		}
		if math.IsInf(v, 0) {
			return sign | 0x7c00 // true infinity passes through
		}
		return sign | 0x7bff // finite overflow clamps to ±65504
	case exp <= 0:
		if exp < -10 {
			return sign // underflows to signed zero
		}
		// Subnormal half: shift the implicit leading 1 into the mantissa.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := sign | uint16(mant>>shift)
		rem := mant & (1<<shift - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++ // carry into the normal range is numerically correct
		}
		return half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++
		}
		if half&0x7fff >= 0x7c00 {
			return sign | 0x7bff // rounding overflowed a finite value: clamp
		}
		return half
	}
}

// halfToFloat64 expands a binary16 value exactly (every half is
// representable in float64).
func halfToFloat64(h uint16) float64 {
	sign := 1.0
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & 0x1f)
	mant := int(h & 0x3ff)
	switch exp {
	case 0:
		return sign * float64(mant) * 0x1p-24
	case 0x1f:
		if mant == 0 {
			return sign * math.Inf(1)
		}
		return math.NaN()
	default:
		return sign * math.Ldexp(float64(1024+mant), exp-25)
	}
}
