package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// rawCodec is the identity encoding: 8 bytes per parameter, bit-exact.
// internal/core never routes the hot path through it — a raw federation
// ships []float64 directly, exactly as before the codec layer existed — but
// having it as a real Codec keeps the experiment grid, the fuzz target, and
// the error-bound contracts uniform across all four families.
//
// Error bound: zero; Decode(Encode(x)) reproduces x bit for bit (NaN
// payloads included).
type rawCodec struct{}

var _ Codec = rawCodec{}

func (rawCodec) Name() string { return Raw }

func (rawCodec) Encode(params []float64) ([]byte, error) {
	out := make([]byte, 1+8*len(params))
	out[0] = ModeFull
	for i, v := range params {
		binary.LittleEndian.PutUint64(out[1+8*i:], math.Float64bits(v))
	}
	return out, nil
}

func (rawCodec) Decode(payload []byte) ([]float64, error) {
	if len(payload) < 1 || payload[0] != ModeFull {
		return nil, fmt.Errorf("codec: raw: bad payload header")
	}
	body := payload[1:]
	if len(body)%8 != 0 {
		return nil, fmt.Errorf("codec: raw: payload length %d not a whole number of float64s", len(body))
	}
	out := make([]float64, len(body)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return out, nil
}

func (rawCodec) Reset() {}
