package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// DefaultTopKFraction is the delta density "topk" keeps when no explicit
// fraction is given: the largest 10% of delta coordinates per message.
const DefaultTopKFraction = 0.10

// topKCodec ships sparsified deltas against the last synchronized vector.
// The first message after construction or Reset is a full payload that
// establishes the shared reference; each following Encode transmits only
// the k = ⌈frac·n⌉ largest-magnitude coordinates of (params − ref) as
// (uint32 index, float32 value) pairs — ≈(8·frac)·n bytes instead of 8n,
// a ~10× reduction at the default density.
//
// Both endpoints advance the same reference: the encoder applies exactly
// the sparsified, float32-rounded delta it transmitted to its own ref, so
// after every successful Decode the decoder's state is bit-identical to the
// encoder's (the contract TestTopKMirrors pins). The untransmitted residual
// therefore stays in the encoder's next delta — error feedback for free —
// and the reconstruction error of any single message is bounded by the
// coordinates it dropped: ‖x − x̂‖∞ ≤ max untransmitted |Δᵢ| + 2⁻²⁴ per
// kept coordinate from float32 rounding. With frac = 1 every coordinate
// ships and the error is float32 rounding alone.
//
// Loss safety: every payload carries a sequence number; a delta that does
// not extend the decoder's reference chain (a lost or reordered reference
// message) fails with ErrDesync instead of applying against the wrong base.
// Recovery is a full resync: Reset both ends, Encode emits a full payload.
type topKCodec struct {
	spec string
	frac float64

	ref []float64
	seq uint32

	// selection scratch, reused across Encodes
	idx []int
}

var _ Codec = (*topKCodec)(nil)

func (c *topKCodec) Name() string { return c.spec }

func (c *topKCodec) Reset() {
	c.ref = nil
	c.seq = 0
}

func (c *topKCodec) Encode(params []float64) ([]byte, error) {
	n := len(params)
	if c.ref == nil || len(c.ref) != n {
		// Full sync: restart the reference chain at seq 1.
		c.ref = append(c.ref[:0], params...)
		c.seq = 1
		out := make([]byte, 9, 9+8*n)
		out[0] = ModeFull
		binary.LittleEndian.PutUint32(out[1:], c.seq)
		binary.LittleEndian.PutUint32(out[5:], uint32(n))
		for _, v := range params {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		return out, nil
	}

	c.seq++
	k := int(math.Ceil(c.frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Deterministic selection: order by |Δ| descending, index ascending on
	// ties, then transmit the k winners in index order.
	c.idx = c.idx[:0]
	for i := 0; i < n; i++ {
		c.idx = append(c.idx, i)
	}
	absDelta := func(i int) float64 { return math.Abs(params[i] - c.ref[i]) }
	sort.Slice(c.idx, func(a, b int) bool {
		da, db := absDelta(c.idx[a]), absDelta(c.idx[b])
		if da != db {
			return da > db
		}
		return c.idx[a] < c.idx[b]
	})
	kept := c.idx[:k]
	sort.Ints(kept)

	out := make([]byte, 13, 13+8*k)
	out[0] = ModeDelta
	binary.LittleEndian.PutUint32(out[1:], c.seq)
	binary.LittleEndian.PutUint32(out[5:], uint32(n))
	binary.LittleEndian.PutUint32(out[9:], uint32(k))
	for _, i := range kept {
		out = binary.LittleEndian.AppendUint32(out, uint32(i))
	}
	for _, i := range kept {
		v := float32(params[i] - c.ref[i])
		// Advance the local reference by exactly what the wire carries, so
		// both ends stay bit-identical and the rounding residual rides into
		// the next delta.
		c.ref[i] += float64(v)
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out, nil
}

func (c *topKCodec) Decode(payload []byte) ([]float64, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("codec: topk: empty payload")
	}
	switch payload[0] {
	case ModeFull:
		if len(payload) < 9 {
			return nil, fmt.Errorf("codec: topk: truncated full payload")
		}
		seq := binary.LittleEndian.Uint32(payload[1:])
		n := int(binary.LittleEndian.Uint32(payload[5:]))
		if n < 0 || len(payload) != 9+8*n {
			return nil, fmt.Errorf("codec: topk: full payload length %d does not match %d params", len(payload), n)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[9+8*i:]))
		}
		c.ref = append(c.ref[:0:0], out...)
		c.seq = seq
		return out, nil
	case ModeDelta:
		if len(payload) < 13 {
			return nil, fmt.Errorf("codec: topk: truncated delta payload")
		}
		seq := binary.LittleEndian.Uint32(payload[1:])
		n := int(binary.LittleEndian.Uint32(payload[5:]))
		k := int(binary.LittleEndian.Uint32(payload[9:]))
		if c.ref == nil {
			return nil, fmt.Errorf("%w: delta before any full sync", ErrDesync)
		}
		if n != len(c.ref) {
			return nil, fmt.Errorf("%w: delta for %d params, reference has %d", ErrDesync, n, len(c.ref))
		}
		if seq != c.seq+1 {
			return nil, fmt.Errorf("%w: delta seq %d does not extend reference seq %d", ErrDesync, seq, c.seq)
		}
		if k < 0 || k > n || len(payload) != 13+8*k {
			return nil, fmt.Errorf("codec: topk: delta payload length %d does not match k=%d", len(payload), k)
		}
		idxs := payload[13 : 13+4*k]
		vals := payload[13+4*k:]
		prev := -1
		for j := 0; j < k; j++ {
			i := int(binary.LittleEndian.Uint32(idxs[4*j:]))
			if i <= prev || i >= n {
				return nil, fmt.Errorf("codec: topk: delta index %d out of order or range (n=%d)", i, n)
			}
			prev = i
		}
		for j := 0; j < k; j++ {
			i := int(binary.LittleEndian.Uint32(idxs[4*j:]))
			v := math.Float32frombits(binary.LittleEndian.Uint32(vals[4*j:]))
			c.ref[i] += float64(v)
		}
		c.seq = seq
		return append([]float64(nil), c.ref...), nil
	default:
		return nil, fmt.Errorf("codec: topk: unknown payload mode %d", payload[0])
	}
}
