package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/transport"
)

// The paper's round loop is a full gather barrier: every aggregation waits
// for the slowest participant, so one straggling node sets the pace of the
// whole federation. This extension measures what the buffered-async loop
// (core.RunAsyncPlatform) buys under latency skew: the same federation is
// trained twice — once through the synchronous barrier, once async with
// staleness-decayed weights — with one node's link running at 10× the
// per-message latency of its peers, and the cell reports round throughput
// and final meta-objective for both.

// ExtAsyncConfig parameterizes the latency-skew comparison.
type ExtAsyncConfig struct {
	Scale       Scale
	Alpha, Beta float64
	// T and T0 are the iteration budget and local step count.
	T, T0 int
	// BaseLatency is every healthy link's per-message delay;
	// StragglerLatency (10× base) applies to StragglerNode's link only.
	BaseLatency      time.Duration
	StragglerLatency time.Duration
	StragglerNode    int
	// RoundTimeout bounds both loops' per-round waiting. It is sized far
	// above the straggler's round trip, so the sync barrier always waits the
	// full straggler latency rather than dropping the node — the regime the
	// async loop is built for.
	RoundTimeout time.Duration
	// StalenessDecay, MaxStaleness, AsyncQuorum are the async knobs
	// (core.Config semantics).
	StalenessDecay float64
	MaxStaleness   int
	AsyncQuorum    float64
	Seed           uint64
}

// DefaultExtAsyncConfig returns the cell configuration: the CI scale trims
// the iteration budget, not the structure.
func DefaultExtAsyncConfig(scale Scale) ExtAsyncConfig {
	cfg := ExtAsyncConfig{
		Scale: scale,
		Alpha: 0.01, Beta: 0.01,
		T: 300, T0: 5,
		BaseLatency:      2 * time.Millisecond,
		StragglerLatency: 20 * time.Millisecond,
		StragglerNode:    3,
		RoundTimeout:     2 * time.Second,
		StalenessDecay:   0.5,
		MaxStaleness:     20,
		// High quorum: only the true straggler should ride the staleness
		// path. A lower quorum lets borderline-fast nodes systematically
		// miss the round too, trading objective quality for no extra
		// throughput (the straggler already never gates).
		AsyncQuorum: 0.9,
		Seed:        7,
	}
	if scale == ScaleCI {
		// Long enough for the transient to decay — the 5%-gap claim is
		// about the converged objective, not the first dozen rounds.
		cfg.T = 120
	}
	return cfg
}

// ExtAsyncResult is the measured outcome of both runs.
type ExtAsyncResult struct {
	Nodes int
	// SyncRounds/AsyncRounds are completed aggregations; the rates are
	// rounds per wall-clock second.
	SyncRounds, AsyncRounds int
	SyncElapsed             time.Duration
	AsyncElapsed            time.Duration
	SyncRate, AsyncRate     float64
	// Speedup is AsyncRate / SyncRate.
	Speedup float64
	// GFaultFree, GSync, GAsync are the final global meta-objectives of the
	// latency-free reference and the two skewed runs; RelGap is
	// |GAsync − GFaultFree| / |GFaultFree|.
	GFaultFree, GSync, GAsync float64
	RelGap                    float64
	// StaleApplied/StaleDropped are the async run's staleness counters.
	StaleApplied, StaleDropped int
}

// RunExtAsync trains the same federation through the sync barrier and the
// buffered-async loop under identical latency skew.
func RunExtAsync(cfg ExtAsyncConfig) (*ExtAsyncResult, error) {
	fed, err := syntheticFederation(0, 0, cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("ext-async federation: %w", err)
	}
	m := softmaxModel(fed)
	base := core.Config{Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed}

	ff, err := core.Train(m, fed, nil, base)
	if err != nil {
		return nil, fmt.Errorf("ext-async fault-free reference: %w", err)
	}

	skewed := func(c core.Config) core.Config {
		c.RoundTimeout = cfg.RoundTimeout
		c.GuardRadius = 50
		c.WrapLink = func(i int, l transport.Link) transport.Link {
			lat := cfg.BaseLatency
			if i == cfg.StragglerNode {
				lat = cfg.StragglerLatency
			}
			return transport.NewChaos(l, transport.ChaosConfig{Seed: cfg.Seed + uint64(i), Latency: lat})
		}
		return c
	}

	timed := func(c core.Config) (*core.Result, time.Duration, error) {
		start := time.Now()
		res, err := core.Train(m, fed, nil, c)
		return res, time.Since(start), err
	}

	syncRes, syncElapsed, err := timed(skewed(base))
	if err != nil {
		return nil, fmt.Errorf("ext-async sync run: %w", err)
	}

	asyncCfg := skewed(base)
	asyncCfg.Async = true
	asyncCfg.StalenessDecay = cfg.StalenessDecay
	asyncCfg.MaxStaleness = cfg.MaxStaleness
	asyncCfg.AsyncQuorum = cfg.AsyncQuorum
	asyncRes, asyncElapsed, err := timed(asyncCfg)
	if err != nil {
		return nil, fmt.Errorf("ext-async async run: %w", err)
	}

	gFF := eval.GlobalMetaObjective(m, fed, cfg.Alpha, ff.Theta)
	gSync := eval.GlobalMetaObjective(m, fed, cfg.Alpha, syncRes.Theta)
	gAsync := eval.GlobalMetaObjective(m, fed, cfg.Alpha, asyncRes.Theta)
	syncRate := float64(syncRes.Comm.Rounds) / syncElapsed.Seconds()
	asyncRate := float64(asyncRes.Comm.Rounds) / asyncElapsed.Seconds()
	speedup := 0.0
	if syncRate > 0 {
		speedup = asyncRate / syncRate
	}
	relGap := math.Abs(gAsync-gFF) / math.Abs(gFF)

	return &ExtAsyncResult{
		Nodes:        len(fed.Sources),
		SyncRounds:   syncRes.Comm.Rounds,
		AsyncRounds:  asyncRes.Comm.Rounds,
		SyncElapsed:  syncElapsed,
		AsyncElapsed: asyncElapsed,
		SyncRate:     syncRate,
		AsyncRate:    asyncRate,
		Speedup:      speedup,
		GFaultFree:   gFF,
		GSync:        gSync,
		GAsync:       gAsync,
		RelGap:       relGap,
		StaleApplied: asyncRes.Comm.StaleApplied,
		StaleDropped: asyncRes.Comm.StaleDropped,
	}, nil
}

// Render implements the printable experiment.
func (r *ExtAsyncResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: buffered-async vs sync barrier under latency skew (1 node at 10x latency, %d nodes)\n", r.Nodes)
	fmt.Fprintf(&b, "%-8s %-8s %-12s %-10s %-12s\n", "loop", "rounds", "elapsed", "rounds/s", "final G")
	fmt.Fprintf(&b, "%-8s %-8d %-12s %-10.1f %-12.5f\n", "sync", r.SyncRounds, r.SyncElapsed.Round(time.Millisecond), r.SyncRate, r.GSync)
	fmt.Fprintf(&b, "%-8s %-8d %-12s %-10.1f %-12.5f\n", "async", r.AsyncRounds, r.AsyncElapsed.Round(time.Millisecond), r.AsyncRate, r.GAsync)
	fmt.Fprintf(&b, "speedup %.1fx; fault-free G %.5f, async gap %.2f%%; stale applied %d, dropped %d\n",
		r.Speedup, r.GFaultFree, 100*r.RelGap, r.StaleApplied, r.StaleDropped)
	return b.String()
}
