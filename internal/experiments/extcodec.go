package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/tensor"
)

// ExtCodecConfig parameterizes the communication-efficiency extension: the
// same federated run under each update codec, compared on accuracy achieved
// per wire byte.
type ExtCodecConfig struct {
	Scale Scale
	// Codecs lists the internal/codec specs to compare; nil means
	// {raw, f16, q8, topk}.
	Codecs []string
	// AlphaBeta is the Synthetic similarity level (0.5, the middle ground).
	AlphaBeta float64
	// Alpha, Beta are the learning rates.
	Alpha, Beta float64
	// T, T0 are the iteration budget and local steps.
	T, T0 int
	// AdaptSteps is the target-side adaptation depth for the accuracy probe.
	AdaptSteps int
	Seed       uint64
	// Workers bounds the per-codec cell fan-out (0 = GOMAXPROCS).
	Workers int
}

// DefaultExtCodecConfig returns the extension's configuration at the given
// scale.
func DefaultExtCodecConfig(scale Scale) ExtCodecConfig {
	cfg := ExtCodecConfig{
		Scale:      scale,
		Codecs:     []string{"raw", "f16", "q8", "topk"},
		AlphaBeta:  0.5,
		Alpha:      0.01,
		Beta:       0.01,
		T:          500,
		T0:         10,
		AdaptSteps: 10,
		Seed:       1,
	}
	if scale == ScaleCI {
		cfg.T = 100
	}
	return cfg
}

// ExtCodecResult holds one accuracy-vs-bytes curve per codec plus the
// end-of-run summary row each curve collapses to.
type ExtCodecResult struct {
	// Curves plot mean target accuracy (y) against cumulative wire KiB (x,
	// stored in the Series iteration slot) — the paper-style comparison of
	// what each transmitted byte buys.
	Curves []*eval.Series
	// Codecs, Bytes, FinalAcc are the per-codec totals, in Curves order.
	Codecs   []string
	Bytes    []int64
	FinalAcc []float64
}

// extCodecCell is one codec's output slot.
type extCodecCell struct {
	curve *eval.Series
	bytes int64
	acc   float64
}

// RunExtCodec trains the same Synthetic federation once per codec and
// reports accuracy-versus-traffic. Each cell owns its federation, model,
// recorder, and series, so the fan-out is bit-identical for every worker
// count; only the wire encoding differs between cells.
func RunExtCodec(cfg ExtCodecConfig) (*ExtCodecResult, error) {
	if len(cfg.Codecs) == 0 {
		cfg.Codecs = []string{"raw", "f16", "q8", "topk"}
	}
	cells := make([]extCodecCell, len(cfg.Codecs))
	err := par.ForEachErr(cfg.Workers, len(cfg.Codecs), func(c int) error {
		spec := cfg.Codecs[c]
		fed, err := syntheticFederation(cfg.AlphaBeta, cfg.AlphaBeta, cfg.Scale, 5, cfg.Seed)
		if err != nil {
			return fmt.Errorf("ext-codec data: %w", err)
		}
		m := softmaxModel(fed)
		rec := obs.NewRecorder()
		accByIter := map[int]float64{}
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
			Codec:    spec,
			Observer: rec,
			OnRound: func(_, iter int, theta tensor.Vec) {
				accs := eval.FinalAccuraciesN(m, theta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
				var s float64
				for _, a := range accs {
					s += a
				}
				accByIter[iter] = s / float64(len(accs))
			},
		}
		res, err := core.Train(m, fed, nil, trainCfg)
		if err != nil {
			return fmt.Errorf("ext-codec train %q: %w", spec, err)
		}
		// Join the accuracy probe with the billed traffic on the shared
		// iteration axis, yielding accuracy as a function of bytes spent.
		curve := &eval.Series{Name: spec}
		for _, p := range eval.TrafficTrajectory(spec, rec.Rounds()).Points {
			if acc, ok := accByIter[p.Iter]; ok {
				curve.Add(int(p.Value/1024), acc)
			}
		}
		cells[c].curve = curve
		cells[c].bytes = res.Comm.Bytes
		if last, ok := curve.Last(); ok {
			cells[c].acc = last.Value
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &ExtCodecResult{}
	for i, cell := range cells {
		res.Curves = append(res.Curves, cell.curve)
		res.Codecs = append(res.Codecs, cfg.Codecs[i])
		res.Bytes = append(res.Bytes, cell.bytes)
		res.FinalAcc = append(res.FinalAcc, cell.acc)
	}
	return res, nil
}

// Render implements the printable extension: one accuracy-vs-KiB block per
// codec (the x-grids differ by construction — that is the point), then the
// summary table with compression ratios against the first (baseline) codec.
func (r *ExtCodecResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: accuracy vs wire traffic by update codec, Synthetic(0.5,0.5)\n")
	for _, s := range r.Curves {
		fmt.Fprintf(&b, "codec %s (KiB -> mean target accuracy)\n", s.Name)
		b.WriteString(s.TSV())
	}
	b.WriteString("codec      total KiB   final acc   ratio vs raw\n")
	base := float64(r.Bytes[0])
	for i, name := range r.Codecs {
		fmt.Fprintf(&b, "%-10s %-11.1f %-11.4f %.2fx\n",
			name, float64(r.Bytes[i])/1024, r.FinalAcc[i], base/float64(r.Bytes[i]))
	}
	return b.String()
}
