package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/par"
)

// Theorem 3 bounds the target's post-adaptation optimality gap by (among
// sample-size terms) the surrogate difference ‖θ*_t − θ*_c‖: how far the
// target task's own optimum sits from the meta-learned optimum. The paper
// proves the bound but shows no figure for it; this extension experiment
// measures both sides across held-out target nodes and checks the implied
// monotone relationship — targets whose tasks sit farther from the
// federation adapt worse.

// Thm3Config parameterizes the experiment.
type Thm3Config struct {
	Scale Scale
	// AlphaBeta is the Synthetic similarity level.
	AlphaBeta float64
	// Alpha, Beta are the FedML rates.
	Alpha, Beta float64
	T, T0       int
	// OptSteps is the gradient budget used to approximate each target's own
	// optimum θ*_t.
	OptSteps int
	Seed     uint64
	// Workers bounds the per-target fan-out (0 = GOMAXPROCS).
	Workers int
}

// DefaultThm3Config returns the experiment configuration.
func DefaultThm3Config(scale Scale) Thm3Config {
	cfg := Thm3Config{
		Scale:     scale,
		AlphaBeta: 1, // heterogeneous: spreads the surrogate distances
		Alpha:     0.05,
		Beta:      0.01,
		T:         300,
		T0:        5,
		OptSteps:  400,
		Seed:      6,
	}
	if scale == ScaleCI {
		cfg.T = 100
		cfg.OptSteps = 200
	}
	return cfg
}

// Thm3Point is one target node's measurement.
type Thm3Point struct {
	// Target is the node index.
	Target int
	// SurrogateDist approximates ‖θ*_t − θ_c‖.
	SurrogateDist float64
	// AdaptGap is L_t(φ_t) − L_t(φ*_t): the excess test loss of one-step
	// adaptation from the meta-model over adaptation from the target's own
	// optimum.
	AdaptGap float64
}

// Thm3Result holds the per-target scatter and its rank correlation.
type Thm3Result struct {
	Points []Thm3Point
	// RankCorrelation is the Spearman correlation between surrogate
	// distance and adaptation gap; Theorem 3 implies it should be positive.
	RankCorrelation float64
}

// RunThm3 trains FedML, approximates every target's own optimum by direct
// gradient descent on its full local data, and compares adaptation from the
// meta-model against adaptation from the target optimum.
func RunThm3(cfg Thm3Config) (*Thm3Result, error) {
	fed, err := syntheticFederation(cfg.AlphaBeta, cfg.AlphaBeta, cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("thm3 data: %w", err)
	}
	m := softmaxModel(fed)
	trainRes, err := core.Train(m, fed, nil, core.Config{
		Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("thm3 train: %w", err)
	}
	thetaC := trainRes.Theta

	// Targets are independent; measure them on the worker pool into index
	// slots (θ_c is read-only during the fan-out).
	res := &Thm3Result{Points: make([]Thm3Point, len(fed.Targets))}
	par.ForEach(cfg.Workers, len(fed.Targets), func(ti int) {
		node := fed.Targets[ti]
		all := node.All()
		// θ*_t: the target's own (regularized) optimum on its full data.
		thetaT := meta.Adapt(m, thetaC, all, cfg.Alpha, cfg.OptSteps)

		// One-step adaptation from the meta-model vs from θ*_t, both
		// evaluated on the target's test split (L*_t stand-in).
		phiC := meta.Adapt(m, thetaC, node.Train, cfg.Alpha, 1)
		phiT := meta.Adapt(m, thetaT, node.Train, cfg.Alpha, 1)
		gap := m.Loss(phiC, node.Test) - m.Loss(phiT, node.Test)

		res.Points[ti] = Thm3Point{
			Target:        ti,
			SurrogateDist: thetaT.Dist(thetaC),
			AdaptGap:      gap,
		}
	})
	res.RankCorrelation = spearman(res.Points)
	return res, nil
}

// spearman computes the Spearman rank correlation between surrogate
// distance and adaptation gap.
func spearman(points []Thm3Point) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	rankOf := func(value func(Thm3Point) float64) []float64 {
		ranks := make([]float64, n)
		for i := range points {
			r := 0
			for j := range points {
				if value(points[j]) < value(points[i]) {
					r++
				}
			}
			ranks[i] = float64(r)
		}
		return ranks
	}
	rx := rankOf(func(p Thm3Point) float64 { return p.SurrogateDist })
	ry := rankOf(func(p Thm3Point) float64 { return p.AdaptGap })
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i] / float64(n)
		my += ry[i] / float64(n)
	}
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		cov += (rx[i] - mx) * (ry[i] - my)
		vx += (rx[i] - mx) * (rx[i] - mx)
		vy += (ry[i] - my) * (ry[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Render implements the printable experiment.
func (r *Thm3Result) Render() string {
	var b strings.Builder
	b.WriteString("Theorem 3 (extension): target adaptation gap vs surrogate distance ‖θ*_t − θ_c‖\n")
	fmt.Fprintf(&b, "%-8s %-16s %-16s\n", "target", "‖θ*_t − θ_c‖", "adaptation gap")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8d %-16.4f %-16.4f\n", p.Target, p.SurrogateDist, p.AdaptGap)
	}
	fmt.Fprintf(&b, "Spearman rank correlation: %.3f (Theorem 3 implies positive)\n", r.RankCorrelation)
	return b.String()
}
