package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/edgeai/fedml/internal/codec"
	"github.com/edgeai/fedml/internal/core"
)

func TestThm3ShapeAndRender(t *testing.T) {
	res, err := RunThm3(DefaultThm3Config(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no target points")
	}
	for _, p := range res.Points {
		if p.SurrogateDist <= 0 {
			t.Errorf("target %d: surrogate distance %v not positive", p.Target, p.SurrogateDist)
		}
		// The gap can be slightly negative on tiny test sets (sampling
		// noise), but it should not be hugely negative: adapting from the
		// target's own optimum should not be much worse.
		if p.AdaptGap < -0.5 {
			t.Errorf("target %d: adaptation gap %v unreasonably negative", p.Target, p.AdaptGap)
		}
	}
	if res.RankCorrelation < -1 || res.RankCorrelation > 1 {
		t.Errorf("rank correlation %v outside [-1, 1]", res.RankCorrelation)
	}
	out := res.Render()
	if !strings.Contains(out, "Spearman") || !strings.Contains(out, "Theorem 3") {
		t.Errorf("render missing pieces:\n%s", out)
	}
}

func TestSpearmanKnownCases(t *testing.T) {
	perfect := []Thm3Point{
		{SurrogateDist: 1, AdaptGap: 10},
		{SurrogateDist: 2, AdaptGap: 20},
		{SurrogateDist: 3, AdaptGap: 30},
	}
	if got := spearman(perfect); got != 1 {
		t.Errorf("perfect correlation = %v, want 1", got)
	}
	inverted := []Thm3Point{
		{SurrogateDist: 1, AdaptGap: 30},
		{SurrogateDist: 2, AdaptGap: 20},
		{SurrogateDist: 3, AdaptGap: 10},
	}
	if got := spearman(inverted); got != -1 {
		t.Errorf("inverted correlation = %v, want -1", got)
	}
	if got := spearman(perfect[:1]); got != 0 {
		t.Errorf("single point correlation = %v, want 0", got)
	}
	constant := []Thm3Point{
		{SurrogateDist: 1, AdaptGap: 5},
		{SurrogateDist: 2, AdaptGap: 5},
	}
	if got := spearman(constant); got != 0 {
		t.Errorf("degenerate correlation = %v, want 0", got)
	}
}

func TestExtTimeShape(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScaleCI)
	cfg.TargetG = 1.0 // easy target so every run crosses it
	res, err := RunExtTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3*len(cfg.T0s) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	reached := 0
	for _, c := range res.Cells {
		if c.ItersToTarget > 0 {
			reached++
			if c.Time <= 0 {
				t.Errorf("cell %s/T0=%d reached target with zero time", c.Profile, c.T0)
			}
		}
	}
	if reached == 0 {
		t.Fatal("no run reached the target objective")
	}
	// The paper's §IV claim: slow links prefer larger T0 than fast links.
	slowBest, slowOK := res.BestT0["lora-like"]
	fastBest, fastOK := res.BestT0["datacenter"]
	if slowOK && fastOK && slowBest < fastBest {
		t.Errorf("slow network preferred SMALLER T0 (%d) than fast network (%d)", slowBest, fastBest)
	}
	out := res.Render()
	if !strings.Contains(out, "best T0 per profile") {
		t.Error("render missing summary")
	}
}

func TestExtTimeUnreachedTarget(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScaleCI)
	cfg.T = 20
	cfg.T0s = []int{5}
	cfg.TargetG = 1e-9 // unreachable
	res, err := RunExtTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.ItersToTarget != 0 || c.Time != 0 {
			t.Errorf("unreachable target produced crossing: %+v", c)
		}
	}
	if len(res.BestT0) != 0 {
		t.Errorf("BestT0 populated for unreachable target: %v", res.BestT0)
	}
	if !strings.Contains(res.Render(), "not reached") {
		t.Error("render missing 'not reached'")
	}
}

// TestExtTimeCodecPricing pins the codec-aware message pricing: a q8 run
// moves ~1 B/param on the wire, so the modelled transfer time must be priced
// at the codec's steady-state encoded size. The expected times are recomputed
// from codec.WireSize; the old 8 B/param formula overprices q8 transfers
// ~8× on the bandwidth-bound lora-like profile and fails this test.
func TestExtTimeCodecPricing(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScaleCI)
	cfg.T0s = []int{5}
	cfg.TargetG = 1.0 // easy target so the run crosses it
	cfg.Codec = "q8"
	res, err := RunExtTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := syntheticFederation(0.5, 0.5, cfg.Scale, 5, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	m := softmaxModel(fed)
	q8Bytes, err := codec.WireSize("q8", m.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	// The q8 contract is ~1 B/param: at least a 4× discount on 8 B/param.
	if 8*m.NumParams() < 4*q8Bytes {
		t.Fatalf("q8 wire size %d B for %d params — expected ~1 B/param", q8Bytes, m.NumParams())
	}
	profiles := core.EdgeProfiles(cfg.LocalStepTime)
	checked := 0
	for _, c := range res.Cells {
		if c.ItersToTarget == 0 {
			continue
		}
		want, err := profiles[c.Profile].Estimate(core.CommStats{Rounds: c.RoundsToTarget}, c.ItersToTarget, q8Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if c.Time != want {
			t.Errorf("%s/T0=%d priced at %v, want %v (q8 wire size %d B)", c.Profile, c.T0, c.Time, want, q8Bytes)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no cell reached the target; pricing unexercised")
	}
}

func TestExtTimeRejectsBadT0(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScaleCI)
	cfg.T0s = []int{7} // 200 % 7 != 0
	if _, err := RunExtTime(cfg); err == nil {
		t.Error("non-divisor T0 accepted")
	}
}

func TestExtBaselinesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("five training runs are slow")
	}
	res, err := RunExtBaselines(DefaultExtBaselinesConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 5 || len(res.Curves) != 5 || len(res.SourceMeta) != 5 {
		t.Fatalf("expected 5 algorithms, got %d", len(res.Names))
	}
	for i, name := range res.Names {
		c := res.Curves[i]
		if len(c) == 0 {
			t.Fatalf("%s: empty curve", name)
		}
		final := c[len(c)-1].Accuracy
		if final <= 0.2 {
			t.Errorf("%s adapted accuracy %v barely above chance", name, final)
		}
		if res.SourceMeta[i] <= 0 {
			t.Errorf("%s: non-positive source meta objective", name)
		}
	}
	// FedML optimizes the source meta-objective directly; it must achieve
	// the (weakly) best value there among all algorithms.
	for i := 1; i < len(res.Names); i++ {
		if res.SourceMeta[0] > res.SourceMeta[i]+0.05 {
			t.Errorf("FedML source G %.4f materially worse than %s %.4f",
				res.SourceMeta[0], res.Names[i], res.SourceMeta[i])
		}
	}
	out := res.Render()
	for _, want := range []string{"FedML", "FedProx", "Reptile", "source meta-objective"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestExtensionExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
	}
	for _, want := range []string{"thm3", "ext-time", "ext-baselines", "ext-energy", "ext-rec", "ext-fault"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

// TestExtEnergyAcceptance pins the experiment's headline claims under the
// lora-like radio: head-only sync lands within 2 accuracy points of full
// sync while spending at least 3× fewer modeled joules, and the budgeted arm
// actually exercises the budget filter (the hungry node sits out the full-
// payload warmup rounds) without losing the adapted accuracy.
func TestExtEnergyAcceptance(t *testing.T) {
	res, err := RunExtEnergy(DefaultExtEnergyConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 || res.Arms[0] != "full-sync" || res.Arms[1] != "head-sync" || res.Arms[2] != "head+budget" {
		t.Fatalf("arms = %v", res.Arms)
	}
	for i, name := range res.Arms {
		if len(res.AccVsJoules[i].Points) == 0 || len(res.AccVsKiB[i].Points) == 0 {
			t.Fatalf("%s: empty curve", name)
		}
		if res.TotalJoules[i] <= 0 || res.TotalKiB[i] <= 0 {
			t.Errorf("%s: non-positive totals J=%v KiB=%v", name, res.TotalJoules[i], res.TotalKiB[i])
		}
	}
	full, head, budget := 0, 1, 2
	if gap := res.FinalAcc[full] - res.FinalAcc[head]; gap > 0.02 {
		t.Errorf("head-sync accuracy %.4f more than 2 points below full-sync %.4f",
			res.FinalAcc[head], res.FinalAcc[full])
	}
	if res.TotalJoules[head] > res.TotalJoules[full]/3 {
		t.Errorf("head-sync spent %.0f J, want <= 1/3 of full-sync %.0f J",
			res.TotalJoules[head], res.TotalJoules[full])
	}
	if res.BudgetFiltered[budget] == 0 {
		t.Error("budgeted arm never filtered the hungry node")
	}
	if res.BudgetFiltered[full] != 0 || res.BudgetFiltered[head] != 0 {
		t.Errorf("unbudgeted arms report filtering: %v", res.BudgetFiltered)
	}
	// 5-class task: chance is 0.2; the budgeted run must still adapt well.
	if res.FinalAcc[budget] < 0.5 {
		t.Errorf("budgeted arm accuracy %.4f collapsed", res.FinalAcc[budget])
	}
	// Masked arms must also move fewer wire bytes (the ext-codec axis).
	if res.TotalKiB[head] >= res.TotalKiB[full] {
		t.Errorf("head-sync moved %.0f KiB, full-sync %.0f KiB", res.TotalKiB[head], res.TotalKiB[full])
	}
	out := res.Render()
	for _, want := range []string{"lora-like", "J ratio vs full", "head+budget", "budget-filtered"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestExtEnergyRejectsUnknownProfile covers the config error path.
func TestExtEnergyRejectsUnknownProfile(t *testing.T) {
	cfg := DefaultExtEnergyConfig(ScaleCI)
	cfg.Profile = "5g"
	if _, err := RunExtEnergy(cfg); err == nil {
		t.Error("unknown energy profile accepted")
	}
}

func TestDefaultExtTimeConfigSane(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScalePaper)
	if cfg.T != 500 || cfg.LocalStepTime != 2*time.Millisecond {
		t.Errorf("paper-scale config unexpected: %+v", cfg)
	}
}

func TestExtMetaOptShape(t *testing.T) {
	res, err := RunExtMetaOpt(DefaultExtMetaOptConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for i, s := range res.Curves {
		if len(s.Points) == 0 {
			t.Fatalf("%s: empty curve", s.Name)
		}
		first := s.Points[0].Value
		if res.Finals[i] >= first {
			t.Errorf("%s did not reduce the objective: %v -> %v", s.Name, first, res.Finals[i])
		}
	}
	out := res.Render()
	for _, want := range []string{"sgd", "momentum", "adam", "final objectives"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
