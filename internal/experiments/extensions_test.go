package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestThm3ShapeAndRender(t *testing.T) {
	res, err := RunThm3(DefaultThm3Config(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no target points")
	}
	for _, p := range res.Points {
		if p.SurrogateDist <= 0 {
			t.Errorf("target %d: surrogate distance %v not positive", p.Target, p.SurrogateDist)
		}
		// The gap can be slightly negative on tiny test sets (sampling
		// noise), but it should not be hugely negative: adapting from the
		// target's own optimum should not be much worse.
		if p.AdaptGap < -0.5 {
			t.Errorf("target %d: adaptation gap %v unreasonably negative", p.Target, p.AdaptGap)
		}
	}
	if res.RankCorrelation < -1 || res.RankCorrelation > 1 {
		t.Errorf("rank correlation %v outside [-1, 1]", res.RankCorrelation)
	}
	out := res.Render()
	if !strings.Contains(out, "Spearman") || !strings.Contains(out, "Theorem 3") {
		t.Errorf("render missing pieces:\n%s", out)
	}
}

func TestSpearmanKnownCases(t *testing.T) {
	perfect := []Thm3Point{
		{SurrogateDist: 1, AdaptGap: 10},
		{SurrogateDist: 2, AdaptGap: 20},
		{SurrogateDist: 3, AdaptGap: 30},
	}
	if got := spearman(perfect); got != 1 {
		t.Errorf("perfect correlation = %v, want 1", got)
	}
	inverted := []Thm3Point{
		{SurrogateDist: 1, AdaptGap: 30},
		{SurrogateDist: 2, AdaptGap: 20},
		{SurrogateDist: 3, AdaptGap: 10},
	}
	if got := spearman(inverted); got != -1 {
		t.Errorf("inverted correlation = %v, want -1", got)
	}
	if got := spearman(perfect[:1]); got != 0 {
		t.Errorf("single point correlation = %v, want 0", got)
	}
	constant := []Thm3Point{
		{SurrogateDist: 1, AdaptGap: 5},
		{SurrogateDist: 2, AdaptGap: 5},
	}
	if got := spearman(constant); got != 0 {
		t.Errorf("degenerate correlation = %v, want 0", got)
	}
}

func TestExtTimeShape(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScaleCI)
	cfg.TargetG = 1.0 // easy target so every run crosses it
	res, err := RunExtTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3*len(cfg.T0s) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	reached := 0
	for _, c := range res.Cells {
		if c.ItersToTarget > 0 {
			reached++
			if c.Time <= 0 {
				t.Errorf("cell %s/T0=%d reached target with zero time", c.Profile, c.T0)
			}
		}
	}
	if reached == 0 {
		t.Fatal("no run reached the target objective")
	}
	// The paper's §IV claim: slow links prefer larger T0 than fast links.
	slowBest, slowOK := res.BestT0["lora-like"]
	fastBest, fastOK := res.BestT0["datacenter"]
	if slowOK && fastOK && slowBest < fastBest {
		t.Errorf("slow network preferred SMALLER T0 (%d) than fast network (%d)", slowBest, fastBest)
	}
	out := res.Render()
	if !strings.Contains(out, "best T0 per profile") {
		t.Error("render missing summary")
	}
}

func TestExtTimeUnreachedTarget(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScaleCI)
	cfg.T = 20
	cfg.T0s = []int{5}
	cfg.TargetG = 1e-9 // unreachable
	res, err := RunExtTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.ItersToTarget != 0 || c.Time != 0 {
			t.Errorf("unreachable target produced crossing: %+v", c)
		}
	}
	if len(res.BestT0) != 0 {
		t.Errorf("BestT0 populated for unreachable target: %v", res.BestT0)
	}
	if !strings.Contains(res.Render(), "not reached") {
		t.Error("render missing 'not reached'")
	}
}

func TestExtTimeRejectsBadT0(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScaleCI)
	cfg.T0s = []int{7} // 200 % 7 != 0
	if _, err := RunExtTime(cfg); err == nil {
		t.Error("non-divisor T0 accepted")
	}
}

func TestExtBaselinesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("five training runs are slow")
	}
	res, err := RunExtBaselines(DefaultExtBaselinesConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 5 || len(res.Curves) != 5 || len(res.SourceMeta) != 5 {
		t.Fatalf("expected 5 algorithms, got %d", len(res.Names))
	}
	for i, name := range res.Names {
		c := res.Curves[i]
		if len(c) == 0 {
			t.Fatalf("%s: empty curve", name)
		}
		final := c[len(c)-1].Accuracy
		if final <= 0.2 {
			t.Errorf("%s adapted accuracy %v barely above chance", name, final)
		}
		if res.SourceMeta[i] <= 0 {
			t.Errorf("%s: non-positive source meta objective", name)
		}
	}
	// FedML optimizes the source meta-objective directly; it must achieve
	// the (weakly) best value there among all algorithms.
	for i := 1; i < len(res.Names); i++ {
		if res.SourceMeta[0] > res.SourceMeta[i]+0.05 {
			t.Errorf("FedML source G %.4f materially worse than %s %.4f",
				res.SourceMeta[0], res.Names[i], res.SourceMeta[i])
		}
	}
	out := res.Render()
	for _, want := range []string{"FedML", "FedProx", "Reptile", "source meta-objective"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestExtensionExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
	}
	for _, want := range []string{"thm3", "ext-time", "ext-baselines"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestDefaultExtTimeConfigSane(t *testing.T) {
	cfg := DefaultExtTimeConfig(ScalePaper)
	if cfg.T != 500 || cfg.LocalStepTime != 2*time.Millisecond {
		t.Errorf("paper-scale config unexpected: %+v", cfg)
	}
}

func TestExtMetaOptShape(t *testing.T) {
	res, err := RunExtMetaOpt(DefaultExtMetaOptConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for i, s := range res.Curves {
		if len(s.Points) == 0 {
			t.Fatalf("%s: empty curve", s.Name)
		}
		first := s.Points[0].Value
		if res.Finals[i] >= first {
			t.Errorf("%s did not reduce the objective: %v -> %v", s.Name, first, res.Finals[i])
		}
	}
	out := res.Render()
	for _, want := range []string{"sgd", "momentum", "adam", "final objectives"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
