package experiments

import (
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
)

func TestTrackingView(t *testing.T) {
	fed := &data.Federation{
		Name:    "t",
		Sources: make([]*data.NodeDataset, 10),
		Targets: make([]*data.NodeDataset, 3),
	}
	small := trackingView(fed, 4)
	if len(small.Sources) != 4 {
		t.Errorf("capped view has %d sources", len(small.Sources))
	}
	if len(small.Targets) != 3 || small.Name != "t" {
		t.Error("view lost other fields")
	}
	// Under the cap the original is returned untouched.
	same := trackingView(fed, 100)
	if same != fed {
		t.Error("uncapped view copied the federation")
	}
	// The view must not mutate the original.
	if len(fed.Sources) != 10 {
		t.Error("trackingView mutated the input")
	}
}

func TestRenderSeriesTableEmpty(t *testing.T) {
	out := renderSeriesTable("title", "y", nil)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	out = renderSeriesTable("title", "y", []*eval.Series{{Name: "empty"}})
	if !strings.Contains(out, "empty") {
		t.Error("missing series name")
	}
}

func TestRenderSeriesTableRagged(t *testing.T) {
	a := &eval.Series{Name: "a"}
	a.Add(1, 1.0)
	a.Add(2, 2.0)
	b := &eval.Series{Name: "b"}
	b.Add(1, 3.0)
	out := renderSeriesTable("t", "y", []*eval.Series{a, b})
	if !strings.Contains(out, "-") {
		t.Error("ragged series not padded")
	}
}

func TestRenderAdaptTableEmptyAndLoss(t *testing.T) {
	out := renderAdaptTable("t", nil, nil, "accuracy")
	if !strings.Contains(out, "t") {
		t.Error("missing title")
	}
	curves := [][]eval.AdaptPoint{{{Step: 0, Loss: 1.5, Accuracy: 0.5}}}
	out = renderAdaptTable("t", []string{"x"}, curves, "loss")
	if !strings.Contains(out, "1.5") {
		t.Errorf("loss metric not rendered: %s", out)
	}
	// Ragged curves pad with '-'.
	curves = append(curves, nil)
	out = renderAdaptTable("t", []string{"x", "y"}, curves, "accuracy")
	if !strings.Contains(out, "-") {
		t.Error("ragged curves not padded")
	}
}

func TestBuildWorkloadUnknownDataset(t *testing.T) {
	if _, _, err := buildWorkload("cifar", ScaleCI, 5, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}
