package experiments

import (
	"math"
	"testing"
)

func TestExtScaleCI(t *testing.T) {
	cfg := DefaultExtScaleConfig(ScaleCI)
	res, err := RunExtScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != cfg.Nodes || res.Rounds != cfg.Rounds {
		t.Fatalf("result shape %+v does not match config %+v", res, cfg)
	}
	if !res.StatsParity {
		t.Errorf("root stats did not equal shard sum / expected traffic: %+v", res.Root)
	}
	if res.Root.Messages != 2*cfg.Nodes*cfg.Rounds {
		t.Errorf("messages = %d, want %d", res.Root.Messages, 2*cfg.Nodes*cfg.Rounds)
	}
	// The linear dynamics aggregate must track the closed form to FP
	// accumulation error, not algorithmic error.
	if res.MaxClosedFormErr > 1e-9 || math.IsNaN(res.MaxClosedFormErr) {
		t.Errorf("closed-form deviation %v too large", res.MaxClosedFormErr)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestExtScaleDeterministic(t *testing.T) {
	cfg := DefaultExtScaleConfig(ScaleCI)
	cfg.Nodes = 512
	cfg.Shards = 3
	a, err := RunExtScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExtScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxClosedFormErr != b.MaxClosedFormErr || a.Root != b.Root {
		t.Errorf("ext-scale not deterministic: %+v vs %+v", a, b)
	}
}
