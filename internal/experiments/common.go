// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI). Each experiment is a pure function of its config and
// returns a typed result with a Render method that prints the same
// rows/series the paper reports. The per-experiment index lives in
// DESIGN.md §4; EXPERIMENTS.md records paper-vs-measured shapes.
//
// Every experiment runs at two scales: ScaleCI (seconds, structurally
// identical, used by the test suite and the default benches) and ScalePaper
// (the paper's node counts and iteration budgets, used by
// cmd/fedml-bench -paper).
package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/nn"
)

// Scale selects the experiment size.
type Scale int

const (
	// ScaleCI shrinks node counts and iteration budgets so the whole suite
	// runs in seconds while preserving every structural property.
	ScaleCI Scale = iota + 1
	// ScalePaper uses the paper's configuration.
	ScalePaper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleCI:
		return "ci"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// syntheticFederation builds Synthetic(alpha, beta) at the given scale.
func syntheticFederation(alpha, beta float64, scale Scale, k int, seed uint64) (*data.Federation, error) {
	cfg := data.DefaultSyntheticConfig(alpha, beta)
	cfg.K = k
	cfg.Seed = seed
	if scale == ScaleCI {
		cfg.Nodes = 20
	}
	return data.GenerateSynthetic(cfg)
}

// mnistFederation builds the MNIST-like workload at the given scale.
func mnistFederation(scale Scale, k int, seed uint64) (*data.Federation, error) {
	cfg := data.DefaultMNISTConfig()
	cfg.K = k
	cfg.Seed = seed
	if scale == ScaleCI {
		cfg.Nodes = 20
		cfg.MeanSamples = 24
	}
	return data.GenerateMNIST(cfg)
}

// sent140Federation builds the Sent140-like workload. The paper's 706-node
// fleet and Table I statistics are kept at paper scale, but the embedding
// dimension is reduced from 300 (the full GloVe width) to 24: the MLP keeps
// its 3 BN+ReLU hidden layers, and the run fits in minutes instead of days
// of CPU (every node runs finite-difference second-order meta-updates).
// ScaleCI shrinks further.
func sent140Federation(scale Scale, k int, seed uint64) (*data.Federation, error) {
	cfg := data.DefaultSent140Config()
	cfg.K = k
	cfg.Seed = seed
	switch scale {
	case ScalePaper:
		cfg.Nodes = 706
		cfg.EmbedDim = 24
	default:
		cfg.Nodes = 30
		cfg.EmbedDim = 12
		cfg.SeqLen = 10
	}
	return data.GenerateSent140(cfg)
}

// sent140Model builds the Sent140 head: 3 hidden layers with batch
// normalization and ReLU, then a linear+softmax output. The hidden widths
// scale with the reduced embedding (paper: 256/128/64 on 300-d GloVe).
func sent140Model(fed *data.Federation, scale Scale) (*nn.MLP, error) {
	dims := []int{fed.Dim, 128, 64, 32, fed.NumClasses}
	if scale == ScaleCI {
		dims = []int{fed.Dim, 32, 16, 8, fed.NumClasses}
	}
	return nn.NewMLP(nn.MLPConfig{Dims: dims, BatchNorm: true})
}

// softmaxModel builds the convex model used for synthetic and MNIST. The
// small ridge term matches Assumption 1 of the paper (the convergence
// analysis requires strongly convex local losses; plain cross-entropy is
// only convex) and keeps long federated runs well-posed.
func softmaxModel(fed *data.Federation) *nn.SoftmaxRegression {
	return &nn.SoftmaxRegression{In: fed.Dim, Classes: fed.NumClasses, L2: 0.01}
}

// trackingView caps the number of source nodes used for objective tracking
// on very large fleets: evaluating G(θ) over 700 nodes every round costs
// more than the training it measures. The subset is a deterministic prefix,
// so tracked curves are comparable across runs.
func trackingView(fed *data.Federation, maxSources int) *data.Federation {
	if len(fed.Sources) <= maxSources {
		return fed
	}
	view := *fed
	view.Sources = fed.Sources[:maxSources]
	return &view
}

// renderSeriesTable prints aligned iteration/value columns for a set of
// series sharing the same x-axis.
func renderSeriesTable(title, yLabel string, series []*eval.Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s", "iter")
	for _, s := range series {
		fmt.Fprintf(&b, "  %-22s", s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 || len(series[0].Points) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%-8d", series[0].Points[i].Iter)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "  %-22.6g", s.Points[i].Value)
			} else {
				fmt.Fprintf(&b, "  %-22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%s)\n", yLabel)
	return b.String()
}

// renderAdaptTable prints step/loss/accuracy curves side by side.
func renderAdaptTable(title string, names []string, curves [][]eval.AdaptPoint, metric string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s", "step")
	for _, n := range names {
		fmt.Fprintf(&b, "  %-22s", n)
	}
	b.WriteByte('\n')
	if len(curves) == 0 || len(curves[0]) == 0 {
		return b.String()
	}
	for i := range curves[0] {
		fmt.Fprintf(&b, "%-6d", curves[0][i].Step)
		for _, c := range curves {
			if i >= len(c) {
				fmt.Fprintf(&b, "  %-22s", "-")
				continue
			}
			v := c[i].Accuracy
			if metric == "loss" {
				v = c[i].Loss
			}
			fmt.Fprintf(&b, "  %-22.6g", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%s after k adaptation gradient steps, averaged over target nodes)\n", metric)
	return b.String()
}
