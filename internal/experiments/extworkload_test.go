package experiments

import (
	"strings"
	"testing"
)

// TestExtWorkloadAcceptance pins the new-workloads headline claim on both
// scenarios (the Fed-Meta-Align comparison): FedML's adapted accuracy beats
// the global (un-adapted) accuracy of both FedAvg and FedProx — the per-node
// structure (user taste, device calibration) is invisible to any single
// global model and recovered by K-shot adaptation.
func TestExtWorkloadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("eight training runs are slow")
	}
	for _, workload := range []string{"rec", "fault"} {
		res, err := RunExtWorkload(DefaultExtWorkloadConfig(workload, ScaleCI))
		if err != nil {
			t.Fatalf("%s: %v", workload, err)
		}
		if len(res.Arms) != 4 || res.Arms[0] != "fedml" || res.Arms[1] != "fedavg" ||
			res.Arms[2] != "fedprox" || res.Arms[3] != "repshare" {
			t.Fatalf("%s arms = %v", workload, res.Arms)
		}
		pers := map[string]float64{}
		for i, name := range res.Arms {
			pers[name+"/global"] = res.Pers[i].Global
			pers[name+"/adapted"] = res.Pers[i].Adapted
		}
		if pers["fedml/adapted"] < pers["fedavg/global"] {
			t.Errorf("%s: FedML adapted %.4f below FedAvg global %.4f",
				workload, pers["fedml/adapted"], pers["fedavg/global"])
		}
		if pers["fedml/adapted"] < pers["fedprox/global"] {
			t.Errorf("%s: FedML adapted %.4f below FedProx global %.4f",
				workload, pers["fedml/adapted"], pers["fedprox/global"])
		}
		// The meta-learned initialization must actually benefit from
		// adaptation: a positive personalization gap.
		if res.Pers[0].Gap() <= 0 {
			t.Errorf("%s: FedML personalization gap %.4f not positive", workload, res.Pers[0].Gap())
		}
		if res.AccVsKiB == nil || len(res.AccVsKiB.Points) == 0 {
			t.Fatalf("%s: missing fedml accuracy/traffic trajectory", workload)
		}
		if res.TotalKiB <= 0 {
			t.Errorf("%s: non-positive traffic total %.1f KiB", workload, res.TotalKiB)
		}
		out := res.Render()
		for _, want := range []string{workload, "global acc", "adapted acc", "fedprox", "repshare", "KiB"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s render missing %q:\n%s", workload, want, out)
			}
		}
	}
}

// TestExtWorkloadPlatformKnobs verifies the fedml arm composes with the
// platform stack: a q8 codec plus a head-only sync mask must still train,
// still produce the matrix, and move fewer wire bytes than the raw run.
func TestExtWorkloadPlatformKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs are slow")
	}
	base := DefaultExtWorkloadConfig("fault", ScaleCI)
	base.T = 60
	raw, err := RunExtWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	knobbed := base
	knobbed.Codec = "q8"
	knobbed.SyncMask = "head:2"
	res, err := RunExtWorkload(knobbed)
	if err != nil {
		t.Fatal(err)
	}
	if res.AccVsKiB == nil || !strings.Contains(res.AccVsKiB.Name, "q8") {
		t.Errorf("trajectory not labeled with the codec: %+v", res.AccVsKiB)
	}
	if res.TotalKiB >= raw.TotalKiB {
		t.Errorf("q8+mask moved %.1f KiB, raw %.1f KiB — knobs not applied", res.TotalKiB, raw.TotalKiB)
	}
	out := res.Render()
	if !strings.Contains(out, "codec=q8") || !strings.Contains(out, "mask=head:2") {
		t.Errorf("render missing knob labels:\n%s", out)
	}
}

func TestExtWorkloadRejectsUnknownWorkload(t *testing.T) {
	cfg := DefaultExtWorkloadConfig("images", ScaleCI)
	if _, err := RunExtWorkload(cfg); err == nil {
		t.Error("unknown workload accepted")
	}
}
