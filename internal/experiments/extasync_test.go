package experiments

import (
	"math"
	"testing"
)

func TestExtAsyncCI(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second latency-skew comparison")
	}
	if raceEnabled {
		t.Skip("wall-clock speedup assertion is meaningless under race instrumentation")
	}
	res, err := RunExtAsync(DefaultExtAsyncConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncRounds == 0 || res.AsyncRounds == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	// The cell's claim: the async loop at least doubles round throughput
	// under a 10x straggler while staying within 5% of the fault-free
	// objective.
	if res.Speedup < 2 {
		t.Errorf("speedup %.2fx < 2x (straggler still sets the clock)", res.Speedup)
	}
	if res.RelGap > 0.05 || math.IsNaN(res.RelGap) {
		t.Errorf("async objective gap %.3f > 5%%", res.RelGap)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}
