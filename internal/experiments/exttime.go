package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/edgeai/fedml/internal/codec"
	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/tensor"
)

// The paper motivates the T0 knob by the communication bottleneck of
// wireless edge networks but reports convergence only against iteration
// counts. This extension experiment closes the loop: using the core
// TimeModel, it converts each (T0, network profile) run into estimated
// wall-clock time and reports the modelled time needed to reach a target
// meta-objective value — showing that the best T0 depends on the network, as
// §IV's discussion predicts.

// ExtTimeConfig parameterizes the time-to-target experiment.
type ExtTimeConfig struct {
	Scale Scale
	// T0s are the local-step counts compared.
	T0s []int
	// Alpha, Beta are the FedML rates; T the iteration budget.
	Alpha, Beta float64
	T           int
	// TargetG is the meta-objective value to reach. Zero selects the
	// target automatically: 5%% above the worst final objective across the
	// T0 runs, so every run crosses it and the comparison is meaningful.
	TargetG float64
	// LocalStepTime models one local meta-iteration's compute cost.
	LocalStepTime time.Duration
	// Codec is the wire codec of the modeled runs ("" = raw []float64).
	// It shapes both the training trajectory and the per-message byte
	// price fed to the TimeModel.
	Codec string
	Seed  uint64
	// Workers bounds the grid-cell fan-out (0 = GOMAXPROCS); one cell
	// per T0.
	Workers int
}

// DefaultExtTimeConfig returns the experiment configuration.
func DefaultExtTimeConfig(scale Scale) ExtTimeConfig {
	cfg := ExtTimeConfig{
		Scale:         scale,
		T0s:           []int{1, 5, 20},
		Alpha:         0.01,
		Beta:          0.01,
		T:             500,
		LocalStepTime: 2 * time.Millisecond,
		Seed:          8,
	}
	if scale == ScaleCI {
		cfg.T = 200
	}
	return cfg
}

// ExtTimeCell is the modelled time for one (profile, T0) pair.
type ExtTimeCell struct {
	Profile string
	T0      int
	// ItersToTarget is the local-iteration count at which G first dropped
	// below TargetG (0 if never).
	ItersToTarget int
	// RoundsToTarget is the aggregation count at that point.
	RoundsToTarget int
	// Time is the modelled wall-clock to the target (0 if never reached).
	Time time.Duration
}

// ExtTimeResult is the full grid.
type ExtTimeResult struct {
	TargetG float64
	Cells   []ExtTimeCell
	// BestT0 maps each profile to the T0 with the smallest modelled time.
	BestT0 map[string]int
}

// RunExtTime trains FedML once per T0, finds when each run crosses the
// target objective, and prices that point under each network profile.
func RunExtTime(cfg ExtTimeConfig) (*ExtTimeResult, error) {
	fed, err := syntheticFederation(0.5, 0.5, cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("ext-time data: %w", err)
	}
	m := softmaxModel(fed)
	// Price messages at the codec's steady-state encoded size, not at the
	// raw 8 B/param width — a q8 run moves ~1 B/param and the what-if
	// estimate must see that discount or it overstates transfer time ~8×.
	paramBytes, err := codec.WireSize(cfg.Codec, m.NumParams())
	if err != nil {
		return nil, fmt.Errorf("ext-time codec: %w", err)
	}

	type point struct {
		iters, rounds int
		g             float64
	}
	for _, t0 := range cfg.T0s {
		if cfg.T%t0 != 0 {
			return nil, fmt.Errorf("ext-time: T=%d not a multiple of T0=%d", cfg.T, t0)
		}
	}
	// One training per T0, on the worker pool into per-cell slots (the
	// worstFinal reduction happens in index order afterwards).
	series := make([][]point, len(cfg.T0s))
	err = par.ForEachErr(cfg.Workers, len(cfg.T0s), func(c int) error {
		t0 := cfg.T0s[c]
		var pts []point
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: t0, Seed: cfg.Seed,
			Codec: cfg.Codec,
			OnRound: func(round, iter int, theta tensor.Vec) {
				pts = append(pts, point{
					iters:  iter,
					rounds: round,
					g:      eval.GlobalMetaObjectiveN(m, fed, cfg.Alpha, theta, 1),
				})
			},
		}
		if _, err := core.Train(m, fed, nil, trainCfg); err != nil {
			return fmt.Errorf("ext-time train T0=%d: %w", t0, err)
		}
		series[c] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	worstFinal := 0.0
	for _, pts := range series {
		if final := pts[len(pts)-1].g; final > worstFinal {
			worstFinal = final
		}
	}
	target := cfg.TargetG
	if target <= 0 {
		target = worstFinal * 1.05
	}

	type crossing struct {
		iters, rounds int
	}
	crossings := map[int]crossing{}
	for c, t0 := range cfg.T0s {
		var cross crossing
		for _, p := range series[c] {
			if p.g <= target {
				cross = crossing{iters: p.iters, rounds: p.rounds}
				break
			}
		}
		crossings[t0] = cross
	}

	profiles := core.EdgeProfiles(cfg.LocalStepTime)
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)

	res := &ExtTimeResult{TargetG: target, BestT0: map[string]int{}}
	for _, name := range names {
		tm := profiles[name]
		var bestT0 int
		var bestTime time.Duration
		for _, t0 := range cfg.T0s {
			cross := crossings[t0]
			cell := ExtTimeCell{Profile: name, T0: t0}
			if cross.iters > 0 {
				d, err := tm.Estimate(core.CommStats{Rounds: cross.rounds}, cross.iters, paramBytes)
				if err != nil {
					return nil, fmt.Errorf("ext-time estimate: %w", err)
				}
				cell.ItersToTarget = cross.iters
				cell.RoundsToTarget = cross.rounds
				cell.Time = d
				if bestTime == 0 || d < bestTime {
					bestTime, bestT0 = d, t0
				}
			}
			res.Cells = append(res.Cells, cell)
		}
		if bestT0 != 0 {
			res.BestT0[name] = bestT0
		}
	}
	return res, nil
}

// Render implements the printable experiment.
func (r *ExtTimeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: modelled wall-clock to reach G(θ) ≤ %.2f, by T0 and network profile\n", r.TargetG)
	fmt.Fprintf(&b, "%-12s %-6s %-8s %-8s %-14s\n", "profile", "T0", "iters", "rounds", "time")
	for _, c := range r.Cells {
		if c.ItersToTarget == 0 {
			fmt.Fprintf(&b, "%-12s %-6d %-8s %-8s %-14s\n", c.Profile, c.T0, "-", "-", "not reached")
			continue
		}
		fmt.Fprintf(&b, "%-12s %-6d %-8d %-8d %-14s\n", c.Profile, c.T0, c.ItersToTarget, c.RoundsToTarget, c.Time)
	}
	b.WriteString("best T0 per profile:")
	names := make([]string, 0, len(r.BestT0))
	for name := range r.BestT0 {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %s: T0=%d", name, r.BestT0[name])
	}
	b.WriteString("\n(slow links favour large T0; fast links favour frequent aggregation — §IV)\n")
	return b.String()
}
