package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
	"github.com/edgeai/fedml/internal/transport"
)

// The paper frames the platform as a coordinator for fleets of edge devices,
// but every experiment so far ran tens of nodes — one goroutine each. This
// extension exercises the two-tier topology at fleet scale on one machine:
// simulated nodes (core.SimNodeLink, a few words of state each, no
// goroutines) behind real RunShardAggregator/RunDirector instances, driving
// 10⁵–10⁶ nodes per round through the exact production round loop. The node
// dynamics are linear, u = θ + η(c_i − θ), so the trained θ has a closed
// form — θ_R = c̄_ω + (1−η)^R (θ0 − c̄_ω) — and the run verifies itself:
// the aggregate must match the closed form and the director's traffic
// totals must equal the sum of the shard totals exactly.

// ExtScaleConfig parameterizes the fleet-scale simulation.
type ExtScaleConfig struct {
	Scale Scale
	// Nodes is the simulated fleet size.
	Nodes int
	// Shards is the number of leaf aggregators the fleet is split across.
	Shards int
	// Dim is the simulated model dimension (kept small: the experiment
	// measures coordination overhead, not FLOPs).
	Dim int
	// Rounds is the number of global aggregations.
	Rounds int
	// Eta is the contraction rate of the linear node dynamics.
	Eta  float64
	Seed uint64
}

// DefaultExtScaleConfig returns the experiment configuration: 4096 nodes in
// CI, 262144 (2.6×10⁵) at paper scale.
func DefaultExtScaleConfig(scale Scale) ExtScaleConfig {
	cfg := ExtScaleConfig{
		Scale:  scale,
		Nodes:  262144,
		Shards: 8,
		Dim:    16,
		Rounds: 3,
		Eta:    0.3,
		Seed:   17,
	}
	if scale == ScaleCI {
		cfg.Nodes = 4096
		cfg.Shards = 4
	}
	return cfg
}

// ExtScaleResult is the measured outcome.
type ExtScaleResult struct {
	Nodes, Shards, Dim, Rounds int
	// Elapsed is the wall-clock of the director's full run.
	Elapsed time.Duration
	// RoundsPerSec and NodeRoundsPerSec are the coordination throughput.
	RoundsPerSec     float64
	NodeRoundsPerSec float64
	// MaxClosedFormErr is the max-abs deviation of the final θ from the
	// linear dynamics' closed form.
	MaxClosedFormErr float64
	// StatsParity reports whether the root traffic counters equal the sum
	// of the shard counters (they must).
	StatsParity bool
	// Root is the director's accounting.
	Root core.CommStats
}

// simCenter derives node i's fixed point c_i deterministically; the Update
// callback regenerates it per round instead of storing n·dim floats.
func simCenter(seed uint64, i, dim int, out []float64) {
	r := rng.New(seed ^ 0xc0ffee).Split(uint64(i))
	for d := 0; d < dim; d++ {
		out[d] = r.Norm()
	}
}

func simWeight(i int) float64 { return 0.5 + float64(i%10)/10 }

// RunExtScale builds the simulated fleet, runs the two-tier topology, and
// verifies the aggregate against the closed form.
func RunExtScale(cfg ExtScaleConfig) (*ExtScaleResult, error) {
	n, dim := cfg.Nodes, cfg.Dim
	if n < 1 || cfg.Shards < 1 || dim < 1 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("ext-scale: bad config %+v", cfg)
	}
	eta := cfg.Eta

	weights := make([]float64, n)
	for i := range weights {
		weights[i] = simWeight(i)
	}
	// Weighted fixed-point mean c̄_ω for the closed form.
	cbar := tensor.NewVec(dim)
	ci := make([]float64, dim)
	var wsum float64
	for i := 0; i < n; i++ {
		simCenter(cfg.Seed, i, dim, ci)
		w := weights[i]
		wsum += w
		for d := range cbar {
			cbar[d] += w * ci[d]
		}
	}
	for d := range cbar {
		cbar[d] /= wsum
	}

	runCfg := core.Config{
		Alpha: 0.01, Beta: 0.01, // required by validation; unused by SimNodeLink dynamics
		T: cfg.Rounds, T0: 1,
		Seed: cfg.Seed,
	}
	ranges := core.ShardRanges(n, cfg.Shards)
	dirLinks := make([]transport.Link, len(ranges))
	shardErrs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for s, r := range ranges {
		var shardLink transport.Link
		dirLinks[s], shardLink = transport.Pair()
		links := make([]transport.Link, r.Hi-r.Lo)
		sim := make([]core.SimNodeLink, r.Hi-r.Lo)
		// One center scratch per shard: a shard drives its links from one
		// goroutine, so the sequential Update calls may share it.
		scratch := make([]float64, dim)
		for k := range sim {
			sim[k] = core.SimNodeLink{
				ID: r.Lo + k,
				Update: func(id, round, t0 int, theta []float64) []float64 {
					// u = θ + η(c_i − θ), computed in place; the per-node
					// center is regenerated from (seed, id) each call.
					simCenter(cfg.Seed, id, len(theta), scratch)
					for d := range theta {
						theta[d] += eta * (scratch[d] - theta[d])
					}
					return theta
				},
			}
			links[k] = &sim[k]
		}
		wg.Add(1)
		go func(s int, r core.ShardRange, up transport.Link, links []transport.Link) {
			defer wg.Done()
			shardErrs[s] = core.RunShardAggregator(up, links, weights[r.Lo:r.Hi], r, runCfg)
		}(s, r, shardLink, links)
	}

	theta0 := tensor.NewVec(dim) // origin start keeps the closed form simple
	start := time.Now()
	theta, root, shardStats, err := core.RunDirector(dirLinks, ranges, theta0, runCfg)
	elapsed := time.Since(start)
	for _, l := range dirLinks {
		_ = l.Close()
	}
	wg.Wait()
	if err != nil {
		return nil, fmt.Errorf("ext-scale director: %w", err)
	}
	for s, serr := range shardErrs {
		if serr != nil {
			return nil, fmt.Errorf("ext-scale shard %d: %w", s, serr)
		}
	}

	// Closed form: θ_R = c̄ + (1−η)^R (θ0 − c̄); θ0 = 0.
	decay := math.Pow(1-eta, float64(cfg.Rounds))
	var maxErr float64
	for d := range theta {
		want := cbar[d] * (1 - decay)
		if e := math.Abs(theta[d] - want); e > maxErr {
			maxErr = e
		}
	}

	var sum core.CommStats
	for _, s := range shardStats {
		sum.Messages += s.Messages
		sum.Bytes += s.Bytes
		sum.Dropped += s.Dropped
		sum.Rejoined += s.Rejoined
		sum.Rejected += s.Rejected
	}
	parity := sum.Messages == root.Messages && sum.Bytes == root.Bytes &&
		root.Messages == 2*n*cfg.Rounds

	secs := elapsed.Seconds()
	return &ExtScaleResult{
		Nodes: n, Shards: cfg.Shards, Dim: dim, Rounds: cfg.Rounds,
		Elapsed:          elapsed,
		RoundsPerSec:     float64(cfg.Rounds) / secs,
		NodeRoundsPerSec: float64(cfg.Rounds) * float64(n) / secs,
		MaxClosedFormErr: maxErr,
		StatsParity:      parity,
		Root:             root,
	}, nil
}

// Render implements the printable experiment.
func (r *ExtScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: fleet-scale two-tier aggregation (simulated nodes, production round loop)\n")
	fmt.Fprintf(&b, "%-10s %-8s %-6s %-8s %-12s %-12s %-16s\n", "nodes", "shards", "dim", "rounds", "elapsed", "rounds/s", "node-rounds/s")
	fmt.Fprintf(&b, "%-10d %-8d %-6d %-8d %-12s %-12.2f %-16.0f\n",
		r.Nodes, r.Shards, r.Dim, r.Rounds, r.Elapsed.Round(time.Millisecond), r.RoundsPerSec, r.NodeRoundsPerSec)
	fmt.Fprintf(&b, "traffic: %d msgs, %d bytes; stats parity (root == Σ shards, 2 msgs/node/round): %v\n",
		r.Root.Messages, r.Root.Bytes, r.StatsParity)
	fmt.Fprintf(&b, "closed-form max |θ−θ*| = %.3g (linear dynamics self-check)\n", r.MaxClosedFormErr)
	return b.String()
}
