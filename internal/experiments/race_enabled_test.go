//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock throughput assertions are skipped under it: instrumentation
// slows compute ~10x, so latency skew stops dominating and the measured
// speedups say nothing about the uninstrumented binary.
const raceEnabled = true
