package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/fedavg"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/reptile"
)

// Extension: a four-way baseline comparison. Besides the paper's
// FedML-vs-FedAvg pairing, this runs FedProx (the heterogeneity-robust
// federated baseline the paper cites for its generator) and federated
// Reptile (the first-order meta-learning baseline from the related-work
// section), all evaluated with the same fast-adaptation protocol.

// ExtBaselinesConfig parameterizes the comparison.
type ExtBaselinesConfig struct {
	Scale       Scale
	Alpha, Beta float64
	T, T0       int
	// ProxMu is FedProx's proximal coefficient.
	ProxMu float64
	// ReptileEps is Reptile's interpolation step.
	ReptileEps float64
	AdaptSteps int
	Seed       uint64
	// Workers bounds the per-algorithm fan-out (0 = GOMAXPROCS).
	Workers int
}

// DefaultExtBaselinesConfig returns the comparison configuration.
func DefaultExtBaselinesConfig(scale Scale) ExtBaselinesConfig {
	cfg := ExtBaselinesConfig{
		Scale:      scale,
		Alpha:      0.05,
		Beta:       0.01,
		T:          300,
		T0:         5,
		ProxMu:     0.1,
		ReptileEps: 0.5,
		AdaptSteps: 10,
		Seed:       9,
	}
	if scale == ScaleCI {
		cfg.T = 100
	}
	return cfg
}

// ExtBaselinesResult holds one adaptation curve per algorithm plus the
// source-side meta-objective each final model achieves.
type ExtBaselinesResult struct {
	Names      []string
	Curves     [][]eval.AdaptPoint
	SourceMeta []float64
}

// RunExtBaselines trains all four algorithms on the same federation and
// evaluates target fast adaptation.
func RunExtBaselines(cfg ExtBaselinesConfig) (*ExtBaselinesResult, error) {
	fed, err := syntheticFederation(0.5, 0.5, cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("ext-baselines data: %w", err)
	}
	m := softmaxModel(fed)

	type algo struct {
		name  string
		train func() ([]float64, error)
	}
	algos := []algo{
		{"FedML", func() ([]float64, error) {
			res, err := core.Train(m, fed, nil, core.Config{
				Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			return res.Theta, nil
		}},
		{"FedML-FO", func() ([]float64, error) {
			res, err := core.Train(m, fed, nil, core.Config{
				Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
				GradMode: meta.FirstOrder,
			})
			if err != nil {
				return nil, err
			}
			return res.Theta, nil
		}},
		{"FedAvg", func() ([]float64, error) {
			res, err := fedavg.Train(m, fed, nil, fedavg.Config{
				Eta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed, Workers: 1,
			})
			if err != nil {
				return nil, err
			}
			return res.Theta, nil
		}},
		{"FedProx", func() ([]float64, error) {
			res, err := fedavg.Train(m, fed, nil, fedavg.Config{
				Eta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed, ProxMu: cfg.ProxMu, Workers: 1,
			})
			if err != nil {
				return nil, err
			}
			return res.Theta, nil
		}},
		{"Reptile", func() ([]float64, error) {
			res, err := reptile.Train(m, fed, nil, reptile.Config{
				InnerLR: cfg.Alpha, MetaLR: cfg.ReptileEps, InnerSteps: cfg.T0,
				Rounds: cfg.T / cfg.T0, Seed: cfg.Seed, Workers: 1,
			})
			if err != nil {
				return nil, err
			}
			return res.Theta, nil
		}},
	}

	// Algorithms are independent; train and evaluate each on the worker
	// pool into index slots.
	res := &ExtBaselinesResult{
		Names:      make([]string, len(algos)),
		Curves:     make([][]eval.AdaptPoint, len(algos)),
		SourceMeta: make([]float64, len(algos)),
	}
	err = par.ForEachErr(cfg.Workers, len(algos), func(c int) error {
		a := algos[c]
		theta, err := a.train()
		if err != nil {
			return fmt.Errorf("ext-baselines %s: %w", a.name, err)
		}
		res.Names[c] = a.name
		res.Curves[c] = eval.AverageAdaptationCurveN(m, theta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
		res.SourceMeta[c] = eval.GlobalMetaObjectiveN(m, fed, cfg.Alpha, theta, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render implements the printable experiment.
func (r *ExtBaselinesResult) Render() string {
	var b strings.Builder
	b.WriteString(renderAdaptTable(
		"Extension: baseline comparison (target adaptation accuracy)",
		r.Names, r.Curves, "accuracy"))
	b.WriteString("source meta-objective G(θ) of each final model:")
	for i, name := range r.Names {
		fmt.Fprintf(&b, "  %s: %.4f", name, r.SourceMeta[i])
	}
	b.WriteByte('\n')
	return b.String()
}
