package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/fedavg"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Fig3aConfig parameterizes the Sent140 convergence experiment.
type Fig3aConfig struct {
	Scale Scale
	// Alpha, Beta are the learning rates (paper: α=0.01, β=0.3 for Sent140).
	Alpha, Beta float64
	T, T0       int
	// Participation enables client sampling (0 = full participation).
	Participation float64
	Seed          uint64
	// Workers bounds the per-round objective-tracking fan-out over the
	// tracked nodes (0 = GOMAXPROCS).
	Workers int
}

// DefaultFig3aConfig returns the paper configuration at the given scale
// (T0 = 5 as in Figure 3's caption). At paper scale the 706-node fleet uses
// 20% client sampling per round to keep the wall-clock tractable.
func DefaultFig3aConfig(scale Scale) Fig3aConfig {
	cfg := Fig3aConfig{Scale: scale, Alpha: 0.01, Beta: 0.3, T: 100, T0: 5, Participation: 0.1, Seed: 2}
	if scale == ScaleCI {
		cfg.T = 40
		cfg.Participation = 0
	}
	return cfg
}

// Fig3aResult is the Sent140 training-objective trace.
type Fig3aResult struct {
	Curve *eval.Series
}

// RunFig3a reproduces Figure 3(a): FedML convergence on the non-convex
// Sent140 model (training loss G(θ), no G* exists for non-convex losses).
func RunFig3a(cfg Fig3aConfig) (*Fig3aResult, error) {
	fed, err := sent140Federation(cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig3a data: %w", err)
	}
	m, err := sent140Model(fed, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("fig3a model: %w", err)
	}
	series := &eval.Series{Name: "FedML Sent140"}
	tracked := trackingView(fed, 100)
	trainCfg := core.Config{
		Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
		Participation: cfg.Participation,
		OnRound: func(_, iter int, theta tensor.Vec) {
			series.Add(iter, eval.GlobalMetaObjectiveN(m, tracked, cfg.Alpha, theta, cfg.Workers))
		},
	}
	if _, err := core.Train(m, fed, nil, trainCfg); err != nil {
		return nil, fmt.Errorf("fig3a train: %w", err)
	}
	return &Fig3aResult{Curve: series}, nil
}

// Render implements the printable figure.
func (r *Fig3aResult) Render() string {
	return renderSeriesTable(
		"Figure 3(a): Convergence of FedML on Sent140 (T0=5)",
		"meta-objective G(θ_t)", []*eval.Series{r.Curve})
}

// Fig3bConfig parameterizes the target-source-similarity experiment.
type Fig3bConfig struct {
	Scale        Scale
	Similarities []float64
	Alpha, Beta  float64
	T, T0        int
	// AdaptSteps is the number of fast-adaptation gradient steps evaluated
	// at the target nodes.
	AdaptSteps int
	Seed       uint64
	// Workers bounds the grid-cell fan-out (0 = GOMAXPROCS); one cell per
	// similarity level.
	Workers int
}

// DefaultFig3bConfig returns the paper configuration at the given scale.
func DefaultFig3bConfig(scale Scale) Fig3bConfig {
	cfg := Fig3bConfig{
		Scale:        scale,
		Similarities: []float64{0, 0.5, 1},
		Alpha:        0.01,
		Beta:         0.01,
		T:            500,
		T0:           5,
		AdaptSteps:   10,
		Seed:         3,
	}
	if scale == ScaleCI {
		cfg.T = 150
	}
	return cfg
}

// Fig3bResult holds one target-adaptation accuracy curve per similarity.
type Fig3bResult struct {
	Names  []string
	Curves [][]eval.AdaptPoint
	// FinalAccuracies are the end-of-curve accuracies; the paper's claim is
	// that they decrease as (α̃, β̃) grows.
	FinalAccuracies []float64
}

// RunFig3b reproduces Figure 3(b): the impact of target-source similarity on
// test performance after fast adaptation. The similarity levels are
// independent cells on the worker pool; per-cell slots keep the output
// bit-identical for every worker count.
func RunFig3b(cfg Fig3bConfig) (*Fig3bResult, error) {
	names := make([]string, len(cfg.Similarities))
	curves := make([][]eval.AdaptPoint, len(cfg.Similarities))
	err := par.ForEachErr(cfg.Workers, len(cfg.Similarities), func(c int) error {
		ab := cfg.Similarities[c]
		fed, err := syntheticFederation(ab, ab, cfg.Scale, 5, cfg.Seed)
		if err != nil {
			return fmt.Errorf("fig3b Synthetic(%g,%g): %w", ab, ab, err)
		}
		m := softmaxModel(fed)
		trainRes, err := core.Train(m, fed, nil, core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("fig3b train Synthetic(%g,%g): %w", ab, ab, err)
		}
		names[c] = fmt.Sprintf("Synthetic(%g,%g)", ab, ab)
		curves[c] = eval.AverageAdaptationCurveN(m, trainRes.Theta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig3bResult{Names: names, Curves: curves}
	for _, curve := range curves {
		res.FinalAccuracies = append(res.FinalAccuracies, curve[len(curve)-1].Accuracy)
	}
	return res, nil
}

// Render implements the printable figure.
func (r *Fig3bResult) Render() string {
	return renderAdaptTable(
		"Figure 3(b): Impact of target-source similarity on test performance",
		r.Names, r.Curves, "accuracy")
}

// AdaptCompareConfig parameterizes the FedML-vs-FedAvg fast-adaptation
// comparison of Figures 3(c)–3(e).
type AdaptCompareConfig struct {
	Scale Scale
	// Dataset selects the workload: "synthetic", "mnist" or "sent140".
	Dataset string
	// Ks lists the target-node training-set sizes to compare; FedML is
	// re-trained for every K (its inner step uses K samples), FedAvg trains
	// once on the full local datasets.
	Ks []int
	// Alpha, Beta are FedML's rates; FedAvg uses Beta (as in the paper).
	Alpha, Beta float64
	T, T0       int
	// Participation enables client sampling in FedML training (0 = full).
	Participation float64
	AdaptSteps    int
	Seed          uint64
	// Workers bounds the grid-cell fan-out (0 = GOMAXPROCS); one cell
	// per K.
	Workers int
}

// DefaultAdaptCompareConfig returns the paper configuration for the given
// dataset at the given scale (T0 = 5 per Figure 3's caption).
func DefaultAdaptCompareConfig(dataset string, scale Scale) AdaptCompareConfig {
	cfg := AdaptCompareConfig{
		Scale:      scale,
		Dataset:    dataset,
		Ks:         []int{5, 10, 20},
		Alpha:      0.05,
		Beta:       0.01,
		T:          500,
		T0:         5,
		AdaptSteps: 10,
		Seed:       4,
	}
	if dataset == "sent140" {
		cfg.Alpha = 0.01
		cfg.Beta = 0.3
		cfg.T = 100
		cfg.Ks = []int{5, 10}
		cfg.Participation = 0.1 // tractability on the 706-node fleet
	}
	if scale == ScaleCI {
		cfg.T = 100
		cfg.Ks = []int{5, 10}
		cfg.Participation = 0
	}
	return cfg
}

// AdaptCompareResult holds, for every K, the averaged target adaptation
// curves of FedML and FedAvg, plus a paired-bootstrap comparison of the
// final per-target accuracies (positive mean = FedML ahead).
type AdaptCompareResult struct {
	Dataset   string
	Ks        []int
	FedML     [][]eval.AdaptPoint
	FedAvg    [][]eval.AdaptPoint
	Bootstrap []eval.BootstrapResult
}

// RunAdaptCompare reproduces one of Figures 3(c)–3(e): fast-adaptation
// performance at held-out target nodes, FedML vs the FedAvg baseline.
func RunAdaptCompare(cfg AdaptCompareConfig) (*AdaptCompareResult, error) {
	// Generate node datasets large enough to re-split at the biggest K.
	maxK := 0
	for _, k := range cfg.Ks {
		if k > maxK {
			maxK = k
		}
	}
	if maxK == 0 {
		return nil, fmt.Errorf("experiments: adapt-compare needs at least one K")
	}
	fed, m, err := buildWorkload(cfg.Dataset, cfg.Scale, maxK, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// The resplits draw from one shared sequential RNG stream, so they must
	// happen in K order BEFORE the cells fan out — otherwise the split for
	// a given K would depend on the execution schedule.
	splitRng := rng.New(cfg.Seed ^ 0xfeed)
	feds := make([]*data.Federation, len(cfg.Ks))
	for i, k := range cfg.Ks {
		fedK, err := fed.Resplit(splitRng, k)
		if err != nil {
			return nil, fmt.Errorf("adapt-compare resplit K=%d: %w", k, err)
		}
		feds[i] = fedK
	}

	res := &AdaptCompareResult{
		Dataset:   cfg.Dataset,
		Ks:        cfg.Ks,
		FedML:     make([][]eval.AdaptPoint, len(cfg.Ks)),
		FedAvg:    make([][]eval.AdaptPoint, len(cfg.Ks)),
		Bootstrap: make([]eval.BootstrapResult, len(cfg.Ks)),
	}
	err = par.ForEachErr(cfg.Workers, len(cfg.Ks), func(c int) error {
		k, fedK := cfg.Ks[c], feds[c]
		mlRes, err := core.Train(m, fedK, nil, core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
			Participation: cfg.Participation,
		})
		if err != nil {
			return fmt.Errorf("adapt-compare FedML K=%d: %w", k, err)
		}
		avgRes, err := fedavg.Train(m, fedK, nil, fedavg.Config{
			Eta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed, Workers: 1,
		})
		if err != nil {
			return fmt.Errorf("adapt-compare FedAvg K=%d: %w", k, err)
		}

		res.FedML[c] = eval.AverageAdaptationCurveN(m, mlRes.Theta, fedK.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
		res.FedAvg[c] = eval.AverageAdaptationCurveN(m, avgRes.Theta, fedK.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
		boot, err := eval.CompareAlgorithmsN(rng.New(cfg.Seed^0xb007), m,
			mlRes.Theta, avgRes.Theta, fedK.Targets, cfg.Alpha, cfg.AdaptSteps, 2000, 0.95, 1)
		if err != nil {
			return fmt.Errorf("adapt-compare bootstrap K=%d: %w", k, err)
		}
		res.Bootstrap[c] = boot
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render implements the printable figure.
func (r *AdaptCompareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3(c-e): Fast adaptation at target nodes, FedML vs FedAvg, dataset=%s\n", r.Dataset)
	for i, k := range r.Ks {
		names := []string{fmt.Sprintf("FedML K=%d", k), fmt.Sprintf("FedAvg K=%d", k)}
		b.WriteString(renderAdaptTable(fmt.Sprintf("-- K = %d --", k),
			names, [][]eval.AdaptPoint{r.FedML[i], r.FedAvg[i]}, "accuracy"))
		if i < len(r.Bootstrap) {
			bs := r.Bootstrap[i]
			verdict := "not significant"
			if bs.Significant {
				verdict = "significant"
			}
			fmt.Fprintf(&b, "paired bootstrap (FedML − FedAvg, final step): %+.4f, 95%% CI [%+.4f, %+.4f] — %s\n",
				bs.MeanDiff, bs.Lo, bs.Hi, verdict)
		}
	}
	return b.String()
}

// buildWorkload constructs the federation and matching model for a named
// dataset.
func buildWorkload(dataset string, scale Scale, k int, seed uint64) (*data.Federation, nn.Model, error) {
	switch dataset {
	case "synthetic":
		fed, err := syntheticFederation(0.5, 0.5, scale, k, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("workload synthetic: %w", err)
		}
		return fed, softmaxModel(fed), nil
	case "mnist":
		fed, err := mnistFederation(scale, k, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("workload mnist: %w", err)
		}
		return fed, softmaxModel(fed), nil
	case "sent140":
		fed, err := sent140Federation(scale, k, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("workload sent140: %w", err)
		}
		m, err := sent140Model(fed, scale)
		if err != nil {
			return nil, nil, fmt.Errorf("workload sent140 model: %w", err)
		}
		return fed, m, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
}
