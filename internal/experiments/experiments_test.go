package experiments

import (
	"strings"
	"testing"
)

func TestTable1CIScale(t *testing.T) {
	res, err := RunTable1(Table1Config{Scale: ScaleCI, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Nodes <= 0 || row.Mean <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	out := res.Render()
	for _, want := range []string{"Synthetic", "MNIST", "Sent140", "Table I"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig2aShapeNodeSimilarity(t *testing.T) {
	cfg := DefaultFig2aConfig(ScaleCI)
	res, err := RunFig2a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	// Every curve must actually converge: final error well below initial.
	for _, s := range res.Curves {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.Value >= first.Value {
			t.Errorf("%s did not converge: %v -> %v", s.Name, first.Value, last.Value)
		}
	}
	// Paper shape: the most heterogeneous dataset has the largest final
	// convergence error (compare the extremes, which the paper emphasizes).
	if res.FinalErrors[2] <= res.FinalErrors[0] {
		t.Errorf("convergence error did not grow with dissimilarity: %v", res.FinalErrors)
	}
	if !strings.Contains(res.Render(), "Figure 2(a)") {
		t.Error("render missing title")
	}
}

func TestFig2bShapeLocalSteps(t *testing.T) {
	cfg := DefaultFig2bConfig(ScaleCI)
	res, err := RunFig2b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != len(cfg.T0s) {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	// Paper shape: with the iteration budget fixed, larger T0 leaves a
	// larger final error (compare T0=1 against T0=20).
	smallest, largest := res.FinalErrors[0], res.FinalErrors[len(res.FinalErrors)-1]
	if largest <= smallest {
		t.Errorf("final error did not grow with T0: %v", res.FinalErrors)
	}
	if !strings.Contains(res.Render(), "T0=20") {
		t.Error("render missing T0=20 series")
	}
}

func TestFig3aSent140Converges(t *testing.T) {
	res, err := RunFig3a(DefaultFig3aConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Curve.Points
	if len(pts) == 0 {
		t.Fatal("no points tracked")
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.Value >= first.Value {
		t.Errorf("Sent140 objective did not decrease: %v -> %v", first.Value, last.Value)
	}
	if !strings.Contains(res.Render(), "Sent140") {
		t.Error("render missing dataset name")
	}
}

func TestFig3bShapeTargetSimilarity(t *testing.T) {
	res, err := RunFig3b(DefaultFig3bConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	// Paper shape: adaptation works best when source and target are most
	// similar — Synthetic(0,0) beats Synthetic(1,1).
	if res.FinalAccuracies[0] <= res.FinalAccuracies[2] {
		t.Errorf("similar tasks did not adapt better: %v", res.FinalAccuracies)
	}
	// Adaptation must help on the most similar dataset: accuracy after
	// adaptation above the un-adapted baseline.
	c := res.Curves[0]
	if c[len(c)-1].Accuracy <= c[0].Accuracy {
		t.Errorf("adaptation did not improve accuracy on Synthetic(0,0): %v -> %v",
			c[0].Accuracy, c[len(c)-1].Accuracy)
	}
}

func TestFig3cAdaptCompareStructure(t *testing.T) {
	res, err := RunAdaptCompare(DefaultAdaptCompareConfig("synthetic", ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FedML) != len(res.Ks) || len(res.FedAvg) != len(res.Ks) {
		t.Fatal("missing curves")
	}
	// Structural checks. (The paper reports FedML strictly above FedAvg
	// here; under deterministic full-batch fine-tuning with matched rates
	// the two are statistically indistinguishable at the target on this
	// generator — see EXPERIMENTS.md "Deviations" — so the test asserts
	// that fast adaptation works and that FedML is competitive, not that it
	// strictly wins.)
	for i := range res.Ks {
		ml := res.FedML[i]
		avg := res.FedAvg[i]
		if last := ml[len(ml)-1].Accuracy; last <= 0.3 {
			t.Errorf("K=%d: FedML adapted accuracy %v barely above chance", res.Ks[i], last)
		}
		if ml[len(ml)-1].Accuracy <= ml[0].Accuracy {
			t.Errorf("K=%d: adaptation did not improve FedML accuracy (%v -> %v)",
				res.Ks[i], ml[0].Accuracy, ml[len(ml)-1].Accuracy)
		}
		if diff := ml[len(ml)-1].Accuracy - avg[len(avg)-1].Accuracy; diff < -0.1 {
			t.Errorf("K=%d: FedML materially worse than FedAvg after adaptation (diff %v)", res.Ks[i], diff)
		}
	}
	if len(res.Bootstrap) != len(res.Ks) {
		t.Errorf("bootstrap results = %d, want %d", len(res.Bootstrap), len(res.Ks))
	}
	for i, bs := range res.Bootstrap {
		if bs.Lo > bs.Hi {
			t.Errorf("K=%d: inverted CI [%v, %v]", res.Ks[i], bs.Lo, bs.Hi)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "FedML K=") {
		t.Error("render missing series names")
	}
	if !strings.Contains(out, "paired bootstrap") {
		t.Error("render missing bootstrap line")
	}
}

func TestFig3dMNISTRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("MNIST adaptation comparison is slow")
	}
	cfg := DefaultAdaptCompareConfig("mnist", ScaleCI)
	cfg.T = 60
	cfg.Ks = []int{5}
	res, err := RunAdaptCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ml := res.FedML[0]
	if ml[len(ml)-1].Accuracy <= 0.2 {
		t.Errorf("FedML MNIST adaptation accuracy %v barely above chance", ml[len(ml)-1].Accuracy)
	}
}

func TestFig3eSent140Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("Sent140 adaptation comparison is slow")
	}
	cfg := DefaultAdaptCompareConfig("sent140", ScaleCI)
	cfg.T = 30
	cfg.Ks = []int{5}
	res, err := RunAdaptCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FedML[0]) != cfg.AdaptSteps+1 {
		t.Error("unexpected curve length")
	}
}

func TestFig4ShapeRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("robust training sweep is slow")
	}
	res, err := RunFig4(DefaultFig4Config(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	// Models: FedML + one per λ (CI uses λ ∈ {0.1, 10}).
	if len(res.Names) != 3 {
		t.Fatalf("models = %v", res.Names)
	}
	// Paper shape: the most robust model (smallest λ, index 1) beats plain
	// FedML (index 0) on adversarial data after adaptation, without
	// collapsing on clean data.
	adv01 := res.Adv[1]
	advPlain := res.Adv[0]
	if adv01[len(adv01)-1].Accuracy <= advPlain[len(advPlain)-1].Accuracy {
		t.Errorf("Robust λ=0.01 (%v) did not beat FedML (%v) on adversarial data",
			adv01[len(adv01)-1].Accuracy, advPlain[len(advPlain)-1].Accuracy)
	}
	clean01 := res.Clean[1]
	cleanPlain := res.Clean[0]
	if clean01[len(clean01)-1].Accuracy < cleanPlain[len(cleanPlain)-1].Accuracy-0.1 {
		t.Errorf("Robust λ=0.01 sacrificed too much clean accuracy: %v vs %v",
			clean01[len(clean01)-1].Accuracy, cleanPlain[len(cleanPlain)-1].Accuracy)
	}
	out := res.Render()
	for _, want := range []string{"Panel (a)", "Panel (d)", "Robust λ=0.01"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig4eShapeImprovementGrowsWithXi(t *testing.T) {
	if testing.Short() {
		t.Skip("robust training sweep is slow")
	}
	res, err := RunFig4e(DefaultFig4eConfig(ScaleCI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Improvement) != 2 {
		t.Fatalf("points = %d", len(res.Improvement))
	}
	// Paper shape: the robust model's edge grows with attack strength
	// (within the trained radius, see EXPERIMENTS.md).
	if res.Improvement[1] <= 0 {
		t.Errorf("no robustness improvement at large ξ: %v", res.Improvement)
	}
	if res.Improvement[1] < res.Improvement[0]-0.02 {
		t.Errorf("improvement shrank with ξ: %v", res.Improvement)
	}
	if !strings.Contains(res.Render(), "improvement") {
		t.Error("render missing header")
	}
}

func TestRegistryRunsEveryExperimentID(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "fig2a", "fig2b", "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig4", "fig4e"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", ScaleCI, 1); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunTable1ByID(t *testing.T) {
	out, err := Run("table1", ScaleCI, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table I") {
		t.Error("render wrong")
	}
}

func TestScaleString(t *testing.T) {
	if ScaleCI.String() != "ci" || ScalePaper.String() != "paper" || Scale(9).String() != "Scale(9)" {
		t.Error("Scale String broken")
	}
}
