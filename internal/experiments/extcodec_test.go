package experiments

import (
	"strings"
	"testing"
)

func TestExtCodecAccuracyVsBytes(t *testing.T) {
	cfg := DefaultExtCodecConfig(ScaleCI)
	res, err := RunExtCodec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != len(cfg.Codecs) {
		t.Fatalf("%d curves for %d codecs", len(res.Curves), len(cfg.Codecs))
	}
	if res.Codecs[0] != "raw" {
		t.Fatalf("first codec %q, want the raw baseline", res.Codecs[0])
	}
	rawBytes, rawAcc := res.Bytes[0], res.FinalAcc[0]
	for i, name := range res.Codecs {
		if len(res.Curves[i].Points) == 0 {
			t.Errorf("%s: empty accuracy-vs-bytes curve", name)
		}
		if res.Bytes[i] <= 0 {
			t.Errorf("%s: billed %d bytes", name, res.Bytes[i])
		}
		if name == "raw" {
			continue
		}
		if res.Bytes[i] >= rawBytes {
			t.Errorf("%s: %d bytes, not below raw's %d", name, res.Bytes[i], rawBytes)
		}
		if gap := rawAcc - res.FinalAcc[i]; gap > 0.05 {
			t.Errorf("%s: final accuracy %.4f trails raw %.4f by %.4f", name, res.FinalAcc[i], rawAcc, gap)
		}
	}
	// The headline claims: q8 and topk are >= 4x smaller than raw.
	for i, name := range res.Codecs {
		if name != "q8" && name != "topk" {
			continue
		}
		if ratio := float64(rawBytes) / float64(res.Bytes[i]); ratio < 4 {
			t.Errorf("%s: compression ratio %.2fx < 4x", name, ratio)
		}
	}
	out := res.Render()
	for _, want := range []string{"accuracy vs wire traffic", "ratio vs raw", "topk"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExtCodecInRegistry(t *testing.T) {
	for _, e := range All() {
		if e.ID == "ext-codec" {
			return
		}
	}
	t.Fatal("ext-codec not registered")
}
