package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/opt"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// estimateGStar approximates the optimal meta-objective value G(θ*) by
// centralized full-batch meta-gradient descent (equivalent to T0 = 1 with
// exact aggregation every step), run well past the federated budget. The
// convergence-error curves plot G(θᵗ) − G(θ*).
func estimateGStar(m nn.Model, fed *data.Federation, alpha, beta float64, iters int) float64 {
	// A larger centralized step is stable here (no local drift) and reaches
	// the optimum far faster than the federated runs being measured.
	if beta < 0.05 {
		beta = 0.05
	}
	theta, err := meta.TrainCentralized(m, fed.Sources, fed.Weights(),
		m.InitParams(rng.New(99)), alpha, &opt.SGD{LR: beta}, iters, meta.SecondOrder, nil)
	if err != nil {
		// The reference run is only used to shift curves; fall back to the
		// initialization value rather than failing the experiment.
		return eval.GlobalMetaObjective(m, fed, alpha, m.InitParams(rng.New(99)))
	}
	return eval.GlobalMetaObjective(m, fed, alpha, theta)
}

// Fig2aConfig parameterizes the node-similarity convergence experiment.
type Fig2aConfig struct {
	Scale Scale
	// Similarities lists the (α̃, β̃) levels; nil means the paper's
	// {(0,0), (0.5,0.5), (1,1)}.
	Similarities []float64
	// Alpha, Beta are the learning rates (paper: 0.01 both).
	Alpha, Beta float64
	// T, T0 are the iteration budget and local steps (paper: T0 = 10).
	T, T0 int
	Seed  uint64
}

// DefaultFig2aConfig returns the paper configuration at the given scale.
func DefaultFig2aConfig(scale Scale) Fig2aConfig {
	cfg := Fig2aConfig{
		Scale:        scale,
		Similarities: []float64{0, 0.5, 1},
		Alpha:        0.01,
		Beta:         0.01,
		T:            500,
		T0:           10,
		Seed:         1,
	}
	if scale == ScaleCI {
		// The similarity ordering only emerges once the transient has
		// decayed, so CI keeps the paper's T and shrinks the node count
		// (done by syntheticFederation) instead.
		cfg.T = 500
	}
	return cfg
}

// Fig2aResult holds one convergence-error series per similarity level.
type Fig2aResult struct {
	Curves []*eval.Series
	// FinalErrors maps each curve to its final convergence error; the
	// paper's claim is that these increase with (α̃, β̃).
	FinalErrors []float64
}

// RunFig2a reproduces Figure 2(a): the impact of node similarity on FedML
// convergence at T0 = 10.
func RunFig2a(cfg Fig2aConfig) (*Fig2aResult, error) {
	res := &Fig2aResult{}
	for _, ab := range cfg.Similarities {
		fed, err := syntheticFederation(ab, ab, cfg.Scale, 5, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig2a Synthetic(%g,%g): %w", ab, ab, err)
		}
		m := softmaxModel(fed)
		gStar := estimateGStar(m, fed, cfg.Alpha, cfg.Beta, 4*cfg.T)

		series := &eval.Series{Name: fmt.Sprintf("Synthetic(%g,%g)", ab, ab)}
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
			OnRound: func(_, iter int, theta tensor.Vec) {
				series.Add(iter, eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta)-gStar)
			},
		}
		if _, err := core.Train(m, fed, nil, trainCfg); err != nil {
			return nil, fmt.Errorf("fig2a train Synthetic(%g,%g): %w", ab, ab, err)
		}
		res.Curves = append(res.Curves, series)
		last, _ := series.Last()
		res.FinalErrors = append(res.FinalErrors, last.Value)
	}
	return res, nil
}

// Render implements the printable figure.
func (r *Fig2aResult) Render() string {
	return renderSeriesTable(
		"Figure 2(a): Impact of node similarity on FedML convergence (T0=10)",
		"convergence error G(θ_t) − G(θ*)", r.Curves)
}

// Fig2bConfig parameterizes the local-update-count experiment.
type Fig2bConfig struct {
	Scale Scale
	// AlphaBeta is the Synthetic similarity level (paper: 0.5).
	AlphaBeta float64
	// T0s lists the local-update counts to compare.
	T0s []int
	// Alpha, Beta are the learning rates.
	Alpha, Beta float64
	// T is the fixed total iteration budget (paper: 500).
	T    int
	Seed uint64
}

// DefaultFig2bConfig returns the paper configuration at the given scale.
func DefaultFig2bConfig(scale Scale) Fig2bConfig {
	cfg := Fig2bConfig{
		Scale:     scale,
		AlphaBeta: 0.5,
		T0s:       []int{1, 5, 10, 20},
		Alpha:     0.01,
		Beta:      0.01,
		T:         500,
		Seed:      1,
	}
	if scale == ScaleCI {
		cfg.T = 100
	}
	return cfg
}

// Fig2bResult holds one convergence-error series per T0.
type Fig2bResult struct {
	Curves      []*eval.Series
	FinalErrors []float64
}

// RunFig2b reproduces Figure 2(b): the impact of the number of local update
// steps T0 on convergence at fixed T.
func RunFig2b(cfg Fig2bConfig) (*Fig2bResult, error) {
	fed, err := syntheticFederation(cfg.AlphaBeta, cfg.AlphaBeta, cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig2b data: %w", err)
	}
	m := softmaxModel(fed)
	gStar := estimateGStar(m, fed, cfg.Alpha, cfg.Beta, 4*cfg.T)

	res := &Fig2bResult{}
	for _, t0 := range cfg.T0s {
		if cfg.T%t0 != 0 {
			return nil, fmt.Errorf("fig2b: T=%d not a multiple of T0=%d", cfg.T, t0)
		}
		series := &eval.Series{Name: fmt.Sprintf("T0=%d", t0)}
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: t0, Seed: cfg.Seed,
			OnRound: func(_, iter int, theta tensor.Vec) {
				series.Add(iter, eval.GlobalMetaObjective(m, fed, cfg.Alpha, theta)-gStar)
			},
		}
		if _, err := core.Train(m, fed, nil, trainCfg); err != nil {
			return nil, fmt.Errorf("fig2b train T0=%d: %w", t0, err)
		}
		res.Curves = append(res.Curves, series)
		last, _ := series.Last()
		res.FinalErrors = append(res.FinalErrors, last.Value)
	}
	return res, nil
}

// Render implements the printable figure. The curves have different
// aggregation grids (one point per round, and rounds = T/T0), so each series
// is printed as its own iteration/value block.
func (r *Fig2bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2(b): Impact of T0 on FedML convergence, Synthetic(0.5,0.5), fixed T\n")
	for _, s := range r.Curves {
		b.WriteString(s.TSV())
	}
	b.WriteString("final convergence errors by T0:")
	for i, s := range r.Curves {
		fmt.Fprintf(&b, "  %s: %.6g", s.Name, r.FinalErrors[i])
	}
	b.WriteString("\n(convergence error G(θ_T) − G(θ*))\n")
	return b.String()
}
