package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/opt"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// estimateGStar approximates the optimal meta-objective value G(θ*) by
// centralized full-batch meta-gradient descent (equivalent to T0 = 1 with
// exact aggregation every step), run well past the federated budget. The
// convergence-error curves plot G(θᵗ) − G(θ*).
//
// When the reference run fails, the returned value falls back to the
// initialization objective — curves can still be shifted and rendered — but
// the failure is reported through the error so callers surface the degraded
// baseline instead of silently plotting against it. Earlier revisions
// swallowed the error here, which made a diverged reference run
// indistinguishable from a converged one.
func estimateGStar(m nn.Model, fed *data.Federation, alpha, beta float64, iters, workers int) (float64, error) {
	// A larger centralized step is stable here (no local drift) and reaches
	// the optimum far faster than the federated runs being measured.
	if beta < 0.05 {
		beta = 0.05
	}
	theta, err := meta.TrainCentralized(m, fed.Sources, fed.Weights(),
		m.InitParams(rng.New(99)), alpha, &opt.SGD{LR: beta}, iters, meta.SecondOrder, workers, nil)
	if err != nil {
		return eval.GlobalMetaObjectiveN(m, fed, alpha, m.InitParams(rng.New(99)), workers),
			fmt.Errorf("experiments: G* reference run failed, falling back to initialization objective: %w", err)
	}
	return eval.GlobalMetaObjectiveN(m, fed, alpha, theta, workers), nil
}

// renderWarnings appends any accumulated experiment warnings to a rendered
// figure so degraded baselines are visible in the output.
func renderWarnings(b *strings.Builder, warnings []string) {
	for _, w := range warnings {
		fmt.Fprintf(b, "WARNING: %s\n", w)
	}
}

// Fig2aConfig parameterizes the node-similarity convergence experiment.
type Fig2aConfig struct {
	Scale Scale
	// Similarities lists the (α̃, β̃) levels; nil means the paper's
	// {(0,0), (0.5,0.5), (1,1)}.
	Similarities []float64
	// Alpha, Beta are the learning rates (paper: 0.01 both).
	Alpha, Beta float64
	// T, T0 are the iteration budget and local steps (paper: T0 = 10).
	T, T0 int
	Seed  uint64
	// Workers bounds the grid-cell fan-out (0 = GOMAXPROCS). Each
	// similarity level is one independent cell; results are bit-identical
	// for every worker count.
	Workers int
}

// DefaultFig2aConfig returns the paper configuration at the given scale.
func DefaultFig2aConfig(scale Scale) Fig2aConfig {
	cfg := Fig2aConfig{
		Scale:        scale,
		Similarities: []float64{0, 0.5, 1},
		Alpha:        0.01,
		Beta:         0.01,
		T:            500,
		T0:           10,
		Seed:         1,
	}
	if scale == ScaleCI {
		// The similarity ordering only emerges once the transient has
		// decayed, so CI keeps the paper's T and shrinks the node count
		// (done by syntheticFederation) instead.
		cfg.T = 500
	}
	return cfg
}

// Fig2aResult holds one convergence-error series per similarity level.
type Fig2aResult struct {
	Curves []*eval.Series
	// FinalErrors maps each curve to its final convergence error; the
	// paper's claim is that these increase with (α̃, β̃).
	FinalErrors []float64
	// Warnings records per-cell degradations (e.g. a failed G* reference
	// run), in cell order.
	Warnings []string
}

// fig2Cell is one grid cell's output slot.
type fig2Cell struct {
	series  *eval.Series
	final   float64
	warning string
}

// RunFig2a reproduces Figure 2(a): the impact of node similarity on FedML
// convergence at T0 = 10. The similarity levels are independent cells and
// run on the worker pool; every cell owns its federation, model, and series,
// and the result is assembled in cell order, so the output is bit-identical
// for every worker count.
func RunFig2a(cfg Fig2aConfig) (*Fig2aResult, error) {
	cells := make([]fig2Cell, len(cfg.Similarities))
	err := par.ForEachErr(cfg.Workers, len(cfg.Similarities), func(c int) error {
		ab := cfg.Similarities[c]
		fed, err := syntheticFederation(ab, ab, cfg.Scale, 5, cfg.Seed)
		if err != nil {
			return fmt.Errorf("fig2a Synthetic(%g,%g): %w", ab, ab, err)
		}
		m := softmaxModel(fed)
		// Inner loops stay serial: the cell grid is the coarser, better-
		// balanced grain, and nesting pools would oversubscribe.
		gStar, gErr := estimateGStar(m, fed, cfg.Alpha, cfg.Beta, 4*cfg.T, 1)
		if gErr != nil {
			cells[c].warning = fmt.Sprintf("Synthetic(%g,%g): %v", ab, ab, gErr)
		}

		series := &eval.Series{Name: fmt.Sprintf("Synthetic(%g,%g)", ab, ab)}
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
			OnRound: func(_, iter int, theta tensor.Vec) {
				series.Add(iter, eval.GlobalMetaObjectiveN(m, fed, cfg.Alpha, theta, 1)-gStar)
			},
		}
		if _, err := core.Train(m, fed, nil, trainCfg); err != nil {
			return fmt.Errorf("fig2a train Synthetic(%g,%g): %w", ab, ab, err)
		}
		cells[c].series = series
		last, _ := series.Last()
		cells[c].final = last.Value
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig2aResult{}
	for _, cell := range cells {
		res.Curves = append(res.Curves, cell.series)
		res.FinalErrors = append(res.FinalErrors, cell.final)
		if cell.warning != "" {
			res.Warnings = append(res.Warnings, cell.warning)
		}
	}
	return res, nil
}

// Render implements the printable figure.
func (r *Fig2aResult) Render() string {
	var b strings.Builder
	b.WriteString(renderSeriesTable(
		"Figure 2(a): Impact of node similarity on FedML convergence (T0=10)",
		"convergence error G(θ_t) − G(θ*)", r.Curves))
	renderWarnings(&b, r.Warnings)
	return b.String()
}

// Fig2bConfig parameterizes the local-update-count experiment.
type Fig2bConfig struct {
	Scale Scale
	// AlphaBeta is the Synthetic similarity level (paper: 0.5).
	AlphaBeta float64
	// T0s lists the local-update counts to compare.
	T0s []int
	// Alpha, Beta are the learning rates.
	Alpha, Beta float64
	// T is the fixed total iteration budget (paper: 500).
	T    int
	Seed uint64
	// Workers bounds the grid-cell fan-out (0 = GOMAXPROCS); one cell
	// per T0.
	Workers int
}

// DefaultFig2bConfig returns the paper configuration at the given scale.
func DefaultFig2bConfig(scale Scale) Fig2bConfig {
	cfg := Fig2bConfig{
		Scale:     scale,
		AlphaBeta: 0.5,
		T0s:       []int{1, 5, 10, 20},
		Alpha:     0.01,
		Beta:      0.01,
		T:         500,
		Seed:      1,
	}
	if scale == ScaleCI {
		cfg.T = 100
	}
	return cfg
}

// Fig2bResult holds one convergence-error series per T0.
type Fig2bResult struct {
	Curves      []*eval.Series
	FinalErrors []float64
	// Warnings records degradations such as a failed G* reference run.
	Warnings []string
}

// RunFig2b reproduces Figure 2(b): the impact of the number of local update
// steps T0 on convergence at fixed T. The T0 cells share one federation and
// G* estimate (both computed up front, read-only during the fan-out) and run
// on the worker pool with per-cell result slots.
func RunFig2b(cfg Fig2bConfig) (*Fig2bResult, error) {
	fed, err := syntheticFederation(cfg.AlphaBeta, cfg.AlphaBeta, cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig2b data: %w", err)
	}
	m := softmaxModel(fed)
	res := &Fig2bResult{}
	gStar, gErr := estimateGStar(m, fed, cfg.Alpha, cfg.Beta, 4*cfg.T, cfg.Workers)
	if gErr != nil {
		res.Warnings = append(res.Warnings, gErr.Error())
	}
	for _, t0 := range cfg.T0s {
		if cfg.T%t0 != 0 {
			return nil, fmt.Errorf("fig2b: T=%d not a multiple of T0=%d", cfg.T, t0)
		}
	}

	cells := make([]fig2Cell, len(cfg.T0s))
	err = par.ForEachErr(cfg.Workers, len(cfg.T0s), func(c int) error {
		t0 := cfg.T0s[c]
		series := &eval.Series{Name: fmt.Sprintf("T0=%d", t0)}
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: t0, Seed: cfg.Seed,
			OnRound: func(_, iter int, theta tensor.Vec) {
				series.Add(iter, eval.GlobalMetaObjectiveN(m, fed, cfg.Alpha, theta, 1)-gStar)
			},
		}
		if _, err := core.Train(m, fed, nil, trainCfg); err != nil {
			return fmt.Errorf("fig2b train T0=%d: %w", t0, err)
		}
		cells[c].series = series
		last, _ := series.Last()
		cells[c].final = last.Value
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, cell := range cells {
		res.Curves = append(res.Curves, cell.series)
		res.FinalErrors = append(res.FinalErrors, cell.final)
	}
	return res, nil
}

// Render implements the printable figure. The curves have different
// aggregation grids (one point per round, and rounds = T/T0), so each series
// is printed as its own iteration/value block.
func (r *Fig2bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2(b): Impact of T0 on FedML convergence, Synthetic(0.5,0.5), fixed T\n")
	for _, s := range r.Curves {
		b.WriteString(s.TSV())
	}
	b.WriteString("final convergence errors by T0:")
	for i, s := range r.Curves {
		fmt.Fprintf(&b, "  %s: %.6g", s.Name, r.FinalErrors[i])
	}
	b.WriteString("\n(convergence error G(θ_T) − G(θ*))\n")
	renderWarnings(&b, r.Warnings)
	return b.String()
}
