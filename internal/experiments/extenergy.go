package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/tensor"
)

// The paper motivates FedML by the resource constraints of wireless edge
// nodes but reports convergence only against iteration counts. This
// extension prices the runs in joules under an EnergyModel and compares
// three sync policies on what each joule buys: full-parameter sync, head-only
// partial sync (SyncMask — freeze the feature layers after warmup, keep
// syncing the output head), and head-only sync with budget-aware
// participation (a node whose modeled per-round cost exceeds its energy
// budget sits the round out). On a radio-dominated profile the masked runs
// reach comparable adapted accuracy several times cheaper, and the budgeted
// arm shows a hungry node being excluded while full payloads fly and
// re-admitted once the mask shrinks the per-round bill under its budget.

// ExtEnergyConfig parameterizes the accuracy-vs-energy experiment.
type ExtEnergyConfig struct {
	Scale Scale
	// Alpha, Beta are the FedML rates; T the iteration budget, T0 the local
	// steps per round.
	Alpha, Beta float64
	T, T0       int
	// Warmup is the number of full-sync rounds before the head mask engages.
	Warmup int
	// Hidden is the MLP hidden width (the frozen feature layer; the softmax
	// models elsewhere are all head, so partial sync needs a deeper model).
	Hidden int
	// AdaptSteps is the target-side adaptation depth for the accuracy probe.
	AdaptSteps int
	// Profile selects the core.EnergyProfiles radio ("lora-like", "wifi",
	// "datacenter"); ComputeJPerIter is its workload-dependent compute term.
	Profile         string
	ComputeJPerIter float64
	// BudgetJ is the per-node per-round energy budget of the budgeted arm.
	// Zero selects it automatically: 2x the modeled full-sync round cost of
	// an unscaled node, so regular nodes always fit while the HungryScale
	// node only fits once the mask discounts its traffic.
	BudgetJ float64
	// HungryScale is the energy multiplier of the last source node in the
	// budgeted arm (a node with a power-hungry radio).
	HungryScale float64
	Seed        uint64
	// Workers bounds the per-arm fan-out (0 = GOMAXPROCS).
	Workers int
}

// DefaultExtEnergyConfig returns the experiment configuration.
func DefaultExtEnergyConfig(scale Scale) ExtEnergyConfig {
	cfg := ExtEnergyConfig{
		Scale:           scale,
		Alpha:           0.01,
		Beta:            0.01,
		T:               500,
		T0:              10,
		Warmup:          2,
		Hidden:          16,
		AdaptSteps:      10,
		Profile:         "lora-like",
		ComputeJPerIter: 1e-4,
		HungryScale:     10,
		Seed:            1,
	}
	if scale == ScaleCI {
		cfg.T = 120
	}
	return cfg
}

// ExtEnergyResult holds one accuracy-vs-joules and one accuracy-vs-KiB curve
// per arm, plus the summary row each pair collapses to.
type ExtEnergyResult struct {
	Profile string
	// Arms names the sync policies, in curve order: full-sync, head-sync,
	// head-sync+budget.
	Arms []string
	// AccVsJoules plots mean adapted target accuracy (y) against cumulative
	// modeled joules across the fleet (x, in the Series iteration slot).
	AccVsJoules []*eval.Series
	// AccVsKiB plots the same accuracy against cumulative wire KiB — the
	// ext-codec axis, so energy and traffic savings can be read side by side.
	AccVsKiB []*eval.Series
	// TotalJoules, TotalKiB, FinalAcc, BudgetFiltered are per-arm totals.
	TotalJoules    []float64
	TotalKiB       []float64
	FinalAcc       []float64
	BudgetFiltered []int
}

// extEnergyCell is one arm's output slot.
type extEnergyCell struct {
	joules   *eval.Series
	kib      *eval.Series
	totalJ   float64
	totalKiB float64
	acc      float64
	filtered int
}

// joulesByRound folds an event stream into cumulative fleet joules at each
// round boundary, pricing from the node's perspective: a broadcast or probe
// is received (rx), a delivered update was transmitted (tx) after t0 local
// iterations of compute. scale multiplies per-node costs (nil = 1).
func joulesByRound(events []obs.Event, em core.EnergyModel, scale []float64) map[int]float64 {
	nodeScale := func(i int) float64 {
		if scale == nil || i >= len(scale) {
			return 1
		}
		return scale[i]
	}
	cum := map[int]float64{}
	total := 0.0
	t0 := 0
	for _, e := range events {
		switch e.Type {
		case obs.TypeRoundStart:
			t0 = e.T0
		case obs.TypeBroadcast, obs.TypeProbe:
			total += nodeScale(e.Node) * em.RoundJoules(e.Bytes, 0, 0)
		case obs.TypeUpdate:
			total += nodeScale(e.Node) * em.RoundJoules(0, e.Bytes, t0)
		case obs.TypeRoundEnd, obs.TypeRoundSkip:
			cum[e.Round] = total
		}
	}
	return cum
}

// RunExtEnergy trains the same federation under each sync policy and reports
// adapted accuracy against the modeled energy spent to reach it.
func RunExtEnergy(cfg ExtEnergyConfig) (*ExtEnergyResult, error) {
	profiles := core.EnergyProfiles(cfg.ComputeJPerIter)
	em, ok := profiles[cfg.Profile]
	if !ok {
		return nil, fmt.Errorf("ext-energy: unknown energy profile %q", cfg.Profile)
	}
	arms := []string{"full-sync", "head-sync", "head+budget"}
	cells := make([]extEnergyCell, len(arms))
	err := par.ForEachErr(cfg.Workers, len(arms), func(c int) error {
		arm := arms[c]
		fed, err := syntheticFederation(0.5, 0.5, cfg.Scale, 5, cfg.Seed)
		if err != nil {
			return fmt.Errorf("ext-energy data: %w", err)
		}
		m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, cfg.Hidden, fed.NumClasses}, L2: 0.01})
		if err != nil {
			return fmt.Errorf("ext-energy model: %w", err)
		}
		rec := obs.NewRecorder()
		accByIter := map[int]float64{}
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
			Observer: rec,
			Energy:   &em,
			OnRound: func(_, iter int, theta tensor.Vec) {
				accs := eval.FinalAccuraciesN(m, theta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
				var s float64
				for _, a := range accs {
					s += a
				}
				accByIter[iter] = s / float64(len(accs))
			},
		}
		var scale []float64
		if arm != "full-sync" {
			mask, err := core.ResolveSyncMask(fmt.Sprintf("head:%d", cfg.Warmup), m)
			if err != nil {
				return fmt.Errorf("ext-energy mask: %w", err)
			}
			trainCfg.SyncMask = mask
		}
		if arm == "head+budget" {
			// The modeled full-sync round cost of an unscaled node prices the
			// auto budget; the hungry node only fits under the mask discount.
			fullBytes := int64(8 * m.NumParams())
			budget := cfg.BudgetJ
			if budget <= 0 {
				budget = 2 * em.RoundJoules(fullBytes, fullBytes, cfg.T0)
			}
			scale = make([]float64, len(fed.Sources))
			for i := range scale {
				scale[i] = 1
			}
			scale[len(scale)-1] = cfg.HungryScale
			trainCfg.EnergyBudget = budget
			trainCfg.EnergyScale = scale
		}
		res, err := core.Train(m, fed, nil, trainCfg)
		if err != nil {
			return fmt.Errorf("ext-energy train %s: %w", arm, err)
		}
		// Join the accuracy probe with the energy and traffic bills on the
		// shared round/iteration axes.
		cumJ := joulesByRound(rec.Events(), em, scale)
		jCurve := &eval.Series{Name: arm}
		kCurve := &eval.Series{Name: arm}
		for _, r := range rec.Rounds() {
			acc, ok := accByIter[r.Iter]
			if !ok {
				continue
			}
			jCurve.Add(int(cumJ[r.Round]), acc)
			kCurve.Add(int(r.Cum.Bytes/1024), acc)
		}
		cells[c] = extEnergyCell{
			joules:   jCurve,
			kib:      kCurve,
			totalKiB: float64(res.Comm.Bytes) / 1024,
			filtered: res.Comm.BudgetFiltered,
		}
		if last, ok := jCurve.Last(); ok {
			cells[c].totalJ = float64(last.Iter)
			cells[c].acc = last.Value
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &ExtEnergyResult{Profile: cfg.Profile, Arms: arms}
	for _, cell := range cells {
		res.AccVsJoules = append(res.AccVsJoules, cell.joules)
		res.AccVsKiB = append(res.AccVsKiB, cell.kib)
		res.TotalJoules = append(res.TotalJoules, cell.totalJ)
		res.TotalKiB = append(res.TotalKiB, cell.totalKiB)
		res.FinalAcc = append(res.FinalAcc, cell.acc)
		res.BudgetFiltered = append(res.BudgetFiltered, cell.filtered)
	}
	return res, nil
}

// Render implements the printable extension: accuracy-vs-joules blocks,
// accuracy-vs-KiB blocks, then the summary table with energy ratios against
// the full-sync baseline.
func (r *ExtEnergyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: adapted accuracy vs modeled energy (%s radio), full vs head-only sync\n", r.Profile)
	for _, s := range r.AccVsJoules {
		fmt.Fprintf(&b, "arm %s (J -> mean target accuracy)\n", s.Name)
		b.WriteString(s.TSV())
	}
	for _, s := range r.AccVsKiB {
		fmt.Fprintf(&b, "arm %s (KiB -> mean target accuracy)\n", s.Name)
		b.WriteString(s.TSV())
	}
	b.WriteString("arm          total J     total KiB   final acc   J ratio vs full   budget-filtered\n")
	base := r.TotalJoules[0]
	for i, name := range r.Arms {
		fmt.Fprintf(&b, "%-12s %-11.0f %-11.1f %-11.4f %-17.2f %d\n",
			name, r.TotalJoules[i], r.TotalKiB[i], r.FinalAcc[i], base/r.TotalJoules[i], r.BudgetFiltered[i])
	}
	b.WriteString("(head-only sync freezes the feature layers after warmup; the budgeted arm excludes the\n" +
		"hungry node while full payloads fly and re-admits it once the mask fits its budget)\n")
	return b.String()
}
