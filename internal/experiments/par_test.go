package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/rng"
)

// estimateGStar's normal path returns a finite reference value and no error.
func TestEstimateGStarNormalPath(t *testing.T) {
	fed, err := syntheticFederation(0.5, 0.5, ScaleCI, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := softmaxModel(fed)
	gStar, err := estimateGStar(m, fed, 0.01, 0.01, 50, 1)
	if err != nil {
		t.Fatalf("normal path returned error: %v", err)
	}
	init := eval.GlobalMetaObjectiveN(m, fed, 0.01, m.InitParams(rng.New(99)), 1)
	if gStar >= init {
		t.Errorf("reference run did not improve on initialization: G* = %v, init = %v", gStar, init)
	}
}

// When the reference run diverges, estimateGStar must fall back to the
// initialization objective AND report the failure — the old code swallowed
// it, making a diverged baseline indistinguishable from a converged one.
func TestEstimateGStarFallbackReportsError(t *testing.T) {
	fed, err := syntheticFederation(0.5, 0.5, ScaleCI, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := softmaxModel(fed)
	// A NaN meta rate slips past the lower clamp (NaN < 0.05 is false) and
	// poisons θ on the first SGD step, so the reference run reliably fails.
	gStar, gErr := estimateGStar(m, fed, 0.01, math.NaN(), 20, 1)
	if gErr == nil {
		t.Fatal("diverged reference run reported no error")
	}
	if !strings.Contains(gErr.Error(), "falling back to initialization objective") {
		t.Errorf("error does not describe the fallback: %v", gErr)
	}
	want := eval.GlobalMetaObjectiveN(m, fed, 0.01, m.InitParams(rng.New(99)), 1)
	if gStar != want {
		t.Errorf("fallback value = %v, want initialization objective %v", gStar, want)
	}
}

// A degraded G* baseline must be visible in the rendered figure, and a clean
// run must not carry a warning banner.
func TestFig2aRendersGStarWarning(t *testing.T) {
	clean := Fig2aConfig{
		Scale:        ScaleCI,
		Similarities: []float64{0.5},
		Alpha:        0.01,
		Beta:         0.01,
		T:            20,
		T0:           10,
		Seed:         1,
		Workers:      1,
	}
	res, err := RunFig2a(clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("clean run produced warnings: %v", res.Warnings)
	}
	if strings.Contains(res.Render(), "WARNING") {
		t.Error("clean render contains a warning banner")
	}
	res.Warnings = append(res.Warnings, "Synthetic(0.5,0.5): G* reference run failed")
	if out := res.Render(); !strings.Contains(out, "WARNING: Synthetic(0.5,0.5): G* reference run failed") {
		t.Errorf("warning not rendered:\n%s", out)
	}
}

// Experiment output must be byte-identical across worker counts. This is the
// end-to-end determinism check over the whole pipeline: data generation,
// training, evaluation, bootstrap, and rendering.
func TestExperimentsWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment comparison")
	}
	t.Run("table1", func(t *testing.T) {
		t.Parallel()
		ref, err := RunTable1(Table1Config{Scale: ScaleCI, Seed: 1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunTable1(Table1Config{Scale: ScaleCI, Seed: 1, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Render() != par.Render() {
			t.Errorf("table1 output differs between workers=1 and workers=8:\n%s\n---\n%s", ref.Render(), par.Render())
		}
	})
	t.Run("fig2a", func(t *testing.T) {
		t.Parallel()
		cfg := Fig2aConfig{
			Scale:        ScaleCI,
			Similarities: []float64{0, 1},
			Alpha:        0.01,
			Beta:         0.01,
			T:            40,
			T0:           10,
			Seed:         1,
		}
		cfg.Workers = 1
		ref, err := RunFig2a(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		par, err := RunFig2a(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Render() != par.Render() {
			t.Error("fig2a output differs between workers=1 and workers=8")
		}
	})
	t.Run("ext-meta-opt", func(t *testing.T) {
		t.Parallel()
		cfg := DefaultExtMetaOptConfig(ScaleCI)
		cfg.Iters = 30
		cfg.Workers = 1
		ref, err := RunExtMetaOpt(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		par, err := RunExtMetaOpt(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Render() != par.Render() {
			t.Error("ext-meta-opt output differs between workers=1 and workers=8")
		}
	})
}
