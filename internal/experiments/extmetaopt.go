package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/meta"
	"github.com/edgeai/fedml/internal/opt"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/rng"
	"github.com/edgeai/fedml/internal/tensor"
)

// Extension: ablate the META-UPDATE RULE. Algorithm 1 uses plain gradient
// descent for the outer step (Eq. 4); this experiment runs centralized
// meta-training (T0 = 1 dynamics) with SGD, momentum and Adam outer
// optimizers and compares objective trajectories at equal iteration budget.

// ExtMetaOptConfig parameterizes the ablation.
type ExtMetaOptConfig struct {
	Scale Scale
	// Alpha is the inner rate; Beta the SGD/momentum outer rate (Adam uses
	// AdamLR since its scale-free steps need a different magnitude).
	Alpha, Beta, AdamLR float64
	Iters               int
	Seed                uint64
	// Workers bounds the per-optimizer fan-out (0 = GOMAXPROCS).
	Workers int
}

// DefaultExtMetaOptConfig returns the ablation configuration.
func DefaultExtMetaOptConfig(scale Scale) ExtMetaOptConfig {
	cfg := ExtMetaOptConfig{
		Scale:  scale,
		Alpha:  0.05,
		Beta:   0.01,
		AdamLR: 0.01,
		Iters:  300,
		Seed:   10,
	}
	if scale == ScaleCI {
		cfg.Iters = 100
	}
	return cfg
}

// ExtMetaOptResult holds one objective trajectory per optimizer.
type ExtMetaOptResult struct {
	Curves []*eval.Series
	Finals []float64
}

// RunExtMetaOpt runs the ablation.
func RunExtMetaOpt(cfg ExtMetaOptConfig) (*ExtMetaOptResult, error) {
	fed, err := syntheticFederation(0.5, 0.5, cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("ext-meta-opt data: %w", err)
	}
	m := softmaxModel(fed)
	theta0 := m.InitParams(rng.New(cfg.Seed))

	optimizers := []opt.Optimizer{
		&opt.SGD{LR: cfg.Beta},
		&opt.Momentum{LR: cfg.Beta, Gamma: 0.9},
		&opt.Adam{LR: cfg.AdamLR},
	}

	// Each optimizer run is independent (stateful optimizers are per-cell);
	// run the three on the worker pool into index slots.
	curves := make([]*eval.Series, len(optimizers))
	err = par.ForEachErr(cfg.Workers, len(optimizers), func(c int) error {
		o := optimizers[c]
		series := &eval.Series{Name: o.Name()}
		_, err := meta.TrainCentralized(m, fed.Sources, fed.Weights(), theta0,
			cfg.Alpha, o, cfg.Iters, meta.SecondOrder, 1,
			func(iter int, theta tensor.Vec) {
				if iter%10 == 0 || iter == cfg.Iters {
					series.Add(iter, eval.GlobalMetaObjectiveN(m, fed, cfg.Alpha, theta, 1))
				}
			})
		if err != nil {
			return fmt.Errorf("ext-meta-opt %s: %w", o.Name(), err)
		}
		curves[c] = series
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &ExtMetaOptResult{Curves: curves}
	for _, s := range curves {
		last, _ := s.Last()
		res.Finals = append(res.Finals, last.Value)
	}
	return res, nil
}

// Render implements the printable experiment.
func (r *ExtMetaOptResult) Render() string {
	var b strings.Builder
	b.WriteString(renderSeriesTable(
		"Extension: outer-optimizer ablation (centralized meta-training)",
		"meta-objective G(θ_t)", r.Curves))
	b.WriteString("final objectives:")
	for i, s := range r.Curves {
		fmt.Fprintf(&b, "  %s: %.4f", s.Name, r.Finals[i])
	}
	b.WriteByte('\n')
	return b.String()
}
