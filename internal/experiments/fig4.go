package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/tensor"
)

// Fig4Config parameterizes the Robust-FedML evaluation on MNIST (§VI-C).
type Fig4Config struct {
	Scale Scale
	// Lambdas are the DRO penalties compared (paper: 0.1, 1, 10; smaller λ
	// = larger uncertainty set = more robustness).
	Lambdas []float64
	// Alpha, Beta are the FedML learning rates.
	Alpha, Beta float64
	T, T0       int
	// Nu, Ta, N0, R are the Algorithm 2 adversarial-generation parameters
	// (paper: ν=1, Ta=10, N0=7, R=2).
	Nu        float64
	Ta, N0, R int
	// Xi is the FGSM budget used for the adversarial evaluation panels.
	Xi         float64
	AdaptSteps int
	Seed       uint64
	// Workers bounds the fan-out over trainings and per-model evaluations
	// (0 = GOMAXPROCS).
	Workers int
}

// DefaultFig4Config returns the paper configuration at the given scale.
func DefaultFig4Config(scale Scale) Fig4Config {
	// Two deviations from the paper's literal constants, both forced by
	// scale matching (EXPERIMENTS.md "Deviations"): (1) λ multiplies
	// ‖x−x₀‖² against OUR loss/feature scale, so the paper's {0.1, 1, 10}
	// is rescaled to {0.01, 0.1, 1} to span the same weak-to-strong
	// robustness range; (2) N0 is enlarged so the R=2 adversarial
	// generations happen mid-training — at the paper's N0=7 the generations
	// fire at iterations 35/70 where our model is still near its tiny
	// initialization and gradient-based perturbations are no-ops.
	cfg := Fig4Config{
		Scale:      scale,
		Lambdas:    []float64{0.01, 0.1, 1},
		Alpha:      0.01,
		Beta:       0.01,
		T:          500,
		T0:         5,
		Nu:         1,
		Ta:         10,
		N0:         40,
		R:          2,
		Xi:         0.02,
		AdaptSteps: 10,
		Seed:       5,
	}
	if scale == ScaleCI {
		cfg.T = 300
		cfg.N0 = 24
		cfg.Lambdas = []float64{0.01, 1}
	}
	return cfg
}

// Fig4Result holds the Figure 4(a)–(d) panels: clean and FGSM-adversarial
// adaptation curves (each carrying both loss and accuracy) for plain FedML
// and Robust FedML at every λ.
type Fig4Result struct {
	Names []string
	Clean [][]eval.AdaptPoint
	Adv   [][]eval.AdaptPoint
	Xi    float64
}

// RunFig4 trains plain FedML plus one Robust FedML model per λ on the
// MNIST-like workload and evaluates the target-node adaptation on clean and
// FGSM-perturbed test data.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	fed, err := mnistFederation(cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig4 data: %w", err)
	}
	m := softmaxModel(fed)

	type trained struct {
		name  string
		theta tensor.Vec
	}
	// Slot 0 is plain FedML; slot i+1 is Robust at Lambdas[i]. The
	// trainings are independent (the federation is read-only) and run on
	// the worker pool into index slots.
	models := make([]trained, 1+len(cfg.Lambdas))
	err = par.ForEachErr(cfg.Workers, len(models), func(c int) error {
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
		}
		name := "FedML"
		if c > 0 {
			lambda := cfg.Lambdas[c-1]
			name = fmt.Sprintf("Robust λ=%g", lambda)
			trainCfg.Robust = &core.RobustConfig{
				Lambda: lambda, Nu: cfg.Nu, Ta: cfg.Ta, N0: cfg.N0, R: cfg.R,
				ClampMin: 0, ClampMax: 1, // MNIST pixel domain
			}
		}
		trainRes, err := core.Train(m, fed, nil, trainCfg)
		if err != nil {
			return fmt.Errorf("fig4 %s: %w", name, err)
		}
		models[c] = trained{name: name, theta: trainRes.Theta}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig4Result{
		Xi:    cfg.Xi,
		Names: make([]string, len(models)),
		Clean: make([][]eval.AdaptPoint, len(models)),
		Adv:   make([][]eval.AdaptPoint, len(models)),
	}
	err = par.ForEachErr(cfg.Workers, len(models), func(c int) error {
		tr := models[c]
		clean := eval.AverageAdaptationCurveN(m, tr.theta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
		adv, err := eval.AverageAdversarialAdaptationCurveN(m, tr.theta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, cfg.Xi, 0, 1, 1)
		if err != nil {
			return fmt.Errorf("fig4 adversarial eval %s: %w", tr.name, err)
		}
		res.Names[c] = tr.name
		res.Clean[c] = clean
		res.Adv[c] = adv
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints all four panels.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(a-d): Adaptation performance of Robust FedML on MNIST (FGSM ξ=%g)\n", r.Xi)
	b.WriteString(renderAdaptTable("Panel (a): loss on clean data", r.Names, r.Clean, "loss"))
	b.WriteString(renderAdaptTable("Panel (b): loss on adversarial data", r.Names, r.Adv, "loss"))
	b.WriteString(renderAdaptTable("Panel (c): accuracy on clean data", r.Names, r.Clean, "accuracy"))
	b.WriteString(renderAdaptTable("Panel (d): accuracy on adversarial data", r.Names, r.Adv, "accuracy"))
	return b.String()
}

// Fig4eConfig parameterizes the FGSM-budget sweep.
type Fig4eConfig struct {
	Scale Scale
	// Xis are the FGSM budgets swept on the x-axis.
	Xis []float64
	// Lambda is the Robust-FedML penalty to compare against plain FedML
	// (paper's robust setting: the small-λ, most-robust model).
	Lambda float64
	// Training parameters as in Fig4Config.
	Alpha, Beta float64
	T, T0       int
	Nu          float64
	Ta, N0, R   int
	AdaptSteps  int
	Seed        uint64
	// Workers bounds the fan-out over the two trainings and the ξ grid
	// (0 = GOMAXPROCS).
	Workers int
}

// DefaultFig4eConfig returns the paper configuration at the given scale.
func DefaultFig4eConfig(scale Scale) Fig4eConfig {
	// The ξ grid covers the attack strengths the DRO training radius can
	// defend (see DefaultFig4Config for the λ/N0 rescaling rationale); the
	// paper's improvement-grows-with-ξ shape holds inside that range and
	// collapses once ξ exceeds the trained radius.
	cfg := Fig4eConfig{
		Scale:      scale,
		Xis:        []float64{0.005, 0.01, 0.02, 0.05},
		Lambda:     0.1,
		Alpha:      0.01,
		Beta:       0.01,
		T:          500,
		T0:         5,
		Nu:         1,
		Ta:         10,
		N0:         40,
		R:          2,
		AdaptSteps: 5,
		Seed:       5,
	}
	if scale == ScaleCI {
		cfg.T = 300
		cfg.N0 = 24
		cfg.Xis = []float64{0.005, 0.02}
		// At the shorter CI budget the model (and hence its input
		// gradients) is smaller, shifting the useful λ range down.
		cfg.Lambda = 0.01
	}
	return cfg
}

// Fig4eResult tabulates final-step adversarial accuracy vs FGSM budget ξ.
type Fig4eResult struct {
	Xis         []float64
	FedMLAcc    []float64
	RobustAcc   []float64
	Improvement []float64
}

// RunFig4e reproduces Figure 4(e): the accuracy improvement of Robust FedML
// over FedML as a function of the attack strength ξ.
func RunFig4e(cfg Fig4eConfig) (*Fig4eResult, error) {
	fed, err := mnistFederation(cfg.Scale, 5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig4e data: %w", err)
	}
	m := softmaxModel(fed)

	// The plain and robust trainings are independent; run both on the pool.
	thetas := make([]tensor.Vec, 2)
	err = par.ForEachErr(cfg.Workers, 2, func(c int) error {
		trainCfg := core.Config{
			Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
		}
		name := "FedML"
		if c == 1 {
			name = "Robust"
			trainCfg.Robust = &core.RobustConfig{
				Lambda: cfg.Lambda, Nu: cfg.Nu, Ta: cfg.Ta, N0: cfg.N0, R: cfg.R,
				ClampMin: 0, ClampMax: 1,
			}
		}
		trainRes, err := core.Train(m, fed, nil, trainCfg)
		if err != nil {
			return fmt.Errorf("fig4e %s: %w", name, err)
		}
		thetas[c] = trainRes.Theta
		return nil
	})
	if err != nil {
		return nil, err
	}
	plainTheta, robustTheta := thetas[0], thetas[1]

	res := &Fig4eResult{
		Xis:         cfg.Xis,
		FedMLAcc:    make([]float64, len(cfg.Xis)),
		RobustAcc:   make([]float64, len(cfg.Xis)),
		Improvement: make([]float64, len(cfg.Xis)),
	}
	err = par.ForEachErr(cfg.Workers, len(cfg.Xis), func(c int) error {
		xi := cfg.Xis[c]
		pc, err := eval.AverageAdversarialAdaptationCurveN(m, plainTheta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, xi, 0, 1, 1)
		if err != nil {
			return fmt.Errorf("fig4e FedML ξ=%g: %w", xi, err)
		}
		rc, err := eval.AverageAdversarialAdaptationCurveN(m, robustTheta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, xi, 0, 1, 1)
		if err != nil {
			return fmt.Errorf("fig4e Robust ξ=%g: %w", xi, err)
		}
		pa := pc[len(pc)-1].Accuracy
		ra := rc[len(rc)-1].Accuracy
		res.FedMLAcc[c] = pa
		res.RobustAcc[c] = ra
		res.Improvement[c] = ra - pa
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render implements the printable figure.
func (r *Fig4eResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4(e): Impact of FGSM budget ξ (adversarial accuracy after adaptation)\n")
	fmt.Fprintf(&b, "%-8s %-12s %-12s %-12s\n", "xi", "FedML", "RobustFedML", "improvement")
	for i, xi := range r.Xis {
		fmt.Fprintf(&b, "%-8g %-12.4f %-12.4f %-+12.4f\n", xi, r.FedMLAcc[i], r.RobustAcc[i], r.Improvement[i])
	}
	return b.String()
}
