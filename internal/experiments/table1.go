package experiments

import (
	"fmt"
	"strings"

	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/par"
)

// Table1Config parameterizes the dataset-statistics table.
type Table1Config struct {
	// Scale selects CI or paper-size federations.
	Scale Scale
	// Seed drives all three generators.
	Seed uint64
	// Workers bounds the fan-out over the three generators (0 = GOMAXPROCS).
	Workers int
}

// Table1Row is one dataset's statistics, matching the paper's Table I
// columns (dataset, nodes, mean and stdev of samples per node).
type Table1Row struct {
	Dataset string
	Nodes   int
	Mean    float64
	Std     float64
}

// Table1Result is the reproduced Table I.
type Table1Result struct {
	Rows []Table1Row
	// PaperRows carries the published values for side-by-side comparison.
	PaperRows []Table1Row
}

// RunTable1 generates all three workloads and tabulates their per-node
// sample statistics.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	if cfg.Scale == 0 {
		cfg.Scale = ScaleCI
	}
	// Each generator owns its seed; run the three on the worker pool into
	// index slots.
	feds := make([]*data.Federation, 3)
	err := par.ForEachErr(cfg.Workers, 3, func(c int) error {
		var err error
		switch c {
		case 0:
			feds[c], err = syntheticFederation(0.5, 0.5, cfg.Scale, 5, cfg.Seed+1)
		case 1:
			feds[c], err = mnistFederation(cfg.Scale, 5, cfg.Seed+2)
		case 2:
			feds[c], err = sent140Federation(cfg.Scale, 5, cfg.Seed+3)
		}
		if err != nil {
			return fmt.Errorf("table1 generator %d: %w", c, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{
		PaperRows: []Table1Row{
			{Dataset: "Synthetic", Nodes: 50, Mean: 17, Std: 5},
			{Dataset: "MNIST", Nodes: 100, Mean: 34, Std: 5},
			{Dataset: "Sent140", Nodes: 706, Mean: 42, Std: 35},
		},
	}
	for _, fed := range feds {
		s := fed.NodeStats()
		res.Rows = append(res.Rows, Table1Row{
			Dataset: fed.Name,
			Nodes:   s.Nodes,
			Mean:    s.MeanPerNode,
			Std:     s.StdPerNode,
		})
	}
	return res, nil
}

// Render prints the measured table next to the published one.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I: Statistics of Datasets (measured | paper)\n")
	fmt.Fprintf(&b, "%-22s %8s %12s %12s   | %8s %8s %8s\n",
		"Dataset", "Nodes", "Mean/Node", "Std/Node", "Nodes", "Mean", "Std")
	for i, row := range r.Rows {
		p := Table1Row{}
		if i < len(r.PaperRows) {
			p = r.PaperRows[i]
		}
		fmt.Fprintf(&b, "%-22s %8d %12.1f %12.1f   | %8d %8.0f %8.0f\n",
			row.Dataset, row.Nodes, row.Mean, row.Std, p.Nodes, p.Mean, p.Std)
	}
	return b.String()
}
