package experiments

import (
	"fmt"
	"sort"
)

// Renderable is a result that can print itself in the paper's table/series
// format.
type Renderable interface {
	Render() string
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the figure/table identifier (e.g. "fig2a").
	ID string
	// Description says what the paper shows there.
	Description string
	// Run executes the experiment at the requested scale on `workers`
	// workers (0 = GOMAXPROCS, 1 = serial). Results are bit-identical for
	// every worker count.
	Run func(scale Scale, workers int) (Renderable, error)
}

// All returns the experiment registry, sorted by ID.
func All() []Experiment {
	exps := []Experiment{
		{
			ID:          "table1",
			Description: "Dataset statistics (nodes, samples per node)",
			Run: func(s Scale, workers int) (Renderable, error) {
				return RunTable1(Table1Config{Scale: s, Seed: 1, Workers: workers})
			},
		},
		{
			ID:          "fig2a",
			Description: "Impact of node similarity on FedML convergence (T0=10)",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultFig2aConfig(s)
				cfg.Workers = workers
				return RunFig2a(cfg)
			},
		},
		{
			ID:          "fig2b",
			Description: "Impact of local update count T0 on convergence (fixed T)",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultFig2bConfig(s)
				cfg.Workers = workers
				return RunFig2b(cfg)
			},
		},
		{
			ID:          "fig3a",
			Description: "FedML convergence on non-convex Sent140",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultFig3aConfig(s)
				cfg.Workers = workers
				return RunFig3a(cfg)
			},
		},
		{
			ID:          "fig3b",
			Description: "Impact of target-source similarity on adaptation accuracy",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultFig3bConfig(s)
				cfg.Workers = workers
				return RunFig3b(cfg)
			},
		},
		{
			ID:          "fig3c",
			Description: "FedML vs FedAvg fast adaptation on Synthetic(0.5,0.5)",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultAdaptCompareConfig("synthetic", s)
				cfg.Workers = workers
				return RunAdaptCompare(cfg)
			},
		},
		{
			ID:          "fig3d",
			Description: "FedML vs FedAvg fast adaptation on MNIST",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultAdaptCompareConfig("mnist", s)
				cfg.Workers = workers
				return RunAdaptCompare(cfg)
			},
		},
		{
			ID:          "fig3e",
			Description: "FedML vs FedAvg fast adaptation on Sent140",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultAdaptCompareConfig("sent140", s)
				cfg.Workers = workers
				return RunAdaptCompare(cfg)
			},
		},
		{
			ID:          "fig4",
			Description: "Robust FedML vs FedML on clean and FGSM data (λ sweep)",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultFig4Config(s)
				cfg.Workers = workers
				return RunFig4(cfg)
			},
		},
		{
			ID:          "fig4e",
			Description: "Robust-FedML improvement vs FGSM budget ξ",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultFig4eConfig(s)
				cfg.Workers = workers
				return RunFig4e(cfg)
			},
		},
		{
			ID:          "thm3",
			Description: "Extension: target adaptation gap vs surrogate distance (Theorem 3)",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultThm3Config(s)
				cfg.Workers = workers
				return RunThm3(cfg)
			},
		},
		{
			ID:          "ext-time",
			Description: "Extension: modelled time-to-target-G by T0 and network profile",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultExtTimeConfig(s)
				cfg.Workers = workers
				return RunExtTime(cfg)
			},
		},
		{
			ID:          "ext-baselines",
			Description: "Extension: FedML vs FedML-FO vs FedAvg vs FedProx vs Reptile",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultExtBaselinesConfig(s)
				cfg.Workers = workers
				return RunExtBaselines(cfg)
			},
		},
		{
			ID:          "ext-codec",
			Description: "Extension: accuracy vs wire bytes by update codec (raw/f16/q8/topk)",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultExtCodecConfig(s)
				cfg.Workers = workers
				return RunExtCodec(cfg)
			},
		},
		{
			ID:          "ext-energy",
			Description: "Extension: accuracy vs modeled joules under partial sync and energy budgets",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultExtEnergyConfig(s)
				cfg.Workers = workers
				return RunExtEnergy(cfg)
			},
		},
		{
			ID:          "ext-async",
			Description: "Extension: buffered-async vs sync round throughput under latency skew",
			Run: func(s Scale, workers int) (Renderable, error) {
				return RunExtAsync(DefaultExtAsyncConfig(s))
			},
		},
		{
			ID:          "ext-scale",
			Description: "Extension: fleet-scale two-tier aggregation (10⁵–10⁶ simulated nodes/round)",
			Run: func(s Scale, workers int) (Renderable, error) {
				return RunExtScale(DefaultExtScaleConfig(s))
			},
		},
		{
			ID:          "ext-rec",
			Description: "Extension: federated recommendation — personalized vs global baselines (FedML/FedAvg/FedProx/RepShare)",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultExtWorkloadConfig("rec", s)
				cfg.Workers = workers
				return RunExtWorkload(cfg)
			},
		},
		{
			ID:          "ext-fault",
			Description: "Extension: TinyML fault classification — personalized vs global baselines under class skew",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultExtWorkloadConfig("fault", s)
				cfg.Workers = workers
				return RunExtWorkload(cfg)
			},
		},
		{
			ID:          "ext-meta-opt",
			Description: "Extension: outer-optimizer ablation (SGD vs momentum vs Adam)",
			Run: func(s Scale, workers int) (Renderable, error) {
				cfg := DefaultExtMetaOptConfig(s)
				cfg.Workers = workers
				return RunExtMetaOpt(cfg)
			},
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Run executes the experiment with the given ID at the given scale on
// `workers` workers (0 = GOMAXPROCS) and returns its rendered output.
func Run(id string, scale Scale, workers int) (string, error) {
	for _, e := range All() {
		if e.ID == id {
			res, err := e.Run(scale, workers)
			if err != nil {
				return "", fmt.Errorf("experiment %s: %w", id, err)
			}
			return res.Render(), nil
		}
	}
	return "", fmt.Errorf("experiments: unknown experiment %q", id)
}
