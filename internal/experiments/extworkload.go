package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/edgeai/fedml/internal/core"
	"github.com/edgeai/fedml/internal/data"
	"github.com/edgeai/fedml/internal/eval"
	"github.com/edgeai/fedml/internal/fedavg"
	"github.com/edgeai/fedml/internal/fedprox"
	"github.com/edgeai/fedml/internal/nn"
	"github.com/edgeai/fedml/internal/obs"
	"github.com/edgeai/fedml/internal/par"
	"github.com/edgeai/fedml/internal/repshare"
	"github.com/edgeai/fedml/internal/tensor"
)

// The new-workloads extension: the Fed-Meta-Align-style comparison matrix on
// the two scenarios where fast adaptation is the product — federated
// recommendation (each node a user; the metric post-adaptation rating
// accuracy) and TinyML fault classification (heterogeneous per-device class
// skew and sensor calibration). Four algorithms run on the same federation
// and each is scored on the personalized-vs-global split over held-out
// target nodes:
//
//	fedml     meta-learned initialization (core.Train), the platform arm —
//	          composable with the codec/sync-mask/async knobs so the matrix
//	          exercises the whole stack, and the arm whose accuracy/traffic
//	          trajectory is recorded ext-codec style
//	fedavg    single global fit, the paper's baseline
//	fedprox   global fit with the proximal term (μ > 0)
//	repshare  structurally personalized: shared representation, private heads
//
// The headline claim the acceptance test pins: FedML's adapted accuracy
// beats the global (un-adapted) accuracy of both FedAvg and FedProx on both
// workloads — single global models cannot express per-node structure that
// one adaptation step recovers.

// ExtWorkloadConfig parameterizes one workload's comparison matrix.
type ExtWorkloadConfig struct {
	Scale Scale
	// Workload selects the scenario: "rec" or "fault".
	Workload string
	// Alpha, Beta are FedML's adaptation and meta rates; Eta the local rate
	// of the non-meta baselines (paper convention: Eta = Beta).
	Alpha, Beta, Eta float64
	// T, T0 are the iteration budget and local steps per round.
	T, T0 int
	// Hidden is the MLP hidden width (a hidden layer is required: repshare
	// needs a non-head representation block to share).
	Hidden int
	// AdaptSteps is the per-node adaptation budget of the personalized
	// column.
	AdaptSteps int
	// Mu is FedProx's proximal coefficient.
	Mu float64
	// Codec, SyncMask, and Async thread the platform knobs through the
	// fedml arm: wire codec spec ("" = raw), partial-sync mask spec (e.g.
	// "head:2", "" = full sync), and buffered-async aggregation.
	Codec    string
	SyncMask string
	Async    bool
	Seed     uint64
	// Workers bounds the per-arm fan-out (0 = GOMAXPROCS).
	Workers int
}

// DefaultExtWorkloadConfig returns the matrix configuration for a workload.
func DefaultExtWorkloadConfig(workload string, scale Scale) ExtWorkloadConfig {
	cfg := ExtWorkloadConfig{
		Scale:      scale,
		Workload:   workload,
		Alpha:      0.05,
		Beta:       0.05,
		Eta:        0.05,
		T:          400,
		T0:         10,
		Hidden:     16,
		AdaptSteps: 5,
		Mu:         0.1,
		Seed:       1,
	}
	if scale == ScaleCI {
		cfg.T = 120
	}
	return cfg
}

// workloadFederation builds the named new-workload federation at scale.
func workloadFederation(workload string, scale Scale, seed uint64) (*data.Federation, error) {
	switch workload {
	case "rec":
		cfg := data.DefaultRecommendConfig()
		cfg.Seed = seed
		if scale == ScaleCI {
			cfg.Users = 20
			cfg.Items = 60
		}
		return data.GenerateRecommend(cfg)
	case "fault":
		cfg := data.DefaultFaultConfig()
		cfg.Seed = seed
		if scale == ScaleCI {
			cfg.Devices = 20
		}
		return data.GenerateFault(cfg)
	default:
		return nil, fmt.Errorf("ext-workload: unknown workload %q (want rec or fault)", workload)
	}
}

// ExtWorkloadResult holds the personalization matrix plus the fedml arm's
// accuracy/traffic trajectory.
type ExtWorkloadResult struct {
	Workload string
	// Arms and Pers are the matrix rows: per algorithm, global vs adapted
	// target accuracy.
	Arms []string
	Pers []eval.Personalization
	// AccVsKiB is the fedml arm's adapted accuracy against cumulative wire
	// KiB (ext-codec style); Codec/MaskSpec record the knobs it ran under.
	AccVsKiB *eval.Series
	TotalKiB float64
	Codec    string
	MaskSpec string
	Async    bool
}

// RunExtWorkload trains the four algorithms on the same workload federation
// and reports each one's personalized-vs-global split. Arms are independent
// and fan out on the worker pool; every arm rebuilds its own federation from
// the shared seed, so results are bit-identical for every worker count.
func RunExtWorkload(cfg ExtWorkloadConfig) (*ExtWorkloadResult, error) {
	arms := []string{"fedml", "fedavg", "fedprox", "repshare"}
	pers := make([]eval.Personalization, len(arms))
	var accVsKiB *eval.Series
	var totalKiB float64
	err := par.ForEachErr(cfg.Workers, len(arms), func(c int) error {
		arm := arms[c]
		fed, err := workloadFederation(cfg.Workload, cfg.Scale, cfg.Seed)
		if err != nil {
			return fmt.Errorf("ext-%s data: %w", cfg.Workload, err)
		}
		m, err := nn.NewMLP(nn.MLPConfig{Dims: []int{fed.Dim, cfg.Hidden, fed.NumClasses}, L2: 0.01})
		if err != nil {
			return fmt.Errorf("ext-%s model: %w", cfg.Workload, err)
		}
		var theta tensor.Vec
		switch arm {
		case "fedml":
			rec := obs.NewRecorder()
			accByIter := map[int]float64{}
			trainCfg := core.Config{
				Alpha: cfg.Alpha, Beta: cfg.Beta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed,
				Codec:    cfg.Codec,
				Observer: rec,
				OnRound: func(_, iter int, th tensor.Vec) {
					accs := eval.FinalAccuraciesN(m, th, fed.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
					var s float64
					for _, a := range accs {
						s += a
					}
					accByIter[iter] = s / float64(len(accs))
				},
			}
			if cfg.SyncMask != "" {
				mask, err := core.ResolveSyncMask(cfg.SyncMask, m)
				if err != nil {
					return fmt.Errorf("ext-%s mask: %w", cfg.Workload, err)
				}
				trainCfg.SyncMask = mask
			}
			if cfg.Async {
				trainCfg.Async = true
				trainCfg.RoundTimeout = 30 * time.Second
			}
			res, err := core.Train(m, fed, nil, trainCfg)
			if err != nil {
				return fmt.Errorf("ext-%s train fedml: %w", cfg.Workload, err)
			}
			theta = res.Theta
			spec := cfg.Codec
			if spec == "" {
				spec = "raw"
			}
			curve := &eval.Series{Name: "fedml/" + spec}
			for _, p := range eval.TrafficTrajectory(spec, rec.Rounds()).Points {
				if acc, ok := accByIter[p.Iter]; ok {
					curve.Add(int(p.Value/1024), acc)
				}
			}
			accVsKiB = curve
			totalKiB = float64(res.Comm.Bytes) / 1024
		case "fedavg":
			res, err := fedavg.Train(m, fed, nil, fedavg.Config{
				Eta: cfg.Eta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed, Workers: 1,
			})
			if err != nil {
				return fmt.Errorf("ext-%s train fedavg: %w", cfg.Workload, err)
			}
			theta = res.Theta
		case "fedprox":
			res, err := fedprox.Train(m, fed, nil, fedprox.Config{
				Eta: cfg.Eta, Mu: cfg.Mu, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed, Workers: 1,
			})
			if err != nil {
				return fmt.Errorf("ext-%s train fedprox: %w", cfg.Workload, err)
			}
			theta = res.Theta
		case "repshare":
			res, err := repshare.Train(m, fed, nil, repshare.Config{
				Eta: cfg.Eta, T: cfg.T, T0: cfg.T0, Seed: cfg.Seed, Workers: 1,
			})
			if err != nil {
				return fmt.Errorf("ext-%s train repshare: %w", cfg.Workload, err)
			}
			theta = res.Theta
		}
		// Targets are nodes unseen during training for every arm, so the
		// same split applies: θ as-is (global) vs θ after AdaptSteps local
		// steps on the node's K-shot split (personalized).
		pers[c] = eval.PersonalizationN(m, theta, fed.Targets, cfg.Alpha, cfg.AdaptSteps, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ExtWorkloadResult{
		Workload: cfg.Workload,
		Arms:     arms,
		Pers:     pers,
		AccVsKiB: accVsKiB,
		TotalKiB: totalKiB,
		Codec:    cfg.Codec,
		MaskSpec: cfg.SyncMask,
		Async:    cfg.Async,
	}, nil
}

// Render implements the printable extension: the fedml accuracy-vs-KiB
// trajectory, then the personalization matrix.
func (r *ExtWorkloadResult) Render() string {
	var b strings.Builder
	knobs := ""
	if r.Codec != "" {
		knobs += " codec=" + r.Codec
	}
	if r.MaskSpec != "" {
		knobs += " mask=" + r.MaskSpec
	}
	if r.Async {
		knobs += " async"
	}
	fmt.Fprintf(&b, "Extension: %s workload — personalized vs global accuracy on held-out nodes%s\n", r.Workload, knobs)
	if r.AccVsKiB != nil {
		fmt.Fprintf(&b, "arm %s (KiB -> mean adapted target accuracy, total %.1f KiB)\n", r.AccVsKiB.Name, r.TotalKiB)
		b.WriteString(r.AccVsKiB.TSV())
	}
	b.WriteString("arm        global acc   adapted acc   gap\n")
	for i, name := range r.Arms {
		p := r.Pers[i]
		fmt.Fprintf(&b, "%-10s %-12.4f %-13.4f %+.4f\n", name, p.Global, p.Adapted, p.Gap())
	}
	b.WriteString("(global = θ applied unchanged; adapted = after per-node K-shot fine-tuning;\n" +
		"fedml meta-learns for adaptation, repshare personalizes structurally via private heads)\n")
	return b.String()
}
